// Package workloads implements the seven benchmark kernels of Table IV —
// vvadd and mmult (kernels), k-means, pathfinder and backprop (Rodinia),
// jacobi-2d (RiVEC) and sw (genomics) — each in two forms sharing one
// source of truth: a scalar implementation emitting the scalar dynamic
// trace, and a vectorized implementation written against the RVV-subset
// builder, strip-mined so the same code adapts to any hardware vector
// length. Every kernel returns a checker validating the simulated machine's
// memory against a pure-Go reference.
//
// Inputs are scaled from the paper's sizes to keep simulation turnaround in
// seconds; the scaling is recorded in EXPERIMENTS.md. The *structure* of
// each kernel — instruction mix, stride pathologies, predication — follows
// Table IV's characterization.
package workloads

import (
	"fmt"

	"repro/internal/isa"
)

// CheckFunc validates kernel output after a run.
type CheckFunc func() error

// Kernel is one benchmark: Run executes either the scalar or the vectorized
// implementation against the builder (allocating and initializing its own
// inputs in the builder's memory) and returns an output checker.
//
// Run implementations must be reentrant: one *Kernel is shared by every
// system column of a sweep, and the parallel runner (internal/sweep)
// invokes Run for different systems concurrently. All mutable state — the
// input RNG, reference outputs, allocation cursors — therefore lives in
// the per-call builder or in locals of the Run invocation, never in the
// closure or in package-level variables.
type Kernel struct {
	Name  string
	Suite string // k = kernel, ro = rodinia, rv = RiVEC, g = genomics
	Input string // human-readable input description
	Run   func(b *isa.Builder, vector bool) CheckFunc
}

// InGeomean reports whether the kernel belongs to the paper's geomean set
// ({k-means, pathfinder, jacobi-2d, backprop, sw}, Table IV note).
func (k *Kernel) InGeomean() bool {
	switch k.Name {
	case "k-means", "pathfinder", "jacobi-2d", "backprop", "sw":
		return true
	}
	return false
}

// Default returns the benchmark suite at the standard scaled sizes. The
// scaling preserves each kernel's memory-system character: backprop's weight
// matrix (4 MB) and k-means' point set (~2.2 MB) exceed the 2 MB LLC, so
// their per-element strided traffic misses like the paper's full-size runs.
func Default() []*Kernel {
	return []*Kernel{
		NewVVAdd(1 << 16),
		NewMMult(40, 40, 2048),
		NewKMeans(16384, 34, 5),
		NewPathfinder(10, 1<<15),
		NewJacobi2D(256, 4),
		NewBackprop(65536, 16),
		NewSW(1024),
	}
}

// Small returns reduced-size kernels for fast tests.
func Small() []*Kernel {
	return []*Kernel{
		NewVVAdd(1 << 10),
		NewMMult(8, 8, 64),
		NewKMeans(256, 8, 3),
		NewPathfinder(4, 1<<10),
		NewJacobi2D(32, 2),
		NewBackprop(128, 32),
		NewSW(48),
	}
}

// ByName finds a kernel in a slice.
func ByName(ks []*Kernel, name string) (*Kernel, error) {
	for _, k := range ks {
		if k.Name == name {
			return k, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown kernel %q", name)
}

// checkU32 compares a simulated memory region against a reference slice.
func checkU32(b *isa.Builder, name string, base uint64, want []uint32) error {
	for i, w := range want {
		if got := b.Mem.LoadU32(base + uint64(4*i)); got != w {
			return fmt.Errorf("%s: element %d = %#x, want %#x", name, i, got, w)
		}
	}
	return nil
}

// lcg is a tiny deterministic generator for input data (keeps kernels
// reproducible without importing math/rand everywhere).
type lcg uint64

func (l *lcg) next() uint32 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint32(*l >> 33)
}

// nextSmall returns a small value in [0, m), keeping integer kernels far
// from overflow so scalar and vector semantics agree trivially.
func (l *lcg) nextSmall(m uint32) uint32 { return l.next() % m }

func itoa(n int) string { return fmt.Sprintf("%d", n) }
