// Package workloads implements the benchmark kernel suite: the seven
// kernels of Table IV — vvadd and mmult (kernels), k-means, pathfinder and
// backprop (Rodinia), jacobi-2d (RiVEC) and sw (genomics) — plus three
// RiVEC-breadth extensions beyond the paper: spmv (CSR sparse
// matrix–vector, gather-heavy), streamcluster-dist (the streamcluster
// distance/assign phase, mask-dominated) and redux (a blocked
// reduction-tree sum/max). Each kernel exists in two forms sharing one
// source of truth: a scalar implementation emitting the scalar dynamic
// trace, and a vectorized implementation written against the RVV-subset
// builder, strip-mined so the same code adapts to any hardware vector
// length. Every kernel returns a checker validating the simulated machine's
// memory against a pure-Go reference.
//
// Inputs are scaled from the paper's sizes to keep simulation turnaround in
// seconds; the scaling is recorded in EXPERIMENTS.md. The *structure* of
// each kernel — instruction mix, stride pathologies, predication — follows
// Table IV's characterization.
package workloads

import (
	"fmt"

	"repro/internal/isa"
)

// CheckFunc validates kernel output after a run.
type CheckFunc func() error

// Kernel is one benchmark: Run executes either the scalar or the vectorized
// implementation against the builder (allocating and initializing its own
// inputs in the builder's memory) and returns an output checker.
//
// Run implementations must be reentrant: one *Kernel is shared by every
// system column of a sweep, and the parallel runner (internal/sweep)
// invokes Run for different systems concurrently. All mutable state — the
// input RNG, reference outputs, allocation cursors — therefore lives in
// the per-call builder or in locals of the Run invocation, never in the
// closure or in package-level variables.
type Kernel struct {
	Name  string
	Suite string // k = kernel, ro = rodinia, rv = RiVEC, g = genomics
	Input string // human-readable input description
	Run   func(b *isa.Builder, vector bool) CheckFunc
}

// InGeomean reports whether the kernel belongs to the paper's geomean set
// ({k-means, pathfinder, jacobi-2d, backprop, sw}, Table IV note). The
// post-paper kernels (spmv, streamcluster-dist, redux) are deliberately
// excluded: the geomean reproduces the paper's published figure, and mixing
// in workloads the paper never measured would silently change what that
// number means. Their results appear as ordinary rows in every table.
func (k *Kernel) InGeomean() bool {
	switch k.Name {
	case "k-means", "pathfinder", "jacobi-2d", "backprop", "sw":
		return true
	}
	return false
}

// Default returns the benchmark suite at the standard scaled sizes. The
// scaling preserves each kernel's memory-system character: backprop's weight
// matrix (4 MB) and k-means' point set (~2.2 MB) exceed the 2 MB LLC, so
// their per-element strided traffic misses like the paper's full-size runs.
func Default() []*Kernel {
	return []*Kernel{
		NewVVAdd(1 << 16),
		NewMMult(40, 40, 2048),
		NewKMeans(16384, 34, 5),
		NewPathfinder(10, 1<<15),
		NewJacobi2D(256, 4),
		NewBackprop(65536, 16),
		NewSW(1024),
		NewSpMV(2048, 1<<16, 16),
		NewStreamclusterDist(16000, 8, 8),
		NewRedux(250000),
	}
}

// Small returns reduced-size kernels for fast tests. The new kernels'
// sizes deliberately avoid vector-length multiples (spmv's per-row nnz
// varies, streamcluster's 200 and redux's 1000 are not multiples of 64),
// so strip-mining tails are exercised on every CI run.
func Small() []*Kernel {
	return []*Kernel{
		NewVVAdd(1 << 10),
		NewMMult(8, 8, 64),
		NewKMeans(256, 8, 3),
		NewPathfinder(4, 1<<10),
		NewJacobi2D(32, 2),
		NewBackprop(128, 32),
		NewSW(48),
		NewSpMV(48, 512, 16),
		NewStreamclusterDist(200, 4, 4),
		NewRedux(1000),
	}
}

// ByName finds a kernel in a slice.
func ByName(ks []*Kernel, name string) (*Kernel, error) {
	for _, k := range ks {
		if k.Name == name {
			return k, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown kernel %q", name)
}

// checkU32 compares a simulated memory region against a reference slice.
func checkU32(b *isa.Builder, name string, base uint64, want []uint32) error {
	for i, w := range want {
		if got := b.Mem.LoadU32(base + uint64(4*i)); got != w {
			return fmt.Errorf("%s: element %d = %#x, want %#x", name, i, got, w)
		}
	}
	return nil
}

// lcg is a tiny deterministic generator for input data (keeps kernels
// reproducible without importing math/rand everywhere).
type lcg uint64

// mixSeed derives a kernel's input generator from its canonical per-kernel
// base constant and a caller-supplied seed. Seed 0 selects the canonical
// inputs — the exact streams the Table IV suite, the checked-in goldens and
// bench/baseline.json are pinned to — while any other seed folds into the
// base so the differential harness and fuzzers can re-randomize inputs
// without perturbing the published numbers.
func mixSeed(base, seed uint64) lcg {
	if seed == 0 {
		return lcg(base)
	}
	return lcg(base ^ seed*0x9E3779B97F4A7C15)
}

// reduceVL re-establishes the vector length a cross-strip reduction must
// cover. A strip-mined loop that accumulates into a register leaves live
// partials in min(elems, HWVL) lanes, but the final strip's SetVL may have
// shrunk the active length to the tail — folding at that length silently
// drops every lane beyond it. Emits a vsetvl only when the current length
// is wrong, so kernels whose trip counts divide the vector length keep
// their exact historical instruction streams.
func reduceVL(b *isa.Builder, elems int) {
	if covered := min(elems, b.HWVL()); b.VL() != covered {
		b.SetVL(covered)
	}
}

func (l *lcg) next() uint32 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint32(*l >> 33)
}

// nextSmall returns a small value in [0, m), keeping integer kernels far
// from overflow so scalar and vector semantics agree trivially.
func (l *lcg) nextSmall(m uint32) uint32 { return l.next() % m }

func itoa(n int) string { return fmt.Sprintf("%d", n) }

// Family describes one kernel family for property-based testing: Make
// builds the kernel at an input scale (roughly the strip-mined trip count)
// with the input RNG reseeded, so the differential conformance harness and
// FuzzKernelSizes can sweep sizes — including trip counts that do not
// divide any hardware vector length — and seeds far beyond the canonical
// suite.
type Family struct {
	Name string
	// MemEquiv reports whether the scalar and vectorized implementations
	// leave bit-identical flat-memory images, so their FNV-1a checksums can
	// be compared directly. False only for sw, whose scalar form keeps the
	// anti-diagonal DP buffers host-side while the vector form materializes
	// them in simulated memory.
	MemEquiv bool
	// MaxScale bounds scale for quadratic-cost kernels so fuzzing stays fast.
	MaxScale int
	Make     func(scale int, seed uint64) *Kernel
}

// Families enumerates every kernel family, including fp-saxpy (which is not
// part of the Default suite). Make clamps scale into [4, MaxScale].
func Families() []Family {
	clamp := func(scale, lo, hi int) int { return min(max(scale, lo), hi) }
	mk := func(name string, memEquiv bool, maxScale int, f func(sc int, seed uint64) *Kernel) Family {
		return Family{Name: name, MemEquiv: memEquiv, MaxScale: maxScale,
			Make: func(scale int, seed uint64) *Kernel { return f(clamp(scale, 4, maxScale), seed) }}
	}
	return []Family{
		mk("vvadd", true, 1<<16, func(sc int, seed uint64) *Kernel { return newVVAdd(sc, seed) }),
		mk("mmult", true, 1<<12, func(sc int, seed uint64) *Kernel { return newMMult(3, 5, sc, seed) }),
		mk("k-means", true, 1<<12, func(sc int, seed uint64) *Kernel { return newKMeans(sc, 3, 3, seed) }),
		mk("pathfinder", true, 1<<12, func(sc int, seed uint64) *Kernel { return newPathfinder(3, sc, seed) }),
		mk("jacobi-2d", true, 96, func(sc int, seed uint64) *Kernel { return newJacobi2D(sc, 2, seed) }),
		mk("backprop", true, 1<<12, func(sc int, seed uint64) *Kernel { return newBackprop(sc, 5, seed) }),
		mk("sw", false, 128, func(sc int, seed uint64) *Kernel { return newSW(sc, seed) }),
		mk("spmv", true, 1<<10, func(sc int, seed uint64) *Kernel { return newSpMV(sc, 2*sc+7, 9, seed) }),
		mk("streamcluster-dist", true, 1<<12, func(sc int, seed uint64) *Kernel { return newStreamclusterDist(sc, 3, 3, seed) }),
		mk("redux", true, 1<<16, func(sc int, seed uint64) *Kernel { return newRedux(sc, seed) }),
		mk("fp-saxpy", true, 1<<10, func(sc int, seed uint64) *Kernel { return newFPSaxpy(sc, seed) }),
	}
}
