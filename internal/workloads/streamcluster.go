package workloads

import (
	"fmt"

	"repro/internal/isa"
)

// NewStreamclusterDist builds the streamcluster distance/assign phase from
// the RiVEC port of PARSEC: n points with f features are assigned to the
// nearest of k candidate centers, and per-center membership counts (the
// cluster weights the pgain step consumes) are tallied afterwards. Points
// are stored feature-major — feature j is a contiguous array of n elements
// — so every vector access is unit-stride and the kernel's character is
// pure control divergence: each candidate center ends in a vmslt mask
// followed by predicated vmerge pairs keeping the nearer distance and its
// center id, and the count pass is a vmseq mask feeding a masked select
// into a vredsum. This is the suite's mask-dominated member, as
// streamcluster is in RiVEC's characterization.
func NewStreamclusterDist(n, f, k int) *Kernel {
	return newStreamclusterDist(n, f, k, 0)
}

func newStreamclusterDist(n, f, k int, seed uint64) *Kernel {
	return &Kernel{
		Name:  "streamcluster-dist",
		Suite: "rv",
		Input: fmt.Sprintf("%dx%d k=%d", n, f, k),
		Run: func(b *isa.Builder, vector bool) CheckFunc {
			mf := b.Mem
			pts := mf.AllocU32(n * f)  // feature-major: feature j at [j*n, (j+1)*n)
			cent := mf.AllocU32(k * f) // center-major: center c at [c*f, (c+1)*f)
			assign := mf.AllocU32(n)   // nearest center id
			cost := mf.AllocU32(n)     // squared distance to it
			counts := mf.AllocU32(k)   // members per center
			rng := mixSeed(0x5C, seed)
			P := make([]uint32, n*f)
			C := make([]uint32, k*f)
			for i := range P {
				P[i] = rng.nextSmall(256)
				mf.StoreU32(pts+uint64(4*i), P[i])
			}
			for i := range C {
				C[i] = rng.nextSmall(256)
				mf.StoreU32(cent+uint64(4*i), C[i])
			}
			// Reference assignment, cost and membership counts. Ties keep
			// the earlier center (strict less-than), matching both
			// implementations below.
			wantAssign := make([]uint32, n)
			wantCost := make([]uint32, n)
			wantCounts := make([]uint32, k)
			for p := 0; p < n; p++ {
				var best uint32
				bestK := uint32(0)
				for c := 0; c < k; c++ {
					var d uint32
					for j := 0; j < f; j++ {
						diff := P[j*n+p] - C[c*f+j]
						d += diff * diff
					}
					if c == 0 || int32(d) < int32(best) {
						best, bestK = d, uint32(c)
					}
				}
				wantAssign[p] = bestK
				wantCost[p] = best
				wantCounts[bestK]++
			}

			if vector {
				for p0 := 0; p0 < n; {
					vl := b.SetVL(n - p0)
					// Distance to a candidate center: unit-stride feature
					// columns against scalar center coordinates.
					dist := func(c, vd int) {
						b.MvVX(vd, 0)
						for j := 0; j < f; j++ {
							b.Load(1, pts+uint64(4*(j*n+p0)))
							cv := b.ScalarLoad(cent + uint64(4*(c*f+j)))
							b.SubVX(2, 1, cv)
							b.Macc(vd, 2, 2)
							b.ScalarOps(2)
						}
					}
					dist(0, 8)   // best distance so far
					b.MvVX(9, 0) // best center id
					for c := 1; c < k; c++ {
						dist(c, 10)
						// Keep the nearer distance and its center id.
						b.MSlt(0, 10, 8)
						b.Merge(8, 10, 8)
						b.MvVX(11, uint32(c))
						b.Merge(9, 11, 9)
						b.ScalarOps(2)
					}
					b.Store(8, cost+uint64(4*p0))
					b.Store(9, assign+uint64(4*p0))
					b.ScalarOps(5)
					p0 += vl
				}
				// Membership counts: per center, a vmseq mask over the
				// assignment selects ones into a vredsum.
				for c := 0; c < k; c++ {
					var total uint32
					for p0 := 0; p0 < n; {
						vl := b.SetVL(n - p0)
						b.Load(12, assign+uint64(4*p0))
						b.MSeqVX(0, 12, uint32(c))
						b.MvVX(13, 1)
						b.MvVX(14, 0)
						b.Merge(13, 13, 14) // 1 where assigned to c, else 0
						b.MvSX(15, 0)
						b.RedSum(16, 13, 15)
						total += b.MvXS(16)
						b.ScalarOps(3)
						p0 += vl
					}
					b.ScalarStore(counts+uint64(4*c), total)
					b.ScalarOps(2)
				}
				b.Fence()
			} else {
				counted := make([]uint32, k)
				for p := 0; p < n; p++ {
					var best uint32
					bestK := uint32(0)
					for c := 0; c < k; c++ {
						var d uint32
						for j := 0; j < f; j++ {
							x := b.ScalarLoad(pts + uint64(4*(j*n+p)))
							y := b.ScalarLoad(cent + uint64(4*(c*f+j)))
							diff := x - y
							d += diff * diff
							b.ScalarMuls(1)
							b.ScalarOps(2)
						}
						if c == 0 || int32(d) < int32(best) {
							best, bestK = d, uint32(c)
						}
						b.ScalarOps(2)
					}
					b.ScalarStore(cost+uint64(4*p), best)
					b.ScalarStore(assign+uint64(4*p), bestK)
					counted[bestK]++
					b.ScalarOps(2)
				}
				for c := 0; c < k; c++ {
					b.ScalarOps(2)
					b.ScalarStore(counts+uint64(4*c), counted[c])
				}
			}
			return func() error {
				if err := checkU32(b, "streamcluster-dist assign", assign, wantAssign); err != nil {
					return err
				}
				if err := checkU32(b, "streamcluster-dist cost", cost, wantCost); err != nil {
					return err
				}
				return checkU32(b, "streamcluster-dist counts", counts, wantCounts)
			}
		},
	}
}
