package workloads

import (
	"fmt"

	"repro/internal/isa"
)

// NewMMult builds the integer matrix multiplication kernel C = A×B with A
// m×kk and B kk×n, the compute-bound member of the suite (multiply
// dominated; the paper's Fig 7 shows EVE spending nearly all time busy
// here). The vectorization is the outer-product form: C[i,:] accumulates
// vmacc.vx of A[i,k] against B[k,:] along full rows, so a wide n keeps even
// EVE's 2048-element vectors filled, like the paper's 1024×1024 input.
func NewMMult(dims ...int) *Kernel {
	m, kk, n := 40, 40, 2048
	switch len(dims) {
	case 1:
		m, kk, n = dims[0], dims[0], dims[0]
	case 3:
		m, kk, n = dims[0], dims[1], dims[2]
	}
	return newMMult(m, kk, n, 0)
}

func newMMult(m, kk, n int, seed uint64) *Kernel {
	return &Kernel{
		Name:  "mmult",
		Suite: "k",
		Input: fmt.Sprintf("%dx%dx%d", m, kk, n),
		Run: func(b *isa.Builder, vector bool) CheckFunc {
			f := b.Mem
			aAddr, bAddr, cAddr := f.AllocU32(m*kk), f.AllocU32(kk*n), f.AllocU32(m*n)
			rng := mixSeed(7, seed)
			A := make([]uint32, m*kk)
			B := make([]uint32, kk*n)
			for i := range A {
				A[i] = rng.nextSmall(64)
				f.StoreU32(aAddr+uint64(4*i), A[i])
			}
			for i := range B {
				B[i] = rng.nextSmall(64)
				f.StoreU32(bAddr+uint64(4*i), B[i])
			}
			want := make([]uint32, m*n)
			for i := 0; i < m; i++ {
				for k := 0; k < kk; k++ {
					aik := A[i*kk+k]
					for j := 0; j < n; j++ {
						want[i*n+j] += aik * B[k*n+j]
					}
				}
			}

			if vector {
				for i := 0; i < m; i++ {
					for j0 := 0; j0 < n; {
						vl := b.SetVL(n - j0)
						b.MvVX(3, 0)
						for k := 0; k < kk; k++ {
							aik := b.ScalarLoad(aAddr + uint64(4*(i*kk+k)))
							b.Load(1, bAddr+uint64(4*(k*n+j0)))
							b.MaccVX(3, 1, aik)
							b.ScalarOps(3)
						}
						b.Store(3, cAddr+uint64(4*(i*n+j0)))
						b.ScalarOps(4)
						j0 += vl
					}
				}
				b.Fence()
			} else {
				for i := 0; i < m; i++ {
					for j := 0; j < n; j++ {
						var acc uint32
						for k := 0; k < kk; k++ {
							x := b.ScalarLoad(aAddr + uint64(4*(i*kk+k)))
							y := b.ScalarLoad(bAddr + uint64(4*(k*n+j)))
							acc += x * y
							b.ScalarMuls(1)
							b.ScalarOps(2)
						}
						b.ScalarStore(cAddr+uint64(4*(i*n+j)), acc)
						b.ScalarOps(2)
					}
				}
			}
			return func() error { return checkU32(b, "mmult", cAddr, want) }
		},
	}
}
