package workloads

import (
	"fmt"

	"repro/internal/isa"
)

// NewPathfinder builds the Rodinia pathfinder kernel: a dynamic-programming
// sweep over a rows×cols grid where each cell adds its weight to the
// minimum of the three neighbors below. The vectorization loads three
// overlapping shifted windows of the previous row and selects minima with
// predicated compare+merge pairs, giving the suite's highest predication
// share (Table IV: prd = 25%). Row boundaries use +inf sentinels.
func NewPathfinder(rows, cols int) *Kernel { return newPathfinder(rows, cols, 0) }

func newPathfinder(rows, cols int, seed uint64) *Kernel {
	const inf = uint32(1 << 30)
	return &Kernel{
		Name:  "pathfinder",
		Suite: "ro",
		Input: fmt.Sprintf("%dx%d", cols, rows),
		Run: func(b *isa.Builder, vector bool) CheckFunc {
			f := b.Mem
			// Each DP row is padded with a sentinel on both sides.
			wall := f.AllocU32(rows * cols)
			src := f.AllocU32(cols + 2)
			dst := f.AllocU32(cols + 2)
			rng := mixSeed(29, seed)
			W := make([]uint32, rows*cols)
			for i := range W {
				W[i] = rng.nextSmall(10)
				f.StoreU32(wall+uint64(4*i), W[i])
			}
			// Row 0 of the DP is the wall's first row.
			prev := make([]uint32, cols)
			copy(prev, W[:cols])
			f.StoreU32(src, inf)
			f.StoreU32(src+uint64(4*(cols+1)), inf)
			f.StoreU32(dst, inf)
			f.StoreU32(dst+uint64(4*(cols+1)), inf)
			for j := 0; j < cols; j++ {
				f.StoreU32(src+uint64(4*(j+1)), prev[j])
			}
			// Reference result.
			want := make([]uint32, cols)
			copy(want, prev)
			for r := 1; r < rows; r++ {
				next := make([]uint32, cols)
				for j := 0; j < cols; j++ {
					m := want[j]
					if j > 0 && want[j-1] < m {
						m = want[j-1]
					}
					if j < cols-1 && want[j+1] < m {
						m = want[j+1]
					}
					next[j] = W[r*cols+j] + m
				}
				want = next
			}

			cur, nxt := src, dst
			if vector {
				for r := 1; r < rows; r++ {
					for j0 := 0; j0 < cols; {
						vl := b.SetVL(cols - j0)
						base := cur + uint64(4*(j0+1))
						b.Load(1, base)   // center
						b.Load(2, base-4) // left
						b.Load(3, base+4) // right
						// Predicated three-way minimum.
						b.MSlt(0, 2, 1)
						b.Merge(4, 2, 1)
						b.MSlt(0, 3, 4)
						b.Merge(4, 3, 4)
						b.Load(5, wall+uint64(4*(r*cols+j0)))
						b.Add(6, 4, 5)
						b.Store(6, nxt+uint64(4*(j0+1)))
						b.ScalarOps(6)
						j0 += vl
					}
					cur, nxt = nxt, cur
					b.ScalarOps(3)
				}
				b.Fence()
			} else {
				for r := 1; r < rows; r++ {
					for j := 0; j < cols; j++ {
						base := cur + uint64(4*(j+1))
						c := b.ScalarLoad(base)
						l := b.ScalarLoad(base - 4)
						rt := b.ScalarLoad(base + 4)
						m := c
						if int32(l) < int32(m) {
							m = l
						}
						if int32(rt) < int32(m) {
							m = rt
						}
						w := b.ScalarLoad(wall + uint64(4*(r*cols+j)))
						b.ScalarOps(6)
						b.ScalarStore(nxt+uint64(4*(j+1)), w+m)
					}
					cur, nxt = nxt, cur
					b.ScalarOps(3)
				}
			}
			return func() error { return checkU32(b, "pathfinder", cur+4, want) }
		},
	}
}
