package workloads

import "repro/internal/isa"

// NewVVAdd builds the element-wise vector addition kernel: c[i] = a[i]+b[i].
// It is the canonical memory-bound streaming kernel (paper: "vvadd is
// inherently memory bound"), with two input streams and one output stream
// and almost no arithmetic per byte.
func NewVVAdd(n int) *Kernel { return newVVAdd(n, 0) }

func newVVAdd(n int, seed uint64) *Kernel {
	return &Kernel{
		Name:  "vvadd",
		Suite: "k",
		Input: itoa(n),
		Run: func(b *isa.Builder, vector bool) CheckFunc {
			f := b.Mem
			aAddr, bAddr, cAddr := f.AllocU32(n), f.AllocU32(n), f.AllocU32(n)
			want := make([]uint32, n)
			rng := mixSeed(0xA5, seed)
			for i := 0; i < n; i++ {
				x, y := rng.next(), rng.next()
				f.StoreU32(aAddr+uint64(4*i), x)
				f.StoreU32(bAddr+uint64(4*i), y)
				want[i] = x + y
			}

			if vector {
				for i := 0; i < n; {
					vl := b.SetVL(n - i)
					off := uint64(4 * i)
					b.Load(1, aAddr+off)
					b.Load(2, bAddr+off)
					b.Add(3, 1, 2)
					b.Store(3, cAddr+off)
					b.ScalarOps(6) // pointer bumps, trip count, branch
					i += vl
				}
				b.Fence()
			} else {
				for i := 0; i < n; i++ {
					off := uint64(4 * i)
					x := b.ScalarLoad(aAddr + off)
					y := b.ScalarLoad(bAddr + off)
					b.ScalarOps(3)
					b.ScalarStore(cAddr+off, x+y)
				}
			}
			return func() error { return checkU32(b, "vvadd", cAddr, want) }
		},
	}
}
