package workloads

import (
	"fmt"

	"repro/internal/isa"
)

// NewJacobi2D builds the RiVEC jacobi-2d kernel in integer form: t
// sweeps of the five-point stencil out[i,j] = (4·c + n + s + e + w) >> 3
// over an n×n interior with a padded halo. East/west neighbors come from
// unaligned unit-stride loads of the shifted row; each row strip also
// accumulates a convergence term reduced with vredsum (Table IV's xe share).
// The ×4 center weight is strength-reduced to a shift, as LLVM's vectorizer
// does — our integer stencil therefore shows no imul, unlike the paper's
// fixed-point variant (recorded in EXPERIMENTS.md).
func NewJacobi2D(n, iters int) *Kernel { return newJacobi2D(n, iters, 0) }

func newJacobi2D(n, iters int, seed uint64) *Kernel {
	stride := n + 2 // padded row length
	return &Kernel{
		Name:  "jacobi-2d",
		Suite: "rv",
		Input: fmt.Sprintf("%dx%d", n, iters),
		Run: func(b *isa.Builder, vector bool) CheckFunc {
			f := b.Mem
			gridA := f.AllocU32(stride * stride)
			gridB := f.AllocU32(stride * stride)
			rng := mixSeed(41, seed)
			A := make([]uint32, stride*stride)
			for i := 1; i <= n; i++ {
				for j := 1; j <= n; j++ {
					A[i*stride+j] = rng.nextSmall(4096)
				}
			}
			for i, v := range A {
				f.StoreU32(gridA+uint64(4*i), v)
				f.StoreU32(gridB+uint64(4*i), v)
			}
			// Reference sweeps.
			want := make([]uint32, len(A))
			copy(want, A)
			tmp := make([]uint32, len(A))
			for t := 0; t < iters; t++ {
				copy(tmp, want)
				for i := 1; i <= n; i++ {
					for j := 1; j <= n; j++ {
						c := want[i*stride+j]
						sum := 4*c + want[(i-1)*stride+j] + want[(i+1)*stride+j] +
							want[i*stride+j-1] + want[i*stride+j+1]
						tmp[i*stride+j] = sum >> 3
					}
				}
				copy(want, tmp)
			}

			at := func(base uint64, i, j int) uint64 { return base + uint64(4*(i*stride+j)) }
			cur, nxt := gridA, gridB
			if vector {
				b.SetVL(1)
				b.MvVX(15, 0) // convergence accumulator
				for t := 0; t < iters; t++ {
					for i := 1; i <= n; i++ {
						for j0 := 1; j0 <= n; {
							vl := b.SetVL(n - j0 + 1)
							b.Load(1, at(cur, i, j0))   // center
							b.Load(2, at(cur, i-1, j0)) // north
							b.Load(3, at(cur, i+1, j0)) // south
							b.Load(4, at(cur, i, j0+1)) // east (unaligned)
							b.Load(5, at(cur, i, j0-1)) // west (unaligned)
							b.Add(6, 2, 3)
							b.Add(6, 6, 4)
							b.Add(6, 6, 5)
							b.SllVX(7, 1, 2) // 4·center, strength-reduced
							b.Add(6, 6, 7)
							b.SraVX(6, 6, 3)
							b.Store(6, at(nxt, i, j0))
							// Convergence term: Σ new values feeds the
							// stopping test (the kernel's xe share).
							b.RedSum(15, 6, 15)
							b.ScalarOps(7)
							j0 += vl
						}
					}
					cur, nxt = nxt, cur
					b.ScalarOps(2)
				}
				b.MvXS(15)
				b.Fence()
			} else {
				for t := 0; t < iters; t++ {
					for i := 1; i <= n; i++ {
						for j := 1; j <= n; j++ {
							c := b.ScalarLoad(at(cur, i, j))
							nn := b.ScalarLoad(at(cur, i-1, j))
							ss := b.ScalarLoad(at(cur, i+1, j))
							ee := b.ScalarLoad(at(cur, i, j+1))
							ww := b.ScalarLoad(at(cur, i, j-1))
							b.ScalarMuls(1)
							b.ScalarOps(6)
							b.ScalarStore(at(nxt, i, j), (4*c+nn+ss+ee+ww)>>3)
						}
					}
					cur, nxt = nxt, cur
					b.ScalarOps(2)
				}
			}
			return func() error {
				for i := 1; i <= n; i++ {
					for j := 1; j <= n; j++ {
						got := b.Mem.LoadU32(at(cur, i, j))
						if got != want[i*stride+j] {
							return fmt.Errorf("jacobi-2d: (%d,%d) = %d, want %d",
								i, j, got, want[i*stride+j])
						}
					}
				}
				return nil
			}
		},
	}
}
