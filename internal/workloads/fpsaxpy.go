package workloads

import (
	"math"

	"repro/internal/isa"
	"repro/internal/softfp"
)

// NewFPSaxpy builds the §IX future-work exploration: a binary32 SAXPY
// (y ← a·x + y) where the vector systems run floating point as softfloat
// sequences of integer vector instructions (internal/softfp) — the only way
// an integer-only EVE executes FP — while the scalar baseline uses its
// hardware FPU (one multiply-class instruction per flop).
//
// The kernel is not part of the paper's Table IV suite; it exists to ask
// the paper's closing question — does bit-hybrid execution balance latency
// and throughput for FP too? — and is exercised by BenchmarkFutureWorkFP32.
// Comparing against IV/DV would require native FP pipe models, so the
// kernel is only meaningful on scalar and EVE systems.
func NewFPSaxpy(n int) *Kernel { return newFPSaxpy(n, 0) }

func newFPSaxpy(n int, seed uint64) *Kernel {
	const a = float32(2.5)
	aBits := math.Float32bits(a)
	return &Kernel{
		Name:  "fp-saxpy",
		Suite: "x",
		Input: itoa(n),
		Run: func(b *isa.Builder, vector bool) CheckFunc {
			f := b.Mem
			xAddr, yAddr := f.AllocU32(n), f.AllocU32(n)
			rng := mixSeed(0xF0, seed)
			want := make([]uint32, n)
			for i := 0; i < n; i++ {
				// Finite normal values with moderate exponents.
				x := math.Float32bits(float32(int32(rng.nextSmall(2000))-1000) / 16)
				y := math.Float32bits(float32(int32(rng.nextSmall(2000))-1000) / 8)
				f.StoreU32(xAddr+uint64(4*i), x)
				f.StoreU32(yAddr+uint64(4*i), y)
				want[i] = softfp.ReferenceAdd32(softfp.ReferenceMul32(aBits, x), y)
			}

			if vector {
				for i := 0; i < n; {
					vl := b.SetVL(n - i)
					off := uint64(4 * i)
					b.Load(1, xAddr+off)
					b.Load(2, yAddr+off)
					b.MvVX(4, aBits)
					softfp.Mul32(b, 5, 4, 1)
					softfp.Add32(b, 6, 5, 2)
					b.Store(6, yAddr+off)
					b.ScalarOps(5)
					i += vl
				}
				b.Fence()
			} else {
				for i := 0; i < n; i++ {
					off := uint64(4 * i)
					x := b.ScalarLoad(xAddr + off)
					y := b.ScalarLoad(yAddr + off)
					// Hardware FPU: one multiply-class op per flop.
					b.ScalarMuls(2)
					b.ScalarOps(2)
					v := softfp.ReferenceAdd32(softfp.ReferenceMul32(aBits, x), y)
					b.ScalarStore(yAddr+off, v)
				}
			}
			return func() error { return checkU32(b, "fp-saxpy", yAddr, want) }
		},
	}
}
