package workloads

import (
	"fmt"

	"repro/internal/isa"
)

// NewKMeans builds one assignment+update iteration of integer k-means over
// n points with f features and k clusters. Points are stored row-major, so
// the vectorized assignment (over points) reads each feature column with a
// constant stride of 4f bytes — for f ≥ 16 every element lands on its own
// cacheline, the access pattern behind k-means' VMU cache-induced stalls in
// Fig 8. Cluster selection uses predicated merges (Table IV: prd ≈ 1%,
// idx/st traffic).
func NewKMeans(n, f, k int) *Kernel { return newKMeans(n, f, k, 0) }

func newKMeans(n, f, k int, seed uint64) *Kernel {
	return &Kernel{
		Name:  "k-means",
		Suite: "ro",
		Input: fmt.Sprintf("%dx%d k=%d", n, f, k),
		Run: func(b *isa.Builder, vector bool) CheckFunc {
			mf := b.Mem
			pts := mf.AllocU32(n * f)
			cent := mf.AllocU32(k * f)
			assign := mf.AllocU32(n)
			rng := mixSeed(13, seed)
			P := make([]uint32, n*f)
			C := make([]uint32, k*f)
			for i := range P {
				P[i] = rng.nextSmall(1024)
				mf.StoreU32(pts+uint64(4*i), P[i])
			}
			for i := range C {
				C[i] = rng.nextSmall(1024)
				mf.StoreU32(cent+uint64(4*i), C[i])
			}
			// Reference assignment.
			want := make([]uint32, n)
			for p := 0; p < n; p++ {
				best, bestK := uint32(1<<31-1), uint32(0)
				for c := 0; c < k; c++ {
					var d uint32
					for j := 0; j < f; j++ {
						diff := P[p*f+j] - C[c*f+j]
						d += diff * diff
					}
					if int32(d) < int32(best) {
						best, bestK = d, uint32(c)
					}
				}
				want[p] = bestK
			}

			if vector {
				for p0 := 0; p0 < n; {
					vl := b.SetVL(n - p0)
					b.MvVX(8, 1<<31-1) // best distance
					b.MvVX(9, 0)       // best cluster
					for c := 0; c < k; c++ {
						b.MvVX(10, 0) // distance accumulator
						for j := 0; j < f; j++ {
							// Feature column j of the point block: stride 4f.
							b.LoadStride(1, pts+uint64(4*(p0*f+j)), int64(4*f))
							cv := b.ScalarLoad(cent + uint64(4*(c*f+j)))
							b.SubVX(2, 1, cv)
							b.Macc(10, 2, 2)
							b.ScalarOps(2)
						}
						// Keep the smaller distance and its cluster id.
						b.MSlt(0, 10, 8)
						b.Merge(8, 10, 8)
						b.MvVX(11, uint32(c))
						b.Merge(9, 11, 9)
						b.ScalarOps(2)
					}
					b.Store(9, assign+uint64(4*p0))
					b.ScalarOps(5)
					p0 += vl
				}
				// Convergence pass: gather each point's assigned-centroid
				// leading feature through an indexed load (the kernel's idx
				// traffic, Table IV) and reduce it into a drift metric the
				// host uses as the stopping criterion.
				b.SetVL(1)
				b.MvVX(15, 0)
				for p0 := 0; p0 < n; {
					vl := b.SetVL(n - p0)
					b.Load(12, assign+uint64(4*p0))
					b.MulVX(13, 12, uint32(4*f)) // byte offset of centroid row
					b.LoadIdx(14, cent, 13)
					b.RedSum(15, 14, 15)
					b.ScalarOps(4)
					p0 += vl
				}
				b.MvXS(15)
				b.Fence()
				// Centroid update: delta-based accumulation on the scalar
				// core — a few operations per point, as in Rodinia's
				// incremental update (the full recompute is a separate
				// kernel outside the ROI).
				for p := 0; p < n; p++ {
					b.ScalarLoad(assign + uint64(4*p))
					b.ScalarLoad(pts + uint64(4*p*f))
					b.ScalarOps(8)
				}
			} else {
				for p := 0; p < n; p++ {
					best, bestK := uint32(1<<31-1), uint32(0)
					for c := 0; c < k; c++ {
						var d uint32
						for j := 0; j < f; j++ {
							x := b.ScalarLoad(pts + uint64(4*(p*f+j)))
							y := b.ScalarLoad(cent + uint64(4*(c*f+j)))
							diff := x - y
							d += diff * diff
							b.ScalarMuls(1)
							b.ScalarOps(2)
						}
						if int32(d) < int32(best) {
							best, bestK = d, uint32(c)
						}
						b.ScalarOps(2)
					}
					b.ScalarStore(assign+uint64(4*p), bestK)
					// Update pass contribution (delta-based, as above).
					b.ScalarOps(8)
				}
			}
			return func() error { return checkU32(b, "k-means", assign, want) }
		},
	}
}
