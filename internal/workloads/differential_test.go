package workloads

import (
	"fmt"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

// runFunctional executes one implementation of k at the given hardware
// vector length on a fresh flat memory and returns the post-run checksum.
func runFunctional(t testing.TB, k *Kernel, vector bool, hwvl int) uint64 {
	t.Helper()
	f := mem.NewFlat(64 << 20)
	b := isa.NewBuilder(f, hwvl, nil)
	check := k.Run(b, vector)
	kind := "scalar"
	if vector {
		kind = fmt.Sprintf("vector HWVL=%d", hwvl)
	}
	if err := check(); err != nil {
		t.Fatalf("%s %s: checker failed: %v", k.Name, kind, err)
	}
	return f.Checksum()
}

// TestScalarVectorAgree is the differential conformance harness: every
// kernel family runs scalar-vs-vector across randomized seeds and a spread
// of input scales — deliberately including trip counts that divide no
// hardware vector length, so strip-mining tails are always live — and the
// harness asserts three properties per cell:
//
//  1. both implementations pass the kernel's golden checker;
//  2. the vector implementation's final memory image is invariant across
//     hardware vector lengths (strip-mining must not leak into results);
//  3. where the family is MemEquiv, the scalar and vector images are
//     bit-identical, so a single FNV-1a checksum separates the two
//     implementations from any silent divergence.
func TestScalarVectorAgree(t *testing.T) {
	hwvls := []int{4, 64, 512}
	scales := []int{34, 67, 101} // none divides any HWVL above
	seeds := []uint64{1, 2, 3}
	for _, fam := range Families() {
		fam := fam
		t.Run(fam.Name, func(t *testing.T) {
			t.Parallel()
			for _, seed := range seeds {
				for _, scale := range scales {
					k := fam.Make(scale, seed)
					scalarSum := runFunctional(t, k, false, 4)
					var vecSum uint64
					for i, hwvl := range hwvls {
						sum := runFunctional(t, k, true, hwvl)
						if i == 0 {
							vecSum = sum
						} else if sum != vecSum {
							t.Errorf("seed=%d scale=%d: vector checksum differs across HWVLs: %#x (HWVL=%d) vs %#x (HWVL=%d)",
								seed, scale, sum, hwvl, vecSum, hwvls[0])
						}
					}
					if fam.MemEquiv && scalarSum != vecSum {
						t.Errorf("seed=%d scale=%d: scalar checksum %#x != vector checksum %#x",
							seed, scale, scalarSum, vecSum)
					}
					if !fam.MemEquiv && scalarSum == vecSum {
						// sw's scalar form keeps DP buffers host-side; if the
						// images ever converge the MemEquiv flag is stale.
						t.Errorf("seed=%d scale=%d: family marked !MemEquiv but checksums agree; update Families()",
							seed, scale)
					}
				}
			}
		})
	}
}

// TestFamiliesCoverSuite pins the Families registry against the Default
// suite: every kernel in Default() must have a family (so the differential
// harness cannot silently skip a new kernel), and family names must be
// unique.
func TestFamiliesCoverSuite(t *testing.T) {
	fams := map[string]bool{}
	for _, fam := range Families() {
		if fams[fam.Name] {
			t.Errorf("duplicate family %q", fam.Name)
		}
		fams[fam.Name] = true
	}
	for _, k := range Default() {
		if !fams[k.Name] {
			t.Errorf("kernel %q has no Families() entry", k.Name)
		}
	}
}

// TestFamilyScaleClamp pins Make's scale clamping: out-of-range scales must
// come back runnable rather than exploding the fuzzer's runtime.
func TestFamilyScaleClamp(t *testing.T) {
	for _, fam := range Families() {
		for _, scale := range []int{-7, 0, 1 << 30} {
			k := fam.Make(scale, 1)
			runFunctional(t, k, true, 64)
		}
	}
}

// FuzzKernelSizes derives an in-range kernel family, input scale and input
// seed from the fuzz arguments and asserts the same scalar/vector agreement
// properties as TestScalarVectorAgree on the single cell. The checked-in
// corpus under testdata/fuzz/FuzzKernelSizes seeds one non-VL-multiple
// scale per family.
func FuzzKernelSizes(f *testing.F) {
	fams := Families()
	for i := range fams {
		f.Add(uint16(i), uint16(50+3*i), uint64(i+1))
	}
	f.Fuzz(func(t *testing.T, famIdx, scale uint16, seed uint64) {
		fam := fams[int(famIdx)%len(fams)]
		k := fam.Make(int(scale), seed)
		scalarSum := runFunctional(t, k, false, 4)
		short := runFunctional(t, k, true, 4)
		long := runFunctional(t, k, true, 64)
		if short != long {
			t.Errorf("%s scale=%d seed=%d: vector checksum differs across HWVLs: %#x vs %#x",
				fam.Name, scale, seed, short, long)
		}
		if fam.MemEquiv && scalarSum != short {
			t.Errorf("%s scale=%d seed=%d: scalar checksum %#x != vector %#x",
				fam.Name, scale, seed, scalarSum, short)
		}
	})
}
