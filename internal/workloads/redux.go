package workloads

import (
	"repro/internal/isa"
)

// NewRedux builds a blocked reduction kernel: the sum and the unsigned max
// of an n-element array. The strip loop keeps both partials resident in
// vector lanes (one vadd and one vmaxu per strip), the sum then collapses
// with a single vredsum, and the max with an explicit log-depth gather
// tree — vid/vadd/vrgather/vmaxu per level, halving the live width each
// step — so the kernel's tail is a chain of cross-element μops whose
// serial depth grows with log2(VL). That makes redux the suite's probe for
// EVE's reduction/slide handling: longer hardware vectors shrink the strip
// loop but lengthen the dependent fold, the tension Fig. 7's reduction
// discussion turns on.
func NewRedux(n int) *Kernel { return newRedux(n, 0) }

func newRedux(n int, seed uint64) *Kernel {
	return &Kernel{
		Name:  "redux",
		Suite: "k",
		Input: itoa(n),
		Run: func(b *isa.Builder, vector bool) CheckFunc {
			f := b.Mem
			data := f.AllocU32(n)
			out := f.AllocU32(2) // [sum, max]
			rng := mixSeed(0x5D, seed)
			var wantSum, wantMax uint32
			for i := 0; i < n; i++ {
				v := rng.nextSmall(1 << 16)
				f.StoreU32(data+uint64(4*i), v)
				wantSum += v
				if v > wantMax {
					wantMax = v
				}
			}

			if vector {
				// Zero every lane the strips can touch: sums in v1, maxes
				// in v2.
				reduceVL(b, n)
				b.MvVX(1, 0)
				b.MvVX(2, 0)
				for i0 := 0; i0 < n; {
					vl := b.SetVL(n - i0)
					b.Load(3, data+uint64(4*i0))
					b.Add(1, 1, 3)
					b.MaxU(2, 2, 3)
					b.ScalarOps(3)
					i0 += vl
				}
				// Sum: one vredsum over the full accumulator width.
				reduceVL(b, n)
				b.MvSX(6, 0)
				b.RedSum(7, 1, 6)
				sum := b.MvXS(7)
				// Max: log-depth gather tree. Each level pulls the upper
				// half down with vrgather (out-of-range lanes read 0, the
				// identity for unsigned max) and folds with vmaxu.
				for width := min(n, b.HWVL()); width > 1; {
					half := (width + 1) / 2
					b.SetVL(width)
					b.VId(4)
					b.AddVX(4, 4, uint32(half))
					b.RGather(5, 2, 4)
					b.MaxU(2, 2, 5)
					b.ScalarOps(3)
					width = half
				}
				maxv := b.MvXS(2)
				b.ScalarOps(4)
				b.Fence()
				b.ScalarStore(out, sum)
				b.ScalarStore(out+4, maxv)
			} else {
				var sum, maxv uint32
				for i := 0; i < n; i++ {
					v := b.ScalarLoad(data + uint64(4*i))
					sum += v
					if v > maxv {
						maxv = v
					}
					b.ScalarOps(3)
				}
				b.ScalarOps(4)
				b.ScalarStore(out, sum)
				b.ScalarStore(out+4, maxv)
			}
			return func() error {
				return checkU32(b, "redux", out, []uint32{wantSum, wantMax})
			}
		},
	}
}
