package workloads

import (
	"fmt"

	"repro/internal/isa"
)

// NewSW builds a Smith-Waterman local alignment kernel over two length-n
// sequences with linear gap penalty, vectorized along anti-diagonals: cells
// on a diagonal are independent, the query is read unit-stride and the
// database reversed with a negative constant stride, the substitution score
// comes from a predicated compare+merge, and the running best score is
// tracked with vredmax (Table IV: ialu-heavy with xe and st traffic).
func NewSW(n int) *Kernel { return newSW(n, 0) }

func newSW(n int, seed uint64) *Kernel {
	const (
		match    = 2
		mismatch = ^uint32(0) // -1
		gap      = 1
	)
	return &Kernel{
		Name:  "sw",
		Suite: "g",
		Input: itoa(n),
		Run: func(b *isa.Builder, vector bool) CheckFunc {
			f := b.Mem
			seqA := f.AllocU32(n + 1) // 1-based
			seqB := f.AllocU32(n + 1)
			// Three diagonal buffers indexed by i in [0, n], zero-padded.
			buf := [3]uint64{f.AllocU32(n + 2), f.AllocU32(n + 2), f.AllocU32(n + 2)}
			out := f.AllocU32(1)
			rng := mixSeed(73, seed)
			A := make([]uint32, n+1)
			B := make([]uint32, n+1)
			for i := 1; i <= n; i++ {
				A[i] = rng.nextSmall(4)
				B[i] = rng.nextSmall(4)
				f.StoreU32(seqA+uint64(4*i), A[i])
				f.StoreU32(seqB+uint64(4*i), B[i])
			}
			// Reference DP.
			H := make([][]int32, n+1)
			for i := range H {
				H[i] = make([]int32, n+1)
			}
			var wantMax int32
			for i := 1; i <= n; i++ {
				for j := 1; j <= n; j++ {
					s := int32(-1)
					if A[i] == B[j] {
						s = match
					}
					v := H[i-1][j-1] + s
					if up := H[i-1][j] - gap; up > v {
						v = up
					}
					if left := H[i][j-1] - gap; left > v {
						v = left
					}
					if v < 0 {
						v = 0
					}
					H[i][j] = v
					if v > wantMax {
						wantMax = v
					}
				}
			}

			if vector {
				// prev2, prev1, cur rotate through buf. Diagonal d holds
				// cells (i, d-i); up = prev1[i-1], left = prev1[i],
				// diag = prev2[i-1].
				b.SetVL(1)
				b.MvVX(14, 0) // running max accumulator (element 0 used)
				for d := 2; d <= 2*n; d++ {
					prev2, prev1, cur := buf[d%3], buf[(d+1)%3], buf[(d+2)%3]
					lo := max(1, d-n)
					hi := min(n, d-1)
					for i0 := lo; i0 <= hi; {
						vl := b.SetVL(hi - i0 + 1)
						b.Load(1, seqA+uint64(4*i0))               // a chars
						b.LoadStride(2, seqB+uint64(4*(d-i0)), -4) // b chars reversed
						b.MSeq(0, 1, 2)                            // match mask
						b.MvVX(3, match)
						b.MvVX(4, mismatch)
						b.Merge(5, 3, 4) // substitution score
						b.Load(6, prev2+uint64(4*(i0-1)))
						b.Add(7, 6, 5) // diag + score
						b.Load(8, prev1+uint64(4*(i0-1)))
						b.SubVX(9, 8, gap) // up - gap
						b.Load(10, prev1+uint64(4*i0))
						b.SubVX(11, 10, gap) // left - gap
						b.Max(12, 7, 9)
						b.Max(12, 12, 11)
						b.MaxVX(12, 12, 0)
						b.Store(12, cur+uint64(4*i0))
						b.RedMax(14, 12, 14)
						b.ScalarOps(8)
						i0 += vl
					}
					b.ScalarOps(4)
				}
				best := b.MvXS(14)
				b.Fence()
				b.ScalarStore(out, best)
			} else {
				prev2 := make([]uint32, n+2)
				prev1 := make([]uint32, n+2)
				var best int32
				for d := 2; d <= 2*n; d++ {
					cur := make([]uint32, n+2)
					lo := max(1, d-n)
					hi := min(n, d-1)
					for i := lo; i <= hi; i++ {
						a := b.ScalarLoad(seqA + uint64(4*i))
						bb := b.ScalarLoad(seqB + uint64(4*(d-i)))
						s := int32(-1)
						if a == bb {
							s = match
						}
						v := int32(prev2[i-1]) + s
						if up := int32(prev1[i-1]) - gap; up > v {
							v = up
						}
						if left := int32(prev1[i]) - gap; left > v {
							v = left
						}
						if v < 0 {
							v = 0
						}
						if v > best {
							best = v
						}
						cur[i] = uint32(v)
						b.ScalarOps(9)
					}
					prev2, prev1 = prev1, cur
					b.ScalarOps(4)
				}
				b.ScalarStore(out, uint32(best))
			}
			return func() error {
				if got := int32(b.Mem.LoadU32(out)); got != wantMax {
					return fmt.Errorf("sw: best score = %d, want %d", got, wantMax)
				}
				return nil
			}
		},
	}
}
