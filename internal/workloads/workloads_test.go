package workloads

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

// TestKernelsFunctionalAllVLs runs every kernel's scalar and vectorized
// implementations at several hardware vector lengths (the IV's 4, DV's 64,
// EVE's long VLs) and validates the outputs against the Go references —
// proving strip-mining is VL-agnostic.
func TestKernelsFunctionalAllVLs(t *testing.T) {
	for _, k := range Small() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			// Scalar implementation.
			b := isa.NewBuilder(mem.NewFlat(64<<20), 4, nil)
			check := k.Run(b, false)
			if err := check(); err != nil {
				t.Fatalf("scalar: %v", err)
			}
			if b.Mix().DynamicInstrs() == 0 {
				t.Fatal("scalar run emitted no instructions")
			}
			// Vector implementations at representative HWVLs.
			for _, hwvl := range []int{4, 64, 512, 2048} {
				b := isa.NewBuilder(mem.NewFlat(64<<20), hwvl, nil)
				check := k.Run(b, true)
				if err := check(); err != nil {
					t.Fatalf("vector HWVL=%d: %v", hwvl, err)
				}
				m := b.Mix()
				if m.VectorInstrs == 0 {
					t.Fatalf("HWVL=%d: no vector instructions emitted", hwvl)
				}
				if m.VectorOpPct() < 0.5 {
					t.Errorf("HWVL=%d: vector op share only %.2f; kernels should be dominated by vector work",
						hwvl, m.VectorOpPct())
				}
			}
		})
	}
}

// TestLongerVLMeansFewerInstructions pins the strip-mining contract: the
// dynamic vector instruction count shrinks as HWVL grows.
func TestLongerVLMeansFewerInstructions(t *testing.T) {
	for _, k := range Small() {
		run := func(hwvl int) uint64 {
			b := isa.NewBuilder(mem.NewFlat(64<<20), hwvl, nil)
			k.Run(b, true)
			return b.Mix().VectorInstrs
		}
		short, long := run(4), run(1024)
		if long >= short {
			t.Errorf("%s: VL=1024 used %d vector instrs, VL=4 used %d; expected fewer",
				k.Name, long, short)
		}
	}
}

// TestMixReflectsKernelCharacter spot-checks Table IV's structural traits.
func TestMixReflectsKernelCharacter(t *testing.T) {
	mixOf := func(k *Kernel) isa.Mix {
		b := isa.NewBuilder(mem.NewFlat(64<<20), 64, nil)
		k.Run(b, true)
		return b.Mix()
	}
	ks := Small()

	mm, _ := ByName(ks, "mmult")
	if m := mixOf(mm); m.ByClass[isa.ClassIMul] == 0 {
		t.Error("mmult must be multiply-heavy")
	}
	bp, _ := ByName(ks, "backprop")
	if m := mixOf(bp); m.ByClass[isa.ClassST] == 0 {
		t.Error("backprop must issue constant-stride accesses")
	}
	km, _ := ByName(ks, "k-means")
	if m := mixOf(km); m.ByClass[isa.ClassST] == 0 || m.Predicated == 0 {
		t.Error("k-means must use strided loads and predication")
	}
	pf, _ := ByName(ks, "pathfinder")
	if m := mixOf(pf); m.Predicated == 0 {
		t.Error("pathfinder must use predication")
	}
	jc, _ := ByName(ks, "jacobi-2d")
	if m := mixOf(jc); m.ByClass[isa.ClassXE] == 0 {
		t.Error("jacobi-2d must use cross-element reductions (convergence term)")
	}
	sw, _ := ByName(ks, "sw")
	if m := mixOf(sw); m.ByClass[isa.ClassXE] == 0 || m.ByClass[isa.ClassST] == 0 {
		t.Error("sw must use reductions and reversed strided loads")
	}
	vv, _ := ByName(ks, "vvadd")
	if m := mixOf(vv); m.ByClass[isa.ClassUS] == 0 || m.VectorOpPct() < 0.9 {
		t.Error("vvadd must be unit-stride and almost fully vectorized")
	}
	sp, _ := ByName(ks, "spmv")
	if m := mixOf(sp); m.ByClass[isa.ClassIdx] == 0 || m.ByClass[isa.ClassXE] == 0 {
		t.Error("spmv must gather x through indexed loads and fold rows with reductions")
	}
	sc, _ := ByName(ks, "streamcluster-dist")
	if m := mixOf(sc); m.Predicated == 0 || m.ByClass[isa.ClassUS] == 0 {
		t.Error("streamcluster-dist must be mask-dominated over unit-stride feature columns")
	} else if m.ByClass[isa.ClassIdx] != 0 {
		t.Error("streamcluster-dist's feature-major layout must avoid indexed accesses")
	}
	rx, _ := ByName(ks, "redux")
	if m := mixOf(rx); m.ByClass[isa.ClassXE] == 0 {
		t.Error("redux must use cross-element reduction/gather-tree folding")
	}
}

func TestByName(t *testing.T) {
	ks := Small()
	if _, err := ByName(ks, "vvadd"); err != nil {
		t.Fatal(err)
	}
	err := func() error {
		_, err := ByName(ks, "nope")
		return err
	}()
	if err == nil {
		t.Fatal("expected error for unknown kernel")
	}
	if want := `workloads: unknown kernel "nope"`; err.Error() != want {
		t.Fatalf("error = %q, want %q", err, want)
	}
}

// TestInGeomean pins the geomean set to the paper's Table IV note: the five
// published kernels are in, and the post-paper extensions (plus the two
// Table IV kernels the paper itself excludes) stay out so the reproduced
// figure keeps its meaning.
func TestInGeomean(t *testing.T) {
	want := map[string]bool{
		"k-means": true, "pathfinder": true, "jacobi-2d": true,
		"backprop": true, "sw": true,
		"vvadd": false, "mmult": false,
		"spmv": false, "streamcluster-dist": false, "redux": false,
	}
	for _, k := range Small() {
		in, ok := want[k.Name]
		if !ok {
			t.Errorf("kernel %q missing from the geomean expectation table", k.Name)
			continue
		}
		if k.InGeomean() != in {
			t.Errorf("%s: InGeomean() = %v, want %v", k.Name, k.InGeomean(), in)
		}
	}
}

// TestFPSaxpyFunctional validates the softfloat SAXPY at several hardware
// vector lengths.
func TestFPSaxpyFunctional(t *testing.T) {
	k := NewFPSaxpy(512)
	for _, hwvl := range []int{4, 64, 1024} {
		b := isa.NewBuilder(mem.NewFlat(16<<20), hwvl, nil)
		if err := k.Run(b, true)(); err != nil {
			t.Fatalf("HWVL=%d: %v", hwvl, err)
		}
	}
	b := isa.NewBuilder(mem.NewFlat(16<<20), 4, nil)
	if err := k.Run(b, false)(); err != nil {
		t.Fatalf("scalar: %v", err)
	}
}
