package workloads

import (
	"fmt"

	"repro/internal/isa"
)

// NewBackprop builds the Rodinia backprop forward-pass kernel: hidden[j] =
// Σ_i input[i]·W[i][j] over a row-major weight matrix, vectorized across the
// input dimension. Reading weight column j then strides by 4·hid bytes —
// with hid ≥ 16 no two elements share a cacheline, the pathology behind
// backprop's >90% VMU cache-induced stalls in Fig 8 ("strided-memory
// operations with a very large stride").
func NewBackprop(in, hid int) *Kernel { return newBackprop(in, hid, 0) }

func newBackprop(in, hid int, seed uint64) *Kernel {
	return &Kernel{
		Name:  "backprop",
		Suite: "ro",
		Input: fmt.Sprintf("%d->%d", in, hid),
		Run: func(b *isa.Builder, vector bool) CheckFunc {
			f := b.Mem
			input := f.AllocU32(in)
			w := f.AllocU32(in * hid)
			hidden := f.AllocU32(hid)
			rng := mixSeed(57, seed)
			X := make([]uint32, in)
			W := make([]uint32, in*hid)
			for i := range X {
				X[i] = rng.nextSmall(256)
				f.StoreU32(input+uint64(4*i), X[i])
			}
			for i := range W {
				W[i] = rng.nextSmall(256)
				f.StoreU32(w+uint64(4*i), W[i])
			}
			want := make([]uint32, hid)
			for j := 0; j < hid; j++ {
				var acc uint32
				for i := 0; i < in; i++ {
					acc += X[i] * W[i*hid+j]
				}
				want[j] = acc >> 4 // integer squash stands in for sigmoid
			}

			if vector {
				for j := 0; j < hid; j++ {
					b.MvVX(4, 0)
					for i0 := 0; i0 < in; {
						vl := b.SetVL(in - i0)
						b.Load(1, input+uint64(4*i0)) // unit-stride activations
						// Weight column j: stride 4·hid bytes.
						b.LoadStride(2, w+uint64(4*(i0*hid+j)), int64(4*hid))
						b.Macc(4, 1, 2)
						b.ScalarOps(3)
						i0 += vl
					}
					// The accumulator holds live partials in min(in, HWVL)
					// lanes, but the final strip may have shrunk VL to the
					// tail; restore the full coverage before folding.
					reduceVL(b, in)
					b.MvSX(5, 0)
					b.RedSum(6, 4, 5)
					hj := b.MvXS(6)
					b.ScalarOps(3)
					b.ScalarStore(hidden+uint64(4*j), hj>>4)
				}
				b.Fence()
			} else {
				for j := 0; j < hid; j++ {
					var acc uint32
					for i := 0; i < in; i++ {
						x := b.ScalarLoad(input + uint64(4*i))
						wv := b.ScalarLoad(w + uint64(4*(i*hid+j)))
						acc += x * wv
						b.ScalarMuls(1)
						b.ScalarOps(2)
					}
					b.ScalarOps(3)
					b.ScalarStore(hidden+uint64(4*j), acc>>4)
				}
			}
			return func() error { return checkU32(b, "backprop", hidden, want) }
		},
	}
}
