package workloads

import (
	"fmt"

	"repro/internal/isa"
)

// NewSpMV builds a CSR sparse matrix–vector product y = A·x over rows rows,
// a column space of cols, and an average of nnzPerRow nonzeros per row (the
// per-row count varies in [nnzPerRow/2, 3·nnzPerRow/2), so strip-mining
// tails occur on nearly every row). The vectorized inner loop is the
// canonical RVV CSR pattern: a unit-stride load of the row's column
// indices, a shift to byte offsets, a vluxei32 gather of x, and a vmacc
// against the unit-stride values — indexed-load traffic (Table IV's idx
// class) whose random x accesses stress the VMU gather path and scatter
// DRAM pages, the irregular-access regime ARCANE and the RiVEC suite
// identify as the hard case for near-memory vector units.
func NewSpMV(rows, cols, nnzPerRow int) *Kernel {
	return newSpMV(rows, cols, nnzPerRow, 0)
}

func newSpMV(rows, cols, nnzPerRow int, seed uint64) *Kernel {
	return &Kernel{
		Name:  "spmv",
		Suite: "k",
		Input: fmt.Sprintf("%dx%d nnz/row~%d", rows, cols, nnzPerRow),
		Run: func(b *isa.Builder, vector bool) CheckFunc {
			f := b.Mem
			rng := mixSeed(0x5B, seed)
			// CSR structure: per-row nonzero counts first, so the column
			// index and value streams can be allocated exactly.
			nnz := make([]int, rows)
			total := 0
			half := max(nnzPerRow/2, 1)
			for r := range nnz {
				nnz[r] = half + int(rng.nextSmall(uint32(max(nnzPerRow, 1))))
				total += nnz[r]
			}
			colIdx := f.AllocU32(total)
			vals := f.AllocU32(total)
			xAddr := f.AllocU32(cols)
			yAddr := f.AllocU32(rows)
			cis := make([]uint32, total)
			vs := make([]uint32, total)
			for i := range cis {
				cis[i] = rng.nextSmall(uint32(cols))
				vs[i] = rng.nextSmall(256)
				f.StoreU32(colIdx+uint64(4*i), cis[i])
				f.StoreU32(vals+uint64(4*i), vs[i])
			}
			xs := make([]uint32, cols)
			for i := range xs {
				xs[i] = rng.nextSmall(256)
				f.StoreU32(xAddr+uint64(4*i), xs[i])
			}
			want := make([]uint32, rows)
			p := 0
			for r := 0; r < rows; r++ {
				var acc uint32
				for e := 0; e < nnz[r]; e++ {
					acc += vs[p] * xs[cis[p]]
					p++
				}
				want[r] = acc
			}

			if vector {
				p := 0
				for r := 0; r < rows; r++ {
					nr := nnz[r]
					// Zero every lane the row's strips can touch before
					// accumulating.
					reduceVL(b, nr)
					b.MvVX(4, 0)
					for e0 := 0; e0 < nr; {
						vl := b.SetVL(nr - e0)
						off := uint64(4 * (p + e0))
						b.Load(1, colIdx+off)  // column indices
						b.SllVX(2, 1, 2)       // element index -> byte offset
						b.LoadIdx(3, xAddr, 2) // gather x[col]
						b.Load(5, vals+off)    // matrix values
						b.Macc(4, 3, 5)
						b.ScalarOps(4) // row pointer, trip count, branch
						e0 += vl
					}
					reduceVL(b, nr)
					b.MvSX(6, 0)
					b.RedSum(7, 4, 6)
					yr := b.MvXS(7)
					b.ScalarOps(3)
					b.ScalarStore(yAddr+uint64(4*r), yr)
					p += nr
				}
				b.Fence()
			} else {
				p := 0
				for r := 0; r < rows; r++ {
					var acc uint32
					for e := 0; e < nnz[r]; e++ {
						ci := b.ScalarLoad(colIdx + uint64(4*p))
						v := b.ScalarLoad(vals + uint64(4*p))
						x := b.ScalarLoad(xAddr + uint64(4*ci))
						acc += v * x
						b.ScalarMuls(1)
						b.ScalarOps(3)
						p++
					}
					b.ScalarOps(3)
					b.ScalarStore(yAddr+uint64(4*r), acc)
				}
			}
			return func() error { return checkU32(b, "spmv", yAddr, want) }
		},
	}
}
