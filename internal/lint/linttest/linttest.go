// Package linttest runs a lint.Analyzer over a testdata package and checks
// its diagnostics against `// want "regexp"` comments, in the style of
// golang.org/x/tools/go/analysis/analysistest (which this module cannot
// depend on).
//
// Each testdata directory is one package. Because several analyzers key off
// the package import path (simpurity and paramlit bind specific simulator
// packages), Run takes the path to type-check the directory under — the
// same sources can be checked once as "repro/internal/sim" (restricted) and
// once as an unrestricted path to pin down both the true-positive and the
// true-negative behavior.
//
// Standard-library imports in testdata are type-checked from GOROOT source
// (go/importer's "source" compiler), so the helper works offline and
// without export data.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

var (
	mu sync.Mutex
	// One file set and importer per process: the source importer caches
	// type-checked stdlib packages, so the fmt/time/os cone is paid once.
	fset = token.NewFileSet()
	imp  = importer.ForCompiler(fset, "source", nil)
)

// expectation is one `// want` clause: a line that must produce a
// diagnostic matching rx.
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	met  bool
}

// Dep declares one auxiliary testdata package the fixture under test may
// import: Dir's sources are type-checked first and made importable under
// Path. This lets fixtures import in-repo packages (e.g. a stand-in for
// repro/internal/probe) without the helper needing export data or network
// access.
type Dep struct {
	Path string // import path the fixture's sources use
	Dir  string // directory holding the dependency's .go files
}

// depImporter resolves the declared Deps ahead of the shared GOROOT-source
// importer.
type depImporter struct {
	base types.Importer
	pkgs map[string]*types.Package
}

func (d *depImporter) Import(path string) (*types.Package, error) {
	if p, ok := d.pkgs[path]; ok {
		return p, nil
	}
	return d.base.Import(path)
}

// Run type-checks the testdata directory as package pkgpath, applies the
// analyzer, and reports mismatches between its diagnostics and the
// `// want "regexp"` comments in the sources.
func Run(t *testing.T, a *lint.Analyzer, pkgpath, dir string) {
	t.Helper()
	RunDeps(t, a, pkgpath, dir)
}

// RunDeps is Run with auxiliary importable packages. Deps are type-checked
// in order, so a later Dep may import an earlier one.
func RunDeps(t *testing.T, a *lint.Analyzer, pkgpath, dir string, deps ...Dep) {
	t.Helper()
	mu.Lock()
	defer mu.Unlock()

	local := &depImporter{base: imp, pkgs: make(map[string]*types.Package, len(deps))}
	for _, d := range deps {
		pkg, _, _, err := checkDir(local, d.Path, d.Dir, nil)
		if err != nil {
			t.Fatalf("linttest: dep %s: %v", d.Path, err)
		}
		local.pkgs[d.Path] = pkg
	}

	var wants []*expectation
	pkg, files, info, err := checkDir(local, pkgpath, dir, &wants)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}

	pass := &lint.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
	}
	var diags []lint.Diagnostic
	pass.Report = func(d lint.Diagnostic) { diags = append(diags, d) }
	if err := a.Run(pass); err != nil {
		t.Fatalf("linttest: %s: %v", a.Name, err)
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if w := matchWant(wants, pos, d.Message); w == nil {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
}

// checkDir parses and type-checks one directory as package pkgpath. When
// wants is non-nil, `// want` expectations are collected into it.
func checkDir(imp types.Importer, pkgpath, dir string, wants *[]*expectation) (*types.Package, []*ast.File, *types.Info, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil, nil, fmt.Errorf("no .go files in %s", dir)
	}

	var files []*ast.File
	for _, name := range names {
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("parse %s: %v", path, err)
		}
		files = append(files, f)
		if wants != nil {
			ws, err := parseWants(fset, f)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("%s: %v", path, err)
			}
			*wants = append(*wants, ws...)
		}
	}

	conf := types.Config{Importer: imp}
	info := lint.NewTypesInfo()
	pkg, err := conf.Check(pkgpath, fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("type-checking %s as %s: %v", dir, pkgpath, err)
	}
	return pkg, files, info, nil
}

// matchWant finds and consumes the first unmet expectation on the
// diagnostic's line whose regexp matches the message.
func matchWant(wants []*expectation, pos token.Position, msg string) *expectation {
	for _, w := range wants {
		if !w.met && w.file == pos.Filename && w.line == pos.Line && w.rx.MatchString(msg) {
			w.met = true
			return w
		}
	}
	return nil
}

// parseWants extracts `// want "re" "re"...` comments. The expectation
// binds to the line the comment starts on.
func parseWants(fset *token.FileSet, f *ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, "want ") {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimSpace(strings.TrimPrefix(text, "want"))
			for rest != "" {
				q := rest[0]
				if q != '"' && q != '`' {
					return nil, fmt.Errorf("line %d: malformed want clause near %q", pos.Line, rest)
				}
				end := 1
				for end < len(rest) && (rest[end] != q || (q == '"' && rest[end-1] == '\\')) {
					end++
				}
				if end >= len(rest) {
					return nil, fmt.Errorf("line %d: unterminated want pattern", pos.Line)
				}
				quoted := rest[:end+1]
				rest = strings.TrimSpace(rest[end+1:])
				s, err := strconv.Unquote(quoted)
				if err != nil {
					return nil, fmt.Errorf("line %d: %v", pos.Line, err)
				}
				rx, err := regexp.Compile(s)
				if err != nil {
					return nil, fmt.Errorf("line %d: %v", pos.Line, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, rx: rx})
			}
		}
	}
	return out, nil
}
