// Package linttest runs a lint.Analyzer over a testdata package and checks
// its diagnostics against `// want "regexp"` comments, in the style of
// golang.org/x/tools/go/analysis/analysistest (which this module cannot
// depend on).
//
// Each testdata directory is one package. Because several analyzers key off
// the package import path (simpurity and paramlit bind specific simulator
// packages), Run takes the path to type-check the directory under — the
// same sources can be checked once as "repro/internal/sim" (restricted) and
// once as an unrestricted path to pin down both the true-positive and the
// true-negative behavior.
//
// Standard-library imports in testdata are type-checked from GOROOT source
// (go/importer's "source" compiler), so the helper works offline and
// without export data.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

var (
	mu sync.Mutex
	// One file set and importer per process: the source importer caches
	// type-checked stdlib packages, so the fmt/time/os cone is paid once.
	fset = token.NewFileSet()
	imp  = importer.ForCompiler(fset, "source", nil)
)

// expectation is one `// want` clause: a line that must produce a
// diagnostic matching rx.
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	met  bool
}

// Run type-checks the testdata directory as package pkgpath, applies the
// analyzer, and reports mismatches between its diagnostics and the
// `// want "regexp"` comments in the sources.
func Run(t *testing.T, a *lint.Analyzer, pkgpath, dir string) {
	t.Helper()
	mu.Lock()
	defer mu.Unlock()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatalf("linttest: no .go files in %s", dir)
	}

	var files []*ast.File
	var wants []*expectation
	for _, name := range names {
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("linttest: parse %s: %v", path, err)
		}
		files = append(files, f)
		ws, err := parseWants(fset, f)
		if err != nil {
			t.Fatalf("linttest: %s: %v", path, err)
		}
		wants = append(wants, ws...)
	}

	conf := types.Config{Importer: imp}
	info := lint.NewTypesInfo()
	pkg, err := conf.Check(pkgpath, fset, files, info)
	if err != nil {
		t.Fatalf("linttest: type-checking %s as %s: %v", dir, pkgpath, err)
	}

	pass := &lint.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
	}
	var diags []lint.Diagnostic
	pass.Report = func(d lint.Diagnostic) { diags = append(diags, d) }
	if err := a.Run(pass); err != nil {
		t.Fatalf("linttest: %s: %v", a.Name, err)
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if w := matchWant(wants, pos, d.Message); w == nil {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
}

// matchWant finds and consumes the first unmet expectation on the
// diagnostic's line whose regexp matches the message.
func matchWant(wants []*expectation, pos token.Position, msg string) *expectation {
	for _, w := range wants {
		if !w.met && w.file == pos.Filename && w.line == pos.Line && w.rx.MatchString(msg) {
			w.met = true
			return w
		}
	}
	return nil
}

// parseWants extracts `// want "re" "re"...` comments. The expectation
// binds to the line the comment starts on.
func parseWants(fset *token.FileSet, f *ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, "want ") {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimSpace(strings.TrimPrefix(text, "want"))
			for rest != "" {
				q := rest[0]
				if q != '"' && q != '`' {
					return nil, fmt.Errorf("line %d: malformed want clause near %q", pos.Line, rest)
				}
				end := 1
				for end < len(rest) && (rest[end] != q || (q == '"' && rest[end-1] == '\\')) {
					end++
				}
				if end >= len(rest) {
					return nil, fmt.Errorf("line %d: unterminated want pattern", pos.Line)
				}
				quoted := rest[:end+1]
				rest = strings.TrimSpace(rest[end+1:])
				s, err := strconv.Unquote(quoted)
				if err != nil {
					return nil, fmt.Errorf("line %d: %v", pos.Line, err)
				}
				rx, err := regexp.Compile(s)
				if err != nil {
					return nil, fmt.Errorf("line %d: %v", pos.Line, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, rx: rx})
			}
		}
	}
	return out, nil
}
