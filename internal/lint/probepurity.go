package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// probePkgPath is the observability layer whose objects must stay per-run.
const probePkgPath = "repro/internal/probe"

// ProbepurityPackages are the packages in which probe objects may only live
// as per-run values: the simulation packages bound by the sim.Run purity
// contract plus the engine, ISA and probe packages themselves (which sit on
// the simulated-result path but are not in SimpurityPackages' write-check
// scope for historical layering reasons).
var ProbepurityPackages = append([]string{
	"repro/internal/eve",
	"repro/internal/isa",
	probePkgPath,
}, SimpurityPackages...)

// Probepurity forbids package-level state of probe types (Tracer, Emitter,
// Registry, Collect, ...) in simulator packages. A package-level tracer or
// registry would be shared across concurrent sim.Run calls — exactly the
// aliasing the probe layer's per-run injection design exists to prevent —
// and would let one run's observation perturb another's. Probes must be
// injected per run via sim.Config/RunTraced and stored in per-run structs.
var Probepurity = &Analyzer{
	Name: "probepurity",
	Doc: "forbid package-level variables of probe types in simulator packages; " +
		"tracers and registries are per-run objects",
	Run: runProbepurity,
}

func runProbepurity(pass *Pass) error {
	if !anyPkgMatches(pass.Pkg.Path(), ProbepurityPackages) {
		return nil
	}
	for _, f := range pass.Files {
		if inTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					// Blank vars carry no state; `var _ probe.Tracer = (*T)(nil)`
					// interface-satisfaction assertions are idiomatic and safe.
					if name.Name == "_" {
						continue
					}
					v, ok := objOf(pass.TypesInfo, name).(*types.Var)
					if !ok {
						continue
					}
					if typeUsesPackage(v.Type(), probePkgPath, make(map[types.Type]bool)) {
						pass.Reportf(name.Pos(), "package-level variable %s holds probe state (%s): "+
							"tracers and registries are per-run objects — inject them via "+
							"sim.RunTraced/probe registration and store them in per-run structs",
							name.Name, v.Type())
					}
				}
			}
		}
	}
	return nil
}

// typeUsesPackage reports whether t's structure reaches a named type defined
// in pkgpath, looking through pointers, containers, tuples, function
// signatures and struct fields. The seen set breaks recursive types.
func typeUsesPackage(t types.Type, pkgpath string, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch x := t.(type) {
	case *types.Named:
		if obj := x.Obj(); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgpath {
			return true
		}
		return typeUsesPackage(x.Underlying(), pkgpath, seen)
	case *types.Alias:
		return typeUsesPackage(types.Unalias(x), pkgpath, seen)
	case *types.Pointer:
		return typeUsesPackage(x.Elem(), pkgpath, seen)
	case *types.Slice:
		return typeUsesPackage(x.Elem(), pkgpath, seen)
	case *types.Array:
		return typeUsesPackage(x.Elem(), pkgpath, seen)
	case *types.Chan:
		return typeUsesPackage(x.Elem(), pkgpath, seen)
	case *types.Map:
		return typeUsesPackage(x.Key(), pkgpath, seen) || typeUsesPackage(x.Elem(), pkgpath, seen)
	case *types.Struct:
		for i := 0; i < x.NumFields(); i++ {
			if typeUsesPackage(x.Field(i).Type(), pkgpath, seen) {
				return true
			}
		}
	case *types.Signature:
		return typeUsesPackage(x.Params(), pkgpath, seen) || typeUsesPackage(x.Results(), pkgpath, seen)
	case *types.Tuple:
		for i := 0; i < x.Len(); i++ {
			if typeUsesPackage(x.At(i).Type(), pkgpath, seen) {
				return true
			}
		}
	case *types.Interface:
		for i := 0; i < x.NumMethods(); i++ {
			if typeUsesPackage(x.Method(i).Type(), pkgpath, seen) {
				return true
			}
		}
	}
	return false
}
