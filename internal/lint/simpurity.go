package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SimpurityPackages are the packages bound by the sim.Run purity contract:
// everything on the simulated-result path. internal/sweep is included
// because it schedules result cells; its progress observer's intentional
// wall-clock reads carry //evelint:allow annotations.
var SimpurityPackages = []string{
	"repro/internal/sim",
	"repro/internal/cpu",
	"repro/internal/mem",
	"repro/internal/vengine",
	"repro/internal/uprog",
	"repro/internal/sweep",
	"repro/internal/faults",
	"repro/internal/probe",
	// internal/metrics is a pure derivation layer over probe snapshots; its
	// outputs land verbatim in bit-stable bench reports, so it is bound by
	// both contracts (ProbepurityPackages includes this list wholesale).
	"repro/internal/metrics",
	// The campaign engine's byte-identical-resume contract is a purity
	// contract: every journaled and reported quantity must be a function of
	// the space alone. Its few legitimate wall-clock sites (retry pacing,
	// watchdog, progress) live in internal/sweep behind annotations.
	"repro/internal/campaign",
	"repro/cmd/eve-explore",
}

// Simpurity enforces the purity contract documented on sim.Run: simulation
// packages must not read wall clocks, draw unseeded randomness, probe the
// environment, or write package-level mutable state outside initialization.
// Any of these lets host state or run ordering leak into simulated results,
// breaking the bit-identical (kernel, system) sweep that internal/sweep's
// determinism regression test samples — this check makes it total.
var Simpurity = &Analyzer{
	Name: "simpurity",
	Doc: "forbid wall-clock reads, unseeded randomness, environment probes and " +
		"package-level state writes in simulation packages",
	Run: runSimpurity,
}

// impureFuncs maps package path -> function names whose call (or mention)
// injects host state into a simulation.
var impureFuncs = map[string]map[string]string{
	"time": {
		"Now":       "wall-clock read",
		"Since":     "wall-clock read",
		"Until":     "wall-clock read",
		"Sleep":     "wall-clock dependence",
		"Tick":      "wall-clock dependence",
		"After":     "wall-clock dependence",
		"AfterFunc": "wall-clock dependence",
		"NewTicker": "wall-clock dependence",
		"NewTimer":  "wall-clock dependence",
	},
	"os": {
		"Getenv":    "environment probe",
		"LookupEnv": "environment probe",
		"Environ":   "environment probe",
	},
}

// randExempt lists math/rand constructors that take an explicit source or
// seed; randomness with caller-provided seeds is reproducible and allowed.
var randExempt = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runSimpurity(pass *Pass) error {
	if !anyPkgMatches(pass.Pkg.Path(), SimpurityPackages) {
		return nil
	}
	for _, f := range pass.Files {
		if inTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Writes to package-level state are allowed during package
			// initialization: init functions run once, before any
			// simulation, on a single goroutine.
			isInit := fd.Recv == nil && fd.Name.Name == "init"
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.Ident:
					checkImpureUse(pass, x)
				case *ast.AssignStmt:
					if !isInit {
						for _, lhs := range x.Lhs {
							checkGlobalWrite(pass, lhs)
						}
					}
				case *ast.IncDecStmt:
					if !isInit {
						checkGlobalWrite(pass, x.X)
					}
				case *ast.RangeStmt:
					if !isInit && x.Tok == token.ASSIGN {
						checkGlobalWrite(pass, x.Key)
						checkGlobalWrite(pass, x.Value)
					}
				}
				return true
			})
		}
	}
	return nil
}

// checkImpureUse flags any mention of a forbidden package-level function —
// calls and function values alike, whatever the import is named.
func checkImpureUse(pass *Pass, id *ast.Ident) {
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods are judged by their receiver's provenance, not here
	}
	path := fn.Pkg().Path()
	if m, ok := impureFuncs[path]; ok {
		if why, ok := m[fn.Name()]; ok {
			pass.Reportf(id.Pos(), "%s: %s.%s injects host state into a simulation "+
				"(sim.Run purity contract)", why, path, fn.Name())
		}
		return
	}
	if (path == "math/rand" || path == "math/rand/v2") && !randExempt[fn.Name()] {
		pass.Reportf(id.Pos(), "unseeded randomness: %s.%s draws from the global source; "+
			"thread an explicitly seeded *rand.Rand through the config instead", path, fn.Name())
	}
}

// checkGlobalWrite flags an assignment whose target roots in a package-level
// variable (of this or any imported package).
func checkGlobalWrite(pass *Pass, lhs ast.Expr) {
	if lhs == nil {
		return
	}
	root := rootIdent(lhs)
	if root == nil || root.Name == "_" {
		return
	}
	v, ok := objOf(pass.TypesInfo, root).(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil {
		return
	}
	if v.Parent() != v.Pkg().Scope() {
		return // local, parameter, or receiver
	}
	pass.Reportf(lhs.Pos(), "write to package-level variable %s outside init: "+
		"simulation state must be built per sim.Run call (purity contract); "+
		"move it into a struct or initialize it in init()", v.Name())
}
