// Fixture for the probepurity analyzer, type-checked as a simulator package
// (repro/internal/sim): package-level probe state must be flagged; per-run
// fields, locals and blank interface assertions must not.
package fixture

import "repro/internal/probe"

var globalTracer probe.Tracer // want `package-level variable globalTracer holds probe state`

var globalRegistry = probe.NewRegistry() // want `package-level variable globalRegistry holds probe state`

var globalCollect probe.Collect // want `package-level variable globalCollect holds probe state`

// Indirection through containers and pointers is still shared state.
var tracerPool []probe.Tracer // want `package-level variable tracerPool holds probe state`

var emitterByName map[string]probe.Emitter // want `package-level variable emitterByName holds probe state`

// A function value capturing probe types in its signature is a probe hook.
var defaultHook func(probe.Event) // want `package-level variable defaultHook holds probe state`

// A struct type whose fields reach probe state is flagged when used at
// package level.
type wrapper struct {
	tr probe.Emitter
}

var sharedWrapper wrapper // want `package-level variable sharedWrapper holds probe state`

// Interface-satisfaction assertions carry no state and stay legal.
var _ probe.Tracer = (*probe.Collect)(nil)

// Escape hatch: an intentional exception is suppressed explicitly.
var allowedTracer probe.Tracer //evelint:allow probepurity -- fixture: demonstrates the escape hatch

// Non-probe package-level state is out of this analyzer's scope.
var plainCounter int64

// engine holds probe objects per instance — the sanctioned design.
type engine struct {
	tr  probe.Emitter
	reg *probe.Registry
}

// newEngine builds per-run probe state; locals are fine.
func newEngine(tr probe.Tracer) *engine {
	col := &probe.Collect{}
	_ = col
	return &engine{reg: probe.NewRegistry()}
}

// use silences unused-variable diagnostics for the fixture's globals.
func use() (probe.Tracer, *probe.Registry, int64) {
	_ = globalCollect
	_ = tracerPool
	_ = emitterByName
	_ = defaultHook
	_ = sharedWrapper
	_ = allowedTracer
	return globalTracer, globalRegistry, plainCounter
}
