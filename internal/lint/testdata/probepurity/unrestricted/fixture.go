// The same shapes as the restricted fixture, type-checked under a package
// path outside ProbepurityPackages (a CLI): package-level probe state is
// legal there — cmd/eve-trace's collector lives for one process — so the
// analyzer must stay silent.
package fixture

import "repro/internal/probe"

var globalTracer probe.Tracer

var globalRegistry = probe.NewRegistry()

var tracerPool []probe.Tracer

func use() (probe.Tracer, *probe.Registry, []probe.Tracer) {
	return globalTracer, globalRegistry, tracerPool
}
