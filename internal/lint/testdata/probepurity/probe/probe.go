// Package probe is a stand-in for repro/internal/probe: the linttest
// fixtures type-check against this skeleton (via linttest.Dep) so the
// probepurity analyzer can be tested offline without export data for the
// real package.
package probe

// Event is one trace event.
type Event struct {
	Comp string
	Name string
}

// Tracer receives trace events.
type Tracer interface {
	Event(Event)
}

// Emitter binds a Tracer to a component path.
type Emitter struct {
	tr   Tracer
	comp string
}

// On reports whether the emitter delivers events.
func (e Emitter) On() bool { return e.tr != nil }

// Registry is a per-run stats registry.
type Registry struct {
	names []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Collect accumulates events.
type Collect struct {
	Events []Event
}

// Event implements Tracer.
func (c *Collect) Event(ev Event) { c.Events = append(c.Events, ev) }
