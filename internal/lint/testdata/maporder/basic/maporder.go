// Package maporder is the maporder fixture; the analyzer runs on every
// package, so the import path linttest checks it under does not matter.
package maporder

import (
	"fmt"
	"sort"
	"strings"
)

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `slice keys collects entries in randomized map order`
	}
	return keys
}

func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // collect-then-sort idiom: allowed
	}
	sort.Strings(keys)
	return keys
}

func printLeak(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `output written inside range over map`
	}
}

func writerLeak(m map[string]int, b *strings.Builder) {
	for k := range m {
		b.WriteString(k) // want `WriteString called inside range over map`
	}
}

func floatLeak(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation inside range over map`
	}
	return sum
}

func intSumOK(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // integer accumulation is exactly commutative: allowed
	}
	return total
}

func firstMatch(m map[string]int, target int) string {
	for k, v := range m {
		if v == target {
			return k // want `return inside range over map`
		}
	}
	return ""
}

func breakMatch(m map[string]int) string {
	var hit string
	for k := range m {
		if len(k) > 3 {
			hit = k
			break // want `break inside range over map`
		}
	}
	return hit
}

func nestedBreakOK(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		for _, v := range vs {
			if v < 0 {
				break // binds to the inner slice loop: allowed
			}
			n += v
		}
	}
	return n
}

func reindexOK(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k // keyed writes are order-independent: allowed
	}
	return out
}

func allowEscape(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) //evelint:allow maporder -- fixture: the caller sorts before use
	}
	return keys
}
