// Package sim is a simpurity fixture; linttest checks it under the
// restricted import path repro/internal/sim.
package sim

import (
	"math/rand"
	"os"
	"time"
)

var tickCount int64 // package-level mutable state

var seeded = rand.New(rand.NewSource(42)) // explicitly seeded source: allowed

func init() {
	tickCount = 1 // initialization-time write: allowed
}

func clockLeak() time.Duration {
	start := time.Now() // want `wall-clock read`
	tickCount++         // want `write to package-level variable tickCount`
	return time.Since(start) // want `wall-clock read`
}

func randomLeak() int {
	if os.Getenv("EVE_FAST") != "" { // want `environment probe`
		return 0
	}
	return rand.Intn(8) // want `unseeded randomness`
}

func seededOK() int {
	n := seeded.Intn(8) // method on an explicitly seeded *rand.Rand: allowed
	local := 0          // local state: allowed
	local += n
	return local
}

func allowAbove() time.Time {
	//evelint:allow simpurity -- fixture: escape hatch on the line above
	return time.Now()
}

func allowTrailing() {
	tickCount = time.Now().Unix() //evelint:allow simpurity -- fixture: trailing escape hatch
}

func otherAnalyzerAllowDoesNotApply() {
	//evelint:allow errdrop -- fixture: a different analyzer's allow must not mask simpurity
	tickCount = 2 // want `write to package-level variable tickCount`
}
