// Package other is the simpurity true-negative fixture: the same impure
// patterns, type-checked under an import path outside the purity contract
// (linttest runs it as repro/internal/report), must produce no diagnostics.
package other

import (
	"math/rand"
	"os"
	"time"
)

var calls int64

func clockFine() time.Duration {
	start := time.Now()
	calls++
	_ = os.Getenv("EVE_FAST")
	_ = rand.Intn(8)
	return time.Since(start)
}
