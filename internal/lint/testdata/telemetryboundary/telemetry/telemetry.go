// Package telemetry is a stand-in for repro/internal/telemetry so the
// fixtures can import it without the linttest helper needing the real
// package's export data.
package telemetry

// Counters mirrors the shape the fixtures reference.
type Counters struct{}

// NewCounters mirrors the real constructor.
func NewCounters() *Counters { return &Counters{} }
