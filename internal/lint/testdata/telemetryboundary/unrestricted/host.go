// The same import type-checked under a host-side path: CLIs and report
// tooling are exactly where telemetry belongs, so the analyzer stays silent.
package host

import (
	"fmt"

	"repro/internal/telemetry"
)

func use() {
	fmt.Sprint(telemetry.NewCounters())
}
