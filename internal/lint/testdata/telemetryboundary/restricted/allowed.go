// The //evelint:allow hatch suppresses the finding like every other
// analyzer — the comment group above the import covers it.
package sim

import (
	"fmt"

	//evelint:allow telemetryboundary -- fixture: prove the escape hatch applies
	tel "repro/internal/telemetry"
)

func useAllowed() {
	fmt.Sprint(tel.NewCounters())
}
