// Fixture type-checked as repro/internal/sim: importing the host telemetry
// layer from a simulator package must be flagged, in test files too.
package sim

import (
	"fmt"

	"repro/internal/telemetry" // want "simulator package repro/internal/sim imports host telemetry package repro/internal/telemetry"
)

// use keeps the imports referenced so the fixture type-checks.
func use() {
	fmt.Sprint(telemetry.NewCounters())
}
