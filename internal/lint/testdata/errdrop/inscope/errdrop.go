// Package errdrop is the errdrop fixture; linttest checks it under
// repro/internal/report, which is inside the analyzer's internal/ scope.
package errdrop

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
)

type flusher struct{}

func (flusher) Flush() error { return nil }

func mayFail() error { return nil }

func pair() (int, error) { return 0, nil }

func dropped() {
	mayFail() // want `mayFail is silently discarded`
}

func droppedDeferGo() {
	defer mayFail() // want `silently discarded`
	go mayFail()    // want `silently discarded`
}

func droppedMethod(f flusher) {
	f.Flush() // want `silently discarded`
}

func explicitDiscard() {
	_ = mayFail() // explicit discard is visible in review: allowed
	n, _ := pair()
	_ = n
}

func handled() error {
	if err := mayFail(); err != nil {
		return err
	}
	return nil
}

func consoleAndMemorySinks(b *strings.Builder, buf *bytes.Buffer) {
	fmt.Println("progress")          // stdout: allowed
	fmt.Fprintf(os.Stderr, "note\n") // console: allowed
	fmt.Fprintf(b, "x")              // in-memory sink: allowed
	buf.WriteString("y")             // in-memory sink method: allowed
	b.WriteByte('z')                 // in-memory sink method: allowed
}

func interfaceWriter(w io.Writer) {
	fmt.Fprintf(w, "x\n") // want `fmt.Fprintf is silently discarded`
}

func latchingSink(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "x\n") // latching sink: error surfaces at Flush, allowed
	bw.WriteString("y")    // latching sink method: allowed
	bw.WriteByte('z')      // latching sink method: allowed
	return bw.Flush()      // Flush handled: the one place the latch fires
}

func latchingSinkFlushDropped(w io.Writer) {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "x\n")
	bw.Flush() // want `silently discarded`
}

func allowEscape() {
	mayFail() //evelint:allow errdrop -- fixture: best-effort call, failure is benign
}
