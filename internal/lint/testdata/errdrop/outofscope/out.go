// Package outofscope is the errdrop true-negative fixture: a discarded
// error under an import path outside internal/ and cmd/ (linttest runs it
// as repro/eve) must produce no diagnostics.
package outofscope

func mayFail() error { return nil }

func dropped() {
	mayFail()
}
