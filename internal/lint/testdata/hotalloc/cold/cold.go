// Package cold is the hotalloc true-negative fixture: the same allocation
// shapes under an import path outside the per-cycle packages (linttest runs
// it as repro/internal/report) must produce no diagnostics.
package cold

type dev struct{ buf []uint64 }

func takesIface(v interface{}) { _ = v }

func (d *dev) Access(n int) {
	b := make([]uint64, n)
	d.buf = append(d.buf, b...)
	takesIface(n)
	f := func() int { return n }
	_ = f()
}
