// Package hotalloc is the hotalloc fixture; linttest checks it under
// repro/internal/mem, one of the per-cycle simulation packages. Access is a
// hot root; step and fill are hot through the same-package call closure;
// cold is never reached from a root and may allocate freely.
package hotalloc

import "fmt"

type req struct {
	addr uint64
	size int
}

type boxer interface{ box() }

func takesIface(v interface{}) { _ = v }
func takesVariadic(vs ...any)  { _ = vs }
func takesConcrete(r req)      { _ = r }
func takesPointer(p *req)      { _ = p }

type dev struct {
	buf   []uint64
	saved *req
	seen  map[uint64]bool
}

func (d *dev) Access(r req) {
	b := make([]uint64, r.size) // want `hot path \(\*dev\)\.Access: make allocates on every call`
	_ = b
	d.step(r)
}

// step is hot transitively: Access calls it.
func (d *dev) step(r req) {
	p := new(req) // want `hot path \(\*dev\)\.step: new allocates on every call`
	_ = p
	d.buf = append(d.buf, r.addr) // want `hot path \(\*dev\)\.step: append to d\.buf can grow the backing array`
	//evelint:allow hotalloc -- ring compaction: grows to the high-water mark once, then reuses
	d.buf = append(d.buf, r.addr)
	d.saved = &req{addr: r.addr} // want `hot path \(\*dev\)\.step: &req\{\} escapes to the heap`
	ids := []int{1, 2}           // want `hot path \(\*dev\)\.step: \[\]int literal allocates on every call`
	_ = ids
	d.seen = map[uint64]bool{} // want `hot path \(\*dev\)\.step: map\[uint64\]bool literal allocates on every call`
	fill(d)
}

// fill is hot at depth two; closures and interface boxing are flagged.
func fill(d *dev) {
	f := func() int { return len(d.buf) } // want `hot path fill: func literal allocates a closure`
	_ = f()
	takesIface(req{})         // want `hot path fill: req\{\} boxes into interface interface\{\}`
	takesVariadic(len(d.buf)) // want `hot path fill: len\(d\.buf\) boxes into interface any`
	takesPointer(d.saved)     // pointer-shaped: stored directly, no box
	takesConcrete(req{})      // value struct literal on the stack: no alloc
	var b boxer
	takesIface(b) // already an interface: no box
	if d.saved == nil {
		// The dying path allocates exactly once; its whole argument tree
		// (including Sprintf's variadic boxing) is exempt.
		panic(fmt.Sprintf("nil saved request for %d entries", len(d.buf)))
	}
}

// cold is unreachable from any hot root: allocations here are fine.
func cold() []uint64 {
	tmp := make([]uint64, 64)
	tmp = append(tmp, 1)
	return tmp
}
