// Package mem is the paramlit fixture for a timing-model hot path; linttest
// checks it under the restricted import path repro/internal/mem.
package mem

// CacheConfig mirrors the shape of a parameter struct: literals inside its
// composite literals are the canonical provenance site.
type CacheConfig struct {
	HitLatency int64
	Ways       int
}

// DRAMModel is deliberately not a Config/Params/Cfg type.
type DRAMModel struct {
	Latency int64
}

const drainLatency = 12 // named constant: provenance is the name

var defaultL1 = CacheConfig{HitLatency: 4, Ways: 8} // Config composite: allowed

func newDRAM() *DRAMModel {
	return &DRAMModel{Latency: 50} // want `inline hardware parameter 50`
}

func busy(lat int64) int64 {
	if lat > 40 { // want `inline hardware parameter 40`
		return lat - drainLatency
	}
	return lat
}

func stall(cycles int64) int64 {
	return cycles + 7 // want `inline hardware parameter 7`
}

func retune(d *DRAMModel) {
	d.Latency = 30 // want `inline hardware parameter 30`
}

func okSmall(ways int) int {
	return ways / 2 // literals <= 2 are ordinary arithmetic: allowed
}

func okUnrelated(n int) int {
	if n > 4096 { // no parameter-flavored context: allowed
		n = 4096
	}
	return n
}

func okBoundary(c *CacheConfig, head int) bool {
	return head > 1024 && c.Ways > 0 // && is a context boundary: allowed
}

func allowEscape() *DRAMModel {
	return &DRAMModel{Latency: 50} //evelint:allow paramlit -- fixture: measured value pending a named-constant hoist
}
