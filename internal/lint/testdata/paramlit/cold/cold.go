// Package cold is the paramlit true-negative fixture: the same inline
// parameter patterns, type-checked under an import path outside the
// cpu/mem hot paths (linttest runs it as repro/internal/isa), must
// produce no diagnostics.
package cold

type DRAMModel struct {
	Latency int64
}

func newDRAM() *DRAMModel {
	return &DRAMModel{Latency: 50}
}

func busy(lat int64) int64 {
	if lat > 40 {
		return lat
	}
	return lat + 7
}
