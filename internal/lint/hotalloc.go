package lint

import (
	"go/ast"
	"go/types"
)

// HotallocPackages are the per-cycle simulation models: every allocation on
// their cycle paths multiplies by the hundreds of millions of simulated
// cycles in a sweep.
var HotallocPackages = []string{
	"repro/internal/mem",
	"repro/internal/vengine",
	"repro/internal/cpu",
	"repro/internal/uprog",
}

// hotallocRoots are the entry points of the per-cycle work in those
// packages: the timing models' advance/access methods and the μ-program
// sequencer. Everything they reach inside the same package is hot too.
var hotallocRoots = map[string]bool{
	"Cycle": true, "Tick": true, "Step": true,
	"Access": true, "CoreAccess": true,
	"Handle": true, "Drain": true,
	"Ops": true, "Muls": true, "Load": true, "Store": true, "AdvanceTo": true,
	"Run": true, "Exec": true, "exec": true,
}

// Hotalloc flags heap allocations on the simulator's per-cycle paths: the
// functions named in hotallocRoots plus their same-package callees
// (transitively). A make, new, growing append, escaping composite literal,
// closure, or interface-boxing call argument in that closure runs once per
// simulated cycle, so it turns the garbage collector into a hidden term of
// every measured latency.
//
// Not flagged, by design:
//
//   - value (struct/array) composite literals — they live on the stack;
//   - anything in the argument tree of a panic call — the dying path
//     allocates exactly once;
//   - test files, and functions the hot roots never reach;
//   - amortized growth (ring buffers, reused scratch slices) — annotate
//     //evelint:allow hotalloc with the amortization argument.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid heap allocation on the per-cycle paths of the simulation models",
	Run:  runHotalloc,
}

func runHotalloc(pass *Pass) error {
	if !anyPkgMatches(pass.Pkg.Path(), HotallocPackages) {
		return nil
	}

	// Collect the package's function declarations (source order keeps the
	// analysis deterministic) and index them by their types.Func objects so
	// call sites resolve back to declarations.
	var decls []*ast.FuncDecl
	byObj := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		if inTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			decls = append(decls, fd)
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				byObj[fn] = fd
			}
		}
	}

	// Seed with the per-cycle roots, then close over same-package calls.
	hot := make(map[*ast.FuncDecl]bool)
	for _, fd := range decls {
		if hotallocRoots[fd.Name.Name] {
			hot[fd] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fd := range decls {
			if !hot[fd] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn := calleeFunc(pass.TypesInfo, call); fn != nil {
					if callee, ok := byObj[fn]; ok && !hot[callee] {
						hot[callee] = true
						changed = true
					}
				}
				return true
			})
		}
	}

	for _, fd := range decls {
		if hot[fd] {
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

// checkHotFunc reports every allocation site in one hot function.
func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	name := funcDeclName(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, ok := objOf(pass.TypesInfo, id).(*types.Builtin); ok {
					switch b.Name() {
					case "panic":
						return false // the dying path allocates exactly once
					case "make":
						pass.Reportf(x.Pos(), "hot path %s: make allocates on every call; "+
							"hoist the buffer into a reusable field", name)
					case "new":
						pass.Reportf(x.Pos(), "hot path %s: new allocates on every call; "+
							"hoist the value into a reusable field", name)
					case "append":
						pass.Reportf(x.Pos(), "hot path %s: append to %s can grow the backing array; "+
							"preallocate, reuse a field, or annotate //evelint:allow hotalloc "+
							"if the growth is amortized", name, types.ExprString(x.Args[0]))
					}
					return true
				}
			}
			checkBoxing(pass, name, x)
		case *ast.UnaryExpr:
			if cl, ok := x.X.(*ast.CompositeLit); ok && x.Op.String() == "&" {
				pass.Reportf(x.Pos(), "hot path %s: &%s{} escapes to the heap; "+
					"reuse a field or pass the struct by value", name, compositeTypeName(pass, cl))
			}
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(x)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(x.Pos(), "hot path %s: %s literal allocates on every call; "+
					"hoist it to a package-level var or a field", name, compositeTypeName(pass, x))
			}
		case *ast.FuncLit:
			pass.Reportf(x.Pos(), "hot path %s: func literal allocates a closure; "+
				"hoist it to a named function", name)
		}
		return true
	})
}

// checkBoxing flags call arguments whose concrete value must be boxed to
// fit an interface parameter: the conversion allocates unless the value is
// already pointer-shaped.
func checkBoxing(pass *Pass, name string, call *ast.CallExpr) {
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through whole, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil || boxFree(at) {
			continue
		}
		pass.Reportf(arg.Pos(), "hot path %s: %s boxes into interface %s; "+
			"pass a pointer-shaped value or use a concrete-typed API",
			name, types.ExprString(arg), types.TypeString(pt, types.RelativeTo(pass.Pkg)))
	}
}

// boxFree reports whether a value of type t is stored in an interface
// without allocating: it is already an interface, a pointer-shaped value,
// or untyped nil.
func boxFree(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer || u.Kind() == types.UntypedNil
	}
	return false
}

// funcDeclName renders a declaration for diagnostics: Access, (*Cache).sets.
func funcDeclName(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		return "(" + types.ExprString(fd.Recv.List[0].Type) + ")." + fd.Name.Name
	}
	return fd.Name.Name
}

// compositeTypeName renders the composite literal's type for diagnostics.
func compositeTypeName(pass *Pass, cl *ast.CompositeLit) string {
	if cl.Type != nil {
		return types.ExprString(cl.Type)
	}
	if t := pass.TypesInfo.TypeOf(cl); t != nil {
		return types.TypeString(t, types.RelativeTo(pass.Pkg))
	}
	return "composite"
}
