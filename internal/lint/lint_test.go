package lint

import (
	"reflect"
	"testing"
)

func TestIdentWords(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"MulLatency", []string{"mul", "latency"}},
		{"hit_lat", []string{"hit", "lat"}},
		{"MSHRCount", []string{"mshr", "count"}},
		{"LinesPer1K", []string{"lines", "per1k"}},
		{"rob", []string{"rob"}},
		{"c", []string{"c"}},
		{"HTTPServerPort", []string{"http", "server", "port"}},
	}
	for _, c := range cases {
		if got := identWords(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("identWords(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseAllowNames(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{" simpurity -- reason", []string{"simpurity"}},
		{" simpurity,errdrop -- reason", []string{"simpurity", "errdrop"}},
		{" simpurity errdrop", []string{"simpurity", "errdrop"}},
		{" -- reason only", []string{""}},
		{"", []string{""}},
	}
	for _, c := range cases {
		if got := parseAllowNames(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseAllowNames(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestPkgMatches(t *testing.T) {
	if !pkgMatches("repro/internal/mem", "repro/internal/mem") {
		t.Error("exact path should match")
	}
	if !pkgMatches("repro/internal/mem/sub", "repro/internal/mem") {
		t.Error("subpackage should match")
	}
	if pkgMatches("repro/internal/memory", "repro/internal/mem") {
		t.Error("sibling prefix must not match")
	}
}

func TestAnalyzerNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Analyzers {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q incompletely defined", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
