// Package lint is a small static-analysis framework plus the evelint
// analyzer suite that enforces the simulator's determinism, purity and
// parameter-provenance contracts at compile time:
//
//   - simpurity: no wall-clock reads, unseeded randomness, environment
//     probes, or writes to package-level mutable state in the simulation
//     packages (internal/sim, internal/cpu, internal/mem, internal/vengine,
//     internal/uprog, internal/sweep, internal/probe). These are the
//     invariants behind the sim.Run purity contract that internal/sweep
//     parallelizes over.
//   - probepurity: no package-level variables of probe types (Tracer,
//     Emitter, Registry) in simulator packages — observability objects are
//     per-run, injected via sim.RunTraced, never shared globals.
//   - maporder: no map-iteration order leaking into results — appends
//     without a subsequent sort, direct output, floating-point
//     accumulation, or first-match selection inside `range` over a map.
//   - paramlit: hardware timing/geometry integer literals in the
//     internal/cpu and internal/mem hot paths must flow from config/params
//     structs or named constants (Table III provenance), not appear inline.
//   - errdrop: no silently discarded error returns in internal/ and cmd/.
//   - hotalloc: no heap allocation (make/new, growing appends, escaping
//     composite literals, closures, interface boxing) on the per-cycle paths
//     of the simulation models — the hot roots of internal/mem, internal/cpu,
//     internal/vengine and internal/uprog plus everything they reach.
//   - telemetryboundary: simulator packages never import the host telemetry
//     layer (internal/telemetry) — live status, pprof and run logs observe
//     the simulator through sweep.Observer, keeping the import graph
//     one-directional so host state cannot reach simulated results.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic) so the suite could be rebased onto the upstream
// framework without touching the analyzers; it is implemented on the
// standard library alone because this module has no dependencies.
//
// # Escape hatch
//
// A finding that is intentional — e.g. the sweep progress observer's
// wall-clock timing, which is explicitly outside the determinism contract —
// is suppressed with a comment on the flagged line or the line above:
//
//	//evelint:allow simpurity -- reason the contract does not apply here
//
// The analyzer list is comma- or space-separated; an empty list allows all
// analyzers. Everything after "--" is a free-form justification (strongly
// encouraged, never parsed).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check. The shape matches
// golang.org/x/tools/go/analysis.Analyzer so the suite can migrate to the
// upstream framework wholesale if this module ever takes the dependency.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass provides one analyzer run over one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers a diagnostic. Drivers set it; analyzers should prefer
	// Reportf, which applies the //evelint:allow escape hatch.
	Report func(Diagnostic)

	// allow maps file -> set of lines suppressed per analyzer name
	// ("" = all analyzers), built lazily from the file's comments.
	allow map[*ast.File]map[int][]string
}

// A Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Analyzers is the evelint suite in reporting order.
var Analyzers = []*Analyzer{Simpurity, Probepurity, Maporder, Paramlit, Errdrop, Hotalloc, Telemetryboundary}

// Reportf reports a diagnostic unless an //evelint:allow comment on the
// same line (or the line above, for a full-line comment) suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	if p.allowedAt(pos) {
		return
	}
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

const allowPrefix = "evelint:allow"

// allowedAt reports whether an //evelint:allow comment covers pos for the
// pass's analyzer.
func (p *Pass) allowedAt(pos token.Pos) bool {
	f := p.fileOf(pos)
	if f == nil {
		return false
	}
	if p.allow == nil {
		p.allow = make(map[*ast.File]map[int][]string)
	}
	lines, ok := p.allow[f]
	if !ok {
		lines = p.buildAllow(f)
		p.allow[f] = lines
	}
	for _, name := range lines[p.Fset.Position(pos).Line] {
		if name == "" || name == p.Analyzer.Name {
			return true
		}
	}
	return false
}

func (p *Pass) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// buildAllow scans a file's comments for //evelint:allow directives. A
// directive covers its own line (trailing-comment style) and, when the
// comment occupies the whole line, the first non-comment line below the
// comment group (comment-above style).
func (p *Pass) buildAllow(f *ast.File) map[int][]string {
	out := make(map[int][]string)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, allowPrefix) {
				continue
			}
			names := parseAllowNames(strings.TrimPrefix(text, allowPrefix))
			// Cover the directive's own line (trailing-comment style) and
			// the line after the comment group (comment-above style).
			line := p.Fset.Position(c.Pos()).Line
			after := p.Fset.Position(cg.End()).Line + 1
			for _, n := range names {
				out[line] = append(out[line], n)
				if after != line {
					out[after] = append(out[after], n)
				}
			}
		}
	}
	return out
}

// parseAllowNames splits the analyzer list of an allow directive. The list
// ends at "--"; an empty list means every analyzer.
func parseAllowNames(s string) []string {
	if i := strings.Index(s, "--"); i >= 0 {
		s = s[:i]
	}
	fields := strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
	if len(fields) == 0 {
		return []string{""}
	}
	return fields
}

// inTestFile reports whether pos is inside a _test.go file. The purity and
// provenance contracts bind the shipped simulator, not its tests (tests
// measure wall time, poke package state, and use ad-hoc literals freely).
func inTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// pkgMatches reports whether path is pkg or a package under pkg.
func pkgMatches(path, pkg string) bool {
	return path == pkg || strings.HasPrefix(path, pkg+"/")
}

// anyPkgMatches reports whether path matches any of pkgs.
func anyPkgMatches(path string, pkgs []string) bool {
	for _, p := range pkgs {
		if pkgMatches(path, p) {
			return true
		}
	}
	return false
}

// identWords splits an identifier into lower-cased words on camelCase and
// snake_case boundaries: "MulLatency" -> ["mul", "latency"],
// "hit_lat" -> ["hit", "lat"].
func identWords(name string) []string {
	var words []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			words = append(words, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	runes := []rune(name)
	for i, r := range runes {
		switch {
		case r == '_':
			flush()
		case r >= 'A' && r <= 'Z':
			// Start a new word at a lower->upper boundary or at the last
			// upper of an acronym run ("MSHRCount" -> mshr, count).
			if i > 0 && (isLower(runes[i-1]) || (isUpper(runes[i-1]) && i+1 < len(runes) && isLower(runes[i+1]))) {
				flush()
			}
			cur.WriteRune(r)
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return words
}

func isLower(r rune) bool { return r >= 'a' && r <= 'z' }
func isUpper(r rune) bool { return r >= 'A' && r <= 'Z' }

// rootIdent unwraps selectors, indexes, stars, parens and slices down to the
// leftmost identifier: a.b[i].c -> a. Returns nil when the expression does
// not root in an identifier (e.g. a function call result).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// objOf resolves an identifier to its object via Uses then Defs.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// calleeFunc resolves a call expression to the package-level function or
// method it invokes, or nil (builtins, function-typed variables, type
// conversions).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := objOf(info, id).(*types.Func)
	return fn
}

// isErrorType reports whether t is the built-in error interface.
var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType)
}

// RunAll runs every analyzer in the suite over one type-checked package and
// delivers diagnostics, sorted by position per analyzer, to report.
func RunAll(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info,
	report func(a *Analyzer, d Diagnostic)) error {
	for _, a := range Analyzers {
		var diags []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return fmt.Errorf("%s: %v", a.Name, err)
		}
		for _, d := range sortedDiagnostics(fset, diags) {
			report(a, d)
		}
	}
	return nil
}

// NewTypesInfo returns a types.Info with every map the analyzers consult.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// sortedDiagnostics orders diagnostics by position for stable output.
func sortedDiagnostics(fset *token.FileSet, diags []Diagnostic) []Diagnostic {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return diags
}
