package lint

import (
	"go/ast"
	"go/types"
)

// ErrdropPackages scope the check to the codebase's own code.
var ErrdropPackages = []string{"repro/internal", "repro/cmd"}

// Errdrop flags calls whose error result is silently discarded: a call used
// as a statement (including `go` and `defer`) where the callee returns an
// error. In a simulator, a swallowed error usually means a wrong number
// gets published instead of a loud failure.
//
// Not flagged, by design:
//
//   - explicit discards (`_ = f()`, `n, _ := f()`): visible in review;
//   - fmt printing to os.Stdout/os.Stderr and writes into strings.Builder
//     or bytes.Buffer, which cannot fail meaningfully;
//   - writes into a *bufio.Writer, whose first error latches and is
//     returned by Flush — the deferred-error contract makes per-write
//     checks redundant as long as Flush's error is handled (which this
//     analyzer still enforces, since Flush is not exempt);
//   - anything under //evelint:allow errdrop with a reason.
var Errdrop = &Analyzer{
	Name: "errdrop",
	Doc:  "forbid silently discarded error returns in internal/ and cmd/",
	Run:  runErrdrop,
}

func runErrdrop(pass *Pass) error {
	if !anyPkgMatches(pass.Pkg.Path(), ErrdropPackages) {
		return nil
	}
	for _, f := range pass.Files {
		if inTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch x := n.(type) {
			case *ast.ExprStmt:
				call, _ = x.X.(*ast.CallExpr)
			case *ast.GoStmt:
				call = x.Call
			case *ast.DeferStmt:
				call = x.Call
			}
			if call == nil {
				return true
			}
			if !callReturnsError(pass.TypesInfo, call) || errdropExempt(pass.TypesInfo, call) {
				return true
			}
			pass.Reportf(call.Pos(), "error result of %s is silently discarded; handle it, "+
				"assign it to _, or annotate //evelint:allow errdrop with a reason",
				calleeName(pass.TypesInfo, call))
			return true
		})
	}
	return nil
}

// callReturnsError reports whether any result of the call is an error.
func callReturnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	switch r := t.(type) {
	case *types.Tuple:
		for i := 0; i < r.Len(); i++ {
			if isErrorType(r.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

// errdropExempt reports whether the callee is in the cannot-meaningfully-
// fail set: console printing and in-memory sinks.
func errdropExempt(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	// Methods on in-memory or error-latching sinks never return a useful
	// per-call error — except Flush, which is where a latching sink finally
	// surfaces its error and so must be checked.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if isMemorySink(sig.Recv().Type()) {
			return true
		}
		return fn.Name() != "Flush" && isLatchingSink(sig.Recv().Type())
	}
	if fn.Pkg().Path() != "fmt" {
		return false
	}
	name := fn.Name()
	if hasPrefix(name, "Print") {
		return true // stdout
	}
	if hasPrefix(name, "Fprint") && len(call.Args) > 0 {
		// Writes to the console, an in-memory sink, or an error-latching
		// buffered writer (checked at Flush).
		if isMemorySink(info.TypeOf(call.Args[0])) || isLatchingSink(info.TypeOf(call.Args[0])) {
			return true
		}
		if sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr); ok {
			if obj, ok := objOf(info, sel.Sel).(*types.Var); ok && obj.Pkg() != nil &&
				obj.Pkg().Path() == "os" && (obj.Name() == "Stdout" || obj.Name() == "Stderr") {
				return true
			}
		}
	}
	return false
}

// isMemorySink reports whether t is *strings.Builder or *bytes.Buffer.
func isMemorySink(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (path == "strings" && name == "Builder") || (path == "bytes" && name == "Buffer")
}

// isLatchingSink reports whether t is *bufio.Writer: its first write error
// latches and every later call (including Flush) returns it, so the error
// is safely checked once at Flush.
func isLatchingSink(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "bufio" && named.Obj().Name() == "Writer"
}

// calleeName renders the callee for diagnostics.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call); fn != nil {
		if fn.Pkg() != nil {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return types.TypeString(sig.Recv().Type(), types.RelativeTo(fn.Pkg())) + "." + fn.Name()
			}
			return fn.Pkg().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	return "call"
}
