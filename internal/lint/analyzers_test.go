package lint_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Each analyzer is exercised twice where its scope is path-dependent: once
// with the fixture type-checked under a restricted import path (true
// positives plus //evelint:allow escape hatches) and once under an
// out-of-scope path (the same sources must be silent).

func TestSimpurityRestricted(t *testing.T) {
	linttest.Run(t, lint.Simpurity, "repro/internal/sim",
		filepath.Join("testdata", "simpurity", "restricted"))
}

func TestSimpurityUnrestricted(t *testing.T) {
	linttest.Run(t, lint.Simpurity, "repro/internal/report",
		filepath.Join("testdata", "simpurity", "unrestricted"))
}

func TestProbepurityRestricted(t *testing.T) {
	linttest.RunDeps(t, lint.Probepurity, "repro/internal/sim",
		filepath.Join("testdata", "probepurity", "restricted"),
		linttest.Dep{Path: "repro/internal/probe", Dir: filepath.Join("testdata", "probepurity", "probe")})
}

func TestProbepurityUnrestricted(t *testing.T) {
	linttest.RunDeps(t, lint.Probepurity, "repro/cmd/eve-trace",
		filepath.Join("testdata", "probepurity", "unrestricted"),
		linttest.Dep{Path: "repro/internal/probe", Dir: filepath.Join("testdata", "probepurity", "probe")})
}

func TestMaporder(t *testing.T) {
	linttest.Run(t, lint.Maporder, "repro/internal/report",
		filepath.Join("testdata", "maporder", "basic"))
}

func TestParamlitHotPath(t *testing.T) {
	linttest.Run(t, lint.Paramlit, "repro/internal/mem",
		filepath.Join("testdata", "paramlit", "hot"))
}

func TestParamlitColdPath(t *testing.T) {
	linttest.Run(t, lint.Paramlit, "repro/internal/isa",
		filepath.Join("testdata", "paramlit", "cold"))
}

func TestErrdropInScope(t *testing.T) {
	linttest.Run(t, lint.Errdrop, "repro/internal/report",
		filepath.Join("testdata", "errdrop", "inscope"))
}

func TestErrdropOutOfScope(t *testing.T) {
	linttest.Run(t, lint.Errdrop, "repro/eve",
		filepath.Join("testdata", "errdrop", "outofscope"))
}

func TestHotallocHotPath(t *testing.T) {
	linttest.Run(t, lint.Hotalloc, "repro/internal/mem",
		filepath.Join("testdata", "hotalloc", "hot"))
}

func TestHotallocColdPath(t *testing.T) {
	linttest.Run(t, lint.Hotalloc, "repro/internal/report",
		filepath.Join("testdata", "hotalloc", "cold"))
}

func TestTelemetryboundaryRestricted(t *testing.T) {
	linttest.RunDeps(t, lint.Telemetryboundary, "repro/internal/sim",
		filepath.Join("testdata", "telemetryboundary", "restricted"),
		linttest.Dep{Path: "repro/internal/telemetry", Dir: filepath.Join("testdata", "telemetryboundary", "telemetry")})
}

func TestTelemetryboundaryUnrestricted(t *testing.T) {
	linttest.RunDeps(t, lint.Telemetryboundary, "repro/internal/report",
		filepath.Join("testdata", "telemetryboundary", "unrestricted"),
		linttest.Dep{Path: "repro/internal/telemetry", Dir: filepath.Join("testdata", "telemetryboundary", "telemetry")})
}
