package lint

import (
	"strconv"
	"strings"
)

// TelemetryboundaryPackages are the simulator packages that must never see
// host telemetry: the model stack (sim, cpu, mem, vengine, uprog, sram,
// circuits) plus the workload definitions it executes. internal/telemetry
// is the host-observability layer — wall clocks, HTTP servers, pprof — and
// every one of its facilities is impure by design. The only sanctioned
// coupling is the reverse one: telemetry observes simulator packages
// through the sweep.Observer seam, so an import in this direction is
// always a layering bug, never a judgment call.
var TelemetryboundaryPackages = []string{
	"repro/internal/sim",
	"repro/internal/cpu",
	"repro/internal/mem",
	"repro/internal/vengine",
	"repro/internal/uprog",
	"repro/internal/sram",
	"repro/internal/circuits",
	"repro/internal/workloads",
}

// telemetryPkg is the root of the forbidden import cone; subpackages are
// covered too.
const telemetryPkg = "repro/internal/telemetry"

// Telemetryboundary enforces the host/simulator import boundary: simulator
// packages must not import repro/internal/telemetry (or any subpackage).
// The telemetry layer reads wall clocks and serves HTTP by design, so any
// value flowing from it into a simulation would break the bit-identical
// sweep contract the other purity analyzers defend; keeping the import
// graph one-directional makes that impossible rather than merely linted.
var Telemetryboundary = &Analyzer{
	Name: "telemetryboundary",
	Doc: "forbid simulator packages from importing the host telemetry layer " +
		"(repro/internal/telemetry)",
	Run: runTelemetryboundary,
}

func runTelemetryboundary(pass *Pass) error {
	if !anyPkgMatches(pass.Pkg.Path(), TelemetryboundaryPackages) {
		return nil
	}
	for _, f := range pass.Files {
		// Test files are NOT exempt, unlike the purity analyzers: a test
		// importing telemetry would still force the package's build to link
		// the host layer and invites the dependency to creep into non-test
		// code in review.
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path != telemetryPkg && !strings.HasPrefix(path, telemetryPkg+"/") {
				continue
			}
			pass.Reportf(imp.Pos(), "simulator package %s imports host telemetry package %s: "+
				"the telemetry layer is impure by design (wall clocks, HTTP, pprof) and must "+
				"observe the simulator through sweep.Observer, never the other way around",
				pass.Pkg.Path(), path)
		}
	}
	return nil
}
