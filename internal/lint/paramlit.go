package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// ParamlitPackages are the timing-model hot paths whose hardware parameters
// must be traceable to Table III: the core and memory-system models.
var ParamlitPackages = []string{
	"repro/internal/cpu",
	"repro/internal/mem",
}

// paramWords are identifier words that mark a value as a hardware timing or
// geometry parameter (latencies, MSHR counts, bank/way/port counts, queue
// and window depths — the Table III vocabulary).
var paramWords = map[string]bool{
	"latency": true, "lat": true, "latencies": true,
	"cycle": true, "cycles": true,
	"delay": true, "penalty": true,
	"mshr": true, "mshrs": true,
	"bank": true, "banks": true,
	"way": true, "ways": true, "assoc": true, "associativity": true,
	"window": true, "rob": true,
	"width": true, "depth": true,
	"port": true, "ports": true,
	"lane": true, "lanes": true,
	"sets": true,
}

// paramlitThreshold: integer literals up to this value are ubiquitous
// arithmetic (increments, halving, off-by-one adjustments) and never
// flagged; real Table III parameters (latencies ≥ 2 cycles appear as named
// config fields already) are larger.
const paramlitThreshold = 2

// Paramlit enforces parameter provenance in the cpu/mem timing models:
// an integer literal that the surrounding code identifies as a hardware
// timing or geometry parameter — assigned to, compared against, or composed
// with an identifier from the Table III vocabulary — must come from a
// config/params struct or a named constant, not appear inline in a hot
// path. Cycle-approximate models live or die on knowing where every timing
// constant came from; a bare `latency = 50` three calls deep is how
// reproductions silently drift from the paper.
//
// Allowed provenance sites: const declarations, and composite literals of
// types whose name contains Config, Params or Cfg (the parameter structs
// themselves, e.g. Table III's CacheConfig blocks).
var Paramlit = &Analyzer{
	Name: "paramlit",
	Doc:  "hardware timing/geometry literals in cpu/mem must flow from config structs or named constants",
	Run:  runParamlit,
}

func runParamlit(pass *Pass) error {
	if !anyPkgMatches(pass.Pkg.Path(), ParamlitPackages) {
		return nil
	}
	for _, f := range pass.Files {
		if inTestFile(pass.Fset, f.Pos()) {
			continue
		}
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			stack = append(stack, n)
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.INT {
				return true
			}
			v, err := strconv.ParseUint(strings.ReplaceAll(lit.Value, "_", ""), 0, 64)
			if err != nil || v <= paramlitThreshold {
				return true
			}
			if name, isParam := paramContext(pass, stack, lit); isParam {
				pass.Reportf(lit.Pos(), "inline hardware parameter %s for %q: hoist it into a "+
					"named constant or a Config/Params struct so its Table III provenance is traceable",
					lit.Value, name)
			}
			return true
		})
	}
	return nil
}

// paramContext walks the ancestor stack of an integer literal and decides
// whether the literal is being used as a hardware parameter, returning the
// identifier that marked it. Provenance sites (const decls, Config
// composite literals) return false immediately.
func paramContext(pass *Pass, stack []ast.Node, lit *ast.BasicLit) (string, bool) {
	// stack[len-1] == lit; walk ancestors from the innermost outward.
	for i := len(stack) - 2; i >= 0; i-- {
		switch anc := stack[i].(type) {
		case *ast.GenDecl:
			if anc.Tok == token.CONST {
				return "", false // named-constant declaration: provenance is the name
			}
		case *ast.CompositeLit:
			if isConfigComposite(pass, anc) {
				return "", false // the parameter struct itself: canonical provenance
			}
			// Non-config composite: a param-flavored field key marks the
			// literal (e.g. DRAM{Latency: 50}).
			if kv := enclosingKeyValue(anc, lit); kv != nil {
				if id, ok := kv.Key.(*ast.Ident); ok && hasParamWord(id.Name) {
					return id.Name, true
				}
			}
			return "", false
		case *ast.BinaryExpr:
			// A logical operator is a context boundary: the literal's value
			// context is fully contained in one operand of && / ||.
			if anc.Op == token.LAND || anc.Op == token.LOR {
				return "", false
			}
			// The literal combines or compares with a param-named operand:
			// `lat > 40`, `cycles + 3*bankStall`.
			other := anc.X
			if lit.Pos() < anc.OpPos {
				other = anc.Y
			}
			if name, ok := paramIdentIn(other); ok {
				return name, true
			}
		case *ast.AssignStmt:
			for _, lhs := range anc.Lhs {
				if root := rootIdent(lhs); root != nil && hasParamWord(root.Name) {
					return root.Name, true
				}
				// Selector writes name the field: c.hitLatency = 4.
				if sel, ok := lhs.(*ast.SelectorExpr); ok && hasParamWord(sel.Sel.Name) {
					return sel.Sel.Name, true
				}
			}
		case *ast.ValueSpec:
			// A const spec is itself the provenance site (the ValueSpec sits
			// below its GenDecl on the stack, so check the token here).
			if i > 0 {
				if gd, ok := stack[i-1].(*ast.GenDecl); ok && gd.Tok == token.CONST {
					return "", false
				}
			}
			for _, name := range anc.Names {
				if hasParamWord(name.Name) {
					return name.Name, true
				}
			}
		case *ast.BlockStmt, *ast.FuncDecl, *ast.File:
			return "", false // scanned far enough; no param context found
		}
	}
	return "", false
}

// isConfigComposite reports whether a composite literal builds a
// config/params struct (by type name).
func isConfigComposite(pass *Pass, cl *ast.CompositeLit) bool {
	t := pass.TypesInfo.TypeOf(cl)
	if t == nil {
		return false
	}
	name := t.String()
	if named, ok := t.(*types.Named); ok {
		name = named.Obj().Name()
	} else if ptr, ok := t.(*types.Pointer); ok {
		if named, ok := ptr.Elem().(*types.Named); ok {
			name = named.Obj().Name()
		}
	}
	return strings.Contains(name, "Config") || strings.Contains(name, "Params") ||
		strings.Contains(name, "Cfg")
}

// enclosingKeyValue finds the KeyValueExpr element of cl that contains lit.
func enclosingKeyValue(cl *ast.CompositeLit, lit *ast.BasicLit) *ast.KeyValueExpr {
	for _, elt := range cl.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok &&
			kv.Pos() <= lit.Pos() && lit.End() <= kv.End() {
			return kv
		}
	}
	return nil
}

// paramIdentIn reports the first param-flavored identifier mentioned
// anywhere in e.
func paramIdentIn(e ast.Expr) (string, bool) {
	var name string
	ast.Inspect(e, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && hasParamWord(id.Name) {
			name = id.Name
			return false
		}
		return true
	})
	return name, name != ""
}

// hasParamWord reports whether any camelCase/snake_case word of the
// identifier is in the Table III parameter vocabulary.
func hasParamWord(name string) bool {
	for _, w := range identWords(name) {
		if paramWords[w] {
			return true
		}
	}
	return false
}
