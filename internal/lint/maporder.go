package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Maporder flags `range` over a map whose body lets the iteration order —
// which Go randomizes per run — reach an observable result:
//
//   - appending to a slice that is never subsequently sorted in the same
//     function (the collect-then-sort idiom is recognized and allowed);
//   - writing output (fmt printing, Write* methods) from inside the loop;
//   - accumulating floating-point values, whose rounding is
//     order-sensitive even when the operation is mathematically
//     commutative;
//   - first-match selection: returning from, or breaking out of, the loop
//     body, which picks whichever matching entry the runtime happened to
//     yield first.
//
// Commutative integer accumulation, map-to-map transforms keyed by unique
// keys, and existence checks that set only a boolean are order-independent
// and deliberately not flagged — except that `break` is still reported,
// because proving the loop breaks only on semantically unique matches is
// beyond a local analysis; annotate or refactor to a keyed lookup.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc:  "forbid map-iteration order leaking into slices, output, float sums, or first-match results",
	Run:  runMaporder,
}

func runMaporder(pass *Pass) error {
	for _, f := range pass.Files {
		// Applies to tests too: an order-dependent test is a flaky test.
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkMapRanges(pass, body)
			}
			return true
		})
	}
	return nil
}

// checkMapRanges finds map ranges directly inside one function body
// (ignoring nested function literals, which are visited separately).
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, rs, body)
		return true
	})
}

func checkMapRangeBody(pass *Pass, rs *ast.RangeStmt, fnBody *ast.BlockStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch x := n.(type) {
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, x, rs, fnBody)
		case *ast.CallExpr:
			if fn := calleeFunc(pass.TypesInfo, x); fn != nil {
				if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
					(hasPrefix(fn.Name(), "Print") || hasPrefix(fn.Name(), "Fprint")) {
					pass.Reportf(x.Pos(), "output written inside range over map: "+
						"iteration order is randomized; collect into a slice, sort, then print")
				} else if isWriterMethod(fn) {
					pass.Reportf(x.Pos(), "%s called inside range over map: "+
						"iteration order is randomized; collect into a slice, sort, then write", fn.Name())
				}
			}
		case *ast.ReturnStmt:
			if len(x.Results) > 0 {
				pass.Reportf(x.Pos(), "return inside range over map selects whichever entry "+
					"iterates first; iterate a deterministic key order or use a keyed lookup")
			}
		case *ast.BranchStmt:
			// Only a break that terminates the map range itself (not an
			// inner loop/switch) is a first-match exit.
			if x.Tok == token.BREAK && x.Label == nil && breaksRange(rs, x) {
				pass.Reportf(x.Pos(), "break inside range over map is a first-match exit "+
					"over randomized iteration order; iterate a deterministic key order instead")
			}
		}
		return true
	})
}

// checkMapRangeAssign flags float accumulation, and appends whose slice is
// never sorted later in the enclosing function.
func checkMapRangeAssign(pass *Pass, as *ast.AssignStmt, rs *ast.RangeStmt, fnBody *ast.BlockStmt) {
	// Float accumulation via compound assignment: order changes rounding.
	if as.Tok == token.ADD_ASSIGN || as.Tok == token.SUB_ASSIGN ||
		as.Tok == token.MUL_ASSIGN || as.Tok == token.QUO_ASSIGN {
		for _, lhs := range as.Lhs {
			if t := pass.TypesInfo.TypeOf(lhs); t != nil && isFloat(t) {
				pass.Reportf(as.Pos(), "floating-point accumulation inside range over map: "+
					"rounding depends on the randomized iteration order; sort the keys first")
			}
		}
	}
	// append(s, ...) collected from a map range must be sorted afterwards.
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
			continue
		}
		if i >= len(as.Lhs) {
			continue
		}
		root := rootIdent(as.Lhs[i])
		if root == nil {
			continue
		}
		obj := objOf(pass.TypesInfo, root)
		if obj == nil || sortedAfter(pass, fnBody, rs, obj) {
			continue
		}
		pass.Reportf(call.Pos(), "slice %s collects entries in randomized map order and is "+
			"never sorted in this function; sort it before use", root.Name)
	}
}

// sortedAfter reports whether obj is passed to a sort/slices call located
// after the range statement within the enclosing function body.
func sortedAfter(pass *Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if root := rootIdent(arg); root != nil && objOf(pass.TypesInfo, root) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// breaksRange reports whether an unlabeled break inside the range body
// terminates the range loop itself — i.e. no nested for, range, switch, or
// select between the two re-binds the break.
func breaksRange(rs *ast.RangeStmt, brk *ast.BranchStmt) bool {
	bindsToRange := true
	ast.Inspect(rs.Body, func(node ast.Node) bool {
		if !bindsToRange || node == nil {
			return false
		}
		switch node.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
			*ast.TypeSwitchStmt, *ast.SelectStmt:
			if node.Pos() <= brk.Pos() && brk.End() <= node.End() {
				bindsToRange = false
			}
			return false
		}
		return true
	})
	return bindsToRange
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// isWriterMethod reports whether fn is a Write/WriteString/WriteByte/etc.
// method — writing through any sink from inside a map range leaks order.
func isWriterMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return hasPrefix(fn.Name(), "Write")
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
