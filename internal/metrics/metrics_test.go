package metrics_test

import (
	"encoding/json"
	"math"
	"sort"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// statmap publishes fixed counters (and one float for dram.bus.busy_cycles)
// under its registration path.
type statmap map[string]float64

func (m statmap) ProbeStats(s *probe.Scope) {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if strings.HasSuffix(n, "busy_cycles") {
			s.Float(n, m[n])
		} else {
			s.Counter(n, int64(m[n]))
		}
	}
}

// snapshot assembles a synthetic probe snapshot from per-component maps.
func snapshot(t *testing.T, comps map[string]statmap) probe.Stats {
	t.Helper()
	r := probe.NewRegistry()
	names := make([]string, 0, len(comps))
	for n := range comps {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r.Register(n, comps[n])
	}
	return r.Snapshot()
}

// lat is a hand-computable parameterization used by the table below
// (also exactly Table III: L1 2, L2 8, LLC 12, DRAM 50).
var lat = metrics.Latencies{L1Hit: 2, L2Hit: 8, LLCHit: 12, DRAM: 50}

func TestDeriveHandComputed(t *testing.T) {
	st := snapshot(t, map[string]statmap{
		"core": {"insts": 2000},
		"l1d":  {"accesses": 1000, "misses": 100, "mshr.stall_cycles": 50, "bank.stall_cycles": 10},
		"l2":   {"accesses": 100, "misses": 50, "mshr.stall_cycles": 20, "bank.stall_cycles": 0},
		"llc":  {"accesses": 50, "misses": 10, "mshr.stall_cycles": 0, "bank.stall_cycles": 0},
		"dram": {"bus.busy_cycles": 100},
		"eve":  {"breakdown.busy": 600, "breakdown.vmu_stall": 400},
	})
	const cycles = 1000
	d := metrics.DeriveLat(st, cycles, lat)

	if d.Degenerate {
		t.Fatal("fully populated cell flagged degenerate")
	}
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		// l1d: 100/1000 misses, 1000·100/2000 MPKI, 50/1000 and 10/1000 stalls.
		{"l1d.miss_rate", d.L1D.MissRate, 0.1},
		{"l1d.mpki", d.L1D.MPKI, 50},
		{"l1d.mshr_stall_frac", d.L1D.MSHRStallFrac, 0.05},
		{"l1d.bank_stall_frac", d.L1D.BankStallFrac, 0.01},
		// l2: 50/100, 1000·50/2000; llc: 10/50, 1000·10/2000.
		{"l2.miss_rate", d.L2.MissRate, 0.5},
		{"l2.mpki", d.L2.MPKI, 25},
		{"l2.mshr_stall_frac", d.L2.MSHRStallFrac, 0.02},
		{"llc.miss_rate", d.LLC.MissRate, 0.2},
		{"llc.mpki", d.LLC.MPKI, 5},
		// AMAT = 2 + 0.1·(8 + 0.5·(12 + 0.2·50)) = 2 + 0.1·19 = 3.9.
		{"amat", d.AMAT, 3.9},
		// 100 busy cycles over 1000 total; ×19.2 peak bytes/cycle.
		{"dram_bus_util", d.DRAMBusUtil, 0.1},
		{"dram_bw_bytes_per_cycle", d.DRAMBandwidth, 1.92},
		// Shares of the 1000-cycle breakdown.
		{"fig7.busy", d.Fig7Shares["busy"], 0.6},
		{"fig7.vmu_stall", d.Fig7Shares["vmu_stall"], 0.4},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 1e-12 {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
	if d.L1D.Accesses != 1000 || d.L1D.Misses != 100 {
		t.Errorf("l1d raw counters = %d/%d, want 1000/100", d.L1D.Accesses, d.L1D.Misses)
	}
	if d.L1D.Degenerate || d.L2.Degenerate || d.LLC.Degenerate {
		t.Error("populated levels flagged degenerate")
	}
}

func TestPeakDRAMBandwidthIsDDR4_2400(t *testing.T) {
	// 19.2 GB/s at the 1 GHz core clock = 19.2 bytes/cycle, derived from the
	// timing model's own line-occupancy constant.
	if got := metrics.PeakDRAMBytesPerCycle(); math.Abs(got-19.2) > 1e-9 {
		t.Errorf("PeakDRAMBytesPerCycle = %v, want 19.2", got)
	}
}

func TestTableIIIMatchesHierarchyConstants(t *testing.T) {
	if got := metrics.TableIII(); got != lat {
		t.Errorf("TableIII() = %+v, want %+v", got, lat)
	}
}

// TestDeriveDegenerateGuards pins the satellite contract: zero-access cache
// levels and zero-cycle cells derive to 0 with Degenerate set — never NaN or
// ±Inf, which encoding/json would refuse to marshal.
func TestDeriveDegenerateGuards(t *testing.T) {
	full := map[string]statmap{
		"core": {"insts": 100},
		"l1d":  {"accesses": 10, "misses": 5},
		"dram": {"bus.busy_cycles": 3},
	}
	cases := []struct {
		name   string
		st     probe.Stats
		cycles int64
		check  func(t *testing.T, d metrics.Derived)
	}{
		{
			name: "empty snapshot (crashed cell)", st: nil, cycles: 100,
			check: func(t *testing.T, d metrics.Derived) {
				if !d.Degenerate {
					t.Error("empty snapshot not flagged degenerate")
				}
				if d.AMAT != 0 || d.DRAMBusUtil != 0 || d.Fig7Shares != nil {
					t.Errorf("empty snapshot derived non-zero metrics: %+v", d)
				}
			},
		},
		{
			name: "zero-cycle cell", st: snapshot(t, full), cycles: 0,
			check: func(t *testing.T, d metrics.Derived) {
				if !d.Degenerate {
					t.Error("zero-cycle cell not flagged degenerate")
				}
				if d.L1D.MSHRStallFrac != 0 || d.DRAMBusUtil != 0 {
					t.Errorf("zero-cycle cell derived non-zero fractions: %+v", d)
				}
			},
		},
		{
			name: "zero-access inner level",
			st: snapshot(t, map[string]statmap{
				"core": {"insts": 100},
				"l1d":  {"accesses": 10, "misses": 0},
				"l2":   {"accesses": 0, "misses": 0},
			}),
			cycles: 100,
			check: func(t *testing.T, d metrics.Derived) {
				if !d.L2.Degenerate {
					t.Error("zero-access l2 not flagged degenerate")
				}
				if d.L2.MissRate != 0 {
					t.Errorf("zero-access l2 miss rate = %v, want 0", d.L2.MissRate)
				}
				if d.Degenerate {
					t.Error("cell flagged degenerate although l1d was derivable")
				}
				// All L1 hits: AMAT is exactly the L1 hit latency.
				if d.AMAT != float64(lat.L1Hit) {
					t.Errorf("AMAT = %v, want %v", d.AMAT, lat.L1Hit)
				}
			},
		},
		{
			name: "no memory accesses at all",
			st: snapshot(t, map[string]statmap{
				"core": {"insts": 100},
				"l1d":  {"accesses": 0, "misses": 0},
			}),
			cycles: 100,
			check: func(t *testing.T, d metrics.Derived) {
				if !d.Degenerate || !d.L1D.Degenerate {
					t.Error("access-free cell not flagged degenerate")
				}
				if d.AMAT != 0 {
					t.Errorf("AMAT = %v, want 0 for an access-free cell", d.AMAT)
				}
			},
		},
		{
			name: "zero instructions",
			st: snapshot(t, map[string]statmap{
				"core": {"insts": 0},
				"l1d":  {"accesses": 10, "misses": 5},
			}),
			cycles: 100,
			check: func(t *testing.T, d metrics.Derived) {
				if !d.L1D.Degenerate {
					t.Error("zero-instruction level not flagged degenerate")
				}
				if d.L1D.MPKI != 0 {
					t.Errorf("MPKI = %v, want 0 with zero instructions", d.L1D.MPKI)
				}
				if d.L1D.MissRate != 0.5 {
					t.Errorf("miss rate = %v, want 0.5 (still derivable)", d.L1D.MissRate)
				}
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := metrics.DeriveLat(c.st, c.cycles, lat)
			c.check(t, d)
			// Every degenerate shape must survive the JSON encoder.
			out, err := json.Marshal(d)
			if err != nil {
				t.Fatalf("json.Marshal of degenerate metrics: %v", err)
			}
			for _, bad := range []string{"NaN", "Inf"} {
				if strings.Contains(string(out), bad) {
					t.Errorf("marshaled metrics contain %s: %s", bad, out)
				}
			}
		})
	}
}

// TestFig7SharesSumToOne cross-checks the share derivation against the
// engine's own breakdown on real simulations: for every EVE system, at
// vvadd sizes n={4,32}, the category shares must sum to 1 and each share
// must equal breakdown[c]/total bit-for-bit.
func TestFig7SharesSumToOne(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		cfg := sim.Config{Kind: sim.SysO3EVE, N: n}
		for _, elems := range []int{4, 32} {
			r := sim.Run(cfg, workloads.NewVVAdd(elems))
			if r.Err != nil {
				t.Fatalf("%s vvadd(%d): %v", cfg.Name(), elems, r.Err)
			}
			d := metrics.Derive(r.Stats, r.Cycles)
			if d.Fig7Shares == nil {
				t.Fatalf("%s vvadd(%d): no Fig 7 shares for an EVE system", cfg.Name(), elems)
			}
			names := make([]string, 0, len(d.Fig7Shares))
			for name := range d.Fig7Shares {
				names = append(names, name)
			}
			sort.Strings(names)
			sum := 0.0
			for _, name := range names {
				sum += d.Fig7Shares[name]
			}
			if math.Abs(sum-1.0) > 1e-9 {
				t.Errorf("%s vvadd(%d): shares sum to %v, want 1.0", cfg.Name(), elems, sum)
			}
			total := r.Breakdown.Total()
			for _, name := range names {
				want, ok := r.Stats.Int("eve.breakdown." + name)
				if !ok {
					t.Fatalf("%s: share %q has no breakdown counter", cfg.Name(), name)
				}
				if got := d.Fig7Shares[name]; got != float64(want)/float64(total) {
					t.Errorf("%s vvadd(%d) share %s = %v, want %v/%v",
						cfg.Name(), elems, name, got, want, total)
				}
			}
		}
	}
}

// TestNonEVESystemHasNoShares checks the shares map stays nil for systems
// without an EVE engine.
func TestNonEVESystemHasNoShares(t *testing.T) {
	r := sim.Run(sim.Config{Kind: sim.SysO3}, workloads.NewVVAdd(32))
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if d := metrics.Derive(r.Stats, r.Cycles); d.Fig7Shares != nil {
		t.Errorf("O3 cell derived Fig 7 shares: %v", d.Fig7Shares)
	}
}
