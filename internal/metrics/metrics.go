// Package metrics is the derivation layer over the probe snapshot: it turns
// the raw counters PR 4 threaded through the simulator (per-level cache
// counters, MSHR/bank stall cycles, DRAM bus occupancy, Fig 7 breakdowns)
// into the interpreted metrics a simulator artifact is judged by — miss
// rates, MPKI, AMAT, stall fractions, DRAM bandwidth utilization and Fig 7
// category shares.
//
// The layer is pure: Derive reads an immutable probe.Stats snapshot plus the
// run's cycle count and returns a value — no wall clocks, no package-level
// state, no I/O (the package sits in evelint's simpurity/probepurity
// restricted lists). Every division is guarded: a zero-access cache level or
// a zero-cycle cell yields 0 for the affected metrics plus a Degenerate
// flag, never NaN or ±Inf — Go's encoding/json refuses to marshal either,
// and downstream consumers (eve-figures -json, eve-bench) emit Derived
// values verbatim.
package metrics

import (
	"repro/internal/mem"
	"repro/internal/probe"
)

// Latencies parameterizes the AMAT chain: per-level hit latencies plus the
// DRAM access latency, in core cycles.
type Latencies struct {
	L1Hit  int64
	L2Hit  int64
	LLCHit int64
	DRAM   int64
}

// TableIII returns the simulated hierarchy's latencies — the same constants
// the timing model charges (mem.L1DConfig et al.), so AMAT derived here is
// consistent with the cycles the caches actually produced.
func TableIII() Latencies {
	return Latencies{
		L1Hit:  mem.L1DConfig.HitLatency,
		L2Hit:  mem.L2Config.HitLatency,
		LLCHit: mem.LLCConfig.HitLatency,
		DRAM:   mem.DefaultDRAM().Latency,
	}
}

// PeakDRAMBytesPerCycle is single-channel DDR4-2400's peak transfer rate at
// the ~1 GHz core clock, derived from the timing model's own bus occupancy
// (64-byte line / cycles-per-line = 19.2 bytes/cycle = 19.2 GB/s).
func PeakDRAMBytesPerCycle() float64 {
	return float64(mem.LineBytes) / mem.DefaultDRAM().CyclesPerLine
}

// Level is the derived view of one cache level.
type Level struct {
	Accesses int64 `json:"accesses"`
	Misses   int64 `json:"misses"`
	// MissRate is Misses/Accesses — the level's local miss rate.
	MissRate float64 `json:"miss_rate"`
	// MPKI is misses per thousand committed core instructions.
	MPKI float64 `json:"mpki"`
	// MSHRStallFrac and BankStallFrac are the level's structural-stall
	// cycles as a fraction of the cell's total execution time.
	MSHRStallFrac float64 `json:"mshr_stall_frac"`
	BankStallFrac float64 `json:"bank_stall_frac"`
	// Degenerate marks a level whose ratios were underivable (zero accesses,
	// zero instructions or a zero-cycle cell); the affected metrics are 0.
	Degenerate bool `json:"degenerate,omitempty"`
}

// Derived is the full per-cell metric set.
type Derived struct {
	L1D Level `json:"l1d"`
	L2  Level `json:"l2"`
	LLC Level `json:"llc"`
	// AMAT is the average memory access time seen by the core in cycles:
	// L1Hit + m1·(L2Hit + m2·(LLCHit + m3·DRAM)) over the local miss rates.
	AMAT float64 `json:"amat"`
	// DRAMBusUtil is dram.bus.busy_cycles / total cycles in [0,1] (>1 would
	// mean the model let the bus oversubscribe — worth staring at).
	DRAMBusUtil float64 `json:"dram_bus_util"`
	// DRAMBandwidth is the achieved average DRAM bandwidth in bytes/cycle:
	// DRAMBusUtil × the peak DDR4-2400 rate (19.2 bytes/cycle at 1 GHz).
	DRAMBandwidth float64 `json:"dram_bw_bytes_per_cycle"`
	// Fig7Shares is the execution-time breakdown normalized to the engine's
	// total — each category's fraction, summing to 1 — present only for
	// cells with a non-empty eve.breakdown subtree (EVE systems).
	Fig7Shares map[string]float64 `json:"fig7_shares,omitempty"`
	// Degenerate marks a cell whose cell-wide ratios were underivable
	// (zero cycles or an empty snapshot, i.e. a crashed run).
	Degenerate bool `json:"degenerate,omitempty"`
}

// Derive computes the metric set for one cell from its end-of-run snapshot
// and total cycle count, using the Table III latencies for AMAT.
func Derive(st probe.Stats, cycles int64) Derived {
	return DeriveLat(st, cycles, TableIII())
}

// DeriveLat is Derive with an explicit latency parameterization (ablation
// studies with non-Table-III hierarchies; hand-computable tests).
func DeriveLat(st probe.Stats, cycles int64, lat Latencies) Derived {
	var d Derived
	if len(st) == 0 || cycles <= 0 {
		// A crashed or zero-cycle cell: nothing is derivable. Every field
		// stays at its zero value — valid JSON, no NaN/Inf.
		d.Degenerate = true
		return d
	}
	insts, _ := st.Int("core.insts")
	d.L1D = deriveLevel(st.Filter("l1d."), "l1d", insts, cycles)
	d.L2 = deriveLevel(st.Filter("l2."), "l2", insts, cycles)
	d.LLC = deriveLevel(st.Filter("llc."), "llc", insts, cycles)

	// AMAT chains the local miss rates: a degenerate inner level (zero
	// accesses) contributes miss rate 0, which is exact — no accesses at L2
	// means no L1 miss ever paid an L2 miss. A degenerate L1 (the core did
	// no data accesses at all) makes AMAT itself meaningless.
	if d.L1D.Accesses == 0 {
		d.Degenerate = true
	} else {
		d.AMAT = float64(lat.L1Hit) + d.L1D.MissRate*
			(float64(lat.L2Hit)+d.L2.MissRate*
				(float64(lat.LLCHit)+d.LLC.MissRate*float64(lat.DRAM)))
	}

	busy, _ := st.Float("dram.bus.busy_cycles")
	d.DRAMBusUtil = busy / float64(cycles)
	d.DRAMBandwidth = d.DRAMBusUtil * PeakDRAMBytesPerCycle()

	d.Fig7Shares = fig7Shares(st)
	return d
}

// deriveLevel computes one level's metrics from its snapshot subtree.
// sub is st.Filter(prefix+"."); stat names inside keep their full dotted
// form, so lookups stay prefixed.
func deriveLevel(sub probe.Stats, prefix string, insts, cycles int64) Level {
	var l Level
	l.Accesses, _ = sub.Int(prefix + ".accesses")
	l.Misses, _ = sub.Int(prefix + ".misses")
	mshr, _ := sub.Int(prefix + ".mshr.stall_cycles")
	bank, _ := sub.Int(prefix + ".bank.stall_cycles")

	if l.Accesses > 0 {
		l.MissRate = float64(l.Misses) / float64(l.Accesses)
	} else {
		l.Degenerate = true
	}
	if insts > 0 {
		l.MPKI = 1000 * float64(l.Misses) / float64(insts)
	} else {
		l.Degenerate = true
	}
	// cycles > 0 is guaranteed by DeriveLat's cell-wide guard.
	l.MSHRStallFrac = float64(mshr) / float64(cycles)
	l.BankStallFrac = float64(bank) / float64(cycles)
	return l
}

// fig7Shares normalizes the eve.breakdown subtree to category fractions of
// the engine's total execution time, or nil for non-EVE cells (no subtree
// or an all-zero one).
func fig7Shares(st probe.Stats) map[string]float64 {
	const prefix = "eve.breakdown."
	sub := st.Filter(prefix)
	var total int64
	for _, s := range sub {
		total += s.Int
	}
	if total <= 0 {
		return nil
	}
	shares := make(map[string]float64, len(sub))
	for _, s := range sub {
		shares[s.Name[len(prefix):]] = float64(s.Int) / float64(total)
	}
	return shares
}
