// Package campaign is the crash-safe design-space exploration engine: a
// declarative parameter space — kernel, input scale, input seed, EVE-n
// segmentation, L2 associativity/MSHR/bank counts, LLC capacity, DRAM
// latency, all flowing through sim.Config so the paramlit provenance
// discipline holds — enumerated into deterministic content-hashed cell IDs
// and executed on the internal/sweep pool through a robustness layer:
//
//   - an append-only, fsync'd, CRC-guarded journal (one JSON line per
//     completed cell, torn-tail tolerant) that lets a killed campaign
//     resume where it stopped and reproduce the uninterrupted run's final
//     report byte-identically;
//   - a per-cell wall-clock watchdog and bounded deterministic-backoff
//     retries for host trouble (sweep.Options.CellTimeout / Retry);
//   - context cancellation threaded through sweep.ForEach, so SIGINT
//     checkpoints and exits cleanly instead of dropping work;
//   - graceful degradation: a cell that exhausts its retry budget is
//     recorded failed-with-reason and the rest of the campaign completes.
//
// Every simulated quantity in a campaign's output is a pure function of the
// space: reports carry no timestamps, no wall times, no attempt counts, so
// an interrupted-and-resumed campaign byte-matches a never-killed one.
package campaign

import (
	"fmt"
	"hash/fnv"

	"repro/internal/analytic"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Space is a declarative parameter space: the cross product of its axes.
// Empty axes inherit single-point Table III defaults (Seeds inherits {0},
// N inherits the full factor sweep), so a Space only names the axes it
// explores. The JSON form is what cmd/eve-explore's -space flag loads.
type Space struct {
	// Kernels are workload family names (workloads.Families).
	Kernels []string `json:"kernels"`
	// Scales are input scales, roughly the strip-mined trip count
	// (workloads.Family.Make clamps into the family's valid range).
	Scales []int `json:"scales"`
	// Seeds are input-generator seeds; 0 selects the canonical published
	// input streams.
	Seeds []uint64 `json:"seeds,omitempty"`
	// N are EVE segmentation factors (analytic.Factors).
	N []int `json:"n,omitempty"`
	// L2Ways sweeps the L2 associativity — and with it the EVE way-split,
	// since spawning partitions half the ways. Power of two, ≥ 2.
	L2Ways []int `json:"l2_ways,omitempty"`
	// L2MSHRs and L2Banks sweep the L2 miss-handling and banking resources.
	L2MSHRs []int `json:"l2_mshrs,omitempty"`
	L2Banks []int `json:"l2_banks,omitempty"`
	// LLCKB sweeps LLC capacity in KiB (power of two: the 16-way geometry
	// needs a power-of-two set count).
	LLCKB []int `json:"llc_kb,omitempty"`
	// DRAMLatency sweeps the closed-page DRAM access latency in core cycles.
	DRAMLatency []int64 `json:"dram_latency,omitempty"`
	// MaxUProgCycles is the per-micro-program watchdog budget applied to
	// every cell (not an axis); zero selects uprog.DefaultMaxCycles.
	MaxUProgCycles int `json:"max_uprog_cycles,omitempty"`
}

// Params is one fully-specified cell of a space: every axis pinned to a
// concrete value. The zero value is not a valid cell; cells come from
// Space.Enumerate.
type Params struct {
	Kernel      string `json:"kernel"`
	Scale       int    `json:"scale"`
	Seed        uint64 `json:"seed"`
	N           int    `json:"n"`
	L2Ways      int    `json:"l2_ways"`
	L2MSHRs     int    `json:"l2_mshrs"`
	L2Banks     int    `json:"l2_banks"`
	LLCKB       int    `json:"llc_kb"`
	DRAMLatency int64  `json:"dram_latency"`
}

// String renders the canonical parameter tuple — the injective form the
// cell ID hashes and error messages cite.
func (p Params) String() string {
	return fmt.Sprintf("kernel=%s scale=%d seed=%d n=%d l2_ways=%d l2_mshrs=%d l2_banks=%d llc_kb=%d dram_lat=%d",
		p.Kernel, p.Scale, p.Seed, p.N, p.L2Ways, p.L2MSHRs, p.L2Banks, p.LLCKB, p.DRAMLatency)
}

// ID is the cell's content-hashed identity: FNV-1a over the canonical
// rendering, in fixed-width hex. Deterministic across processes and
// architectures; the journal and resume logic key on it.
func (p Params) ID() string {
	h := fnv.New64a()
	// Write to a hash never fails.
	//evelint:allow errdrop -- hash.Hash.Write is documented to never return an error
	h.Write([]byte(p.String()))
	return fmt.Sprintf("%016x", h.Sum64())
}

// Label is the compact per-cell descriptor progress observers print as the
// "system" column.
func (p Params) Label() string {
	return fmt.Sprintf("n%d/w%d/m%d/b%d/llc%d/d%d", p.N, p.L2Ways, p.L2MSHRs, p.L2Banks, p.LLCKB, p.DRAMLatency)
}

// SystemConfig assembles the cell's simulated system: O3+EVE-n over a
// Table III hierarchy with the cell's geometry, resource and DRAM axes
// applied through sim.MemParams.
func (p Params) SystemConfig(maxUProgCycles int) sim.Config {
	l2 := mem.L2Config
	l2.Ways = p.L2Ways
	l2.MSHRs = p.L2MSHRs
	l2.Banks = p.L2Banks
	llc := mem.LLCConfig
	llc.SizeBytes = p.LLCKB << 10
	return sim.Config{
		Kind:           sim.SysO3EVE,
		N:              p.N,
		MaxUProgCycles: maxUProgCycles,
		Mem: &sim.MemParams{
			L1D:         mem.L1DConfig,
			L2:          l2,
			LLC:         llc,
			DRAMLatency: p.DRAMLatency,
		},
	}
}

// Workload builds the cell's kernel from its family at the cell's scale and
// seed.
func (p Params) Workload() (*workloads.Kernel, error) {
	for _, f := range workloads.Families() {
		if f.Name == p.Kernel {
			return f.Make(p.Scale, p.Seed), nil
		}
	}
	return nil, fmt.Errorf("campaign: unknown kernel family %q", p.Kernel)
}

// withDefaults fills empty axes with their single-point Table III values
// (N inherits the full factor sweep, Seeds the canonical seed 0), so
// enumeration and cell IDs always see fully-specified tuples.
func (s Space) withDefaults() Space {
	if len(s.Seeds) == 0 {
		s.Seeds = []uint64{0}
	}
	if len(s.N) == 0 {
		s.N = append([]int(nil), analytic.Factors...)
	}
	if len(s.L2Ways) == 0 {
		s.L2Ways = []int{mem.L2Config.Ways}
	}
	if len(s.L2MSHRs) == 0 {
		s.L2MSHRs = []int{mem.L2Config.MSHRs}
	}
	if len(s.L2Banks) == 0 {
		s.L2Banks = []int{mem.L2Config.Banks}
	}
	if len(s.LLCKB) == 0 {
		s.LLCKB = []int{mem.LLCConfig.SizeBytes >> 10}
	}
	if len(s.DRAMLatency) == 0 {
		s.DRAMLatency = []int64{mem.DefaultDRAM().Latency}
	}
	return s
}

// powerOfTwo reports whether v is a positive power of two.
func powerOfTwo(v int) bool { return v > 0 && v&(v-1) == 0 }

// Validate rejects spaces that cannot simulate: unknown kernel families,
// invalid EVE factors, geometries the cache model would panic on, and
// duplicate axis values (which would enumerate two cells with the same
// content hash — a journal ambiguity). Call on the defaulted space; Run
// does this for you.
func (s Space) Validate() error {
	if len(s.Kernels) == 0 {
		return fmt.Errorf("campaign: space has no kernels")
	}
	if len(s.Scales) == 0 {
		return fmt.Errorf("campaign: space has no input scales")
	}
	known := map[string]bool{}
	for _, f := range workloads.Families() {
		known[f.Name] = true
	}
	if err := uniqueAxis("kernels", s.Kernels, func(k string) error {
		if !known[k] {
			return fmt.Errorf("unknown kernel family %q", k)
		}
		return nil
	}); err != nil {
		return err
	}
	if err := uniqueAxis("scales", s.Scales, func(v int) error {
		if v <= 0 {
			return fmt.Errorf("scale %d must be positive", v)
		}
		return nil
	}); err != nil {
		return err
	}
	if err := uniqueAxis("seeds", s.Seeds, func(uint64) error { return nil }); err != nil {
		return err
	}
	factors := map[int]bool{}
	for _, n := range analytic.Factors {
		factors[n] = true
	}
	if err := uniqueAxis("n", s.N, func(n int) error {
		if !factors[n] {
			return fmt.Errorf("EVE factor %d not in %v", n, analytic.Factors)
		}
		return nil
	}); err != nil {
		return err
	}
	if err := uniqueAxis("l2_ways", s.L2Ways, func(w int) error {
		if !powerOfTwo(w) || w < 2 {
			return fmt.Errorf("L2 ways %d must be a power of two ≥ 2 (EVE spawning splits the ways in half)", w)
		}
		return nil
	}); err != nil {
		return err
	}
	if err := uniqueAxis("l2_mshrs", s.L2MSHRs, func(v int) error {
		if v <= 0 {
			return fmt.Errorf("L2 MSHR count %d must be positive", v)
		}
		return nil
	}); err != nil {
		return err
	}
	if err := uniqueAxis("l2_banks", s.L2Banks, func(v int) error {
		if v <= 0 {
			return fmt.Errorf("L2 bank count %d must be positive", v)
		}
		return nil
	}); err != nil {
		return err
	}
	if err := uniqueAxis("llc_kb", s.LLCKB, func(kb int) error {
		// 16-way LLC over 64-byte lines: KiB must be a power of two for a
		// power-of-two set count (mem.NewCache panics otherwise).
		if !powerOfTwo(kb) || kb < 64 {
			return fmt.Errorf("LLC capacity %d KiB must be a power of two ≥ 64", kb)
		}
		return nil
	}); err != nil {
		return err
	}
	return uniqueAxis("dram_latency", s.DRAMLatency, func(v int64) error {
		if v <= 0 {
			return fmt.Errorf("DRAM latency %d must be positive", v)
		}
		return nil
	})
}

// uniqueAxis applies a per-value check and rejects duplicates within the
// axis.
func uniqueAxis[T comparable](name string, values []T, check func(T) error) error {
	seen := map[T]bool{}
	for _, v := range values {
		if err := check(v); err != nil {
			return fmt.Errorf("campaign: axis %s: %w", name, err)
		}
		if seen[v] {
			return fmt.Errorf("campaign: axis %s: duplicate value %v", name, v)
		}
		seen[v] = true
	}
	return nil
}

// Size is the cell count of the defaulted space.
func (s Space) Size() int {
	s = s.withDefaults()
	return len(s.Kernels) * len(s.Scales) * len(s.Seeds) * len(s.N) *
		len(s.L2Ways) * len(s.L2MSHRs) * len(s.L2Banks) * len(s.LLCKB) * len(s.DRAMLatency)
}

// Enumerate lists every cell of the defaulted space in canonical row-major
// axis order (kernel, scale, seed, n, l2 ways, l2 mshrs, l2 banks, llc,
// dram latency). The order is deterministic: it defines the cell order of
// journals, reports and resume bookkeeping.
func (s Space) Enumerate() []Params {
	s = s.withDefaults()
	out := make([]Params, 0, s.Size())
	for _, k := range s.Kernels {
		for _, sc := range s.Scales {
			for _, seed := range s.Seeds {
				for _, n := range s.N {
					for _, w := range s.L2Ways {
						for _, m := range s.L2MSHRs {
							for _, b := range s.L2Banks {
								for _, kb := range s.LLCKB {
									for _, dl := range s.DRAMLatency {
										out = append(out, Params{
											Kernel: k, Scale: sc, Seed: seed, N: n,
											L2Ways: w, L2MSHRs: m, L2Banks: b,
											LLCKB: kb, DRAMLatency: dl,
										})
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}
