package campaign

import (
	"os"
	"path/filepath"
	"testing"
)

// copyFixture stages a checked-in journal into a temp dir, since Open
// repairs (truncates) torn files in place and the fixtures must stay
// byte-exact in the repository.
func copyFixture(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return dst
}

// TestJournalFixtures pins the on-disk journal format: journals written by
// earlier builds must keep resuming under later ones, so these byte-exact
// files are the compatibility contract. journal-complete holds four
// records (one failed-with-reason); journal-torn-tail is the same file
// SIGKILLed mid-append; journal-corrupt-mid has a flipped byte inside its
// second record.
func TestJournalFixtures(t *testing.T) {
	cases := []struct {
		file    string
		records int
	}{
		{"journal-complete.log", 4},
		{"journal-torn-tail.log", 3},
		{"journal-corrupt-mid.log", 1},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			j, recs, err := Open(copyFixture(t, tc.file), 1)
			if err != nil {
				t.Fatal(err)
			}
			defer j.Close()
			if len(recs) != tc.records {
				t.Fatalf("recovered %d records, want %d", len(recs), tc.records)
			}
			for i, r := range recs {
				if r.Cell == "" || r.Params.Kernel != "vvadd" {
					t.Errorf("record %d malformed: %+v", i, r)
				}
				if r.Status == StatusFailed && r.Reason == "" {
					t.Errorf("record %d failed without a reason", i)
				}
			}
		})
	}
}

// TestJournalFixtureResume: the fixture records resolve against their
// generating space, and since ok and failed are both final dispositions, a
// resume over the complete fixture re-runs nothing and reports straight
// from the checkpoint.
func TestJournalFixtureResume(t *testing.T) {
	s := Space{Kernels: []string{"vvadd"}, Scales: []int{256}, N: []int{1, 8}, L2Ways: []int{4, 8}}
	obs := &countObserver{}
	rep, err := Run(RunConfig{
		Space:    s,
		Journal:  copyFixture(t, "journal-complete.log"),
		Resume:   true,
		Workers:  1,
		Observer: obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if obs.cells != 0 {
		t.Errorf("resume over the complete fixture re-ran %d cells", obs.cells)
	}
	if rep.Summary.OK != 3 || rep.Summary.Failed != 1 {
		t.Errorf("fixture summary = %+v, want 3 ok + 1 failed", rep.Summary)
	}
}
