package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
)

// Status is a cell's terminal disposition in the journal.
type Status string

const (
	// StatusOK: the cell simulated and its checker validated. Final.
	StatusOK Status = "ok"
	// StatusFailed: the cell exhausted its retry budget or failed
	// deterministically (checker mismatch, SimError). Final: resume does
	// not re-run it — deterministic failures fail identically.
	StatusFailed Status = "failed"
	// StatusTimeout: the cell blew its wall-clock budget. Wall time is a
	// host property, not a simulated one, so resume re-runs these cells.
	StatusTimeout Status = "timeout"
)

// Record is one journal line: a cell's identity, full parameters (so a
// journal is self-describing without its space file), disposition, and the
// simulated quantities a report needs. Every field is deterministic in the
// cell parameters — no timestamps, wall times or attempt counts — which is
// what makes resumed reports byte-identical to uninterrupted ones.
type Record struct {
	Cell   string `json:"cell"`
	Params Params `json:"params"`
	Status Status `json:"status"`
	Reason string `json:"reason,omitempty"`

	Cycles       int64   `json:"cycles,omitempty"`
	EnergyReadEq float64 `json:"energy_read_eq,omitempty"`
	SpawnCost    int64   `json:"spawn_cost,omitempty"`
	AreaFactor   float64 `json:"area_factor,omitempty"`
	L2MissRate   float64 `json:"l2_miss_rate,omitempty"`
	LLCMissRate  float64 `json:"llc_miss_rate,omitempty"`
	DRAMBusUtil  float64 `json:"dram_bus_util,omitempty"`
}

// Journal is the campaign's append-only checkpoint log. Each line is
//
//	%08x SP json \n
//
// — the CRC32 (IEEE) of the JSON body, a space, the body. A line is valid
// only if it is newline-terminated, its checksum matches, and the body
// decodes to a Record with a cell ID; anything after the first invalid
// line is a torn tail from a crash mid-write and is truncated away on
// open. Appends fsync every fsyncEvery records (and on Close), bounding
// loss to the cells completed since the last sync — which resume simply
// re-runs.
type Journal struct {
	mu         sync.Mutex
	f          *os.File
	fsyncEvery int
	sinceSync  int
}

// Create starts a fresh journal at path, truncating any existing file.
// fsyncEvery ≤ 1 syncs every append.
func Create(path string, fsyncEvery int) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: create journal: %w", err)
	}
	return &Journal{f: f, fsyncEvery: fsyncEvery}, nil
}

// Open reopens an existing journal for resumption: it reads the prior
// records in file order, truncates any torn tail left by a crash, and
// positions the journal for appending. A missing file is not an error —
// it opens empty, so -resume works on the very first run too.
func Open(path string, fsyncEvery int) (*Journal, []Record, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		j, cerr := Create(path, fsyncEvery)
		return j, nil, cerr
	}
	if err != nil {
		return nil, nil, fmt.Errorf("campaign: read journal: %w", err)
	}
	recs, valid := parseRecords(data)
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("campaign: reopen journal: %w", err)
	}
	if valid < len(data) {
		// Torn tail: a crash interrupted the last write. Cut the file back
		// to its last valid record; the cells the tail covered re-run.
		if err := f.Truncate(int64(valid)); err != nil {
			_ = f.Close()
			return nil, nil, fmt.Errorf("campaign: truncate torn journal tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(valid), 0); err != nil {
		_ = f.Close()
		return nil, nil, fmt.Errorf("campaign: seek journal: %w", err)
	}
	return &Journal{f: f, fsyncEvery: fsyncEvery}, recs, nil
}

// parseRecords decodes lines until the first invalid one, returning the
// valid records and the byte offset where validity ends.
func parseRecords(data []byte) ([]Record, int) {
	var recs []Record
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // unterminated: torn mid-line
		}
		line := data[off : off+nl]
		rec, ok := parseLine(line)
		if !ok {
			break
		}
		recs = append(recs, rec)
		off += nl + 1
	}
	return recs, off
}

// parseLine validates one journal line: checksum, then JSON, then shape.
func parseLine(line []byte) (Record, bool) {
	var rec Record
	// "%08x body": 8 hex digits, one space, at least "{}".
	if len(line) < 11 || line[8] != ' ' {
		return rec, false
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &want); err != nil {
		return rec, false
	}
	body := line[9:]
	if crc32.ChecksumIEEE(body) != want {
		return rec, false
	}
	if err := json.Unmarshal(body, &rec); err != nil || rec.Cell == "" {
		return Record{}, false
	}
	return rec, true
}

// Append writes one record, checksummed, and syncs per the fsync policy.
// Safe for concurrent use by sweep workers.
func (j *Journal) Append(rec Record) error {
	body, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("campaign: encode journal record: %w", err)
	}
	line := fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(body), body)
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.WriteString(line); err != nil {
		return fmt.Errorf("campaign: append journal record: %w", err)
	}
	j.sinceSync++
	if j.fsyncEvery <= 1 || j.sinceSync >= j.fsyncEvery {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("campaign: fsync journal: %w", err)
		}
		j.sinceSync = 0
	}
	return nil
}

// Sync forces any buffered appends to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.sinceSync == 0 {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("campaign: fsync journal: %w", err)
	}
	j.sinceSync = 0
	return nil
}

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	if err := j.Sync(); err != nil {
		_ = j.f.Close()
		return err
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("campaign: close journal: %w", err)
	}
	return nil
}
