package campaign

import "sort"

// Frontier is the Pareto-optimal set of one workload's cells — one
// (kernel, scale, seed) triple — under simultaneous minimization of
// cycles, area factor and array energy. It answers the campaign's
// headline question: which (n, geometry, DRAM) points are worth building,
// and which are dominated by a cheaper-or-faster neighbour.
type Frontier struct {
	Kernel string   `json:"kernel"`
	Scale  int      `json:"scale"`
	Seed   uint64   `json:"seed"`
	Points []Record `json:"points"`
}

// dominates reports whether a is at least as good as b on every objective
// and strictly better on at least one (minimizing all three).
func dominates(a, b Record) bool {
	if a.Cycles > b.Cycles || a.AreaFactor > b.AreaFactor || a.EnergyReadEq > b.EnergyReadEq {
		return false
	}
	return a.Cycles < b.Cycles || a.AreaFactor < b.AreaFactor || a.EnergyReadEq < b.EnergyReadEq
}

// Frontiers groups the ok cells by workload — in first-appearance order,
// which for a report's cells is enumeration order — and keeps each group's
// non-dominated points, sorted by (area, cycles, energy) for stable output.
// Failed and timed-out cells carry no simulated objectives and never enter
// a frontier.
func Frontiers(cells []Record) []Frontier {
	type key struct {
		kernel string
		scale  int
		seed   uint64
	}
	index := map[key]int{}
	var out []Frontier
	for _, c := range cells {
		if c.Status != StatusOK {
			continue
		}
		k := key{c.Params.Kernel, c.Params.Scale, c.Params.Seed}
		i, ok := index[k]
		if !ok {
			i = len(out)
			index[k] = i
			out = append(out, Frontier{Kernel: k.kernel, Scale: k.scale, Seed: k.seed})
		}
		out[i].Points = append(out[i].Points, c)
	}
	for i := range out {
		out[i].Points = paretoFilter(out[i].Points)
	}
	return out
}

// paretoFilter keeps the non-dominated records.
func paretoFilter(pts []Record) []Record {
	var keep []Record
	for i, p := range pts {
		dominated := false
		for j, q := range pts {
			if i != j && dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			keep = append(keep, p)
		}
	}
	sort.SliceStable(keep, func(a, b int) bool {
		if keep[a].AreaFactor != keep[b].AreaFactor {
			return keep[a].AreaFactor < keep[b].AreaFactor
		}
		if keep[a].Cycles != keep[b].Cycles {
			return keep[a].Cycles < keep[b].Cycles
		}
		return keep[a].EnergyReadEq < keep[b].EnergyReadEq
	})
	return keep
}
