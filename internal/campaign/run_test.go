package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/sweep"
)

// smallSpace is a 4-cell space fast enough for unit tests.
func smallSpace() Space {
	return Space{
		Kernels: []string{"vvadd"},
		Scales:  []int{256},
		N:       []int{1, 8},
		L2Ways:  []int{4, 8},
	}
}

// countObserver counts CellDone calls (thread-safe).
type countObserver struct {
	mu    sync.Mutex
	cells int
}

func (o *countObserver) CellStart(int, string, string) {}
func (o *countObserver) CellDone(int, int, int, sim.Result, time.Duration) {
	o.mu.Lock()
	o.cells++
	o.mu.Unlock()
}
func (o *countObserver) SweepDone(int, int) {}

func reportJSON(t *testing.T, r *Report) []byte {
	t.Helper()
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRunCompletesAndResumes: a full run settles every cell; resuming over
// its journal re-simulates nothing and reproduces the report byte-for-byte.
func TestRunCompletesAndResumes(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "j.log")
	rep, err := Run(RunConfig{Space: smallSpace(), Journal: jpath, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.Total != 4 || rep.Summary.OK != 4 {
		t.Fatalf("summary = %+v, want 4 ok cells", rep.Summary)
	}
	if len(rep.Pareto) != 1 || len(rep.Pareto[0].Points) == 0 {
		t.Fatalf("no Pareto frontier: %+v", rep.Pareto)
	}
	golden := reportJSON(t, rep)

	obs := &countObserver{}
	rep2, err := Run(RunConfig{Space: smallSpace(), Journal: jpath, Resume: true, Workers: 2, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	if obs.cells != 0 {
		t.Errorf("resume over a complete journal re-simulated %d cells", obs.cells)
	}
	if got := reportJSON(t, rep2); !reflect.DeepEqual(got, golden) {
		t.Errorf("resumed report is not byte-identical:\n%s\n--- vs ---\n%s", got, golden)
	}
}

// TestRunResumePartialJournal: a journal holding a strict prefix of the
// cells resumes the remainder only, and the stitched report byte-matches an
// uninterrupted run.
func TestRunResumePartialJournal(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.log")
	rep, err := Run(RunConfig{Space: smallSpace(), Journal: full, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	golden := reportJSON(t, rep)

	// Hand-build a checkpoint holding only the first two cells.
	partial := filepath.Join(dir, "partial.log")
	j, err := Create(partial, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Cells[:2] {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	obs := &countObserver{}
	rep2, err := Run(RunConfig{Space: smallSpace(), Journal: partial, Resume: true, Workers: 1, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	if obs.cells != 2 {
		t.Errorf("resume ran %d cells, want exactly the 2 missing ones", obs.cells)
	}
	if got := reportJSON(t, rep2); !reflect.DeepEqual(got, golden) {
		t.Errorf("stitched report differs from the uninterrupted run:\n%s\n--- vs ---\n%s", got, golden)
	}
}

// TestRunGracefulDegradation: cells that fail deterministically (here the
// micro-program watchdog via an absurdly small budget) are recorded
// failed-with-reason after the retry budget, and the campaign still
// completes with a report instead of aborting.
func TestRunGracefulDegradation(t *testing.T) {
	s := smallSpace()
	s.MaxUProgCycles = 1 // every EVE cell trips the watchdog
	rep, err := Run(RunConfig{Space: s, Workers: 2, Retries: 1})
	if err != nil {
		t.Fatalf("a campaign of failing cells must still complete: %v", err)
	}
	if rep.Summary.Failed != rep.Summary.Total || rep.Summary.Total != 4 {
		t.Fatalf("summary = %+v, want all 4 failed", rep.Summary)
	}
	for _, c := range rep.Cells {
		if c.Status != StatusFailed || c.Reason == "" {
			t.Errorf("cell %s: status %s reason %q, want failed-with-reason", c.Cell, c.Status, c.Reason)
		}
	}
	if len(rep.Pareto) != 0 {
		t.Errorf("failed cells produced a Pareto frontier: %+v", rep.Pareto)
	}
}

// TestRunCancelCheckpointsAndResumes: cancelling before the sweep starts
// yields InterruptedError with an intact (empty-but-valid) checkpoint; a
// later resume completes the campaign.
func TestRunCancelCheckpointsAndResumes(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "j.log")
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled from the start: every cell is skipped
	_, err := Run(RunConfig{Space: smallSpace(), Journal: jpath, Workers: 2, Context: ctx})
	var ie *InterruptedError
	if !errors.As(err, &ie) {
		t.Fatalf("cancelled campaign returned %v, want *InterruptedError", err)
	}
	if ie.Completed != 0 || ie.Total != 4 {
		t.Fatalf("interrupt bookkeeping: %+v", ie)
	}

	rep, err := Run(RunConfig{Space: smallSpace(), Journal: jpath, Resume: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.OK != 4 {
		t.Fatalf("resume after cancellation: %+v", rep.Summary)
	}
}

// TestRunRejectsForeignJournal: resuming a journal from a different space
// must refuse rather than stitch incompatible results.
func TestRunRejectsForeignJournal(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "j.log")
	if _, err := Run(RunConfig{Space: smallSpace(), Journal: jpath, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	other := smallSpace()
	other.Scales = []int{512} // different space, same journal
	_, err := Run(RunConfig{Space: other, Journal: jpath, Resume: true, Workers: 1})
	if err == nil {
		t.Fatal("foreign journal accepted")
	}
}

// TestRunTimeoutRecordedAndRetriedOnResume: a cell over its wall budget is
// journaled as timeout (with the budget in the reason), and a resume run
// schedules it again rather than treating it as settled.
func TestRunTimeoutRecordedAndRetriedOnResume(t *testing.T) {
	// Drive the journal/resume logic directly: a synthetic timeout record
	// for one cell of the space.
	s := smallSpace().withDefaults()
	all := s.Enumerate()
	jpath := filepath.Join(t.TempDir(), "j.log")
	j, err := Create(jpath, 1)
	if err != nil {
		t.Fatal(err)
	}
	terr := &sweep.TimeoutError{Kernel: "vvadd@256", System: all[0].Label(), Budget: time.Millisecond}
	if err := j.Append(makeRecord(all[0], sim.Result{Err: terr})); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	obs := &countObserver{}
	rep, err := Run(RunConfig{Space: smallSpace(), Journal: jpath, Resume: true, Workers: 1, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	if obs.cells != 4 {
		t.Errorf("resume ran %d cells, want all 4 (the timeout cell must re-run)", obs.cells)
	}
	if rep.Summary.OK != 4 || rep.Summary.Timeout != 0 {
		t.Errorf("re-run timeout cell not settled: %+v", rep.Summary)
	}
}

// TestMakeRecordDispositions: the result→record mapping that defines what
// resume considers final.
func TestMakeRecordDispositions(t *testing.T) {
	p := smallSpace().withDefaults().Enumerate()[0]
	okRec := makeRecord(p, sim.Result{System: "O3+EVE-1", Cycles: 123, EnergyEq: 4.5})
	if okRec.Status != StatusOK || okRec.Cycles != 123 || okRec.AreaFactor <= 0 {
		t.Errorf("ok record: %+v", okRec)
	}
	tRec := makeRecord(p, sim.Result{Err: &sweep.TimeoutError{Kernel: "k", System: "s", Budget: time.Second}})
	if tRec.Status != StatusTimeout || tRec.Reason == "" {
		t.Errorf("timeout record: %+v", tRec)
	}
	fRec := makeRecord(p, sim.Result{Err: errors.New("checker mismatch\nelement 9")})
	if fRec.Status != StatusFailed || fRec.Reason != "checker mismatch" {
		t.Errorf("failed record should keep the first line only: %+v", fRec)
	}
}
