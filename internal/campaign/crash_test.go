package campaign

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
	"time"
)

// crashSpace is the 48-cell space the crash-injection harness walks: big
// enough that seeded kill points land mid-run, small enough for CI.
func crashSpace() Space {
	return Space{
		Kernels:     []string{"vvadd", "redux"},
		Scales:      []int{512, 2048},
		N:           []int{1, 4, 32},
		L2Ways:      []int{4, 8},
		DRAMLatency: []int64{50, 120},
	}
}

// TestHelperCampaign is not a test: it is the subprocess body the
// crash-injection harness SIGKILLs. It runs the crash space against the
// journal named in the environment, always in resume mode (the first
// launch finds no journal and starts fresh), exactly as a user rerunning
// eve-explore would.
func TestHelperCampaign(t *testing.T) {
	if os.Getenv("EVE_CAMPAIGN_HELPER") != "1" {
		t.Skip("crash-injection helper body; only runs as a subprocess")
	}
	workers, err := strconv.Atoi(os.Getenv("EVE_CAMPAIGN_WORKERS"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(RunConfig{
		Space:   crashSpace(),
		Journal: os.Getenv("EVE_CAMPAIGN_JOURNAL"),
		Resume:  true,
		Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
}

// waitForJournalLines polls until the journal holds at least n newline-
// terminated records (or the deadline passes). The poll is host-side
// orchestration of the victim process and never touches simulated state.
func waitForJournalLines(t *testing.T, path string, n int) bool {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		data, err := os.ReadFile(path)
		if err == nil && bytes.Count(data, []byte{'\n'}) >= n {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return false
}

// TestCrashInjectionResumeByteIdentical is the headline robustness proof:
// a campaign subprocess is SIGKILLed at three seeded points (after ~5, ~15
// and ~30 journaled cells), resumed after each kill, and the final report
// must byte-match the same campaign run uninterrupted in-process — at
// worker counts 1 and 4. SIGKILL gives no chance to clean up, so every
// kill may leave a torn journal tail; resume must absorb that too.
func TestCrashInjectionResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash matrix in -short mode")
	}
	golden, err := Run(RunConfig{Space: crashSpace(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	goldenJSON, err := json.MarshalIndent(golden, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	total := crashSpace().Size()

	for _, workers := range []int{1, 4} {
		t.Run("workers="+strconv.Itoa(workers), func(t *testing.T) {
			jpath := filepath.Join(t.TempDir(), "journal.log")
			killPoints := []int{5, 15, 30} // seeded: fixed journal depths
			for _, at := range killPoints {
				cmd := exec.Command(os.Args[0], "-test.run", "^TestHelperCampaign$")
				cmd.Env = append(os.Environ(),
					"EVE_CAMPAIGN_HELPER=1",
					"EVE_CAMPAIGN_JOURNAL="+jpath,
					"EVE_CAMPAIGN_WORKERS="+strconv.Itoa(workers),
				)
				if err := cmd.Start(); err != nil {
					t.Fatal(err)
				}
				if !waitForJournalLines(t, jpath, at) {
					_ = cmd.Process.Kill()
					t.Fatalf("kill point %d: journal never reached depth", at)
				}
				if err := cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup
					t.Fatal(err)
				}
				_ = cmd.Wait() // reap; a killed process reports an error by design
			}

			// After three kills the journal must hold real progress but not
			// the whole campaign — otherwise the resume below proves nothing.
			jchk, recs, err := Open(jpath, 1)
			if err != nil {
				t.Fatal(err)
			}
			if err := jchk.Close(); err != nil {
				t.Fatal(err)
			}
			if len(recs) < killPoints[len(killPoints)-1] || len(recs) >= total {
				t.Fatalf("after kills the journal holds %d/%d cells; kill points missed their window", len(recs), total)
			}

			rep, err := Run(RunConfig{Space: crashSpace(), Journal: jpath, Resume: true, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, goldenJSON) {
				t.Errorf("killed-thrice-and-resumed report differs from the uninterrupted run\n got:  %.400s\n want: %.400s", got, goldenJSON)
			}
		})
	}
}
