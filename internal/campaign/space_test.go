package campaign

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/analytic"
	"repro/internal/mem"
	"repro/internal/sim"
)

// TestCellIDStable pins the content-hash format: journals written by one
// build must resume under the next, so an accidental change to Params.String
// or the hash function must fail loudly here before it orphans checkpoints.
func TestCellIDStable(t *testing.T) {
	p := Params{Kernel: "vvadd", Scale: 4096, Seed: 0, N: 8,
		L2Ways: 8, L2MSHRs: 32, L2Banks: 8, LLCKB: 2048, DRAMLatency: 50}
	if got := p.ID(); got != "0fac955071586954" {
		t.Errorf("cell ID drifted: %s (journal compatibility break)", got)
	}
	if got := p.String(); got != "kernel=vvadd scale=4096 seed=0 n=8 l2_ways=8 l2_mshrs=32 l2_banks=8 llc_kb=2048 dram_lat=50" {
		t.Errorf("canonical rendering drifted: %s", got)
	}
}

// TestEnumerateDeterministic: enumeration is a pure function of the space —
// stable order, size matching the axis product, and collision-free IDs.
func TestEnumerateDeterministic(t *testing.T) {
	s := Space{
		Kernels: []string{"vvadd", "redux"},
		Scales:  []int{256, 1024},
		N:       []int{1, 8},
		L2Ways:  []int{4, 8},
	}
	a, b := s.Enumerate(), s.Enumerate()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two enumerations of the same space differ")
	}
	if len(a) != s.Size() || len(a) != 2*2*2*2 {
		t.Fatalf("enumerated %d cells, Size() = %d, want 16", len(a), s.Size())
	}
	seen := map[string]bool{}
	for _, p := range a {
		id := p.ID()
		if seen[id] {
			t.Fatalf("duplicate cell ID %s for %s", id, p)
		}
		seen[id] = true
	}
	// Row-major axis order: the last axis varies fastest.
	if a[0].L2Ways != 4 || a[1].L2Ways != 8 || a[0].N != a[1].N {
		t.Errorf("enumeration order not row-major: %s then %s", a[0], a[1])
	}
}

// TestDefaultsFillSinglePointAxes: an empty axis pins its Table III value,
// except N (full factor sweep) and Seeds (canonical 0).
func TestDefaultsFillSinglePointAxes(t *testing.T) {
	s := Space{Kernels: []string{"vvadd"}, Scales: []int{64}}.withDefaults()
	if !reflect.DeepEqual(s.N, analytic.Factors) {
		t.Errorf("default N = %v, want the full factor sweep %v", s.N, analytic.Factors)
	}
	if !reflect.DeepEqual(s.Seeds, []uint64{0}) {
		t.Errorf("default seeds = %v", s.Seeds)
	}
	if len(s.L2Ways) != 1 || s.L2Ways[0] != mem.L2Config.Ways {
		t.Errorf("default L2 ways = %v, want Table III's %d", s.L2Ways, mem.L2Config.Ways)
	}
	if len(s.LLCKB) != 1 || s.LLCKB[0] != mem.LLCConfig.SizeBytes>>10 {
		t.Errorf("default LLC = %v KiB", s.LLCKB)
	}
	if len(s.DRAMLatency) != 1 || s.DRAMLatency[0] != mem.DefaultDRAM().Latency {
		t.Errorf("default DRAM latency = %v", s.DRAMLatency)
	}
}

// TestValidateRejections: every class of unsimulatable space is refused
// with a message naming the offending axis.
func TestValidateRejections(t *testing.T) {
	ok := Space{Kernels: []string{"vvadd"}, Scales: []int{64}}
	cases := []struct {
		name   string
		mutate func(*Space)
		want   string
	}{
		{"no kernels", func(s *Space) { s.Kernels = nil }, "no kernels"},
		{"unknown kernel", func(s *Space) { s.Kernels = []string{"fft"} }, "unknown kernel"},
		{"no scales", func(s *Space) { s.Scales = nil }, "no input scales"},
		{"bad scale", func(s *Space) { s.Scales = []int{0} }, "scale 0"},
		{"bad factor", func(s *Space) { s.N = []int{3} }, "EVE factor 3"},
		{"odd l2 ways", func(s *Space) { s.L2Ways = []int{6} }, "l2_ways"},
		{"one l2 way", func(s *Space) { s.L2Ways = []int{1} }, "l2_ways"},
		{"bad mshrs", func(s *Space) { s.L2MSHRs = []int{0} }, "l2_mshrs"},
		{"bad banks", func(s *Space) { s.L2Banks = []int{-1} }, "l2_banks"},
		{"non-pow2 llc", func(s *Space) { s.LLCKB = []int{3000} }, "llc_kb"},
		{"tiny llc", func(s *Space) { s.LLCKB = []int{32} }, "llc_kb"},
		{"bad dram", func(s *Space) { s.DRAMLatency = []int64{0} }, "dram_latency"},
		{"duplicate axis value", func(s *Space) { s.Scales = []int{64, 64} }, "duplicate"},
	}
	for _, tc := range cases {
		s := ok
		tc.mutate(&s)
		err := s.withDefaults().Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted an invalid space", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name the problem (%q)", tc.name, err, tc.want)
		}
	}
	if err := ok.withDefaults().Validate(); err != nil {
		t.Errorf("valid space rejected: %v", err)
	}
}

// TestSystemConfigAppliesAxes: the cell's geometry axes really land in the
// sim.Config the sweep will run.
func TestSystemConfigAppliesAxes(t *testing.T) {
	p := Params{Kernel: "vvadd", Scale: 64, N: 4,
		L2Ways: 4, L2MSHRs: 16, L2Banks: 2, LLCKB: 1024, DRAMLatency: 120}
	cfg := p.SystemConfig(0)
	if cfg.Kind != sim.SysO3EVE || cfg.N != 4 {
		t.Fatalf("config system = %s", cfg.Name())
	}
	if cfg.Mem == nil {
		t.Fatal("no MemParams attached")
	}
	if cfg.Mem.L2.Ways != 4 || cfg.Mem.L2.MSHRs != 16 || cfg.Mem.L2.Banks != 2 {
		t.Errorf("L2 axes lost: %+v", cfg.Mem.L2)
	}
	if cfg.Mem.L2.SizeBytes != mem.L2Config.SizeBytes {
		t.Errorf("L2 capacity should stay Table III: %d", cfg.Mem.L2.SizeBytes)
	}
	if cfg.Mem.LLC.SizeBytes != 1024<<10 {
		t.Errorf("LLC capacity = %d", cfg.Mem.LLC.SizeBytes)
	}
	if cfg.Mem.DRAMLatency != 120 {
		t.Errorf("DRAM latency = %d", cfg.Mem.DRAMLatency)
	}
}

// TestWorkloadBridge: cells build real kernels; unknown families fail.
func TestWorkloadBridge(t *testing.T) {
	k, err := (Params{Kernel: "redux", Scale: 64}).Workload()
	if err != nil || k == nil {
		t.Fatalf("redux cell: %v", err)
	}
	if _, err := (Params{Kernel: "nope"}).Workload(); err == nil {
		t.Fatal("unknown family accepted")
	}
}
