package campaign

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func rec(i int, st Status) Record {
	return Record{
		Cell:   fmt.Sprintf("%016x", uint64(i)+1),
		Params: Params{Kernel: "vvadd", Scale: 64, N: 1 << (i % 4), L2Ways: 8, L2MSHRs: 32, L2Banks: 8, LLCKB: 2048, DRAMLatency: 50},
		Status: st,
		Cycles: int64(1000 + i),
	}
}

// TestJournalRoundTrip: append N records, close, reopen — the same records
// come back in order and the journal keeps appending where it left off.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, err := Create(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 5; i++ {
		r := rec(i, StatusOK)
		want = append(want, r)
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, got, err := Open(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip lost records:\n got  %+v\n want %+v", got, want)
	}
	extra := rec(5, StatusFailed)
	if err := j2.Append(extra); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, err = Open(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 || !reflect.DeepEqual(got[5], extra) {
		t.Fatalf("append-after-reopen lost the new record: %+v", got)
	}
}

// TestJournalOpenMissingFile: resuming with no prior journal is a fresh
// start, not an error — the first run and the resumed first run behave
// identically.
func TestJournalOpenMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.log")
	j, recs, err := Open(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal yielded %d records", len(recs))
	}
	if err := j.Append(rec(0, StatusOK)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestJournalTornTailEveryOffset is the torn-write recovery sweep: truncate
// the journal at EVERY byte offset spanning the last record and resume.
// Whatever the cut point, Open must recover exactly the fully-written
// records — never a corrupt or duplicated one — and leave the file ready
// for clean appends.
func TestJournalTornTailEveryOffset(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "full.log")
	j, err := Create(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	for i := 0; i < 3; i++ {
		r := rec(i, StatusOK)
		recs = append(recs, r)
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, prefix := parseRecords(data)
	// Find where the last record starts: reparse the file minus its final
	// line.
	if prefix != len(data) {
		t.Fatalf("intact journal parses only %d/%d bytes", prefix, len(data))
	}
	lastStart := 0
	for i := len(data) - 2; i >= 0; i-- { // skip final newline
		if data[i] == '\n' {
			lastStart = i + 1
			break
		}
	}

	for cut := lastStart; cut <= len(data); cut++ {
		torn := filepath.Join(dir, fmt.Sprintf("torn-%d.log", cut))
		if err := os.WriteFile(torn, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, got, err := Open(torn, 1)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		wantN := 2
		if cut == len(data) {
			wantN = 3 // the full file: nothing torn
		}
		if len(got) != wantN || !reflect.DeepEqual(got, recs[:wantN]) {
			t.Fatalf("cut at %d: recovered %d records, want the %d intact ones", cut, len(got), wantN)
		}
		// The journal must now be clean: an append lands after the
		// truncation point and the whole file reparses with no torn bytes.
		replay := rec(9, StatusOK)
		if err := j2.Append(replay); err != nil {
			t.Fatalf("cut at %d: append after recovery: %v", cut, err)
		}
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
		after, err := os.ReadFile(torn)
		if err != nil {
			t.Fatal(err)
		}
		reparsed, valid := parseRecords(after)
		if valid != len(after) {
			t.Fatalf("cut at %d: recovered journal still has torn bytes", cut)
		}
		if len(reparsed) != wantN+1 || !reflect.DeepEqual(reparsed[wantN], replay) {
			t.Fatalf("cut at %d: replayed journal holds %d records, want %d", cut, len(reparsed), wantN+1)
		}
	}
}

// TestJournalChecksumGuard: a flipped byte inside a record invalidates that
// line and everything after it — corruption is contained by re-running, not
// silently decoded.
func TestJournalChecksumGuard(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, err := Create(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(rec(i, StatusOK)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a digit inside the second record's JSON body.
	second := 0
	for i, b := range data {
		if b == '\n' {
			second = i + 1
			break
		}
	}
	data[second+20] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, got, err := Open(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(got) != 1 || got[0].Cell != rec(0, StatusOK).Cell {
		t.Fatalf("checksum guard failed: recovered %+v", got)
	}
}

// TestJournalBatchedFsync: fsyncEvery > 1 defers syncs but Close flushes;
// the file is complete after Close regardless of batch boundary.
func TestJournalBatchedFsync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, err := Create(path, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ { // not a multiple of the batch
		if err := j.Append(rec(i, StatusOK)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, err := Open(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Fatalf("batched journal holds %d records, want 7", len(got))
	}
}
