package campaign

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/analytic"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// RunConfig drives one campaign execution.
type RunConfig struct {
	// Space is the parameter space to explore.
	Space Space
	// Journal is the checkpoint log path. Empty disables journaling (the
	// campaign still runs; it just cannot resume).
	Journal string
	// Resume reopens an existing journal and skips its finished cells
	// instead of truncating it. Timed-out cells re-run (wall time is host
	// trouble, not a simulated property); ok and failed cells are final.
	Resume bool
	// Workers bounds sweep concurrency; ≤ 0 uses the sweep default.
	Workers int
	// CellTimeout is the per-cell wall-clock budget; 0 disables the
	// watchdog.
	CellTimeout time.Duration
	// Retries bounds re-runs of a cell after a recoverable failure
	// (SimError, timeout, worker panic); 0 disables retries.
	Retries int
	// Backoff is the base retry delay, doubled per attempt
	// (deterministic, no jitter); 0 retries immediately.
	Backoff time.Duration
	// FsyncEvery syncs the journal every N appends; ≤ 1 syncs every append.
	FsyncEvery int
	// Observer, if set, sees per-cell progress (cells carry Label() as
	// their system column). An observer that also implements
	// sweep.RetryObserver sees per-attempt retries.
	Observer sweep.Observer
	// OnJournal, if set, is called after every successful journal append
	// with the journal's record count (resumed records included). It is a
	// host-telemetry hook: it observes checkpoint depth and must not block
	// or touch campaign state.
	OnJournal func(depth int)
	// Interval, when positive, turns on cycle-windowed interval sampling
	// inside every cell (sim.Config.Interval). The time series feeds live
	// telemetry only: it is never journaled or reported, and sampling
	// leaves every simulated byte unchanged, so reports and journals stay
	// byte-identical whatever Interval is — cell identities (Params.ID) do
	// not depend on it.
	Interval int64
	// Context cancels the campaign: in-flight cells finish and are
	// journaled, pending cells are skipped, and Run returns
	// *InterruptedError. Nil means never cancelled.
	Context context.Context
}

// Summary counts the report's cells by disposition.
type Summary struct {
	Total   int `json:"total"`
	OK      int `json:"ok"`
	Failed  int `json:"failed"`
	Timeout int `json:"timeout"`
}

// Report is a completed campaign: every cell of the space in enumeration
// order plus the per-workload Pareto frontiers. All content is a pure
// function of the space, so a report assembled across any number of
// kill/resume cycles is byte-identical to one from an uninterrupted run.
type Report struct {
	Space   Space      `json:"space"`
	Summary Summary    `json:"summary"`
	Cells   []Record   `json:"cells"`
	Pareto  []Frontier `json:"pareto,omitempty"`
}

// InterruptedError reports a cancelled campaign: how far it got, and that
// the journal (if any) holds the checkpoint.
type InterruptedError struct {
	Completed, Total int
}

func (e *InterruptedError) Error() string {
	return fmt.Sprintf("campaign: interrupted after %d/%d cells; the journal holds the checkpoint — rerun with resume to continue",
		e.Completed, e.Total)
}

// retryable classifies an attempt failure as host-or-transient trouble
// worth a bounded retry: typed simulation aborts (which fault campaigns
// deliberately provoke but campaigns treat as possibly-environmental),
// wall-clock timeouts, and recovered worker panics. Checker mismatches and
// validation errors are deterministic verdicts and are not retried.
func retryable(err error) bool {
	var se *sim.SimError
	var te *sweep.TimeoutError
	var pe *sweep.PanicError
	return errors.As(err, &se) || errors.As(err, &te) || errors.As(err, &pe)
}

// firstLine truncates an error message to its first line for the journal's
// reason field (multi-line reasons would complicate the line-oriented log).
func firstLine(err error) string {
	s := err.Error()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	return s
}

// makeRecord freezes a finished cell into its journal record. Only
// deterministic, simulated quantities are captured.
func makeRecord(p Params, r sim.Result) Record {
	rec := Record{Cell: p.ID(), Params: p}
	var te *sweep.TimeoutError
	switch {
	case r.Err == nil:
		rec.Status = StatusOK
		rec.Cycles = r.Cycles
		rec.EnergyReadEq = r.EnergyEq
		rec.SpawnCost = r.SpawnCost
		rec.AreaFactor = analytic.SystemAreaFactor(r.System)
		d := metrics.Derive(r.Stats, r.Cycles)
		if !d.Degenerate {
			rec.L2MissRate = d.L2.MissRate
			rec.LLCMissRate = d.LLC.MissRate
			rec.DRAMBusUtil = d.DRAMBusUtil
		}
	case errors.As(r.Err, &te):
		rec.Status = StatusTimeout
		rec.Reason = firstLine(r.Err)
	default:
		rec.Status = StatusFailed
		rec.Reason = firstLine(r.Err)
	}
	return rec
}

// journalObserver sits between the sweep pool and the campaign: it turns
// each CellDone into exactly one journal record — CellDone fires once per
// cell, after retries resolve, so the journal never double-counts — and
// forwards progress to the user's observer. A journal write failure
// cancels the campaign: continuing without a checkpoint would silently
// void the crash-safety contract.
type journalObserver struct {
	j         *Journal
	params    []Params // pending cells by sweep index
	inner     sweep.Observer
	cancel    context.CancelFunc
	onJournal func(depth int)

	mu    sync.Mutex
	recs  map[string]Record
	depth int // journal records written, resumed records included
	err   error
}

func (o *journalObserver) CellStart(i int, kernel, system string) {
	if o.inner != nil {
		o.inner.CellStart(i, kernel, system)
	}
}

func (o *journalObserver) CellDone(i, done, total int, r sim.Result, wall time.Duration) {
	rec := makeRecord(o.params[i], r)
	appended := false
	o.mu.Lock()
	o.recs[rec.Cell] = rec
	if o.j != nil {
		if err := o.j.Append(rec); err != nil {
			if o.err == nil {
				o.err = err
				o.cancel()
			}
		} else {
			o.depth++
			appended = true
		}
	}
	depth := o.depth
	o.mu.Unlock()
	if appended && o.onJournal != nil {
		o.onJournal(depth)
	}
	if o.inner != nil {
		o.inner.CellDone(i, done, total, r, wall)
	}
}

// CellRetry implements sweep.RetryObserver by forwarding: retries are not
// journaled (only settled outcomes are), but a telemetry observer behind
// the journal still gets to count them.
func (o *journalObserver) CellRetry(i int, kernel, system string, attempt int, err error) {
	if ro, ok := o.inner.(sweep.RetryObserver); ok {
		ro.CellRetry(i, kernel, system, attempt, err)
	}
}

func (o *journalObserver) SweepDone(done, total int) {
	if o.inner != nil {
		o.inner.SweepDone(done, total)
	}
}

// Run executes the campaign: enumerate the space, skip cells the journal
// already settled, run the rest on the sweep pool under the watchdog and
// retry policy, journal each completion, and assemble the report. On
// cancellation it returns *InterruptedError with the checkpoint safely on
// disk; a later Resume run picks up where it stopped and produces the
// byte-identical report.
func Run(cfg RunConfig) (*Report, error) {
	space := cfg.Space.withDefaults()
	if err := space.Validate(); err != nil {
		return nil, err
	}
	all := space.Enumerate()
	ids := make([]string, len(all))
	index := make(map[string]int, len(all))
	for i, p := range all {
		ids[i] = p.ID()
		if prev, dup := index[ids[i]]; dup {
			return nil, fmt.Errorf("campaign: cell ID collision between %s and %s", all[prev], p)
		}
		index[ids[i]] = i
	}

	// Load the checkpoint. Prior records are replayed in file order with
	// last-record-wins semantics, so a journal that (legitimately) holds a
	// timeout record followed by the resumed run's ok record settles on ok.
	var (
		journal    *Journal
		settled    = make(map[string]Record)
		priorDepth int
	)
	if cfg.Journal != "" {
		var err error
		if cfg.Resume {
			var prior []Record
			journal, prior, err = Open(cfg.Journal, cfg.FsyncEvery)
			if err != nil {
				return nil, err
			}
			priorDepth = len(prior)
			for _, r := range prior {
				i, ok := index[r.Cell]
				if !ok {
					_ = journal.Close()
					return nil, fmt.Errorf("campaign: journal record %s (%s) is not a cell of this space; resuming under a changed space would stitch incompatible results", r.Cell, r.Params)
				}
				if r.Params != all[i] {
					_ = journal.Close()
					return nil, fmt.Errorf("campaign: journal record %s carries parameters %s but the space enumerates %s for that ID", r.Cell, r.Params, all[i])
				}
				settled[r.Cell] = r
			}
		} else {
			journal, err = Create(cfg.Journal, cfg.FsyncEvery)
			if err != nil {
				return nil, err
			}
		}
		defer func() {
			_ = journal.Close()
		}()
	}

	// Pending = never journaled, or journaled as timeout (host trouble —
	// worth another try on a, presumably, healthier host).
	var pending []int
	for i := range all {
		if r, ok := settled[ids[i]]; ok && r.Status != StatusTimeout {
			continue
		}
		pending = append(pending, i)
	}

	ctx, cancel := context.WithCancel(cfgContext(cfg))
	defer cancel()
	obs := &journalObserver{
		j:         journal,
		params:    make([]Params, len(pending)),
		inner:     cfg.Observer,
		cancel:    cancel,
		onJournal: cfg.OnJournal,
		recs:      make(map[string]Record, len(pending)),
		depth:     priorDepth,
	}
	cells := make([]sweep.Cell, len(pending))
	for slot, i := range pending {
		p := all[i]
		obs.params[slot] = p
		scfg := p.SystemConfig(space.MaxUProgCycles)
		scfg.Interval = cfg.Interval
		cells[slot] = sweep.Cell{
			Kernel: fmt.Sprintf("%s@%d", p.Kernel, p.Scale),
			System: p.Label(),
			Run: func() sim.Result {
				k, err := p.Workload()
				if err != nil {
					// Validate() already vetted the family; this is a
					// registry bug, not a cell condition.
					return sim.Result{Kernel: p.Kernel, System: p.Label(), Err: err}
				}
				return sim.Run(scfg, k)
			},
		}
	}

	_, sweepErr := sweep.ForEach(cells, sweep.Options{
		Workers:     cfg.Workers,
		Observer:    obs,
		Context:     ctx,
		CellTimeout: cfg.CellTimeout,
		Retry: sweep.RetryPolicy{
			Max:       cfg.Retries,
			Backoff:   cfg.Backoff,
			Retryable: retryable,
		},
	})
	// Per-cell failures are recorded, not fatal: graceful degradation means
	// a failed cell is a data point. Only infrastructure failures (journal
	// writes) or cancellation abort the campaign below; sweepErr otherwise
	// only aggregates the per-cell errors already in the journal.
	_ = sweepErr

	obs.mu.Lock()
	journalErr := obs.err
	newRecs := obs.recs
	obs.mu.Unlock()
	if journalErr != nil {
		return nil, journalErr
	}
	if journal != nil {
		if err := journal.Sync(); err != nil {
			return nil, err
		}
	}

	// Assemble the report in enumeration order. A cell missing from both
	// the checkpoint and this run's records was skipped by cancellation.
	rep := &Report{Space: space}
	rep.Cells = make([]Record, 0, len(all))
	missing := 0
	for i := range all {
		r, ok := newRecs[ids[i]]
		if !ok {
			r, ok = settled[ids[i]]
			if !ok || r.Status == StatusTimeout {
				// Never journaled, or journaled as timeout and scheduled
				// for a re-run that cancellation skipped: still unsettled.
				missing++
				continue
			}
		}
		rep.Cells = append(rep.Cells, r)
		rep.Summary.Total++
		switch r.Status {
		case StatusOK:
			rep.Summary.OK++
		case StatusFailed:
			rep.Summary.Failed++
		case StatusTimeout:
			rep.Summary.Timeout++
		}
	}
	if missing > 0 {
		return nil, &InterruptedError{Completed: len(all) - missing, Total: len(all)}
	}
	rep.Pareto = Frontiers(rep.Cells)
	return rep, nil
}

// cfgContext returns the campaign's cancellation context, never nil.
func cfgContext(cfg RunConfig) context.Context {
	if cfg.Context != nil {
		return cfg.Context
	}
	return context.Background()
}
