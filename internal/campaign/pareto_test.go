package campaign

import "testing"

func pt(kernel string, cycles int64, area, energy float64) Record {
	return Record{
		Cell:   kernel + "x",
		Params: Params{Kernel: kernel, Scale: 64},
		Status: StatusOK,
		Cycles: cycles, AreaFactor: area, EnergyReadEq: energy,
	}
}

// TestFrontierDominance: dominated points drop, incomparable points stay,
// and failed cells never enter the frontier.
func TestFrontierDominance(t *testing.T) {
	a := pt("vvadd", 100, 2.0, 10) // fast, big
	b := pt("vvadd", 300, 1.0, 5)  // slow, small — incomparable with a
	c := pt("vvadd", 320, 1.5, 6)  // dominated by nothing? slower and bigger than b, more energy: dominated by b
	d := pt("vvadd", 100, 2.0, 10) // duplicate of a: neither strictly dominates
	bad := pt("vvadd", 1, 0.1, 0.1)
	bad.Status = StatusFailed

	fr := Frontiers([]Record{a, b, c, d, bad})
	if len(fr) != 1 {
		t.Fatalf("got %d frontiers, want 1", len(fr))
	}
	pts := fr[0].Points
	if len(pts) != 3 {
		t.Fatalf("frontier holds %d points, want 3 (a, its duplicate, b): %+v", len(pts), pts)
	}
	// Sorted by area: b (1.0) first, then the two 2.0 points.
	if pts[0].AreaFactor != 1.0 || pts[1].Cycles != 100 {
		t.Errorf("frontier order wrong: %+v", pts)
	}
	for _, p := range pts {
		if p.Cycles == 320 {
			t.Error("dominated point survived")
		}
		if p.Status != StatusOK {
			t.Error("non-ok point entered the frontier")
		}
	}
}

// TestFrontierGroupsByWorkload: distinct (kernel, scale, seed) triples get
// their own frontiers, in first-appearance order.
func TestFrontierGroupsByWorkload(t *testing.T) {
	r1 := pt("vvadd", 100, 1, 1)
	r2 := pt("redux", 200, 1, 1)
	r3 := pt("vvadd", 90, 2, 1)
	r3.Params.Seed = 7 // different workload instance
	fr := Frontiers([]Record{r1, r2, r3})
	if len(fr) != 3 {
		t.Fatalf("got %d frontiers, want 3", len(fr))
	}
	if fr[0].Kernel != "vvadd" || fr[1].Kernel != "redux" || fr[2].Seed != 7 {
		t.Errorf("frontier grouping/order wrong: %+v", fr)
	}
}
