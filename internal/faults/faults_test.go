package faults_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/uprog"
	"repro/internal/workloads"
)

// eveCfg is the campaign system used throughout: EVE-32 keeps the substrate
// single-segment (fast) and its hardware vector length (256) large enough
// to exercise strip-mined tails.
var eveCfg = sim.Config{Kind: sim.SysO3EVE, N: 32}

func runWith(t *testing.T, cfg sim.Config, k *workloads.Kernel, arm *faults.Fault) (sim.Result, uint64, *faults.Datapath) {
	t.Helper()
	var dp *faults.Datapath
	r, sum := sim.RunDatapath(cfg, k, func(hwvl int) isa.Datapath {
		dp = faults.NewDatapath(cfg.N, hwvl, cfg.MaxUProgCycles)
		if arm != nil {
			dp.Arm(*arm)
		}
		return dp
	})
	return r, sum, dp
}

// TestZeroFaultDatapathMatchesGolden holds the re-execution contract: with
// no faults armed, routing every vector instruction through the bit-level
// substrate reproduces the golden run exactly — validation verdict, cycle
// count, instruction mix — for the full benchmark suite, across segmented
// (n=4) and single-segment (n=32) layouts.
func TestZeroFaultDatapathMatchesGolden(t *testing.T) {
	for _, n := range []int{4, 32} {
		cfg := sim.Config{Kind: sim.SysO3EVE, N: n}
		for _, k := range workloads.Small() {
			golden := sim.Run(cfg, k)
			if golden.Err != nil {
				t.Fatalf("n=%d %s: golden run failed: %v", n, k.Name, golden.Err)
			}
			r, sum, _ := runWith(t, cfg, k, nil)
			if r.Err != nil {
				t.Fatalf("n=%d %s: zero-fault datapath run failed: %v", n, k.Name, r.Err)
			}
			if r.Cycles != golden.Cycles {
				t.Errorf("n=%d %s: datapath cycles %d != golden %d", n, k.Name, r.Cycles, golden.Cycles)
			}
			if !reflect.DeepEqual(r.Mix, golden.Mix) {
				t.Errorf("n=%d %s: datapath mix diverges from golden", n, k.Name)
			}
			if sum == 0 {
				t.Errorf("n=%d %s: zero checksum from a completed run", n, k.Name)
			}
			// Same seed of nothing: a second zero-fault run is bit-identical.
			r2, sum2, _ := runWith(t, cfg, k, nil)
			if sum2 != sum || r2.Cycles != r.Cycles {
				t.Errorf("n=%d %s: zero-fault runs disagree (%d/%d cycles, %#x/%#x sum)",
					n, k.Name, r.Cycles, r2.Cycles, sum, sum2)
			}
		}
	}
}

// check64 builds a checker over a uint32 region.
func check64(b *isa.Builder, name string, base uint64, want []uint32) error {
	for i, w := range want {
		if got := b.Mem.LoadU32(base + uint64(4*i)); got != w {
			return fmt.Errorf("%s: element %d = %#x, want %#x", name, i, got, w)
		}
	}
	return nil
}

// doubleKernel streams n elements of value 2 through v1, computes v3=v1+v1
// on the substrate, and checks every output element equals 4.
func doubleKernel(n int) *workloads.Kernel {
	return &workloads.Kernel{
		Name: "fi-double", Suite: "t", Input: fmt.Sprint(n),
		Run: func(b *isa.Builder, vector bool) workloads.CheckFunc {
			f := b.Mem
			aAddr, cAddr := f.AllocU32(n), f.AllocU32(n)
			want := make([]uint32, n)
			for i := 0; i < n; i++ {
				f.StoreU32(aAddr+uint64(4*i), 2)
				want[i] = 4
			}
			for i := 0; i < n; {
				vl := b.SetVL(n - i)
				off := uint64(4 * i)
				b.Load(1, aAddr+off)
				b.Add(3, 1, 1)
				b.Store(3, cAddr+off)
				i += vl
			}
			b.Fence()
			return func() error { return check64(b, "fi-double", cAddr, want) }
		},
	}
}

// TestMaskedOutcome: a bit flip in a register row no instruction ever reads
// (v20) changes nothing observable — checker passes, checksum matches.
func TestMaskedOutcome(t *testing.T) {
	k := doubleKernel(64)
	_, baseline, dp := runWith(t, eveCfg, k, nil)
	prof := dp.Profile()
	f := faults.Fault{
		Kind: faults.KindBitFlip,
		Row:  uprog.NewLayout(eveCfg.N).RegRow(20, 0),
		Col:  0,
		Seq:  prof.Accesses / 2,
	}
	r, sum, _ := runWith(t, eveCfg, k, &f)
	if r.Err != nil {
		t.Fatalf("flip in unused register failed the run: %v", r.Err)
	}
	if got := faults.Classify(r.Err, sum, baseline); got != faults.Masked {
		t.Errorf("outcome = %v (sum %#x vs baseline %#x), want masked", got, sum, baseline)
	}
}

// TestDetectedOutcome: a sense amplifier stuck at 1 on element 0's LSB
// corrupts the computed sum (2+2 reads as 3+3), and the workload checker
// catches it.
func TestDetectedOutcome(t *testing.T) {
	k := doubleKernel(64)
	_, baseline, _ := runWith(t, eveCfg, k, nil)
	f := faults.Fault{Kind: faults.KindStuckSA, Col: 0, Stuck: true}
	r, sum, _ := runWith(t, eveCfg, k, &f)
	if r.Err == nil {
		t.Fatal("stuck LSB sense amp was not detected by the checker")
	}
	var se *sim.SimError
	if errors.As(r.Err, &se) {
		t.Fatalf("expected a checker detection, got a crash: %v", r.Err)
	}
	if got := faults.Classify(r.Err, sum, baseline); got != faults.Detected {
		t.Errorf("outcome = %v, want detected (err: %v)", got, r.Err)
	}
}

// sdcKernel computes and checks c=a+a, then copies the result to an
// *unchecked* second output region. A late fault corrupting the copy slips
// past the checker but changes the final memory image.
func sdcKernel(n int) *workloads.Kernel {
	return &workloads.Kernel{
		Name: "fi-sdc", Suite: "t", Input: fmt.Sprint(n),
		Run: func(b *isa.Builder, vector bool) workloads.CheckFunc {
			f := b.Mem
			aAddr, cAddr, dAddr := f.AllocU32(n), f.AllocU32(n), f.AllocU32(n)
			want := make([]uint32, n)
			for i := 0; i < n; i++ {
				f.StoreU32(aAddr+uint64(4*i), 5)
				want[i] = 10
			}
			b.SetVL(n)
			b.Load(1, aAddr)
			b.Add(3, 1, 1)
			b.Store(3, cAddr)
			b.Mv(4, 3)
			// Filler compute keeps the array access sequence running after
			// v4 is written, giving late bit flips a window to land in.
			for j := 0; j < 8; j++ {
				b.Add(5, 1, 1)
			}
			b.Store(4, dAddr)
			b.Fence()
			return func() error { return check64(b, "fi-sdc", cAddr, want) }
		},
	}
}

// TestSDCOutcome: a bit flip on v4's row after the copy corrupts only the
// unchecked output region — checker passes, checksum diverges.
func TestSDCOutcome(t *testing.T) {
	k := sdcKernel(64)
	_, baseline, dp := runWith(t, eveCfg, k, nil)
	prof := dp.Profile()
	f := faults.Fault{
		Kind: faults.KindBitFlip,
		Row:  uprog.NewLayout(eveCfg.N).RegRow(4, 0),
		Col:  0, // element 0, bit 0
		Seq:  prof.Accesses - 1,
	}
	r, sum, _ := runWith(t, eveCfg, k, &f)
	if r.Err != nil {
		t.Fatalf("late flip was unexpectedly detected: %v", r.Err)
	}
	if sum == baseline {
		t.Fatal("late flip did not change the final memory image")
	}
	if got := faults.Classify(r.Err, sum, baseline); got != faults.SDC {
		t.Errorf("outcome = %v, want sdc", got)
	}
}

// crashKernel gathers through an index vector computed on the substrate; a
// stuck-at-1 sense amp on the index's top bit drives the gather 2 GiB out
// of bounds.
func crashKernel() *workloads.Kernel {
	return &workloads.Kernel{
		Name: "fi-crash", Suite: "t", Input: "8",
		Run: func(b *isa.Builder, vector bool) workloads.CheckFunc {
			f := b.Mem
			base := f.AllocU32(64)
			b.SetVL(8)
			b.MvVX(1, 8)
			b.OrVX(2, 1, 4) // v2 = 12: byte offsets, natively computed
			b.LoadIdx(3, base, 2)
			b.Store(3, base)
			b.Fence()
			return func() error { return nil }
		},
	}
}

// TestCrashOutcome: the wild gather panics with a typed mem.AccessError,
// which sim.Run converts into a recoverable *SimError — a crash cell, not a
// dead sweep.
func TestCrashOutcome(t *testing.T) {
	k := crashKernel()
	_, baseline, _ := runWith(t, eveCfg, k, nil)
	f := faults.Fault{Kind: faults.KindStuckSA, Col: 31, Stuck: true} // element 0, bit 31
	r, sum, _ := runWith(t, eveCfg, k, &f)
	if r.Err == nil {
		t.Fatal("out-of-bounds gather did not fail")
	}
	var se *sim.SimError
	if !errors.As(r.Err, &se) {
		t.Fatalf("expected *sim.SimError, got %T: %v", r.Err, r.Err)
	}
	if se.Subsystem != "mem" {
		t.Errorf("crash subsystem = %q, want mem", se.Subsystem)
	}
	if sum != 0 {
		t.Errorf("crashed run reported checksum %#x, want 0", sum)
	}
	if got := faults.Classify(r.Err, sum, baseline); got != faults.Crash {
		t.Errorf("outcome = %v, want crash", got)
	}
}

// sumKernel streams two distinct input vectors (2s and 3s) through v1/v2 and
// checks v3 = v1 + v2 = 5. Unlike doubleKernel's v1+v1 — where both operands
// share a wordline, making every dropped activation a no-op by construction —
// this kernel's bit-line computes activate two different rows, so a drop
// (sense amps see ra∘ra instead of ra∘rb) is architecturally meaningful.
func sumKernel(n int) *workloads.Kernel {
	return &workloads.Kernel{
		Name: "fi-sum", Suite: "t", Input: fmt.Sprint(n),
		Run: func(b *isa.Builder, vector bool) workloads.CheckFunc {
			f := b.Mem
			aAddr, bAddr, cAddr := f.AllocU32(n), f.AllocU32(n), f.AllocU32(n)
			want := make([]uint32, n)
			for i := 0; i < n; i++ {
				f.StoreU32(aAddr+uint64(4*i), 2)
				f.StoreU32(bAddr+uint64(4*i), 3)
				want[i] = 5
			}
			b.SetVL(n)
			b.Load(1, aAddr)
			b.Load(2, bAddr)
			b.Add(3, 1, 2)
			b.Store(3, cAddr)
			b.Fence()
			return func() error { return check64(b, "fi-sum", cAddr, want) }
		},
	}
}

// TestWordlineDropCorrupts: dropping a wordline activation mid-kernel makes
// a bit-line compute see row-AND/OR-itself, corrupting the sum the checker
// validates.
func TestWordlineDropCorrupts(t *testing.T) {
	k := sumKernel(64)
	_, baseline, dp := runWith(t, eveCfg, k, nil)
	prof := dp.Profile()
	if prof.BLCs == 0 {
		t.Fatal("profile reports zero bit-line computes")
	}
	// Sweep every drop site; at least one must perturb the checked output
	// (2+3 degenerating through a corrupted carry chain).
	hit := false
	for seq := uint64(0); seq < prof.BLCs; seq++ {
		f := faults.Fault{Kind: faults.KindWordlineDrop, Seq: seq}
		r, sum, _ := runWith(t, eveCfg, k, &f)
		if faults.Classify(r.Err, sum, baseline) != faults.Masked {
			hit = true
			break
		}
	}
	if !hit {
		t.Error("no sampled wordline drop became architecturally visible")
	}
}

// TestSitesDeterministic: site sampling is a pure function of its inputs.
func TestSitesDeterministic(t *testing.T) {
	p := faults.Profile{Rows: 42, Cols: 8192, Accesses: 10000, BLCs: 4000}
	kinds := []faults.Kind{faults.KindBitFlip, faults.KindStuckSA, faults.KindWordlineDrop}
	a := faults.Sites(7, p, 64, kinds)
	b := faults.Sites(7, p, 64, kinds)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different site lists")
	}
	c := faults.Sites(8, p, 64, kinds)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical site lists")
	}
	seen := map[faults.Kind]bool{}
	for _, f := range a {
		seen[f.Kind] = true
	}
	for _, k := range kinds {
		if !seen[k] {
			t.Errorf("64 samples never drew kind %v", k)
		}
	}
}

// TestCampaignDeterministicAcrossWorkers: the acceptance criterion — the
// same seeded campaign marshals to byte-identical JSON across repeated runs
// and across worker counts, and the zero-fault baseline phase reproduces
// the golden sweep (VerifyBaseline).
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	campaign := func(workers int) []byte {
		rep, err := faults.Run(faults.Config{
			System:         eveCfg,
			Kernels:        []*workloads.Kernel{workloads.NewVVAdd(512), doubleKernel(96)},
			SitesPerKernel: 6,
			Seed:           42,
			Workers:        workers,
			VerifyBaseline: true,
		})
		if err != nil {
			t.Fatalf("campaign (workers=%d): %v", workers, err)
		}
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := campaign(1)
	for _, w := range []int{1, 4, 8} {
		if got := campaign(w); !bytes.Equal(got, serial) {
			t.Fatalf("campaign JSON at %d workers diverges from serial run", w)
		}
	}
	var rep faults.Report
	if err := json.Unmarshal(serial, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Summary.Total != 12 {
		t.Errorf("summary total = %d, want 12", rep.Summary.Total)
	}
	if rep.Summary.Masked+rep.Summary.Detected+rep.Summary.SDC+rep.Summary.Crash != rep.Summary.Total {
		t.Error("summary outcome counts do not add up to total")
	}
}

// TestCampaignRequiresEVE: the substrate being injected is the EVE SRAM; a
// scalar system is a configuration error.
func TestCampaignRequiresEVE(t *testing.T) {
	_, err := faults.Run(faults.Config{
		System:  sim.Config{Kind: sim.SysO3},
		Kernels: []*workloads.Kernel{workloads.NewVVAdd(64)},
	})
	if err == nil {
		t.Fatal("campaign on a non-EVE system did not error")
	}
}

// TestParseKinds round-trips the CLI kind syntax.
func TestParseKinds(t *testing.T) {
	all, err := faults.ParseKinds("all")
	if err != nil || len(all) != 3 {
		t.Fatalf("ParseKinds(all) = %v, %v", all, err)
	}
	two, err := faults.ParseKinds("bitflip,stuck-sa")
	if err != nil || len(two) != 2 || two[0] != faults.KindBitFlip || two[1] != faults.KindStuckSA {
		t.Fatalf("ParseKinds(bitflip,stuck-sa) = %v, %v", two, err)
	}
	if _, err := faults.ParseKinds("cosmic-ray"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
