// Package faults runs deterministic fault-injection campaigns over the EVE
// SRAM compute substrate.
//
// The bit-level machine (internal/uprog on internal/circuits on
// internal/sram) normally serves only the timing model: internal/sim
// executes workloads in the ISA layer's golden Go registers and charges
// cycles from measured micro-program lengths. That split makes injected
// faults architecturally invisible — corrupting an SRAM cell would change
// nothing a workload checker can observe. This package closes the loop with
// Datapath, an isa.Datapath that re-executes every vector instruction's
// micro-program on a real circuit stack and hands the substrate's register
// contents back to the builder. A fault-free Datapath reproduces the golden
// run exactly (cycle counts, memory contents, checker verdicts); an armed
// fault propagates — or fails to — precisely as far as the modeled
// micro-architecture lets it.
//
// A campaign (Run) samples fault sites from a seeded generator, runs one
// simulation per (kernel, site) cell on the internal/sweep worker pool, and
// classifies each cell against a fault-free baseline: masked (checker and
// memory checksum agree with the baseline), detected (the workload checker
// rejects the output), silent data corruption (checker passes but the final
// memory image differs), or crash (the simulation aborted through a typed
// sim.SimError or a recovered panic). Same seed, same report — at any
// worker count.
package faults

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/sim"
	"repro/internal/sweep"
)

// Kind enumerates the modeled fault classes.
type Kind int

const (
	// KindBitFlip is a transient single-event upset: one SRAM cell inverts
	// immediately before a chosen array access and stays inverted until the
	// row is rewritten (sram.Array.ArmBitFlip).
	KindBitFlip Kind = iota
	// KindStuckSA is a permanent stuck-at sense amplifier: one array column
	// reads a constant on every read and bit-line compute for the whole run
	// (sram.Array.SetColumnStuck). The transposed data port is unaffected.
	KindStuckSA
	// KindWordlineDrop is a dropped wordline activation: one bit-line
	// compute activates only its first wordline, so the sense amplifiers
	// see that row AND/OR itself (circuits.Stack.ArmWordlineDrop).
	KindWordlineDrop
)

var kindNames = map[Kind]string{
	KindBitFlip:      "bitflip",
	KindStuckSA:      "stuck-sa",
	KindWordlineDrop: "wordline-drop",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// MarshalText renders the kind name, making Fault JSON self-describing.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses a kind name (the inverse of MarshalText).
func (k *Kind) UnmarshalText(b []byte) error {
	for _, kk := range []Kind{KindBitFlip, KindStuckSA, KindWordlineDrop} {
		if kindNames[kk] == string(b) {
			*k = kk
			return nil
		}
	}
	return fmt.Errorf("faults: unknown fault kind %q", b)
}

// ParseKinds parses a comma-separated kind list ("bitflip,stuck-sa"), with
// "all" selecting every modeled kind.
func ParseKinds(s string) ([]Kind, error) {
	if s == "" || s == "all" {
		return []Kind{KindBitFlip, KindStuckSA, KindWordlineDrop}, nil
	}
	var out []Kind
	for _, part := range strings.Split(s, ",") {
		var k Kind
		if err := k.UnmarshalText([]byte(strings.TrimSpace(part))); err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

// Fault is one armed fault site. Which fields are meaningful depends on
// Kind: a bit flip names a cell (Row, Col) and an access index (Seq); a
// stuck sense amplifier names a column (Col) and a polarity (Stuck); a
// wordline drop names a bit-line-compute index (Seq).
type Fault struct {
	Kind  Kind   `json:"kind"`
	Row   int    `json:"row,omitempty"`
	Col   int    `json:"col,omitempty"`
	Stuck bool   `json:"stuck,omitempty"`
	Seq   uint64 `json:"seq,omitempty"`
}

// String renders a compact site label for observers and error messages.
func (f Fault) String() string {
	switch f.Kind {
	case KindBitFlip:
		return fmt.Sprintf("bitflip@r%dc%d#a%d", f.Row, f.Col, f.Seq)
	case KindStuckSA:
		v := 0
		if f.Stuck {
			v = 1
		}
		return fmt.Sprintf("stuck-sa%d@c%d", v, f.Col)
	case KindWordlineDrop:
		return fmt.Sprintf("wldrop#b%d", f.Seq)
	}
	return f.Kind.String()
}

// Outcome classifies one faulty run against its fault-free baseline.
type Outcome int

const (
	// Masked: the checker passed and the final memory image matches the
	// baseline — the fault never became architecturally visible.
	Masked Outcome = iota
	// Detected: the workload's output checker rejected the result.
	Detected
	// SDC (silent data corruption): the checker passed but the final memory
	// image differs from the fault-free baseline.
	SDC
	// Crash: the simulation aborted — a typed sim.SimError (wild memory
	// access, micro-program watchdog) or a recovered panic.
	Crash
)

var outcomeNames = [...]string{"masked", "detected", "sdc", "crash"}

func (o Outcome) String() string {
	if o >= 0 && int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// MarshalText renders the outcome name for JSON reports.
func (o Outcome) MarshalText() ([]byte, error) { return []byte(o.String()), nil }

// UnmarshalText parses an outcome name (the inverse of MarshalText).
func (o *Outcome) UnmarshalText(b []byte) error {
	for i, s := range outcomeNames {
		if s == string(b) {
			*o = Outcome(i)
			return nil
		}
	}
	return fmt.Errorf("faults: unknown outcome %q", b)
}

// Classify maps one cell's (error, final checksum) against the fault-free
// baseline checksum. Errors that unwrap to a *sim.SimError or a
// *sweep.PanicError are crashes; any other error is a checker detection.
func Classify(err error, sum, baseline uint64) Outcome {
	if err == nil {
		if sum == baseline {
			return Masked
		}
		return SDC
	}
	var se *sim.SimError
	var pe *sweep.PanicError
	if errors.As(err, &se) || errors.As(err, &pe) {
		return Crash
	}
	return Detected
}

// firstLine truncates an error rendering to its first line, dropping
// host-dependent diagnostics (panic stacks) so reports stay byte-identical
// across runs and machines.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
