package faults

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/workloads"
)

// Config describes one fault-injection campaign.
type Config struct {
	// System is the simulated system; campaigns require an EVE system
	// (sim.SysO3EVE) — the substrate being corrupted is the EVE SRAM.
	System sim.Config
	// Kernels are the workloads to inject into.
	Kernels []*workloads.Kernel
	// SitesPerKernel is how many fault sites to sample per kernel.
	SitesPerKernel int
	// Kinds restricts the sampled fault classes; empty selects all.
	Kinds []Kind
	// Seed drives site sampling. Same seed, same campaign.
	Seed int64
	// Workers bounds the sweep pool; ≤0 selects GOMAXPROCS.
	Workers int
	// RetryOnce re-runs failed cells once (sweep.Options.RetryOnce); the
	// retry count is recorded per cell. Deterministic faults fail twice
	// identically, so this only shrugs off transient host trouble.
	RetryOnce bool
	// VerifyBaseline additionally runs each kernel without the datapath and
	// requires identical cycle counts — the zero-fault ≡ golden check.
	VerifyBaseline bool
	// Observer receives sweep progress events; nil disables reporting.
	Observer sweep.Observer
	// Context cancels the campaign: a cancelled baseline phase aborts with
	// an error, a cancelled injection phase flushes a partial report whose
	// unreached cells are simply absent. Nil means never cancelled.
	Context context.Context
}

// CellResult is one (kernel, fault site) injection outcome.
type CellResult struct {
	Kernel   string  `json:"kernel"`
	Fault    Fault   `json:"fault"`
	Outcome  Outcome `json:"outcome"`
	Cycles   int64   `json:"cycles"`
	Checksum uint64  `json:"checksum"`
	Error    string  `json:"error,omitempty"`
	Retries  int     `json:"retries,omitempty"`
}

// KernelReport aggregates one kernel's baseline and injection cells.
type KernelReport struct {
	Kernel           string       `json:"kernel"`
	BaselineCycles   int64        `json:"baseline_cycles"`
	BaselineChecksum uint64       `json:"baseline_checksum"`
	Profile          Profile      `json:"profile"`
	Cells            []CellResult `json:"cells"`
}

// Summary counts cells per outcome across the whole campaign.
type Summary struct {
	Total    int `json:"total"`
	Masked   int `json:"masked"`
	Detected int `json:"detected"`
	SDC      int `json:"sdc"`
	Crash    int `json:"crash"`
}

// Report is a full campaign result. All fields are deterministic in
// (Config.System, Config.Kernels, Config.SitesPerKernel, Config.Kinds,
// Config.Seed): error strings are truncated to their stable first line, and
// cells appear in sampling order regardless of worker count.
type Report struct {
	System  string         `json:"system"`
	Seed    int64          `json:"seed"`
	Kernels []KernelReport `json:"kernels"`
	Summary Summary        `json:"summary"`
}

// Run executes a campaign: a fault-free baseline phase measuring each
// kernel's checksum and fault-site profile, then one simulation per
// (kernel, site) cell on the sweep pool. The baseline phase must validate —
// a failing baseline aborts the campaign — while injection cells are
// expected to fail in interesting ways and never abort it.
func Run(cfg Config) (*Report, error) {
	if cfg.System.Kind != sim.SysO3EVE {
		return nil, fmt.Errorf("faults: campaign requires an EVE system, got %s", cfg.System.Name())
	}
	if len(cfg.Kernels) == 0 {
		return nil, fmt.Errorf("faults: campaign has no kernels")
	}
	kinds := cfg.Kinds
	if len(kinds) == 0 {
		kinds = []Kind{KindBitFlip, KindStuckSA, KindWordlineDrop}
	}
	sys := cfg.System.Name()
	newDP := func(arm *Fault) func(hwvl int) isa.Datapath {
		return func(hwvl int) isa.Datapath {
			dp := NewDatapath(cfg.System.N, hwvl, cfg.System.MaxUProgCycles)
			if arm != nil {
				dp.Arm(*arm)
			}
			return dp
		}
	}

	// Phase 1: fault-free baselines on the datapath substrate. Each cell
	// closure writes only its own pre-assigned slot, preserving the sweep
	// determinism contract.
	type baseline struct {
		sum  uint64
		prof Profile
	}
	bases := make([]baseline, len(cfg.Kernels))
	bcells := make([]sweep.Cell, len(cfg.Kernels))
	for i, k := range cfg.Kernels {
		i, k := i, k
		bcells[i] = sweep.Cell{Kernel: k.Name, System: sys + " baseline", Run: func() sim.Result {
			var dp *Datapath
			r, sum := sim.RunDatapath(cfg.System, k, func(hwvl int) isa.Datapath {
				dp = NewDatapath(cfg.System.N, hwvl, cfg.System.MaxUProgCycles)
				return dp
			})
			bases[i].sum = sum
			bases[i].prof = dp.Profile()
			if r.Err == nil && cfg.VerifyBaseline {
				if g := sim.Run(cfg.System, k); g.Err != nil || g.Cycles != r.Cycles {
					r.Err = fmt.Errorf("faults: fault-free datapath diverges from golden run (cycles %d vs %d, golden err %v)",
						r.Cycles, g.Cycles, g.Err)
				}
			}
			return r
		}}
	}
	bres, err := sweep.ForEach(bcells, sweep.Options{
		Workers: cfg.Workers, Observer: cfg.Observer, AbortOnError: true,
		Context: cfg.Context,
	})
	if err != nil {
		return nil, fmt.Errorf("faults: baseline phase: %w", err)
	}

	// Phase 2: the injection grid, kernel-major in sampling order.
	type cellMeta struct {
		ki    int
		fault Fault
	}
	var metas []cellMeta
	for ki, k := range cfg.Kernels {
		for _, f := range Sites(kernelSeed(cfg.Seed, k.Name), bases[ki].prof, cfg.SitesPerKernel, kinds) {
			metas = append(metas, cellMeta{ki: ki, fault: f})
		}
	}
	sums := make([]uint64, len(metas))
	tries := make([]int, len(metas))
	cells := make([]sweep.Cell, len(metas))
	for i := range metas {
		i := i
		m := metas[i]
		k := cfg.Kernels[m.ki]
		f := m.fault
		cells[i] = sweep.Cell{Kernel: k.Name, System: sys + "+" + f.String(), Run: func() sim.Result {
			tries[i]++
			r, sum := sim.RunDatapath(cfg.System, k, newDP(&f))
			sums[i] = sum
			return r
		}}
	}
	// Detections and crashes are campaign data, not sweep failures: no
	// abort, and the aggregate first-error is deliberately discarded.
	fres, _ := sweep.ForEach(cells, sweep.Options{
		Workers: cfg.Workers, Observer: cfg.Observer, RetryOnce: cfg.RetryOnce,
		Context: cfg.Context,
	})

	rep := &Report{System: sys, Seed: cfg.Seed}
	rep.Kernels = make([]KernelReport, len(cfg.Kernels))
	for i, k := range cfg.Kernels {
		rep.Kernels[i] = KernelReport{
			Kernel:           k.Name,
			BaselineCycles:   bres[i].Cycles,
			BaselineChecksum: bases[i].sum,
			Profile:          bases[i].prof,
			Cells:            []CellResult{},
		}
	}
	for i, m := range metas {
		r := fres[i]
		if errors.Is(r.Err, sweep.ErrSkipped) {
			// Cancellation skipped the cell: it was never simulated, so it
			// is absent from the (partial) report rather than misclassified
			// as a crash.
			continue
		}
		cr := CellResult{
			Kernel:   cfg.Kernels[m.ki].Name,
			Fault:    m.fault,
			Outcome:  Classify(r.Err, sums[i], bases[m.ki].sum),
			Cycles:   r.Cycles,
			Checksum: sums[i],
			Retries:  tries[i] - 1,
		}
		if r.Err != nil {
			cr.Error = firstLine(r.Err.Error())
		}
		rep.Kernels[m.ki].Cells = append(rep.Kernels[m.ki].Cells, cr)
		rep.Summary.Total++
		switch cr.Outcome {
		case Masked:
			rep.Summary.Masked++
		case Detected:
			rep.Summary.Detected++
		case SDC:
			rep.Summary.SDC++
		case Crash:
			rep.Summary.Crash++
		}
	}
	return rep, nil
}
