package faults

import "math/rand"

// Profile spans a kernel's fault-site space, measured from a fault-free
// datapath run: the substrate geometry plus how many array accesses and
// bit-line computes the run performs. Site sampling draws rows, columns and
// sequence indices from these ranges, so every sampled fault lands on real
// hardware state at a point the run actually reaches.
type Profile struct {
	Rows     int    `json:"rows"`
	Cols     int    `json:"cols"`
	Accesses uint64 `json:"accesses"`
	BLCs     uint64 `json:"blcs"`
}

// Sites samples count fault sites from the profile with a seeded generator,
// drawing each site's kind uniformly from kinds. The sequence is a pure
// function of (seed, p, count, kinds): campaigns re-derive identical site
// lists at any worker count, and a re-run with the same seed reproduces the
// same campaign byte for byte.
func Sites(seed int64, p Profile, count int, kinds []Kind) []Fault {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Fault, 0, count)
	for i := 0; i < count; i++ {
		f := Fault{Kind: kinds[rng.Intn(len(kinds))]}
		switch f.Kind {
		case KindBitFlip:
			f.Row = rng.Intn(max(p.Rows, 1))
			f.Col = rng.Intn(max(p.Cols, 1))
			if p.Accesses > 0 {
				f.Seq = uint64(rng.Int63n(int64(p.Accesses)))
			}
		case KindStuckSA:
			f.Col = rng.Intn(max(p.Cols, 1))
			f.Stuck = rng.Intn(2) == 1
		case KindWordlineDrop:
			if p.BLCs > 0 {
				f.Seq = uint64(rng.Int63n(int64(p.BLCs)))
			}
		}
		out = append(out, f)
	}
	return out
}

// kernelSeed derives a per-kernel site seed from the campaign seed and the
// kernel name (FNV-1a), so a kernel's site list does not depend on which
// other kernels share the campaign.
func kernelSeed(seed int64, name string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return seed ^ int64(h&0x7FFFFFFFFFFFFFFF)
}
