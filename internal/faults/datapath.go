package faults

import (
	"repro/internal/bitmat"
	"repro/internal/circuits"
	"repro/internal/isa"
	"repro/internal/sram"
	"repro/internal/uop"
	"repro/internal/uprog"
)

// Datapath executes vector instructions on a real EVE circuit stack,
// implementing isa.Datapath. Every operation the timing model costs with a
// micro-program (internal/eve.costModel.measure) runs that same
// micro-program here, against a machine sized to hold the full hardware
// vector length; .vx forms stage their scalar through the reserved
// broadcast scratch register exactly as the VSU does. Operations that move
// data through the ports rather than the arrays — loads, slides, gathers,
// reductions, scalar moves — install the builder's golden result through
// the transposed data port instead (the port itself is not a modeled fault
// site).
//
// Fault-free, the substrate reproduces the golden ISA semantics exactly;
// TestZeroFaultDatapathMatchesGolden holds that equivalence over the full
// benchmark suite. Faults armed through Arm corrupt the substrate, and the
// builder adopts whatever the arrays now hold.
//
// A Datapath wraps single-threaded machine state and is not safe for
// concurrent use; campaigns build one per simulation.
type Datapath struct {
	mach  *uprog.Machine
	hwvl  int
	cols  int
	progs map[progKey]*uop.Program
}

// progKey identifies a cached micro-program. Unlike the timing model's
// costKey, it must include the concrete register operands: generated
// programs bake register row ids into their tuples, so a program built for
// one (d, a, b) triple cannot be reused for another.
type progKey struct {
	op      isa.Op
	vx      bool
	masked  bool
	imm     uint32
	d, a, b int
	bcast   bool // the .vx broadcast prologue program
}

// progRun is one micro-program plus the data_in environment it expects.
type progRun struct {
	p   *uop.Program
	env *circuits.Env
}

// NewDatapath builds a substrate for parallelization factor n holding hwvl
// elements. maxCycles is the per-micro-program watchdog budget (zero
// selects uprog.DefaultMaxCycles).
func NewDatapath(n, hwvl, maxCycles int) *Datapath {
	m := uprog.NewMachine(n, hwvl)
	m.MaxCycles = maxCycles
	return &Datapath{
		mach:  m,
		hwvl:  hwvl,
		cols:  m.Stack.Array().Cols(),
		progs: make(map[progKey]*uop.Program),
	}
}

// Array exposes the backing SRAM array for fault arming and inspection.
func (dp *Datapath) Array() *sram.Array { return dp.mach.Stack.Array() }

// Stack exposes the peripheral circuit stack for fault arming.
func (dp *Datapath) Stack() *circuits.Stack { return dp.mach.Stack }

// Arm arms one fault on the substrate. Sites are reduced modulo the
// machine's geometry so a profile sampled on an identically configured run
// always lands in range.
func (dp *Datapath) Arm(f Fault) {
	arr := dp.mach.Stack.Array()
	switch f.Kind {
	case KindBitFlip:
		arr.ArmBitFlip(f.Row%arr.Rows(), f.Col%arr.Cols(), f.Seq)
	case KindStuckSA:
		arr.SetColumnStuck(f.Col%arr.Cols(), f.Stuck)
	case KindWordlineDrop:
		dp.mach.Stack.ArmWordlineDrop(f.Seq)
	}
}

// Profile reports the substrate geometry and the access counts accumulated
// so far; measured on a fault-free run, it spans the sequence space Sites
// samples fault sites from.
func (dp *Datapath) Profile() Profile {
	arr := dp.mach.Stack.Array()
	return Profile{
		Rows:     arr.Rows(),
		Cols:     arr.Cols(),
		Accesses: arr.Accesses(),
		BLCs:     dp.mach.Stack.BLCs(),
	}
}

// Read implements isa.Datapath: the live substrate contents of register r,
// streamed out through the data port.
func (dp *Datapath) Read(r int) []uint32 {
	out := make([]uint32, dp.hwvl)
	for i := range out {
		out[i] = dp.mach.LoadElement(r, i)
	}
	return out
}

// Exec implements isa.Datapath. golden is the builder's architecturally
// correct result for the destination register; the return value is what the
// register actually holds after the substrate executed the instruction.
func (dp *Datapath) Exec(in *isa.Instr, golden []uint32) []uint32 {
	if runs, ok := dp.plan(in); ok {
		return dp.runNative(in, runs, golden)
	}
	dp.install(in, golden)
	return golden
}

// runNative executes the instruction's micro-program sequence. Micro-
// programs operate on every element the machine holds, while the ISA writes
// only the first VL, so the destination's tail is saved around the run and
// restored through the data port — the substrate equivalent of RVV's
// tail-undisturbed policy.
func (dp *Datapath) runNative(in *isa.Instr, runs []progRun, golden []uint32) []uint32 {
	vd := in.Vd
	vl := min(in.VL, dp.hwvl)
	var tail []uint32
	if vl < dp.hwvl {
		tail = make([]uint32, dp.hwvl-vl)
		for i := range tail {
			tail[i] = dp.mach.LoadElement(vd, vl+i)
		}
	}
	for _, r := range runs {
		dp.mach.Run(r.p, r.env)
	}
	for i, v := range tail {
		dp.mach.StoreElement(vd, vl+i, v)
	}
	out := make([]uint32, len(golden))
	copy(out, golden)
	for i := 0; i < vl && i < len(out); i++ {
		out[i] = dp.mach.LoadElement(vd, i)
	}
	return out
}

// install writes the golden result into the substrate through the data
// port — the path for operations whose data never crosses the arrays'
// compute structures (loads, slides, gathers, reduction and scalar-move
// writebacks, vid).
func (dp *Datapath) install(in *isa.Instr, golden []uint32) {
	switch in.Op {
	case isa.OpMvSX, isa.OpRedSum, isa.OpRedMin, isa.OpRedMax, isa.OpRedMinU, isa.OpRedMaxU:
		// These write element 0 only.
		dp.mach.StoreElement(in.Vd, 0, golden[0])
	default:
		vl := min(in.VL, min(dp.hwvl, len(golden)))
		for i := 0; i < vl; i++ {
			dp.mach.StoreElement(in.Vd, i, golden[i])
		}
	}
}

// plan maps an instruction to its micro-program sequence, mirroring the
// timing model's op→program mapping (internal/eve.costModel.measure) so
// execution and cycle accounting stay in lockstep. ok is false for port-
// only operations, which install instead.
func (dp *Datapath) plan(in *isa.Instr) ([]progRun, bool) {
	l := dp.mach.Layout
	bc := l.ScratchID(uprog.BroadcastScratch)
	vx := in.Kind == isa.KindVX
	d, a, b := in.Vd, in.Vs1, in.Vs2
	if vx {
		b = bc
	}
	m := in.Masked
	key := progKey{op: in.Op, vx: vx, masked: m, d: d, a: a, b: b}

	// The .vx prologue: stage the scalar into the broadcast scratch
	// register through data_in, unmasked, exactly as broadcastCost models.
	bcast := func() progRun {
		p := dp.cached(progKey{bcast: true}, func() *uop.Program {
			return uprog.WriteExt(l, bc, false)
		})
		return progRun{p, &circuits.Env{ExtRows: uprog.BroadcastRows(l, dp.cols, in.Scalar)}}
	}
	// with: the main program, prefixed by the broadcast prologue for .vx.
	with := func(gen func() *uop.Program, env *circuits.Env) ([]progRun, bool) {
		main := progRun{dp.cached(key, gen), env}
		if vx {
			return []progRun{bcast(), main}, true
		}
		return []progRun{main}, true
	}

	switch in.Op {
	case isa.OpAdd:
		return with(func() *uop.Program { return uprog.Add(l, d, a, b, m) }, nil)
	case isa.OpSub:
		return with(func() *uop.Program { return uprog.Sub(l, d, a, b, m) }, nil)
	case isa.OpRSub:
		return with(func() *uop.Program { return uprog.RSub(l, d, a, b, m) }, nil)
	case isa.OpAnd:
		return with(func() *uop.Program { return uprog.Logic(l, uop.SrcAnd, d, a, b, m) }, nil)
	case isa.OpOr:
		return with(func() *uop.Program { return uprog.Logic(l, uop.SrcOr, d, a, b, m) }, nil)
	case isa.OpXor:
		return with(func() *uop.Program { return uprog.Logic(l, uop.SrcXor, d, a, b, m) }, nil)
	case isa.OpSAdd:
		return with(func() *uop.Program { return uprog.SatAdd(l, d, a, b, m) },
			&circuits.Env{ExtRows: uprog.SatConstRows(l, dp.cols)})
	case isa.OpSAddU:
		return with(func() *uop.Program { return uprog.SatAddU(l, d, a, b, m) }, nil)
	case isa.OpSSub:
		return with(func() *uop.Program { return uprog.SatSub(l, d, a, b, m) },
			&circuits.Env{ExtRows: uprog.SatConstRows(l, dp.cols)})
	case isa.OpSSubU:
		return with(func() *uop.Program { return uprog.SatSubU(l, d, a, b, m) }, nil)
	case isa.OpMin:
		return with(func() *uop.Program { return uprog.MinMax(l, false, true, d, a, b, m) }, nil)
	case isa.OpMax:
		return with(func() *uop.Program { return uprog.MinMax(l, true, true, d, a, b, m) }, nil)
	case isa.OpMinU:
		return with(func() *uop.Program { return uprog.MinMax(l, false, false, d, a, b, m) }, nil)
	case isa.OpMaxU:
		return with(func() *uop.Program { return uprog.MinMax(l, true, false, d, a, b, m) }, nil)
	case isa.OpSll, isa.OpSrl, isa.OpSra:
		kind := map[isa.Op]uprog.ShiftKind{
			isa.OpSll: uprog.ShSLL, isa.OpSrl: uprog.ShSRL, isa.OpSra: uprog.ShSRA,
		}[in.Op]
		if vx {
			// The VSU resolves the scalar amount at decode: no broadcast.
			k := int(in.Scalar & 31)
			key.imm = uint32(k)
			p := dp.cached(key, func() *uop.Program { return uprog.ShiftImm(l, kind, d, a, k, m) })
			var env *circuits.Env
			if kind == uprog.ShSRA && k%l.N != 0 {
				env = &circuits.Env{ExtRows: []bitmat.Row{uprog.TopBitsRow(l, dp.cols, k%l.N)}}
			}
			return []progRun{{p, env}}, true
		}
		return []progRun{{dp.cached(key, func() *uop.Program { return uprog.ShiftVV(l, kind, d, a, b, m) }), nil}}, true
	case isa.OpMerge:
		// Merge reads v0 itself; the Masked bit on the instruction is not a
		// tail predicate.
		return []progRun{{dp.cached(key, func() *uop.Program { return uprog.Merge(l, d, a, b) }), nil}}, true
	case isa.OpMv:
		if vx {
			// vmv.v.x writes the broadcast directly to the destination.
			p := dp.cached(key, func() *uop.Program { return uprog.WriteExt(l, d, m) })
			return []progRun{{p, &circuits.Env{ExtRows: uprog.BroadcastRows(l, dp.cols, in.Scalar)}}}, true
		}
		return []progRun{{dp.cached(key, func() *uop.Program { return uprog.Copy(l, d, a, m) }), nil}}, true
	case isa.OpMul:
		return with(func() *uop.Program { return uprog.Mul(l, d, a, b, m, false) }, nil)
	case isa.OpMacc:
		return with(func() *uop.Program { return uprog.Mul(l, d, a, b, m, true) }, nil)
	case isa.OpMulH:
		return with(func() *uop.Program { return uprog.MulH(l, d, a, b, m) }, nil)
	case isa.OpDiv:
		return with(func() *uop.Program { return uprog.DivRem(l, uprog.DivS, d, a, b, m) },
			&circuits.Env{ExtRows: uprog.BitConstRows(l, dp.cols)})
	case isa.OpDivU:
		return with(func() *uop.Program { return uprog.DivRem(l, uprog.DivU, d, a, b, m) },
			&circuits.Env{ExtRows: uprog.BitConstRows(l, dp.cols)})
	case isa.OpRem:
		return with(func() *uop.Program { return uprog.DivRem(l, uprog.RemS, d, a, b, m) },
			&circuits.Env{ExtRows: uprog.BitConstRows(l, dp.cols)})
	case isa.OpRemU:
		return with(func() *uop.Program { return uprog.DivRem(l, uprog.RemU, d, a, b, m) },
			&circuits.Env{ExtRows: uprog.BitConstRows(l, dp.cols)})
	case isa.OpMSeq:
		return with(func() *uop.Program { return uprog.Compare(l, uprog.CmpEq, d, a, b, m) }, nil)
	case isa.OpMSne:
		return with(func() *uop.Program { return uprog.Compare(l, uprog.CmpNe, d, a, b, m) }, nil)
	case isa.OpMSlt:
		return with(func() *uop.Program { return uprog.Compare(l, uprog.CmpLt, d, a, b, m) }, nil)
	case isa.OpMSltU:
		return with(func() *uop.Program { return uprog.Compare(l, uprog.CmpLtu, d, a, b, m) }, nil)
	case isa.OpMSle:
		return with(func() *uop.Program { return uprog.Compare(l, uprog.CmpLe, d, a, b, m) }, nil)
	case isa.OpMSleU:
		return with(func() *uop.Program { return uprog.Compare(l, uprog.CmpLeu, d, a, b, m) }, nil)
	case isa.OpMSgt:
		return with(func() *uop.Program { return uprog.Compare(l, uprog.CmpGt, d, a, b, m) }, nil)
	case isa.OpMSgtU:
		return with(func() *uop.Program { return uprog.Compare(l, uprog.CmpGtu, d, a, b, m) }, nil)
	}
	return nil, false
}

// cached memoizes built micro-programs per (op, form, operands) key.
func (dp *Datapath) cached(key progKey, gen func() *uop.Program) *uop.Program {
	if p, ok := dp.progs[key]; ok {
		return p
	}
	p := gen()
	dp.progs[key] = p
	return p
}
