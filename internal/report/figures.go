package report

import (
	"fmt"
	"strings"

	"repro/internal/uop"
	"repro/internal/uprog"
)

// Fig3 renders the EVE general overview (Fig 3): the circuit stack
// composition per design and the unit structure of the micro-architecture.
func Fig3() string {
	var b strings.Builder
	b.WriteString("FIGURE 3. EVE general overview\n\n")
	b.WriteString("(a) Micro-architecture: core commit -> VCU queue -> {VSU -> EVE SRAMs, VMU -> LLC, VRU}\n")
	b.WriteString("    8 DTUs transpose between cachelines and the segment layout; 1 exec pipe; in-order issue\n\n")
	b.WriteString("(b) VMU: macro-op -> cacheline-aligned request generation (1/cycle, TLB port) -> LLC\n")
	b.WriteString("    gathers generate one request per element\n\n")

	stacks := []struct {
		name   string
		layers []string
	}{
		{"(c) EVE-1 bit-serial", []string{"bus logic", "XOR/XNOR logic", "add logic (1-bit Manchester block)", "XRegister (carry latch)", "mask logic"}},
		{"(d) EVE-32 bit-parallel", []string{"bus logic", "XOR/XNOR logic", "add logic (32-bit Manchester chain)", "XRegister (shift-right)", "constant shifter", "mask logic"}},
		{"(e) EVE-n bit-hybrid", []string{"bus logic", "XOR/XNOR logic", "add logic (n-bit Manchester chain)", "XRegister (shift-right)", "constant shifter", "spare shifter (inter-segment bits + carry)", "mask logic"}},
	}
	for _, s := range stacks {
		fmt.Fprintf(&b, "%s (%d layers):\n", s.name, len(s.layers))
		for i, l := range s.layers {
			fmt.Fprintf(&b, "   %d. %s\n", i+1, l)
		}
		b.WriteByte('\n')
	}
	b.WriteString("Every n columns form a segment group; elements are 32/n segments processed serially.\n")
	return b.String()
}

// Fig5 renders the decoupled vector engine overview (Fig 5).
func Fig5() string {
	var b strings.Builder
	b.WriteString("FIGURE 5. Decoupled vector engine (O3+DV)\n\n")
	rows := [][]string{
		{"unit", "role"},
		{"issue", "in-order, 1 instruction/cycle, register scoreboard"},
		{"pipe 0", "simple integer (add/logic/compare/min/max), 16 lanes"},
		{"pipe 1", "pipelined complex integer (multiply, shifts), 16 lanes"},
		{"pipe 2", "iterative complex integer + cross-element (divide, reductions, permutes)"},
		{"pipe 3", "memory: VMU generating cacheline-aligned requests into the L2 (1/cycle, TLB hit assumed)"},
		{"VRF", "64-element vector registers"},
		{"store path", "store buffer drains data-ready stores without blocking later loads"},
	}
	b.WriteString(table(rows))
	return b.String()
}

// MicroProgramListing renders the full micro-program for one macro-operation
// at one parallelization factor, with static tuple count and executed-cycle
// count — the expanded form of Fig 4.
func MicroProgramListing(op string, n int) (string, error) {
	l := uprog.NewLayout(n)
	gens := map[string]func() *uop.Program{
		"add":  func() *uop.Program { return uprog.Add(l, 3, 1, 2, false) },
		"sub":  func() *uop.Program { return uprog.Sub(l, 3, 1, 2, false) },
		"mul":  func() *uop.Program { return uprog.Mul(l, 3, 1, 2, false, false) },
		"divu": func() *uop.Program { return uprog.DivRem(l, uprog.DivU, 3, 1, 2, false) },
		"sll4": func() *uop.Program { return uprog.ShiftImm(l, uprog.ShSLL, 3, 1, 4, false) },
		"slt":  func() *uop.Program { return uprog.Compare(l, uprog.CmpLt, 3, 1, 2, false) },
	}
	mk, ok := gens[op]
	if !ok {
		return "", fmt.Errorf("report: no listing for macro-op %q", op)
	}
	p := mk()
	m := uprog.NewMachine(n, 2)
	cycles := m.CountCycles(p)
	var b strings.Builder
	fmt.Fprintf(&b, "%s for EVE-%d: %d static tuples, %d executed cycles\n",
		p.Name, n, p.Len(), cycles)
	for i, t := range p.Tuples {
		fmt.Fprintf(&b, "%3d: %s\n", i, tupleString(t))
	}
	return b.String(), nil
}
