package report

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestEnergyTable drives Energy with synthetic results: normalization is
// against EVE-1, non-EVE systems are excluded, and kernels with no energy
// data are skipped.
func TestEnergyTable(t *testing.T) {
	systems := []sim.Config{
		{Kind: sim.SysO3},
		{Kind: sim.SysO3EVE, N: 1},
		{Kind: sim.SysO3EVE, N: 8},
	}
	results := [][]sim.Result{
		{
			{Kernel: "vvadd", System: "O3"},
			{Kernel: "vvadd", System: "O3+EVE-1", EnergyEq: 100},
			{Kernel: "vvadd", System: "O3+EVE-8", EnergyEq: 150},
		},
		{
			// No energy data (e.g. a failed cell): the row is skipped.
			{Kernel: "sw", System: "O3"},
			{Kernel: "sw", System: "O3+EVE-1", EnergyEq: 0},
			{Kernel: "sw", System: "O3+EVE-8", EnergyEq: 99},
		},
	}
	out := Energy(systems, results)
	for _, w := range []string{"ARRAY ENERGY", "O3+EVE-1", "O3+EVE-8", "vvadd", "1.00", "1.50"} {
		if !strings.Contains(out, w) {
			t.Errorf("Energy missing %q:\n%s", w, out)
		}
	}
	if strings.Contains(out, "sw") {
		t.Errorf("Energy should skip kernels without a baseline EnergyEq:\n%s", out)
	}
	if strings.Contains(out, "O3 ") && strings.Index(out, "O3+") > strings.Index(out, "O3 ") {
		t.Errorf("Energy should only list EVE systems:\n%s", out)
	}
}

func TestTableAlignsColumns(t *testing.T) {
	out := table([][]string{{"a", "bbbb"}, {"ccc", "d"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 || len(lines[0]) != len(lines[1]) {
		t.Fatalf("table rows not aligned:\n%s", out)
	}
	if table(nil) != "" {
		t.Fatal("table(nil) should render nothing")
	}
}

func TestSuiteOfCoversTableIVTaxonomy(t *testing.T) {
	cases := map[string]string{
		"vvadd": "k", "mmult": "k", "spmv": "k", "redux": "k",
		"k-means": "ro", "pathfinder": "ro", "backprop": "ro",
		"jacobi-2d": "rv", "streamcluster-dist": "rv",
		"sw":      "g",
		"unknown": "?",
	}
	for kernel, want := range cases {
		if got := suiteOf(kernel); got != want {
			t.Errorf("suiteOf(%q) = %q, want %q", kernel, got, want)
		}
	}
}

func TestIndexOfPanicsOnUnknownSystem(t *testing.T) {
	systems := []sim.Config{{Kind: sim.SysIO}, {Kind: sim.SysO3}}
	if i := indexOf(systems, "O3"); i != 1 {
		t.Fatalf("indexOf(O3) = %d, want 1", i)
	}
	defer func() {
		if recover() == nil {
			t.Error("indexOf on a missing system should panic")
		}
	}()
	indexOf(systems, "O3+EVE-64")
}
