package report

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/workloads"
)

func TestStaticTablesRender(t *testing.T) {
	cases := map[string][]string{
		TableI():   {"TABLE I", "Packed SIMD", "Next Generation", "Gather/Scatter"},
		TableII():  {"TABLE II", "blc", "m_shft", "bnd"},
		TableIII(): {"TABLE III", "O3+EVE-n", "DDR4-2400", "decoupled"},
		Fig1():     {"FIGURE 1", "in-situ ALUs"},
		Area():     {"EVE-8", "11.7%", "1.55", "2.00x"},
	}
	for out, wants := range cases {
		for _, w := range wants {
			if !strings.Contains(out, w) {
				t.Errorf("rendered output missing %q:\n%s", w, out[:min(200, len(out))])
			}
		}
	}
}

func TestFig2Renders(t *testing.T) {
	out := Fig2()
	for _, w := range []string{"FIGURE 2", "PF (ALUs)", "4 (64)", "32 (8)"} {
		if !strings.Contains(out, w) {
			t.Errorf("Fig2 missing %q", w)
		}
	}
}

func TestFig4ShowsMicroPrograms(t *testing.T) {
	out := Fig4(8)
	for _, w := range []string{"vadd", "vmul", "blc", "wb", "bnz", "init seg_cnt"} {
		if !strings.Contains(out, w) {
			t.Errorf("Fig4 missing %q", w)
		}
	}
}

// TestDynamicFiguresRender runs a minimal matrix and checks every dynamic
// table renders with the expected structure.
func TestDynamicFiguresRender(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run")
	}
	systems := sim.AllSystems()
	kernels := []*workloads.Kernel{workloads.NewVVAdd(1 << 10), workloads.NewSW(48)}
	results := sim.Matrix(systems, kernels)

	fig6 := Fig6(systems, results, nil)
	for _, w := range []string{"FIGURE 6", "vvadd", "sw", "geomean", "O3+EVE-8"} {
		if !strings.Contains(fig6, w) {
			t.Errorf("Fig6 missing %q", w)
		}
	}
	t4 := TableIV(systems, results)
	for _, w := range []string{"TABLE IV", "VI%", "VPar", "E-32"} {
		if !strings.Contains(t4, w) {
			t.Errorf("TableIV missing %q", w)
		}
	}
	f7 := Fig7(systems, results)
	for _, w := range []string{"FIGURE 7", "busy", "ld_mem_stall", "dep_stall"} {
		if !strings.Contains(f7, w) {
			t.Errorf("Fig7 missing %q", w)
		}
	}
	f8 := Fig8(systems, results)
	if !strings.Contains(f8, "FIGURE 8") || !strings.Contains(f8, "%") {
		t.Error("Fig8 malformed")
	}
	an := AreaNormalized(systems, results, nil)
	if !strings.Contains(an, "area-normalized") && !strings.Contains(an, "AREA-NORMALIZED") {
		t.Error("AreaNormalized malformed")
	}
}

func TestBarClamps(t *testing.T) {
	if bar(-1, 10) != ".........." {
		t.Error("negative fraction should render empty")
	}
	if bar(2, 10) != "##########" {
		t.Error("overflow fraction should render full")
	}
}

func TestFig3Fig5AndListings(t *testing.T) {
	f3 := Fig3()
	for _, w := range []string{"FIGURE 3", "bit-serial", "bit-hybrid", "spare shifter"} {
		if !strings.Contains(f3, w) {
			t.Errorf("Fig3 missing %q", w)
		}
	}
	f5 := Fig5()
	for _, w := range []string{"FIGURE 5", "scoreboard", "16 lanes", "store buffer"} {
		if !strings.Contains(f5, w) {
			t.Errorf("Fig5 missing %q", w)
		}
	}
	for _, op := range []string{"add", "mul", "divu", "sll4", "slt", "sub"} {
		out, err := MicroProgramListing(op, 8)
		if err != nil {
			t.Fatalf("listing %s: %v", op, err)
		}
		if !strings.Contains(out, "tuples") || !strings.Contains(out, "ret") {
			t.Errorf("listing %s malformed", op)
		}
	}
	if _, err := MicroProgramListing("bogus", 8); err == nil {
		t.Error("expected error for unknown op")
	}
}
