// Package report renders the paper's tables and figures as aligned text:
// the Fig 2 taxonomy sweep, Table III system configurations, Fig 6 speedups,
// Table IV characterization, Fig 7 execution breakdowns, Fig 8 VMU stalls,
// and the §VI circuits evaluation.
package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analytic"
	"repro/internal/eve"
	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/uop"
	"repro/internal/uprog"
	"repro/internal/vreg"
)

// newCostOnlyPrograms builds the Fig 4 reference micro-programs (add, mul).
func newCostOnlyPrograms(n int) []*uop.Program {
	l := uprog.NewLayout(n)
	return []*uop.Program{
		uprog.Add(l, 3, 1, 2, false),
		uprog.Mul(l, 3, 1, 2, false, false),
	}
}

// table renders rows with aligned columns.
func table(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	widths := make([]int, len(rows[0]))
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for _, r := range rows {
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// bar renders a proportional ASCII bar.
func bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac * float64(width))
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

// TableI renders the vector-architecture taxonomy (Table I).
func TableI() string {
	rows := [][]string{
		{"Attribute", "Packed SIMD", "Long Vector", "Next Generation"},
		{"Length", "fixed, short", "scalable, long", "scalable"},
		{"Element Width", "variable", "fixed", "variable"},
		{"Predication", "limited", "full", "full"},
		{"Cross-Element Ops", "full", "limited", "full"},
		{"Memory Gather/Scatter", "limited", "full", "full"},
		{"Integration", "integrated", "decoupled", "either"},
		{"Speculative Execution", "yes", "no", "either"},
		{"Compute Pipeline", "integrated", "decoupled", "either"},
		{"Memory Bandwidth", "modest", "large", "either"},
		{"Memory Latency", "low", "high", "either"},
	}
	return "TABLE I. A SUMMARY OF VECTOR ARCHITECTURES\n\n" + table(rows)
}

// TableII renders the supported μops (Table II).
func TableII() string {
	rows := [][]string{
		{"μOperation", "Syntax", "Description"},
		{"read", "rd a, src", "read a into src"},
		{"write", "wr d, src", "write src into d"},
		{"blc", "blc a, b", "bit-line compute of a and b"},
		{"lshift", "lshft", "1-bit shift left"},
		{"rshift", "rshft", "1-bit shift right"},
		{"lrotate", "lrot", "1-bit rotate left"},
		{"rrotate", "rrot", "1-bit rotate right"},
		{"mask shft", "m_shft", "1-bit shift right the XRegister"},
		{"cnt_init", "init cnt, val", "initialize cnt to val"},
		{"cnt_decr", "decr cnt", "decrement cnt by one"},
		{"bnz", "bnz cnt, l", "branch to l if cnt is not zero"},
		{"bnd", "bnd cnt, l", "branch to l if cnt is a decade"},
		{"ret", "ret", "conclude execution"},
	}
	return "TABLE II. SUPPORTED EVE MICRO-OPERATIONS\n\n" + table(rows)
}

// Fig1 renders the S-CIM data-organization geometry (Fig 1): elements,
// column groups and in-situ ALUs per parallelization factor.
func Fig1() string {
	rows := [][]string{{"PF", "segs/elem", "col groups", "elem width", "elems/array", "in-situ ALUs", "row util", "col util"}}
	for _, n := range analytic.Factors {
		g := vreg.Standard(n)
		rows = append(rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", g.Segs()),
			fmt.Sprintf("%d", g.ColumnGroups()),
			fmt.Sprintf("%d", g.ElementWidth()),
			fmt.Sprintf("%d", g.ElementsPerArray()),
			fmt.Sprintf("%d", g.InSituALUs()),
			fmt.Sprintf("%.2f", g.RowUtilization()),
			fmt.Sprintf("%.2f", g.ColUtilization()),
		})
	}
	return "FIGURE 1. Data organization in the S-CIM SRAM array (256x256, 32 vregs, 32-bit elements)\n\n" + table(rows)
}

// Fig2 renders the latency/throughput taxonomy sweep (Fig 2), using the
// measured micro-program cycle counts.
func Fig2() string {
	rows := [][]string{{"PF (ALUs)", "add lat", "mul lat", "add lat(norm)", "mul lat(norm)", "add thpt(norm)", "mul thpt(norm)"}}
	for _, r := range analytic.Fig2() {
		rows = append(rows, []string{
			fmt.Sprintf("%d (%d)", r.N, r.ALUs),
			fmt.Sprintf("%d", r.AddLat),
			fmt.Sprintf("%d", r.MulLat),
			fmt.Sprintf("%.3f", r.AddLatN),
			fmt.Sprintf("%.3f", r.MulLatN),
			fmt.Sprintf("%.2f %s", r.AddThpN, bar(r.AddThpN/4, 20)),
			fmt.Sprintf("%.2f %s", r.MulThpN, bar(r.MulThpN/4, 20)),
		})
	}
	return "FIGURE 2. Latency and throughput of add/logic and multiply vs. parallelization factor\n" +
		"(256x256 S-CIM SRAM, 32 vector registers, normalized to PF=1)\n\n" + table(rows)
}

// Fig4 renders the add and mul micro-programs for a given factor (Fig 4).
func Fig4(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 4. add and mul macro-operations for EVE-%d\n", n)
	cm := newCostOnlyPrograms(n)
	for _, p := range cm {
		fmt.Fprintf(&b, "\n%s (%d tuples static):\n", p.Name, p.Len())
		limit := p.Len()
		if limit > 24 {
			limit = 24
		}
		for i := 0; i < limit; i++ {
			t := p.Tuples[i]
			fmt.Fprintf(&b, "  %2d: %s\n", i, tupleString(t))
		}
		if p.Len() > limit {
			fmt.Fprintf(&b, "  ... (%d more)\n", p.Len()-limit)
		}
	}
	return b.String()
}

func tupleString(t uop.Tuple) string {
	parts := []string{}
	switch t.Ctr.Kind {
	case uop.CInit:
		parts = append(parts, fmt.Sprintf("init %v,%d", t.Ctr.Cnt, t.Ctr.Val))
	case uop.CDecr:
		parts = append(parts, fmt.Sprintf("decr %v", t.Ctr.Cnt))
	case uop.CIncr:
		parts = append(parts, fmt.Sprintf("incr %v", t.Ctr.Cnt))
	}
	if t.Arith.Kind != uop.ANone {
		a := t.Arith
		switch a.Kind {
		case uop.ABLC:
			parts = append(parts, fmt.Sprintf("blc %v,%v", a.A, a.B))
		case uop.AWriteback:
			if a.Dst == uop.DstRow {
				parts = append(parts, fmt.Sprintf("wb %v,%v", a.DstR, a.Src))
			} else {
				parts = append(parts, fmt.Sprintf("wb %v,%v", a.Dst, a.Src))
			}
		case uop.ARead:
			parts = append(parts, fmt.Sprintf("rd %v,%v", a.A, a.Dst))
		case uop.AWrite:
			parts = append(parts, fmt.Sprintf("wr %v,%v", a.A, a.Src))
		default:
			parts = append(parts, a.Kind.String())
		}
	}
	switch t.Ctl.Kind {
	case uop.LBnz:
		parts = append(parts, fmt.Sprintf("bnz %v,%d", t.Ctl.Cnt, t.Ctl.Target))
	case uop.LBnd:
		parts = append(parts, fmt.Sprintf("bnd %v,%d", t.Ctl.Cnt, t.Ctl.Target))
	case uop.LJmp:
		parts = append(parts, fmt.Sprintf("jmp %d", t.Ctl.Target))
	case uop.LRet:
		parts = append(parts, "ret")
	}
	return strings.Join(parts, " ; ")
}

// TableIII renders the simulated system configurations.
func TableIII() string {
	rows := [][]string{
		{"System", "Description"},
		{"IO", "single-issue in-order RV core; L1D 32KB 4-way 2-cyc; L2 512KB 8-way 8-cyc 32 MSHRs"},
		{"O3", "8-wide out-of-order core, 192-entry window; same caches as IO"},
		{"O3+IV", "integrated vector unit: VL=4, shares O3 pipes and LSQ"},
		{"O3+DV", "decoupled vector engine: VL=64, in-order, 4 pipes, VMU into L2"},
		{"O3+EVE-n", "EVE from half the L2 ways: VMU into LLC; VL 2048/2048/2048/1024/512/256 for n=1/2/4/8/16/32"},
		{"LLC", "2MB 16-way 12-cyc hit, 32 MSHRs (shared)"},
		{"Memory", "single-channel DDR4-2400 (19.2 GB/s, ~50-cycle latency)"},
	}
	return "TABLE III. SIMULATED SYSTEMS\n\n" + table(rows)
}

// Fig6 renders the speedup-over-IO figure from a result matrix produced by
// sim.Matrix with sim.AllSystems ordering.
func Fig6(systems []sim.Config, results [][]sim.Result, geoSet func(kernel string) bool) string {
	rows := [][]string{}
	head := []string{"kernel"}
	for _, s := range systems[1:] { // skip IO (the baseline)
		head = append(head, s.Name())
	}
	rows = append(rows, head)

	speedups := make(map[string][]float64) // system -> speedups for geomean
	for _, kr := range results {
		io := float64(kr[0].Cycles)
		row := []string{kr[0].Kernel}
		for j := 1; j < len(kr); j++ {
			sp := stats.Speedup(io, float64(kr[j].Cycles))
			row = append(row, fmt.Sprintf("%.2f", sp))
			if geoSet == nil || geoSet(kr[0].Kernel) {
				speedups[systems[j].Name()] = append(speedups[systems[j].Name()], sp)
			}
		}
		rows = append(rows, row)
	}
	geo := []string{"geomean"}
	for _, s := range systems[1:] {
		geo = append(geo, fmt.Sprintf("%.2f", stats.Geomean(speedups[s.Name()])))
	}
	rows = append(rows, geo)
	return "FIGURE 6. Performance normalized to the in-order core (IO)\n\n" + table(rows)
}

// TableIV renders the benchmark characterization plus speedups vs O3+IV.
func TableIV(systems []sim.Config, results [][]sim.Result) string {
	ivIdx := indexOf(systems, "O3+IV")
	dvIdx := indexOf(systems, "O3+DV")
	rows := [][]string{{"name", "suite", "DIns", "VI%", "ctrl", "ialu", "imul", "xe", "us", "st", "idx", "prd", "DOp", "VO%", "VPar", "vs-IV:DV", "E-1", "E-2", "E-4", "E-8", "E-16", "E-32"}}
	for _, kr := range results {
		m := kr[dvIdx].Mix // characterize at VL=64, as the paper's Table IV does
		classPct := func(c isa.Class) string {
			if m.VectorInstrs == 0 {
				return "0"
			}
			return fmt.Sprintf("%.0f", 100*float64(m.ByClass[c])/float64(m.VectorInstrs))
		}
		iv := float64(kr[ivIdx].Cycles)
		row := []string{
			kr[0].Kernel, suiteOf(kr[0].Kernel),
			fmt.Sprintf("%.2fM", float64(m.DynamicInstrs())/1e6),
			fmt.Sprintf("%.0f%%", 100*m.VectorPct()),
			classPct(isa.ClassCtrl), classPct(isa.ClassIALU), classPct(isa.ClassIMul),
			classPct(isa.ClassXE), classPct(isa.ClassUS), classPct(isa.ClassST), classPct(isa.ClassIdx),
			fmt.Sprintf("%.0f", 100*float64(m.Predicated)/float64(max(1, int(m.VectorInstrs)))),
			fmt.Sprintf("%.2fM", float64(m.TotalOps())/1e6),
			fmt.Sprintf("%.0f%%", 100*m.VectorOpPct()),
			fmt.Sprintf("%.1f", m.LogicalParallelism()),
		}
		for _, name := range []string{"O3+DV", "O3+EVE-1", "O3+EVE-2", "O3+EVE-4", "O3+EVE-8", "O3+EVE-16", "O3+EVE-32"} {
			idx := indexOf(systems, name)
			row = append(row, fmt.Sprintf("%.2f", stats.Speedup(iv, float64(kr[idx].Cycles))))
		}
		rows = append(rows, row)
	}
	return "TABLE IV. BENCHMARK APPLICATIONS (characterization of the vectorized runs; speedups vs O3+IV)\n\n" + table(rows)
}

// Fig7 renders the execution breakdown per EVE design, normalized to EVE-1.
func Fig7(systems []sim.Config, results [][]sim.Result) string {
	var b strings.Builder
	b.WriteString("FIGURE 7. Execution breakdown (normalized to EVE-1 execution time)\n")
	eveIdx := []int{}
	for j, s := range systems {
		if s.Kind == sim.SysO3EVE {
			eveIdx = append(eveIdx, j)
		}
	}
	for _, kr := range results {
		base := float64(kr[eveIdx[0]].Breakdown.Total())
		if base == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n%s:\n", kr[0].Kernel)
		rows := [][]string{{"design", "total"}}
		for c := eve.Category(0); c < eve.NumCategories; c++ {
			rows[0] = append(rows[0], c.String())
		}
		for _, j := range eveIdx {
			bd := kr[j].Breakdown
			row := []string{systems[j].Name(), fmt.Sprintf("%.2f", float64(bd.Total())/base)}
			for c := eve.Category(0); c < eve.NumCategories; c++ {
				row = append(row, fmt.Sprintf("%.2f", float64(bd[c])/base))
			}
			rows = append(rows, row)
		}
		b.WriteString(table(rows))
	}
	return b.String()
}

// Fig8 renders the VMU cache-induced stall fractions.
func Fig8(systems []sim.Config, results [][]sim.Result) string {
	var b strings.Builder
	b.WriteString("FIGURE 8. Cache-induced stalls in the VMU (% of execution time the VMU stalls sending a request to the LLC)\n\n")
	rows := [][]string{{"kernel"}}
	eveIdx := []int{}
	for j, s := range systems {
		if s.Kind == sim.SysO3EVE {
			eveIdx = append(eveIdx, j)
			rows[0] = append(rows[0], s.Name())
		}
	}
	for _, kr := range results {
		row := []string{kr[0].Kernel}
		for _, j := range eveIdx {
			row = append(row, fmt.Sprintf("%4.1f%% %s", 100*kr[j].VMUStall, bar(kr[j].VMUStall, 16)))
		}
		rows = append(rows, row)
	}
	b.WriteString(table(rows))
	return b.String()
}

// Area renders the §VI/§VII-B circuits evaluation.
func Area() string {
	var b strings.Builder
	b.WriteString("CIRCUITS EVALUATION (§VI) and AREA EFFICIENCY (§VII-B)\n\n")
	rows := [][]string{{"design", "SRAM overhead", "L2 total overhead", "cycle time (ns)", "clock penalty", "system area vs O3"}}
	for _, n := range analytic.Factors {
		rows = append(rows, []string{
			fmt.Sprintf("EVE-%d", n),
			fmt.Sprintf("%.1f%%", 100*analytic.SRAMOverhead(n)),
			fmt.Sprintf("%.1f%%", 100*analytic.TotalOverhead(n)),
			fmt.Sprintf("%.3f", analytic.CycleTimeNS(n)),
			fmt.Sprintf("%.3f", analytic.ClockPenalty(n)),
			fmt.Sprintf("%.2fx", analytic.SystemAreaFactor(fmt.Sprintf("O3+EVE-%d", n))),
		})
	}
	b.WriteString(table(rows))
	fmt.Fprintf(&b, "\nStructural overhead (DTUs + ROM): %.1f%% of L2 sub-arrays\n", 100*analytic.StructuralOverhead())
	fmt.Fprintf(&b, "Baselines: O3+IV %.2fx, O3+DV %.2fx of O3 area\n",
		analytic.SystemAreaFactor("O3+IV"), analytic.SystemAreaFactor("O3+DV"))
	fmt.Fprintf(&b, "blc energy vs vanilla read: %.2fx\n", analytic.BLCEnergyMult)
	return b.String()
}

// AreaNormalized renders area-normalized performance (speedup over IO per
// unit area), the paper's headline EVE-8 vs DV comparison.
func AreaNormalized(systems []sim.Config, results [][]sim.Result, geoSet func(string) bool) string {
	perSys := map[string][]float64{}
	for _, kr := range results {
		io := float64(kr[0].Cycles)
		for j := 1; j < len(kr); j++ {
			if geoSet == nil || geoSet(kr[0].Kernel) {
				perSys[systems[j].Name()] = append(perSys[systems[j].Name()], stats.Speedup(io, float64(kr[j].Cycles)))
			}
		}
	}
	names := []string{}
	for n := range perSys {
		names = append(names, n)
	}
	sort.Strings(names)
	rows := [][]string{{"system", "geomean speedup", "area vs O3", "area-normalized"}}
	for _, n := range names {
		g := stats.Geomean(perSys[n])
		a := analytic.SystemAreaFactor(n)
		rows = append(rows, []string{n, fmt.Sprintf("%.2f", g), fmt.Sprintf("%.2fx", a), fmt.Sprintf("%.2f", g/a)})
	}
	return "AREA-NORMALIZED PERFORMANCE (geomean speedup over IO / area factor)\n\n" + table(rows)
}

// Energy renders the array-energy analysis (§VI-B): per-kernel EVE SRAM
// energy in read-equivalents, normalized to EVE-1 — checking the paper's
// point (after VRAM) that the execution paradigms have comparable energy
// efficiency, since the same logical bit-work is done at every factor.
func Energy(systems []sim.Config, results [][]sim.Result) string {
	var b strings.Builder
	b.WriteString("ARRAY ENERGY (read-equivalents, normalized to EVE-1; §VI-B weights: blc 1.2x read, peripheral ops 0.1x)\n\n")
	rows := [][]string{{"kernel"}}
	eveIdx := []int{}
	for j, s := range systems {
		if s.Kind == sim.SysO3EVE {
			eveIdx = append(eveIdx, j)
			rows[0] = append(rows[0], s.Name())
		}
	}
	for _, kr := range results {
		base := kr[eveIdx[0]].EnergyEq
		if base == 0 {
			continue
		}
		row := []string{kr[0].Kernel}
		for _, j := range eveIdx {
			row = append(row, fmt.Sprintf("%.2f", kr[j].EnergyEq/base))
		}
		rows = append(rows, row)
	}
	b.WriteString(table(rows))
	return b.String()
}

func indexOf(systems []sim.Config, name string) int {
	for i, s := range systems {
		if s.Name() == name {
			return i
		}
	}
	panic(fmt.Sprintf("report: system %q not in sweep", name))
}

func suiteOf(kernel string) string {
	switch kernel {
	case "vvadd", "mmult", "spmv", "redux":
		return "k"
	case "k-means", "pathfinder", "backprop":
		return "ro"
	case "jacobi-2d", "streamcluster-dist":
		return "rv"
	case "sw":
		return "g"
	}
	return "?"
}
