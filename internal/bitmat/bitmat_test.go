package bitmat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRowBitSetGet(t *testing.T) {
	r := NewRow(130)
	if r.Width() != 130 {
		t.Fatalf("Width = %d, want 130", r.Width())
	}
	idx := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range idx {
		r.SetBit(i, true)
	}
	for _, i := range idx {
		if !r.Bit(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if got := r.PopCount(); got != len(idx) {
		t.Errorf("PopCount = %d, want %d", got, len(idx))
	}
	r.SetBit(64, false)
	if r.Bit(64) {
		t.Error("bit 64 still set after clear")
	}
}

func TestRowOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range bit")
		}
	}()
	NewRow(8).Bit(8)
}

func TestRowLogicOps(t *testing.T) {
	const w = 100
	a, b := NewRow(w), NewRow(w)
	for i := 0; i < w; i++ {
		a.SetBit(i, i%2 == 0)
		b.SetBit(i, i%3 == 0)
	}
	and, or, xor, andnot, not := NewRow(w), NewRow(w), NewRow(w), NewRow(w), NewRow(w)
	and.And(a, b)
	or.Or(a, b)
	xor.Xor(a, b)
	andnot.AndNot(a, b)
	not.Not(a)
	for i := 0; i < w; i++ {
		av, bv := a.Bit(i), b.Bit(i)
		if and.Bit(i) != (av && bv) {
			t.Fatalf("AND bit %d wrong", i)
		}
		if or.Bit(i) != (av || bv) {
			t.Fatalf("OR bit %d wrong", i)
		}
		if xor.Bit(i) != (av != bv) {
			t.Fatalf("XOR bit %d wrong", i)
		}
		if andnot.Bit(i) != (av && !bv) {
			t.Fatalf("ANDNOT bit %d wrong", i)
		}
		if not.Bit(i) != !av {
			t.Fatalf("NOT bit %d wrong", i)
		}
	}
}

func TestNotPreservesWidthInvariant(t *testing.T) {
	// NOT of a row whose width is not a multiple of 64 must keep the unused
	// high bits zero, otherwise PopCount and Equal break.
	r := NewRow(70)
	n := NewRow(70)
	n.Not(r)
	if got := n.PopCount(); got != 70 {
		t.Fatalf("PopCount after Not = %d, want 70", got)
	}
}

func TestMux(t *testing.T) {
	const w = 67
	sel, a, b, out := NewRow(w), NewRow(w), NewRow(w), NewRow(w)
	for i := 0; i < w; i++ {
		sel.SetBit(i, i%2 == 0)
		a.SetBit(i, true)
	}
	out.Mux(sel, a, b)
	for i := 0; i < w; i++ {
		want := i%2 == 0
		if out.Bit(i) != want {
			t.Fatalf("Mux bit %d = %v, want %v", i, out.Bit(i), want)
		}
	}
}

func TestShifts(t *testing.T) {
	const w = 150
	for _, k := range []int{0, 1, 7, 63, 64, 65, 100, 149, 150, 200} {
		a := NewRow(w)
		rng := rand.New(rand.NewSource(int64(k)))
		for i := 0; i < w; i++ {
			a.SetBit(i, rng.Intn(2) == 1)
		}
		l, r := NewRow(w), NewRow(w)
		l.ShiftLeft(a, k)
		r.ShiftRight(a, k)
		for i := 0; i < w; i++ {
			wantL := i-k >= 0 && a.Bit(i-k)
			if l.Bit(i) != wantL {
				t.Fatalf("ShiftLeft(%d) bit %d = %v, want %v", k, i, l.Bit(i), wantL)
			}
			wantR := i+k < w && a.Bit(i+k)
			if r.Bit(i) != wantR {
				t.Fatalf("ShiftRight(%d) bit %d = %v, want %v", k, i, r.Bit(i), wantR)
			}
		}
	}
}

func TestShiftInPlace(t *testing.T) {
	a := NewRow(64)
	a.SetBit(0, true)
	a.ShiftLeft(a, 3)
	if !a.Bit(3) || a.PopCount() != 1 {
		t.Fatalf("in-place ShiftLeft failed: %s", a)
	}
}

func TestShiftNegativeDelegates(t *testing.T) {
	a := NewRow(32)
	a.SetBit(5, true)
	out := NewRow(32)
	out.ShiftLeft(a, -2)
	if !out.Bit(3) {
		t.Fatal("ShiftLeft with negative k should shift right")
	}
}

// Property: shifting left then right by the same amount only loses the bits
// that fell off the top.
func TestShiftRoundTripProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		const w = 96
		k := int(kRaw) % w
		a := NewRow(w)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < w; i++ {
			a.SetBit(i, rng.Intn(2) == 1)
		}
		tmp, back := NewRow(w), NewRow(w)
		tmp.ShiftLeft(a, k)
		back.ShiftRight(tmp, k)
		for i := 0; i < w-k; i++ {
			if back.Bit(i) != a.Bit(i) {
				return false
			}
		}
		for i := w - k; i < w; i++ {
			if back.Bit(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixMaskedWrite(t *testing.T) {
	m := NewMatrix(4, 16)
	src, mask := NewRow(16), NewRow(16)
	src.Fill()
	for i := 0; i < 16; i += 2 {
		mask.SetBit(i, true)
	}
	m.WriteRowMasked(2, src, mask)
	for i := 0; i < 16; i++ {
		want := i%2 == 0
		if m.Bit(2, i) != want {
			t.Fatalf("masked write bit %d = %v, want %v", i, m.Bit(2, i), want)
		}
	}
	// Other rows untouched.
	if m.Row(1).Any() {
		t.Fatal("masked write disturbed another row")
	}
}

func TestMatrixReset(t *testing.T) {
	m := NewMatrix(3, 8)
	m.SetBit(1, 4, true)
	m.Reset()
	for r := 0; r < 3; r++ {
		if m.Row(r).Any() {
			t.Fatalf("row %d not cleared", r)
		}
	}
}

func TestGroupMasks(t *testing.T) {
	g := GroupMask(16, 4, 1)
	for i := 0; i < 16; i++ {
		want := i >= 4 && i < 8
		if g.Bit(i) != want {
			t.Fatalf("GroupMask bit %d = %v, want %v", i, g.Bit(i), want)
		}
	}
	lsb := LSBMask(16, 4)
	msb := MSBMask(16, 4)
	for i := 0; i < 16; i++ {
		if lsb.Bit(i) != (i%4 == 0) {
			t.Fatalf("LSBMask bit %d wrong", i)
		}
		if msb.Bit(i) != (i%4 == 3) {
			t.Fatalf("MSBMask bit %d wrong", i)
		}
	}
}

func TestSpreadLSBMSB(t *testing.T) {
	const w, n = 16, 4
	a := NewRow(w)
	a.SetBit(0, true)  // group 0 LSB
	a.SetBit(7, true)  // group 1 MSB
	a.SetBit(9, true)  // group 2 interior (ignored by both)
	a.SetBit(15, true) // group 3 MSB

	lsb := NewRow(w)
	lsb.SpreadLSB(a, n)
	for i := 0; i < w; i++ {
		want := i < 4 // only group 0 had its LSB set
		if lsb.Bit(i) != want {
			t.Fatalf("SpreadLSB bit %d = %v, want %v", i, lsb.Bit(i), want)
		}
	}

	msb := NewRow(w)
	msb.SpreadMSB(a, n)
	for i := 0; i < w; i++ {
		want := (i >= 4 && i < 8) || i >= 12 // groups 1 and 3 had MSB set
		if msb.Bit(i) != want {
			t.Fatalf("SpreadMSB bit %d = %v, want %v", i, msb.Bit(i), want)
		}
	}
}

func TestSpreadInPlaceAliasing(t *testing.T) {
	// SpreadLSB must tolerate r aliasing a (it snapshots internally).
	a := NewRow(8)
	a.SetBit(4, true)
	a.SpreadLSB(a, 4)
	for i := 0; i < 8; i++ {
		want := i >= 4
		if a.Bit(i) != want {
			t.Fatalf("aliased SpreadLSB bit %d = %v, want %v", i, a.Bit(i), want)
		}
	}
}

func TestEqualAndClone(t *testing.T) {
	a := NewRow(40)
	a.SetBit(13, true)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.SetBit(14, true)
	if a.Equal(b) {
		t.Fatal("mutating clone affected original equality")
	}
	if a.Equal(NewRow(41)) {
		t.Fatal("rows of different width compare equal")
	}
}
