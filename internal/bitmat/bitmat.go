// Package bitmat provides dense bit-matrix storage and word-parallel row
// operations. It is the storage substrate for SRAM sub-array models: an SRAM
// array is a bit matrix whose wordlines are rows and whose bitlines are
// columns. Peripheral compute circuits operate column-wise, which maps onto
// word-parallel operations over Row values (one bit per column).
package bitmat

import (
	"fmt"
	"math/bits"
	"strings"
)

// WordBits is the number of bits per storage word.
const WordBits = 64

// Row is a fixed-width vector of bits, one bit per SRAM column. Bit c of a
// Row is column c of the array. All bitwise helpers treat receiver and
// operands as having the same width; mixing widths is a programming error.
type Row struct {
	width int
	w     []uint64
}

// NewRow returns an all-zero Row of the given width in bits.
func NewRow(width int) Row {
	if width <= 0 {
		panic(fmt.Sprintf("bitmat: invalid row width %d", width))
	}
	return Row{width: width, w: make([]uint64, (width+WordBits-1)/WordBits)}
}

// Width reports the number of bit positions (columns) in the row.
func (r Row) Width() int { return r.width }

// Clone returns an independent copy of r.
func (r Row) Clone() Row {
	c := Row{width: r.width, w: make([]uint64, len(r.w))}
	copy(c.w, r.w)
	return c
}

// Bit reports the value of bit i.
func (r Row) Bit(i int) bool {
	r.check(i)
	return r.w[i/WordBits]>>(uint(i)%WordBits)&1 == 1
}

// SetBit sets bit i to v.
func (r Row) SetBit(i int, v bool) {
	r.check(i)
	if v {
		r.w[i/WordBits] |= 1 << (uint(i) % WordBits)
	} else {
		r.w[i/WordBits] &^= 1 << (uint(i) % WordBits)
	}
}

func (r Row) check(i int) {
	if i < 0 || i >= r.width {
		panic(fmt.Sprintf("bitmat: bit index %d out of range [0,%d)", i, r.width))
	}
}

// Zero clears every bit of r in place.
func (r Row) Zero() {
	for i := range r.w {
		r.w[i] = 0
	}
}

// Fill sets every bit of r in place.
func (r Row) Fill() {
	for i := range r.w {
		r.w[i] = ^uint64(0)
	}
	r.trim()
}

// trim clears bits beyond width in the last word, preserving the invariant
// that unused high bits are zero.
func (r Row) trim() {
	rem := r.width % WordBits
	if rem != 0 {
		r.w[len(r.w)-1] &= (1 << uint(rem)) - 1
	}
}

// CopyFrom overwrites r with the contents of src. Widths must match.
func (r Row) CopyFrom(src Row) {
	r.mustMatch(src)
	copy(r.w, src.w)
}

func (r Row) mustMatch(o Row) {
	if r.width != o.width {
		panic(fmt.Sprintf("bitmat: width mismatch %d vs %d", r.width, o.width))
	}
}

// And stores a AND b into r (r may alias a or b).
func (r Row) And(a, b Row) {
	r.mustMatch(a)
	r.mustMatch(b)
	for i := range r.w {
		r.w[i] = a.w[i] & b.w[i]
	}
}

// Or stores a OR b into r.
func (r Row) Or(a, b Row) {
	r.mustMatch(a)
	r.mustMatch(b)
	for i := range r.w {
		r.w[i] = a.w[i] | b.w[i]
	}
}

// Xor stores a XOR b into r.
func (r Row) Xor(a, b Row) {
	r.mustMatch(a)
	r.mustMatch(b)
	for i := range r.w {
		r.w[i] = a.w[i] ^ b.w[i]
	}
}

// AndNot stores a AND NOT b into r.
func (r Row) AndNot(a, b Row) {
	r.mustMatch(a)
	r.mustMatch(b)
	for i := range r.w {
		r.w[i] = a.w[i] &^ b.w[i]
	}
}

// Not stores NOT a into r.
func (r Row) Not(a Row) {
	r.mustMatch(a)
	for i := range r.w {
		r.w[i] = ^a.w[i]
	}
	r.trim()
}

// Mux stores, per bit, (sel ? a : b) into r.
func (r Row) Mux(sel, a, b Row) {
	r.mustMatch(sel)
	r.mustMatch(a)
	r.mustMatch(b)
	for i := range r.w {
		r.w[i] = (sel.w[i] & a.w[i]) | (^sel.w[i] & b.w[i])
	}
	r.trim()
}

// ShiftLeft stores a shifted left (toward higher bit indices) by k into r,
// filling vacated low bits with zero. r must not alias a when k > 0 unless
// r == a, which is handled.
func (r Row) ShiftLeft(a Row, k int) {
	r.mustMatch(a)
	if k < 0 {
		r.ShiftRight(a, -k)
		return
	}
	if k >= r.width {
		r.Zero()
		return
	}
	wordShift, bitShift := k/WordBits, uint(k%WordBits)
	for i := len(r.w) - 1; i >= 0; i-- {
		var v uint64
		if i-wordShift >= 0 {
			v = a.w[i-wordShift] << bitShift
			if bitShift > 0 && i-wordShift-1 >= 0 {
				v |= a.w[i-wordShift-1] >> (WordBits - bitShift)
			}
		}
		r.w[i] = v
	}
	r.trim()
}

// ShiftRight stores a shifted right (toward lower bit indices) by k into r,
// filling vacated high bits with zero.
func (r Row) ShiftRight(a Row, k int) {
	r.mustMatch(a)
	if k < 0 {
		r.ShiftLeft(a, -k)
		return
	}
	if k >= r.width {
		r.Zero()
		return
	}
	wordShift, bitShift := k/WordBits, uint(k%WordBits)
	for i := range r.w {
		var v uint64
		if i+wordShift < len(a.w) {
			v = a.w[i+wordShift] >> bitShift
			if bitShift > 0 && i+wordShift+1 < len(a.w) {
				v |= a.w[i+wordShift+1] << (WordBits - bitShift)
			}
		}
		r.w[i] = v
	}
}

// PopCount reports the number of set bits.
func (r Row) PopCount() int {
	n := 0
	for _, w := range r.w {
		n += bits.OnesCount64(w)
	}
	return n
}

// Any reports whether any bit is set.
func (r Row) Any() bool {
	for _, w := range r.w {
		if w != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether r and o hold identical bits.
func (r Row) Equal(o Row) bool {
	if r.width != o.width {
		return false
	}
	for i := range r.w {
		if r.w[i] != o.w[i] {
			return false
		}
	}
	return true
}

// String renders the row LSB-first as '0'/'1' characters, for debugging.
func (r Row) String() string {
	var b strings.Builder
	b.Grow(r.width)
	for i := 0; i < r.width; i++ {
		if r.Bit(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Matrix is a rows × cols bit matrix with row-granularity access, modeling
// the storage core of an SRAM sub-array (wordlines × bitlines).
type Matrix struct {
	rows, cols int
	data       []Row
}

// NewMatrix returns a zeroed rows × cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("bitmat: invalid matrix dims %dx%d", rows, cols))
	}
	m := &Matrix{rows: rows, cols: cols, data: make([]Row, rows)}
	for i := range m.data {
		m.data[i] = NewRow(cols)
	}
	return m
}

// Rows reports the number of wordlines.
func (m *Matrix) Rows() int { return m.rows }

// Cols reports the number of bitlines.
func (m *Matrix) Cols() int { return m.cols }

// Row returns the live Row for wordline i. Mutating the returned Row mutates
// the matrix; callers needing a snapshot should Clone it.
func (m *Matrix) Row(i int) Row {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("bitmat: row %d out of range [0,%d)", i, m.rows))
	}
	return m.data[i]
}

// WriteRow overwrites wordline i with src.
func (m *Matrix) WriteRow(i int, src Row) {
	m.Row(i).CopyFrom(src)
}

// WriteRowMasked overwrites only the columns of wordline i where mask bit is
// set, leaving other columns untouched (a masked SRAM write).
func (m *Matrix) WriteRowMasked(i int, src, mask Row) {
	dst := m.Row(i)
	dst.mustMatch(src)
	dst.mustMatch(mask)
	for w := range dst.w {
		dst.w[w] = (src.w[w] & mask.w[w]) | (dst.w[w] &^ mask.w[w])
	}
}

// Bit reports the bit at (row, col).
func (m *Matrix) Bit(row, col int) bool { return m.Row(row).Bit(col) }

// SetBit sets the bit at (row, col).
func (m *Matrix) SetBit(row, col int, v bool) { m.Row(row).SetBit(col, v) }

// Reset zeroes the whole matrix.
func (m *Matrix) Reset() {
	for _, r := range m.data {
		r.Zero()
	}
}

// GroupMask returns a Row with bits set for every column in group g when the
// width is divided into contiguous groups of size n (column group g covers
// columns [g*n, (g+1)*n)).
func GroupMask(width, n, g int) Row {
	r := NewRow(width)
	for c := g * n; c < (g+1)*n && c < width; c++ {
		r.SetBit(c, true)
	}
	return r
}

// LSBMask returns a Row with a bit set at the least-significant column of
// every n-wide group (columns 0, n, 2n, ...).
func LSBMask(width, n int) Row {
	r := NewRow(width)
	for c := 0; c < width; c += n {
		r.SetBit(c, true)
	}
	return r
}

// MSBMask returns a Row with a bit set at the most-significant column of
// every n-wide group (columns n-1, 2n-1, ...).
func MSBMask(width, n int) Row {
	r := NewRow(width)
	for c := n - 1; c < width; c += n {
		r.SetBit(c, true)
	}
	return r
}

// SpreadLSB copies the bit at each group's LSB column to every column of that
// group, storing the result into r. It implements "the mask latch of the
// group follows the LSB column" broadcast used by segment predication.
func (r Row) SpreadLSB(a Row, n int) {
	r.mustMatch(a)
	if n == 1 {
		r.CopyFrom(a)
		return
	}
	tmp := a.Clone()
	for c := 0; c < r.width; c += n {
		v := tmp.Bit(c)
		for k := 0; k < n && c+k < r.width; k++ {
			r.SetBit(c+k, v)
		}
	}
}

// SpreadMSB copies the bit at each group's MSB column to every column of that
// group, storing the result into r.
func (r Row) SpreadMSB(a Row, n int) {
	r.mustMatch(a)
	if n == 1 {
		r.CopyFrom(a)
		return
	}
	tmp := a.Clone()
	for c := 0; c < r.width; c += n {
		v := tmp.Bit(c + n - 1)
		for k := 0; k < n && c+k < r.width; k++ {
			r.SetBit(c+k, v)
		}
	}
}
