// Package softfp implements IEEE-754 binary32 addition and multiplication
// as sequences of EVE's integer vector instructions — the paper's §IX
// future-work direction ("future research can explore using bit-hybrid
// execution to balance latency and throughput for floating-point
// operations"), realized the way an integer-only engine runs FP today:
// branch-free softfloat over the vector ISA, with every data-dependent
// decision expressed through predication, so the cost stays
// data-independent like the underlying micro-programs.
//
// Semantics: round-toward-zero (bits shifted out during alignment are
// truncated; no guard/round/sticky bits), denormals flushed to zero, and no
// NaN handling (exponent overflow clamps to ∞). The pure-Go Reference
// functions implement the identical algorithm, so vector and reference
// results are bit-exact; against IEEE round-to-nearest the mantissa error
// is bounded by a couple of ulps (checked in tests).
//
// Register convention: the routines clobber v0 (the predicate register)
// and v20-v31; operands and the destination must lie outside that range.
package softfp

import "repro/internal/isa"

// binary32 field layout.
const (
	signMask = uint32(0x80000000)
	manMask  = uint32(0x007FFFFF)
	expMask  = uint32(0x7F800000)
	hidden   = uint32(1) << 23
	expBias  = 127
	infBits  = uint32(0x7F800000)
)

// Temporaries (v20-v31).
const (
	tSign = 20
	tEA   = 21
	tEB   = 22
	tMA   = 23
	tMB   = 24
	tE    = 25
	tM    = 26
	tT1   = 27
	tT2   = 28
	tFlag = 29
	tCmp  = 30
	tPad  = 31
)

// unpack splits raw bits va into exponent ve and mantissa-with-hidden-bit
// vm, flushing denormals (exponent field 0) to a zero mantissa. Clobbers v0
// and tPad; va may be any register except ve, vm, tPad.
func unpack(b *isa.Builder, ve, vm, va int) {
	b.SrlVX(ve, va, 23)
	b.AndVX(ve, ve, 0xFF)
	b.AndVX(vm, va, manMask)
	b.OrVX(vm, vm, hidden)
	b.MSeqVX(0, ve, 0)
	b.MvVX(tPad, 0)
	b.Merge(vm, tPad, vm)
}

// pack assembles sign | exponent | mantissa into vd, flushing
// unnormalizable or zero mantissas (m < 2^23) and negative/zero exponents
// to signed zero, and clamping exponent overflow (≥ 255) to ∞. ve may hold
// a wrapped-negative two's-complement value. Clobbers v0, tT1, tT2, tCmp.
func pack(b *isa.Builder, vd, vs, ve, vm int) {
	b.AndVX(tT1, vm, manMask)
	b.SllVX(tT2, ve, 23)
	b.AndVX(tT2, tT2, expMask)
	b.Or(vd, tT2, tT1)
	b.Or(vd, vd, vs)
	// m below the hidden bit (zero or unnormalizable) → ±0.
	b.MSltUVX(0, vm, hidden)
	b.Merge(vd, vs, vd)
	// Wrapped-negative or zero exponent → ±0.
	b.MSgtUVX(0, ve, 0x7FFFFFFF)
	b.Merge(vd, vs, vd)
	b.MSeqVX(0, ve, 0)
	b.Merge(vd, vs, vd)
	// Exponent ≥ 255 (and not negative, and m normalized) → ±∞.
	b.MSltUVX(tCmp, ve, 255)
	b.MSeqVX(0, tCmp, 0) // ve ≥ 255
	b.MSgtUVX(tCmp, ve, 0x7FFFFFFF)
	b.MSeqVX(tCmp, tCmp, 0) // ve not wrapped-negative
	b.And(0, 0, tCmp)
	b.MSltUVX(tCmp, vm, hidden)
	b.MSeqVX(tCmp, tCmp, 0) // m normalized
	b.And(0, 0, tCmp)
	b.MvVX(tT2, infBits)
	b.Or(tT2, tT2, vs)
	b.Merge(vd, tT2, vd)
}

// Add32 computes vd[i] = va[i] + vb[i] in binary32 with truncation
// rounding. Clobbers v0 and v20-v31.
func Add32(b *isa.Builder, vd, va, vb int) {
	// Order by magnitude so A is the larger |operand|: the mantissa
	// difference is then non-negative and the result takes A's sign.
	b.AndVX(tT1, va, ^signMask)
	b.AndVX(tT2, vb, ^signMask)
	b.MSltU(0, tT1, tT2)
	b.Merge(tMA, vb, va) // A raw bits (tMA reused as staging)
	b.Merge(tMB, va, vb) // B raw bits

	b.AndVX(tSign, tMA, signMask)
	b.Xor(tFlag, tMA, tMB)
	b.SrlVX(tFlag, tFlag, 31) // 1 when the signs differ

	b.Mv(tT1, tMA)
	b.Mv(tT2, tMB)
	unpack(b, tEA, tMA, tT1)
	unpack(b, tEB, tMB, tT2)

	// Align B's mantissa to A's exponent, truncating shifted-out bits;
	// differences beyond 31 zero it outright (the ISA shifts mod 32).
	b.Sub(tE, tEA, tEB)
	b.Srl(tM, tMB, tE)
	b.MSgtUVX(0, tE, 31)
	b.MvVX(tCmp, 0)
	b.Merge(tM, tCmp, tM)

	// m = mA ± mBaligned, selected by the sign-difference flag.
	b.Add(tT1, tMA, tM)
	b.Sub(tT2, tMA, tM)
	b.MSeqVX(0, tFlag, 1)
	b.Merge(tM, tT2, tT1)

	// Same-sign overflow into [2^24, 2^25): one shift-down step.
	b.MSgtUVX(0, tM, hidden*2-1)
	b.SrlVX(tT1, tM, 1)
	b.Merge(tM, tT1, tM)
	b.AddVX(tT1, tEA, 1)
	b.Merge(tEA, tT1, tEA)

	// Opposite-sign cancellation: renormalize with a predicated binary CLZ
	// (m <<= k, e -= k while m is small and the exponent allows it).
	for _, k := range []uint32{16, 8, 4, 2, 1} {
		b.MSltUVX(tCmp, tM, uint32(1)<<(24-k)) // shifting by k keeps m < 2^24
		b.MSgtUVX(tT1, tM, 0)
		b.And(tCmp, tCmp, tT1)
		b.MSgtUVX(tT1, tEA, k)
		b.And(tCmp, tCmp, tT1)
		b.Mv(0, tCmp)
		b.SllVX(tT1, tM, k)
		b.Merge(tM, tT1, tM)
		b.SubVX(tT1, tEA, k)
		b.Merge(tEA, tT1, tEA)
	}

	pack(b, vd, tSign, tEA, tM)
}

// Mul32 computes vd[i] = va[i] × vb[i] in binary32 with truncation
// rounding. Clobbers v0 and v20-v31.
func Mul32(b *isa.Builder, vd, va, vb int) {
	b.Xor(tSign, va, vb)
	b.AndVX(tSign, tSign, signMask)

	unpack(b, tEA, tMA, va)
	unpack(b, tEB, tMB, vb)

	// e = eA + eB - bias.
	b.Add(tE, tEA, tEB)
	b.SubVX(tE, tE, expBias)

	// 24×24-bit product: top bits from vmulhu, low bits from vmul;
	// mantissa = product >> 23 = (hi << 9) | (lo >> 23) ∈ [2^23, 2^25).
	b.MulH(tT1, tMA, tMB)
	b.Mul(tT2, tMA, tMB)
	b.SllVX(tT1, tT1, 9)
	b.SrlVX(tT2, tT2, 23)
	b.Or(tM, tT1, tT2)

	// Normalize the [1,4) product: one conditional shift-down step.
	b.MSgtUVX(0, tM, hidden*2-1)
	b.SrlVX(tT1, tM, 1)
	b.Merge(tM, tT1, tM)
	b.AddVX(tT1, tE, 1)
	b.Merge(tE, tT1, tE)

	// A zero operand flushed the mantissa; pack's m < 2^23 rule handles it.
	pack(b, vd, tSign, tE, tM)
}

// ReferenceAdd32 is the bit-exact pure-Go model of Add32.
func ReferenceAdd32(a, b uint32) uint32 {
	if b&^signMask > a&^signMask {
		a, b = b, a
	}
	sign := a & signMask
	signDiff := (a^b)&signMask != 0
	ea, ma := unpackRef(a)
	eb, mb := unpackRef(b)
	d := ea - eb
	var mba uint32
	if d <= 31 {
		mba = mb >> d
	}
	var m uint32
	if signDiff {
		m = ma - mba
	} else {
		m = ma + mba
	}
	e := ea
	if m >= hidden*2 {
		m >>= 1
		e++
	}
	for _, k := range []uint32{16, 8, 4, 2, 1} {
		if m > 0 && m < uint32(1)<<(24-k) && e > k {
			m <<= k
			e -= k
		}
	}
	return packRef(sign, e, m)
}

// ReferenceMul32 is the bit-exact pure-Go model of Mul32.
func ReferenceMul32(a, b uint32) uint32 {
	sign := (a ^ b) & signMask
	ea, ma := unpackRef(a)
	eb, mb := unpackRef(b)
	e := ea + eb - expBias
	m := uint32(uint64(ma) * uint64(mb) >> 23)
	if m >= hidden*2 {
		m >>= 1
		e++
	}
	return packRef(sign, e, m)
}

func unpackRef(x uint32) (e, m uint32) {
	e = x >> 23 & 0xFF
	m = x & manMask
	if e != 0 {
		m |= hidden
	} else {
		m = 0
	}
	return e, m
}

func packRef(sign, e, m uint32) uint32 {
	if m < hidden {
		return sign
	}
	if e > 0x7FFFFFFF || e == 0 {
		return sign
	}
	if e >= 255 {
		return sign | infBits
	}
	return sign | e<<23 | m&manMask
}
