package softfp

import "repro/internal/isa"

// Division via Newton-Raphson reciprocal refinement, composed entirely from
// the Add32/Mul32 building blocks: r₀ comes from the classic bit-trick
// initial estimate (exponent negation by constant subtraction), three
// iterations of r ← r·(2 − b·r) refine it to binary32 precision, and a
// final multiply produces a/b. Everything inherits the package's truncation
// rounding; the divisor must be a nonzero finite normal (no ∞/NaN special
// cases, divisor zero diverges — as documented for the whole package).

// recipMagic is the bit-level initial estimate constant for 1/x: subtracting
// the operand's bits from it negates the exponent around 1.0 and linearly
// approximates the mantissa, giving a start good to ~3 bits.
const recipMagic = uint32(0x7EF311C3)

// Additional temporaries for division (still within the package's v20-v31
// clobber set is impossible — Add32/Mul32 clobber all of them — so division
// stages its running values in the caller-visible ISA registers v16-v19 and
// widens the documented clobber range to v16-v31).
const (
	dR = 16 // reciprocal estimate
	dB = 17 // divisor copy
	dT = 18 // b·r / correction term
	dA = 19 // dividend copy
)

// two is the binary32 constant 2.0.
const two = uint32(0x40000000)

// Div32 computes vd[i] = va[i] / vb[i] in binary32. Clobbers v0 and
// v16-v31; vd, va, vb must lie outside that range.
func Div32(b *isa.Builder, vd, va, vb int) {
	b.Mv(dA, va)
	b.Mv(dB, vb)
	// Initial estimate r0 = magic - bits(b).
	b.RSubVX(dR, dB, recipMagic)
	// Three Newton iterations: r = r * (2 - b*r).
	for i := 0; i < 3; i++ {
		Mul32(b, dT, dB, dR)      // t = b*r
		b.XorVX(dT, dT, signMask) // t = -t
		b.MvVX(tPad, two)         // 2.0 — tPad is free between calls
		Add32(b, dT, tPad, dT)    // t = 2 - b*r
		Mul32(b, dR, dR, dT)      // r *= t
	}
	Mul32(b, vd, dA, dR)
}

// ReferenceDiv32 is the bit-exact pure-Go model of Div32: the same
// composition of the reference primitives.
func ReferenceDiv32(a, bv uint32) uint32 {
	r := recipMagic - bv
	for i := 0; i < 3; i++ {
		t := ReferenceMul32(bv, r) ^ signMask
		t = ReferenceAdd32(two, t)
		r = ReferenceMul32(r, t)
	}
	return ReferenceMul32(a, r)
}
