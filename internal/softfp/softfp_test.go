package softfp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/mem"
)

// runOp executes the vector softfloat routine over the operand slices and
// returns the raw results.
func runOp(t *testing.T, op func(b *isa.Builder, vd, va, vb int), a, b []uint32) []uint32 {
	t.Helper()
	bld := isa.NewBuilder(mem.NewFlat(1<<20), len(a), nil)
	bld.SetVL(len(a))
	copy(bld.VReg(1), a)
	copy(bld.VReg(2), b)
	op(bld, 3, 1, 2)
	out := make([]uint32, len(a))
	copy(out, bld.VReg(3))
	return out
}

// interesting binary32 values (finite; NaN/∞ inputs are out of scope).
var fpEdges = []float32{
	0, 1, -1, 0.5, -0.5, 2, 3.14159, -2.71828,
	1e-30, -1e-30, 1e30, -1e30, 1.5e-38, 3e38,
	123456.78, -0.000123, 16777216, // 2^24, the mantissa boundary
}

func bitsOf(f float32) uint32  { return math.Float32bits(f) }
func floatOf(u uint32) float32 { return math.Float32frombits(u) }

// ulpDiff returns the distance in representable float32 steps, treating
// ±0 as equal.
func ulpDiff(a, b uint32) uint64 {
	fa, fb := floatOf(a), floatOf(b)
	if fa == fb {
		return 0
	}
	oa, ob := orderKey(a), orderKey(b)
	if oa > ob {
		return uint64(oa - ob)
	}
	return uint64(ob - oa)
}

// orderKey maps float bits to a monotone integer line.
func orderKey(u uint32) int64 {
	if u&0x80000000 != 0 {
		return -int64(u &^ 0x80000000)
	}
	return int64(u)
}

// TestVectorMatchesReference checks the vector routines are bit-exact with
// the pure-Go model on edge values and random operands.
func TestVectorMatchesReference(t *testing.T) {
	ops := []struct {
		name string
		vec  func(b *isa.Builder, vd, va, vb int)
		ref  func(a, b uint32) uint32
	}{
		{"add", Add32, ReferenceAdd32},
		{"mul", Mul32, ReferenceMul32},
	}
	rng := rand.New(rand.NewSource(17))
	randFinite := func() uint32 {
		for {
			u := rng.Uint32()
			if e := u >> 23 & 0xFF; e != 0 && e != 255 {
				return u
			}
		}
	}
	for _, op := range ops {
		var a, b []uint32
		for _, x := range fpEdges {
			for _, y := range fpEdges {
				a = append(a, bitsOf(x))
				b = append(b, bitsOf(y))
			}
		}
		for i := 0; i < 200; i++ {
			a = append(a, randFinite())
			b = append(b, randFinite())
		}
		got := runOp(t, op.vec, a, b)
		for i := range got {
			want := op.ref(a[i], b[i])
			if got[i] != want {
				t.Fatalf("%s(%g,%g) = %#x (%g), reference %#x (%g)",
					op.name, floatOf(a[i]), floatOf(b[i]),
					got[i], floatOf(got[i]), want, floatOf(want))
			}
		}
	}
}

// TestCloseToIEEE bounds the truncation error against hardware float32:
// results must be within a few ulps (and exact when the operation is exact).
func TestCloseToIEEE(t *testing.T) {
	const maxUlp = 4
	rng := rand.New(rand.NewSource(99))
	check := func(name string, ref func(a, b uint32) uint32, gold func(x, y float32) float32, x, y float32) {
		t.Helper()
		got := ref(bitsOf(x), bitsOf(y))
		want := gold(x, y)
		// Out-of-scope outputs: overflow/underflow handling differs (no
		// denormals, clamp-to-∞).
		if math.IsInf(float64(want), 0) || (want != 0 && math.Abs(float64(want)) < 1.2e-38) {
			return
		}
		if d := ulpDiff(got, bitsOf(want)); d > maxUlp {
			t.Errorf("%s(%g, %g) = %g, IEEE %g (%d ulp)", name, x, y, floatOf(got), want, d)
		}
	}
	for i := 0; i < 3000; i++ {
		x := float32(rng.NormFloat64()) * float32(math.Pow(10, float64(rng.Intn(12)-6)))
		y := float32(rng.NormFloat64()) * float32(math.Pow(10, float64(rng.Intn(12)-6)))
		check("add", ReferenceAdd32, func(a, b float32) float32 { return a + b }, x, y)
		check("mul", ReferenceMul32, func(a, b float32) float32 { return a * b }, x, y)
	}
	for _, x := range fpEdges {
		for _, y := range fpEdges {
			check("add", ReferenceAdd32, func(a, b float32) float32 { return a + b }, x, y)
			check("mul", ReferenceMul32, func(a, b float32) float32 { return a * b }, x, y)
		}
	}
}

// Property: addition is commutative and x + 0 = x.
func TestAddProperties(t *testing.T) {
	f := func(ar, br uint32) bool {
		// Constrain to finite normals.
		a := ar&^uint32(0x7F800000) | 0x3F800000&^(ar&0x40000000)
		b := br&^uint32(0x7F800000) | 0x40000000
		if ReferenceAdd32(a, b) != ReferenceAdd32(b, a) {
			return false
		}
		return ReferenceAdd32(a, 0) == a || floatOf(a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: multiplication by 1 is identity, by 0 is signed zero magnitude.
func TestMulProperties(t *testing.T) {
	one := bitsOf(1)
	f := func(ar uint32) bool {
		a := ar&^uint32(0x7F800000) | 0x3F000000 // force a sane exponent
		if ReferenceMul32(a, one) != a {
			return false
		}
		z := ReferenceMul32(a, 0)
		return z&^signMask == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestExactCasesAreExact: sums and products exactly representable in 24
// bits must match IEEE bit-for-bit (truncation never fires).
func TestExactCasesAreExact(t *testing.T) {
	cases := [][2]float32{
		{1, 2}, {0.5, 0.25}, {3, 5}, {1024, 4096}, {-7, 7}, {-3, 1.5},
		{65536, 1}, {0.125, -0.125},
	}
	for _, c := range cases {
		if got := ReferenceAdd32(bitsOf(c[0]), bitsOf(c[1])); floatOf(got) != c[0]+c[1] {
			t.Errorf("add(%g,%g) = %g, want %g", c[0], c[1], floatOf(got), c[0]+c[1])
		}
		if got := ReferenceMul32(bitsOf(c[0]), bitsOf(c[1])); floatOf(got) != c[0]*c[1] {
			t.Errorf("mul(%g,%g) = %g, want %g", c[0], c[1], floatOf(got), c[0]*c[1])
		}
	}
}

// TestDivMatchesReference checks vector division is bit-exact with its
// reference composition.
func TestDivMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var a, b []uint32
	for _, x := range fpEdges {
		for _, y := range fpEdges {
			if y == 0 {
				continue
			}
			a = append(a, bitsOf(x))
			b = append(b, bitsOf(y))
		}
	}
	for i := 0; i < 100; i++ {
		x := float32(rng.NormFloat64() * 100)
		y := float32(rng.NormFloat64()*10 + 0.5)
		if y == 0 {
			continue
		}
		a = append(a, bitsOf(x))
		b = append(b, bitsOf(y))
	}
	got := runOp(t, Div32, a, b)
	for i := range got {
		want := ReferenceDiv32(a[i], b[i])
		if got[i] != want {
			t.Fatalf("div(%g,%g) = %#x, reference %#x",
				floatOf(a[i]), floatOf(b[i]), got[i], want)
		}
	}
}

// TestDivCloseToIEEE bounds the Newton-Raphson + truncation error against
// hardware float32 division.
func TestDivCloseToIEEE(t *testing.T) {
	const maxUlp = 16 // three truncating NR iterations + final multiply
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 2000; i++ {
		x := float32(rng.NormFloat64()) * float32(math.Pow(10, float64(rng.Intn(10)-5)))
		y := float32(rng.NormFloat64()) * float32(math.Pow(10, float64(rng.Intn(10)-5)))
		if y == 0 || x == 0 {
			continue
		}
		want := x / y
		if math.IsInf(float64(want), 0) || math.Abs(float64(want)) < 1.2e-38 {
			continue
		}
		got := ReferenceDiv32(bitsOf(x), bitsOf(y))
		if d := ulpDiff(got, bitsOf(want)); d > maxUlp {
			t.Errorf("div(%g, %g) = %g, IEEE %g (%d ulp)", x, y, floatOf(got), want, d)
		}
	}
	// Exact cases.
	for _, c := range [][2]float32{{10, 2}, {1, 4}, {-9, 3}, {7.5, -2.5}} {
		got := floatOf(ReferenceDiv32(bitsOf(c[0]), bitsOf(c[1])))
		if d := ulpDiff(bitsOf(got), bitsOf(c[0]/c[1])); d > 1 {
			t.Errorf("div(%g,%g) = %g, want %g", c[0], c[1], got, c[0]/c[1])
		}
	}
}
