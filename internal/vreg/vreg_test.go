package vreg

import "testing"

// TestTableIIIVectorLengths checks that the geometry reproduces the paper's
// hardware vector lengths exactly (Table III): with 32 arrays,
// EVE-{1,2,4} = 2048, EVE-8 = 1024, EVE-16 = 512, EVE-32 = 256.
func TestTableIIIVectorLengths(t *testing.T) {
	want := map[int]int{1: 2048, 2: 2048, 4: 2048, 8: 1024, 16: 512, 32: 256}
	for n, vl := range want {
		g := Standard(n)
		if got := g.HWVL(32); got != vl {
			t.Errorf("EVE-%d HWVL = %d, want %d", n, got, vl)
		}
	}
}

func TestElementsAndALUs(t *testing.T) {
	wantElems := map[int]int{1: 64, 2: 64, 4: 64, 8: 32, 16: 16, 32: 8}
	for n, e := range wantElems {
		g := Standard(n)
		if got := g.ElementsPerArray(); got != e {
			t.Errorf("EVE-%d elements/array = %d, want %d", n, got, e)
		}
		if got := g.InSituALUs(); got != e {
			t.Errorf("EVE-%d ALUs = %d, want %d", n, got, e)
		}
	}
}

// TestBalancedUtilization checks §II's claim: PF=4 is the balanced point for
// a 256×256 array with 32 registers — full rows and full columns.
func TestBalancedUtilization(t *testing.T) {
	g := Standard(4)
	if g.RowUtilization() != 1.0 || g.ColUtilization() != 1.0 {
		t.Errorf("EVE-4 utilization = (%.2f rows, %.2f cols), want (1,1)",
			g.RowUtilization(), g.ColUtilization())
	}
	// Column under-utilization below, row under-utilization above.
	if Standard(1).ColUtilization() >= 1.0 {
		t.Error("EVE-1 should be column under-utilized")
	}
	if Standard(1).RowUtilization() != 1.0 {
		t.Error("EVE-1 rows should be fully utilized")
	}
	if Standard(16).RowUtilization() >= 1.0 {
		t.Error("EVE-16 should be row under-utilized")
	}
	if Standard(16).ColUtilization() != 1.0 {
		t.Error("EVE-16 columns should be fully utilized")
	}
}

func TestColumnGroups(t *testing.T) {
	want := map[int]int{1: 4, 2: 2, 4: 1, 8: 1, 16: 1, 32: 1}
	for n, k := range want {
		if got := Standard(n).ColumnGroups(); got != k {
			t.Errorf("EVE-%d column groups = %d, want %d", n, got, k)
		}
	}
}

func TestSubColumnAssignment(t *testing.T) {
	g := Standard(1) // 4 groups, 8 regs each
	if g.SubColumn(0) != 0 || g.SubColumn(7) != 0 {
		t.Error("regs 0-7 should be in group 0")
	}
	if g.SubColumn(8) != 1 || g.SubColumn(31) != 3 {
		t.Error("regs 8 and 31 misplaced")
	}
	g4 := Standard(4)
	for r := 0; r < 32; r++ {
		if g4.SubColumn(r) != 0 {
			t.Fatalf("EVE-4 reg %d not in group 0", r)
		}
	}
}

func TestPlacementCoversAllRegs(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		g := Standard(n)
		cells := g.Placement()
		if len(cells) != 32 {
			t.Fatalf("EVE-%d placement has %d cells", n, len(cells))
		}
		for _, c := range cells {
			if c.FirstRow+c.RowSpan > g.Rows {
				t.Errorf("EVE-%d reg %d overflows rows: first %d span %d",
					n, c.Reg, c.FirstRow, c.RowSpan)
			}
			if c.Group >= g.ColumnGroups() {
				t.Errorf("EVE-%d reg %d in nonexistent group %d", n, c.Reg, c.Group)
			}
		}
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for N not dividing element width")
		}
	}()
	Geometry{N: 5, Rows: 256, Cols: 256, Regs: 32, ElemBits: 32}.Segs()
}
