// Package vreg models how the vector register file maps onto physical EVE
// SRAM arrays (paper §II, Fig 1): element capacity, in-situ ALU counts, and
// row/column utilization as functions of the parallelization factor. These
// geometric facts drive the hardware vector lengths of Table III and the
// under-utilization effects behind Fig 2 and Fig 7.
package vreg

import "fmt"

// Geometry describes one EVE SRAM array holding a vector register file.
type Geometry struct {
	N        int // parallelization factor (segment width, bits)
	Rows     int // physical wordlines (256 for the paper's array)
	Cols     int // physical bitlines (256)
	Regs     int // architectural vector registers (32)
	ElemBits int // element width (32)
}

// Standard returns the paper's array geometry for parallelization factor n:
// a 256×256 logical array (two banked 256×128 sub-arrays) holding 32
// registers of 32-bit elements.
func Standard(n int) Geometry {
	return Geometry{N: n, Rows: 256, Cols: 256, Regs: 32, ElemBits: 32}
}

// validate panics on inconsistent geometry — a configuration error.
func (g Geometry) validate() {
	if g.N <= 0 || g.ElemBits%g.N != 0 {
		panic(fmt.Sprintf("vreg: N=%d must divide element width %d", g.N, g.ElemBits))
	}
}

// Segs reports segments per element.
func (g Geometry) Segs() int {
	g.validate()
	return g.ElemBits / g.N
}

// RowsPerElement reports the wordlines needed to hold every register's
// segments for one element: Regs × Segs.
func (g Geometry) RowsPerElement() int { return g.Regs * g.Segs() }

// ColumnGroups reports how many n-column groups one element occupies. When
// the register file does not fit in the array's rows (small n), registers
// spill sideways into additional column groups whose ALUs then sit idle —
// the column under-utilization of §II.
func (g Geometry) ColumnGroups() int {
	need := g.RowsPerElement()
	k := (need + g.Rows - 1) / g.Rows
	if k < 1 {
		k = 1
	}
	return k
}

// ElementWidth reports the columns one element spans.
func (g Geometry) ElementWidth() int { return g.ColumnGroups() * g.N }

// ElementsPerArray reports how many elements one array holds.
func (g Geometry) ElementsPerArray() int { return g.Cols / g.ElementWidth() }

// InSituALUs reports the number of concurrently useful ALUs: one per
// element, regardless of how many column groups the element's registers
// spill across (only the group holding both operands computes).
func (g Geometry) InSituALUs() int { return g.ElementsPerArray() }

// RowUtilization reports the fraction of wordlines holding register data.
// Values below 1 are §II's row under-utilization (large n).
func (g Geometry) RowUtilization() float64 {
	used := g.RowsPerElement() / g.ColumnGroups()
	if used > g.Rows {
		used = g.Rows
	}
	return float64(used) / float64(g.Rows)
}

// ColUtilization reports the fraction of columns whose ALUs do useful work.
// Values below 1 are §II's column under-utilization (small n).
func (g Geometry) ColUtilization() float64 {
	return float64(g.ElementsPerArray()*g.N) / float64(g.Cols)
}

// SubColumn reports which of the element's column groups holds register r.
// Registers are distributed round-robin blocks across the groups; operations
// whose operands live in different groups need extra move μops (the overhead
// duality cache pays pervasively, §II), which the EVE timing model charges.
func (g Geometry) SubColumn(r int) int {
	if r < 0 || r >= g.Regs {
		panic(fmt.Sprintf("vreg: register %d out of range", r))
	}
	perGroup := (g.Regs + g.ColumnGroups() - 1) / g.ColumnGroups()
	return r / perGroup
}

// HWVL reports the hardware vector length of an EVE built from the given
// number of arrays (Table III: 32 arrays — half of a 512 KB L2's 64
// sub-arrays paired into 256×256 EVE SRAMs).
func (g Geometry) HWVL(arrays int) int { return g.ElementsPerArray() * arrays }

// LayoutCell describes one register's placement for Fig 1 style renderings.
type LayoutCell struct {
	Reg      int
	Group    int // column group within the element
	FirstRow int
	RowSpan  int
}

// Placement returns every register's cell, for rendering Fig 1.
func (g Geometry) Placement() []LayoutCell {
	k := g.ColumnGroups()
	perGroup := (g.Regs + k - 1) / k
	cells := make([]LayoutCell, 0, g.Regs)
	for r := 0; r < g.Regs; r++ {
		grp := r / perGroup
		idx := r % perGroup
		cells = append(cells, LayoutCell{
			Reg:      r,
			Group:    grp,
			FirstRow: idx * g.Segs(),
			RowSpan:  g.Segs(),
		})
	}
	return cells
}
