package uop

import "fmt"

// Static μop metadata: enum validity, the latch name space of the circuit
// stack, and a side-effect summary (EffectsOf) mirroring exactly what
// circuits.Stack.Exec does with each arithmetic μop. The static verifier
// (internal/uprog/check) is built on this file, so the summaries here and the
// stack's execution paths must stay in lockstep.

// Valid reports whether the counter id names one of the 12 shared counters.
func (c Counter) Valid() bool { return c >= 0 && c < NumCounters }

// Valid reports whether the source selector is one the bus logic implements.
func (s Src) Valid() bool { return s >= SrcNone && s <= SrcExt }

// Valid reports whether the destination selector is one the stack implements.
func (d Dst) Valid() bool { return d >= DstRow && d <= DstDataOut }

// Valid reports whether the spread policy is one the mask loader implements.
func (s Spread) Valid() bool { return s >= SpreadNone && s <= SpreadMSB }

// Valid reports whether the arithmetic μop kind is defined.
func (k ArithKind) Valid() bool { return k >= ANone && k <= AMaskShift }

// Valid reports whether the counter μop kind is defined.
func (k CtrKind) Valid() bool { return k >= CNone && k <= CIncr }

// Valid reports whether the control μop kind is defined.
func (k CtlKind) Valid() bool { return k >= LNone && k <= LRet }

var spreadNames = [...]string{"none", "lsb", "msb"}

func (s Spread) String() string {
	if s >= 0 && int(s) < len(spreadNames) {
		return spreadNames[s]
	}
	return fmt.Sprintf("spread(%d)", int(s))
}

var ctrKindNames = [...]string{"none", "init", "decr", "incr"}

func (k CtrKind) String() string {
	if k >= 0 && int(k) < len(ctrKindNames) {
		return ctrKindNames[k]
	}
	return fmt.Sprintf("ctr(%d)", int(k))
}

var ctlKindNames = [...]string{"none", "bnz", "bnd", "jmp", "ret"}

func (k CtlKind) String() string {
	if k >= 0 && int(k) < len(ctlKindNames) {
		return ctlKindNames[k]
	}
	return fmt.Sprintf("ctl(%d)", int(k))
}

// Latch names one piece of circuit-stack state an arithmetic μop can consume
// or update: the five architectural latches (§III) plus the sense amplifiers,
// whose outputs are only valid while they hold a bit-line compute result.
type Latch int

// The circuit-stack latches.
const (
	LatchCarry Latch = iota
	LatchMask
	LatchXReg
	LatchCShift
	LatchSpare
	LatchSense
	NumLatches
)

var latchNames = [...]string{"carry", "mask", "xreg", "cshift", "spare", "sense"}

func (l Latch) String() string {
	if l >= 0 && int(l) < len(latchNames) {
		return latchNames[l]
	}
	return fmt.Sprintf("latch(%d)", int(l))
}

// LatchSet is a set of latches, used by Effects to summarize which stack
// state a μop reads and writes.
type LatchSet uint8

// Latches builds a set from its members.
func Latches(ls ...Latch) LatchSet {
	var s LatchSet
	for _, l := range ls {
		s = s.With(l)
	}
	return s
}

// With returns the set with l added.
func (s LatchSet) With(l Latch) LatchSet { return s | 1<<uint(l) }

// Has reports whether l is in the set.
func (s LatchSet) Has(l Latch) bool { return s&(1<<uint(l)) != 0 }

func (s LatchSet) String() string {
	out := "{"
	for l := Latch(0); l < NumLatches; l++ {
		if s.Has(l) {
			if len(out) > 1 {
				out += ","
			}
			out += l.String()
		}
	}
	return out + "}"
}

// Effects summarizes the architectural side effects of one arithmetic μop:
// which wordlines it senses, which it writes, whether it touches the data_in
// and data_out ports, and which latches it consults and updates. The summary
// mirrors circuits.Stack.Exec exactly; EffectsOf returns an error for μops
// the stack would reject (or that violate the documented field discipline),
// with the same vocabulary as the stack's panics.
type Effects struct {
	// ReadRows lists the wordline references the μop senses (rd, or the two
	// blc operands).
	ReadRows []RowRef
	// WriteRow is the wordline reference written when WritesRow is set (wr,
	// or a writeback with Dst = row). A masked write still targets the row —
	// predication gates which columns commit, not whether the row is driven.
	WriteRow  RowRef
	WritesRow bool
	// ReadsExt is set when the μop consumes a data_in row (ExtR selects it).
	ReadsExt bool
	// WritesOut is set when the μop streams a row out through data_out.
	WritesOut bool
	// Reads and Writes are the latch sets the μop consults and updates.
	// A writeback with Src = add reads LatchSense and LatchCarry: the sum is
	// combinational from the sense outputs and the carry state captured at
	// bit-line-compute time.
	Reads  LatchSet
	Writes LatchSet
	// CommitsCarry marks the Src = add, Dst = row writeback that moves the
	// staged group carry-out into the carry latch (also in Writes).
	CommitsCarry bool
	// InvalidatesSense is set for native reads and writes: they drive the
	// bit lines, destroying any compute result the sense amplifiers held.
	InvalidatesSense bool
}

// EffectsOf computes the Effects summary of one arithmetic μop.
func EffectsOf(op Arith) (Effects, error) {
	var e Effects
	switch op.Kind {
	case ANone:
		return e, nil

	case ARead:
		e.ReadRows = []RowRef{op.A}
		e.InvalidatesSense = true
		switch op.Dst {
		case DstCShift:
			e.Writes = Latches(LatchCShift)
		case DstXReg:
			e.Writes = Latches(LatchXReg)
		case DstMask:
			if !op.Spread.Valid() {
				return Effects{}, fmt.Errorf("invalid spread %v", op.Spread)
			}
			e.Writes = Latches(LatchMask)
		case DstDataOut:
			e.WritesOut = true
		default:
			return Effects{}, fmt.Errorf("rd cannot target %v", op.Dst)
		}

	case AWrite:
		e.WriteRow, e.WritesRow = op.A, true
		e.InvalidatesSense = true
		switch op.Src {
		case SrcZero, SrcOnes:
		case SrcExt:
			e.ReadsExt = true
		default:
			return Effects{}, fmt.Errorf("wr source must be zero, ones or data_in, not %v", op.Src)
		}
		if op.Masked {
			e.Reads = e.Reads.With(LatchMask)
		}

	case ABLC:
		e.ReadRows = []RowRef{op.A, op.B}
		e.Writes = Latches(LatchSense)

	case AWriteback:
		switch op.Src {
		case SrcAnd, SrcNand, SrcOr, SrcNor, SrcXor, SrcXnor:
			e.Reads = e.Reads.With(LatchSense)
		case SrcAdd:
			e.Reads = e.Reads.With(LatchSense).With(LatchCarry)
		case SrcCShift:
			e.Reads = e.Reads.With(LatchCShift)
		case SrcXReg:
			e.Reads = e.Reads.With(LatchXReg)
		case SrcMask:
			e.Reads = e.Reads.With(LatchMask)
		case SrcZero, SrcOnes:
		case SrcExt:
			e.ReadsExt = true
		default:
			return Effects{}, fmt.Errorf("invalid writeback source %v", op.Src)
		}
		switch op.Dst {
		case DstRow:
			e.WriteRow, e.WritesRow = op.DstR, true
			if op.Masked {
				e.Reads = e.Reads.With(LatchMask)
			}
			if op.Src == SrcAdd {
				e.CommitsCarry = true
				e.Writes = e.Writes.With(LatchCarry)
			}
		case DstXReg:
			e.Writes = e.Writes.With(LatchXReg)
		case DstMask:
			if !op.Spread.Valid() {
				return Effects{}, fmt.Errorf("invalid spread %v", op.Spread)
			}
			e.Writes = e.Writes.With(LatchMask)
		case DstCShift:
			e.Writes = e.Writes.With(LatchCShift)
		case DstSpare:
			e.Writes = e.Writes.With(LatchSpare)
		case DstCarry:
			e.Writes = e.Writes.With(LatchCarry)
		case DstDataOut:
			e.WritesOut = true
		default:
			return Effects{}, fmt.Errorf("invalid writeback destination %v", op.Dst)
		}

	case ALShift, ARShift:
		e.Reads = Latches(LatchCShift, LatchSpare)
		e.Writes = Latches(LatchCShift, LatchSpare)
		if op.Masked {
			e.Reads = e.Reads.With(LatchMask)
		}

	case ALRotate, ARRotate:
		e.Reads = Latches(LatchCShift)
		e.Writes = Latches(LatchCShift)
		if op.Masked {
			e.Reads = e.Reads.With(LatchMask)
		}

	case AMaskShift:
		e.Reads = Latches(LatchXReg)
		e.Writes = Latches(LatchXReg)

	default:
		return Effects{}, fmt.Errorf("unknown arith μop kind %v", op.Kind)
	}
	return e, nil
}
