package uop

import (
	"reflect"
	"testing"
)

// TestStringerTables pins every enum's printed names, including the
// out-of-range fallbacks: the static verifier (internal/uprog/check) embeds
// these strings in its diagnostics, so a rename here is a diagnostic change.
func TestStringerTables(t *testing.T) {
	cases := []struct{ got, want string }{
		{Seg0.String(), "seg_cnt[0]"},
		{Seg3.String(), "seg_cnt[3]"},
		{Bit0.String(), "bit_cnt[0]"},
		{Arr3.String(), "arr_cnt[3]"},
		{Counter(99).String(), "cnt(99)"},
		{Counter(-1).String(), "cnt(-1)"},

		{SrcNone.String(), "none"},
		{SrcAnd.String(), "and"},
		{SrcNand.String(), "nand"},
		{SrcOr.String(), "or"},
		{SrcNor.String(), "nor"},
		{SrcXor.String(), "xor"},
		{SrcXnor.String(), "xnor"},
		{SrcAdd.String(), "add"},
		{SrcCShift.String(), "cshift"},
		{SrcXReg.String(), "xreg"},
		{SrcMask.String(), "mask"},
		{SrcZero.String(), "zero"},
		{SrcOnes.String(), "ones"},
		{SrcExt.String(), "data_in"},
		{Src(99).String(), "src(99)"},

		{DstRow.String(), "row"},
		{DstXReg.String(), "xreg"},
		{DstMask.String(), "mask"},
		{DstCShift.String(), "cshift"},
		{DstSpare.String(), "spare"},
		{DstCarry.String(), "carry"},
		{DstDataOut.String(), "data_out"},
		{Dst(9).String(), "dst(9)"},

		{SpreadNone.String(), "none"},
		{SpreadLSB.String(), "lsb"},
		{SpreadMSB.String(), "msb"},
		{Spread(7).String(), "spread(7)"},

		{ANone.String(), "nop"},
		{ARead.String(), "rd"},
		{AWrite.String(), "wr"},
		{ABLC.String(), "blc"},
		{AWriteback.String(), "wb"},
		{ALShift.String(), "lshft"},
		{ARShift.String(), "rshft"},
		{ALRotate.String(), "lrot"},
		{ARRotate.String(), "rrot"},
		{AMaskShift.String(), "m_shft"},
		{ArithKind(42).String(), "arith(42)"},

		{CNone.String(), "none"},
		{CInit.String(), "init"},
		{CDecr.String(), "decr"},
		{CIncr.String(), "incr"},
		{CtrKind(8).String(), "ctr(8)"},

		{LNone.String(), "none"},
		{LBnz.String(), "bnz"},
		{LBnd.String(), "bnd"},
		{LJmp.String(), "jmp"},
		{LRet.String(), "ret"},
		{CtlKind(8).String(), "ctl(8)"},

		{LatchCarry.String(), "carry"},
		{LatchMask.String(), "mask"},
		{LatchXReg.String(), "xreg"},
		{LatchCShift.String(), "cshift"},
		{LatchSpare.String(), "spare"},
		{LatchSense.String(), "sense"},
		{Latch(17).String(), "latch(17)"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("stringer: got %q, want %q", c.got, c.want)
		}
	}
}

// TestValidRanges pins each enum's accepted range: every defined value is
// valid, every neighbor outside the range is rejected.
func TestValidRanges(t *testing.T) {
	for c := Seg0; c < NumCounters; c++ {
		if !c.Valid() {
			t.Errorf("Counter %v should be valid", c)
		}
	}
	if Counter(-1).Valid() || NumCounters.Valid() {
		t.Error("out-of-range Counter accepted")
	}
	for s := SrcNone; s <= SrcExt; s++ {
		if !s.Valid() {
			t.Errorf("Src %v should be valid", s)
		}
	}
	if Src(-1).Valid() || (SrcExt + 1).Valid() {
		t.Error("out-of-range Src accepted")
	}
	for d := DstRow; d <= DstDataOut; d++ {
		if !d.Valid() {
			t.Errorf("Dst %v should be valid", d)
		}
	}
	if Dst(-1).Valid() || (DstDataOut + 1).Valid() {
		t.Error("out-of-range Dst accepted")
	}
	for s := SpreadNone; s <= SpreadMSB; s++ {
		if !s.Valid() {
			t.Errorf("Spread %v should be valid", s)
		}
	}
	if Spread(-1).Valid() || (SpreadMSB + 1).Valid() {
		t.Error("out-of-range Spread accepted")
	}
	for k := ANone; k <= AMaskShift; k++ {
		if !k.Valid() {
			t.Errorf("ArithKind %v should be valid", k)
		}
	}
	if ArithKind(-1).Valid() || (AMaskShift + 1).Valid() {
		t.Error("out-of-range ArithKind accepted")
	}
	for k := CNone; k <= CIncr; k++ {
		if !k.Valid() {
			t.Errorf("CtrKind %v should be valid", k)
		}
	}
	if CtrKind(-1).Valid() || (CIncr + 1).Valid() {
		t.Error("out-of-range CtrKind accepted")
	}
	for k := LNone; k <= LRet; k++ {
		if !k.Valid() {
			t.Errorf("CtlKind %v should be valid", k)
		}
	}
	if CtlKind(-1).Valid() || (LRet + 1).Valid() {
		t.Error("out-of-range CtlKind accepted")
	}
}

func TestLatchSet(t *testing.T) {
	s := Latches(LatchCarry, LatchSense)
	if !s.Has(LatchCarry) || !s.Has(LatchSense) || s.Has(LatchMask) {
		t.Fatalf("set membership wrong: %v", s)
	}
	if got := s.String(); got != "{carry,sense}" {
		t.Errorf("LatchSet string = %q", got)
	}
	if got := LatchSet(0).String(); got != "{}" {
		t.Errorf("empty LatchSet string = %q", got)
	}
}

// TestEffectsOf pins the side-effect summaries the static verifier depends
// on, one per μop shape, plus every error path's exact message.
func TestEffectsOf(t *testing.T) {
	tests := []struct {
		name string
		op   Arith
		want Effects
	}{
		{
			"nop", Arith{Kind: ANone}, Effects{},
		},
		{
			"rd-to-cshift", Arith{Kind: ARead, A: Row(4), Dst: DstCShift},
			Effects{ReadRows: []RowRef{Row(4)}, Writes: Latches(LatchCShift), InvalidatesSense: true},
		},
		{
			"rd-to-dataout", Arith{Kind: ARead, A: Row(4), Dst: DstDataOut},
			Effects{ReadRows: []RowRef{Row(4)}, WritesOut: true, InvalidatesSense: true},
		},
		{
			"wr-zero-masked", Arith{Kind: AWrite, A: Row(9), Src: SrcZero, Masked: true},
			Effects{WriteRow: Row(9), WritesRow: true, Reads: Latches(LatchMask), InvalidatesSense: true},
		},
		{
			"wr-ext", Arith{Kind: AWrite, A: Row(9), Src: SrcExt, ExtR: Ext(1)},
			Effects{WriteRow: Row(9), WritesRow: true, ReadsExt: true, InvalidatesSense: true},
		},
		{
			"blc", Arith{Kind: ABLC, A: Row(1), B: Row(2)},
			Effects{ReadRows: []RowRef{Row(1), Row(2)}, Writes: Latches(LatchSense)},
		},
		{
			"wb-add-to-row", Arith{Kind: AWriteback, Dst: DstRow, DstR: Row(7), Src: SrcAdd},
			Effects{WriteRow: Row(7), WritesRow: true,
				Reads:  Latches(LatchSense, LatchCarry),
				Writes: Latches(LatchCarry), CommitsCarry: true},
		},
		{
			"wb-add-to-mask", Arith{Kind: AWriteback, Dst: DstMask, Src: SrcAdd, Spread: SpreadLSB},
			Effects{Reads: Latches(LatchSense, LatchCarry), Writes: Latches(LatchMask)},
		},
		{
			"wb-and-masked-row", Arith{Kind: AWriteback, Dst: DstRow, DstR: Row(7), Src: SrcAnd, Masked: true},
			Effects{WriteRow: Row(7), WritesRow: true, Reads: Latches(LatchSense, LatchMask)},
		},
		{
			"wb-zero-to-carry", Arith{Kind: AWriteback, Dst: DstCarry, Src: SrcZero},
			Effects{Writes: Latches(LatchCarry)},
		},
		{
			"wb-cshift-out", Arith{Kind: AWriteback, Dst: DstDataOut, Src: SrcCShift},
			Effects{Reads: Latches(LatchCShift), WritesOut: true},
		},
		{
			"lshft-masked", Arith{Kind: ALShift, Masked: true},
			Effects{Reads: Latches(LatchCShift, LatchSpare, LatchMask),
				Writes: Latches(LatchCShift, LatchSpare)},
		},
		{
			"rrot", Arith{Kind: ARRotate},
			Effects{Reads: Latches(LatchCShift), Writes: Latches(LatchCShift)},
		},
		{
			"m_shft", Arith{Kind: AMaskShift},
			Effects{Reads: Latches(LatchXReg), Writes: Latches(LatchXReg)},
		},
	}
	for _, tc := range tests {
		got, err := EffectsOf(tc.op)
		if err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
			continue
		}
		if len(got.ReadRows) != len(tc.want.ReadRows) {
			t.Errorf("%s: ReadRows = %v, want %v", tc.name, got.ReadRows, tc.want.ReadRows)
		} else {
			for i := range got.ReadRows {
				if got.ReadRows[i] != tc.want.ReadRows[i] {
					t.Errorf("%s: ReadRows[%d] = %v, want %v", tc.name, i, got.ReadRows[i], tc.want.ReadRows[i])
				}
			}
		}
		got.ReadRows, tc.want.ReadRows = nil, nil
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: effects = %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

func TestEffectsOfErrors(t *testing.T) {
	tests := []struct {
		name string
		op   Arith
		want string
	}{
		{"rd-to-row", Arith{Kind: ARead, Dst: DstRow}, "rd cannot target row"},
		{"rd-to-carry", Arith{Kind: ARead, Dst: DstCarry}, "rd cannot target carry"},
		{"rd-bad-spread", Arith{Kind: ARead, Dst: DstMask, Spread: Spread(7)}, "invalid spread spread(7)"},
		{"wr-from-add", Arith{Kind: AWrite, Src: SrcAdd}, "wr source must be zero, ones or data_in, not add"},
		{"wr-from-none", Arith{Kind: AWrite, Src: SrcNone}, "wr source must be zero, ones or data_in, not none"},
		{"wb-no-source", Arith{Kind: AWriteback, Dst: DstRow, Src: SrcNone}, "invalid writeback source none"},
		{"wb-bad-source", Arith{Kind: AWriteback, Dst: DstRow, Src: Src(99)}, "invalid writeback source src(99)"},
		{"wb-bad-dest", Arith{Kind: AWriteback, Src: SrcAnd, Dst: Dst(9)}, "invalid writeback destination dst(9)"},
		{"wb-bad-spread", Arith{Kind: AWriteback, Src: SrcAnd, Dst: DstMask, Spread: Spread(-2)}, "invalid spread spread(-2)"},
		{"bad-kind", Arith{Kind: ArithKind(42)}, "unknown arith μop kind arith(42)"},
	}
	for _, tc := range tests {
		_, err := EffectsOf(tc.op)
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if err.Error() != tc.want {
			t.Errorf("%s: error %q, want %q", tc.name, err.Error(), tc.want)
		}
	}
}
