// Package uop defines EVE's micro-operation (μop) abstraction (paper §IV,
// Table II). A micro-program is a sequence of VLIW-style tuples, each holding
// up to one counter μop, one arithmetic μop and one control μop, executed in
// that order within a single cycle. Arithmetic μops drive the EVE SRAM and
// its peripheral circuit stacks (internal/circuits); counter and control μops
// are executed by the vector sequencing unit (VSU).
package uop

import "fmt"

// Counter identifies one of EVE's 12 shared counters: four segment counters,
// four bit counters and four array counters (§IV-A).
type Counter int

// The counter file. Segment counters are conventionally initialized to the
// number of segments, bit counters to the segment size, and array counters to
// the number of active arrays.
const (
	Seg0 Counter = iota
	Seg1
	Seg2
	Seg3
	Bit0
	Bit1
	Bit2
	Bit3
	Arr0
	Arr1
	Arr2
	Arr3
	NumCounters
)

var counterNames = [...]string{
	"seg_cnt[0]", "seg_cnt[1]", "seg_cnt[2]", "seg_cnt[3]",
	"bit_cnt[0]", "bit_cnt[1]", "bit_cnt[2]", "bit_cnt[3]",
	"arr_cnt[0]", "arr_cnt[1]", "arr_cnt[2]", "arr_cnt[3]",
}

func (c Counter) String() string {
	if c >= 0 && int(c) < len(counterNames) {
		return counterNames[c]
	}
	return fmt.Sprintf("cnt(%d)", int(c))
}

// RowRef names an SRAM wordline, optionally indexed by the iteration count of
// a counter: the resolved row is Base + Stride × iterations(Cnt). Counter
// indexing is how looped μprograms walk the segments of a vector register
// without unrolling (Fig 4's addr_a advancing per iteration).
type RowRef struct {
	Base   int
	Stride int
	Cnt    Counter
	HasCnt bool
}

// Row returns an unindexed reference to a fixed wordline.
func Row(base int) RowRef { return RowRef{Base: base} }

// RowBy returns a counter-indexed reference: Base + Stride×iter(Cnt).
func RowBy(base int, cnt Counter, stride int) RowRef {
	return RowRef{Base: base, Stride: stride, Cnt: cnt, HasCnt: true}
}

// Resolve computes the concrete wordline for the given per-counter iteration
// counts.
func (r RowRef) Resolve(iters *[NumCounters]int) int {
	if !r.HasCnt {
		return r.Base
	}
	return r.Base + r.Stride*iters[r.Cnt]
}

func (r RowRef) String() string {
	if !r.HasCnt {
		return fmt.Sprintf("r%d", r.Base)
	}
	return fmt.Sprintf("r%d+%d*i(%s)", r.Base, r.Stride, r.Cnt)
}

// ExtRef names an external data_in row supplied by the VSU, optionally
// indexed by a counter's iteration count (e.g. streaming in one cacheline
// row per iteration).
type ExtRef struct {
	Base   int
	Cnt    Counter
	HasCnt bool
}

// Ext returns an unindexed external-row reference.
func Ext(base int) ExtRef { return ExtRef{Base: base} }

// ExtBy returns a counter-indexed external-row reference.
func ExtBy(base int, cnt Counter) ExtRef { return ExtRef{Base: base, Cnt: cnt, HasCnt: true} }

// Resolve computes the concrete external row index.
func (e ExtRef) Resolve(iters *[NumCounters]int) int {
	if !e.HasCnt {
		return e.Base
	}
	return e.Base + iters[e.Cnt]
}

// Src selects which value computed by the circuit stack a writeback reads
// (Table II's src = {(n)and, (n)or, x(n)or, add, shift, data_in}, plus the
// registers the stack exposes).
type Src int

// Writeback sources.
const (
	SrcNone Src = iota
	SrcAnd
	SrcNand
	SrcOr
	SrcNor
	SrcXor
	SrcXnor
	SrcAdd    // sum output of the add logic
	SrcCShift // contents of the constant shifter
	SrcXReg   // contents of the XRegister
	SrcMask   // contents of the mask latches
	SrcZero   // data_in port tied low
	SrcOnes   // data_in port tied high
	SrcExt    // data_in port driven by the VSU (ExtRef selects the row)
)

var srcNames = [...]string{
	"none", "and", "nand", "or", "nor", "xor", "xnor",
	"add", "cshift", "xreg", "mask", "zero", "ones", "data_in",
}

func (s Src) String() string {
	if s >= 0 && int(s) < len(srcNames) {
		return srcNames[s]
	}
	return fmt.Sprintf("src(%d)", int(s))
}

// Dst selects the destination class of a writeback.
type Dst int

// Writeback destinations. DstRow writes an SRAM wordline; the register
// destinations load the circuit-stack latches; DstDataOut streams the value
// out of the array (to the VSU/VRU/DTU); DstCarry loads the inter-segment
// carry latch (physically the XRegister in EVE-1 and a spare-shifter
// flip-flop in EVE-n, §III).
const (
	DstRow Dst = iota
	DstXReg
	DstMask
	DstCShift
	DstSpare
	DstCarry
	DstDataOut
)

var dstNames = [...]string{"row", "xreg", "mask", "cshift", "spare", "carry", "data_out"}

func (d Dst) String() string {
	if d >= 0 && int(d) < len(dstNames) {
		return dstNames[d]
	}
	return fmt.Sprintf("dst(%d)", int(d))
}

// Spread selects which column of a segment group drives a mask-latch load:
// Table II's m = {msb, lsb, none}. With SpreadLSB the group's least
// significant column's bit is broadcast to the whole group, and likewise for
// SpreadMSB; SpreadNone loads each column's own bit.
type Spread int

// Mask-load column selection.
const (
	SpreadNone Spread = iota
	SpreadLSB
	SpreadMSB
)

// ArithKind discriminates arithmetic μops (Table II).
type ArithKind int

// Arithmetic μop kinds.
const (
	ANone      ArithKind = iota
	ARead                // rd: native SRAM read into a latch or data_out
	AWrite               // wr: native SRAM write from data_in
	ABLC                 // blc: bit-line compute of two wordlines
	AWriteback           // wb: write a computed value back (row or latch)
	ALShift              // lshft: conditional 1-bit left shift of the constant shifter
	ARShift              // rshft: conditional 1-bit right shift of the constant shifter
	ALRotate             // lrot: 1-bit rotate left within the segment
	ARRotate             // rrot: 1-bit rotate right within the segment
	AMaskShift           // m_shft: 1-bit right shift of the XRegister
)

var arithNames = [...]string{
	"nop", "rd", "wr", "blc", "wb", "lshft", "rshft", "lrot", "rrot", "m_shft",
}

func (k ArithKind) String() string {
	if k >= 0 && int(k) < len(arithNames) {
		return arithNames[k]
	}
	return fmt.Sprintf("arith(%d)", int(k))
}

// Arith is one arithmetic μop. Field use depends on Kind:
//
//	ARead:      A = source row, Dst ∈ {DstCShift, DstXReg, DstMask, DstDataOut}
//	AWrite:     A = destination row, Src ∈ {SrcZero, SrcOnes, SrcExt}, Masked
//	ABLC:       A, B = the two wordlines
//	AWriteback: Dst (+DstR when DstRow), Src, Masked, Spread
//	shifts:     Masked selects whether the mask latch gates the shift
type Arith struct {
	Kind   ArithKind
	A, B   RowRef
	DstR   RowRef
	Dst    Dst
	Src    Src
	ExtR   ExtRef
	Masked bool
	Spread Spread
}

// EnergyClass buckets arithmetic μops by their array-energy cost (§VI-B):
// reads and writes match a vanilla SRAM access; bit-line compute costs ~20%
// more than a read; the peripheral-only operations (shifts, rotates, latch
// loads) cost far less since neither sense amplifiers nor bit-line
// precharge are involved.
type EnergyClass int

// Energy classes.
const (
	ECNone EnergyClass = iota
	ECRead
	ECWrite
	ECBLC
	ECPeriph
	NumEnergyClasses
)

// EnergyClassOf reports the energy class of one arithmetic μop.
func EnergyClassOf(a Arith) EnergyClass {
	switch a.Kind {
	case ANone:
		return ECNone
	case ARead:
		return ECRead
	case AWrite:
		return ECWrite
	case ABLC:
		return ECBLC
	case AWriteback:
		if a.Dst == DstRow {
			return ECWrite
		}
		return ECPeriph
	default: // shifts, rotates, mask shift
		return ECPeriph
	}
}

// CtrKind discriminates counter μops.
type CtrKind int

// Counter μop kinds.
const (
	CNone CtrKind = iota
	CInit         // init cnt, val
	CDecr         // decr cnt
	CIncr         // incr cnt
)

// Ctr is one counter μop.
type Ctr struct {
	Kind CtrKind
	Cnt  Counter
	Val  int // CInit only
}

// CtlKind discriminates control μops.
type CtlKind int

// Control μop kinds.
const (
	LNone CtlKind = iota
	LBnz          // bnz cnt, target: branch while the counter has not wrapped to zero
	LBnd          // bnd cnt, target: branch if the counter sits on a binary decade
	LJmp          // unconditional branch
	LRet          // conclude the micro-program
)

// Ctl is one control μop. Target is a tuple index within the program.
type Ctl struct {
	Kind   CtlKind
	Cnt    Counter
	Target int
}

// Tuple is one VLIW issue slot: a counter μop, an arithmetic μop and a
// control μop executed together in one cycle (§IV-B).
type Tuple struct {
	Ctr   Ctr
	Arith Arith
	Ctl   Ctl
}

// Program is a micro-program: the ROM image for one macro-operation.
type Program struct {
	Name   string
	Tuples []Tuple
}

// Len reports the static number of tuples.
func (p *Program) Len() int { return len(p.Tuples) }
