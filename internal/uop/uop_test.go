package uop

import "testing"

func TestRowRefResolve(t *testing.T) {
	var iters [NumCounters]int
	iters[Seg0] = 3

	if got := Row(10).Resolve(&iters); got != 10 {
		t.Fatalf("fixed ref = %d", got)
	}
	if got := RowBy(10, Seg0, 2).Resolve(&iters); got != 16 {
		t.Fatalf("indexed ref = %d, want 16", got)
	}
	if got := RowBy(100, Seg0, -1).Resolve(&iters); got != 97 {
		t.Fatalf("negative stride ref = %d, want 97", got)
	}
}

func TestExtRefResolve(t *testing.T) {
	var iters [NumCounters]int
	iters[Bit1] = 5
	if got := Ext(2).Resolve(&iters); got != 2 {
		t.Fatalf("fixed ext = %d", got)
	}
	if got := ExtBy(1, Bit1).Resolve(&iters); got != 6 {
		t.Fatalf("indexed ext = %d", got)
	}
}

func TestStringers(t *testing.T) {
	cases := map[string]string{
		Seg0.String():       "seg_cnt[0]",
		Bit3.String():       "bit_cnt[3]",
		Arr2.String():       "arr_cnt[2]",
		SrcAdd.String():     "add",
		SrcExt.String():     "data_in",
		DstDataOut.String(): "data_out",
		ABLC.String():       "blc",
		AMaskShift.String(): "m_shft",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("stringer: got %q, want %q", got, want)
		}
	}
	// Out-of-range values must not panic.
	_ = Counter(99).String()
	_ = Src(99).String()
	_ = ArithKind(99).String()
}

func TestProgramLen(t *testing.T) {
	p := &Program{Name: "x", Tuples: make([]Tuple, 7)}
	if p.Len() != 7 {
		t.Fatal("Len wrong")
	}
}

func TestRowRefString(t *testing.T) {
	if Row(5).String() != "r5" {
		t.Fatal("fixed row string")
	}
	s := RowBy(5, Seg1, 2).String()
	if s == "" || s == "r5" {
		t.Fatalf("indexed row string = %q", s)
	}
}
