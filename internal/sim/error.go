package sim

import (
	"errors"
	"fmt"

	"repro/internal/mem"
	"repro/internal/uprog"
)

// SimError is a typed, recoverable simulation abort: a fault-reachable
// invariant fired mid-run — a wild memory access from a corrupted index
// register, or the micro-program watchdog tripping on a corrupted sequencer
// — and Run converted the unwind into a per-cell diagnosis instead of
// killing the process. Fault campaigns (internal/faults) classify a Result
// carrying a *SimError as a crash, distinct from a checker-detected
// validation failure.
type SimError struct {
	System    string // system label (Config.Name)
	Kernel    string // kernel name
	Cycle     int64  // scalar-core commit cycle at the abort
	Subsystem string // invariant owner: "mem" or "uprog"
	Err       error  // the underlying typed invariant error
}

func (e *SimError) Error() string {
	return fmt.Sprintf("sim: %s on %s crashed at cycle %d (%s): %v",
		e.Kernel, e.System, e.Cycle, e.Subsystem, e.Err)
}

func (e *SimError) Unwrap() error { return e.Err }

// recoverable maps a panic value to its owning subsystem when it is one of
// the typed invariant errors Run recovers. Anything else — a plain string
// panic, an assertion in the circuit model — is a simulator bug, not a data
// condition, and stays a panic (internal/sweep still converts it into a
// cell error at its own boundary).
func recoverable(p any) (error, string) {
	err, ok := p.(error)
	if !ok {
		return nil, ""
	}
	var accessErr *mem.AccessError
	if errors.As(err, &accessErr) {
		return accessErr, "mem"
	}
	var cycleErr *uprog.CycleLimitError
	if errors.As(err, &cycleErr) {
		return cycleErr, "uprog"
	}
	return nil, ""
}
