package sim

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

// encodeChecker is a Sink asserting binary round-trip of every vector
// instruction in a dynamic trace.
type encodeChecker struct {
	t     *testing.T
	count int
}

func (e *encodeChecker) Emit(ev isa.Event) {
	if ev.Kind != isa.EvVector {
		return
	}
	e.count++
	word, err := isa.Encode(ev.V)
	if err != nil {
		e.t.Fatalf("Encode(%s): %v", isa.Disassemble(ev.V), err)
	}
	got, err := isa.Decode(word)
	if err != nil {
		e.t.Fatalf("Decode(%#x) for %s: %v", word, isa.Disassemble(ev.V), err)
	}
	if got.Op != ev.V.Op {
		e.t.Fatalf("round trip changed op: %v -> %v", ev.V.Op, got.Op)
	}
}

func isaNewBuilderForTest(s isa.Sink) *isa.Builder {
	return isa.NewBuilder(mem.NewFlat(64<<20), 64, s)
}
