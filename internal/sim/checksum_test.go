package sim

import (
	"testing"

	"repro/internal/workloads"
)

// TestScalarVectorMemChecksumsAgree runs every kernel of the Small suite on
// a scalar group (IO, O3) and a vector group (O3+IV, O3+DV, O3+EVE-8) and
// compares the end-of-run flat-memory checksums RunTraced reports. Within a
// group the checksum must be identical — the implementation is the same, so
// any difference is a simulator-state leak into architectural memory. Across
// groups the images must also match for every kernel except sw, whose scalar
// form keeps the anti-diagonal DP buffers host-side instead of in simulated
// memory (workloads.Families pins the same exception for the functional
// harness).
func TestScalarVectorMemChecksumsAgree(t *testing.T) {
	scalarCfgs := []Config{{Kind: SysIO}, {Kind: SysO3}}
	vectorCfgs := []Config{{Kind: SysO3IV}, {Kind: SysO3DV}, {Kind: SysO3EVE, N: 8}}
	for _, k := range workloads.Small() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			sum := func(cfg Config) uint64 {
				r := RunTraced(cfg, k, nil)
				if r.Err != nil {
					t.Fatalf("%s: %v", cfg.Name(), r.Err)
				}
				if r.MemChecksum == 0 {
					t.Fatalf("%s: RunTraced returned zero checksum", cfg.Name())
				}
				return r.MemChecksum
			}
			scalar := sum(scalarCfgs[0])
			for _, cfg := range scalarCfgs[1:] {
				if s := sum(cfg); s != scalar {
					t.Errorf("scalar group diverges: %s %#x vs %s %#x",
						cfg.Name(), s, scalarCfgs[0].Name(), scalar)
				}
			}
			vector := sum(vectorCfgs[0])
			for _, cfg := range vectorCfgs[1:] {
				if s := sum(cfg); s != vector {
					t.Errorf("vector group diverges: %s %#x vs %s %#x",
						cfg.Name(), s, vectorCfgs[0].Name(), vector)
				}
			}
			if memEquiv := k.Name != "sw"; memEquiv != (scalar == vector) {
				t.Errorf("cross-group checksums: scalar %#x vector %#x, want equal=%v",
					scalar, vector, memEquiv)
			}
		})
	}
}
