package sim

import (
	"reflect"
	"testing"

	"repro/internal/eve"
	"repro/internal/mem"
	"repro/internal/workloads"
)

func runOne(t *testing.T, cfg Config, k *workloads.Kernel) Result {
	t.Helper()
	r := Run(cfg, k)
	if r.Err != nil {
		t.Fatalf("%s on %s: output check failed: %v", k.Name, cfg.Name(), r.Err)
	}
	if r.Cycles <= 0 {
		t.Fatalf("%s on %s: nonpositive cycle count", k.Name, cfg.Name())
	}
	return r
}

// TestVVAddSpeedupOrdering checks the qualitative Fig 6 story on the
// streaming kernel: every vector system beats IO, and O3 beats IO.
func TestVVAddSpeedupOrdering(t *testing.T) {
	k := workloads.NewVVAdd(1 << 14)
	io := runOne(t, Config{Kind: SysIO}, k)
	o3 := runOne(t, Config{Kind: SysO3}, k)
	iv := runOne(t, Config{Kind: SysO3IV}, k)
	dv := runOne(t, Config{Kind: SysO3DV}, k)
	e8 := runOne(t, Config{Kind: SysO3EVE, N: 8}, k)

	if o3.Cycles >= io.Cycles {
		t.Errorf("O3 (%d) not faster than IO (%d)", o3.Cycles, io.Cycles)
	}
	if iv.Cycles >= o3.Cycles {
		t.Errorf("O3+IV (%d) not faster than O3 (%d)", iv.Cycles, o3.Cycles)
	}
	if dv.Cycles >= iv.Cycles {
		t.Errorf("O3+DV (%d) not faster than O3+IV (%d)", dv.Cycles, iv.Cycles)
	}
	if e8.Cycles >= iv.Cycles {
		t.Errorf("EVE-8 (%d) not faster than O3+IV (%d)", e8.Cycles, iv.Cycles)
	}
}

// TestMMultComputeBoundShape: on the multiply-bound kernel, EVE-1's
// bit-serial multiply should be its weak point — higher factors win.
func TestMMultComputeBoundShape(t *testing.T) {
	k := workloads.NewMMult(32)
	e1 := runOne(t, Config{Kind: SysO3EVE, N: 1}, k)
	e8 := runOne(t, Config{Kind: SysO3EVE, N: 8}, k)
	if e8.Cycles >= e1.Cycles {
		t.Errorf("EVE-8 (%d) should beat EVE-1 (%d) on mmult", e8.Cycles, e1.Cycles)
	}
}

// TestEVEBreakdownConsistency: breakdown sums to total engine time, busy is
// nonzero, and memory-bound vvadd shows memory stalls.
func TestEVEBreakdownConsistency(t *testing.T) {
	k := workloads.NewVVAdd(1 << 14)
	r := runOne(t, Config{Kind: SysO3EVE, N: 4}, k)
	b := r.Breakdown
	if b.Total() <= 0 {
		t.Fatal("empty breakdown")
	}
	if b[0] == 0 { // Busy
		t.Error("no busy cycles")
	}
}

// TestBackpropMSHRPressure: the giant-stride kernel must show VMU
// cache-induced stalls on EVE (Fig 8's backprop-int shape).
func TestBackpropMSHRPressure(t *testing.T) {
	// The weight matrix must exceed the LLC for the paper's pathology:
	// every giant-stride element request misses, saturating the 32 MSHRs.
	k := workloads.NewBackprop(65536, 16)
	r := runOne(t, Config{Kind: SysO3EVE, N: 1}, k)
	if r.VMUStall <= 0.2 {
		t.Errorf("backprop VMU stall fraction = %.3f; expected substantial MSHR pressure", r.VMUStall)
	}
}

// TestAllSystemsAllKernels is the integration smoke test: everything runs
// and validates everywhere.
func TestAllSystemsAllKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run in -short mode")
	}
	for _, k := range workloads.Small() {
		for _, s := range AllSystems() {
			r := Run(s, k)
			if r.Err != nil {
				t.Errorf("%s on %s: %v", k.Name, s.Name(), r.Err)
			}
			if r.Cycles <= 0 {
				t.Errorf("%s on %s: cycles = %d", k.Name, s.Name(), r.Cycles)
			}
		}
	}
}

func TestSystemNames(t *testing.T) {
	if (Config{Kind: SysO3EVE, N: 8}).Name() != "O3+EVE-8" {
		t.Fatal("bad EVE name")
	}
	if len(AllSystems()) != 10 {
		t.Fatalf("AllSystems = %d entries, want 10", len(AllSystems()))
	}
}

// TestEnergyTracksUtilization pins the §VI-B energy model: sub-balanced
// factors burn proportionally more row accesses (column under-utilization),
// and the balanced-and-beyond regime is comparable, per the paper's claim.
func TestEnergyTracksUtilization(t *testing.T) {
	k := workloads.NewMMult(8, 8, 256)
	e1 := runOne(t, Config{Kind: SysO3EVE, N: 1}, k)
	e2 := runOne(t, Config{Kind: SysO3EVE, N: 2}, k)
	e4 := runOne(t, Config{Kind: SysO3EVE, N: 4}, k)
	e8 := runOne(t, Config{Kind: SysO3EVE, N: 8}, k)
	if e1.EnergyEq <= 0 {
		t.Fatal("no energy recorded")
	}
	r2 := e2.EnergyEq / e1.EnergyEq
	r4 := e4.EnergyEq / e1.EnergyEq
	r8 := e8.EnergyEq / e1.EnergyEq
	if r2 < 0.4 || r2 > 0.62 {
		t.Errorf("EVE-2 energy ratio = %.2f, want ≈0.5 (half the row accesses)", r2)
	}
	if r4 < 0.2 || r4 > 0.35 {
		t.Errorf("EVE-4 energy ratio = %.2f, want ≈0.25", r4)
	}
	// Beyond balance, energy per work is comparable (flat).
	if r8 < r4*0.7 || r8 > r4*1.4 {
		t.Errorf("EVE-8 energy ratio %.2f should be comparable to EVE-4's %.2f", r8, r4)
	}
}

// TestTraceEncodesRoundTrip runs a kernel and checks every emitted vector
// instruction survives binary Encode → Decode — the assembler-level
// integration check over a real dynamic trace.
func TestTraceEncodesRoundTrip(t *testing.T) {
	enc := &encodeChecker{t: t}
	b := isaNewBuilderForTest(enc)
	k := workloads.NewSW(48)
	if err := k.Run(b, true)(); err != nil {
		t.Fatal(err)
	}
	if enc.count == 0 {
		t.Fatal("no vector instructions seen")
	}
}

// TestRunEVECustomConfig covers the ablation entry point.
func TestRunEVECustomConfig(t *testing.T) {
	cfg := eve.DefaultConfig(4)
	cfg.DTUs = 2
	r := RunEVE(cfg, nil, workloads.NewVVAdd(1<<10))
	if r.Err != nil || r.Cycles <= 0 {
		t.Fatalf("RunEVE: %+v", r)
	}
	if r.EnergyEq <= 0 {
		t.Fatal("custom run recorded no energy")
	}
}

// TestMatrixShape covers the matrix helper.
func TestMatrixShape(t *testing.T) {
	systems := []Config{{Kind: SysIO}, {Kind: SysO3EVE, N: 8}}
	res := Matrix(systems, []*workloads.Kernel{workloads.NewVVAdd(1 << 10)})
	if len(res) != 1 || len(res[0]) != 2 {
		t.Fatal("matrix shape wrong")
	}
	if res[0][1].Breakdown.Total() == 0 {
		t.Fatal("EVE cell missing breakdown")
	}
}

// TestMemParamsTableIIIEquivalent: a Config whose MemParams spell out the
// Table III values explicitly must simulate bit-identically to the nil-Mem
// default — the override path adds parameterization, never behaviour.
func TestMemParamsTableIIIEquivalent(t *testing.T) {
	k := workloads.NewBackprop(128, 32)
	for _, cfg := range []Config{{Kind: SysO3}, {Kind: SysO3EVE, N: 8}} {
		want := Run(cfg, k)
		cfg.Mem = &MemParams{
			L1D:               mem.L1DConfig,
			L2:                mem.L2Config,
			LLC:               mem.LLCConfig,
			DRAMLatency:       mem.DefaultDRAM().Latency,
			DRAMCyclesPerLine: mem.DefaultDRAM().CyclesPerLine,
		}
		got := Run(cfg, k)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: explicit Table III MemParams diverge from defaults:\n got  %+v\n want %+v",
				cfg.Name(), got, want)
		}
	}
}

// TestMemParamsMoveResults: shrinking the cache hierarchy and slowing DRAM
// must make a memory-bound kernel measurably slower while the checker still
// validates — the exploration axes really reach the timing model. Jacobi's
// 256 KiB grid re-swept four times fits the Table III L2 but thrashes a
// 32 KiB L2 / 64 KiB LLC.
func TestMemParamsMoveResults(t *testing.T) {
	k := workloads.NewJacobi2D(256, 4)
	base := Run(Config{Kind: SysO3}, k)
	if base.Err != nil {
		t.Fatalf("baseline: %v", base.Err)
	}
	tinyL2 := mem.L2Config
	tinyL2.SizeBytes = 32 << 10
	tinyLLC := mem.LLCConfig
	tinyLLC.SizeBytes = 64 << 10
	slow := Run(Config{Kind: SysO3, Mem: &MemParams{L2: tinyL2, LLC: tinyLLC, DRAMLatency: 200}}, k)
	if slow.Err != nil {
		t.Fatalf("overridden hierarchy failed validation: %v", slow.Err)
	}
	if slow.Cycles <= base.Cycles {
		t.Errorf("64 KiB LLC + 200-cycle DRAM should be slower: %d vs %d cycles", slow.Cycles, base.Cycles)
	}
	if slow.LLC.Misses <= base.LLC.Misses {
		t.Errorf("smaller LLC should miss more: %d vs %d", slow.LLC.Misses, base.LLC.Misses)
	}
}

// TestMemParamsEVEWaySplit: the L2 way-split must follow the overridden
// associativity (the SpawnEVE fix), so an EVE system with a 4-way L2 still
// validates and partitions its own geometry rather than Table III's.
func TestMemParamsEVEWaySplit(t *testing.T) {
	l2 := mem.L2Config
	l2.Ways = 4
	cfg := Config{Kind: SysO3EVE, N: 8, Mem: &MemParams{L2: l2}}
	r := Run(cfg, workloads.NewVVAdd(1<<10))
	if r.Err != nil || r.Cycles <= 0 {
		t.Fatalf("EVE on a 4-way L2: %+v", r)
	}
	if r.Breakdown.Total() == 0 {
		t.Fatal("EVE cell missing breakdown under overridden geometry")
	}
}
