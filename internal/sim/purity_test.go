package sim

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/workloads"
)

// TestConcurrentRunsArePure enforces Run's purity contract directly: many
// goroutines simulating the same (system, kernel) cell at once must all
// produce the serial answer, with no cross-talk through package-level
// state. Under -race this audits the full stack — core model, caches,
// EVE engine and its micro-program cost cache, workload input generators —
// for hidden shared mutable state.
func TestConcurrentRunsArePure(t *testing.T) {
	kernels := []*workloads.Kernel{
		workloads.NewVVAdd(512),
		workloads.NewKMeans(128, 8, 3),
	}
	configs := []Config{
		{Kind: SysIO},
		{Kind: SysO3IV},
		{Kind: SysO3DV},
		{Kind: SysO3EVE, N: 8},
	}
	const replicas = 4
	for _, k := range kernels {
		for _, cfg := range configs {
			want := Run(cfg, k)
			if want.Err != nil {
				t.Fatalf("%s on %s: %v", k.Name, cfg.Name(), want.Err)
			}
			got := make([]Result, replicas)
			var wg sync.WaitGroup
			for i := 0; i < replicas; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					got[i] = Run(cfg, k)
				}(i)
			}
			wg.Wait()
			for i, r := range got {
				if !reflect.DeepEqual(r, want) {
					t.Errorf("%s on %s: concurrent replica %d diverges:\n got  %+v\n want %+v",
						k.Name, cfg.Name(), i, r, want)
				}
			}
		}
	}
}
