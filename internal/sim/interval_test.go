package sim

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/probe"
	"repro/internal/workloads"
)

// intervalKernels returns the identity-matrix kernels: the paper's vvadd plus
// spmv, whose indexed loads and per-row reductions stress the memory system's
// temporal state (MSHR churn, gather traffic) far harder than a streaming
// kernel.
func intervalKernels(t *testing.T) []*workloads.Kernel {
	t.Helper()
	sp, err := workloads.ByName(workloads.Small(), "spmv")
	if err != nil {
		t.Fatal(err)
	}
	return []*workloads.Kernel{workloads.NewVVAdd(1 << 10), sp}
}

// TestIntervalRunsMatchPlain enforces the sampler's core guarantee on every
// simulated system × {vvadd, spmv}: interval sampling observes, it never
// perturbs. Cycles, breakdown, stall fractions, LLC stats, the final registry
// snapshot and the memory checksum must all be byte-identical with sampling
// on, and the recorded windows must tile the run exactly.
func TestIntervalRunsMatchPlain(t *testing.T) {
	for _, k := range intervalKernels(t) {
		for _, cfg := range AllSystems() {
			cfg, k := cfg, k
			t.Run(fmt.Sprintf("%s/%s", cfg.Name(), k.Name), func(t *testing.T) {
				t.Parallel()
				plain := RunTraced(cfg, k, nil)
				icfg := cfg
				icfg.Interval = 512
				sampled := RunTraced(icfg, k, nil)

				if sampled.Err != nil {
					t.Fatalf("sampled run failed validation: %v", sampled.Err)
				}
				if sampled.Cycles != plain.Cycles {
					t.Errorf("sampled cycles = %d, plain %d", sampled.Cycles, plain.Cycles)
				}
				if sampled.Breakdown != plain.Breakdown {
					t.Errorf("sampled breakdown = %v, plain %v", sampled.Breakdown, plain.Breakdown)
				}
				if sampled.VMUStall != plain.VMUStall {
					t.Errorf("sampled vmu stall = %v, plain %v", sampled.VMUStall, plain.VMUStall)
				}
				if sampled.LLC != plain.LLC {
					t.Errorf("sampled llc = %+v, plain %+v", sampled.LLC, plain.LLC)
				}
				if sampled.Mix != plain.Mix {
					t.Errorf("sampled mix = %+v, plain %+v", sampled.Mix, plain.Mix)
				}
				if sampled.MemChecksum != plain.MemChecksum {
					t.Errorf("sampled checksum %#x != plain %#x", sampled.MemChecksum, plain.MemChecksum)
				}
				if !reflect.DeepEqual(sampled.Stats, plain.Stats) {
					t.Error("sampled final snapshot differs from plain")
				}
				if plain.Intervals != nil {
					t.Error("plain run (Interval=0) carries an interval series")
				}

				series := sampled.Intervals
				if series == nil || len(series.Samples) == 0 {
					t.Fatal("sampled run has no interval series")
				}
				if series.Window != 512 {
					t.Errorf("series window = %d, want 512", series.Window)
				}
				// Windows tile the run: first start 0, adjacent edges shared,
				// last end at the final cycle.
				prevEnd := int64(0)
				for i, sm := range series.Samples {
					if sm.Start != prevEnd {
						t.Errorf("sample %d starts at %d, want %d", i, sm.Start, prevEnd)
					}
					if sm.End < sm.Start {
						t.Errorf("sample %d spans [%d, %d] backwards", i, sm.Start, sm.End)
					}
					prevEnd = sm.End
				}
				if prevEnd != sampled.Cycles {
					t.Errorf("last window ends at %d, want the run's %d cycles", prevEnd, sampled.Cycles)
				}

				// Reconciliation per path: summing any counter's window deltas
				// reproduces its end-of-run snapshot value, and no counter path
				// escapes the series.
				sums := series.SumCounters()
				counters := 0
				for _, st := range sampled.Stats {
					if st.Kind != probe.KindCounter {
						continue
					}
					counters++
					if got := sums[st.Name]; got != st.Int {
						t.Errorf("window sum of %s = %d, snapshot %d", st.Name, got, st.Int)
					}
				}
				if len(sums) != counters {
					t.Errorf("series sums %d counter paths, snapshot has %d", len(sums), counters)
				}
			})
		}
	}
}

// TestIntervalWindowSizesAgree repeats the identity check on the EVE corner
// design points (n=4 transposed, n=32 direct) across very different window
// sizes: the window is an observation parameter, so every choice must
// reproduce the same simulated result and the same reconciled totals.
func TestIntervalWindowSizesAgree(t *testing.T) {
	for _, k := range intervalKernels(t) {
		for _, n := range []int{4, 32} {
			k, n := k, n
			t.Run(fmt.Sprintf("EVE-%d/%s", n, k.Name), func(t *testing.T) {
				t.Parallel()
				base := Run(Config{Kind: SysO3EVE, N: n}, k)
				var prevSums map[string]int64
				for _, window := range []int64{64, 4096} {
					res := Run(Config{Kind: SysO3EVE, N: n, Interval: window}, k)
					if res.Err != nil {
						t.Fatalf("window %d failed validation: %v", window, res.Err)
					}
					if res.Cycles != base.Cycles || res.Breakdown != base.Breakdown {
						t.Errorf("window %d: (cycles %d, breakdown %v) != unsampled (%d, %v)",
							window, res.Cycles, res.Breakdown, base.Cycles, base.Breakdown)
					}
					if !reflect.DeepEqual(res.Stats, base.Stats) {
						t.Errorf("window %d: final snapshot differs from unsampled", window)
					}
					sums := res.Intervals.SumCounters()
					if prevSums != nil && !reflect.DeepEqual(sums, prevSums) {
						t.Errorf("window %d reconciles to different totals than the previous window", window)
					}
					prevSums = sums
				}
			})
		}
	}
}

// TestIntervalReconfigTimeline pins the acceptance criterion: an EVE-8 run
// records the borrow and the return on the timeline with correct way counts —
// the engine borrows half of the 8 L2 ways at spawn and returns the same four
// at teardown.
func TestIntervalReconfigTimeline(t *testing.T) {
	res := Run(Config{Kind: SysO3EVE, N: 8, Interval: 2000}, workloads.NewVVAdd(1<<10))
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	series := res.Intervals
	if series == nil {
		t.Fatal("no interval series")
	}
	var borrow, ret, spawn, teardown int
	for _, ev := range series.Reconfigs {
		if ev.Comp != "eve" {
			t.Errorf("reconfig event on component %q, want eve", ev.Comp)
		}
		switch ev.Event {
		case "spawn":
			spawn++
			// Spawning at cycle 0 partitions a cold L2: no lines to
			// invalidate or write back, so the paper's linear cost is 0 here.
			if ev.Cost != 0 {
				t.Errorf("spawn event carries cost %d, want 0 on a cold cache", ev.Cost)
			}
		case "borrow":
			borrow++
			if ev.Ways != 4 || ev.Owned != 4 {
				t.Errorf("borrow = %+v, want ways 4 owned 4 (half of 8 L2 ways)", ev)
			}
			if ev.Cycle != 0 {
				t.Errorf("borrow at cycle %d, want 0 (spawned before the kernel)", ev.Cycle)
			}
		case "return":
			ret++
			if ev.Ways != 4 || ev.Owned != 0 {
				t.Errorf("return = %+v, want ways 4 owned 0", ev)
			}
			if ev.Cycle != res.Cycles {
				t.Errorf("return at cycle %d, want the final cycle %d", ev.Cycle, res.Cycles)
			}
		case "teardown":
			teardown++
		default:
			t.Errorf("unknown reconfig event %q", ev.Event)
		}
	}
	if spawn != 1 || borrow != 1 || ret != 1 || teardown != 1 {
		t.Errorf("timeline has spawn=%d borrow=%d return=%d teardown=%d, want one of each",
			spawn, borrow, ret, teardown)
	}
}
