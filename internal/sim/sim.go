// Package sim assembles the simulated systems of Table III — IO, O3, O3+IV,
// O3+DV and O3+EVE-n — and runs benchmark kernels on them: the workload's
// dynamic trace streams from the ISA builder into the scalar core model and
// the attached vector engine, coupled the way the paper couples them
// (commit-time dispatch, queue back-pressure, blocking scalar moves and
// fences), over a shared timed memory hierarchy.
package sim

import (
	"fmt"

	"repro/internal/analytic"
	"repro/internal/cpu"
	"repro/internal/eve"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/probe"
	"repro/internal/vengine"
	"repro/internal/workloads"
)

// Kind enumerates the simulated systems.
type Kind int

// Simulated systems (Table III).
const (
	SysIO Kind = iota
	SysO3
	SysO3IV
	SysO3DV
	SysO3EVE
)

// Config selects a system; N is the parallelization factor for SysO3EVE.
type Config struct {
	Kind Kind
	N    int

	// MaxUProgCycles is the per-micro-program watchdog budget for EVE
	// systems; zero selects uprog.DefaultMaxCycles. A tripped watchdog
	// panics with a *uprog.CycleLimitError, which Run recovers into a
	// *SimError. It does not contribute to Name(): two configs differing
	// only in the watchdog simulate the same system.
	MaxUProgCycles int

	// Interval, when positive, samples the stats registry every Interval
	// simulated cycles into Result.Intervals — per-window counter deltas,
	// gauges, and the EVE reconfiguration timeline. Sampling observes, it
	// never perturbs: every simulated byte (cycles, breakdown, stats,
	// memory image) is identical with Interval on or off, which the
	// interval-identity tests enforce. Zero (the default) keeps the fast
	// path: one pointer branch per instruction boundary. Like
	// MaxUProgCycles it does not contribute to Name().
	Interval int64

	// Mem optionally overrides the Table III memory system — cache
	// geometries, MSHR pools, bank counts, DRAM timings. Nil simulates the
	// paper's hierarchy. Design-space exploration (internal/campaign) sweeps
	// these axes per cell; every parameter still flows through a Config
	// struct, so the paramlit provenance discipline holds. Mem is read-only
	// after construction and may be shared across concurrent Run calls; it
	// does not contribute to Name() — campaign cells carry their own
	// content-hashed identity.
	Mem *MemParams
}

// MemParams overrides pieces of the Table III memory system. A zero-value
// cache level inherits that level's Table III configuration (the override's
// Name is likewise forced to the canonical level name so stats paths stay
// stable); zero DRAM fields inherit the DDR4-2400 timings.
type MemParams struct {
	L1D, L2, LLC mem.CacheConfig
	// DRAMLatency is the closed-page access latency in core cycles.
	DRAMLatency int64
	// DRAMCyclesPerLine is the bus occupancy of one 64-byte line transfer.
	DRAMCyclesPerLine float64
}

// hierarchy builds the memory system the config describes: Table III by
// default, with any MemParams overrides applied per level.
func (c Config) hierarchy() *mem.Hierarchy {
	if c.Mem == nil {
		return mem.NewHierarchy()
	}
	pick := func(over, def mem.CacheConfig) mem.CacheConfig {
		if over == (mem.CacheConfig{}) {
			return def
		}
		over.Name = def.Name
		return over
	}
	h := mem.NewHierarchyCfg(
		pick(c.Mem.L1D, mem.L1DConfig),
		pick(c.Mem.L2, mem.L2Config),
		pick(c.Mem.LLC, mem.LLCConfig))
	if c.Mem.DRAMLatency > 0 {
		h.DRAM.Latency = c.Mem.DRAMLatency
	}
	if c.Mem.DRAMCyclesPerLine > 0 {
		h.DRAM.CyclesPerLine = c.Mem.DRAMCyclesPerLine
	}
	return h
}

// Name renders the paper's system label.
func (c Config) Name() string {
	switch c.Kind {
	case SysIO:
		return "IO"
	case SysO3:
		return "O3"
	case SysO3IV:
		return "O3+IV"
	case SysO3DV:
		return "O3+DV"
	case SysO3EVE:
		return fmt.Sprintf("O3+EVE-%d", c.N)
	}
	return "?"
}

// AllSystems lists the full Table III / Fig 6 sweep.
func AllSystems() []Config {
	out := []Config{{Kind: SysIO}, {Kind: SysO3}, {Kind: SysO3IV}, {Kind: SysO3DV}}
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		out = append(out, Config{Kind: SysO3EVE, N: n})
	}
	return out
}

// Result is one (system, kernel) simulation outcome.
type Result struct {
	System    string
	Kernel    string
	Cycles    int64
	Mix       isa.Mix
	Breakdown eve.Breakdown // zero except for EVE systems
	VMUStall  float64       // Fig 8 metric, EVE only
	SpawnCost int64         // EVE only
	EnergyEq  float64       // EVE array energy in read-equivalents (§VI-B)
	LLC       mem.CacheStats
	// Stats is the hierarchical end-of-run counter snapshot: every component
	// of the simulated system under its dotted path (core.insts,
	// l2.mshr.stall_cycles, eve.breakdown.busy, ...). Pulled once after the
	// run completes, so populating it costs nothing on the simulated path.
	// Empty when the run aborted with a recovered SimError.
	Stats probe.Stats
	// Intervals is the cycle-windowed time series when Config.Interval was
	// set: per-window counter deltas, end-of-window gauges, and the EVE
	// reconfiguration timeline. Nil when sampling was off or the run
	// aborted. Window sums reconcile exactly with Stats.
	Intervals *probe.Series
	// MemChecksum is the FNV-1a hash of the flat backing store after the run
	// — the silent-data-corruption signal. Computed by RunTraced and
	// RunDatapath (zero on a crash); plain Run leaves it zero to keep the
	// sweep fast path free of the O(memory) hash.
	MemChecksum uint64
	Err         error // output validation failure, if any
}

// sink couples the trace to a core and an optional vector engine.
type sink struct {
	core    *cpu.Core
	engine  vengine.Engine
	sampler *probe.Sampler // interval sampling; nil = the fast path
}

// Emit implements isa.Sink.
func (s *sink) Emit(ev isa.Event) {
	switch ev.Kind {
	case isa.EvScalar:
		s.core.Ops(ev.N)
	case isa.EvScalarMul:
		s.core.Muls(ev.N)
	case isa.EvLoad:
		s.core.Load(ev.Addr)
	case isa.EvStore:
		s.core.Store(ev.Addr)
	case isa.EvVector:
		if s.engine == nil {
			panic("sim: vector instruction on a scalar-only system")
		}
		// Vector instructions dispatch at commit (§V-A); the VCU queue or a
		// blocking reply (vmv.x.s, vmfence) may stall the core.
		if block := s.engine.Handle(ev.V, s.core.Now()); block > 0 {
			s.core.AdvanceTo(block)
		}
	}
	// Instruction boundaries are the interval clock: the simulation is
	// event-driven, so this is the natural deterministic place to notice a
	// window edge passing. Reading the clock perturbs nothing.
	if s.sampler != nil {
		s.sampler.Tick(s.core.Now())
	}
}

// Run simulates one kernel on one system.
//
// Purity contract: Run builds every piece of simulator state it touches —
// memory hierarchy, flat backing store, core model, vector engine and its
// micro-program cost cache, workload inputs — per call, reads only
// immutable package-level tables (Table III configs, encoding maps), and
// is fully deterministic in (cfg, k). Concurrent Run calls are therefore
// independent and race-free; internal/sweep relies on this to parallelize
// the grid, and TestConcurrentRunsArePure plus the determinism test in
// internal/sweep enforce it under the race detector.
func Run(cfg Config, k *workloads.Kernel) Result {
	return run(cfg, k, runOpts{})
}

// RunTraced is Run with observability attached: every component's trace
// events are delivered to tr (nil is allowed and traces nothing), and the
// result additionally carries the flat-memory checksum. Apart from the
// checksum field, a traced run must produce a Result identical to Run's —
// probes observe, they never perturb — which the determinism regression
// test enforces across all systems.
func RunTraced(cfg Config, k *workloads.Kernel, tr probe.Tracer) Result {
	return run(cfg, k, runOpts{tracer: tr, checksum: true})
}

// RunDatapath simulates one kernel on one system with the vector unit's
// execution re-routed onto an alternate substrate: newDP is called with the
// system's hardware vector length and the returned datapath is attached to
// the ISA builder (isa.Builder.SetDatapath). The second return value is the
// final flat-memory checksum when the run completed (zero on a crash) —
// the silent-data-corruption signal fault campaigns compare against a
// fault-free baseline. A nil newDP behaves exactly like Run.
func RunDatapath(cfg Config, k *workloads.Kernel, newDP func(hwvl int) isa.Datapath) (Result, uint64) {
	res := run(cfg, k, runOpts{newDP: newDP, checksum: newDP != nil})
	return res, res.MemChecksum
}

// runOpts bundles the optional per-run attachments.
type runOpts struct {
	newDP    func(hwvl int) isa.Datapath
	tracer   probe.Tracer // nil = no event emission (the fast path)
	checksum bool         // hash the flat store after the run
}

func run(cfg Config, k *workloads.Kernel, opts runOpts) (res Result) {
	h := cfg.hierarchy()
	flat := mem.NewFlat(64 << 20)

	coreCfg := cpu.O3Config
	if cfg.Kind == SysIO {
		coreCfg = cpu.IOConfig
	}
	if cfg.Kind == SysO3EVE {
		// EVE-16/32 stretch the chip's SRAM-limited cycle time, slowing the
		// scalar core as well (§VII-B).
		coreCfg.ClockScale = analytic.ClockPenalty(cfg.N)
	}
	core := cpu.New(coreCfg, h)

	res = Result{System: cfg.Name(), Kernel: k.Name}

	// Fault-reachable invariants — a wild memory access, the micro-program
	// watchdog — panic with typed errors; convert those into a recoverable
	// per-cell SimError carrying the abort cycle. Anything else is a
	// simulator bug and keeps panicking.
	defer func() {
		if p := recover(); p != nil {
			err, subsystem := recoverable(p)
			if err == nil {
				panic(p)
			}
			res.Err = &SimError{
				System:    res.System,
				Kernel:    res.Kernel,
				Cycle:     core.Now(),
				Subsystem: subsystem,
				Err:       err,
			}
			res.MemChecksum = 0
			res.Stats = nil
			res.Intervals = nil
		}
	}()

	// The stats registry pulls counters once after the run; registration is
	// unconditional because it costs nothing on the simulated path. The
	// tracer, by contrast, is only wired when present: an unset probe.Emitter
	// is the zero-overhead fast path.
	reg := probe.NewRegistry()
	reg.Register("core", core)
	h.RegisterStats(reg)
	if opts.tracer != nil {
		core.SetTracer(opts.tracer)
		h.SetTracer(opts.tracer)
	}

	// The interval sampler is per-run like the registry it reads; nil keeps
	// the instruction-boundary tick a single branch.
	var sampler *probe.Sampler
	if cfg.Interval > 0 {
		sampler = probe.NewSampler(reg, cfg.Interval)
	}

	var engine vengine.Engine
	var eveEng *eve.Engine
	vector := true
	hwvl := 1

	switch cfg.Kind {
	case SysIO, SysO3:
		vector = false
	case SysO3IV:
		iv := vengine.NewIV(core)
		reg.Register("iv", iv)
		engine = iv
		hwvl = vengine.IVHWVL
	case SysO3DV:
		dv := vengine.NewDV(vengine.DefaultDVConfig(), h.L2)
		reg.Register("dv", dv)
		if opts.tracer != nil {
			dv.SetTracer(opts.tracer)
		}
		engine = dv
		hwvl = dv.HWVL()
	case SysO3EVE:
		ecfg := eve.DefaultConfig(cfg.N)
		ecfg.MaxUProgCycles = cfg.MaxUProgCycles
		eveEng = eve.New(ecfg, h.LLC)
		reg.Register("eve", eveEng)
		if opts.tracer != nil {
			eveEng.SetTracer(opts.tracer)
		}
		eveEng.SetSampler(sampler)
		spawnEVE(eveEng, h)
		engine = eveEng
		hwvl = eveEng.HWVL()
	}

	b := isa.NewBuilder(flat, max(hwvl, 1), &sink{core: core, engine: engine, sampler: sampler})
	if opts.newDP != nil {
		b.SetDatapath(opts.newDP(max(hwvl, 1)))
	}
	check := k.Run(b, vector)
	res.Err = check()
	res.Mix = b.Mix()

	cycles := core.Now()
	if engine != nil {
		if d := engine.Drain(); d > cycles {
			cycles = d
		}
	}
	res.Cycles = cycles
	if eveEng != nil {
		res.Breakdown = eveEng.Breakdown()
		res.VMUStall = eveEng.VMUIssueStallFraction()
		res.SpawnCost = eveEng.SpawnCost()
		res.EnergyEq = eveEng.EnergyReadEq()
		// The engine's ephemeral lifetime ends here: it returns its borrowed
		// L2 ways to the partition. The restore itself changes no counters
		// (returned ways come back invalid, §V-E), so the teardown runs
		// unconditionally and the simulated bytes stay identical whether or
		// not anyone watches the timeline.
		h.TeardownEVE()
		eveEng.Teardown(cycles)
	}
	res.LLC = h.LLC.Stats()
	if sampler != nil {
		res.Intervals = sampler.Finish(cycles)
	}
	res.Stats = reg.Snapshot()
	if opts.checksum {
		res.MemChecksum = flat.Checksum()
	}
	return res
}

// spawnEVE runs the engine's spawn reconfiguration against the hierarchy:
// the L2 releases half its ways (charging the invalidation cost) and the
// engine takes ownership of them.
func spawnEVE(e *eve.Engine, h *mem.Hierarchy) {
	cost := h.SpawnEVE()
	e.Spawn(cost, 0, h.L2.Ways()-h.L2.ActiveWays())
}

// RunEVE simulates a kernel on O3+EVE with a custom engine configuration
// and memory hierarchy — the entry point for ablation studies (DTU count,
// array count, LLC MSHRs). Pass nil for the Table III hierarchy.
func RunEVE(ecfg eve.Config, h *mem.Hierarchy, k *workloads.Kernel) Result {
	if h == nil {
		h = mem.NewHierarchy()
	}
	flat := mem.NewFlat(64 << 20)
	coreCfg := cpu.O3Config
	coreCfg.ClockScale = analytic.ClockPenalty(ecfg.N)
	core := cpu.New(coreCfg, h)
	eveEng := eve.New(ecfg, h.LLC)
	reg := probe.NewRegistry()
	reg.Register("core", core)
	h.RegisterStats(reg)
	reg.Register("eve", eveEng)
	spawnEVE(eveEng, h)

	b := isa.NewBuilder(flat, eveEng.HWVL(), &sink{core: core, engine: eveEng})
	check := k.Run(b, true)
	res := Result{System: fmt.Sprintf("O3+EVE-%d(custom)", ecfg.N), Kernel: k.Name}
	res.Err = check()
	res.Mix = b.Mix()
	cycles := core.Now()
	if d := eveEng.Drain(); d > cycles {
		cycles = d
	}
	res.Cycles = cycles
	res.Breakdown = eveEng.Breakdown()
	res.VMUStall = eveEng.VMUIssueStallFraction()
	res.SpawnCost = eveEng.SpawnCost()
	res.EnergyEq = eveEng.EnergyReadEq()
	h.TeardownEVE()
	eveEng.Teardown(cycles)
	res.LLC = h.LLC.Stats()
	res.Stats = reg.Snapshot()
	return res
}

// Matrix runs every kernel on every system, returning results indexed
// [kernel][system]. It is the serial reference implementation of the
// sweep: internal/sweep.Matrix produces an identical matrix on a worker
// pool, and the determinism regression test compares the two cell by cell.
func Matrix(systems []Config, kernels []*workloads.Kernel) [][]Result {
	out := make([][]Result, len(kernels))
	for i, k := range kernels {
		out[i] = make([]Result, len(systems))
		for j, s := range systems {
			out[i][j] = Run(s, k)
		}
	}
	return out
}
