package sim

import (
	"reflect"
	"testing"

	"repro/internal/eve"
	"repro/internal/probe"
	"repro/internal/workloads"
)

// TestTracedRunsMatchUntraced enforces the probe layer's core guarantee:
// probes observe, they never perturb. For every simulated system, a run with
// a tracer attached (and one with RunTraced's nil tracer) must produce the
// identical timing result as plain Run.
func TestTracedRunsMatchUntraced(t *testing.T) {
	k := workloads.NewVVAdd(1 << 10)
	for _, cfg := range AllSystems() {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			t.Parallel()
			plain := Run(cfg, k)
			nilTraced := RunTraced(cfg, k, nil)
			col := &probe.Collect{}
			traced := RunTraced(cfg, k, col)

			for _, tc := range []struct {
				label string
				got   Result
			}{{"RunTraced(nil)", nilTraced}, {"RunTraced(collect)", traced}} {
				if tc.got.Err != nil {
					t.Fatalf("%s failed validation: %v", tc.label, tc.got.Err)
				}
				if tc.got.Cycles != plain.Cycles {
					t.Errorf("%s cycles = %d, untraced %d", tc.label, tc.got.Cycles, plain.Cycles)
				}
				if tc.got.Breakdown != plain.Breakdown {
					t.Errorf("%s breakdown = %v, untraced %v", tc.label, tc.got.Breakdown, plain.Breakdown)
				}
				if tc.got.VMUStall != plain.VMUStall {
					t.Errorf("%s vmu stall = %v, untraced %v", tc.label, tc.got.VMUStall, plain.VMUStall)
				}
				if tc.got.LLC != plain.LLC {
					t.Errorf("%s llc stats = %+v, untraced %+v", tc.label, tc.got.LLC, plain.LLC)
				}
				if tc.got.Mix != plain.Mix {
					t.Errorf("%s mix = %+v, untraced %+v", tc.label, tc.got.Mix, plain.Mix)
				}
				if !reflect.DeepEqual(tc.got.Stats, plain.Stats) {
					t.Errorf("%s stats snapshot differs from untraced", tc.label)
				}
			}
			if nilTraced.MemChecksum == 0 {
				t.Error("RunTraced(nil) left the memory checksum zero")
			}
			if traced.MemChecksum != nilTraced.MemChecksum {
				t.Errorf("traced checksum %#x != nil-traced %#x", traced.MemChecksum, nilTraced.MemChecksum)
			}
			if plain.MemChecksum != 0 {
				t.Error("plain Run computed a checksum; it should skip the hash")
			}
			if len(traced.Stats) == 0 {
				t.Fatal("traced run has an empty stats snapshot")
			}
			if v, ok := traced.Stats.Int("core.insts"); !ok || v <= 0 {
				t.Errorf("core.insts = %d, %v; want positive", v, ok)
			}
			if cfg.Kind == SysO3EVE {
				if len(col.Events) == 0 {
					t.Fatal("EVE traced run collected no events")
				}
				var commits int
				for _, ev := range col.Events {
					if ev.Comp == "eve.vsu" && ev.Kind == probe.KInstr {
						commits++
					}
				}
				if commits == 0 {
					t.Error("no eve.vsu instruction-commit events collected")
				}
				if v, ok := traced.Stats.Int("eve.instrs"); !ok || v != int64(commits) {
					t.Errorf("eve.instrs = %d, %v; want %d (one per collected commit)", v, ok, commits)
				}
			}
		})
	}
}

// TestTracedDeterminismAcrossKernels repeats the traced-vs-untraced check on
// a control-heavy kernel for the two EVE corner design points (n=4 transposed
// layout, n=32 direct layout) — the ISSUE's named regression matrix.
func TestTracedDeterminismAcrossKernels(t *testing.T) {
	k, err := workloads.ByName(workloads.Small(), "pathfinder")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{4, 32} {
		cfg := Config{Kind: SysO3EVE, N: n}
		t.Run(cfg.Name(), func(t *testing.T) {
			plain := Run(cfg, k)
			traced := RunTraced(cfg, k, &probe.Collect{})
			if traced.Err != nil {
				t.Fatalf("traced run failed validation: %v", traced.Err)
			}
			if traced.Cycles != plain.Cycles || traced.Breakdown != plain.Breakdown {
				t.Errorf("traced (cycles %d, breakdown %v) != untraced (cycles %d, breakdown %v)",
					traced.Cycles, traced.Breakdown, plain.Cycles, plain.Breakdown)
			}
			again := RunTraced(cfg, k, &probe.Collect{})
			if again.MemChecksum != traced.MemChecksum {
				t.Errorf("checksum not reproducible: %#x vs %#x", again.MemChecksum, traced.MemChecksum)
			}
		})
	}
}

// TestRunEVEHasStats covers the ablation entry point's registry wiring.
func TestRunEVEHasStats(t *testing.T) {
	res := RunEVE(eve.DefaultConfig(8), nil, workloads.NewVVAdd(1<<10))
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if v, ok := res.Stats.Int("eve.instrs"); !ok || v <= 0 {
		t.Errorf("eve.instrs = %d, %v; want positive", v, ok)
	}
	if _, ok := res.Stats.Get("llc.accesses"); !ok {
		t.Error("llc.accesses missing from RunEVE stats")
	}
}
