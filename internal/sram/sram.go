// Package sram models an EVE SRAM array: a 6T-SRAM storage core whose
// differential sense amplifiers can be reconfigured into single-ended mode so
// that activating two wordlines simultaneously computes bit-wise logical
// operations on the bitlines (bit-line compute, after Jeloka et al.). A
// bit-line compute yields AND, NAND, OR and NOR of the two selected wordlines
// in one array access; the EVE peripheral circuit stacks (internal/circuits)
// consume those outputs.
//
// The physical EVE SRAM in the paper is two banked 256×128 sub-arrays
// presenting a 256×256 logical array. The functional model here is a single
// logical array of configurable geometry; the banked physical split only
// affects area (internal/analytic), not logical behaviour.
package sram

import (
	"fmt"

	"repro/internal/bitmat"
)

// Standard EVE SRAM geometry from the paper (§VI): a sub-array is 256×128,
// and an EVE SRAM is two banked sub-arrays, logically 256 rows × 256 columns.
const (
	SubArrayRows = 256
	SubArrayCols = 128
	ArrayRows    = 256
	ArrayCols    = 2 * SubArrayCols
)

// AccessStats counts array-level operations, the inputs to the energy model
// (§VI: blc costs ~20% more than a read; reads and writes match vanilla SRAM).
type AccessStats struct {
	Reads  uint64
	Writes uint64
	BLCs   uint64
}

// Array is one EVE SRAM logical array: a bit matrix plus the reconfigurable
// sense-amplifier outputs of the most recent bit-line compute.
type Array struct {
	mat *bitmat.Matrix

	// Sense-amplifier outputs, valid after BitLineCompute until the next
	// array operation that drives the bitlines.
	and, nand, or, nor bitmat.Row
	senseValid         bool

	stats AccessStats

	// Fault-injection state (internal/faults). seq counts modeled accesses
	// (reads, writes, bit-line computes) since construction; it is never
	// reset, so an armed fault fires at a reproducible point of a run.
	faulty   bool
	seq      uint64
	flips    []bitFlip
	stuck0   bitmat.Row // sense columns stuck at 0
	stuck1   bitmat.Row // sense columns stuck at 1
	stkAlloc bool       // stuck rows allocated
	anyStk   bool       // any stuck column armed
}

// bitFlip is an armed single-event upset: the cell at (row, col) inverts
// immediately before access number seq.
type bitFlip struct {
	row, col int
	seq      uint64
}

// New returns a zeroed array with the given geometry.
func New(rows, cols int) *Array {
	return &Array{
		mat:  bitmat.NewMatrix(rows, cols),
		and:  bitmat.NewRow(cols),
		nand: bitmat.NewRow(cols),
		or:   bitmat.NewRow(cols),
		nor:  bitmat.NewRow(cols),
	}
}

// NewStandard returns an array with the paper's 256×256 logical geometry.
func NewStandard() *Array { return New(ArrayRows, ArrayCols) }

// Rows reports the number of wordlines.
func (a *Array) Rows() int { return a.mat.Rows() }

// Cols reports the number of bitlines.
func (a *Array) Cols() int { return a.mat.Cols() }

// Stats returns a snapshot of the access counters.
func (a *Array) Stats() AccessStats { return a.stats }

// ResetStats zeroes the access counters.
func (a *Array) ResetStats() { a.stats = AccessStats{} }

// ArmBitFlip arms a transient single-event upset: immediately before the
// array's seq-th modeled access (0-based; reads, writes and bit-line computes
// all count), the stored bit at (row, col) inverts. The corruption is a state
// change in the cell and persists until the row is rewritten. Multiple flips
// may be armed; each fires at most once.
func (a *Array) ArmBitFlip(row, col int, seq uint64) {
	a.flips = append(a.flips, bitFlip{row: row, col: col, seq: seq})
	a.faulty = true
}

// SetColumnStuck forces sense-amplifier column col to read v: every Read and
// every bit-line compute reports bit v in that column (and its complement on
// the inverted outputs), regardless of the stored data. The cells themselves
// are unaffected, as are the transposed DTU helpers StoreUint32/LoadUint32,
// which model the separate data port.
func (a *Array) SetColumnStuck(col int, v bool) {
	if !a.stkAlloc {
		a.stuck0 = bitmat.NewRow(a.Cols())
		a.stuck1 = bitmat.NewRow(a.Cols())
		a.stkAlloc = true
	}
	if v {
		a.stuck1.SetBit(col, true)
	} else {
		a.stuck0.SetBit(col, true)
	}
	a.faulty = true
	a.anyStk = true
}

// ClearFaults disarms every fault. The access sequence counter keeps
// counting, and corruption already written to cells remains.
func (a *Array) ClearFaults() {
	a.flips = nil
	if a.anyStk {
		a.stuck0.Zero()
		a.stuck1.Zero()
	}
	a.anyStk = false
	a.faulty = false
}

// Accesses reports the number of modeled accesses (reads + writes + bit-line
// computes) performed since construction. Fault sites are addressed in this
// sequence space: ArmBitFlip's seq refers to the access index this counter
// will hold when the fault fires.
func (a *Array) Accesses() uint64 { return a.seq }

// tick advances the access sequence and fires any bit flips armed for the
// access that is about to execute.
func (a *Array) tick() {
	if a.faulty && len(a.flips) > 0 {
		kept := a.flips[:0]
		for _, f := range a.flips {
			if f.seq == a.seq {
				a.mat.SetBit(f.row, f.col, !a.mat.Bit(f.row, f.col))
			} else {
				kept = append(kept, f)
			}
		}
		a.flips = kept
	}
	a.seq++
}

// applyStuck forces the stuck sense columns in a positive-sense output row.
func (a *Array) applyStuck(r bitmat.Row) {
	if !a.anyStk {
		return
	}
	r.AndNot(r, a.stuck0)
	r.Or(r, a.stuck1)
}

// Read performs a normal (differential) SRAM read of wordline row, returning
// a snapshot of its contents.
func (a *Array) Read(row int) bitmat.Row {
	a.tick()
	a.stats.Reads++
	a.senseValid = false
	v := a.mat.Row(row).Clone()
	a.applyStuck(v)
	return v
}

// Peek returns the live contents of a wordline without modeling an access.
// It is for testing and debugging only.
func (a *Array) Peek(row int) bitmat.Row { return a.mat.Row(row) }

// Write performs a full-width SRAM write of data into wordline row.
func (a *Array) Write(row int, data bitmat.Row) {
	a.tick()
	a.stats.Writes++
	a.senseValid = false
	a.mat.WriteRow(row, data)
}

// WriteMasked writes data into wordline row only at columns where mask is
// set, modeling per-column write enables.
func (a *Array) WriteMasked(row int, data, mask bitmat.Row) {
	a.tick()
	a.stats.Writes++
	a.senseValid = false
	a.mat.WriteRowMasked(row, data, mask)
}

// BitLineCompute activates wordlines ra and rb simultaneously with the sense
// amplifiers in single-ended mode, computing the four bit-wise logical
// operations of the two rows in one access. ra may equal rb, which yields
// and=or=row and nand=nor=complement — the idiom used to read a row's
// complement without extra hardware.
func (a *Array) BitLineCompute(ra, rb int) {
	a.tick()
	a.stats.BLCs++
	ra2, rb2 := a.mat.Row(ra), a.mat.Row(rb)
	a.and.And(ra2, rb2)
	a.or.Or(ra2, rb2)
	// Stuck sense columns force both single-ended outputs; the inverted
	// outputs are derived downstream and carry the complement.
	a.applyStuck(a.and)
	a.applyStuck(a.or)
	a.nand.Not(a.and)
	a.nor.Not(a.or)
	a.senseValid = true
}

// SenseValid reports whether the sense-amplifier outputs are valid (a
// bit-line compute has happened since the last read/write).
func (a *Array) SenseValid() bool { return a.senseValid }

// And returns the AND output of the last bit-line compute.
func (a *Array) And() bitmat.Row { return a.mustSense(a.and) }

// Nand returns the NAND output of the last bit-line compute.
func (a *Array) Nand() bitmat.Row { return a.mustSense(a.nand) }

// Or returns the OR output of the last bit-line compute.
func (a *Array) Or() bitmat.Row { return a.mustSense(a.or) }

// Nor returns the NOR output of the last bit-line compute.
func (a *Array) Nor() bitmat.Row { return a.mustSense(a.nor) }

func (a *Array) mustSense(r bitmat.Row) bitmat.Row {
	if !a.senseValid {
		panic("sram: sense-amplifier outputs read without a preceding bit-line compute")
	}
	return r
}

// Reset zeroes the storage core and invalidates the sense outputs.
func (a *Array) Reset() {
	a.mat.Reset()
	a.senseValid = false
}

// StoreUint32 writes the 32-bit value v into the array "vertically" at the
// given column group: bit k of v goes to row baseRow+k/segBits, column
// colBase+k%segBits. segBits is the parallelization factor n; the value
// occupies 32/n consecutive rows. This is the transposed segment layout data
// arrives in after the DTU (§V).
func (a *Array) StoreUint32(v uint32, baseRow, colBase, segBits int) {
	if 32%segBits != 0 {
		panic(fmt.Sprintf("sram: segment width %d does not divide 32", segBits))
	}
	for k := 0; k < 32; k++ {
		row := baseRow + k/segBits
		col := colBase + k%segBits
		a.mat.SetBit(row, col, v>>uint(k)&1 == 1)
	}
}

// LoadUint32 reads back a 32-bit value stored by StoreUint32.
func (a *Array) LoadUint32(baseRow, colBase, segBits int) uint32 {
	if 32%segBits != 0 {
		panic(fmt.Sprintf("sram: segment width %d does not divide 32", segBits))
	}
	var v uint32
	for k := 0; k < 32; k++ {
		row := baseRow + k/segBits
		col := colBase + k%segBits
		if a.mat.Bit(row, col) {
			v |= 1 << uint(k)
		}
	}
	return v
}
