package sram

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitmat"
)

func TestReadWriteRoundTrip(t *testing.T) {
	a := New(16, 64)
	r := bitmat.NewRow(64)
	r.SetBit(0, true)
	r.SetBit(33, true)
	r.SetBit(63, true)
	a.Write(5, r)
	got := a.Read(5)
	if !got.Equal(r) {
		t.Fatalf("read back %s, want %s", got, r)
	}
	st := a.Stats()
	if st.Reads != 1 || st.Writes != 1 {
		t.Fatalf("stats = %+v, want 1 read / 1 write", st)
	}
}

func TestBitLineComputeTruthTable(t *testing.T) {
	a := New(4, 4)
	// Row 0 = 0101 (LSB first), row 1 = 0011.
	ra, rb := bitmat.NewRow(4), bitmat.NewRow(4)
	ra.SetBit(0, true)
	ra.SetBit(2, true)
	rb.SetBit(0, true)
	rb.SetBit(1, true)
	a.Write(0, ra)
	a.Write(1, rb)
	a.BitLineCompute(0, 1)

	wantAnd := []bool{true, false, false, false}
	wantOr := []bool{true, true, true, false}
	for i := 0; i < 4; i++ {
		if a.And().Bit(i) != wantAnd[i] {
			t.Errorf("AND bit %d = %v, want %v", i, a.And().Bit(i), wantAnd[i])
		}
		if a.Or().Bit(i) != wantOr[i] {
			t.Errorf("OR bit %d = %v, want %v", i, a.Or().Bit(i), wantOr[i])
		}
		if a.Nand().Bit(i) != !wantAnd[i] {
			t.Errorf("NAND bit %d wrong", i)
		}
		if a.Nor().Bit(i) != !wantOr[i] {
			t.Errorf("NOR bit %d wrong", i)
		}
	}
}

func TestBLCSameRowGivesComplement(t *testing.T) {
	a := New(4, 8)
	r := bitmat.NewRow(8)
	r.SetBit(1, true)
	r.SetBit(6, true)
	a.Write(2, r)
	a.BitLineCompute(2, 2)
	if !a.And().Equal(r) || !a.Or().Equal(r) {
		t.Fatal("blc(r,r) and/or should equal the row itself")
	}
	want := bitmat.NewRow(8)
	want.Not(r)
	if !a.Nand().Equal(want) || !a.Nor().Equal(want) {
		t.Fatal("blc(r,r) nand/nor should be the row's complement")
	}
}

func TestSenseInvalidation(t *testing.T) {
	a := New(4, 8)
	a.BitLineCompute(0, 1)
	if !a.SenseValid() {
		t.Fatal("sense should be valid after blc")
	}
	a.Write(0, bitmat.NewRow(8))
	if a.SenseValid() {
		t.Fatal("write should invalidate sense outputs")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("reading stale sense outputs should panic")
		}
	}()
	a.And()
}

func TestMaskedWrite(t *testing.T) {
	a := New(4, 8)
	full := bitmat.NewRow(8)
	full.Fill()
	a.Write(1, full)

	zero := bitmat.NewRow(8)
	mask := bitmat.NewRow(8)
	mask.SetBit(2, true)
	mask.SetBit(5, true)
	a.WriteMasked(1, zero, mask)
	got := a.Read(1)
	for i := 0; i < 8; i++ {
		want := i != 2 && i != 5
		if got.Bit(i) != want {
			t.Fatalf("bit %d = %v, want %v", i, got.Bit(i), want)
		}
	}
}

func TestStoreLoadUint32AllSegWidths(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		a := New(256, 64)
		rng := rand.New(rand.NewSource(int64(n)))
		vals := []uint32{0, 1, 0xFFFFFFFF, 0x80000001, rng.Uint32(), rng.Uint32()}
		for i, v := range vals {
			col := (i % 2) * n
			base := (i / 2) * (32 / n)
			a.StoreUint32(v, base, col, n)
			if got := a.LoadUint32(base, col, n); got != v {
				t.Errorf("n=%d: round trip of %#x gave %#x", n, v, got)
			}
		}
	}
}

// Property: StoreUint32/LoadUint32 round-trips for arbitrary values at
// arbitrary legal placements.
func TestStoreLoadProperty(t *testing.T) {
	a := New(256, 256)
	f := func(v uint32, colRaw, rowRaw uint8, nIdx uint8) bool {
		ns := []int{1, 2, 4, 8, 16, 32}
		n := ns[int(nIdx)%len(ns)]
		segs := 32 / n
		col := (int(colRaw) % (256 / n)) * n
		base := (int(rowRaw) % (256 / segs)) * segs
		a.StoreUint32(v, base, col, n)
		return a.LoadUint32(base, col, n) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStandardGeometry(t *testing.T) {
	a := NewStandard()
	if a.Rows() != 256 || a.Cols() != 256 {
		t.Fatalf("standard array is %dx%d, want 256x256", a.Rows(), a.Cols())
	}
}

func TestInvalidSegWidthPanics(t *testing.T) {
	a := New(64, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for segment width not dividing 32")
		}
	}()
	a.StoreUint32(1, 0, 0, 5)
}
