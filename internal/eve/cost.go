// Package eve implements the EVE micro-architecture (paper §V): the vector
// control unit (VCU) receiving committed vector instructions from the core,
// the vector sequencing unit (VSU) executing micro-programs on the EVE
// SRAMs, the vector memory unit (VMU) generating cacheline requests against
// the LLC, the vector reduction unit (VRU), and the data transpose units
// (DTUs) — together with the way-partitioned L2 reconfiguration and the
// nine-category execution-time breakdown of Fig 7.
//
// Timing follows the paper's methodology (§VII-A): instructions execute
// functionally in the ISA layer while EVE charges cycles derived from the
// *measured lengths of the real micro-programs* (internal/uprog) running on
// the bit-level circuit model.
package eve

import (
	"fmt"

	"repro/internal/analytic"
	"repro/internal/isa"
	"repro/internal/uop"
	"repro/internal/uprog"
)

// costKey identifies a macro-operation cost class.
type costKey struct {
	op     isa.Op
	vx     bool
	masked bool
	imm    uint32 // shift amounts make distinct micro-programs
}

// opCost is a macro-operation's measured cost: VSU cycles plus per-array
// energy in read-equivalents (§VI-B), both taken from one execution of the
// real micro-program.
type opCost struct {
	cycles int
	energy float64
}

// costModel lazily measures micro-program costs per macro-op.
type costModel struct {
	layout uprog.Layout
	mach   *uprog.Machine
	cache  map[costKey]opCost
}

func newCostModel(n, maxUProgCycles int) *costModel {
	m := uprog.NewMachine(n, 2)
	m.MaxCycles = maxUProgCycles
	return &costModel{layout: m.Layout, mach: m, cache: make(map[costKey]opCost)}
}

// run executes a program on the counting machine, returning its cost.
func (c *costModel) run(p *uop.Program) opCost {
	before := c.mach.EnergyCounts()
	cycles := c.mach.CountCycles(p)
	after := c.mach.EnergyCounts()
	for i := range after {
		after[i] -= before[i]
	}
	return opCost{cycles: cycles, energy: analytic.EnergyReadEq(after)}
}

// broadcastCost is the cost of staging a scalar operand into a scratch
// register through the data_in port (the .vx prologue).
func (c *costModel) broadcastCost() opCost {
	return c.run(uprog.WriteExt(c.layout, c.layout.ScratchID(uprog.BroadcastScratch), false))
}

func (c *costModel) lookup(in *isa.Instr) opCost {
	key := costKey{op: in.Op, vx: in.Kind == isa.KindVX, masked: in.Masked}
	switch in.Op {
	case isa.OpSll, isa.OpSrl, isa.OpSra:
		if in.Kind == isa.KindVX {
			key.imm = in.Scalar & 31
		}
	}
	if v, ok := c.cache[key]; ok {
		return v
	}
	v := c.measure(in, key)
	c.cache[key] = v
	return v
}

// Cycles reports the VSU cycles of one vector instruction's micro-program.
func (c *costModel) Cycles(in *isa.Instr) int { return c.lookup(in).cycles }

// Energy reports the per-array energy of one vector instruction's
// micro-program, in read-equivalents.
func (c *costModel) Energy(in *isa.Instr) float64 { return c.lookup(in).energy }

func (c *costModel) measure(in *isa.Instr, key costKey) opCost {
	l := c.layout
	// Generic register ids: results/operands land in fixed slots; costs do
	// not depend on which architectural registers are named.
	const d, a, b = 3, 1, 2
	m := key.masked

	var base opCost
	if key.vx {
		base = c.broadcastCost()
	}
	add := func(oc opCost) opCost {
		return opCost{cycles: base.cycles + oc.cycles, energy: base.energy + oc.energy}
	}
	switch in.Op {
	case isa.OpAdd:
		return add(c.run(uprog.Add(l, d, a, b, m)))
	case isa.OpSub:
		return add(c.run(uprog.Sub(l, d, a, b, m)))
	case isa.OpRSub:
		return add(c.run(uprog.RSub(l, d, a, b, m)))
	case isa.OpAnd:
		return add(c.run(uprog.Logic(l, uop.SrcAnd, d, a, b, m)))
	case isa.OpOr:
		return add(c.run(uprog.Logic(l, uop.SrcOr, d, a, b, m)))
	case isa.OpXor:
		return add(c.run(uprog.Logic(l, uop.SrcXor, d, a, b, m)))
	case isa.OpSAdd:
		return add(c.run(uprog.SatAdd(l, d, a, b, m)))
	case isa.OpSAddU:
		return add(c.run(uprog.SatAddU(l, d, a, b, m)))
	case isa.OpSSub:
		return add(c.run(uprog.SatSub(l, d, a, b, m)))
	case isa.OpSSubU:
		return add(c.run(uprog.SatSubU(l, d, a, b, m)))
	case isa.OpMin:
		return add(c.run(uprog.MinMax(l, false, true, d, a, b, m)))
	case isa.OpMax:
		return add(c.run(uprog.MinMax(l, true, true, d, a, b, m)))
	case isa.OpMinU:
		return add(c.run(uprog.MinMax(l, false, false, d, a, b, m)))
	case isa.OpMaxU:
		return add(c.run(uprog.MinMax(l, true, false, d, a, b, m)))
	case isa.OpSll, isa.OpSrl, isa.OpSra:
		kind := map[isa.Op]uprog.ShiftKind{
			isa.OpSll: uprog.ShSLL, isa.OpSrl: uprog.ShSRL, isa.OpSra: uprog.ShSRA,
		}[in.Op]
		if key.vx {
			// The VSU resolves the scalar amount at decode: no broadcast.
			return c.run(uprog.ShiftImm(l, kind, d, a, int(key.imm), m))
		}
		return c.run(uprog.ShiftVV(l, kind, d, a, b, m))
	case isa.OpMerge:
		return c.run(uprog.Merge(l, d, a, b))
	case isa.OpMv:
		if key.vx {
			return c.run(uprog.WriteExt(l, d, m)) // vmv.v.x is a pure broadcast
		}
		return c.run(uprog.Copy(l, d, a, m))
	case isa.OpVId:
		// Element indices stream in through the data_in port like a load's
		// writeback: one wr per segment.
		return c.run(uprog.WriteExt(l, d, m))
	case isa.OpMul:
		return add(c.run(uprog.Mul(l, d, a, b, m, false)))
	case isa.OpMacc:
		return add(c.run(uprog.Mul(l, d, a, b, m, true)))
	case isa.OpMulH:
		return add(c.run(uprog.MulH(l, d, a, b, m)))
	case isa.OpDiv:
		return add(c.run(uprog.DivRem(l, uprog.DivS, d, a, b, m)))
	case isa.OpDivU:
		return add(c.run(uprog.DivRem(l, uprog.DivU, d, a, b, m)))
	case isa.OpRem:
		return add(c.run(uprog.DivRem(l, uprog.RemS, d, a, b, m)))
	case isa.OpRemU:
		return add(c.run(uprog.DivRem(l, uprog.RemU, d, a, b, m)))
	case isa.OpMSeq:
		return add(c.run(uprog.Compare(l, uprog.CmpEq, d, a, b, m)))
	case isa.OpMSne:
		return add(c.run(uprog.Compare(l, uprog.CmpNe, d, a, b, m)))
	case isa.OpMSlt:
		return add(c.run(uprog.Compare(l, uprog.CmpLt, d, a, b, m)))
	case isa.OpMSltU:
		return add(c.run(uprog.Compare(l, uprog.CmpLtu, d, a, b, m)))
	case isa.OpMSle:
		return add(c.run(uprog.Compare(l, uprog.CmpLe, d, a, b, m)))
	case isa.OpMSleU:
		return add(c.run(uprog.Compare(l, uprog.CmpLeu, d, a, b, m)))
	case isa.OpMSgt:
		return add(c.run(uprog.Compare(l, uprog.CmpGt, d, a, b, m)))
	case isa.OpMSgtU:
		return add(c.run(uprog.Compare(l, uprog.CmpGtu, d, a, b, m)))
	case isa.OpMvSX:
		// Write one element's segments through data_in.
		return opCost{cycles: 1 + l.Segs, energy: float64(l.Segs)}
	case isa.OpMvXS:
		// Stream one element's segments out.
		return opCost{cycles: 1 + l.Segs, energy: float64(l.Segs)}
	case isa.OpSetVL, isa.OpFence:
		return opCost{cycles: 1}
	default:
		panic(fmt.Sprintf("eve: no micro-program cost for %v", in.Op))
	}
}
