package eve

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

func newEngine(t *testing.T, n int) (*Engine, *mem.Hierarchy) {
	t.Helper()
	h := mem.NewHierarchy()
	return New(DefaultConfig(n), h.LLC), h
}

func TestHWVLMatchesTableIII(t *testing.T) {
	want := map[int]int{1: 2048, 2: 2048, 4: 2048, 8: 1024, 16: 512, 32: 256}
	for n, vl := range want {
		e, _ := newEngine(t, n)
		if got := e.HWVL(); got != vl {
			t.Errorf("EVE-%d HWVL = %d, want %d", n, got, vl)
		}
	}
}

func TestArithLatencyOrdering(t *testing.T) {
	// The same add executes faster (in cycles) on a higher parallelization
	// factor; EVE-32's clock penalty shows up in core-cycle durations.
	dur := func(n int) int64 {
		e, _ := newEngine(t, n)
		in := &isa.Instr{Op: isa.OpAdd, Kind: isa.KindVV, Vd: 3, Vs1: 1, Vs2: 2, VL: e.HWVL()}
		e.Handle(in, 0)
		return e.Drain()
	}
	if !(dur(1) > dur(4) && dur(4) > dur(8)) {
		t.Errorf("add duration not decreasing: EVE-1=%d EVE-4=%d EVE-8=%d",
			dur(1), dur(4), dur(8))
	}
}

func TestBreakdownSumsToTotal(t *testing.T) {
	e, _ := newEngine(t, 8)
	flat := mem.NewFlat(1 << 22)
	base := flat.AllocU32(4 * e.HWVL())
	instrs := []*isa.Instr{
		{Op: isa.OpSetVL, VL: e.HWVL()},
		{Op: isa.OpLoad, Vd: 1, Addr: base, VL: e.HWVL()},
		{Op: isa.OpLoad, Vd: 2, Addr: base + uint64(4*e.HWVL()), VL: e.HWVL()},
		{Op: isa.OpAdd, Kind: isa.KindVV, Vd: 3, Vs1: 1, Vs2: 2, VL: e.HWVL()},
		{Op: isa.OpStore, Vs1: 3, Addr: base, VL: e.HWVL()},
		{Op: isa.OpFence, VL: e.HWVL()},
	}
	for _, in := range instrs {
		e.Handle(in, 0)
	}
	total := e.Drain()
	if got := e.Breakdown().Total(); got != total {
		t.Fatalf("breakdown sums to %d, engine time %d", got, total)
	}
	b := e.Breakdown()
	if b[Busy] == 0 {
		t.Error("no busy cycles recorded")
	}
	if b[LdMemStall] == 0 {
		t.Error("cold loads should cause ld_mem_stall")
	}
}

func TestDependentAddWaitsForLoad(t *testing.T) {
	e, _ := newEngine(t, 8)
	vl := e.HWVL()
	e.Handle(&isa.Instr{Op: isa.OpLoad, Vd: 1, Addr: 0x10000, VL: vl}, 0)
	afterLoad := e.Breakdown()[LdMemStall]
	e.Handle(&isa.Instr{Op: isa.OpAdd, Kind: isa.KindVV, Vd: 2, Vs1: 1, Vs2: 1, VL: vl}, 0)
	if e.Breakdown()[LdMemStall] <= afterLoad {
		t.Error("dependent add should charge ld_mem_stall while waiting for the load")
	}
}

func TestIndependentComputeOverlapsLoad(t *testing.T) {
	// An arithmetic op on unrelated registers proceeds while a load is in
	// flight: total time ≈ max, not sum.
	mk := func(withLoad, withMul bool) int64 {
		e, _ := newEngine(t, 8)
		vl := e.HWVL()
		if withLoad {
			e.Handle(&isa.Instr{Op: isa.OpLoad, Vd: 1, Addr: 0x40000, VL: vl}, 0)
		}
		if withMul {
			e.Handle(&isa.Instr{Op: isa.OpMul, Kind: isa.KindVV, Vd: 4, Vs1: 5, Vs2: 6, VL: vl}, 0)
		}
		return e.Drain()
	}
	loadOnly, mulOnly, both := mk(true, false), mk(false, true), mk(true, true)
	if both >= loadOnly+mulOnly {
		t.Errorf("independent mul did not overlap the load: both=%d, load=%d, mul=%d",
			both, loadOnly, mulOnly)
	}
}

func TestIndexedLoadGeneratesPerElementRequests(t *testing.T) {
	e, h := newEngine(t, 8)
	vl := 64
	addrs := make([]uint64, vl)
	for i := range addrs {
		addrs[i] = uint64(0x100000 + i*4096) // all on distinct lines
	}
	e.Handle(&isa.Instr{Op: isa.OpLoadIdx, Vd: 1, Vs2: 2, Addrs: addrs, VL: vl}, 0)
	e.Drain()
	if got := h.LLC.Stats().Accesses; got < uint64(vl) {
		t.Errorf("indexed load issued %d LLC requests, want ≥ %d", got, vl)
	}
}

func TestUnitStrideCoalesces(t *testing.T) {
	e, h := newEngine(t, 8)
	vl := 256 // 1 KiB = 16 lines
	e.Handle(&isa.Instr{Op: isa.OpLoad, Vd: 1, Addr: 0x20000, VL: vl}, 0)
	e.Drain()
	if got := h.LLC.Stats().Accesses; got != 16 {
		t.Errorf("unit-stride load of %d elems issued %d requests, want 16", vl, got)
	}
}

func TestLargeStrideDefeatsCoalescing(t *testing.T) {
	e, h := newEngine(t, 8)
	vl := 64
	e.Handle(&isa.Instr{Op: isa.OpLoadStride, Vd: 1, Addr: 0x80000, Stride: 4096, VL: vl}, 0)
	e.Drain()
	if got := h.LLC.Stats().Accesses; got != uint64(vl) {
		t.Errorf("large-stride load issued %d requests, want %d (backprop's pathology)", got, vl)
	}
}

func TestVMUIssueStallUnderMSHRPressure(t *testing.T) {
	e, _ := newEngine(t, 1)
	vl := e.HWVL()
	// A gather over distinct lines floods the 32 LLC MSHRs (Fig 8).
	addrs := make([]uint64, vl)
	for i := range addrs {
		addrs[i] = uint64(0x100000 + i*4096)
	}
	e.Handle(&isa.Instr{Op: isa.OpLoadIdx, Vd: 1, Vs2: 2, Addrs: addrs, VL: vl}, 0)
	e.Handle(&isa.Instr{Op: isa.OpAdd, Kind: isa.KindVV, Vd: 3, Vs1: 1, Vs2: 1, VL: vl}, 0)
	e.Drain()
	if e.VMUIssueStallFraction() <= 0 {
		t.Error("expected VMU issue stalls under MSHR pressure")
	}
}

func TestFenceDrainsStores(t *testing.T) {
	e, _ := newEngine(t, 8)
	vl := e.HWVL()
	e.Handle(&isa.Instr{Op: isa.OpStore, Vs1: 1, Addr: 0x30000, VL: vl}, 0)
	tStore := e.Drain()
	block := e.Handle(&isa.Instr{Op: isa.OpFence, VL: vl}, 0)
	if block < tStore {
		t.Errorf("fence reply %d precedes store drain %d", block, tStore)
	}
}

func TestQueueBackpressure(t *testing.T) {
	e, _ := newEngine(t, 1)
	vl := e.HWVL()
	blocked := false
	for i := 0; i < 64; i++ {
		// Long multiplies pile up in the VCU queue.
		if e.Handle(&isa.Instr{Op: isa.OpMul, Kind: isa.KindVV, Vd: 3, Vs1: 1, Vs2: 2, VL: vl}, 0) > 0 {
			blocked = true
		}
	}
	if !blocked {
		t.Error("64 queued multiplies never exerted back-pressure on the core")
	}
}

func TestMvXSBlocksCore(t *testing.T) {
	e, _ := newEngine(t, 8)
	vl := e.HWVL()
	e.Handle(&isa.Instr{Op: isa.OpMul, Kind: isa.KindVV, Vd: 1, Vs1: 2, Vs2: 3, VL: vl}, 0)
	block := e.Handle(&isa.Instr{Op: isa.OpMvXS, Vs1: 1, VL: vl}, 0)
	if block == 0 {
		t.Error("vmv.x.s must block the core until the value returns")
	}
}

func TestSpawnCostCharged(t *testing.T) {
	e, _ := newEngine(t, 8)
	e.Spawn(500, 0, 4)
	e.Handle(&isa.Instr{Op: isa.OpSetVL, VL: 1}, 0)
	if got := e.Drain(); got < 500 {
		t.Errorf("engine time %d ignores spawn cost", got)
	}
}

func TestMovePenaltyOnlyBelowBalanced(t *testing.T) {
	e1, _ := newEngine(t, 1)
	e4, _ := newEngine(t, 4)
	// v1 and v20 live in different sub-columns for EVE-1.
	in := &isa.Instr{Op: isa.OpAdd, Kind: isa.KindVV, Vd: 3, Vs1: 1, Vs2: 20, VL: 64}
	if e1.moveCycles(in) == 0 {
		t.Error("EVE-1 should pay move cycles for cross-group operands")
	}
	if e4.moveCycles(in) != 0 {
		t.Error("EVE-4 should never pay move cycles")
	}
}

// TestStoreDoesNotBlockSubsequentLoads pins the store-buffer decoupling: a
// store whose data depends on long compute must not hold the next strip's
// loads behind it.
func TestStoreDoesNotBlockSubsequentLoads(t *testing.T) {
	e, _ := newEngine(t, 8)
	vl := e.HWVL()
	// Long multiply producing v3, store of v3, then an unrelated load.
	e.Handle(&isa.Instr{Op: isa.OpMul, Kind: isa.KindVV, Vd: 3, Vs1: 1, Vs2: 2, VL: vl}, 0)
	e.Handle(&isa.Instr{Op: isa.OpStore, Vs1: 3, Addr: 0x100000, VL: vl}, 0)
	e.Handle(&isa.Instr{Op: isa.OpLoad, Vd: 4, Addr: 0x200000, VL: vl}, 0)
	loadReady := e.regs[4].memT
	mulDone := e.regs[3].memT
	if loadReady >= mulDone {
		t.Errorf("load data ready at %d, after the multiply completed at %d: store buffer failed to decouple", loadReady, mulDone)
	}
}

// TestEnergyAccumulates sanity-checks the §VI-B energy accounting.
func TestEnergyAccumulates(t *testing.T) {
	e, _ := newEngine(t, 8)
	vl := e.HWVL()
	if e.EnergyReadEq() != 0 {
		t.Fatal("energy should start at zero")
	}
	e.Handle(&isa.Instr{Op: isa.OpAdd, Kind: isa.KindVV, Vd: 3, Vs1: 1, Vs2: 2, VL: vl}, 0)
	addE := e.EnergyReadEq()
	if addE <= 0 {
		t.Fatal("add recorded no energy")
	}
	e.Handle(&isa.Instr{Op: isa.OpMul, Kind: isa.KindVV, Vd: 4, Vs1: 1, Vs2: 2, VL: vl}, 0)
	if e.EnergyReadEq() < 10*addE {
		t.Errorf("multiply energy (%f total) should dwarf an add (%f)", e.EnergyReadEq(), addE)
	}
}

// TestHalfVLUsesHalfTheArrays pins the clock-gating assumption in the
// energy model.
func TestHalfVLUsesHalfTheArrays(t *testing.T) {
	e, _ := newEngine(t, 8)
	full := e.activeArrays(e.HWVL())
	half := e.activeArrays(e.HWVL() / 2)
	if full != 32 || half != 16 {
		t.Errorf("activeArrays: full=%d half=%d, want 32/16", full, half)
	}
	if e.activeArrays(1) != 1 {
		t.Error("single element should activate one array")
	}
}
