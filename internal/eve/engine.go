package eve

import (
	"math"

	"repro/internal/analytic"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/probe"
	"repro/internal/vreg"
)

// Category labels one slice of EVE's execution-time breakdown (Fig 7).
type Category int

// Fig 7's nine categories.
const (
	Busy       Category = iota // executing useful work
	VRUStall                   // VRU structural hazard
	LdMemStall                 // load memory stall
	StMemStall                 // store memory stall
	LdDTStall                  // load transposing stall
	StDTStall                  // store detransposing stall
	VMUStall                   // VMU structural hazard
	EmptyStall                 // no instruction available
	DepStall                   // register dependency
	NumCategories
)

var categoryNames = [...]string{
	"busy", "vru_stall", "ld_mem_stall", "st_mem_stall",
	"ld_dt_stall", "st_dt_stall", "vmu_stall", "empty_stall", "dep_stall",
}

func (c Category) String() string { return categoryNames[c] }

// Breakdown is cycles attributed per category; it sums to the engine's
// total execution time.
type Breakdown [NumCategories]int64

// Total sums all categories.
func (b Breakdown) Total() int64 {
	var t int64
	for _, v := range b {
		t += v
	}
	return t
}

// Config parameterizes an EVE engine instance (Table III: EVE-x, in-order
// issue, one exec pipe).
type Config struct {
	N          int // parallelization factor
	Arrays     int // EVE SRAMs (32: half of the L2's 64 sub-arrays, paired)
	DTUs       int // data transpose units (8)
	QueueDepth int // VCU instruction queue between core commit and EVE
	// StreamBits is the SRAM read bandwidth B feeding the VRU (§V-D).
	StreamBits int
	// MaxUProgCycles bounds each micro-program run on the cost-model
	// machine; zero selects uprog.DefaultMaxCycles (watchdog, see
	// uprog.CycleLimitError).
	MaxUProgCycles int
}

// DefaultConfig returns the paper's EVE-n configuration. StreamBits is §V-D's
// B, the SRAM read bandwidth feeding the VRU's E = B/n detranspose ports.
func DefaultConfig(n int) Config {
	return Config{N: n, Arrays: 32, DTUs: 8, QueueDepth: 16, StreamBits: 256}
}

// regState tracks readiness of one architectural vector register.
type regState struct {
	vmuT    int64    // request generation start (delayed by a busy VMU)
	memT    int64    // data arrived from the memory system
	fullT   int64    // including transpose into the arrays
	memCat  Category // what to charge while waiting below memT
	fullCat Category // what to charge between memT and fullT
	storeT  int64    // a store is reading this register until storeT (WAR)
}

// Engine is one ephemeral vector engine.
type Engine struct {
	cfg     Config
	cost    *costModel
	llc     mem.Level
	geom    vreg.Geometry
	penalty float64
	segs    int

	clock   int64 // VSU timeline, in core cycles
	vcu     int64 // VCU dispatch timeline: one macro-operation per cycle
	vmuFree int64 // VMU request-generation pipeline
	stFree  int64 // store data-write port (writes drain behind generation)
	vruFree int64
	// The 8 DTUs are split between inbound transposes (loads) and outbound
	// detransposes (stores); a single shared timeline would falsely
	// serialize a load's transpose behind a later-dispatched store whose
	// data only materializes after long compute.
	dtuLd    float64
	dtuSt    float64
	regs     [32]regState
	lastLoad int64 // completion horizon of outstanding loads
	lastStW  int64 // completion horizon of outstanding store writes

	queue []int64 // dispatch times of the last QueueDepth instructions
	qHead int

	brk           Breakdown
	vmuIssueStall int64
	vmuLines      uint64
	instrs        uint64
	spawnCost     int64
	energyReadEq  float64
	vlDist        probe.DistValue // active vector length per instruction
	linesDist     probe.DistValue // cachelines per memory macro-op

	// Reconfiguration lifecycle: the engine's claim on borrowed L2 ways and
	// the monotonic edge counters. waysOwned is instantaneous (a gauge);
	// the counters are cumulative and identical whether or not an interval
	// sampler watches them.
	waysOwned    int
	spawns       int64
	teardowns    int64
	waysBorrowed int64
	waysReturned int64
	sampler      *probe.Sampler // optional interval timeline; nil = off

	// Per-run trace emitters; zero (disabled) unless SetTracer installs a
	// tracer. The engine traces as three parallel tracks: the VSU timeline
	// (phase attribution + instruction commits), the VMU request streams,
	// and the DTU transpose traffic.
	vsu probe.Emitter
	vmu probe.Emitter
	dtu probe.Emitter
}

// SetTracer attaches a per-run event tracer (nil to disable). The engine
// emits under "eve.vsu" (Fig 7 phase spans and per-instruction commit
// events carrying seq, disassembly, VL, VCU slot and core-block time),
// "eve.vmu" (load/store request streams) and "eve.dtu" (transpose and
// detranspose spans).
func (e *Engine) SetTracer(tr probe.Tracer) {
	e.vsu = probe.NewEmitter(tr, "eve.vsu")
	e.vmu = probe.NewEmitter(tr, "eve.vmu")
	e.dtu = probe.NewEmitter(tr, "eve.dtu")
}

// ProbeStats implements probe.Source, publishing the engine's counters —
// including the full Fig 7 breakdown and the Fig 8 VMU stall cycles — into
// the hierarchical registry.
func (e *Engine) ProbeStats(s *probe.Scope) {
	s.CounterU("instrs", e.instrs)
	s.Counter("cycles", e.clock)
	s.Counter("spawn.cost", e.spawnCost)
	s.Counter("vmu.issue_stall", e.vmuIssueStall)
	s.CounterU("vmu.lines", e.vmuLines)
	s.Float("energy.read_eq", e.energyReadEq)
	for c := Category(0); c < NumCategories; c++ {
		s.Counter("breakdown."+c.String(), e.brk[c])
	}
	s.Dist("vl", e.vlDist)
	s.Dist("vmu.lines_per_op", e.linesDist)
	s.Counter("reconfig.spawns", e.spawns)
	s.Counter("reconfig.teardowns", e.teardowns)
	s.Counter("reconfig.ways_borrowed", e.waysBorrowed)
	s.Counter("reconfig.ways_returned", e.waysReturned)
}

// ProbeGauges implements probe.GaugeSource: the engine's instantaneous
// state per window — how many borrowed L2 ways it currently owns and how
// full the VCU dispatch queue is.
func (e *Engine) ProbeGauges(s *probe.Scope, now int64) {
	s.Counter("ways_owned", int64(e.waysOwned))
	occ := len(e.queue) - e.qHead
	if occ > e.cfg.QueueDepth {
		occ = e.cfg.QueueDepth
	}
	s.Counter("queue.occupancy", int64(occ))
}

// SetSampler attaches a per-run interval sampler (nil to disable); the
// engine reports its reconfiguration edges — spawn, way borrow, way return,
// teardown — onto the sampler's timeline. Attach before Spawn so the first
// borrow lands on the timeline.
func (e *Engine) SetSampler(s *probe.Sampler) { e.sampler = s }

// New builds an engine issuing memory requests to the given LLC-side port.
func New(cfg Config, llc mem.Level) *Engine {
	return &Engine{
		cfg:     cfg,
		cost:    newCostModel(cfg.N, cfg.MaxUProgCycles),
		llc:     llc,
		geom:    vreg.Standard(cfg.N),
		penalty: analytic.ClockPenalty(cfg.N),
		segs:    32 / cfg.N,
	}
}

// HWVL reports the hardware vector length (Table III).
func (e *Engine) HWVL() int { return e.geom.HWVL(e.cfg.Arrays) }

// Breakdown returns the Fig 7 execution-time breakdown.
func (e *Engine) Breakdown() Breakdown { return e.brk }

// VMUIssueStallFraction reports Fig 8's metric: the share of execution time
// the VMU spent stalled trying to hand a request to the LLC.
func (e *Engine) VMUIssueStallFraction() float64 {
	if e.clock == 0 {
		return 0
	}
	return float64(e.vmuIssueStall) / float64(e.clock)
}

// Instrs reports vector instructions executed.
func (e *Engine) Instrs() uint64 { return e.instrs }

// SpawnCost reports the L2 reconfiguration cycles charged at spawn.
func (e *Engine) SpawnCost() int64 { return e.spawnCost }

// EnergyReadEq reports cumulative EVE SRAM array energy in read-equivalents
// (§VI-B weights), summed over active arrays: micro-program accesses plus
// DTU row transfers and VRU streaming reads.
func (e *Engine) EnergyReadEq() float64 { return e.energyReadEq }

// activeArrays reports how many EVE SRAMs participate for a given active
// vector length (inactive arrays are clock-gated).
func (e *Engine) activeArrays(vl int) int {
	per := e.geom.ElementsPerArray()
	act := (vl + per - 1) / per
	if act > e.cfg.Arrays {
		act = e.cfg.Arrays
	}
	if act < 1 {
		act = 1
	}
	return act
}

// Spawn charges the L2 way-partition reconfiguration (§V-E) starting at
// time `at` (when the spawning instruction reached the engine); no vector
// work proceeds until the released ways are invalidated. ways is how many
// L2 ways the partition handed over — the engine owns them until Teardown.
func (e *Engine) Spawn(cost, at int64, ways int) {
	e.spawnCost = cost
	e.waysOwned = ways
	e.spawns++
	e.waysBorrowed += int64(ways)
	e.vsu.Instant(probe.KPhase, "spawn", at)
	e.vsu.Emit(probe.Event{Kind: probe.KReconfig, Name: "borrow", Begin: at, End: at, Aux: int64(ways)})
	if e.sampler != nil {
		e.sampler.Reconfig(probe.ReconfigEvent{Comp: "eve", Cycle: at, Event: "spawn", Owned: ways, Cost: cost})
		e.sampler.Reconfig(probe.ReconfigEvent{Comp: "eve", Cycle: at, Event: "borrow", Ways: ways, Owned: ways})
	}
	e.advanceTo(at, EmptyStall)
	e.advanceTo(e.clock+cost, Busy)
	if e.vcu < e.clock {
		e.vcu = e.clock
	}
}

// Teardown ends the ephemeral lifetime at time `at`: the engine gives its
// borrowed L2 ways back to the partition (the restore itself is free — the
// returned ways re-enter the replacement set empty, §V-E) and records the
// return edge. Call after the engine has drained.
func (e *Engine) Teardown(at int64) {
	returned := e.waysOwned
	e.teardowns++
	e.waysReturned += int64(returned)
	e.waysOwned = 0
	e.vsu.Emit(probe.Event{Kind: probe.KReconfig, Name: "return", Begin: at, End: at, Aux: int64(returned)})
	if e.sampler != nil {
		e.sampler.Reconfig(probe.ReconfigEvent{Comp: "eve", Cycle: at, Event: "return", Ways: returned, Owned: 0})
		e.sampler.Reconfig(probe.ReconfigEvent{Comp: "eve", Cycle: at, Event: "teardown", Owned: 0})
	}
}

// advanceTo moves the VSU clock forward, charging the gap to cat. Each
// charged gap becomes a KPhase span on the eve.vsu track, so a Perfetto
// timeline of the run shows Fig 7's attribution cycle by cycle.
func (e *Engine) advanceTo(t int64, cat Category) {
	if t > e.clock {
		e.brk[cat] += t - e.clock
		e.vsu.Span(probe.KPhase, cat.String(), e.clock, t)
		e.clock = t
	}
}

// busy charges d micro-op cycles of useful work, scaled by the EVE-n clock
// penalty (§VI: EVE-16/32 cycle slower).
func (e *Engine) busy(d int) {
	c := int64(math.Ceil(float64(d) * e.penalty))
	e.vsu.Span(probe.KPhase, "busy", e.clock, e.clock+c)
	e.clock += c
	e.brk[Busy] += c
}

// waitReg stalls the VSU until register r's data is usable, charging the
// producer's categories.
func (e *Engine) waitReg(r int) {
	st := &e.regs[r]
	e.advanceTo(st.vmuT, VMUStall)
	e.advanceTo(st.memT, st.memCat)
	e.advanceTo(st.fullT, st.fullCat)
}

// waitWAR stalls until any store reading r has finished draining it.
func (e *Engine) waitWAR(r int) {
	e.advanceTo(e.regs[r].storeT, StDTStall)
}

func (e *Engine) setComputed(r int) {
	e.regs[r].vmuT = 0
	e.regs[r].memT, e.regs[r].fullT = e.clock, e.clock
	e.regs[r].memCat, e.regs[r].fullCat = DepStall, DepStall
}

// enqueue models the VCU queue: the core blocks when QueueDepth committed
// vector instructions are still waiting. Returns the time the core may
// proceed past this instruction.
func (e *Engine) enqueue(dispatched int64) int64 {
	if e.cfg.QueueDepth <= 0 {
		return dispatched
	}
	e.queue = append(e.queue, dispatched)
	if len(e.queue)-e.qHead > e.cfg.QueueDepth {
		block := e.queue[e.qHead]
		e.qHead++
		if e.qHead > 4096 && e.qHead*2 > len(e.queue) {
			e.queue = append(e.queue[:0], e.queue[e.qHead:]...)
			e.qHead = 0
		}
		return block
	}
	return 0
}

// dtuServe runs one cacheline through the transpose units: an aggregate
// server of DTUs parallel units per direction, each spending segs cycles per
// line. Inbound transposes (loads) and outbound detransposes (stores) keep
// separate timelines: a single shared one would falsely serialize a load's
// transpose behind a later-dispatched store whose data only materializes
// after long compute, and the full-duplex approximation matches how the
// paper's DTUs sit between two independently-ported structures.
func (e *Engine) dtuServe(readyAt int64, store bool) int64 {
	units := float64(e.cfg.DTUs)
	svc := float64(e.segs) / units * e.penalty
	next := &e.dtuLd
	if store {
		next = &e.dtuSt
	}
	start := float64(readyAt)
	if *next > start {
		start = *next
	}
	*next = start + svc
	return int64(math.Ceil(*next))
}

// lines expands a memory instruction into its cacheline request stream. Unit
// stride and constant stride coalesce elements sharing a line (the VMU
// guarantees cache-line alignment, §V-C); indexed accesses generate one
// request per element, per the paper.
func (e *Engine) lines(in *isa.Instr) []uint64 {
	switch in.Op {
	case isa.OpLoad, isa.OpStore:
		first := in.Addr / mem.LineBytes
		last := (in.Addr + uint64(4*in.VL) - 1) / mem.LineBytes
		out := make([]uint64, 0, last-first+1)
		for l := first; l <= last; l++ {
			out = append(out, l*mem.LineBytes)
		}
		return out
	case isa.OpLoadStride, isa.OpStoreStride:
		out := make([]uint64, 0, in.VL)
		var prev uint64 = math.MaxUint64
		for i := 0; i < in.VL; i++ {
			a := uint64(int64(in.Addr)+int64(i)*in.Stride) / mem.LineBytes
			if a != prev {
				out = append(out, a*mem.LineBytes)
				prev = a
			}
		}
		return out
	case isa.OpLoadIdx, isa.OpStoreIdx:
		out := make([]uint64, len(in.Addrs))
		for i, a := range in.Addrs {
			out[i] = a / mem.LineBytes * mem.LineBytes
		}
		return out
	}
	return nil
}

// vmuIssue streams line requests to the LLC port at one per cycle, blocking
// on MSHR back-pressure, and returns the time of the last issue slot plus
// each line's completion time.
func (e *Engine) vmuIssue(lines []uint64, write bool, start int64) (int64, []int64) {
	t := start
	dones := make([]int64, len(lines))
	for i, la := range lines {
		r := e.llc.Access(la, write, t)
		if r.Accepted > t {
			e.vmuIssueStall += r.Accepted - t
		}
		t = r.Accepted + 1
		dones[i] = r.Done
		e.vmuLines++
	}
	return t, dones
}

// moveCycles charges the extra register-move micro-ops needed when operands
// live in different column sub-groups (§II: the column under-utilization
// penalty for small parallelization factors).
func (e *Engine) moveCycles(in *isa.Instr) int {
	if e.geom.ColumnGroups() == 1 {
		return 0
	}
	dst := e.geom.SubColumn(in.Vd & 31)
	moves := 0
	if in.Vs1&31 != in.Vd&31 && e.geom.SubColumn(in.Vs1&31) != dst {
		moves++
	}
	if in.Kind == isa.KindVV && in.Vs2&31 != in.Vd&31 && e.geom.SubColumn(in.Vs2&31) != dst {
		moves++
	}
	return moves * 2 * e.segs
}

// Handle processes one committed vector instruction arriving from the core
// at time `arrival`, returning the time the core must wait until before
// continuing (0 when it need not wait).
//
// The VCU consumes one instruction per cycle in order; memory macro-ops are
// forwarded to the VMU/DTUs without occupying the VSU, so request generation
// and data movement overlap outstanding compute (§V, §VII-B: "these stalls
// ... can be hidden by overlapping outstanding compute in EVE").
func (e *Engine) Handle(in *isa.Instr, arrival int64) int64 {
	e.instrs++
	e.vcu++
	if arrival > e.vcu {
		e.vcu = arrival
	}

	var reply, dispatched int64
	switch {
	case in.Op == isa.OpSetVL:
		e.advanceTo(e.vcu, EmptyStall)
		e.busy(1)
		dispatched = e.clock
	case in.Op == isa.OpFence:
		// Drain all pending memory traffic (§V-A).
		e.advanceTo(e.vcu, EmptyStall)
		e.advanceTo(e.lastLoad, LdMemStall)
		e.advanceTo(e.lastStW, StMemStall)
		e.busy(1)
		reply = e.clock
		dispatched = e.clock
	case in.Op == isa.OpMvXS:
		e.advanceTo(e.vcu, EmptyStall)
		e.waitReg(in.Vs1)
		e.busy(e.cost.Cycles(in))
		reply = e.clock
		dispatched = e.clock
	case isa.IsMemory(in.Op) && !isa.IsStore(in.Op):
		dispatched = e.load(in)
	case isa.IsStore(in.Op):
		dispatched = e.store(in)
	case isReduction(in.Op):
		e.advanceTo(e.vcu, EmptyStall)
		e.reduce(in)
		dispatched = e.clock
	case isCrossElement(in.Op):
		e.advanceTo(e.vcu, EmptyStall)
		e.crossElement(in)
		dispatched = e.clock
	default:
		e.advanceTo(e.vcu, EmptyStall)
		e.arith(in)
		dispatched = e.clock
	}

	block := e.enqueue(dispatched)
	if reply > block {
		block = reply
	}
	e.vlDist.Observe(int64(in.VL))
	if e.vsu.On() {
		e.vsu.Emit(probe.Event{
			Kind:  probe.KInstr,
			Name:  isa.Disassemble(in),
			Begin: arrival,
			End:   e.clock,
			Seq:   e.instrs,
			VL:    in.VL,
			Aux:   e.vcu,
			Aux2:  block,
		})
	}
	return block
}

func (e *Engine) arith(in *isa.Instr) {
	e.waitReg(in.Vs1)
	if in.Kind == isa.KindVV {
		e.waitReg(in.Vs2)
	}
	if in.Masked {
		e.waitReg(0)
	}
	e.waitWAR(in.Vd)
	e.busy(e.cost.Cycles(in) + e.moveCycles(in))
	e.energyReadEq += e.cost.Energy(in) * float64(e.activeArrays(in.VL))
	e.setComputed(in.Vd)
}

// load dispatches a load macro-op to the VMU at VCU time, without occupying
// the VSU: the requests stream to the LLC and returning lines transpose
// through the DTUs straight into the EVE SRAMs. Returns the dispatch time.
func (e *Engine) load(in *isa.Instr) int64 {
	start := e.vcu
	if e.vmuFree > start {
		start = e.vmuFree
	}
	if in.Op == isa.OpLoadIdx {
		// Index operands stream out of the arrays before request generation.
		if t := e.regs[in.Vs2].fullT + int64(e.segs); t > start {
			start = t
		}
	}
	// WAR: the incoming data must not overwrite a register a store is still
	// reading out.
	if t := e.regs[in.Vd].storeT; t > start {
		start = t
	}
	dispatched := start

	lines := e.lines(in)
	e.linesDist.Observe(int64(len(lines)))
	lastIssue, dones := e.vmuIssue(lines, false, start)
	e.vmuFree = lastIssue

	// Arriving lines stream through the DTUs into the EVE SRAMs as they
	// return from the memory system. EVE-32 needs no transpose (§VII-B) but
	// still spends the row writes.
	var memDone, full int64
	for _, d := range dones {
		if d > memDone {
			memDone = d
		}
		if f := e.dtuServe(d, false); f > full {
			full = f
		}
	}
	if full < memDone {
		full = memDone
	}
	if e.vmu.On() {
		e.vmu.Emit(probe.Event{Kind: probe.KAccess, Name: "load",
			Begin: dispatched, End: memDone, Addr: in.Addr, VL: in.VL, Aux: int64(len(lines))})
		e.dtu.Span(probe.KAccess, "transpose", memDone, full)
	}
	st := &e.regs[in.Vd]
	st.vmuT = start // delay before request generation began = VMU pressure
	st.memT, st.fullT = memDone, full
	st.memCat, st.fullCat = LdMemStall, LdDTStall
	st.storeT = 0
	if memDone > e.lastLoad {
		e.lastLoad = memDone
	}
	// Each arriving line writes 32/n transposed rows into the arrays.
	e.energyReadEq += float64(len(lines) * e.segs)
	return dispatched
}

// store dispatches a store macro-op: the DTUs detranspose the register out
// of the arrays once its data is ready, then the VMU issues the writes. The
// VSU is not occupied. Returns the dispatch time.
func (e *Engine) store(in *isa.Instr) int64 {
	src := &e.regs[in.Vs1]
	start := e.vcu
	for _, t := range []int64{src.vmuT, src.memT, src.fullT} {
		if t > start {
			start = t
		}
	}
	if in.Op == isa.OpStoreIdx {
		if t := e.regs[in.Vs2].fullT + int64(e.segs); t > start {
			start = t
		}
	}
	dispatched := start

	lines := e.lines(in)
	e.linesDist.Observe(int64(len(lines)))
	// Request generation (addresses are known at dispatch) occupies the VMU
	// pipeline in order, but the data writes drain through a separate store
	// port so subsequent loads are not held behind data-dependent stores.
	gen := e.vcu
	if e.vmuFree > gen {
		gen = e.vmuFree
	}
	e.vmuFree = gen + int64(len(lines))

	// Detranspose: the DTUs read the register out of the arrays line by
	// line; the register is WAR-busy until the read-out finishes.
	var detransDone int64
	for range lines {
		detransDone = e.dtuServe(start, true)
	}
	src.storeT = detransDone

	issueAt := detransDone
	if gen > issueAt {
		issueAt = gen
	}
	if e.stFree > issueAt {
		issueAt = e.stFree
	}
	lastIssue, dones := e.vmuIssue(lines, true, issueAt)
	e.stFree = lastIssue
	drain := lastIssue
	for _, d := range dones {
		if d > drain {
			drain = d
		}
	}
	if drain > e.lastStW {
		e.lastStW = drain
	}
	if e.vmu.On() {
		e.dtu.Span(probe.KAccess, "detranspose", start, detransDone)
		e.vmu.Emit(probe.Event{Kind: probe.KAccess, Name: "store",
			Begin: issueAt, End: drain, Addr: in.Addr, VL: in.VL, Aux: int64(len(lines))})
	}
	// Detransposing reads 32/n rows per outgoing line.
	e.energyReadEq += float64(len(lines) * e.segs)
	return dispatched
}

func (e *Engine) reduce(in *isa.Instr) {
	e.waitReg(in.Vs2)
	e.waitReg(in.Vs1)
	if e.vruFree > e.clock {
		e.advanceTo(e.vruFree, VRUStall)
	}
	// The VSU streams B/n elements per read over 32/n segment reads: the
	// whole register streams in VL·32/B cycles of VSU work (§V-D).
	stream := (in.VL*32 + e.cfg.StreamBits - 1) / e.cfg.StreamBits
	e.busy(stream)
	e.energyReadEq += float64(stream) // one row read per streamed beat
	// The VRU's trailing dot-product and linear reduction over E ports.
	ports := e.cfg.StreamBits / e.cfg.N
	vruDone := e.clock + int64(math.Ceil(float64(ports+8)*e.penalty))
	e.vruFree = vruDone
	st := &e.regs[in.Vd]
	st.memT, st.fullT = vruDone, vruDone
	st.memCat, st.fullCat = VRUStall, VRUStall
}

func (e *Engine) crossElement(in *isa.Instr) {
	e.waitReg(in.Vs1)
	if in.Op == isa.OpRGather {
		e.waitReg(in.Vs2)
	}
	if e.vruFree > e.clock {
		e.advanceTo(e.vruFree, VRUStall)
	}
	stream := (in.VL*32 + e.cfg.StreamBits - 1) / e.cfg.StreamBits
	cost := 2 * stream // stream out and write back
	if in.Op == isa.OpRGather {
		cost += in.VL / 8 // permute network serialization
	}
	e.busy(cost)
	e.energyReadEq += float64(2 * stream)
	e.vruFree = e.clock
	e.setComputed(in.Vd)
}

// Drain completes all outstanding work and returns the engine's finish time.
func (e *Engine) Drain() int64 {
	e.advanceTo(e.lastLoad, LdMemStall)
	var dt int64
	if maxF(e.dtuLd, e.dtuSt) > 0 {
		dt = int64(math.Ceil(maxF(e.dtuLd, e.dtuSt)))
	}
	e.advanceTo(dt, LdDTStall)
	e.advanceTo(e.lastStW, StMemStall)
	e.advanceTo(e.vruFree, VRUStall)
	return e.clock
}

func isReduction(o isa.Op) bool {
	switch o {
	case isa.OpRedSum, isa.OpRedMin, isa.OpRedMax, isa.OpRedMinU, isa.OpRedMaxU:
		return true
	}
	return false
}

func isCrossElement(o isa.Op) bool {
	switch o {
	case isa.OpSlide1Up, isa.OpSlide1Down, isa.OpRGather:
		return true
	}
	return false
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
