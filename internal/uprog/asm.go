package uprog

import (
	"repro/internal/bitmat"
	"repro/internal/uop"
)

// asm builds a micro-program tuple by tuple. Loop bodies are emitted once;
// the trailing tuple of a body carries the decrement and branch μops in its
// spare VLIW slots, exactly as Fig 4's listings pack them.
type asm struct {
	l      Layout
	name   string
	tuples []uop.Tuple
}

func newAsm(l Layout, name string) *asm { return &asm{l: l, name: name} }

func (a *asm) prog() *uop.Program {
	return &uop.Program{Name: a.name, Tuples: a.tuples}
}

// ar emits a tuple holding a lone arithmetic μop.
func (a *asm) ar(op uop.Arith) { a.tuples = append(a.tuples, uop.Tuple{Arith: op}) }

// loop emits `init cnt, count`, then the body, then rides `decr cnt` and
// `bnz cnt, start` on the body's final tuple (or a fresh tuple if its slots
// are taken). The body must emit at least one tuple and runs count times;
// count must be ≥ 1.
func (a *asm) loop(cnt uop.Counter, count int, body func()) {
	if count < 1 {
		panic("uprog: loop count must be >= 1")
	}
	a.tuples = append(a.tuples, uop.Tuple{Ctr: uop.Ctr{Kind: uop.CInit, Cnt: cnt, Val: count}})
	start := len(a.tuples)
	body()
	if len(a.tuples) == start {
		panic("uprog: empty loop body")
	}
	last := &a.tuples[len(a.tuples)-1]
	if last.Ctr.Kind == uop.CNone && last.Ctl.Kind == uop.LNone {
		last.Ctr = uop.Ctr{Kind: uop.CDecr, Cnt: cnt}
		last.Ctl = uop.Ctl{Kind: uop.LBnz, Cnt: cnt, Target: start}
	} else {
		a.tuples = append(a.tuples, uop.Tuple{
			Ctr: uop.Ctr{Kind: uop.CDecr, Cnt: cnt},
			Ctl: uop.Ctl{Kind: uop.LBnz, Cnt: cnt, Target: start},
		})
	}
}

// ret emits the terminating tuple.
func (a *asm) ret() {
	a.tuples = append(a.tuples, uop.Tuple{Ctl: uop.Ctl{Kind: uop.LRet}})
}

// Arithmetic μop constructors.

func blc(ra, rb uop.RowRef) uop.Arith {
	return uop.Arith{Kind: uop.ABLC, A: ra, B: rb}
}

// wbRow writes a computed value back to an SRAM wordline.
func wbRow(d uop.RowRef, src uop.Src, masked bool) uop.Arith {
	return uop.Arith{Kind: uop.AWriteback, Dst: uop.DstRow, DstR: d, Src: src, Masked: masked}
}

// wbLatch writes a computed value into a circuit-stack latch.
func wbLatch(dst uop.Dst, src uop.Src, spread uop.Spread) uop.Arith {
	return uop.Arith{Kind: uop.AWriteback, Dst: dst, Src: src, Spread: spread}
}

// wbOut streams a computed value out through the data_out port.
func wbOut(src uop.Src) uop.Arith {
	return uop.Arith{Kind: uop.AWriteback, Dst: uop.DstDataOut, Src: src}
}

// rd performs a native read into a latch or the data_out port.
func rd(row uop.RowRef, dst uop.Dst) uop.Arith {
	return uop.Arith{Kind: uop.ARead, A: row, Dst: dst}
}

// wrConst performs a native write of an all-zero or all-one pattern.
func wrConst(row uop.RowRef, src uop.Src, masked bool) uop.Arith {
	return uop.Arith{Kind: uop.AWrite, A: row, Src: src, Masked: masked}
}

// wrExt performs a native write from the VSU's data_in port.
func wrExt(row uop.RowRef, ext uop.ExtRef, masked bool) uop.Arith {
	return uop.Arith{Kind: uop.AWrite, A: row, Src: uop.SrcExt, ExtR: ext, Masked: masked}
}

func lshift(masked bool) uop.Arith { return uop.Arith{Kind: uop.ALShift, Masked: masked} }
func rshift(masked bool) uop.Arith { return uop.Arith{Kind: uop.ARShift, Masked: masked} }
func maskShift() uop.Arith         { return uop.Arith{Kind: uop.AMaskShift} }

// Common composite emissions.

// copySeg emits the 2-μop idiom copying one wordline to another through the
// sense amps: blc(src,src) reads the row, wb(and) writes it.
func (a *asm) copySeg(dst, src uop.RowRef, masked bool) {
	a.ar(blc(src, src))
	a.ar(wbRow(dst, uop.SrcAnd, masked))
}

// loadMaskFromRow loads the mask latches from a stored row, optionally
// taking the complement, broadcasting per the spread policy.
func (a *asm) loadMaskFromRow(row uop.RowRef, spread uop.Spread, invert bool) {
	a.ar(blc(row, row))
	src := uop.SrcAnd
	if invert {
		src = uop.SrcNor // nor(r,r) = ~r
	}
	a.ar(wbLatch(uop.DstMask, src, spread))
}

// clearCarry / setCarry initialize the inter-segment carry latch before the
// first segment of an addition (carry-in 0) or subtraction (carry-in 1).
func (a *asm) clearCarry() { a.ar(wbLatch(uop.DstCarry, uop.SrcZero, uop.SpreadNone)) }
func (a *asm) setCarry()   { a.ar(wbLatch(uop.DstCarry, uop.SrcOnes, uop.SpreadNone)) }

// Helper row references over the layout.

// reg returns a counter-indexed reference walking register r's segments.
func (a *asm) reg(r int, cnt uop.Counter) uop.RowRef {
	return uop.RowBy(a.l.RegRow(r, 0), cnt, 1)
}

// regSeg returns a fixed reference to register r's segment s.
func (a *asm) regSeg(r, s int) uop.RowRef { return uop.Row(a.l.RegRow(r, s)) }

// scr returns a counter-indexed reference walking scratch register k.
func (a *asm) scr(k int, cnt uop.Counter) uop.RowRef {
	return uop.RowBy(a.l.ScratchRow(k, 0), cnt, 1)
}

// scrSeg returns a fixed reference to scratch register k's segment s.
func (a *asm) scrSeg(k, s int) uop.RowRef { return uop.Row(a.l.ScratchRow(k, s)) }

func (a *asm) zero() uop.RowRef { return uop.Row(a.l.ZeroRow()) }
func (a *asm) one() uop.RowRef  { return uop.Row(a.l.OneRow()) }
func (a *asm) sign() uop.RowRef { return uop.Row(a.l.SignRow()) }

// BroadcastRows builds the data_in rows for broadcasting the 32-bit scalar x
// to every element: row s holds segment s of x replicated across all column
// groups. These are what the VSU drives on the data_in port for .vx forms.
func BroadcastRows(l Layout, cols int, x uint32) []bitmat.Row {
	rows := make([]bitmat.Row, l.Segs)
	for s := 0; s < l.Segs; s++ {
		r := bitmat.NewRow(cols)
		for g := 0; g < cols/l.N; g++ {
			for b := 0; b < l.N; b++ {
				bit := x>>uint(s*l.N+b)&1 == 1
				r.SetBit(g*l.N+b, bit)
			}
		}
		rows[s] = r
	}
	return rows
}

// SignConstRow builds a data_in row with only the MSB column of every group
// set: XORing it with an element's top segment flips the sign bit (the bias
// trick turning signed compares into unsigned ones).
func SignConstRow(l Layout, cols int) bitmat.Row {
	return bitmat.MSBMask(cols, l.N)
}

// TopBitsRow builds a data_in row with the top r bit positions of every
// group set, used to sign-fill the vacated positions of an arithmetic right
// shift's partial segment.
func TopBitsRow(l Layout, cols, r int) bitmat.Row {
	row := bitmat.NewRow(cols)
	for g := 0; g < cols/l.N; g++ {
		for b := l.N - r; b < l.N; b++ {
			row.SetBit(g*l.N+b, true)
		}
	}
	return row
}

// BitConstRows builds the data_in rows division expects: row j holds a
// single set bit at offset j of every group.
func BitConstRows(l Layout, cols int) []bitmat.Row {
	rows := make([]bitmat.Row, l.N)
	for j := 0; j < l.N; j++ {
		r := bitmat.NewRow(cols)
		for g := 0; g < cols/l.N; g++ {
			r.SetBit(g*l.N+j, true)
		}
		rows[j] = r
	}
	return rows
}
