package uprog

import (
	"fmt"

	"repro/internal/bitmat"
	"repro/internal/circuits"
	"repro/internal/sram"
	"repro/internal/uop"
)

// DefaultMaxCycles bounds a single micro-program run when the machine's
// MaxCycles field is zero; exceeding the bound indicates a sequencing bug
// (runaway loop) or a fault-corrupted sequencer.
const DefaultMaxCycles = 1 << 22

// CycleLimitError reports a micro-program exceeding its cycle budget. The
// machine panics with a *CycleLimitError so the abort unwinds through the
// circuit stack like any other invariant violation; sim.Run recovers it
// into a typed SimError, making a watchdog trip a per-cell diagnosis rather
// than a dead sweep.
type CycleLimitError struct {
	Program string // micro-program name
	PC      int    // program counter at abort
	Limit   int    // cycle budget that was exceeded
}

func (e *CycleLimitError) Error() string {
	return fmt.Sprintf("uprog: %s exceeded %d cycles (runaway loop at pc %d)",
		e.Program, e.Limit, e.PC)
}

// Machine is the execution half of a VSU bound to one circuit stack: the
// micro-program counter, the 12 shared counters with their zero and
// binary-decade flags, and the tuple execution loop.
//
// Within a tuple the paper executes counter, arithmetic, then control μop.
// Row references are resolved against the counter iteration state at the
// start of the cycle (a register read in the same cycle it is written), so
// a decr riding in the same tuple as a blc does not perturb the blc's
// addressing — matching Fig 4's listings.
//
// A Machine is single-threaded state (counters, flags, energy tallies) and
// is not safe for concurrent use. There is deliberately no package-level
// machine or memoized latency table: every EVE engine instance owns its
// own Machine and cost cache, which is what keeps concurrent simulations
// (internal/sweep) race-free.
type Machine struct {
	Layout Layout
	Stack  *circuits.Stack

	// MaxCycles is the per-run watchdog budget; zero selects
	// DefaultMaxCycles. Exceeding it panics with a *CycleLimitError.
	MaxCycles int

	vals   [uop.NumCounters]int
	inits  [uop.NumCounters]int
	iters  [uop.NumCounters]int
	zeroF  [uop.NumCounters]bool
	decF   [uop.NumCounters]bool
	cycles uint64
	energy [uop.NumEnergyClasses]uint64
}

// EnergyCounts reports cumulative arithmetic μops per energy class across
// all runs, the input to the §VI-B array-energy model.
func (m *Machine) EnergyCounts() [uop.NumEnergyClasses]uint64 { return m.energy }

// NewMachine builds a machine for parallelization factor n with capacity for
// elems elements (elems column groups). The constant rows are initialized.
func NewMachine(n, elems int) *Machine {
	l := NewLayout(n)
	arr := sram.New(l.Rows(), elems*n)
	st := circuits.NewStack(arr, n)
	m := &Machine{Layout: l, Stack: st}
	arr.Write(l.OneRow(), bitmat.LSBMask(arr.Cols(), n))
	arr.Write(l.SignRow(), bitmat.MSBMask(arr.Cols(), n))
	return m
}

// Elems reports how many elements (column groups) the machine holds.
func (m *Machine) Elems() int { return m.Stack.Array().Cols() / m.Layout.N }

// Cycles reports the cumulative tuples executed across all Run calls.
func (m *Machine) Cycles() uint64 { return m.cycles }

// StoreElement writes a 32-bit value into register reg, element elem.
func (m *Machine) StoreElement(reg, elem int, v uint32) {
	m.Stack.Array().StoreUint32(v, m.Layout.RegRow(reg, 0), elem*m.Layout.N, m.Layout.N)
}

// LoadElement reads the 32-bit value of register reg, element elem.
func (m *Machine) LoadElement(reg, elem int) uint32 {
	return m.Stack.Array().LoadUint32(m.Layout.RegRow(reg, 0), elem*m.Layout.N, m.Layout.N)
}

// Run executes the micro-program to completion, returning the cycle count
// (tuples executed). env supplies data_in rows and collects data_out rows;
// it may be nil for programs that use neither.
func (m *Machine) Run(p *uop.Program, env *circuits.Env) int {
	return m.exec(p, env, true)
}

// CountCycles executes only the counter and control μops of the program,
// skipping the datapath, and returns the cycle count. Because micro-programs
// are data-independent this equals Run's cycle count; the EVE timing model
// uses it to cost macro-operations without touching an array.
func (m *Machine) CountCycles(p *uop.Program) int {
	return m.exec(p, nil, false)
}

func (m *Machine) exec(p *uop.Program, env *circuits.Env, datapath bool) int {
	limit := m.MaxCycles
	if limit <= 0 {
		limit = DefaultMaxCycles
	}
	cycles := 0
	pc := 0
	for pc < len(p.Tuples) {
		if cycles >= limit {
			panic(&CycleLimitError{Program: p.Name, PC: pc, Limit: limit})
		}
		t := &p.Tuples[pc]
		cycles++

		// Arithmetic μop, addressed with start-of-cycle counter state.
		m.energy[uop.EnergyClassOf(t.Arith)]++
		if datapath && t.Arith.Kind != uop.ANone {
			rowA := t.Arith.A.Resolve(&m.iters)
			rowB := t.Arith.B.Resolve(&m.iters)
			rowD := t.Arith.DstR.Resolve(&m.iters)
			ext := t.Arith.ExtR.Resolve(&m.iters)
			m.Stack.Exec(t.Arith, rowA, rowB, rowD, ext, env)
		}

		// Counter μop.
		switch t.Ctr.Kind {
		case uop.CNone:
		case uop.CInit:
			c := t.Ctr.Cnt
			m.vals[c], m.inits[c], m.iters[c] = t.Ctr.Val, t.Ctr.Val, 0
			m.zeroF[c], m.decF[c] = false, false
		case uop.CDecr:
			m.decr(t.Ctr.Cnt)
		case uop.CIncr:
			c := t.Ctr.Cnt
			m.vals[c]++
			m.iters[c]--
		default:
			panic(fmt.Sprintf("uprog: bad counter μop kind %d", t.Ctr.Kind))
		}

		// Control μop.
		next := pc + 1
		switch t.Ctl.Kind {
		case uop.LNone:
		case uop.LJmp:
			next = t.Ctl.Target
		case uop.LRet:
			m.cycles += uint64(cycles)
			return cycles
		case uop.LBnz:
			c := t.Ctl.Cnt
			if !m.zeroF[c] {
				next = t.Ctl.Target
			} else {
				m.zeroF[c] = false // flag consumed at the loop exit
			}
		case uop.LBnd:
			c := t.Ctl.Cnt
			if m.decF[c] {
				m.decF[c] = false // flag consumed when the branch is taken
				next = t.Ctl.Target
			}
		default:
			panic(fmt.Sprintf("uprog: bad control μop kind %d", t.Ctl.Kind))
		}
		pc = next
	}
	m.cycles += uint64(cycles)
	return cycles
}

// decr implements the paper's counter semantics: decrementing to zero sets
// the zero flag and resets the counter to its initial value; reaching a
// power of two sets the binary-decade flag.
func (m *Machine) decr(c uop.Counter) {
	m.vals[c]--
	m.iters[c]++
	if m.vals[c] <= 0 {
		m.zeroF[c] = true
		m.vals[c] = m.inits[c]
		m.iters[c] = 0
	}
	if v := m.vals[c]; v > 0 && v&(v-1) == 0 {
		m.decF[c] = true
	}
}
