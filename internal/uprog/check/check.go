// Package check statically verifies micro-programs: it proves, without
// touching an SRAM array, that a uop.Program respects the layout's row
// discipline, defines every row and latch before reading it, predicates
// soundly, is structurally well formed, and terminates within a static cycle
// bound.
//
// The verifier runs two phases. A structural phase walks the tuples once:
// enum validity (via uop.EffectsOf, whose errors mirror the circuit stack's
// panics), branch targets, reachability, a reachable ret, fall-off-the-end
// paths, and proper nesting of backward-branch regions. If the structure is
// sound, an abstract interpretation then executes the counter and control
// μops exactly as uprog.Machine does — micro-programs are data-independent,
// so the counter/control state follows a single path — while tracking, per
// cycle, which scratch rows and circuit-stack latches hold defined values.
// That yields exact row addresses for every loop trip (row-bounds and
// operand-discipline checking), def-before-use liveness for scratch rows,
// the carry/mask/xreg/cshift/spare latches and the sense amplifiers,
// mask-load site tracking (a masked μop whose mask was loaded at different
// sites on different trips has been clobbered mid-loop), and the program's
// exact worst-case cycle count — which the interpretation itself bounds by
// Spec.MaxCycles, turning the runtime watchdog into a statically discharged
// obligation.
//
// The liveness model is deliberately conservative in two documented ways:
// native reads and writes invalidate the sense amplifiers (physically they
// drive the bit lines; the ROM never interleaves them inside a
// blc→writeback window), and a masked row write counts as defining the row
// (the ROM's two-phase merge idioms cover every column across complementary
// masks, which a per-column model would need value tracking to see).
package check

import (
	"fmt"
	"sort"

	"repro/internal/uop"
	"repro/internal/uprog"
)

// Pass names, one per verification family; Violation.Pass carries them.
const (
	PassStruct = "struct" // structural well-formedness
	PassBounds = "bounds" // row bounds and operand discipline
	PassLive   = "live"   // def-before-use over rows and latches
	PassMask   = "mask"   // predication soundness
	PassCycles = "cycles" // static cycle bound
)

// Spec declares what a micro-program is entitled to touch: the layout it was
// generated for, the architectural operands the macro-operation reads and
// writes, the data_in rows the VSU drives, and the cycle budget.
type Spec struct {
	// Layout is the register-file geometry the program addresses.
	Layout uprog.Layout
	// Reads and Writes list the declared register operands by id:
	// architectural registers 0..Regs-1, or ScratchID(BroadcastScratch) when
	// a .vx prologue staged a scalar. Scratch 0..5 are the generators'
	// working set and need no declaration; the reserved broadcast register
	// does. Declared Reads are treated as defined on entry.
	Reads, Writes []int
	// ExtRows is the number of data_in rows the VSU drives (0 when the
	// program never reads the port).
	ExtRows int
	// MaxCycles is the cycle budget; zero selects uprog.DefaultMaxCycles.
	MaxCycles int
}

// Violation is one diagnostic: which pass, at which tuple (PC < 0 for
// whole-program findings), and the message.
type Violation struct {
	Pass string
	PC   int
	Msg  string
}

func (v Violation) String() string {
	if v.PC < 0 {
		return fmt.Sprintf("%s: %s", v.Pass, v.Msg)
	}
	return fmt.Sprintf("%s@%d: %s", v.Pass, v.PC, v.Msg)
}

// Report is the verdict on one program.
type Report struct {
	// Program is the micro-program's name.
	Program string
	// Cycles is the exact cycle count of the abstract run — equal to
	// Machine.CountCycles, since micro-programs are data-independent — or -1
	// when a fatal structural finding or the cycle budget stopped the run.
	Cycles int
	// Violations lists the findings in discovery order (structural phase
	// first, then abstract-run order), deduplicated across loop trips.
	Violations []Violation
}

// OK reports whether the program verified cleanly.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Program verifies one micro-program against its spec.
func Program(p *uop.Program, spec Spec) *Report {
	c := &checker{p: p, spec: spec, l: spec.Layout, seen: map[Violation]bool{}}
	c.structural()
	cycles := -1
	if !c.fatal {
		cycles = c.interpret()
	}
	return &Report{Program: p.Name, Cycles: cycles, Violations: c.out}
}

type checker struct {
	p    *uop.Program
	spec Spec
	l    uprog.Layout

	// Per-tuple effect summaries from the structural phase; effOK[pc] is
	// false when EffectsOf rejected the μop.
	effects []uop.Effects
	effOK   []bool

	seen  map[Violation]bool
	out   []Violation
	fatal bool
}

// reportf records a deduplicated violation (loops revisit tuples; each
// distinct finding is reported once).
func (c *checker) reportf(pass string, pc int, format string, args ...interface{}) {
	v := Violation{Pass: pass, PC: pc, Msg: fmt.Sprintf(format, args...)}
	if c.seen[v] {
		return
	}
	c.seen[v] = true
	c.out = append(c.out, v)
}

// fatalf records a structural violation that makes the abstract run
// meaningless (invalid enums, wild branch targets).
func (c *checker) fatalf(pc int, format string, args ...interface{}) {
	c.reportf(PassStruct, pc, format, args...)
	c.fatal = true
}

// structural runs the single static walk over the tuples.
func (c *checker) structural() {
	n := c.p.Len()
	if n == 0 {
		c.fatalf(-1, "empty program: no tuples, no ret")
		return
	}
	c.effects = make([]uop.Effects, n)
	c.effOK = make([]bool, n)
	for pc := range c.p.Tuples {
		t := &c.p.Tuples[pc]

		switch t.Ctr.Kind {
		case uop.CNone:
		case uop.CInit:
			if !t.Ctr.Cnt.Valid() {
				c.fatalf(pc, "init of invalid counter %v", t.Ctr.Cnt)
			} else if t.Ctr.Val < 1 {
				c.reportf(PassStruct, pc, "init %v with trip count %d; loops need a count >= 1",
					t.Ctr.Cnt, t.Ctr.Val)
			}
		case uop.CDecr, uop.CIncr:
			if !t.Ctr.Cnt.Valid() {
				c.fatalf(pc, "%v of invalid counter %v", t.Ctr.Kind, t.Ctr.Cnt)
			}
		default:
			c.fatalf(pc, "invalid counter μop kind %v", t.Ctr.Kind)
		}

		e, err := uop.EffectsOf(t.Arith)
		if err != nil {
			c.fatalf(pc, "invalid arithmetic μop: %v", err)
		} else {
			c.effects[pc], c.effOK[pc] = e, true
			for _, ref := range e.ReadRows {
				c.checkRefCounter(pc, ref)
			}
			if e.WritesRow {
				c.checkRefCounter(pc, e.WriteRow)
			}
			if e.ReadsExt && t.Arith.ExtR.HasCnt && !t.Arith.ExtR.Cnt.Valid() {
				c.fatalf(pc, "data_in ref indexed by invalid counter %v", t.Arith.ExtR.Cnt)
			}
		}

		switch t.Ctl.Kind {
		case uop.LNone, uop.LRet:
		case uop.LJmp:
			c.checkTarget(pc, t.Ctl.Target)
		case uop.LBnz, uop.LBnd:
			if !t.Ctl.Cnt.Valid() {
				c.fatalf(pc, "%v consults invalid counter %v", t.Ctl.Kind, t.Ctl.Cnt)
			}
			c.checkTarget(pc, t.Ctl.Target)
		default:
			c.fatalf(pc, "invalid control μop kind %v", t.Ctl.Kind)
		}
	}
	if c.fatal {
		return
	}
	reach := c.reachability()
	c.loopNesting(reach)
}

func (c *checker) checkRefCounter(pc int, ref uop.RowRef) {
	if ref.HasCnt && !ref.Cnt.Valid() {
		c.fatalf(pc, "row ref %v indexed by invalid counter", ref)
	}
}

func (c *checker) checkTarget(pc, target int) {
	if target < 0 || target >= c.p.Len() {
		c.fatalf(pc, "branch target %d outside the program [0,%d)", target, c.p.Len())
	}
}

// successors returns the static control-flow successors of pc; a successor
// equal to Len() means control falls off the end of the program.
func (c *checker) successors(pc int) []int {
	t := &c.p.Tuples[pc]
	switch t.Ctl.Kind {
	case uop.LNone:
		return []int{pc + 1}
	case uop.LJmp:
		return []int{t.Ctl.Target}
	case uop.LRet:
		return nil
	default: // LBnz, LBnd: taken and fall-through
		return []int{t.Ctl.Target, pc + 1}
	}
}

// reachability flags unreachable tuples, paths falling off the end, and the
// absence of a reachable ret; it returns the reachable set.
func (c *checker) reachability() []bool {
	n := c.p.Len()
	reach := make([]bool, n)
	work := []int{0}
	reach[0] = true
	haveRet := false
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		if c.p.Tuples[pc].Ctl.Kind == uop.LRet {
			haveRet = true
		}
		for _, s := range c.successors(pc) {
			if s == n {
				c.reportf(PassStruct, pc, "control falls off the end of the program (missing ret)")
				continue
			}
			if !reach[s] {
				reach[s] = true
				work = append(work, s)
			}
		}
	}
	if !haveRet {
		c.reportf(PassStruct, -1, "no reachable ret")
	}
	for pc := 0; pc < n; pc++ {
		if !reach[pc] {
			c.reportf(PassStruct, pc, "unreachable tuple")
		}
	}
	return reach
}

// loopNesting checks that backward-branch regions [target, pc] are properly
// nested: two loops may be disjoint or contained, never interleaved.
func (c *checker) loopNesting(reach []bool) {
	type region struct{ lo, hi int }
	var regions []region
	for pc := range c.p.Tuples {
		if !reach[pc] {
			continue
		}
		ctl := c.p.Tuples[pc].Ctl
		switch ctl.Kind {
		case uop.LBnz, uop.LBnd, uop.LJmp:
			if ctl.Target <= pc {
				regions = append(regions, region{ctl.Target, pc})
			}
		}
	}
	for i := 0; i < len(regions); i++ {
		for j := i + 1; j < len(regions); j++ {
			a, b := regions[i], regions[j]
			if a.lo > b.lo {
				a, b = b, a
			}
			if a.lo < b.lo && b.lo <= a.hi && a.hi < b.hi {
				c.reportf(PassStruct, b.hi, "loops [%d,%d] and [%d,%d] interleave without nesting",
					a.lo, a.hi, b.lo, b.hi)
			}
		}
	}
}

// runState is the abstract machine state of the interpretation phase.
type runState struct {
	vals, inits, iters [uop.NumCounters]int
	zeroF, decF        [uop.NumCounters]bool
	inited             [uop.NumCounters]bool

	// def tracks scratch-row definedness (index: row - Regs*Segs).
	def []bool
	// latchDef tracks which latches hold a program-defined value.
	latchDef [uop.NumLatches]bool
	// senseValid: the sense amplifiers hold a live bit-line compute result.
	senseValid bool
	// addValid: the carry latch held a defined value when the live bit-line
	// compute ran (the adder captures carry-in at blc time).
	addValid bool
	// maskDefPC is the tuple that last loaded the mask latches (-1: power-up
	// state only).
	maskDefPC int
	// maskSites records, per masked-consumer pc, the set of mask-load sites
	// observed across trips; more than one means the mask is clobbered
	// mid-loop.
	maskSites map[int]map[int]bool
}

// interpret runs the counter/control μops exactly as uprog.Machine.exec does,
// checking the arithmetic μop of each cycle against the abstract state, and
// returns the exact cycle count (-1 if the budget was exhausted).
func (c *checker) interpret() int {
	n := c.p.Len()
	limit := c.spec.MaxCycles
	if limit <= 0 {
		limit = uprog.DefaultMaxCycles
	}
	l := c.l

	readable := make([]bool, l.Regs+l.Scratch)
	writable := make([]bool, l.Regs+l.Scratch)
	declare := func(ids []int, set []bool) {
		for _, r := range ids {
			if r < 0 || r >= len(set) {
				c.reportf(PassBounds, -1, "spec declares register id %d outside the file", r)
				continue
			}
			set[r] = true
		}
	}
	declare(c.spec.Reads, readable)
	declare(c.spec.Writes, writable)
	for i, w := range writable {
		if w {
			readable[i] = true // a destination may be re-read (vmacc)
		}
	}

	st := &runState{maskDefPC: -1, maskSites: map[int]map[int]bool{}}
	st.def = make([]bool, l.Scratch*l.Segs)
	for _, r := range c.spec.Reads {
		if r >= l.Regs && r < l.Regs+l.Scratch {
			for s := 0; s < l.Segs; s++ {
				st.def[(r-l.Regs)*l.Segs+s] = true
			}
		}
	}

	cycles := 0
	pc := 0
	for pc < n {
		if cycles >= limit {
			c.reportf(PassCycles, pc, "exceeds the %d-cycle watchdog budget without returning", limit)
			c.maskClobber(st)
			return -1
		}
		t := &c.p.Tuples[pc]
		cycles++

		if c.effOK[pc] && t.Arith.Kind != uop.ANone {
			c.step(pc, &t.Arith, &c.effects[pc], st, readable, writable)
		}

		switch t.Ctr.Kind {
		case uop.CNone:
		case uop.CInit:
			cnt := t.Ctr.Cnt
			st.vals[cnt], st.inits[cnt], st.iters[cnt] = t.Ctr.Val, t.Ctr.Val, 0
			st.zeroF[cnt], st.decF[cnt] = false, false
			st.inited[cnt] = true
		case uop.CDecr:
			cnt := t.Ctr.Cnt
			if !st.inited[cnt] {
				c.reportf(PassStruct, pc, "decr of %v before any init", cnt)
				st.inited[cnt] = true
			}
			st.vals[cnt]--
			st.iters[cnt]++
			if st.vals[cnt] <= 0 {
				st.zeroF[cnt] = true
				st.vals[cnt] = st.inits[cnt]
				st.iters[cnt] = 0
			}
			if v := st.vals[cnt]; v > 0 && v&(v-1) == 0 {
				st.decF[cnt] = true
			}
		case uop.CIncr:
			cnt := t.Ctr.Cnt
			if !st.inited[cnt] {
				c.reportf(PassStruct, pc, "incr of %v before any init", cnt)
				st.inited[cnt] = true
			}
			st.vals[cnt]++
			st.iters[cnt]--
		}

		next := pc + 1
		switch t.Ctl.Kind {
		case uop.LNone:
		case uop.LJmp:
			next = t.Ctl.Target
		case uop.LRet:
			c.maskClobber(st)
			return cycles
		case uop.LBnz:
			cnt := t.Ctl.Cnt
			if !st.inited[cnt] {
				c.reportf(PassStruct, pc, "bnz consults %v before any init", cnt)
				st.inited[cnt] = true
			}
			if !st.zeroF[cnt] {
				next = t.Ctl.Target
			} else {
				st.zeroF[cnt] = false
			}
		case uop.LBnd:
			cnt := t.Ctl.Cnt
			if !st.inited[cnt] {
				c.reportf(PassStruct, pc, "bnd consults %v before any init", cnt)
				st.inited[cnt] = true
			}
			if st.decF[cnt] {
				st.decF[cnt] = false
				next = t.Ctl.Target
			}
		}
		pc = next
	}
	// Fell off the end (already a structural violation): report the cycle
	// count of the path actually taken, like the machine would.
	c.maskClobber(st)
	return cycles
}

// step checks one arithmetic μop against the abstract state and applies its
// effects. Reads are checked against the pre-cycle state; invalidations and
// writes apply afterwards, mirroring the stack's within-cycle ordering.
func (c *checker) step(pc int, op *uop.Arith, e *uop.Effects, st *runState, readable, writable []bool) {
	for i := range e.ReadRows {
		row := c.resolveRow(pc, e.ReadRows[i], st)
		c.checkRowRead(pc, e.ReadRows[i], row, st, readable)
	}
	if e.ReadsExt {
		if op.ExtR.HasCnt && !st.inited[op.ExtR.Cnt] {
			c.reportf(PassStruct, pc, "data_in ref indexed by %v before the counter is initialized", op.ExtR.Cnt)
		}
		idx := op.ExtR.Resolve(&st.iters)
		if idx < 0 || idx >= c.spec.ExtRows {
			c.reportf(PassBounds, pc, "data_in row %d out of range: the VSU drives %d rows", idx, c.spec.ExtRows)
		}
	}

	if e.Reads.Has(uop.LatchSense) && !st.senseValid {
		c.reportf(PassLive, pc, "writeback source %v has no live bit-line compute result", op.Src)
	}
	if e.Reads.Has(uop.LatchCarry) && st.senseValid && !st.addValid {
		c.reportf(PassLive, pc, "add writeback: the carry latch was undefined at the bit-line compute")
	}
	if e.Reads.Has(uop.LatchMask) {
		if st.maskDefPC < 0 {
			c.reportf(PassMask, pc, "masked %v before any mask load (power-up mask state)", op.Kind)
		} else {
			sites := st.maskSites[pc]
			if sites == nil {
				sites = map[int]bool{}
				st.maskSites[pc] = sites
			}
			sites[st.maskDefPC] = true
		}
	}
	for _, lr := range []struct {
		latch uop.Latch
		name  string
	}{
		{uop.LatchXReg, "xreg"},
		{uop.LatchCShift, "cshift"},
		{uop.LatchSpare, "spare"},
	} {
		if e.Reads.Has(lr.latch) && !st.latchDef[lr.latch] {
			c.reportf(PassLive, pc, "reads the %s latch before it is loaded", lr.name)
		}
	}

	if e.WritesRow {
		row := c.resolveRow(pc, e.WriteRow, st)
		c.checkRowWrite(pc, e.WriteRow, row, st, writable)
	}
	if e.InvalidatesSense {
		st.senseValid = false
	}
	if e.Writes.Has(uop.LatchSense) {
		st.senseValid = true
		st.addValid = st.latchDef[uop.LatchCarry]
	}
	for latch := uop.LatchCarry; latch <= uop.LatchSpare; latch++ {
		if e.Writes.Has(latch) {
			st.latchDef[latch] = true
			if latch == uop.LatchMask {
				st.maskDefPC = pc
			}
		}
	}
}

func (c *checker) resolveRow(pc int, ref uop.RowRef, st *runState) int {
	if ref.HasCnt && !st.inited[ref.Cnt] {
		c.reportf(PassStruct, pc, "row ref %v used before %v is initialized", ref, ref.Cnt)
	}
	return ref.Resolve(&st.iters)
}

func (c *checker) checkRowRead(pc int, ref uop.RowRef, row int, st *runState, readable []bool) {
	l := c.l
	if row < 0 || row >= l.Rows() {
		c.reportf(PassBounds, pc, "row %d (ref %v) outside the layout's %d rows", row, ref, l.Rows())
		return
	}
	group := row / l.Segs
	switch {
	case group < l.Regs:
		if !readable[group] {
			c.reportf(PassBounds, pc, "reads register v%d, which is not a declared operand", group)
		}
	case group < l.Regs+l.Scratch:
		if group-l.Regs == uprog.BroadcastScratch && !readable[group] {
			c.reportf(PassBounds, pc, "reads the reserved broadcast scratch register without declaring it")
			return
		}
		if !st.def[row-l.Regs*l.Segs] {
			c.reportf(PassLive, pc, "reads scratch s%d segment %d before any write",
				group-l.Regs, row%l.Segs)
		}
	default:
		// Constant rows are always defined and readable.
	}
}

func (c *checker) checkRowWrite(pc int, ref uop.RowRef, row int, st *runState, writable []bool) {
	l := c.l
	if row < 0 || row >= l.Rows() {
		c.reportf(PassBounds, pc, "row %d (ref %v) outside the layout's %d rows", row, ref, l.Rows())
		return
	}
	if row >= l.ZeroRow() {
		names := [...]string{"zero", "one", "sign"}
		c.reportf(PassBounds, pc, "writes constant row %d (the %s row)", row, names[row-l.ZeroRow()])
		return
	}
	group := row / l.Segs
	if group < l.Regs {
		if !writable[group] {
			c.reportf(PassBounds, pc, "writes register v%d, which is not a declared destination", group)
		}
		return
	}
	if group-l.Regs == uprog.BroadcastScratch && !writable[group] {
		c.reportf(PassBounds, pc, "writes the reserved broadcast scratch register")
		return
	}
	st.def[row-l.Regs*l.Segs] = true
}

// maskClobber reports masked μops whose mask was loaded at more than one
// site across trips.
func (c *checker) maskClobber(st *runState) {
	pcs := make([]int, 0, len(st.maskSites))
	for pc := range st.maskSites {
		pcs = append(pcs, pc)
	}
	sort.Ints(pcs)
	for _, pc := range pcs {
		sites := st.maskSites[pc]
		if len(sites) < 2 {
			continue
		}
		list := make([]int, 0, len(sites))
		for s := range sites {
			list = append(list, s)
		}
		sort.Ints(list)
		c.reportf(PassMask, pc, "mask clobbered mid-loop: consumed here but loaded at %d different sites %v across trips",
			len(list), list)
	}
}
