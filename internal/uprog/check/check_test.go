package check

import (
	"testing"

	"repro/internal/uop"
	"repro/internal/uprog"
)

// TestROMSweepClean is the acceptance gate: every generator × operand shape ×
// layout × masked/unmasked verifies with zero violations, and the static
// cycle count sits under the default watchdog budget.
func TestROMSweepClean(t *testing.T) {
	cases := AllCases()
	if len(cases) < 500 {
		t.Fatalf("sweep shrank to %d cases; the ROM enumeration is incomplete", len(cases))
	}
	for _, c := range cases {
		rep := Program(c.Prog, c.Spec)
		if !rep.OK() {
			for _, v := range rep.Violations {
				t.Errorf("%s: %s", c.Name, v)
			}
			continue
		}
		if rep.Cycles < 1 {
			t.Errorf("%s: static cycle count %d", c.Name, rep.Cycles)
		}
		if rep.Cycles >= uprog.DefaultMaxCycles {
			t.Errorf("%s: static cycle count %d not under the %d-cycle watchdog",
				c.Name, rep.Cycles, uprog.DefaultMaxCycles)
		}
	}
}

// TestStaticCyclesMatchMachine cross-checks the abstract interpretation
// against the real sequencer: micro-programs are data-independent, so the
// static count must equal Machine.CountCycles exactly, for every case.
func TestStaticCyclesMatchMachine(t *testing.T) {
	for _, c := range AllCases() {
		rep := Program(c.Prog, c.Spec)
		m := uprog.NewMachine(c.Spec.Layout.N, 2)
		got := m.CountCycles(c.Prog)
		if rep.Cycles != got {
			t.Errorf("%s: static %d cycles, machine %d", c.Name, rep.Cycles, got)
		}
	}
}

// TestStaticBoundCoversGoldenLatencies pins the static bound against the
// measured golden table (latency_test.go): the bound must never be below a
// measured count, and — the interpretation being exact — must equal it.
func TestStaticBoundCoversGoldenLatencies(t *testing.T) {
	factors := []int{1, 2, 4, 8, 16, 32}
	golden := map[string][6]int{
		"copy":  {66, 34, 18, 10, 6, 4},
		"add":   {67, 35, 19, 11, 7, 5},
		"sub":   {132, 68, 36, 20, 12, 8},
		"xor":   {66, 34, 18, 10, 6, 4},
		"slt":   {298, 154, 82, 46, 28, 16},
		"max":   {432, 224, 120, 68, 42, 26},
		"sll7":  {58, 80, 94, 107, 61, 38},
		"srlvv": {430, 242, 170, 150, 154, 182},
		"mul":   {5605, 2917, 1573, 901, 565, 397},
		"mulhu": {10788, 5652, 3156, 2052, 1788, 2232},
		"divu":  {7813, 4149, 2341, 1485, 1153, 1179},
		"merge": {135, 71, 39, 23, 15, 11},
	}
	const d, a, b = 3, 1, 2
	gens := map[string]func(l uprog.Layout) (*uop.Program, Spec){
		"copy": func(l uprog.Layout) (*uop.Program, Spec) {
			return uprog.Copy(l, d, a, false), Spec{Layout: l, Reads: []int{a}, Writes: []int{d}}
		},
		"add": func(l uprog.Layout) (*uop.Program, Spec) {
			return uprog.Add(l, d, a, b, false), Spec{Layout: l, Reads: []int{a, b}, Writes: []int{d}}
		},
		"sub": func(l uprog.Layout) (*uop.Program, Spec) {
			return uprog.Sub(l, d, a, b, false), Spec{Layout: l, Reads: []int{a, b}, Writes: []int{d}}
		},
		"xor": func(l uprog.Layout) (*uop.Program, Spec) {
			return uprog.Logic(l, uop.SrcXor, d, a, b, false), Spec{Layout: l, Reads: []int{a, b}, Writes: []int{d}}
		},
		"slt": func(l uprog.Layout) (*uop.Program, Spec) {
			return uprog.Compare(l, uprog.CmpLt, d, a, b, false), Spec{Layout: l, Reads: []int{a, b}, Writes: []int{d}}
		},
		"max": func(l uprog.Layout) (*uop.Program, Spec) {
			return uprog.MinMax(l, true, true, d, a, b, false), Spec{Layout: l, Reads: []int{a, b}, Writes: []int{d}}
		},
		"sll7": func(l uprog.Layout) (*uop.Program, Spec) {
			return uprog.ShiftImm(l, uprog.ShSLL, d, a, 7, false), Spec{Layout: l, Reads: []int{a}, Writes: []int{d}}
		},
		"srlvv": func(l uprog.Layout) (*uop.Program, Spec) {
			return uprog.ShiftVV(l, uprog.ShSRL, d, a, b, false), Spec{Layout: l, Reads: []int{a, b}, Writes: []int{d}}
		},
		"mul": func(l uprog.Layout) (*uop.Program, Spec) {
			return uprog.Mul(l, d, a, b, false, false), Spec{Layout: l, Reads: []int{a, b}, Writes: []int{d}}
		},
		"mulhu": func(l uprog.Layout) (*uop.Program, Spec) {
			return uprog.MulH(l, d, a, b, false), Spec{Layout: l, Reads: []int{a, b}, Writes: []int{d}}
		},
		"divu": func(l uprog.Layout) (*uop.Program, Spec) {
			return uprog.DivRem(l, uprog.DivU, d, a, b, false),
				Spec{Layout: l, Reads: []int{a, b}, Writes: []int{d}, ExtRows: l.N}
		},
		"merge": func(l uprog.Layout) (*uop.Program, Spec) {
			return uprog.Merge(l, d, a, b), Spec{Layout: l, Reads: []int{0, a, b}, Writes: []int{d}}
		},
	}
	for name, want := range golden {
		for i, n := range factors {
			l := uprog.NewLayout(n)
			p, spec := gens[name](l)
			rep := Program(p, spec)
			if rep.Cycles < want[i] {
				t.Errorf("%s at EVE-%d: static bound %d below the measured %d cycles",
					name, n, rep.Cycles, want[i])
			} else if rep.Cycles != want[i] {
				t.Errorf("%s at EVE-%d: static bound %d, measured %d — the interpretation should be exact",
					name, n, rep.Cycles, want[i])
			}
			if rep.Cycles >= uprog.DefaultMaxCycles {
				t.Errorf("%s at EVE-%d: bound %d not under the watchdog", name, n, rep.Cycles)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Broken-program fixtures: each checker pass has a deliberately broken
// program pinning the exact diagnostic it produces.

// wantViolation asserts that exactly the expected violation (pass, pc and
// message) is among the report's findings.
func wantViolation(t *testing.T, rep *Report, want Violation) {
	t.Helper()
	for _, v := range rep.Violations {
		if v == want {
			return
		}
	}
	t.Errorf("%s: violation %q not found; got:", rep.Program, want)
	for _, v := range rep.Violations {
		t.Errorf("  %s", v)
	}
}

func fixtureSpec(l uprog.Layout) Spec {
	return Spec{Layout: l, Reads: []int{1, 2}, Writes: []int{3}}
}

// tuples shorthand.
func prog(name string, ts ...uop.Tuple) *uop.Program {
	return &uop.Program{Name: name, Tuples: ts}
}

func arith(op uop.Arith) uop.Tuple { return uop.Tuple{Arith: op} }

func retTuple() uop.Tuple { return uop.Tuple{Ctl: uop.Ctl{Kind: uop.LRet}} }

func TestBoundsRowOutOfRange(t *testing.T) {
	l := uprog.NewLayout(8)
	p := prog("broken-oob",
		arith(uop.Arith{Kind: uop.ABLC, A: uop.Row(l.Rows()), B: uop.Row(l.RegRow(1, 0))}),
		retTuple(),
	)
	rep := Program(p, fixtureSpec(l))
	wantViolation(t, rep, Violation{PassBounds, 0,
		"row 159 (ref r159) outside the layout's 159 rows"})
}

func TestBoundsConstantRowWrite(t *testing.T) {
	l := uprog.NewLayout(8)
	p := prog("broken-const-write",
		arith(uop.Arith{Kind: uop.AWrite, A: uop.Row(l.OneRow()), Src: uop.SrcZero}),
		retTuple(),
	)
	rep := Program(p, fixtureSpec(l))
	wantViolation(t, rep, Violation{PassBounds, 0,
		"writes constant row 157 (the one row)"})
}

func TestBoundsUndeclaredOperands(t *testing.T) {
	l := uprog.NewLayout(8)
	p := prog("broken-operands",
		arith(uop.Arith{Kind: uop.ABLC, A: uop.Row(l.RegRow(9, 0)), B: uop.Row(l.RegRow(1, 0))}),
		arith(uop.Arith{Kind: uop.AWriteback, Dst: uop.DstRow,
			DstR: uop.Row(l.RegRow(10, 0)), Src: uop.SrcAnd}),
		retTuple(),
	)
	rep := Program(p, fixtureSpec(l))
	wantViolation(t, rep, Violation{PassBounds, 0,
		"reads register v9, which is not a declared operand"})
	wantViolation(t, rep, Violation{PassBounds, 1,
		"writes register v10, which is not a declared destination"})
}

func TestBoundsBroadcastScratchUndeclared(t *testing.T) {
	l := uprog.NewLayout(8)
	row := uop.Row(l.ScratchRow(uprog.BroadcastScratch, 0))
	p := prog("broken-broadcast",
		arith(uop.Arith{Kind: uop.ABLC, A: row, B: row}),
		retTuple(),
	)
	rep := Program(p, fixtureSpec(l))
	wantViolation(t, rep, Violation{PassBounds, 0,
		"reads the reserved broadcast scratch register without declaring it"})

	// Declaring it (a .vx prologue staged the scalar) clears the finding.
	spec := fixtureSpec(l)
	spec.Reads = append(spec.Reads, l.ScratchID(uprog.BroadcastScratch))
	if rep := Program(p, spec); !rep.OK() {
		t.Errorf("declared broadcast read still flagged: %v", rep.Violations)
	}
}

func TestBoundsExtRowOutOfRange(t *testing.T) {
	l := uprog.NewLayout(8)
	p := prog("broken-ext",
		arith(uop.Arith{Kind: uop.AWrite, A: uop.Row(l.RegRow(3, 0)),
			Src: uop.SrcExt, ExtR: uop.Ext(2)}),
		retTuple(),
	)
	spec := fixtureSpec(l)
	spec.ExtRows = 2
	rep := Program(p, spec)
	wantViolation(t, rep, Violation{PassBounds, 0,
		"data_in row 2 out of range: the VSU drives 2 rows"})
}

func TestLiveScratchReadBeforeWrite(t *testing.T) {
	l := uprog.NewLayout(8)
	row := uop.Row(l.ScratchRow(0, 1))
	p := prog("broken-scratch-live",
		arith(uop.Arith{Kind: uop.ABLC, A: row, B: row}),
		retTuple(),
	)
	rep := Program(p, fixtureSpec(l))
	wantViolation(t, rep, Violation{PassLive, 0,
		"reads scratch s0 segment 1 before any write"})
}

func TestLiveWritebackWithoutBLC(t *testing.T) {
	l := uprog.NewLayout(8)
	p := prog("broken-no-blc",
		arith(uop.Arith{Kind: uop.AWriteback, Dst: uop.DstRow,
			DstR: uop.Row(l.RegRow(3, 0)), Src: uop.SrcAnd}),
		retTuple(),
	)
	rep := Program(p, fixtureSpec(l))
	wantViolation(t, rep, Violation{PassLive, 0,
		"writeback source and has no live bit-line compute result"})
}

func TestLiveSenseInvalidatedByRead(t *testing.T) {
	l := uprog.NewLayout(8)
	a := uop.Row(l.RegRow(1, 0))
	p := prog("broken-sense-clobber",
		arith(uop.Arith{Kind: uop.ABLC, A: a, B: a}),
		arith(uop.Arith{Kind: uop.ARead, A: a, Dst: uop.DstXReg}),
		arith(uop.Arith{Kind: uop.AWriteback, Dst: uop.DstRow,
			DstR: uop.Row(l.RegRow(3, 0)), Src: uop.SrcAnd}),
		retTuple(),
	)
	rep := Program(p, fixtureSpec(l))
	wantViolation(t, rep, Violation{PassLive, 2,
		"writeback source and has no live bit-line compute result"})
}

func TestLiveCarryUndefinedAtBLC(t *testing.T) {
	l := uprog.NewLayout(8)
	a, b := uop.Row(l.RegRow(1, 0)), uop.Row(l.RegRow(2, 0))
	// An add writeback whose blc ran before any carry initialization: the
	// adder captured an undefined carry-in.
	p := prog("broken-carry",
		arith(uop.Arith{Kind: uop.ABLC, A: a, B: b}),
		arith(uop.Arith{Kind: uop.AWriteback, Dst: uop.DstRow,
			DstR: uop.Row(l.RegRow(3, 0)), Src: uop.SrcAdd}),
		retTuple(),
	)
	rep := Program(p, fixtureSpec(l))
	wantViolation(t, rep, Violation{PassLive, 1,
		"add writeback: the carry latch was undefined at the bit-line compute"})
}

func TestLiveLatchReadBeforeLoad(t *testing.T) {
	l := uprog.NewLayout(8)
	p := prog("broken-latch",
		arith(uop.Arith{Kind: uop.ALShift}),
		arith(uop.Arith{Kind: uop.AMaskShift}),
		retTuple(),
	)
	rep := Program(p, fixtureSpec(l))
	wantViolation(t, rep, Violation{PassLive, 0, "reads the cshift latch before it is loaded"})
	wantViolation(t, rep, Violation{PassLive, 0, "reads the spare latch before it is loaded"})
	wantViolation(t, rep, Violation{PassLive, 1, "reads the xreg latch before it is loaded"})
}

func TestMaskedWriteWithoutMaskLoad(t *testing.T) {
	l := uprog.NewLayout(8)
	a := uop.Row(l.RegRow(1, 0))
	p := prog("broken-mask",
		arith(uop.Arith{Kind: uop.ABLC, A: a, B: a}),
		arith(uop.Arith{Kind: uop.AWriteback, Dst: uop.DstRow,
			DstR: uop.Row(l.RegRow(3, 0)), Src: uop.SrcAnd, Masked: true}),
		retTuple(),
	)
	rep := Program(p, fixtureSpec(l))
	wantViolation(t, rep, Violation{PassMask, 1,
		"masked wb before any mask load (power-up mask state)"})
}

func TestMaskClobberedMidLoop(t *testing.T) {
	l := uprog.NewLayout(8)
	a, b := uop.Row(l.RegRow(1, 0)), uop.Row(l.RegRow(2, 0))
	d := uop.Row(l.RegRow(3, 0))
	// Mask loaded from v1 before the loop (pc 0-1); the loop body performs a
	// masked write (pc 3-4), then reloads the mask from v2 (pc 5-6) before
	// branching back: trip 2's masked write sees a different mask than trip
	// 1's — the classic mid-loop clobber.
	p := prog("broken-mask-clobber",
		arith(uop.Arith{Kind: uop.ABLC, A: a, B: a}),
		arith(uop.Arith{Kind: uop.AWriteback, Dst: uop.DstMask, Src: uop.SrcAnd, Spread: uop.SpreadLSB}),
		uop.Tuple{Ctr: uop.Ctr{Kind: uop.CInit, Cnt: uop.Seg0, Val: 3}},
		arith(uop.Arith{Kind: uop.ABLC, A: a, B: b}),
		arith(uop.Arith{Kind: uop.AWriteback, Dst: uop.DstRow, DstR: d, Src: uop.SrcAnd, Masked: true}),
		arith(uop.Arith{Kind: uop.ABLC, A: b, B: b}),
		uop.Tuple{
			Arith: uop.Arith{Kind: uop.AWriteback, Dst: uop.DstMask, Src: uop.SrcAnd, Spread: uop.SpreadLSB},
			Ctr:   uop.Ctr{Kind: uop.CDecr, Cnt: uop.Seg0},
			Ctl:   uop.Ctl{Kind: uop.LBnz, Cnt: uop.Seg0, Target: 3},
		},
		retTuple(),
	)
	rep := Program(p, fixtureSpec(l))
	wantViolation(t, rep, Violation{PassMask, 4,
		"mask clobbered mid-loop: consumed here but loaded at 2 different sites [1 6] across trips"})
}

func TestStructBranchTargetOutOfRange(t *testing.T) {
	l := uprog.NewLayout(8)
	p := prog("broken-target",
		uop.Tuple{Ctl: uop.Ctl{Kind: uop.LJmp, Target: 7}},
		retTuple(),
	)
	rep := Program(p, fixtureSpec(l))
	wantViolation(t, rep, Violation{PassStruct, 0,
		"branch target 7 outside the program [0,2)"})
	if rep.Cycles != -1 {
		t.Errorf("fatal structural finding should stop the run; Cycles = %d", rep.Cycles)
	}
}

func TestStructMissingRet(t *testing.T) {
	l := uprog.NewLayout(8)
	a := uop.Row(l.RegRow(1, 0))
	p := prog("broken-no-ret",
		arith(uop.Arith{Kind: uop.ARead, A: a, Dst: uop.DstXReg}),
	)
	rep := Program(p, fixtureSpec(l))
	wantViolation(t, rep, Violation{PassStruct, 0,
		"control falls off the end of the program (missing ret)"})
	wantViolation(t, rep, Violation{PassStruct, -1, "no reachable ret"})
}

func TestStructEmptyProgram(t *testing.T) {
	rep := Program(prog("broken-empty"), fixtureSpec(uprog.NewLayout(8)))
	wantViolation(t, rep, Violation{PassStruct, -1, "empty program: no tuples, no ret"})
}

func TestStructUnreachableTuple(t *testing.T) {
	l := uprog.NewLayout(8)
	a := uop.Row(l.RegRow(1, 0))
	p := prog("broken-unreachable",
		uop.Tuple{Ctl: uop.Ctl{Kind: uop.LJmp, Target: 2}},
		arith(uop.Arith{Kind: uop.ARead, A: a, Dst: uop.DstXReg}),
		retTuple(),
	)
	rep := Program(p, fixtureSpec(l))
	wantViolation(t, rep, Violation{PassStruct, 1, "unreachable tuple"})
}

func TestStructCounterBeforeInit(t *testing.T) {
	l := uprog.NewLayout(8)
	a := uop.Row(l.RegRow(1, 0))
	// The bnz consults a different counter than the decr: reporting a
	// before-init use marks the counter initialized to suppress cascades,
	// so two findings on one counter at one pc collapse into the first.
	p := prog("broken-counter",
		arith(uop.Arith{Kind: uop.ARead, A: uop.RowBy(a.Base, uop.Seg2, 1), Dst: uop.DstXReg}),
		uop.Tuple{
			Ctr: uop.Ctr{Kind: uop.CDecr, Cnt: uop.Seg3},
			Ctl: uop.Ctl{Kind: uop.LBnz, Cnt: uop.Seg1, Target: 2},
		},
		retTuple(),
	)
	rep := Program(p, fixtureSpec(l))
	wantViolation(t, rep, Violation{PassStruct, 0,
		"row ref r4+1*i(seg_cnt[2]) used before seg_cnt[2] is initialized"})
	wantViolation(t, rep, Violation{PassStruct, 1, "decr of seg_cnt[3] before any init"})
	wantViolation(t, rep, Violation{PassStruct, 1, "bnz consults seg_cnt[1] before any init"})
}

func TestStructInterleavedLoops(t *testing.T) {
	l := uprog.NewLayout(8)
	a := uop.Row(l.RegRow(1, 0))
	rdT := arith(uop.Arith{Kind: uop.ARead, A: a, Dst: uop.DstXReg})
	// Region [0,2] (bnz at 2 → 0) and region [1,3] (bnz at 3 → 1) interleave.
	p := prog("broken-interleave",
		uop.Tuple{Ctr: uop.Ctr{Kind: uop.CInit, Cnt: uop.Seg0, Val: 2}},
		uop.Tuple{Ctr: uop.Ctr{Kind: uop.CInit, Cnt: uop.Seg1, Val: 2}},
		uop.Tuple{
			Arith: rdT.Arith,
			Ctr:   uop.Ctr{Kind: uop.CDecr, Cnt: uop.Seg0},
			Ctl:   uop.Ctl{Kind: uop.LBnz, Cnt: uop.Seg0, Target: 0},
		},
		uop.Tuple{
			Ctr: uop.Ctr{Kind: uop.CDecr, Cnt: uop.Seg1},
			Ctl: uop.Ctl{Kind: uop.LBnz, Cnt: uop.Seg1, Target: 1},
		},
		retTuple(),
	)
	rep := Program(p, fixtureSpec(l))
	wantViolation(t, rep, Violation{PassStruct, 3,
		"loops [0,2] and [1,3] interleave without nesting"})
}

func TestStructBadTripCount(t *testing.T) {
	l := uprog.NewLayout(8)
	p := prog("broken-trip",
		uop.Tuple{Ctr: uop.Ctr{Kind: uop.CInit, Cnt: uop.Seg0, Val: 0}},
		retTuple(),
	)
	rep := Program(p, fixtureSpec(l))
	wantViolation(t, rep, Violation{PassStruct, 0,
		"init seg_cnt[0] with trip count 0; loops need a count >= 1"})
}

func TestStructInvalidArith(t *testing.T) {
	l := uprog.NewLayout(8)
	a := uop.Row(l.RegRow(1, 0))
	p := prog("broken-arith",
		arith(uop.Arith{Kind: uop.ARead, A: a, Dst: uop.DstCarry}),
		retTuple(),
	)
	rep := Program(p, fixtureSpec(l))
	wantViolation(t, rep, Violation{PassStruct, 0,
		"invalid arithmetic μop: rd cannot target carry"})
	if rep.Cycles != -1 {
		t.Errorf("fatal structural finding should stop the run; Cycles = %d", rep.Cycles)
	}
}

func TestCyclesRunawayLoop(t *testing.T) {
	l := uprog.NewLayout(8)
	p := prog("broken-runaway",
		uop.Tuple{Ctl: uop.Ctl{Kind: uop.LJmp, Target: 0}},
		retTuple(),
	)
	spec := fixtureSpec(l)
	spec.MaxCycles = 64
	rep := Program(p, spec)
	wantViolation(t, rep, Violation{PassCycles, 0,
		"exceeds the 64-cycle watchdog budget without returning"})
	if rep.Cycles != -1 {
		t.Errorf("budget exhaustion should report Cycles = -1, got %d", rep.Cycles)
	}
}

// TestViolationString pins the rendering the CLI emits.
func TestViolationString(t *testing.T) {
	v := Violation{PassBounds, 3, "boom"}
	if got := v.String(); got != "bounds@3: boom" {
		t.Errorf("violation string = %q", got)
	}
	v = Violation{PassStruct, -1, "no reachable ret"}
	if got := v.String(); got != "struct: no reachable ret" {
		t.Errorf("whole-program violation string = %q", got)
	}
}
