package check

import (
	"fmt"

	"repro/internal/uop"
	"repro/internal/uprog"
)

// The ROM sweep: every generator × operand shape × masked/unmasked, with the
// Spec each generator's contract implies. cmd/uprogcheck and the sweep test
// both run AllCases; adding a generator to the ROM means adding it here.

// Factors lists every parallelization factor NewLayout accepts (n must
// divide 32). The sweep covers all of them — a superset of the paper's
// EVE-4..EVE-32 design points.
var Factors = []int{1, 2, 4, 8, 16, 32}

// Case pairs one generated micro-program with its verification spec.
type Case struct {
	// Name is unique across the whole sweep: "<program>/n=<factor>[/m]".
	Name string
	Prog *uop.Program
	Spec Spec
}

// Cases enumerates the ROM for one layout. The register convention matches
// the EVE cost model: d, a, b = 3, 1, 2, with v0 the mask register.
func Cases(l uprog.Layout) []Case {
	const d, a, b = 3, 1, 2
	const maskReg = 0 // RVV v0

	var cs []Case
	add := func(p *uop.Program, masked bool, reads, writes []int, extRows int) {
		name := fmt.Sprintf("%s/n=%d", p.Name, l.N)
		if masked {
			name += "/m"
			reads = append(append([]int{}, reads...), maskReg)
		}
		cs = append(cs, Case{
			Name: name,
			Prog: p,
			Spec: Spec{Layout: l, Reads: reads, Writes: writes, ExtRows: extRows},
		})
	}
	// both adds the unmasked and masked variant of one generator.
	both := func(gen func(masked bool) *uop.Program, reads, writes []int, extRows int) {
		add(gen(false), false, reads, writes, extRows)
		add(gen(true), true, reads, writes, extRows)
	}

	logicSrcs := []uop.Src{uop.SrcAnd, uop.SrcNand, uop.SrcOr, uop.SrcNor, uop.SrcXor, uop.SrcXnor}

	both(func(m bool) *uop.Program { return uprog.Copy(l, d, a, m) }, []int{a}, []int{d}, 0)
	both(func(m bool) *uop.Program { return uprog.Not(l, d, a, m) }, []int{a}, []int{d}, 0)
	for _, src := range logicSrcs {
		src := src
		both(func(m bool) *uop.Program { return uprog.Logic(l, src, d, a, b, m) },
			[]int{a, b}, []int{d}, 0)
	}
	both(func(m bool) *uop.Program { return uprog.Add(l, d, a, b, m) }, []int{a, b}, []int{d}, 0)
	both(func(m bool) *uop.Program { return uprog.Sub(l, d, a, b, m) }, []int{a, b}, []int{d}, 0)
	both(func(m bool) *uop.Program { return uprog.RSub(l, d, a, b, m) }, []int{a, b}, []int{d}, 0)

	both(func(m bool) *uop.Program { return uprog.SatAddU(l, d, a, b, m) }, []int{a, b}, []int{d}, 0)
	both(func(m bool) *uop.Program { return uprog.SatSubU(l, d, a, b, m) }, []int{a, b}, []int{d}, 0)
	// The signed saturating forms stage clamp constants through data_in
	// (SatConstRows: Segs INT32_MAX rows then Segs INT32_MIN rows).
	both(func(m bool) *uop.Program { return uprog.SatAdd(l, d, a, b, m) }, []int{a, b}, []int{d}, 2*l.Segs)
	both(func(m bool) *uop.Program { return uprog.SatSub(l, d, a, b, m) }, []int{a, b}, []int{d}, 2*l.Segs)

	for _, max := range []bool{false, true} {
		for _, signed := range []bool{false, true} {
			max, signed := max, signed
			both(func(m bool) *uop.Program { return uprog.MinMax(l, max, signed, d, a, b, m) },
				[]int{a, b}, []int{d}, 0)
		}
	}

	// Immediate shifts: boundary amounts (0, 1, 31), a mid-segment amount
	// (7), and the segment size itself (whole-segment moves), deduplicated.
	ks := []int{0, 1, 7, 31}
	if l.N < 32 {
		dup := false
		for _, k := range ks {
			if k == l.N {
				dup = true
			}
		}
		if !dup {
			ks = append(ks, l.N)
		}
	}
	for _, kind := range []uprog.ShiftKind{uprog.ShSLL, uprog.ShSRL, uprog.ShSRA} {
		for _, k := range ks {
			kind, k := kind, k
			ext := 0
			if kind == uprog.ShSRA && k%l.N != 0 {
				ext = 1 // TopBitsRow for the partial segment's sign fill
			}
			both(func(m bool) *uop.Program { return uprog.ShiftImm(l, kind, d, a, k, m) },
				[]int{a}, []int{d}, ext)
		}
		kind := kind
		both(func(m bool) *uop.Program { return uprog.ShiftVV(l, kind, d, a, b, m) },
			[]int{a, b}, []int{d}, 0)
	}

	both(func(m bool) *uop.Program { return uprog.WriteExt(l, d, m) }, nil, []int{d}, l.Segs)
	add(uprog.StreamOut(l, a), false, []int{a}, nil, 0)
	add(uprog.Merge(l, d, a, b), false, []int{maskReg, a, b}, []int{d}, 0)

	both(func(m bool) *uop.Program { return uprog.Mul(l, d, a, b, m, false) }, []int{a, b}, []int{d}, 0)
	// vmacc reads its destination as the accumulator seed.
	both(func(m bool) *uop.Program { return uprog.Mul(l, d, a, b, m, true) }, []int{a, b, d}, []int{d}, 0)
	both(func(m bool) *uop.Program { return uprog.MulH(l, d, a, b, m) }, []int{a, b}, []int{d}, 0)

	for _, kind := range []uprog.DivKind{uprog.DivU, uprog.DivS, uprog.RemU, uprog.RemS} {
		kind := kind
		both(func(m bool) *uop.Program { return uprog.DivRem(l, kind, d, a, b, m) },
			[]int{a, b}, []int{d}, uprog.BitConstRowCount(l))
	}

	for _, kind := range []uprog.CmpKind{
		uprog.CmpEq, uprog.CmpNe, uprog.CmpLtu, uprog.CmpLt, uprog.CmpGeu,
		uprog.CmpGe, uprog.CmpGtu, uprog.CmpGt, uprog.CmpLeu, uprog.CmpLe,
	} {
		kind := kind
		both(func(m bool) *uop.Program { return uprog.Compare(l, kind, d, a, b, m) },
			[]int{a, b}, []int{d}, 0)
	}

	for _, src := range logicSrcs {
		add(uprog.MaskLogic(l, src, d, a, b), false, []int{a, b}, []int{d}, 0)
	}
	both(func(m bool) *uop.Program { return uprog.Zero(l, d, m) }, nil, []int{d}, 0)

	return cs
}

// AllCases enumerates the ROM across every valid parallelization factor.
func AllCases() []Case {
	var cs []Case
	for _, n := range Factors {
		cs = append(cs, Cases(uprog.NewLayout(n))...)
	}
	return cs
}
