package uprog

import (
	"math/rand"
	"testing"

	"repro/internal/circuits"
	"repro/internal/uop"
)

// allN is every parallelization factor EVE supports.
var allN = []int{1, 2, 4, 8, 16, 32}

const testElems = 4

// edge values exercised in every binary-operation test, combined with random
// operands.
var edges = []uint32{0, 1, 2, 3, 0x7FFFFFFF, 0x80000000, 0x80000001, 0xFFFFFFFF, 0xFFFFFFFE, 42}

// opnds returns paired operand vectors of length testElems mixing edge cases
// and random values.
func opnds(rng *rand.Rand) (a, b []uint32) {
	a = make([]uint32, testElems)
	b = make([]uint32, testElems)
	for i := range a {
		if rng.Intn(2) == 0 {
			a[i] = edges[rng.Intn(len(edges))]
		} else {
			a[i] = rng.Uint32()
		}
		if rng.Intn(2) == 0 {
			b[i] = edges[rng.Intn(len(edges))]
		} else {
			b[i] = rng.Uint32()
		}
	}
	return a, b
}

// runBinary stores a in v1 and b in v2, runs the program, and returns v3.
func runBinary(t *testing.T, m *Machine, p *uop.Program, a, b []uint32, env *circuits.Env) []uint32 {
	t.Helper()
	for i := range a {
		m.StoreElement(1, i, a[i])
		m.StoreElement(2, i, b[i])
	}
	m.Run(p, env)
	out := make([]uint32, len(a))
	for i := range out {
		out[i] = m.LoadElement(3, i)
	}
	return out
}

// checkBinary validates a binary macro-op against a Go reference for every
// parallelization factor, over several random operand batches.
func checkBinary(t *testing.T, name string, gen func(l Layout) *uop.Program,
	ref func(a, b uint32) uint32, env func(l Layout, cols int) *circuits.Env) {
	t.Helper()
	for _, n := range allN {
		m := NewMachine(n, testElems)
		p := gen(m.Layout)
		rng := rand.New(rand.NewSource(int64(n) * 7919))
		for batch := 0; batch < 4; batch++ {
			a, b := opnds(rng)
			var e *circuits.Env
			if env != nil {
				e = env(m.Layout, m.Stack.Array().Cols())
			}
			got := runBinary(t, m, p, a, b, e)
			for i := range got {
				want := ref(a[i], b[i])
				if got[i] != want {
					t.Fatalf("%s n=%d elem %d: %#x op %#x = %#x, want %#x",
						name, n, i, a[i], b[i], got[i], want)
				}
			}
		}
	}
}

func TestAdd(t *testing.T) {
	checkBinary(t, "vadd",
		func(l Layout) *uop.Program { return Add(l, 3, 1, 2, false) },
		func(a, b uint32) uint32 { return a + b }, nil)
}

func TestSub(t *testing.T) {
	checkBinary(t, "vsub",
		func(l Layout) *uop.Program { return Sub(l, 3, 1, 2, false) },
		func(a, b uint32) uint32 { return a - b }, nil)
}

func TestRSub(t *testing.T) {
	checkBinary(t, "vrsub",
		func(l Layout) *uop.Program { return RSub(l, 3, 1, 2, false) },
		func(a, b uint32) uint32 { return b - a }, nil)
}

func TestLogicOps(t *testing.T) {
	cases := []struct {
		src uop.Src
		ref func(a, b uint32) uint32
	}{
		{uop.SrcAnd, func(a, b uint32) uint32 { return a & b }},
		{uop.SrcOr, func(a, b uint32) uint32 { return a | b }},
		{uop.SrcXor, func(a, b uint32) uint32 { return a ^ b }},
		{uop.SrcNand, func(a, b uint32) uint32 { return ^(a & b) }},
		{uop.SrcNor, func(a, b uint32) uint32 { return ^(a | b) }},
		{uop.SrcXnor, func(a, b uint32) uint32 { return ^(a ^ b) }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.src.String(), func(t *testing.T) {
			checkBinary(t, "vlogic."+c.src.String(),
				func(l Layout) *uop.Program { return Logic(l, c.src, 3, 1, 2, false) },
				c.ref, nil)
		})
	}
}

func TestCopyAndNot(t *testing.T) {
	checkBinary(t, "vmv",
		func(l Layout) *uop.Program { return Copy(l, 3, 1, false) },
		func(a, _ uint32) uint32 { return a }, nil)
	checkBinary(t, "vnot",
		func(l Layout) *uop.Program { return Not(l, 3, 1, false) },
		func(a, _ uint32) uint32 { return ^a }, nil)
}

func TestZero(t *testing.T) {
	checkBinary(t, "vzero",
		func(l Layout) *uop.Program { return Zero(l, 3, false) },
		func(_, _ uint32) uint32 { return 0 }, nil)
}

func TestMaskedAdd(t *testing.T) {
	for _, n := range allN {
		m := NewMachine(n, testElems)
		p := Add(m.Layout, 3, 1, 2, true)
		a := []uint32{10, 20, 30, 40}
		b := []uint32{1, 2, 3, 4}
		old := []uint32{100, 200, 300, 400}
		for i := range a {
			m.StoreElement(1, i, a[i])
			m.StoreElement(2, i, b[i])
			m.StoreElement(3, i, old[i])
			// v0 mask: odd elements enabled.
			var mv uint32
			if i%2 == 1 {
				mv = 1
			}
			m.StoreElement(0, i, mv)
		}
		m.Run(p, nil)
		for i := range a {
			want := old[i]
			if i%2 == 1 {
				want = a[i] + b[i]
			}
			if got := m.LoadElement(3, i); got != want {
				t.Fatalf("n=%d masked add elem %d = %d, want %d", n, i, got, want)
			}
		}
	}
}

func TestMerge(t *testing.T) {
	for _, n := range allN {
		m := NewMachine(n, testElems)
		p := Merge(m.Layout, 3, 1, 2)
		a := []uint32{11, 22, 33, 44}
		b := []uint32{55, 66, 77, 88}
		for i := range a {
			m.StoreElement(1, i, a[i])
			m.StoreElement(2, i, b[i])
			m.StoreElement(0, i, uint32(i%2))
		}
		m.Run(p, nil)
		for i := range a {
			want := b[i]
			if i%2 == 1 {
				want = a[i]
			}
			if got := m.LoadElement(3, i); got != want {
				t.Fatalf("n=%d merge elem %d = %d, want %d", n, i, got, want)
			}
		}
	}
}

func TestMaskLogic(t *testing.T) {
	for _, n := range allN {
		m := NewMachine(n, testElems)
		p := MaskLogic(m.Layout, uop.SrcAnd, 3, 1, 2)
		bits := [][2]uint32{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
		for i, bb := range bits {
			m.StoreElement(1, i, bb[0])
			m.StoreElement(2, i, bb[1])
		}
		m.Run(p, nil)
		for i, bb := range bits {
			if got := m.LoadElement(3, i) & 1; got != bb[0]&bb[1] {
				t.Fatalf("n=%d vmand elem %d = %d", n, i, got)
			}
		}
	}
}

func TestCompare(t *testing.T) {
	refs := map[CmpKind]func(a, b uint32) uint32{
		CmpEq:  func(a, b uint32) uint32 { return b2u(a == b) },
		CmpNe:  func(a, b uint32) uint32 { return b2u(a != b) },
		CmpLtu: func(a, b uint32) uint32 { return b2u(a < b) },
		CmpGeu: func(a, b uint32) uint32 { return b2u(a >= b) },
		CmpGtu: func(a, b uint32) uint32 { return b2u(a > b) },
		CmpLeu: func(a, b uint32) uint32 { return b2u(a <= b) },
		CmpLt:  func(a, b uint32) uint32 { return b2u(int32(a) < int32(b)) },
		CmpGe:  func(a, b uint32) uint32 { return b2u(int32(a) >= int32(b)) },
		CmpGt:  func(a, b uint32) uint32 { return b2u(int32(a) > int32(b)) },
		CmpLe:  func(a, b uint32) uint32 { return b2u(int32(a) <= int32(b)) },
	}
	for kind, ref := range refs {
		kind, ref := kind, ref
		t.Run(kind.String(), func(t *testing.T) {
			checkBinary(t, "vcmp."+kind.String(),
				func(l Layout) *uop.Program { return Compare(l, kind, 3, 1, 2, false) },
				ref, nil)
		})
	}
}

func TestMinMax(t *testing.T) {
	cases := []struct {
		name        string
		max, signed bool
		ref         func(a, b uint32) uint32
	}{
		{"minu", false, false, func(a, b uint32) uint32 { return min(a, b) }},
		{"maxu", true, false, func(a, b uint32) uint32 { return max(a, b) }},
		{"min", false, true, func(a, b uint32) uint32 { return uint32(min(int32(a), int32(b))) }},
		{"max", true, true, func(a, b uint32) uint32 { return uint32(max(int32(a), int32(b))) }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			checkBinary(t, "v"+c.name,
				func(l Layout) *uop.Program { return MinMax(l, c.max, c.signed, 3, 1, 2, false) },
				c.ref, nil)
		})
	}
}

func TestShiftImm(t *testing.T) {
	shamts := []int{0, 1, 2, 3, 5, 7, 8, 15, 16, 17, 31}
	for _, n := range allN {
		m := NewMachine(n, testElems)
		rng := rand.New(rand.NewSource(int64(n)))
		for _, k := range shamts {
			for _, kind := range []ShiftKind{ShSLL, ShSRL, ShSRA} {
				p := ShiftImm(m.Layout, kind, 3, 1, k, false)
				env := &circuits.Env{}
				if kind == ShSRA && k%n != 0 {
					env.ExtRows = append(env.ExtRows, TopBitsRow(m.Layout, m.Stack.Array().Cols(), k%n))
				}
				a, b := opnds(rng)
				got := runBinary(t, m, p, a, b, env)
				for i := range got {
					var want uint32
					switch kind {
					case ShSLL:
						want = a[i] << uint(k)
					case ShSRL:
						want = a[i] >> uint(k)
					case ShSRA:
						want = uint32(int32(a[i]) >> uint(k))
					}
					if got[i] != want {
						t.Fatalf("n=%d v%s.vi(%d) elem %d: %#x -> %#x, want %#x",
							n, kind, k, i, a[i], got[i], want)
					}
				}
			}
		}
	}
}

func TestShiftVV(t *testing.T) {
	for _, n := range allN {
		m := NewMachine(n, testElems)
		rng := rand.New(rand.NewSource(int64(n) * 31))
		for _, kind := range []ShiftKind{ShSLL, ShSRL, ShSRA} {
			p := ShiftVV(m.Layout, kind, 3, 1, 2, false)
			for batch := 0; batch < 3; batch++ {
				a, _ := opnds(rng)
				b := make([]uint32, testElems)
				for i := range b {
					b[i] = uint32(rng.Intn(32))
				}
				got := runBinary(t, m, p, a, b, nil)
				for i := range got {
					k := uint(b[i] & 31)
					var want uint32
					switch kind {
					case ShSLL:
						want = a[i] << k
					case ShSRL:
						want = a[i] >> k
					case ShSRA:
						want = uint32(int32(a[i]) >> k)
					}
					if got[i] != want {
						t.Fatalf("n=%d v%s.vv elem %d: %#x shift %d -> %#x, want %#x",
							n, kind, i, a[i], k, got[i], want)
					}
				}
			}
		}
	}
}

func TestMul(t *testing.T) {
	checkBinary(t, "vmul",
		func(l Layout) *uop.Program { return Mul(l, 3, 1, 2, false, false) },
		func(a, b uint32) uint32 { return a * b }, nil)
}

func TestMacc(t *testing.T) {
	for _, n := range allN {
		m := NewMachine(n, testElems)
		p := Mul(m.Layout, 3, 1, 2, false, true)
		a := []uint32{3, 5, 0xFFFFFFFF, 1 << 20}
		b := []uint32{7, 11, 2, 1 << 13}
		d := []uint32{1, 2, 3, 4}
		for i := range a {
			m.StoreElement(1, i, a[i])
			m.StoreElement(2, i, b[i])
			m.StoreElement(3, i, d[i])
		}
		m.Run(p, nil)
		for i := range a {
			want := d[i] + a[i]*b[i]
			if got := m.LoadElement(3, i); got != want {
				t.Fatalf("n=%d vmacc elem %d = %#x, want %#x", n, i, got, want)
			}
		}
	}
}

func TestMulH(t *testing.T) {
	checkBinary(t, "vmulhu",
		func(l Layout) *uop.Program { return MulH(l, 3, 1, 2, false) },
		func(a, b uint32) uint32 { return uint32(uint64(a) * uint64(b) >> 32) }, nil)
}

func TestDivRem(t *testing.T) {
	divEnv := func(l Layout, cols int) *circuits.Env {
		return &circuits.Env{ExtRows: BitConstRows(l, cols)}
	}
	refs := map[DivKind]func(a, b uint32) uint32{
		DivU: func(a, b uint32) uint32 {
			if b == 0 {
				return ^uint32(0)
			}
			return a / b
		},
		RemU: func(a, b uint32) uint32 {
			if b == 0 {
				return a
			}
			return a % b
		},
		DivS: func(a, b uint32) uint32 {
			sa, sb := int32(a), int32(b)
			switch {
			case sb == 0:
				return ^uint32(0)
			case sa == -1<<31 && sb == -1:
				return a
			default:
				return uint32(sa / sb)
			}
		},
		RemS: func(a, b uint32) uint32 {
			sa, sb := int32(a), int32(b)
			switch {
			case sb == 0:
				return a
			case sa == -1<<31 && sb == -1:
				return 0
			default:
				return uint32(sa % sb)
			}
		},
	}
	for kind, ref := range refs {
		kind, ref := kind, ref
		t.Run(kind.String(), func(t *testing.T) {
			checkBinary(t, kind.String(),
				func(l Layout) *uop.Program { return DivRem(l, kind, 3, 1, 2, false) },
				ref, divEnv)
		})
	}
}

func TestDivSignedEdges(t *testing.T) {
	cases := [][2]uint32{
		{0x80000000, 0xFFFFFFFF}, // MinInt32 / -1 overflow
		{0x80000000, 1},
		{100, 0}, {0xFFFFFF9C, 0}, // divide by zero, positive and negative
		{7, 0xFFFFFFFE},          // 7 / -2
		{0xFFFFFFF9, 2},          // -7 / 2
		{0xFFFFFFF9, 0xFFFFFFFE}, // -7 / -2
	}
	for _, n := range []int{1, 8, 32} {
		m := NewMachine(n, testElems)
		pd := DivRem(m.Layout, DivS, 3, 1, 2, false)
		pr := DivRem(m.Layout, RemS, 4, 1, 2, false)
		for _, c := range cases {
			a := []uint32{c[0], c[0], c[0], c[0]}
			b := []uint32{c[1], c[1], c[1], c[1]}
			env := &circuits.Env{ExtRows: BitConstRows(m.Layout, m.Stack.Array().Cols())}
			got := runBinary(t, m, pd, a, b, env)
			env2 := &circuits.Env{ExtRows: BitConstRows(m.Layout, m.Stack.Array().Cols())}
			m.Run(pr, env2)
			gotR := m.LoadElement(4, 0)

			sa, sb := int32(c[0]), int32(c[1])
			var wantQ, wantR uint32
			switch {
			case sb == 0:
				wantQ, wantR = ^uint32(0), c[0]
			case sa == -1<<31 && sb == -1:
				wantQ, wantR = c[0], 0
			default:
				wantQ, wantR = uint32(sa/sb), uint32(sa%sb)
			}
			if got[0] != wantQ {
				t.Errorf("n=%d vdiv(%#x,%#x) = %#x, want %#x", n, c[0], c[1], got[0], wantQ)
			}
			if gotR != wantR {
				t.Errorf("n=%d vrem(%#x,%#x) = %#x, want %#x", n, c[0], c[1], gotR, wantR)
			}
		}
	}
}

func TestWriteExtBroadcast(t *testing.T) {
	for _, n := range allN {
		m := NewMachine(n, testElems)
		p := WriteExt(m.Layout, 3, false)
		const x = 0xDEADBEEF
		env := &circuits.Env{ExtRows: BroadcastRows(m.Layout, m.Stack.Array().Cols(), x)}
		m.Run(p, env)
		for i := 0; i < testElems; i++ {
			if got := m.LoadElement(3, i); got != x {
				t.Fatalf("n=%d broadcast elem %d = %#x", n, i, got)
			}
		}
	}
}

func TestStreamOut(t *testing.T) {
	for _, n := range allN {
		m := NewMachine(n, testElems)
		vals := []uint32{0x01020304, 0xA5A5A5A5, 0, 0xFFFFFFFF}
		for i, v := range vals {
			m.StoreElement(5, i, v)
		}
		env := &circuits.Env{}
		m.Run(StreamOut(m.Layout, 5), env)
		if len(env.Out) != m.Layout.Segs {
			t.Fatalf("n=%d streamed %d rows, want %d", n, len(env.Out), m.Layout.Segs)
		}
		// Reassemble elements from the streamed segment rows.
		for i, v := range vals {
			var got uint32
			for s, row := range env.Out {
				for b := 0; b < n; b++ {
					if row.Bit(i*n + b) {
						got |= 1 << uint(s*n+b)
					}
				}
			}
			if got != v {
				t.Fatalf("n=%d stream elem %d = %#x, want %#x", n, i, got, v)
			}
		}
	}
}

// TestCycleCountMatchesRun verifies the data-independence contract: the
// counting executor (no datapath) and the full run take identical cycles.
func TestCycleCountMatchesRun(t *testing.T) {
	for _, n := range []int{1, 4, 32} {
		m1 := NewMachine(n, testElems)
		m2 := NewMachine(n, testElems)
		progs := []*uop.Program{
			Add(m1.Layout, 3, 1, 2, false),
			Sub(m1.Layout, 3, 1, 2, false),
			Mul(m1.Layout, 3, 1, 2, false, false),
			Compare(m1.Layout, CmpLt, 3, 1, 2, false),
			ShiftImm(m1.Layout, ShSLL, 3, 1, 7, false),
			MinMax(m1.Layout, true, true, 3, 1, 2, false),
		}
		rng := rand.New(rand.NewSource(99))
		for _, p := range progs {
			a, b := opnds(rng)
			for i := range a {
				m1.StoreElement(1, i, a[i])
				m1.StoreElement(2, i, b[i])
			}
			cRun := m1.Run(p, nil)
			cCount := m2.CountCycles(p)
			if cRun != cCount {
				t.Errorf("n=%d %s: Run=%d cycles, CountCycles=%d", n, p.Name, cRun, cCount)
			}
		}
	}
}

// TestLatencyShrinksWithParallelization checks the §II headline: macro-op
// latency decreases as the parallelization factor grows.
func TestLatencyShrinksWithParallelization(t *testing.T) {
	gens := map[string]func(l Layout) *uop.Program{
		"add": func(l Layout) *uop.Program { return Add(l, 3, 1, 2, false) },
		"mul": func(l Layout) *uop.Program { return Mul(l, 3, 1, 2, false, false) },
	}
	for name, gen := range gens {
		prev := 1 << 30
		for _, n := range allN {
			m := NewMachine(n, testElems)
			c := m.CountCycles(gen(m.Layout))
			if c >= prev {
				t.Errorf("%s latency did not shrink: n=%d took %d cycles, previous factor took %d",
					name, n, c, prev)
			}
			prev = c
		}
	}
	// Bit-serial multiply must be "thousands of cycles" (§I).
	m := NewMachine(1, testElems)
	if c := m.CountCycles(Mul(m.Layout, 3, 1, 2, false, false)); c < 2000 {
		t.Errorf("EVE-1 multiply took only %d cycles; expected thousands", c)
	}
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// TestSaturatingOps validates vsaddu/vsadd/vssubu/vssub against Go
// saturating semantics for every parallelization factor.
func TestSaturatingOps(t *testing.T) {
	satEnv := func(l Layout, cols int) *circuits.Env {
		return &circuits.Env{ExtRows: SatConstRows(l, cols)}
	}
	cases := []struct {
		name string
		gen  func(l Layout) *uop.Program
		ref  func(a, b uint32) uint32
		env  func(l Layout, cols int) *circuits.Env
	}{
		{"vsaddu", func(l Layout) *uop.Program { return SatAddU(l, 3, 1, 2, false) },
			func(a, b uint32) uint32 {
				if s := uint64(a) + uint64(b); s > 0xFFFFFFFF {
					return 0xFFFFFFFF
				}
				return a + b
			}, nil},
		{"vssubu", func(l Layout) *uop.Program { return SatSubU(l, 3, 1, 2, false) },
			func(a, b uint32) uint32 {
				if b > a {
					return 0
				}
				return a - b
			}, nil},
		{"vsadd", func(l Layout) *uop.Program { return SatAdd(l, 3, 1, 2, false) },
			func(a, b uint32) uint32 {
				s := int64(int32(a)) + int64(int32(b))
				if s > 0x7FFFFFFF {
					return 0x7FFFFFFF
				}
				if s < -0x80000000 {
					return 0x80000000
				}
				return uint32(s)
			}, satEnv},
		{"vssub", func(l Layout) *uop.Program { return SatSub(l, 3, 1, 2, false) },
			func(a, b uint32) uint32 {
				s := int64(int32(a)) - int64(int32(b))
				if s > 0x7FFFFFFF {
					return 0x7FFFFFFF
				}
				if s < -0x80000000 {
					return 0x80000000
				}
				return uint32(s)
			}, satEnv},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			checkBinary(t, c.name,
				func(l Layout) *uop.Program { return c.gen(l) },
				c.ref, c.env)
		})
	}
}
