package uprog

import (
	"errors"
	"testing"

	"repro/internal/uop"
)

// runawayProgram is a sequencer bug in miniature: tuple 0 jumps to itself
// forever.
func runawayProgram() *uop.Program {
	return &uop.Program{
		Name: "runaway",
		Tuples: []uop.Tuple{
			{Ctl: uop.Ctl{Kind: uop.LJmp, Target: 0}},
		},
	}
}

// TestWatchdogAbortsRunaway: a micro-program that never returns trips the
// cycle-budget watchdog with a typed *CycleLimitError carrying the program
// name, abort PC, and the budget that was exceeded.
func TestWatchdogAbortsRunaway(t *testing.T) {
	m := NewMachine(4, testElems)
	m.MaxCycles = 100
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("runaway micro-program did not trip the watchdog")
		}
		err, ok := r.(error)
		if !ok {
			t.Fatalf("watchdog panicked with %T, want error", r)
		}
		var cle *CycleLimitError
		if !errors.As(err, &cle) {
			t.Fatalf("watchdog panicked with %v, want *CycleLimitError", err)
		}
		if cle.Program != "runaway" {
			t.Errorf("Program = %q, want runaway", cle.Program)
		}
		if cle.Limit != 100 {
			t.Errorf("Limit = %d, want 100", cle.Limit)
		}
		if cle.PC != 0 {
			t.Errorf("PC = %d, want 0 (the self-loop tuple)", cle.PC)
		}
	}()
	m.Run(runawayProgram(), nil)
}

// TestWatchdogDefaultBudget: a zero MaxCycles selects DefaultMaxCycles, and
// well-formed micro-programs run far below it.
func TestWatchdogDefaultBudget(t *testing.T) {
	m := NewMachine(4, testElems)
	l := m.Layout
	m.StoreElement(1, 0, 21)
	m.StoreElement(2, 0, 21)
	m.Run(Add(l, 3, 1, 2, false), nil)
	if got := m.LoadElement(3, 0); got != 42 {
		t.Fatalf("add under default watchdog = %d, want 42", got)
	}
}
