package uprog

import (
	"repro/internal/bitmat"
	"repro/internal/uop"
)

// Saturating arithmetic (RVV vsaddu/vsadd/vssubu/vssub — part of the "all
// 32-bit integer instructions" EVE supports, §I). The pattern is always:
// compute the wrapped result, derive the overflow condition into the mask
// latches from the operands' and result's top-segment sign bits (or the
// adder's final carry, for the unsigned forms), then overwrite the
// saturated lanes with the clamp constant under predication.
//
// The signed forms need the clamp constants staged through the data_in
// port: rows 0..Segs-1 hold the INT32_MAX segment patterns and rows
// Segs..2·Segs-1 the INT32_MIN patterns (SatConstRows builds them).
//
// Scratch usage: 0 = wrapped result, 1..3 = single-row sign scratch,
// 4 = operand complement, 5 = masked-form staging.

// SatConstRows builds the data_in rows the signed saturating forms expect.
func SatConstRows(l Layout, cols int) []bitmat.Row {
	rows := make([]bitmat.Row, 2*l.Segs)
	maxRows := BroadcastRows(l, cols, 0x7FFFFFFF)
	minRows := BroadcastRows(l, cols, 0x80000000)
	copy(rows, maxRows)
	copy(rows[l.Segs:], minRows)
	return rows
}

// satFinish copies the clamped scratch result to the destination, honoring
// v0 predication for masked forms.
func (as *asm) satFinish(d, t int, masked bool) {
	if masked {
		as.loadMaskFromRow(as.regSeg(maskReg, 0), uop.SpreadLSB, false)
	}
	as.loop(uop.Bit1, as.l.Segs, func() {
		as.copySeg(as.reg(d, uop.Bit1), as.reg(t, uop.Bit1), masked)
	})
	as.ret()
}

// SatAddU generates d ← saturate(a + b) in the unsigned range: lanes whose
// final carry is set clamp to all-ones.
func SatAddU(l Layout, d, a, b int, masked bool) *uop.Program {
	as := newAsm(l, "vsaddu")
	t := l.ScratchID(0)
	as.clearCarry()
	as.loop(uop.Seg0, l.Segs, func() {
		as.ar(blc(as.reg(a, uop.Seg0), as.reg(b, uop.Seg0)))
		as.ar(wbRow(as.reg(t, uop.Seg0), uop.SrcAdd, false))
	})
	// Mask ← final carry (sum of zeros is the carry-in at each LSB).
	as.ar(blc(as.zero(), as.zero()))
	as.ar(wbLatch(uop.DstMask, uop.SrcAdd, uop.SpreadLSB))
	as.loop(uop.Seg1, l.Segs, func() {
		as.ar(wrConst(as.reg(t, uop.Seg1), uop.SrcOnes, true))
	})
	as.satFinish(d, t, masked)
	return as.prog()
}

// SatSubU generates d ← saturate(a − b) in the unsigned range: lanes that
// borrow clamp to zero.
func SatSubU(l Layout, d, a, b int, masked bool) *uop.Program {
	as := newAsm(l, "vssubu")
	t, nb, c := l.ScratchID(0), l.ScratchID(4), l.ScratchID(1)
	as.loop(uop.Seg0, l.Segs, func() {
		as.ar(blc(as.reg(b, uop.Seg0), as.reg(b, uop.Seg0)))
		as.ar(wbRow(as.reg(nb, uop.Seg0), uop.SrcNand, false))
	})
	as.setCarry()
	as.loop(uop.Seg1, l.Segs, func() {
		as.ar(blc(as.reg(a, uop.Seg1), as.reg(nb, uop.Seg1)))
		as.ar(wbRow(as.reg(t, uop.Seg1), uop.SrcAdd, false))
	})
	// Borrow = NOT final carry: materialize the carry, flip its LSB, load.
	as.ar(blc(as.zero(), as.zero()))
	as.ar(wbRow(as.regSeg(c, 0), uop.SrcAdd, false))
	as.ar(blc(as.regSeg(c, 0), as.one()))
	as.ar(wbRow(as.regSeg(c, 0), uop.SrcXor, false))
	as.loadMaskFromRow(as.regSeg(c, 0), uop.SpreadLSB, false)
	as.loop(uop.Seg2, l.Segs, func() {
		as.ar(wrConst(as.reg(t, uop.Seg2), uop.SrcZero, true))
	})
	as.satFinish(d, t, masked)
	return as.prog()
}

// signedOverflowClamp emits the shared tail of the signed forms: given the
// wrapped result in t and the overflow-iff condition rows prepared by the
// caller (u holds, at each group's MSB column, 1 when overflow is possible
// by sign pattern), it derives positive/negative overflow masks from the
// first operand's sign and writes the clamp constants.
func (as *asm) signedOverflowClamp(t, a, u, v, w int) {
	top := as.l.Segs - 1
	// v ← sign(a) XOR sign(result): result flipped away from a.
	as.ar(blc(as.regSeg(a, top), as.regSeg(t, top)))
	as.ar(wbRow(as.regSeg(v, 0), uop.SrcXor, false))
	// w ← u AND v: overflow happened.
	as.ar(blc(as.regSeg(u, 0), as.regSeg(v, 0)))
	as.ar(wbRow(as.regSeg(w, 0), uop.SrcAnd, false))
	// Positive overflow: overflow with a ≥ 0 → clamp INT32_MAX.
	as.ar(blc(as.regSeg(a, top), as.regSeg(a, top)))
	as.ar(wbRow(as.regSeg(v, 0), uop.SrcNand, false)) // v = ~sign(a) row
	as.ar(blc(as.regSeg(w, 0), as.regSeg(v, 0)))
	as.ar(wbRow(as.regSeg(u, 0), uop.SrcAnd, false))
	as.loadMaskFromRow(as.regSeg(u, 0), uop.SpreadMSB, false)
	as.loop(uop.Seg2, as.l.Segs, func() {
		as.ar(wrExt(as.reg(t, uop.Seg2), uop.ExtBy(0, uop.Seg2), true))
	})
	// Negative overflow: overflow with a < 0 → clamp INT32_MIN.
	as.ar(blc(as.regSeg(w, 0), as.regSeg(a, top)))
	as.ar(wbRow(as.regSeg(u, 0), uop.SrcAnd, false))
	as.loadMaskFromRow(as.regSeg(u, 0), uop.SpreadMSB, false)
	as.loop(uop.Seg3, as.l.Segs, func() {
		as.ar(wrExt(as.reg(t, uop.Seg3), uop.ExtBy(as.l.Segs, uop.Seg3), true))
	})
}

// SatAdd generates d ← saturate(a + b) in the signed range. Overflow is
// possible only when the operands agree in sign and the result flips.
func SatAdd(l Layout, d, a, b int, masked bool) *uop.Program {
	as := newAsm(l, "vsadd")
	t, u, v, w := l.ScratchID(0), l.ScratchID(1), l.ScratchID(2), l.ScratchID(3)
	as.clearCarry()
	as.loop(uop.Seg0, l.Segs, func() {
		as.ar(blc(as.reg(a, uop.Seg0), as.reg(b, uop.Seg0)))
		as.ar(wbRow(as.reg(t, uop.Seg0), uop.SrcAdd, false))
	})
	top := l.Segs - 1
	// u ← NOT(sign(a) XOR sign(b)): operands agree in sign.
	as.ar(blc(as.regSeg(a, top), as.regSeg(b, top)))
	as.ar(wbRow(as.regSeg(u, 0), uop.SrcXnor, false))
	as.signedOverflowClamp(t, a, u, v, w)
	as.satFinish(d, t, masked)
	return as.prog()
}

// SatSub generates d ← saturate(a − b) in the signed range. Overflow is
// possible only when the operands differ in sign.
func SatSub(l Layout, d, a, b int, masked bool) *uop.Program {
	as := newAsm(l, "vssub")
	t, u, v, w, nb := l.ScratchID(0), l.ScratchID(1), l.ScratchID(2), l.ScratchID(3), l.ScratchID(4)
	as.loop(uop.Seg0, l.Segs, func() {
		as.ar(blc(as.reg(b, uop.Seg0), as.reg(b, uop.Seg0)))
		as.ar(wbRow(as.reg(nb, uop.Seg0), uop.SrcNand, false))
	})
	as.setCarry()
	as.loop(uop.Seg1, l.Segs, func() {
		as.ar(blc(as.reg(a, uop.Seg1), as.reg(nb, uop.Seg1)))
		as.ar(wbRow(as.reg(t, uop.Seg1), uop.SrcAdd, false))
	})
	top := l.Segs - 1
	// u ← sign(a) XOR sign(b): operands differ in sign.
	as.ar(blc(as.regSeg(a, top), as.regSeg(b, top)))
	as.ar(wbRow(as.regSeg(u, 0), uop.SrcXor, false))
	as.signedOverflowClamp(t, a, u, v, w)
	as.satFinish(d, t, masked)
	return as.prog()
}
