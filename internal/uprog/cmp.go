package uprog

import (
	"fmt"

	"repro/internal/uop"
)

// Comparison micro-programs. A comparison writes a boolean *value* register:
// element LSB holds the result bit and all other bits are zero, the layout
// mask registers use (internal/isa stores RVV mask registers this way).
//
// The unsigned core exploits the adder: the carry latch after computing
// a + ~b + 1 holds (a >= b) per element, and a subsequent bit-line compute of
// the zero row against itself turns the latch into a writable value, since
// with p = g = 0 the sum output is exactly the carry-in sitting at each
// group's LSB column.

// CmpKind enumerates the comparison macro-operations.
type CmpKind int

// Comparison kinds (RVV vmseq..vmsgt family, as value-producing compares).
const (
	CmpEq CmpKind = iota
	CmpNe
	CmpLtu
	CmpLt
	CmpGeu
	CmpGe
	CmpGtu
	CmpGt
	CmpLeu
	CmpLe
)

func (k CmpKind) String() string {
	names := [...]string{"eq", "ne", "ltu", "lt", "geu", "ge", "gtu", "gt", "leu", "le"}
	if k >= 0 && int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("cmp(%d)", int(k))
}

// geuCore emits tuples leaving (a >= b), unsigned, in the carry latch. It
// clobbers scratch 0 and 1.
func (as *asm) geuCore(a, b int) {
	nb, junk := as.l.ScratchID(0), as.l.ScratchID(1)
	// nb = ~b.
	as.loop(uop.Seg0, as.l.Segs, func() {
		as.ar(blc(as.reg(b, uop.Seg0), as.reg(b, uop.Seg0)))
		as.ar(wbRow(as.reg(nb, uop.Seg0), uop.SrcNand, false))
	})
	// a + ~b + 1, discarding sums, keeping the final carry.
	as.setCarry()
	as.loop(uop.Seg1, as.l.Segs, func() {
		as.ar(blc(as.reg(a, uop.Seg1), as.reg(nb, uop.Seg1)))
		as.ar(wbRow(as.reg(junk, uop.Seg1), uop.SrcAdd, false))
	})
}

// carryToValue emits tuples materializing the carry latch as a 0/1 value in
// register d, optionally complemented.
func (as *asm) carryToValue(d int, invert bool) {
	as.ar(blc(as.zero(), as.zero()))
	as.ar(wbRow(as.regSeg(d, 0), uop.SrcAdd, false))
	if invert {
		as.ar(blc(as.regSeg(d, 0), as.one()))
		as.ar(wbRow(as.regSeg(d, 0), uop.SrcXor, false))
	}
	if as.l.Segs > 1 {
		as.loop(uop.Seg2, as.l.Segs-1, func() {
			as.ar(wrConst(uop.RowBy(as.l.RegRow(d, 1), uop.Seg2, 1), uop.SrcZero, false))
		})
	}
}

// biasSign emits tuples copying register a into scratch dst with the sign
// bit flipped (adding the 2³¹ bias), reducing signed order to unsigned.
func (as *asm) biasSign(dst, a int, cnt uop.Counter) {
	if as.l.Segs > 1 {
		as.loop(cnt, as.l.Segs-1, func() {
			as.copySeg(as.reg(dst, cnt), as.reg(a, cnt), false)
		})
	}
	top := as.l.Segs - 1
	as.ar(blc(as.regSeg(a, top), as.sign()))
	as.ar(wbRow(as.regSeg(dst, top), uop.SrcXor, false))
}

// eqCore emits tuples leaving (a == b) in the carry latch: the per-column
// XORs of all segments are OR-accumulated into one row, whose all-zeroness
// is then tested with the adder (~x + 1 carries out iff x == 0).
func (as *asm) eqCore(a, b int) {
	acc, tmp := as.l.ScratchID(0), as.l.ScratchID(1)
	as.ar(blc(as.regSeg(a, 0), as.regSeg(b, 0)))
	as.ar(wbRow(as.regSeg(acc, 0), uop.SrcXor, false))
	if as.l.Segs > 1 {
		as.loop(uop.Seg0, as.l.Segs-1, func() {
			as.ar(blc(uop.RowBy(as.l.RegRow(a, 1), uop.Seg0, 1), uop.RowBy(as.l.RegRow(b, 1), uop.Seg0, 1)))
			as.ar(wbRow(as.regSeg(tmp, 0), uop.SrcXor, false))
			as.ar(blc(as.regSeg(acc, 0), as.regSeg(tmp, 0)))
			as.ar(wbRow(as.regSeg(acc, 0), uop.SrcOr, false))
		})
	}
	// carry = (acc == 0): complement and add 1 within the single row.
	as.ar(blc(as.regSeg(acc, 0), as.regSeg(acc, 0)))
	as.ar(wbRow(as.regSeg(tmp, 0), uop.SrcNand, false))
	as.setCarry()
	as.ar(blc(as.regSeg(tmp, 0), as.zero()))
	as.ar(wbRow(as.regSeg(tmp, 0), uop.SrcAdd, false))
}

// Compare generates d ← (a <kind> b) ? 1 : 0. Signed kinds bias both
// operands through scratch before running the unsigned core; masked forms
// compute into scratch and conditionally copy.
func Compare(l Layout, kind CmpKind, d, a, b int, masked bool) *uop.Program {
	as := newAsm(l, "vcmp."+kind.String())
	dst := d
	if masked {
		dst = l.ScratchID(5)
	}
	switch kind {
	case CmpEq:
		as.eqCore(a, b)
		as.carryToValue(dst, false)
	case CmpNe:
		as.eqCore(a, b)
		as.carryToValue(dst, true)
	case CmpGeu:
		as.geuCore(a, b)
		as.carryToValue(dst, false)
	case CmpLtu:
		as.geuCore(a, b)
		as.carryToValue(dst, true)
	case CmpLeu:
		as.geuCore(b, a) // a <= b  ⇔  b >= a
		as.carryToValue(dst, false)
	case CmpGtu:
		as.geuCore(b, a)
		as.carryToValue(dst, true)
	case CmpGe, CmpLt, CmpLe, CmpGt:
		ba, bb := l.ScratchID(2), l.ScratchID(3)
		as.biasSign(ba, a, uop.Seg3)
		as.biasSign(bb, b, uop.Bit0)
		switch kind {
		case CmpGe:
			as.geuCore(ba, bb)
			as.carryToValue(dst, false)
		case CmpLt:
			as.geuCore(ba, bb)
			as.carryToValue(dst, true)
		case CmpLe:
			as.geuCore(bb, ba)
			as.carryToValue(dst, false)
		case CmpGt:
			as.geuCore(bb, ba)
			as.carryToValue(dst, true)
		}
	default:
		panic(fmt.Sprintf("uprog: unknown comparison kind %d", kind))
	}
	if masked {
		as.loadMaskFromRow(as.regSeg(maskReg, 0), uop.SpreadLSB, false)
		as.loop(uop.Bit1, l.Segs, func() {
			as.copySeg(as.reg(d, uop.Bit1), as.reg(dst, uop.Bit1), true)
		})
	}
	as.ret()
	return as.prog()
}

// MinMax generates d ← min/max(a, b) in the signed or unsigned order: the
// comparison result drives the mask latches selecting between the operands.
func MinMax(l Layout, max, signed bool, d, a, b int, masked bool) *uop.Program {
	name := "vmin"
	if max {
		name = "vmax"
	}
	if !signed {
		name += "u"
	}
	as := newAsm(l, name)
	sel := l.ScratchID(4)
	// sel = (a < b), in the requested order.
	if signed {
		ba, bb := l.ScratchID(2), l.ScratchID(3)
		as.biasSign(ba, a, uop.Seg3)
		as.biasSign(bb, b, uop.Bit0)
		as.geuCore(bb, ba)         // b >= a ⇔ !(a > b); we want a < b: geu(b,a) gives b>=a i.e. a<=b.
		as.carryToValue(sel, true) // sel = !(b >= a) = (a > b)
	} else {
		as.geuCore(b, a)
		as.carryToValue(sel, true) // sel = (a > b)
	}
	// For min: result = sel ? b : a. For max: result = sel ? a : b.
	first, second := b, a
	if max {
		first, second = a, b
	}
	dst := d
	if masked {
		dst = l.ScratchID(5)
	}
	as.loadMaskFromRow(as.regSeg(sel, 0), uop.SpreadLSB, false)
	as.loop(uop.Bit1, l.Segs, func() {
		as.copySeg(as.reg(dst, uop.Bit1), as.reg(first, uop.Bit1), true)
	})
	as.loadMaskFromRow(as.regSeg(sel, 0), uop.SpreadLSB, true)
	as.loop(uop.Bit2, l.Segs, func() {
		as.copySeg(as.reg(dst, uop.Bit2), as.reg(second, uop.Bit2), true)
	})
	if masked {
		as.loadMaskFromRow(as.regSeg(maskReg, 0), uop.SpreadLSB, false)
		as.loop(uop.Seg2, l.Segs, func() {
			as.copySeg(as.reg(d, uop.Seg2), as.reg(dst, uop.Seg2), true)
		})
	}
	as.ret()
	return as.prog()
}
