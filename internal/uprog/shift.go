package uprog

import (
	"fmt"

	"repro/internal/uop"
)

// Shift micro-programs (§III-B/C). A one-bit shift of a full 32-bit element
// is a pass over its segments: each segment is loaded into the constant
// shifter, shifted one bit, and written back, with the spare shifter carrying
// the bit crossing segment boundaries. Shifts by multiples of the segment
// size move whole segments by row addressing instead — the bit-hybrid
// circuit's shortcut over bit-parallel (§III-C). Variable (vector-vector)
// shifts binary-decompose the per-element amount, predicating each partial
// shift on the corresponding bit of the amount operand.

// ShiftKind enumerates the shift macro-operations.
type ShiftKind int

// Shift kinds.
const (
	ShSLL ShiftKind = iota
	ShSRL
	ShSRA
)

func (k ShiftKind) String() string {
	switch k {
	case ShSLL:
		return "sll"
	case ShSRL:
		return "srl"
	case ShSRA:
		return "sra"
	}
	return fmt.Sprintf("shift(%d)", int(k))
}

// clearSpare resets the spare shifter's inter-segment bit before a pass.
func (as *asm) clearSpare() { as.ar(wbLatch(uop.DstSpare, uop.SrcZero, uop.SpreadNone)) }

// leftPass emits one one-bit left shift over all segments of register r,
// low to high, optionally predicated on the mask latches.
func (as *asm) leftPass(r int, cond bool, cnt uop.Counter) {
	as.clearSpare()
	as.loop(cnt, as.l.Segs, func() {
		as.ar(rd(as.reg(r, cnt), uop.DstCShift))
		as.ar(lshift(cond))
		as.ar(wbRow(as.reg(r, cnt), uop.SrcCShift, cond))
	})
}

// rightPass emits one one-bit right shift over all segments of register r,
// high to low.
func (as *asm) rightPass(r int, cond bool, cnt uop.Counter) {
	as.clearSpare()
	top := as.l.RegRow(r, as.l.Segs-1)
	as.loop(cnt, as.l.Segs, func() {
		ref := uop.RowBy(top, cnt, -1)
		as.ar(rd(ref, uop.DstCShift))
		as.ar(rshift(cond))
		as.ar(wbRow(ref, uop.SrcCShift, cond))
	})
}

// segMoveLeft emits dst_s ← src_{s-q} (zero below), optionally predicated.
// Unrolled: each segment's rows are static. src and dst may be the same
// register (the descending order makes the in-place move safe).
func (as *asm) segMoveLeft(dst, src, q int, cond bool) {
	for s := as.l.Segs - 1; s >= 0; s-- {
		if s >= q {
			as.copySeg(as.regSeg(dst, s), as.regSeg(src, s-q), cond)
		} else {
			as.ar(wrConst(as.regSeg(dst, s), uop.SrcZero, cond))
		}
	}
}

// segMoveRight emits dst_s ← src_{s+q} (zero above), optionally predicated.
func (as *asm) segMoveRight(dst, src, q int, cond bool) {
	for s := 0; s < as.l.Segs; s++ {
		if s+q < as.l.Segs {
			as.copySeg(as.regSeg(dst, s), as.regSeg(src, s+q), cond)
		} else {
			as.ar(wrConst(as.regSeg(dst, s), uop.SrcZero, cond))
		}
	}
}

// ShiftImm generates d ← a <kind> k for a shift amount known at decode time
// (vsll.vi/vx and friends — the VSU resolves scalar operands before
// sequencing, so .vx shifts also take this path). k must be in [0, 31].
//
// For ShSRA with a shift that is not a whole number of segments, the VSU
// must drive data_in row 0 with TopBitsRow(k%N) to sign-fill the partial
// segment.
func ShiftImm(l Layout, kind ShiftKind, d, a, k int, masked bool) *uop.Program {
	if k < 0 || k > 31 {
		panic(fmt.Sprintf("uprog: shift amount %d out of range", k))
	}
	as := newAsm(l, fmt.Sprintf("v%s.vi(%d)", kind, k))
	dst := d
	if masked {
		dst = l.ScratchID(5)
	}
	q, r := k/l.N, k%l.N

	if kind == ShSRA {
		// Capture the sign before anything is overwritten.
		as.loadMaskFromRow(as.regSeg(a, l.Segs-1), uop.SpreadMSB, false)
	}
	switch kind {
	case ShSLL:
		as.segMoveLeft(dst, a, q, false)
		for p := 0; p < r; p++ {
			as.leftPass(dst, false, uop.Seg0)
		}
	case ShSRL, ShSRA:
		as.segMoveRight(dst, a, q, false)
		for p := 0; p < r; p++ {
			as.rightPass(dst, false, uop.Seg0)
		}
	}
	if kind == ShSRA {
		// Sign-fill the vacated top bits where the mask (sign) is set:
		// whole segments with a masked ones-write, the partial segment by
		// OR-ing a staged top-bits constant.
		for s := l.Segs - q; s < l.Segs; s++ {
			as.ar(wrConst(as.regSeg(dst, s), uop.SrcOnes, true))
		}
		if r > 0 {
			stage := as.scrSeg(4, 0)
			as.ar(wrExt(stage, uop.Ext(0), false))
			part := as.regSeg(dst, l.Segs-1-q)
			as.ar(blc(part, stage))
			as.ar(wbRow(part, uop.SrcOr, true))
		}
	}
	if masked {
		as.loadMaskFromRow(as.regSeg(maskReg, 0), uop.SpreadLSB, false)
		as.loop(uop.Seg1, l.Segs, func() {
			as.copySeg(as.reg(d, uop.Seg1), as.reg(dst, uop.Seg1), true)
		})
	}
	as.ret()
	return as.prog()
}

// loadBitMask emits tuples loading the mask latches with bit i of register
// b: the segment holding the bit is read into the XRegister, shifted until
// the bit sits in the LSB column, and broadcast to the group.
func (as *asm) loadBitMask(b, i int) {
	seg, off := i/as.l.N, i%as.l.N
	as.ar(rd(as.regSeg(b, seg), uop.DstXReg))
	for j := 0; j < off; j++ {
		as.ar(maskShift())
	}
	as.ar(wbLatch(uop.DstMask, uop.SrcXReg, uop.SpreadLSB))
}

// shiftVVCore emits the binary-decomposition variable shift of register w in
// place, predicated per element on the amount in register b (bits 0..4).
// Shifts of 2^i ≥ N move whole segments conditionally; smaller ones run 2^i
// predicated one-bit passes (§III-C).
func (as *asm) shiftVVCore(kind ShiftKind, w, b int) {
	for i := 0; i <= 4; i++ {
		as.loadBitMask(b, i)
		m := 1 << i
		if m%as.l.N == 0 {
			q := m / as.l.N
			if kind == ShSLL {
				as.segMoveLeft(w, w, q, true)
			} else {
				as.segMoveRight(w, w, q, true)
			}
		} else {
			for p := 0; p < m; p++ {
				if kind == ShSLL {
					as.leftPass(w, true, uop.Seg1)
				} else {
					as.rightPass(w, true, uop.Seg1)
				}
			}
		}
	}
}

// ShiftVV generates d ← a <kind> (b & 31) with a per-element shift amount.
// ShSRA is composed from two logical-shift passes selected by the sign of a:
// sra(a,k) = srl(a,k) for a ≥ 0 and ~srl(~a,k) otherwise.
func ShiftVV(l Layout, kind ShiftKind, d, a, b int, masked bool) *uop.Program {
	as := newAsm(l, fmt.Sprintf("v%s.vv", kind))
	w := l.ScratchID(5)
	// w ← a.
	as.loop(uop.Seg0, l.Segs, func() {
		as.copySeg(as.reg(w, uop.Seg0), as.reg(a, uop.Seg0), false)
	})
	switch kind {
	case ShSLL, ShSRL:
		as.shiftVVCore(kind, w, b)
	case ShSRA:
		w2 := l.ScratchID(4)
		// w2 ← ~a, shifted logically, then complemented: the negative path.
		as.loop(uop.Seg0, l.Segs, func() {
			as.ar(blc(as.reg(a, uop.Seg0), as.reg(a, uop.Seg0)))
			as.ar(wbRow(as.reg(w2, uop.Seg0), uop.SrcNand, false))
		})
		as.shiftVVCore(ShSRL, w, b)
		as.shiftVVCore(ShSRL, w2, b)
		as.loop(uop.Seg0, l.Segs, func() {
			as.ar(blc(as.reg(w2, uop.Seg0), as.reg(w2, uop.Seg0)))
			as.ar(wbRow(as.reg(w2, uop.Seg0), uop.SrcNand, false))
		})
		// Select w2 where a is negative by overwriting w there. The sign
		// must be read from the untouched source a.
		as.loadMaskFromRow(as.regSeg(a, l.Segs-1), uop.SpreadMSB, false)
		as.loop(uop.Seg0, l.Segs, func() {
			as.copySeg(as.reg(w, uop.Seg0), as.reg(w2, uop.Seg0), true)
		})
	}
	if masked {
		as.loadMaskFromRow(as.regSeg(maskReg, 0), uop.SpreadLSB, false)
	}
	as.loop(uop.Seg2, l.Segs, func() {
		as.copySeg(as.reg(d, uop.Seg2), as.reg(w, uop.Seg2), masked)
	})
	as.ret()
	return as.prog()
}
