package uprog

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bitmat"
	"repro/internal/circuits"
	"repro/internal/uop"
)

// TestRandomProgramSequences is the cross-operation state fuzzer: long
// random sequences of macro-operations run back-to-back on one machine,
// mirrored step by step against Go semantics. Unlike the per-op tests, this
// catches residue leaking between micro-programs through the shared latches
// (carry, mask, XRegister, spare shifter) and through counter state.
func TestRandomProgramSequences(t *testing.T) {
	const (
		elems = 4
		steps = 60
		regs  = 8 // architectural v0..v7 in play
	)
	type op struct {
		name string
		gen  func(l Layout, d, a, b int) *uop.Program
		ref  func(x, y uint32) uint32
		env  func(l Layout, cols int) *circuits.Env
	}
	ops := []op{
		{"add", func(l Layout, d, a, b int) *uop.Program { return Add(l, d, a, b, false) },
			func(x, y uint32) uint32 { return x + y }, nil},
		{"sub", func(l Layout, d, a, b int) *uop.Program { return Sub(l, d, a, b, false) },
			func(x, y uint32) uint32 { return x - y }, nil},
		{"xor", func(l Layout, d, a, b int) *uop.Program { return Logic(l, uop.SrcXor, d, a, b, false) },
			func(x, y uint32) uint32 { return x ^ y }, nil},
		{"and", func(l Layout, d, a, b int) *uop.Program { return Logic(l, uop.SrcAnd, d, a, b, false) },
			func(x, y uint32) uint32 { return x & y }, nil},
		{"mul", func(l Layout, d, a, b int) *uop.Program { return Mul(l, d, a, b, false, false) },
			func(x, y uint32) uint32 { return x * y }, nil},
		{"minu", func(l Layout, d, a, b int) *uop.Program { return MinMax(l, false, false, d, a, b, false) },
			func(x, y uint32) uint32 { return min(x, y) }, nil},
		{"max", func(l Layout, d, a, b int) *uop.Program { return MinMax(l, true, true, d, a, b, false) },
			func(x, y uint32) uint32 { return uint32(max(int32(x), int32(y))) }, nil},
		{"sltu", func(l Layout, d, a, b int) *uop.Program { return Compare(l, CmpLtu, d, a, b, false) },
			func(x, y uint32) uint32 { return b2u(x < y) }, nil},
		{"eq", func(l Layout, d, a, b int) *uop.Program { return Compare(l, CmpEq, d, a, b, false) },
			func(x, y uint32) uint32 { return b2u(x == y) }, nil},
		{"sll5", func(l Layout, d, a, b int) *uop.Program { return ShiftImm(l, ShSLL, d, a, 5, false) },
			func(x, _ uint32) uint32 { return x << 5 }, nil},
		{"sra9", func(l Layout, d, a, b int) *uop.Program { return ShiftImm(l, ShSRA, d, a, 9, false) },
			func(x, _ uint32) uint32 { return uint32(int32(x) >> 9) },
			func(l Layout, cols int) *circuits.Env {
				if 9%l.N == 0 {
					return nil
				}
				return &circuits.Env{ExtRows: []bitmat.Row{TopBitsRow(l, cols, 9%l.N)}}
			}},
		{"srlvv", func(l Layout, d, a, b int) *uop.Program { return ShiftVV(l, ShSRL, d, a, b, false) },
			func(x, y uint32) uint32 { return x >> (y & 31) }, nil},
		{"divu", func(l Layout, d, a, b int) *uop.Program { return DivRem(l, DivU, d, a, b, false) },
			func(x, y uint32) uint32 {
				if y == 0 {
					return ^uint32(0)
				}
				return x / y
			},
			func(l Layout, cols int) *circuits.Env {
				return &circuits.Env{ExtRows: BitConstRows(l, cols)}
			}},
	}

	for _, n := range []int{1, 4, 8, 32} {
		n := n
		t.Run(fmt.Sprintf("EVE-%d", n), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(n) * 1234567))
			m := NewMachine(n, elems)
			golden := make([][]uint32, regs)
			for r := 0; r < regs; r++ {
				golden[r] = make([]uint32, elems)
				for e := 0; e < elems; e++ {
					v := rng.Uint32()
					golden[r][e] = v
					m.StoreElement(r, e, v)
				}
			}
			var history []string
			for s := 0; s < steps; s++ {
				o := ops[rng.Intn(len(ops))]
				// Destination avoids v0 so the predicate idioms stay sane.
				d := 1 + rng.Intn(regs-1)
				a := rng.Intn(regs)
				b := rng.Intn(regs)
				history = append(history, fmt.Sprintf("%s v%d,v%d,v%d", o.name, d, a, b))
				var env *circuits.Env
				if o.env != nil {
					env = o.env(m.Layout, m.Stack.Array().Cols())
				}
				m.Run(o.gen(m.Layout, d, a, b), env)
				for e := 0; e < elems; e++ {
					golden[d][e] = o.ref(golden[a][e], golden[b][e])
				}
				for r := 0; r < regs; r++ {
					for e := 0; e < elems; e++ {
						if got := m.LoadElement(r, e); got != golden[r][e] {
							t.Fatalf("step %d (%s): v%d[%d] = %#x, want %#x\nhistory: %v",
								s, history[len(history)-1], r, e, got, golden[r][e], history)
						}
					}
				}
			}
		})
	}
}
