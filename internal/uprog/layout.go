// Package uprog implements EVE's micro-programming layer (paper §IV): a
// library ("ROM") of micro-programs implementing vector macro-operations for
// every parallelization factor, an assembler for building them, and the
// sequencer (the execution half of the VSU) that runs them against the
// circuit stacks cycle by cycle.
//
// Micro-programs here are data-independent: loop trip counts depend only on
// the configuration (segment count, segment width), never on element values —
// data-dependent behaviour is expressed through predication (the mask
// latches). Consequently a macro-operation's cycle count is a static property
// of (operation, parallelization factor), which is what the EVE timing model
// (internal/eve) consumes.
package uprog

import "fmt"

// Layout describes how the vector register file maps onto a logical EVE SRAM
// array for a given parallelization factor.
//
// Element e of every register lives in column group e (columns [e·N,(e+1)·N));
// register r's segment s occupies wordline r·Segs+s. Scratch registers used
// by micro-programs sit above the architectural registers, followed by two
// constant rows: an always-zero row and a "one per group" row (bit set at
// each group's LSB column) used for mask materialization.
//
// The physical 256-row array cannot hold 32 registers × 32 segments in one
// column group when N < 4; hardware splits an element across several
// single-ALU column groups instead (§II, modeled for timing/capacity in
// internal/vreg). The functional model uses a logically tall array — the
// μprograms and their cycle counts are identical either way.
type Layout struct {
	N       int // parallelization factor (segment width in bits)
	Segs    int // segments per element = 32/N
	Regs    int // architectural vector registers (32 for RVV)
	Scratch int // scratch registers available to micro-programs
}

// BroadcastScratch is the scratch register reserved for staging a broadcast
// scalar operand (.vx prologue). The ROM generators use scratch 0..5 freely
// — division is the hungriest, needing all six — so the broadcast operand
// must live above them to survive until the macro-operation reads it.
const BroadcastScratch = 6

// NewLayout returns the standard layout for parallelization factor n: 32
// architectural registers plus 7 scratch registers — six working registers
// for the ROM generators (division is the hungriest micro-program, needing
// five working values plus a constant staging row) and one reserved
// broadcast staging register (BroadcastScratch).
func NewLayout(n int) Layout {
	if n <= 0 || 32%n != 0 {
		panic(fmt.Sprintf("uprog: invalid parallelization factor %d", n))
	}
	return Layout{N: n, Segs: 32 / n, Regs: 32, Scratch: 7}
}

// RegRow returns the wordline of register r's segment s (segment 0 holds the
// least significant bits). r may be an architectural register (0..Regs-1) or
// a scratch id from ScratchID — the generators treat them uniformly.
func (l Layout) RegRow(r, s int) int {
	if r < 0 || r >= l.Regs+l.Scratch || s < 0 || s >= l.Segs {
		panic(fmt.Sprintf("uprog: reg %d seg %d out of range", r, s))
	}
	return r*l.Segs + s
}

// ScratchRow returns the wordline of scratch register k's segment s.
func (l Layout) ScratchRow(k, s int) int {
	if k < 0 || k >= l.Scratch || s < 0 || s >= l.Segs {
		panic(fmt.Sprintf("uprog: scratch %d seg %d out of range", k, s))
	}
	return (l.Regs+k)*l.Segs + s
}

// ZeroRow returns the wordline of the dedicated all-zero constant row.
func (l Layout) ZeroRow() int { return (l.Regs + l.Scratch) * l.Segs }

// OneRow returns the wordline of the constant row holding value 1 in every
// element (a single set bit at each group's LSB column).
func (l Layout) OneRow() int { return l.ZeroRow() + 1 }

// SignRow returns the wordline of the constant row with only each group's
// MSB column set; XORing an element's top segment with it flips the sign
// bit, turning signed comparisons into unsigned ones.
func (l Layout) SignRow() int { return l.ZeroRow() + 2 }

// Rows reports the total wordlines the layout occupies.
func (l Layout) Rows() int { return l.SignRow() + 1 }
