package uprog

import (
	"fmt"

	"repro/internal/uop"
)

// Division micro-programs: textbook restoring division, fully predicated —
// every element runs the same 32 unrolled steps, with the "restore" decision
// expressed through the mask latches, so the cycle count is data-independent
// like every other micro-program.
//
// Per step: the remainder is shifted left one bit and the next dividend bit
// ORed in; the trial subtraction R − divisor is staged with the adder, whose
// final carry (R ≥ divisor) becomes the mask selecting whether the staged
// difference replaces R and whether the quotient bit is set.
//
// RVV semantics fall out naturally: dividing by zero yields an all-ones
// quotient and the dividend as remainder.
//
// Scratch usage: 0 = remainder, 1 = quotient, 2 = ~divisor, 3 = staging,
// 4 = constant staging row, 5 = |dividend| (signed forms).
//
// The VSU must drive data_in rows 0..N-1 with BitConstRows (a single set bit
// at offset j of every group) for the quotient-bit writes.

// DivKind enumerates the division macro-operations.
type DivKind int

// Division kinds.
const (
	DivU DivKind = iota
	DivS
	RemU
	RemS
)

func (k DivKind) String() string {
	switch k {
	case DivU:
		return "vdivu"
	case DivS:
		return "vdiv"
	case RemU:
		return "vremu"
	case RemS:
		return "vrem"
	}
	return fmt.Sprintf("div(%d)", int(k))
}

// divCore emits the 32-step restoring loop dividing register num by the
// divisor whose complement is already in scratch 2, leaving the quotient in
// scratch 1 and the remainder in scratch 0.
func (as *asm) divCore(num int) {
	l := as.l
	r, q, nb, t, c := l.ScratchID(0), l.ScratchID(1), l.ScratchID(2), l.ScratchID(3), l.ScratchID(4)
	// R ← 0, Q ← 0.
	as.loop(uop.Seg0, l.Segs, func() {
		as.ar(wrConst(as.reg(r, uop.Seg0), uop.SrcZero, false))
	})
	as.loop(uop.Seg0, l.Segs, func() {
		as.ar(wrConst(as.reg(q, uop.Seg0), uop.SrcZero, false))
	})
	for i := 31; i >= 0; i-- {
		seg, off := i/l.N, i%l.N
		// R = (R << 1) | bit_i(num).
		as.leftPass(r, false, uop.Seg1)
		as.loadBitMask(num, i)
		as.ar(blc(as.regSeg(r, 0), as.one()))
		as.ar(wbRow(as.regSeg(r, 0), uop.SrcOr, true))
		// Staged trial subtraction: t = R + ~divisor + 1; carry = (R ≥ divisor).
		as.setCarry()
		as.loop(uop.Seg2, l.Segs, func() {
			as.ar(blc(as.reg(r, uop.Seg2), as.reg(nb, uop.Seg2)))
			as.ar(wbRow(as.reg(t, uop.Seg2), uop.SrcAdd, false))
		})
		// Mask ← carry: with both operands zero the sum output is exactly
		// the carry-in at each group's LSB column.
		as.ar(blc(as.zero(), as.zero()))
		as.ar(wbLatch(uop.DstMask, uop.SrcAdd, uop.SpreadLSB))
		// Commit the subtraction where it did not borrow.
		as.loop(uop.Seg3, l.Segs, func() {
			as.copySeg(as.reg(r, uop.Seg3), as.reg(t, uop.Seg3), true)
		})
		// Set quotient bit i where committed.
		as.ar(wrExt(as.regSeg(c, 0), uop.Ext(off), false))
		as.ar(blc(as.regSeg(q, seg), as.regSeg(c, 0)))
		as.ar(wbRow(as.regSeg(q, seg), uop.SrcOr, true))
	}
}

// DivRem generates d ← a <kind> b.
func DivRem(l Layout, kind DivKind, d, a, b int, masked bool) *uop.Program {
	as := newAsm(l, kind.String())
	r, q, nb, t, abs := l.ScratchID(0), l.ScratchID(1), l.ScratchID(2), l.ScratchID(3), l.ScratchID(5)
	signed := kind == DivS || kind == RemS

	num := a
	if signed {
		// abs ← |a|: copy, then negate where the sign bit is set.
		as.loop(uop.Seg0, l.Segs, func() {
			as.copySeg(as.reg(abs, uop.Seg0), as.reg(a, uop.Seg0), false)
		})
		as.loadMaskFromRow(as.regSeg(a, l.Segs-1), uop.SpreadMSB, false)
		as.neg(abs, t, true)
		num = abs
		// nb ← ~|b|: copy, conditional negate, complement in place.
		as.loop(uop.Seg0, l.Segs, func() {
			as.copySeg(as.reg(nb, uop.Seg0), as.reg(b, uop.Seg0), false)
		})
		as.loadMaskFromRow(as.regSeg(b, l.Segs-1), uop.SpreadMSB, false)
		as.neg(nb, t, true)
		as.loop(uop.Seg0, l.Segs, func() {
			as.ar(blc(as.reg(nb, uop.Seg0), as.reg(nb, uop.Seg0)))
			as.ar(wbRow(as.reg(nb, uop.Seg0), uop.SrcNand, false))
		})
	} else {
		as.loop(uop.Seg0, l.Segs, func() {
			as.ar(blc(as.reg(b, uop.Seg0), as.reg(b, uop.Seg0)))
			as.ar(wbRow(as.reg(nb, uop.Seg0), uop.SrcNand, false))
		})
	}

	as.divCore(num)

	if signed {
		// Quotient sign = sign(a) ⊕ sign(b), but only when b ≠ 0 — division
		// by zero must keep the all-ones quotient (RVV). Remainder sign =
		// sign(a) unconditionally: for b = 0 the core leaves |a|, and
		// negating by a's sign restores a, the required result. Everything
		// is recomputed from the untouched source registers.
		c := l.ScratchID(4)
		// c_0 ← (b ≠ 0) at each element's LSB: OR b's segments per column,
		// test all-zero with the adder, invert.
		as.ar(blc(as.regSeg(b, 0), as.regSeg(b, 0)))
		as.ar(wbRow(as.regSeg(t, 0), uop.SrcAnd, false))
		if l.Segs > 1 {
			as.loop(uop.Seg0, l.Segs-1, func() {
				as.ar(blc(as.regSeg(t, 0), uop.RowBy(l.RegRow(b, 1), uop.Seg0, 1)))
				as.ar(wbRow(as.regSeg(t, 0), uop.SrcOr, false))
			})
		}
		as.ar(blc(as.regSeg(t, 0), as.regSeg(t, 0)))
		as.ar(wbRow(as.regSeg(c, 0), uop.SrcNand, false))
		as.setCarry()
		as.ar(blc(as.regSeg(c, 0), as.zero()))
		as.ar(wbRow(as.regSeg(c, 0), uop.SrcAdd, false))
		as.ar(blc(as.zero(), as.zero()))
		as.ar(wbRow(as.regSeg(c, 0), uop.SrcAdd, false)) // c_0 = (b == 0)
		as.ar(blc(as.regSeg(c, 0), as.one()))
		as.ar(wbRow(as.regSeg(c, 0), uop.SrcXor, false)) // c_0 = (b != 0)
		// t_0 ← sign(a) ⊕ sign(b) moved from the MSB to the LSB column.
		as.ar(blc(as.regSeg(a, l.Segs-1), as.regSeg(b, l.Segs-1)))
		as.ar(wbRow(as.regSeg(t, 0), uop.SrcXor, false))
		as.ar(rd(as.regSeg(t, 0), uop.DstXReg))
		for j := 0; j < l.N-1; j++ {
			as.ar(maskShift())
		}
		as.ar(wbRow(as.regSeg(t, 0), uop.SrcXReg, false))
		as.ar(blc(as.regSeg(t, 0), as.regSeg(c, 0)))
		as.ar(wbRow(as.regSeg(t, 0), uop.SrcAnd, false))
		as.loadMaskFromRow(as.regSeg(t, 0), uop.SpreadLSB, false)
		as.neg(q, nb, true)
		as.loadMaskFromRow(as.regSeg(a, l.Segs-1), uop.SpreadMSB, false)
		as.neg(r, nb, true)
	}

	res := q
	if kind == RemU || kind == RemS {
		res = r
	}
	if masked {
		as.loadMaskFromRow(as.regSeg(maskReg, 0), uop.SpreadLSB, false)
	}
	as.loop(uop.Bit1, l.Segs, func() {
		as.copySeg(as.reg(d, uop.Bit1), as.reg(res, uop.Bit1), masked)
	})
	as.ret()
	return as.prog()
}

// BitConstRowCount reports how many data_in rows DivRem expects: one per
// bit offset within a segment.
func BitConstRowCount(l Layout) int { return l.N }
