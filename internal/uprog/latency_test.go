package uprog

import (
	"testing"

	"repro/internal/uop"
)

// TestGoldenLatencies pins the exact cycle count of every macro-operation's
// micro-program at every parallelization factor. These numbers ARE the EVE
// timing model (internal/eve derives instruction costs from them), so any
// unintended ROM change shows up here first. Interesting structure visible
// in the table: element-wise ops scale with the segment count (copy: 66 →
// 4); immediate shifts are non-monotonic because segment-granular moves get
// cheaper as in-segment bit passes get more expensive (sll7: EVE-8 does 7
// one-bit passes, EVE-16 one segment move implements 8 of the 7... and the
// balance flips); mulhu and divu grow again at EVE-32 where per-bit
// extraction loses its shared-segment amortization.
func TestGoldenLatencies(t *testing.T) {
	factors := []int{1, 2, 4, 8, 16, 32}
	golden := map[string][6]int{
		"copy":  {66, 34, 18, 10, 6, 4},
		"add":   {67, 35, 19, 11, 7, 5},
		"sub":   {132, 68, 36, 20, 12, 8},
		"xor":   {66, 34, 18, 10, 6, 4},
		"slt":   {298, 154, 82, 46, 28, 16},
		"max":   {432, 224, 120, 68, 42, 26},
		"sll7":  {58, 80, 94, 107, 61, 38},
		"srlvv": {430, 242, 170, 150, 154, 182},
		"mul":   {5605, 2917, 1573, 901, 565, 397},
		"mulhu": {10788, 5652, 3156, 2052, 1788, 2232},
		"divu":  {7813, 4149, 2341, 1485, 1153, 1179},
		"merge": {135, 71, 39, 23, 15, 11},
	}
	gens := map[string]func(l Layout) *uop.Program{
		"copy":  func(l Layout) *uop.Program { return Copy(l, 3, 1, false) },
		"add":   func(l Layout) *uop.Program { return Add(l, 3, 1, 2, false) },
		"sub":   func(l Layout) *uop.Program { return Sub(l, 3, 1, 2, false) },
		"xor":   func(l Layout) *uop.Program { return Logic(l, uop.SrcXor, 3, 1, 2, false) },
		"slt":   func(l Layout) *uop.Program { return Compare(l, CmpLt, 3, 1, 2, false) },
		"max":   func(l Layout) *uop.Program { return MinMax(l, true, true, 3, 1, 2, false) },
		"sll7":  func(l Layout) *uop.Program { return ShiftImm(l, ShSLL, 3, 1, 7, false) },
		"srlvv": func(l Layout) *uop.Program { return ShiftVV(l, ShSRL, 3, 1, 2, false) },
		"mul":   func(l Layout) *uop.Program { return Mul(l, 3, 1, 2, false, false) },
		"mulhu": func(l Layout) *uop.Program { return MulH(l, 3, 1, 2, false) },
		"divu":  func(l Layout) *uop.Program { return DivRem(l, DivU, 3, 1, 2, false) },
		"merge": func(l Layout) *uop.Program { return Merge(l, 3, 1, 2) },
	}
	for name, want := range golden {
		for i, n := range factors {
			m := NewMachine(n, 2)
			got := m.CountCycles(gens[name](m.Layout))
			if got != want[i] {
				t.Errorf("%s at EVE-%d: %d cycles, golden %d — the ROM changed; "+
					"if intentional, update the table and EXPERIMENTS.md", name, n, got, want[i])
			}
		}
	}
}
