package uprog

import "repro/internal/uop"

// Multiplication (Fig 4(b)). The multiplier is consumed one segment at a
// time through the XRegister; the outer loop walks the N=Segs multiplier
// segments and the inner loop the n bits within a segment — each inner
// iteration performs one predicated accumulation of the shifted multiplicand
// ("predicated summation") and advances the multiplicand by one bit, so the
// working copy always holds a << (seg·n + bit).
//
// Scratch usage: 0 = working multiplicand, 1 = accumulator.

// Mul generates d ← low32(a × b). With acc set it generates the
// multiply-accumulate d ← d + a × b (vmacc.vv).
func Mul(l Layout, d, a, b int, masked, acc bool) *uop.Program {
	name := "vmul"
	if acc {
		name = "vmacc"
	}
	as := newAsm(l, name)
	w, sum := l.ScratchID(0), l.ScratchID(1)

	// w ← a; sum ← 0 (or d for multiply-accumulate).
	as.loop(uop.Seg0, l.Segs, func() {
		as.copySeg(as.reg(w, uop.Seg0), as.reg(a, uop.Seg0), false)
	})
	if acc {
		as.loop(uop.Seg0, l.Segs, func() {
			as.copySeg(as.reg(sum, uop.Seg0), as.reg(d, uop.Seg0), false)
		})
	} else {
		as.loop(uop.Seg0, l.Segs, func() {
			as.ar(wrConst(as.reg(sum, uop.Seg0), uop.SrcZero, false))
		})
	}

	// Outer loop over multiplier segments; Seg1's iteration count indexes
	// the segment row of b loaded into the XRegister.
	as.loop(uop.Seg1, l.Segs, func() {
		as.ar(rd(as.reg(b, uop.Seg1), uop.DstXReg))
		// Inner loop over the n bits of the segment.
		as.loop(uop.Bit0, l.N, func() {
			// Predicate on the multiplier's current LSB and consume it.
			as.ar(wbLatch(uop.DstMask, uop.SrcXReg, uop.SpreadLSB))
			as.ar(maskShift())
			// sum += w where predicated.
			as.clearCarry()
			as.loop(uop.Seg2, l.Segs, func() {
				as.ar(blc(as.reg(w, uop.Seg2), as.reg(sum, uop.Seg2)))
				as.ar(wbRow(as.reg(sum, uop.Seg2), uop.SrcAdd, true))
			})
			// w <<= 1 for every element.
			as.leftPass(w, false, uop.Seg3)
		})
	})

	// Commit the accumulator to the destination.
	if masked {
		as.loadMaskFromRow(as.regSeg(maskReg, 0), uop.SpreadLSB, false)
	}
	as.loop(uop.Bit1, l.Segs, func() {
		as.copySeg(as.reg(d, uop.Bit1), as.reg(sum, uop.Bit1), masked)
	})
	as.ret()
	return as.prog()
}

// MulH generates d ← high32(a × b) treating the operands as unsigned
// (vmulhu). It runs the schoolbook loop over a 64-bit accumulator held in
// two scratch registers, shifting the accumulator right one bit per step so
// the high half lands in the upper scratch register.
//
// Scratch usage: 0 = low accumulator, 1 = high accumulator.
func MulH(l Layout, d, a, b int, masked bool) *uop.Program {
	as := newAsm(l, "vmulhu")
	lo, hi := l.ScratchID(0), l.ScratchID(1)
	// lo ← 0, hi ← 0.
	as.loop(uop.Seg0, l.Segs, func() {
		as.ar(wrConst(as.reg(lo, uop.Seg0), uop.SrcZero, false))
	})
	as.loop(uop.Seg0, l.Segs, func() {
		as.ar(wrConst(as.reg(hi, uop.Seg0), uop.SrcZero, false))
	})
	// For each multiplier bit (MSB first): acc = (acc >> ... ) classic
	// "shift accumulator left" form over 64 bits: acc = 2·acc + (bit ? a : 0).
	for i := 31; i >= 0; i-- {
		// acc <<= 1: hi pass then carry bit from lo's MSB.
		// Shift hi left one bit, then lo; the bit leaving lo's top must
		// enter hi's bottom: read it first through the XRegister.
		as.ar(rd(as.regSeg(lo, l.Segs-1), uop.DstXReg))
		for j := 0; j < l.N-1; j++ {
			as.ar(maskShift())
		}
		// hi = (hi << 1) | topbit(lo).
		as.leftPass(hi, false, uop.Seg3)
		as.ar(wbLatch(uop.DstMask, uop.SrcXReg, uop.SpreadLSB))
		as.ar(blc(as.regSeg(hi, 0), as.one()))
		as.ar(wbRow(as.regSeg(hi, 0), uop.SrcOr, true))
		as.leftPass(lo, false, uop.Seg3)
		// Predicate on multiplier bit i and accumulate a into (hi,lo).
		as.loadBitMask(b, i)
		as.clearCarry()
		as.loop(uop.Seg2, l.Segs, func() {
			as.ar(blc(as.reg(a, uop.Seg2), as.reg(lo, uop.Seg2)))
			as.ar(wbRow(as.reg(lo, uop.Seg2), uop.SrcAdd, true))
		})
		// Propagate the carry into hi: hi += carry (add zero with carry).
		as.loop(uop.Seg2, l.Segs, func() {
			as.ar(blc(as.reg(hi, uop.Seg2), as.zero()))
			as.ar(wbRow(as.reg(hi, uop.Seg2), uop.SrcAdd, true))
		})
	}
	if masked {
		as.loadMaskFromRow(as.regSeg(maskReg, 0), uop.SpreadLSB, false)
	}
	as.loop(uop.Bit1, l.Segs, func() {
		as.copySeg(as.reg(d, uop.Bit1), as.reg(hi, uop.Bit1), masked)
	})
	as.ret()
	return as.prog()
}
