package uprog

import "repro/internal/uop"

// Register identifiers passed to the ROM generators are row-group ids:
// architectural register r is id r, and scratch register k is id Regs+k
// (scratch rows sit directly above the architectural file). The generators
// never distinguish the two, which lets .vx wrappers substitute a scratch
// operand transparently.

// ScratchID returns the register id of scratch register k.
func (l Layout) ScratchID(k int) int { return l.Regs + k }

// maskReg is the architectural register providing the predicate for masked
// (.vm) operations, RVV's v0.
const maskReg = 0

// maskPrologue loads the mask latches from v0's element bits when the
// operation is predicated.
func (a *asm) maskPrologue(masked bool) {
	if masked {
		a.loadMaskFromRow(a.regSeg(maskReg, 0), uop.SpreadLSB, false)
	}
}

// Copy generates d ← a (vmv.v.v). With masked set, only elements whose v0
// bit is set are written.
func Copy(l Layout, d, a int, masked bool) *uop.Program {
	as := newAsm(l, "vmv")
	as.maskPrologue(masked)
	as.loop(uop.Seg0, l.Segs, func() {
		as.copySeg(as.reg(d, uop.Seg0), as.reg(a, uop.Seg0), masked)
	})
	as.ret()
	return as.prog()
}

// Not generates d ← ~a (vnot, i.e. vxor.vi with -1).
func Not(l Layout, d, a int, masked bool) *uop.Program {
	as := newAsm(l, "vnot")
	as.maskPrologue(masked)
	as.loop(uop.Seg0, l.Segs, func() {
		as.ar(blc(as.reg(a, uop.Seg0), as.reg(a, uop.Seg0)))
		as.ar(wbRow(as.reg(d, uop.Seg0), uop.SrcNand, masked))
	})
	as.ret()
	return as.prog()
}

// Logic generates d ← a op b for the bit-wise operations the sense
// amplifiers and XOR/XNOR layer produce directly: src selects among SrcAnd,
// SrcOr, SrcXor, SrcNand, SrcNor, SrcXnor.
func Logic(l Layout, src uop.Src, d, a, b int, masked bool) *uop.Program {
	as := newAsm(l, "vlogic."+src.String())
	as.maskPrologue(masked)
	as.loop(uop.Seg0, l.Segs, func() {
		as.ar(blc(as.reg(a, uop.Seg0), as.reg(b, uop.Seg0)))
		as.ar(wbRow(as.reg(d, uop.Seg0), src, masked))
	})
	as.ret()
	return as.prog()
}

// Add generates d ← a + b (Fig 4(a)): one bit-line compute and one add
// writeback per segment, with the inter-segment carry riding in the carry
// latch.
func Add(l Layout, d, a, b int, masked bool) *uop.Program {
	as := newAsm(l, "vadd")
	as.maskPrologue(masked)
	as.clearCarry()
	as.loop(uop.Seg0, l.Segs, func() {
		as.ar(blc(as.reg(a, uop.Seg0), as.reg(b, uop.Seg0)))
		as.ar(wbRow(as.reg(d, uop.Seg0), uop.SrcAdd, masked))
	})
	as.ret()
	return as.prog()
}

// Sub generates d ← a - b as a + ~b + 1: the complement is materialized in
// scratch with the nand idiom, then added with the carry latch preset.
func Sub(l Layout, d, a, b int, masked bool) *uop.Program {
	as := newAsm(l, "vsub")
	nb := l.ScratchID(0)
	as.maskPrologue(masked)
	as.loop(uop.Seg0, l.Segs, func() {
		as.ar(blc(as.reg(b, uop.Seg0), as.reg(b, uop.Seg0)))
		as.ar(wbRow(as.reg(nb, uop.Seg0), uop.SrcNand, false))
	})
	as.setCarry()
	as.loop(uop.Seg1, l.Segs, func() {
		as.ar(blc(as.reg(a, uop.Seg1), as.reg(nb, uop.Seg1)))
		as.ar(wbRow(as.reg(d, uop.Seg1), uop.SrcAdd, masked))
	})
	as.ret()
	return as.prog()
}

// RSub generates d ← b - a (vrsub).
func RSub(l Layout, d, a, b int, masked bool) *uop.Program {
	p := Sub(l, d, b, a, masked)
	p.Name = "vrsub"
	return p
}

// neg emits tuples computing r ← 0 - r (two's-complement negate) using nb as
// staging for the complement; nb must differ from r. With masked set, only
// elements selected by the current mask latches are negated — the idiom for
// conditional negation in the signed multiply/divide wrappers. The mask
// latches must not change between the two loops, which they do not: loop
// control never touches them.
func (a *asm) neg(r, nb int, masked bool) {
	a.loop(uop.Bit3, a.l.Segs, func() {
		a.ar(blc(a.reg(r, uop.Bit3), a.reg(r, uop.Bit3)))
		a.ar(wbRow(a.reg(nb, uop.Bit3), uop.SrcNand, false))
	})
	a.setCarry()
	a.loop(uop.Bit3, a.l.Segs, func() {
		a.ar(blc(a.reg(nb, uop.Bit3), a.zero()))
		a.ar(wbRow(a.reg(r, uop.Bit3), uop.SrcAdd, masked))
	})
}

// WriteExt generates d ← data_in rows 0..Segs-1, the writeback path for
// scalar broadcasts (vmv.v.x) and for memory load data arriving from the
// DTUs. The VSU drives ext row s with segment s for every element.
func WriteExt(l Layout, d int, masked bool) *uop.Program {
	as := newAsm(l, "vwrite.ext")
	as.maskPrologue(masked)
	as.loop(uop.Seg0, l.Segs, func() {
		as.ar(wrExt(as.reg(d, uop.Seg0), uop.ExtBy(0, uop.Seg0), masked))
	})
	as.ret()
	return as.prog()
}

// StreamOut generates the segment-by-segment read-out of register a through
// the data_out port, feeding stores, reductions (the VRU) and scalar moves.
func StreamOut(l Layout, a int) *uop.Program {
	as := newAsm(l, "vstream.out")
	as.loop(uop.Seg0, l.Segs, func() {
		as.ar(rd(as.reg(a, uop.Seg0), uop.DstDataOut))
	})
	as.ret()
	return as.prog()
}

// Merge generates d ← v0 ? a : b (vmerge.vvm): two masked copies with the
// mask latches loaded from v0 and then its complement.
func Merge(l Layout, d, a, b int) *uop.Program {
	as := newAsm(l, "vmerge")
	as.loadMaskFromRow(as.regSeg(maskReg, 0), uop.SpreadLSB, false)
	as.loop(uop.Seg0, l.Segs, func() {
		as.copySeg(as.reg(d, uop.Seg0), as.reg(a, uop.Seg0), true)
	})
	as.loadMaskFromRow(as.regSeg(maskReg, 0), uop.SpreadLSB, true)
	as.loop(uop.Seg1, l.Segs, func() {
		as.copySeg(as.reg(d, uop.Seg1), as.reg(b, uop.Seg1), true)
	})
	as.ret()
	return as.prog()
}

// MaskLogic generates d ← a op b over mask registers: masks live in the
// element LSB of segment 0, so a single-row pass suffices (vmand.mm and
// friends).
func MaskLogic(l Layout, src uop.Src, d, a, b int) *uop.Program {
	as := newAsm(l, "vmlogic."+src.String())
	as.ar(blc(as.regSeg(a, 0), as.regSeg(b, 0)))
	as.ar(wbRow(as.regSeg(d, 0), src, false))
	as.ret()
	return as.prog()
}

// Zero generates d ← 0.
func Zero(l Layout, d int, masked bool) *uop.Program {
	as := newAsm(l, "vzero")
	as.maskPrologue(masked)
	as.loop(uop.Seg0, l.Segs, func() {
		as.ar(wrConst(as.reg(d, uop.Seg0), uop.SrcZero, masked))
	})
	as.ret()
	return as.prog()
}
