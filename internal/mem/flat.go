// Package mem provides the memory-system substrate: a flat functional data
// memory used by workload execution, and a cycle-approximate timing model of
// the cache hierarchy of Table III — parameterized caches with banks and
// MSHRs over a single-channel DDR4-2400-like DRAM. The timing model follows
// the same philosophy as the paper's gem5 setup: requests carry a timestamp
// and each level returns when the data is available, with structural hazards
// (bank conflicts, MSHR exhaustion) pushing acceptance later.
package mem

import "fmt"

// AccessError reports a flat-memory access outside the mapped range — a
// wild address, typically a kernel bug or a fault-corrupted index register.
// Flat panics with a *AccessError so the invariant still fails loudly, while
// sim.Run can recover it into a typed SimError for fault campaigns.
type AccessError struct {
	Addr uint64 // first byte of the offending access
	Len  int    // access length in bytes
	Cap  uint64 // mapped capacity
}

func (e *AccessError) Error() string {
	return fmt.Sprintf("mem: access [%#x,%#x) out of bounds (capacity %#x)",
		e.Addr, e.Addr+uint64(e.Len), e.Cap)
}

// Flat is the functional data memory: a byte-addressable array with a bump
// allocator. Address 0 is kept unmapped so that zero-value addresses fault
// loudly.
type Flat struct {
	data []byte
	brk  uint64
}

// NewFlat returns a flat memory with the given capacity in bytes.
func NewFlat(capacity int) *Flat {
	return &Flat{data: make([]byte, capacity), brk: 64}
}

// Alloc reserves n bytes aligned to align (a power of two) and returns the
// base address.
func (f *Flat) Alloc(n int, align uint64) uint64 {
	if align == 0 {
		align = 4
	}
	f.brk = (f.brk + align - 1) &^ (align - 1)
	base := f.brk
	f.brk += uint64(n)
	if f.brk > uint64(len(f.data)) {
		panic(fmt.Sprintf("mem: out of memory allocating %d bytes (brk %d, cap %d)",
			n, base, len(f.data)))
	}
	return base
}

// AllocU32 reserves space for n 32-bit words and returns the base address.
func (f *Flat) AllocU32(n int) uint64 { return f.Alloc(4*n, 64) }

func (f *Flat) check(addr uint64, n int) {
	if addr < 64 || addr+uint64(n) > uint64(len(f.data)) {
		panic(&AccessError{Addr: addr, Len: n, Cap: uint64(len(f.data))})
	}
}

// LoadU32 reads the little-endian 32-bit word at addr.
func (f *Flat) LoadU32(addr uint64) uint32 {
	f.check(addr, 4)
	d := f.data[addr:]
	return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24
}

// StoreU32 writes the little-endian 32-bit word v at addr.
func (f *Flat) StoreU32(addr uint64, v uint32) {
	f.check(addr, 4)
	d := f.data[addr:]
	d[0], d[1], d[2], d[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

// LoadI32 reads a signed 32-bit word.
func (f *Flat) LoadI32(addr uint64) int32 { return int32(f.LoadU32(addr)) }

// StoreI32 writes a signed 32-bit word.
func (f *Flat) StoreI32(addr uint64, v int32) { f.StoreU32(addr, uint32(v)) }

// Size reports the capacity in bytes.
func (f *Flat) Size() int { return len(f.data) }

// Checksum returns an FNV-1a hash of the allocated region (addresses below
// the current break). Fault campaigns compare final-state checksums against
// a fault-free baseline to detect silent data corruption the workload
// checkers miss. Stores beyond the break — possible only through a
// wild-but-in-bounds address — are deliberately outside the hash: they can
// never be read back by a kernel whose allocations all precede them.
func (f *Flat) Checksum() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range f.data[:f.brk] {
		h ^= uint64(b)
		h *= prime
	}
	return h
}
