package mem

import (
	"math/rand"
	"sort"
	"testing"
)

// TestReleaseHeapOrdering drives the hand-rolled int64 min-heap (which
// replaced container/heap to keep MSHR accounting allocation-free) through
// randomized push/pop sequences and checks it against a sorted reference.
func TestReleaseHeapOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var h releaseHeap
		var ref []int64
		for op := 0; op < 200; op++ {
			if len(ref) == 0 || rng.Intn(3) != 0 {
				v := int64(rng.Intn(1000))
				h.push(v)
				ref = append(ref, v)
			} else {
				sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
				want := ref[0]
				ref = ref[1:]
				if got := h.pop(); got != want {
					t.Fatalf("trial %d op %d: pop = %d, want %d", trial, op, got, want)
				}
			}
			if len(h) != len(ref) {
				t.Fatalf("trial %d op %d: heap has %d entries, reference %d", trial, op, len(h), len(ref))
			}
			if len(h) > 0 {
				sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
				if h[0] != ref[0] {
					t.Fatalf("trial %d op %d: heap min %d, reference min %d", trial, op, h[0], ref[0])
				}
			}
		}
		// Drain: pops must come out sorted.
		prev := int64(-1)
		for len(h) > 0 {
			v := h.pop()
			if v < prev {
				t.Fatalf("trial %d: drain out of order: %d after %d", trial, v, prev)
			}
			prev = v
		}
	}
}

// TestReleaseHeapDuplicates pins the duplicate-heavy pattern the MSHR pool
// produces (many misses completing at the same cycle).
func TestReleaseHeapDuplicates(t *testing.T) {
	var h releaseHeap
	for _, v := range []int64{5, 5, 3, 5, 3, 9} {
		h.push(v)
	}
	want := []int64{3, 3, 5, 5, 5, 9}
	for i, w := range want {
		if got := h.pop(); got != w {
			t.Fatalf("pop %d = %d, want %d", i, got, w)
		}
	}
}
