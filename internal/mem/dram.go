package mem

import "repro/internal/probe"

// DRAM models a single-channel DDR4-2400-like main memory: a fixed access
// latency plus a shared data bus whose bandwidth serializes line transfers
// (Table III: "single-channel DDR4-2400"). At the ~1 GHz core clock implied
// by the 1.025ns SRAM cycle, DDR4-2400's 19.2 GB/s moves a 64-byte line in
// about 3.3 cycles.
type DRAM struct {
	// Latency is the closed-page access latency in core cycles.
	Latency int64
	// CyclesPerLine is the bus occupancy of one 64-byte line transfer.
	CyclesPerLine float64

	busFree       float64
	accesses      uint64
	reads         uint64
	busBusy       float64
	pendingWrites int

	tr probe.Emitter
}

// SetTracer attaches a per-run event tracer under the "dram" path.
func (d *DRAM) SetTracer(tr probe.Tracer) { d.tr = probe.NewEmitter(tr, "dram") }

// ProbeStats implements probe.Source.
func (d *DRAM) ProbeStats(s *probe.Scope) {
	s.CounterU("accesses", d.accesses)
	s.CounterU("reads", d.reads)
	s.CounterU("writes", d.accesses-d.reads)
	s.Float("bus.busy_cycles", d.busBusy)
}

// ProbeGauges implements probe.GaugeSource: posted writes still parked in
// the controller's write buffer, waiting to steal a read's transfer slot.
func (d *DRAM) ProbeGauges(s *probe.Scope, now int64) {
	s.Counter("write_buffer", int64(d.pendingWrites))
}

// Table III DRAM parameters at a 1 GHz core clock: closed-page access
// latency of single-channel DDR4-2400, and bus occupancy of one 64-byte
// line at 19.2 GB/s.
const (
	dramLatency       = 50
	dramCyclesPerLine = 64.0 / 19.2
)

// DefaultDRAM returns the Table III configuration at a 1 GHz core clock.
func DefaultDRAM() *DRAM {
	return &DRAM{Latency: dramLatency, CyclesPerLine: dramCyclesPerLine}
}

// Name implements Level.
func (d *DRAM) Name() string { return "DRAM" }

// Access implements Level. Reads occupy the bus for one line transfer and
// complete after the access latency. Writes (evictions, store drains) are
// posted into the controller's write buffer and complete immediately; their
// bandwidth is charged by stealing a transfer slot from a subsequent read —
// this keeps write traffic from serializing reads at the fictitious future
// timestamps eviction events carry, while preserving the bus-bandwidth
// floor of (reads+writes)·CyclesPerLine under mixed traffic.
func (d *DRAM) Access(addr uint64, write bool, t int64) Result {
	d.accesses++
	if write {
		d.pendingWrites++
		d.busBusy += d.CyclesPerLine
		d.tr.SpanAddr(probe.KAccess, "write", t, t, addr)
		return Result{Accepted: t, Done: t + 1}
	}
	d.reads++
	start := float64(t)
	if d.busFree > start {
		start = d.busFree
	}
	occ := d.CyclesPerLine
	if d.pendingWrites > 0 {
		d.pendingWrites--
		occ += d.CyclesPerLine
	}
	d.busFree = start + occ
	d.busBusy += d.CyclesPerLine
	d.tr.SpanAddr(probe.KAccess, "read", int64(start), int64(start)+d.Latency, addr)
	return Result{Accepted: int64(start), Done: int64(start) + d.Latency}
}

// Accesses reports how many line transfers the DRAM served.
func (d *DRAM) Accesses() uint64 { return d.accesses }

// BusBusyCycles reports total bus occupancy, for bandwidth-utilization
// reporting.
func (d *DRAM) BusBusyCycles() float64 { return d.busBusy }
