package mem

import (
	"testing"
	"testing/quick"
)

func TestFlatRoundTrip(t *testing.T) {
	f := NewFlat(1 << 16)
	a := f.AllocU32(16)
	b := f.AllocU32(16)
	if a == b {
		t.Fatal("allocations overlap")
	}
	f.StoreU32(a, 0xDEADBEEF)
	f.StoreI32(b, -7)
	if f.LoadU32(a) != 0xDEADBEEF {
		t.Fatal("u32 round trip failed")
	}
	if f.LoadI32(b) != -7 {
		t.Fatal("i32 round trip failed")
	}
}

func TestFlatProperty(t *testing.T) {
	f := NewFlat(1 << 16)
	base := f.AllocU32(256)
	fn := func(idx uint8, v uint32) bool {
		addr := base + uint64(idx)*4
		f.StoreU32(addr, v)
		return f.LoadU32(addr) == v
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlatOutOfBoundsPanics(t *testing.T) {
	f := NewFlat(1 << 10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on OOB access")
		}
	}()
	f.LoadU32(uint64(f.Size()))
}

func TestCacheHitMiss(t *testing.T) {
	dram := DefaultDRAM()
	c := NewCache(CacheConfig{Name: "c", SizeBytes: 1 << 12, Ways: 2, HitLatency: 2, MSHRs: 4}, dram)
	r1 := c.Access(0x1000, false, 0)
	if r1.Done <= dram.Latency {
		t.Fatalf("first access should miss to DRAM: done=%d", r1.Done)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("stats after miss: %+v", st)
	}
	r2 := c.Access(0x1000, false, r1.Done+1)
	if got := r2.Done - r2.Accepted; got != 2 {
		t.Fatalf("hit latency = %d, want 2", got)
	}
	if c.Stats().Hits != 1 {
		t.Fatal("second access should hit")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, tiny cache: lines mapping to the same set evict LRU.
	c := NewCache(CacheConfig{Name: "c", SizeBytes: 2 * LineBytes, Ways: 2, HitLatency: 1, MSHRs: 4}, DefaultDRAM())
	// One set only. Fill both ways, then access a third line.
	c.Access(0*LineBytes, false, 0)
	c.Access(1*LineBytes, false, 100)
	c.Access(0*LineBytes, false, 200) // touch line 0: line 1 becomes LRU
	c.Access(2*LineBytes, false, 300) // evicts line 1
	if !c.Contains(0 * LineBytes) {
		t.Fatal("line 0 should remain")
	}
	if c.Contains(1 * LineBytes) {
		t.Fatal("line 1 should have been evicted (LRU)")
	}
	if !c.Contains(2 * LineBytes) {
		t.Fatal("line 2 should be resident")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := NewCache(CacheConfig{Name: "c", SizeBytes: 2 * LineBytes, Ways: 2, HitLatency: 1, MSHRs: 4}, DefaultDRAM())
	c.Access(0*LineBytes, true, 0) // dirty
	c.Access(1*LineBytes, false, 100)
	c.Access(2*LineBytes, false, 200) // evicts line 0 (dirty) -> writeback
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

// TestMSHRLimitSerializes checks that a burst of misses beyond the MSHR
// count has its tail delayed — the VMU stall effect of Fig 8.
func TestMSHRLimitSerializes(t *testing.T) {
	run := func(mshrs int) int64 {
		c := NewCache(CacheConfig{Name: "c", SizeBytes: 1 << 16, Ways: 4, HitLatency: 1, MSHRs: mshrs}, DefaultDRAM())
		var last int64
		for i := 0; i < 32; i++ {
			r := c.Access(uint64(i)*LineBytes*257, false, int64(i)) // distinct sets
			if r.Done > last {
				last = r.Done
			}
		}
		return last
	}
	few, many := run(2), run(32)
	if few <= many {
		t.Fatalf("2 MSHRs should be slower than 32: %d vs %d", few, many)
	}
	// With 2 MSHRs the requests must report acceptance stalls.
	c := NewCache(CacheConfig{Name: "c", SizeBytes: 1 << 16, Ways: 4, HitLatency: 1, MSHRs: 2}, DefaultDRAM())
	stalled := false
	for i := 0; i < 16; i++ {
		r := c.Access(uint64(i)*LineBytes*257, false, 0)
		if r.Accepted > 0 {
			stalled = true
		}
	}
	if !stalled {
		t.Fatal("expected MSHR acceptance stalls")
	}
	if c.Stats().MSHRStall == 0 {
		t.Fatal("MSHRStall counter not incremented")
	}
}

func TestMissMerging(t *testing.T) {
	c := NewCache(CacheConfig{Name: "c", SizeBytes: 1 << 14, Ways: 4, HitLatency: 1, MSHRs: 8}, DefaultDRAM())
	r1 := c.Access(0x4000, false, 0)
	r2 := c.Access(0x4000, false, 1) // same line, while outstanding
	if r2.Done < r1.Done {
		t.Fatalf("merged access finished before the fill: %d < %d", r2.Done, r1.Done)
	}
	if c.Stats().MergedMiss == 0 && c.Stats().Hits == 0 {
		t.Fatal("second access neither merged nor hit")
	}
}

func TestDRAMBandwidthSerializes(t *testing.T) {
	d := DefaultDRAM()
	r1 := d.Access(0, false, 0)
	r2 := d.Access(4096, false, 0)
	if r2.Accepted <= r1.Accepted {
		t.Fatal("bus should serialize concurrent transfers")
	}
	if d.Accesses() != 2 {
		t.Fatal("access count wrong")
	}
}

func TestHierarchySpawnTeardown(t *testing.T) {
	h := NewHierarchy()
	// Fill one L2 set across all 8 ways (stride = nsets lines), one dirty,
	// so the released ways hold data.
	nsets := uint64(L2Config.SizeBytes / (LineBytes * L2Config.Ways))
	for i := uint64(0); i < 8; i++ {
		h.L2.Access(i*nsets*LineBytes, i == 5, int64(i*200))
	}
	cost := h.SpawnEVE()
	if cost <= 0 {
		t.Fatalf("spawn cost = %d, want > 0 with resident lines", cost)
	}
	if !h.EVEActive() {
		t.Fatal("EVE should be active")
	}
	if again := h.SpawnEVE(); again != 0 {
		t.Fatalf("double spawn cost = %d, want 0", again)
	}
	h.TeardownEVE()
	if h.EVEActive() {
		t.Fatal("teardown failed")
	}
	// Teardown is free and restores ways; a fresh spawn with a cold cache
	// costs nothing.
	if cost := h.SpawnEVE(); cost != 0 {
		t.Fatalf("spawn over invalid ways cost %d, want 0", cost)
	}
}

func TestPartitionHalvesCapacity(t *testing.T) {
	h := NewHierarchy()
	h.SpawnEVE()
	// Fill more lines than 4 ways can hold in one set: 5 lines mapping to
	// the same set of the partitioned L2 must cause an eviction.
	nsets := uint64(L2Config.SizeBytes / (LineBytes * L2Config.Ways))
	base := uint64(0x100000)
	for i := uint64(0); i < 5; i++ {
		h.L2.Access(base+i*nsets*LineBytes, false, int64(i*200))
	}
	resident := 0
	for i := uint64(0); i < 5; i++ {
		if h.L2.Contains(base + i*nsets*LineBytes) {
			resident++
		}
	}
	if resident > 4 {
		t.Fatalf("partitioned L2 holds %d lines in one set; want ≤ 4", resident)
	}
}

func TestBankConflictStalls(t *testing.T) {
	c := NewCache(CacheConfig{Name: "c", SizeBytes: 1 << 16, Ways: 4, Banks: 2, HitLatency: 1, MSHRs: 32}, DefaultDRAM())
	// Warm two lines in the same bank.
	c.Access(0, false, 0)
	c.Access(2*LineBytes, false, 1000)
	// Simultaneous hits to the same bank serialize.
	r1 := c.Access(0, false, 2000)
	r2 := c.Access(2*LineBytes, false, 2000)
	if r2.Accepted <= r1.Accepted {
		t.Fatal("same-bank accesses should serialize")
	}
	if c.Stats().BankStall == 0 {
		t.Fatal("bank stall not counted")
	}
}

func TestTrafficGeneratorConsumesBandwidth(t *testing.T) {
	run := func(coRunners int) int64 {
		h := NewContendedHierarchy(coRunners, 300)
		var tt int64
		var last int64
		for i := 0; i < 512; i++ {
			r := h.LLC.Access(uint64(0x100000+i*LineBytes), false, tt)
			tt = r.Accepted + 1
			if r.Done > last {
				last = r.Done
			}
		}
		return last
	}
	alone, crowded := run(0), run(3)
	if crowded <= alone {
		t.Fatalf("3 co-runners (%d cycles) should slow a 512-line stream vs alone (%d)", crowded, alone)
	}
}
