package mem

// TrafficGenerator wraps a memory level and injects a steady stream of
// synthetic line requests ahead of real ones — modeling co-running cores
// that share the LLC-to-DRAM path in the paper's CMP setting (§I: "each
// core in a CMP can dynamically create an ephemeral private vector
// engine"). The synthetic stream walks a large private region so it
// consumes bandwidth without polluting the requester's lines.
type TrafficGenerator struct {
	Level       Level
	LinesPer1K  int    // synthetic lines injected per 1000 cycles
	RegionBase  uint64 // start of the synthetic address region
	RegionLines uint64 // region size in lines (walked circularly)

	lastT int64
	next  uint64
}

// NewTrafficGenerator returns a generator over lower injecting the given
// rate, walking a 16 MiB region well above typical workload footprints.
func NewTrafficGenerator(lower Level, linesPer1K int) *TrafficGenerator {
	return &TrafficGenerator{
		Level:       lower,
		LinesPer1K:  linesPer1K,
		RegionBase:  1 << 32,
		RegionLines: (16 << 20) / LineBytes,
	}
}

// Name implements Level.
func (g *TrafficGenerator) Name() string { return g.Level.Name() + "+traffic" }

// Access implements Level: synthetic lines for the elapsed window are
// injected first (bounded per call so a long-idle requester does not pay an
// unbounded catch-up), then the real request is forwarded.
func (g *TrafficGenerator) Access(addr uint64, write bool, t int64) Result {
	if g.LinesPer1K > 0 && t > g.lastT {
		elapsed := t - g.lastT
		n := elapsed * int64(g.LinesPer1K) / 1000
		if n > 64 {
			n = 64
		}
		for i := int64(0); i < n; i++ {
			at := g.lastT + i*elapsed/max64(n, 1)
			la := g.RegionBase + (g.next%g.RegionLines)*LineBytes
			g.next++
			g.Level.Access(la, false, at)
		}
	}
	if t > g.lastT {
		g.lastT = t
	}
	return g.Level.Access(addr, write, t)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// NewContendedHierarchy builds the Table III memory system with co-running
// cores' bandwidth pressure injected between the LLC and DRAM. Each
// co-runner contributes linesPer1K synthetic lines per 1000 cycles — a
// streaming-kernel co-runner at full DRAM tilt is ~300.
func NewContendedHierarchy(coRunners, linesPer1K int) *Hierarchy {
	dram := DefaultDRAM()
	var lower Level = dram
	if coRunners > 0 {
		lower = NewTrafficGenerator(dram, coRunners*linesPer1K)
	}
	llc := NewCache(LLCConfig, lower)
	l2 := NewCache(L2Config, llc)
	l1d := NewCache(L1DConfig, l2)
	return &Hierarchy{L1D: l1d, L2: l2, LLC: llc, DRAM: dram}
}
