package mem

import (
	"strings"
	"testing"
)

// TestCacheGeometryValidation: NewCache rejects impossible geometries loudly
// at construction, with a message naming the cache and the broken parameter,
// instead of silently mis-indexing sets at simulation time.
func TestCacheGeometryValidation(t *testing.T) {
	dram := DefaultDRAM()
	cases := []struct {
		name    string
		cfg     CacheConfig
		wantMsg string // "" means the geometry must be accepted
	}{
		{"valid-direct-mapped", CacheConfig{Name: "l1", SizeBytes: 1 << 12, Ways: 1, HitLatency: 1, MSHRs: 2}, ""},
		{"valid-8way", CacheConfig{Name: "llc", SizeBytes: 1 << 21, Ways: 8, HitLatency: 20, MSHRs: 16}, ""},
		{"zero-ways", CacheConfig{Name: "l1", SizeBytes: 1 << 12, Ways: 0}, "ways; must be positive"},
		{"negative-ways", CacheConfig{Name: "l1", SizeBytes: 1 << 12, Ways: -2}, "ways; must be positive"},
		{"zero-size", CacheConfig{Name: "l1", SizeBytes: 0, Ways: 2}, "sets; must be a positive power of two"},
		{"size-below-one-set", CacheConfig{Name: "l1", SizeBytes: LineBytes, Ways: 2}, "sets; must be a positive power of two"},
		{"non-pow2-sets", CacheConfig{Name: "l1", SizeBytes: 3 * LineBytes, Ways: 1}, "sets; must be a positive power of two"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if tc.wantMsg == "" {
					if r != nil {
						t.Fatalf("valid geometry rejected: %v", r)
					}
					return
				}
				if r == nil {
					t.Fatalf("invalid geometry %+v accepted", tc.cfg)
				}
				msg, ok := r.(string)
				if !ok {
					t.Fatalf("panic value is %T, want string", r)
				}
				if !strings.Contains(msg, tc.wantMsg) || !strings.Contains(msg, tc.cfg.Name) {
					t.Errorf("panic %q does not name %q and %q", msg, tc.cfg.Name, tc.wantMsg)
				}
			}()
			c := NewCache(tc.cfg, dram)
			if c.Name() != tc.cfg.Name {
				t.Errorf("Name() = %q, want %q", c.Name(), tc.cfg.Name)
			}
		})
	}
}

// TestFlatAccessErrorFields: out-of-range accesses panic with a typed
// *AccessError carrying the offending address, length, and capacity — the
// fields fault campaigns rely on to diagnose wild gathers.
func TestFlatAccessErrorFields(t *testing.T) {
	const capacity = 1 << 10
	cases := []struct {
		name string
		addr uint64
		do   func(f *Flat, addr uint64)
	}{
		{"load-past-end", capacity, func(f *Flat, a uint64) { f.LoadU32(a) }},
		{"load-straddles-end", capacity - 2, func(f *Flat, a uint64) { f.LoadU32(a) }},
		{"store-wild", 1 << 40, func(f *Flat, a uint64) { f.StoreU32(a, 1) }},
		{"null-page", 0, func(f *Flat, a uint64) { f.LoadU32(a) }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			f := NewFlat(capacity)
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("out-of-range access did not panic")
				}
				ae, ok := r.(*AccessError)
				if !ok {
					t.Fatalf("panic value is %T, want *AccessError", r)
				}
				if ae.Addr != tc.addr {
					t.Errorf("Addr = %#x, want %#x", ae.Addr, tc.addr)
				}
				if ae.Len != 4 {
					t.Errorf("Len = %d, want 4", ae.Len)
				}
				if ae.Cap != capacity {
					t.Errorf("Cap = %#x, want %#x", ae.Cap, uint64(capacity))
				}
				if !strings.Contains(ae.Error(), "out of bounds") {
					t.Errorf("Error() = %q lacks the out-of-bounds diagnosis", ae.Error())
				}
			}()
			tc.do(f, tc.addr)
		})
	}
}
