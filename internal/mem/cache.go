package mem

import (
	"fmt"
	"strings"

	"repro/internal/probe"
)

// LineBytes is the cache line size used throughout the hierarchy.
const LineBytes = 64

// Result describes the outcome of a timed memory access.
type Result struct {
	// Accepted is when the level actually took the request — later than the
	// request time if MSHRs or banks were exhausted (the stall Fig 8 plots).
	Accepted int64
	// Done is when the data is available to the requester.
	Done int64
}

// Level is a component that can serve timed line-granular accesses.
type Level interface {
	// Access requests the line containing addr at time t. write marks the
	// intent (write-allocate policy; dirty state tracking).
	Access(addr uint64, write bool, t int64) Result
	// Name identifies the level in statistics.
	Name() string
}

// CacheConfig parameterizes one cache level (Table III).
type CacheConfig struct {
	Name       string
	SizeBytes  int
	Ways       int
	Banks      int
	HitLatency int64
	MSHRs      int
}

// CacheStats counts cache activity.
type CacheStats struct {
	Accesses    uint64
	Hits        uint64
	Misses      uint64
	Writebacks  uint64
	MSHRStall   int64 // cycles requests spent waiting for an MSHR
	BankStall   int64 // cycles requests spent waiting for a bank
	MergedMiss  uint64
	Invalidates uint64
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64
}

// releaseHeap is a min-heap of busy-resource release times. It implements
// push/pop directly on int64 rather than through container/heap, whose
// interface{}-typed Push would box every release time on the access path.
type releaseHeap []int64

// push adds a release time, sifting it up to its heap position.
func (h *releaseHeap) push(v int64) {
	//evelint:allow hotalloc -- amortized: the backing array grows to the MSHR pool size once, then reuses
	*h = append(*h, v)
	s := *h
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if s[parent] <= s[i] {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// pop removes and returns the earliest release time.
func (h *releaseHeap) pop() int64 {
	s := *h
	earliest := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	for i := 0; ; {
		small := i
		if l := 2*i + 1; l < n && s[l] < s[small] {
			small = l
		}
		if r := 2*i + 2; r < n && s[r] < s[small] {
			small = r
		}
		if small == i {
			break
		}
		s[i], s[small] = s[small], s[i]
		i = small
	}
	return earliest
}

// Cache is one timed cache level: set-associative tags with LRU, per-bank
// occupancy, and a bounded pool of MSHRs tracking outstanding misses.
// Secondary misses to an outstanding line merge instead of consuming a new
// MSHR.
type Cache struct {
	cfg   CacheConfig
	sets  [][]line
	nsets int
	banks []int64
	mshrs releaseHeap
	// outstanding maps line address -> completion time of the in-flight miss.
	outstanding map[uint64]int64
	lower       Level
	clock       uint64 // LRU tick
	stats       CacheStats

	// partition restricts allocation to the first partitionWays ways when
	// nonzero (EVE way-partitioning, §V-E).
	partitionWays int

	tr probe.Emitter
}

// SetTracer attaches a per-run event tracer; the cache traces under its
// lower-cased level name ("l1d", "l2", "llc").
func (c *Cache) SetTracer(tr probe.Tracer) {
	c.tr = probe.NewEmitter(tr, strings.ToLower(c.cfg.Name))
}

// ProbeStats implements probe.Source, publishing the level's counters into
// the hierarchical registry.
func (c *Cache) ProbeStats(s *probe.Scope) {
	st := c.stats
	s.CounterU("accesses", st.Accesses)
	s.CounterU("hits", st.Hits)
	s.CounterU("misses", st.Misses)
	rate := 0.0
	if st.Accesses > 0 {
		rate = float64(st.Misses) / float64(st.Accesses)
	}
	s.Float("miss_rate", rate)
	s.CounterU("writebacks", st.Writebacks)
	s.CounterU("merged_misses", st.MergedMiss)
	s.CounterU("invalidates", st.Invalidates)
	s.Counter("mshr.stall_cycles", st.MSHRStall)
	s.Counter("bank.stall_cycles", st.BankStall)
}

// NewCache builds a cache over the given lower level.
func NewCache(cfg CacheConfig, lower Level) *Cache {
	if cfg.Ways <= 0 {
		panic(fmt.Sprintf("mem: %s has %d ways; must be positive", cfg.Name, cfg.Ways))
	}
	nsets := cfg.SizeBytes / (LineBytes * cfg.Ways)
	if nsets <= 0 || nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("mem: %s has %d sets; must be a positive power of two", cfg.Name, nsets))
	}
	if cfg.Banks <= 0 {
		cfg.Banks = 1
	}
	c := &Cache{
		cfg:         cfg,
		nsets:       nsets,
		sets:        make([][]line, nsets),
		banks:       make([]int64, cfg.Banks),
		outstanding: make(map[uint64]int64),
		lower:       lower,
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	return c
}

// Name identifies the cache.
func (c *Cache) Name() string { return c.cfg.Name }

// Ways reports the cache's configured associativity (ignoring any active
// partition), so callers holding only the built cache — a hierarchy whose
// geometry was overridden per cell, say — can reason about way splits
// without reaching for the package-level Table III configs.
func (c *Cache) Ways() int { return c.cfg.Ways }

// ActiveWays reports the associativity currently available to the
// replacement policy: the partition size while an EVE owns the rest,
// the configured Ways otherwise.
func (c *Cache) ActiveWays() int { return c.ways() }

// ProbeGauges implements probe.GaugeSource: the level's instantaneous state
// per window — live associativity (it shrinks while an EVE owns ways) and
// how many MSHRs are still tracking in-flight misses at cycle now.
func (c *Cache) ProbeGauges(s *probe.Scope, now int64) {
	s.Counter("ways_active", int64(c.ways()))
	var busy int64
	for _, release := range c.mshrs {
		if release > now {
			busy++
		}
	}
	s.Counter("mshr.occupancy", busy)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// ResetStats zeroes the counters (tags and timing state are kept).
func (c *Cache) ResetStats() { c.stats = CacheStats{} }

func (c *Cache) index(lineAddr uint64) (set int, tag uint64) {
	return int(lineAddr % uint64(c.nsets)), lineAddr / uint64(c.nsets)
}

func (c *Cache) ways() int {
	if c.partitionWays > 0 {
		return c.partitionWays
	}
	return c.cfg.Ways
}

// Access implements Level.
func (c *Cache) Access(addr uint64, write bool, t int64) Result {
	c.stats.Accesses++
	lineAddr := addr / LineBytes
	set, tag := c.index(lineAddr)

	// Bank arbitration: each access occupies its bank for one cycle.
	// Requests from decoupled units arrive with out-of-order timestamps, so
	// a conflict is only honored within a small window — otherwise a
	// future-timestamped access would falsely block much earlier ones.
	const bankWindow = 4
	b := int(lineAddr) % len(c.banks)
	start := t
	if c.banks[b] > start && c.banks[b]-start <= bankWindow {
		c.stats.BankStall += c.banks[b] - start
		c.tr.Span(probe.KStall, "bank", start, c.banks[b])
		start = c.banks[b]
	}
	if start+1 > c.banks[b] {
		c.banks[b] = start + 1
	}

	ways := c.ways()
	ls := c.sets[set][:ways]
	c.clock++
	for i := range ls {
		if ls[i].valid && ls[i].tag == tag {
			c.stats.Hits++
			ls[i].lru = c.clock
			if write {
				ls[i].dirty = true
			}
			done := start + c.cfg.HitLatency
			// A line installed by an in-flight miss is not actually present
			// until its fill completes; late hits wait for it.
			if pend, ok := c.outstanding[lineAddr]; ok {
				if pend > done {
					done = pend
				} else {
					delete(c.outstanding, lineAddr)
				}
			}
			c.tr.SpanAddr(probe.KAccess, "hit", start, done, lineAddr*LineBytes)
			return Result{Accepted: start, Done: done}
		}
	}

	// Miss. Merge with an outstanding request to the same line if any.
	c.stats.Misses++
	if done, ok := c.outstanding[lineAddr]; ok {
		c.stats.MergedMiss++
		if done < start+c.cfg.HitLatency {
			done = start + c.cfg.HitLatency
		}
		c.tr.SpanAddr(probe.KAccess, "merged_miss", start, done, lineAddr*LineBytes)
		return Result{Accepted: start, Done: done}
	}

	// Write misses allocate without fetching: cache-line-granular writers
	// (vector store drains, writebacks from above) overwrite the whole line,
	// so no read of the lower level is needed — the bandwidth is charged
	// when the dirty line eventually writes back.
	if write {
		c.install(set, tag, true, start)
		c.tr.SpanAddr(probe.KAccess, "write_alloc", start, start+c.cfg.HitLatency, lineAddr*LineBytes)
		return Result{Accepted: start, Done: start + c.cfg.HitLatency}
	}

	// Acquire an MSHR, stalling until one frees if the pool is full.
	issue := start
	for len(c.mshrs) > 0 && c.mshrs[0] <= issue {
		c.mshrs.pop()
	}
	if len(c.mshrs) >= c.cfg.MSHRs {
		free := c.mshrs[0]
		c.stats.MSHRStall += free - issue
		c.tr.Span(probe.KStall, "mshr", issue, free)
		issue = free
		for len(c.mshrs) > 0 && c.mshrs[0] <= issue {
			c.mshrs.pop()
		}
	}

	lower := c.lower.Access(addr, false, issue+c.cfg.HitLatency)
	done := lower.Done + c.cfg.HitLatency
	c.mshrs.push(done)
	// The tag is installed now but marked outstanding until the fill
	// completes, so accesses arriving before `done` wait for it. Entries are
	// cleaned lazily on later hits, with a size-bounded sweep as backstop.
	c.outstanding[lineAddr] = done
	if len(c.outstanding) > 4096 {
		for k, v := range c.outstanding {
			if v <= issue {
				delete(c.outstanding, k)
			}
		}
	}
	c.install(set, tag, write, done)
	c.tr.SpanAddr(probe.KAccess, "miss", start, done, lineAddr*LineBytes)
	return Result{Accepted: issue, Done: done}
}

// install places the fetched line, evicting the LRU victim (writing it back
// if dirty).
func (c *Cache) install(set int, tag uint64, dirty bool, t int64) {
	ways := c.ways()
	ls := c.sets[set][:ways]
	victim := 0
	for i := range ls {
		if !ls[i].valid {
			victim = i
			break
		}
		if ls[i].lru < ls[victim].lru {
			victim = i
		}
	}
	if ls[victim].valid && ls[victim].dirty {
		c.stats.Writebacks++
		victimLine := ls[victim].tag*uint64(c.nsets) + uint64(set)
		if c.tr.On() {
			c.tr.Emit(probe.Event{Kind: probe.KWriteback, Name: "writeback",
				Begin: t, End: t, Addr: victimLine * LineBytes})
		}
		c.lower.Access(victimLine*LineBytes, true, t)
	}
	ls[victim] = line{tag: tag, valid: true, dirty: dirty, lru: c.clock}
}

// Partition restricts the cache to its first `ways` ways, invalidating lines
// in the released ways and reporting how many were dirty — the reconfiguration
// that spawns EVE (§V-E). Pass cfg.Ways (or 0) to restore full associativity;
// restored ways come back invalid, also per §V-E.
func (c *Cache) Partition(ways int) (invalidated, dirty int) {
	if ways <= 0 || ways > c.cfg.Ways {
		ways = c.cfg.Ways
	}
	for s := range c.sets {
		for w := ways; w < c.cfg.Ways; w++ {
			l := &c.sets[s][w]
			if l.valid {
				invalidated++
				if l.dirty {
					dirty++
				}
				c.stats.Invalidates++
			}
			*l = line{}
		}
	}
	c.partitionWays = ways
	return invalidated, dirty
}

// Contains reports whether the line holding addr is resident (testing aid).
func (c *Cache) Contains(addr uint64) bool {
	lineAddr := addr / LineBytes
	set, tag := c.index(lineAddr)
	for _, l := range c.sets[set][:c.ways()] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}
