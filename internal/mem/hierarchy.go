package mem

import "repro/internal/probe"

// Hierarchy assembles Table III's memory system for one core: private L1D
// and L2 over a shared LLC and single-channel DRAM. The hierarchy is
// inclusive; EVE spawning way-partitions the L2 (§V-E).
type Hierarchy struct {
	L1D  *Cache
	L2   *Cache
	LLC  *Cache
	DRAM *DRAM

	eveActive bool
}

// Table III cache parameters.
var (
	L1DConfig = CacheConfig{Name: "L1D", SizeBytes: 32 << 10, Ways: 4, Banks: 1, HitLatency: 2, MSHRs: 16}
	L2Config  = CacheConfig{Name: "L2", SizeBytes: 512 << 10, Ways: 8, Banks: 8, HitLatency: 8, MSHRs: 32}
	LLCConfig = CacheConfig{Name: "LLC", SizeBytes: 2 << 20, Ways: 16, Banks: 8, HitLatency: 12, MSHRs: 32}
)

// NewHierarchy builds the Table III memory system.
func NewHierarchy() *Hierarchy {
	return NewHierarchyCfg(L1DConfig, L2Config, LLCConfig)
}

// NewHierarchyCfg builds a hierarchy with custom cache parameters (ablation
// studies; the defaults are Table III's).
func NewHierarchyCfg(l1d, l2c, llc CacheConfig) *Hierarchy {
	dram := DefaultDRAM()
	llcC := NewCache(llc, dram)
	l2C := NewCache(l2c, llcC)
	l1dC := NewCache(l1d, l2C)
	return &Hierarchy{L1D: l1dC, L2: l2C, LLC: llcC, DRAM: dram}
}

// SetTracer attaches one per-run event tracer to every level; each level
// emits under its own component path (l1d, l2, llc, dram).
func (h *Hierarchy) SetTracer(tr probe.Tracer) {
	h.L1D.SetTracer(tr)
	h.L2.SetTracer(tr)
	h.LLC.SetTracer(tr)
	h.DRAM.SetTracer(tr)
}

// RegisterStats registers every level of the hierarchy with the stats
// registry under its canonical dotted path.
func (h *Hierarchy) RegisterStats(r *probe.Registry) {
	r.Register("l1d", h.L1D)
	r.Register("l2", h.L2)
	r.Register("llc", h.LLC)
	r.Register("dram", h.DRAM)
}

// CoreAccess performs a scalar core data access through L1D.
func (h *Hierarchy) CoreAccess(addr uint64, write bool, t int64) Result {
	return h.L1D.Access(addr, write, t)
}

// EVEActive reports whether the L2 is currently partitioned for EVE.
func (h *Hierarchy) EVEActive() bool { return h.eveActive }

// SpawnEVE way-partitions the L2 in half (§V-E): the released ways'
// lines are invalidated — a constant number of cycles per line, with dirty
// lines additionally writing back to the LLC — and the method returns the
// reconfiguration cost in cycles. Spawning when already active is free.
func (h *Hierarchy) SpawnEVE() int64 {
	if h.eveActive {
		return 0
	}
	// Halve the L2's *actual* associativity: a hierarchy built with a custom
	// geometry (design-space exploration) splits its own ways, not Table III's.
	invalidated, dirty := h.L2.Partition(h.L2.Ways() / 2)
	h.eveActive = true
	// One cycle to invalidate each line; dirty lines take two more to issue
	// the writeback to the LLC (§V-E: linear in the number of cache lines).
	return int64(invalidated) + 2*int64(dirty)
}

// TeardownEVE restores the full L2 associativity. Per §V-E this is free:
// the returned ways simply come back invalid.
func (h *Hierarchy) TeardownEVE() {
	if !h.eveActive {
		return
	}
	h.L2.Partition(0)
	h.eveActive = false
}
