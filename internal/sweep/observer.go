package sweep

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/sim"
)

// Progress is an Observer printing one line per completed cell — aggregate
// progress, the cell's cycle count (or failure) and its wall time — plus a
// sweep summary when the last cell lands. It serializes writes internally,
// so a single Progress may observe any number of workers.
type Progress struct {
	mu    sync.Mutex
	w     io.Writer
	start time.Time
	busy  time.Duration // summed per-cell wall time (CPU-side work)
}

// NewProgress returns a Progress writing to w. The construction timestamp
// anchors the sweep's elapsed-time summary; it is display-only and never
// reaches a simulated result.
func NewProgress(w io.Writer) *Progress {
	return &Progress{w: w, start: time.Now()} //evelint:allow simpurity -- progress telemetry, not simulated state
}

// CellStart implements Observer.
func (p *Progress) CellStart(kernel, system string) {}

// CellDone implements Observer.
func (p *Progress) CellDone(done, total int, r sim.Result, wall time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.busy += wall
	status := fmt.Sprintf("%d cycles", r.Cycles)
	if r.Err != nil {
		status = "FAILED: " + r.Err.Error()
	}
	// Progress lines are best-effort: a broken progress pipe must not abort
	// a long sweep, so write errors are deliberately ignored.
	//evelint:allow errdrop -- best-effort progress output; a failed write must not kill the sweep
	fmt.Fprintf(p.w, "[%d/%d] %-11s %-10s %s (%.2fs)\n",
		done, total, r.Kernel, r.System, status, wall.Seconds())
	if done == total {
		elapsed := time.Since(p.start) //evelint:allow simpurity -- progress telemetry, not simulated state
		//evelint:allow errdrop -- best-effort progress output; a failed write must not kill the sweep
		fmt.Fprintf(p.w, "sweep: %d cells in %.2fs wall (%.2fs of simulation, %.1fx overlap)\n",
			total, elapsed.Seconds(), p.busy.Seconds(), p.busy.Seconds()/elapsed.Seconds())
	}
}
