package sweep

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/sim"
)

// Progress is an Observer printing one line per completed cell — aggregate
// progress, the cell's cycle count (or failure) and its wall time — plus a
// sweep summary when the pool drains. The summary is emitted from SweepDone,
// so it survives early aborts and cancellation: an interrupted sweep still
// reports how far it got instead of going silent. Progress serializes writes
// internally, so a single Progress may observe any number of workers.
type Progress struct {
	mu       sync.Mutex
	w        io.Writer
	start    time.Time
	busy     time.Duration // summed per-cell wall time (CPU-side work)
	retried  int           // re-attempts scheduled (CellRetry events)
	timedOut int           // cells whose final outcome was a watchdog timeout
}

// NewProgress returns a Progress writing to w. The construction timestamp
// anchors the sweep's elapsed-time summary; it is display-only and never
// reaches a simulated result.
func NewProgress(w io.Writer) *Progress {
	return &Progress{w: w, start: time.Now()} //evelint:allow simpurity -- progress telemetry, not simulated state
}

// CellStart implements Observer.
func (p *Progress) CellStart(i int, kernel, system string) {}

// CellDone implements Observer.
func (p *Progress) CellDone(i, done, total int, r sim.Result, wall time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.busy += wall
	status := fmt.Sprintf("%d cycles", r.Cycles)
	if r.Err != nil {
		status = "FAILED: " + r.Err.Error()
		if IsTimeout(r.Err) {
			p.timedOut++
		}
	}
	// The ETA extrapolates the observed cells/sec over the remaining cells.
	// It is display-only wall-clock telemetry and never reaches a Result.
	eta := ""
	elapsed := time.Since(p.start) //evelint:allow simpurity -- progress telemetry, not simulated state
	if done > 0 && done < total && elapsed > 0 {
		remaining := time.Duration(float64(elapsed) / float64(done) * float64(total-done))
		eta = fmt.Sprintf(" eta %s", remaining.Round(time.Second))
	}
	// Progress lines are best-effort: a broken progress pipe must not abort
	// a long sweep, so write errors are deliberately ignored.
	//evelint:allow errdrop -- best-effort progress output; a failed write must not kill the sweep
	fmt.Fprintf(p.w, "[%d/%d] %-11s %-10s %s (%.2fs)%s\n",
		done, total, r.Kernel, r.System, status, wall.Seconds(), eta)
}

// CellRetry implements RetryObserver: retries are counted for the summary
// but deliberately not printed per-event — the retried cell's final
// CellDone line already tells the story.
func (p *Progress) CellRetry(i int, kernel, system string, attempt int, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.retried++
}

// SweepDone implements Observer: the end-of-sweep summary, emitted whether
// the sweep completed, aborted, or was cancelled.
func (p *Progress) SweepDone(done, total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	elapsed := time.Since(p.start) //evelint:allow simpurity -- progress telemetry, not simulated state
	overlap := 0.0
	if elapsed > 0 {
		overlap = p.busy.Seconds() / elapsed.Seconds()
	}
	head := fmt.Sprintf("sweep: %d cells", total)
	if done != total {
		head = fmt.Sprintf("sweep: stopped after %d/%d cells", done, total)
	}
	tail := ""
	if p.retried > 0 || p.timedOut > 0 {
		tail = fmt.Sprintf(", %d retried, %d timed out", p.retried, p.timedOut)
	}
	//evelint:allow errdrop -- best-effort progress output; a failed write must not kill the sweep
	fmt.Fprintf(p.w, "%s in %.2fs wall (%.2fs of simulation, %.1fx overlap%s)\n",
		head, elapsed.Seconds(), p.busy.Seconds(), overlap, tail)
}
