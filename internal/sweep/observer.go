package sweep

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/sim"
)

// Progress is an Observer printing one line per completed cell — aggregate
// progress, the cell's cycle count (or failure) and its wall time — plus a
// sweep summary when the pool drains. The summary is emitted from SweepDone,
// so it survives early aborts and cancellation: an interrupted sweep still
// reports how far it got instead of going silent. Progress serializes writes
// internally, so a single Progress may observe any number of workers.
type Progress struct {
	mu    sync.Mutex
	w     io.Writer
	start time.Time
	busy  time.Duration // summed per-cell wall time (CPU-side work)
}

// NewProgress returns a Progress writing to w. The construction timestamp
// anchors the sweep's elapsed-time summary; it is display-only and never
// reaches a simulated result.
func NewProgress(w io.Writer) *Progress {
	return &Progress{w: w, start: time.Now()} //evelint:allow simpurity -- progress telemetry, not simulated state
}

// CellStart implements Observer.
func (p *Progress) CellStart(i int, kernel, system string) {}

// CellDone implements Observer.
func (p *Progress) CellDone(i, done, total int, r sim.Result, wall time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.busy += wall
	status := fmt.Sprintf("%d cycles", r.Cycles)
	if r.Err != nil {
		status = "FAILED: " + r.Err.Error()
	}
	// Progress lines are best-effort: a broken progress pipe must not abort
	// a long sweep, so write errors are deliberately ignored.
	//evelint:allow errdrop -- best-effort progress output; a failed write must not kill the sweep
	fmt.Fprintf(p.w, "[%d/%d] %-11s %-10s %s (%.2fs)\n",
		done, total, r.Kernel, r.System, status, wall.Seconds())
}

// SweepDone implements Observer: the end-of-sweep summary, emitted whether
// the sweep completed, aborted, or was cancelled.
func (p *Progress) SweepDone(done, total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	elapsed := time.Since(p.start) //evelint:allow simpurity -- progress telemetry, not simulated state
	overlap := 0.0
	if elapsed > 0 {
		overlap = p.busy.Seconds() / elapsed.Seconds()
	}
	head := fmt.Sprintf("sweep: %d cells", total)
	if done != total {
		head = fmt.Sprintf("sweep: stopped after %d/%d cells", done, total)
	}
	//evelint:allow errdrop -- best-effort progress output; a failed write must not kill the sweep
	fmt.Fprintf(p.w, "%s in %.2fs wall (%.2fs of simulation, %.1fx overlap)\n",
		head, elapsed.Seconds(), p.busy.Seconds(), overlap)
}
