package sweep

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// determinismKernels is a reduced grid that still exercises every engine
// path — streaming loads/stores, strided k-means traffic, multiplies,
// predication, reductions — while keeping the serial-vs-parallel
// comparison fast enough to run under the race detector in CI.
func determinismKernels() []*workloads.Kernel {
	return []*workloads.Kernel{
		workloads.NewVVAdd(1 << 10),
		workloads.NewMMult(8, 8, 64),
		workloads.NewKMeans(256, 8, 3),
		workloads.NewSW(48),
	}
}

// TestParallelMatchesSerial is the determinism regression test: the
// parallel runner must reproduce the serial sim.Matrix exactly — cycles,
// instruction mixes, breakdowns, cache stats, everything in sim.Result —
// at every worker count. Run with -race, this doubles as the data-race
// audit of the whole simulation stack.
func TestParallelMatchesSerial(t *testing.T) {
	systems := sim.AllSystems()
	kernels := determinismKernels()
	want := sim.Matrix(systems, kernels)

	workerCounts := []int{1, 2, 4, 8}
	if testing.Short() {
		workerCounts = []int{4}
	}
	for _, workers := range workerCounts {
		got, err := Matrix(systems, kernels, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d kernel rows, want %d", workers, len(got), len(want))
		}
		for ki := range want {
			for si := range want[ki] {
				if !reflect.DeepEqual(got[ki][si], want[ki][si]) {
					t.Errorf("workers=%d: cell (%s, %s) diverges from serial:\n got  %+v\n want %+v",
						workers, kernels[ki].Name, systems[si].Name(), got[ki][si], want[ki][si])
				}
			}
		}
	}
}

// TestRepeatedParallelRunsIdentical re-runs the same parallel sweep and
// requires identical matrices — scheduling noise must never leak into
// results.
func TestRepeatedParallelRunsIdentical(t *testing.T) {
	systems := []sim.Config{{Kind: sim.SysIO}, {Kind: sim.SysO3EVE, N: 8}}
	kernels := []*workloads.Kernel{workloads.NewVVAdd(1 << 10), workloads.NewSW(48)}
	first, err := Matrix(systems, kernels, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	second, err := Matrix(systems, kernels, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("two identical parallel sweeps disagree:\n first  %+v\n second %+v", first, second)
	}
}

// panicKernel crashes midway through its simulation.
func panicKernel() *workloads.Kernel {
	return &workloads.Kernel{
		Name:  "panics",
		Suite: "test",
		Input: "n/a",
		Run: func(b *isa.Builder, vector bool) workloads.CheckFunc {
			panic("deliberate test crash")
		},
	}
}

// failKernel simulates fine but fails output validation.
func failKernel() *workloads.Kernel {
	return &workloads.Kernel{
		Name:  "fails",
		Suite: "test",
		Input: "n/a",
		Run: func(b *isa.Builder, vector bool) workloads.CheckFunc {
			b.ScalarOps(1)
			return func() error { return errors.New("validation mismatch") }
		},
	}
}

// TestPanicBecomesCellError: a crashing cell must not kill the sweep; it
// lands in that cell's Result.Err with the panic message, and healthy
// cells still complete.
func TestPanicBecomesCellError(t *testing.T) {
	systems := []sim.Config{{Kind: sim.SysIO}}
	kernels := []*workloads.Kernel{panicKernel(), workloads.NewVVAdd(256)}
	got, err := Matrix(systems, kernels, Options{Workers: 2})
	if err == nil {
		t.Fatal("sweep with a panicking cell returned nil error")
	}
	if !strings.Contains(got[0][0].Err.Error(), "deliberate test crash") {
		t.Errorf("panic cell error = %v, want the panic message", got[0][0].Err)
	}
	if got[0][0].System != "IO" || got[0][0].Kernel != "panics" {
		t.Errorf("panic cell lost its identity: %+v", got[0][0])
	}
	if got[1][0].Err != nil {
		t.Errorf("healthy cell failed after sibling panic: %v", got[1][0].Err)
	}
	if got[1][0].Cycles <= 0 {
		t.Errorf("healthy cell has nonpositive cycles: %+v", got[1][0])
	}
}

// TestAbortOnError: with one worker the grid runs in row-major order, so a
// first-cell failure must skip every later cell with ErrSkipped.
func TestAbortOnError(t *testing.T) {
	systems := []sim.Config{{Kind: sim.SysIO}}
	kernels := []*workloads.Kernel{failKernel(), workloads.NewVVAdd(256), workloads.NewSW(48)}
	got, err := Matrix(systems, kernels, Options{Workers: 1, AbortOnError: true})
	if err == nil {
		t.Fatal("aborting sweep returned nil error")
	}
	if got[0][0].Err == nil || !strings.Contains(got[0][0].Err.Error(), "validation mismatch") {
		t.Errorf("failing cell error = %v", got[0][0].Err)
	}
	for ki := 1; ki < len(kernels); ki++ {
		if !errors.Is(got[ki][0].Err, ErrSkipped) {
			t.Errorf("cell %d after failure: err = %v, want ErrSkipped", ki, got[ki][0].Err)
		}
		if got[ki][0].Kernel != kernels[ki].Name || got[ki][0].System != "IO" {
			t.Errorf("skipped cell %d lost its identity: %+v", ki, got[ki][0])
		}
	}
	// The reported error is the row-major first failure, not a skip marker.
	if errors.Is(err, ErrSkipped) {
		t.Errorf("sweep error should be the root failure, got %v", err)
	}
}

// countingObserver tallies events for the observer-plumbing test.
type countingObserver struct {
	mu        sync.Mutex
	starts    int
	dones     int
	maxDon    int
	total     int
	wall      time.Duration
	sweepDone int // SweepDone invocations
	finalDone int // done count reported by SweepDone
	cellsSeen map[int]int // cell index -> CellDone count
}

func (c *countingObserver) CellStart(i int, kernel, system string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.starts++
}

func (c *countingObserver) CellDone(i, done, total int, r sim.Result, wall time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dones++
	c.total = total
	if done > c.maxDon {
		c.maxDon = done
	}
	c.wall += wall
	if c.cellsSeen == nil {
		c.cellsSeen = map[int]int{}
	}
	c.cellsSeen[i]++
}

func (c *countingObserver) SweepDone(done, total int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepDone++
	c.finalDone = done
}

// TestObserverSeesEveryCell checks the progress plumbing: one start and one
// done per cell, the done counter reaching the grid size, and nonzero
// aggregate wall time.
func TestObserverSeesEveryCell(t *testing.T) {
	systems := []sim.Config{{Kind: sim.SysIO}, {Kind: sim.SysO3}}
	kernels := []*workloads.Kernel{workloads.NewVVAdd(256), workloads.NewSW(32)}
	obs := &countingObserver{}
	if _, err := Matrix(systems, kernels, Options{Workers: 3, Observer: obs}); err != nil {
		t.Fatal(err)
	}
	cells := len(systems) * len(kernels)
	if obs.starts != cells || obs.dones != cells {
		t.Errorf("observer saw %d starts / %d dones, want %d each", obs.starts, obs.dones, cells)
	}
	if obs.maxDon != cells || obs.total != cells {
		t.Errorf("observer progress peaked at %d/%d, want %d/%d", obs.maxDon, obs.total, cells, cells)
	}
	if obs.wall <= 0 {
		t.Errorf("observer aggregate wall time = %v, want > 0", obs.wall)
	}
	if obs.sweepDone != 1 || obs.finalDone != cells {
		t.Errorf("SweepDone fired %d times with done=%d, want once with %d", obs.sweepDone, obs.finalDone, cells)
	}
	for i := 0; i < cells; i++ {
		if obs.cellsSeen[i] != 1 {
			t.Errorf("cell %d fired CellDone %d times, want once", i, obs.cellsSeen[i])
		}
	}
}

// TestEmptyGrid: a degenerate sweep must return the right shape and no
// error rather than deadlocking on an empty job stream.
func TestEmptyGrid(t *testing.T) {
	got, err := Matrix(nil, nil, Options{Workers: 4})
	if err != nil || len(got) != 0 {
		t.Fatalf("empty sweep = (%v, %v), want ([], nil)", got, err)
	}
	got, err = Matrix(sim.AllSystems(), nil, Options{})
	if err != nil || len(got) != 0 {
		t.Fatalf("kernel-less sweep = (%v, %v), want ([], nil)", got, err)
	}
}

// TestContextCancelSkipsRemaining: with one worker the grid runs in order,
// so a cancellation fired from inside the first cell must mark every later
// cell ErrSkipped — the early-abort path reused for cancellation — while
// the finished cell's result stands and SweepDone still reports the tally.
func TestContextCancelSkipsRemaining(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ok := sim.Result{Kernel: "k", System: "s", Cycles: 7}
	cells := []Cell{
		{Kernel: "first", System: "s", Run: func() sim.Result { cancel(); return ok }},
		{Kernel: "second", System: "s", Run: func() sim.Result { return ok }},
		{Kernel: "third", System: "s", Run: func() sim.Result { return ok }},
	}
	obs := &countingObserver{}
	got, err := ForEach(cells, Options{Workers: 1, Context: ctx, Observer: obs})
	if err == nil || !errors.Is(err, ErrSkipped) {
		t.Fatalf("cancelled sweep error = %v, want ErrSkipped symptom", err)
	}
	if got[0].Err != nil || got[0].Cycles != 7 {
		t.Errorf("finished cell perturbed by cancellation: %+v", got[0])
	}
	for i := 1; i < len(cells); i++ {
		if !errors.Is(got[i].Err, ErrSkipped) {
			t.Errorf("cell %d after cancel: err = %v, want ErrSkipped", i, got[i].Err)
		}
	}
	if obs.sweepDone != 1 || obs.finalDone != 1 || obs.total != 3 {
		t.Errorf("observer summary after cancel = %d fires, %d/%d done, want 1 fire, 1/3", obs.sweepDone, obs.finalDone, obs.total)
	}
}

// TestContextCancelRace drives a real parallel sweep while cancelling from
// the outside — under -race this audits the cancellation path's memory
// discipline. Every cell must land either a valid result or ErrSkipped, and
// the observer must see exactly one SweepDone.
func TestContextCancelRace(t *testing.T) {
	systems := sim.AllSystems()
	kernels := determinismKernels()
	var cells []Cell
	for _, k := range kernels {
		for _, s := range systems {
			k, s := k, s
			cells = append(cells, Cell{Kernel: k.Name, System: s.Name(),
				Run: func() sim.Result { return sim.Run(s, k) }})
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	obs := &countingObserver{}
	done := make(chan struct{})
	go func() {
		// Cancel as soon as the first few cells complete.
		for {
			obs.mu.Lock()
			n := obs.dones
			obs.mu.Unlock()
			if n >= 2 {
				cancel()
				close(done)
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	got, _ := ForEach(cells, Options{Workers: 4, Context: ctx, Observer: obs})
	<-done
	cancel()
	finished := 0
	for i, r := range got {
		switch {
		case errors.Is(r.Err, ErrSkipped):
		case r.Err == nil && r.Cycles > 0:
			finished++
		default:
			t.Errorf("cell %d has unexpected outcome: cycles=%d err=%v", i, r.Cycles, r.Err)
		}
	}
	if finished == 0 {
		t.Error("no cell finished before cancellation took effect")
	}
	if obs.sweepDone != 1 {
		t.Errorf("SweepDone fired %d times, want exactly once", obs.sweepDone)
	}
	if obs.finalDone != finished {
		t.Errorf("SweepDone reported %d done, observer counted %d", obs.finalDone, finished)
	}
}

// TestCellTimeout: the wall-clock watchdog must convert a wedged cell into
// a *TimeoutError result with a stable first line, while healthy siblings
// complete untouched.
func TestCellTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	cells := []Cell{
		{Kernel: "wedged", System: "s", Run: func() sim.Result {
			<-release // blocks until test teardown
			return sim.Result{Kernel: "wedged", System: "s"}
		}},
		{Kernel: "healthy", System: "s", Run: func() sim.Result {
			return sim.Result{Kernel: "healthy", System: "s", Cycles: 3}
		}},
	}
	got, err := ForEach(cells, Options{Workers: 2, CellTimeout: 20 * time.Millisecond})
	if err == nil {
		t.Fatal("sweep with a wedged cell returned nil error")
	}
	var te *TimeoutError
	if !errors.As(got[0].Err, &te) {
		t.Fatalf("wedged cell error = %v, want *TimeoutError", got[0].Err)
	}
	if te.Kernel != "wedged" || te.Budget != 20*time.Millisecond {
		t.Errorf("timeout identity = %+v", te)
	}
	if want := "sweep: wedged on s exceeded the 20ms per-cell wall-clock budget"; te.Error() != want {
		t.Errorf("timeout message = %q, want %q (stable first line)", te.Error(), want)
	}
	if got[1].Err != nil || got[1].Cycles != 3 {
		t.Errorf("healthy sibling perturbed: %+v", got[1])
	}
}

// TestRetryPolicy: bounded retries with a retryable filter. A transient
// failure clears within budget; a non-retryable failure is never re-run; an
// exhausted cell keeps its final error after exactly Max+1 attempts.
func TestRetryPolicy(t *testing.T) {
	retryable := errors.New("host trouble")
	fatal := errors.New("deterministic validation failure")
	var attempts [3]int
	cells := []Cell{
		{Kernel: "transient", System: "s", Run: func() sim.Result {
			attempts[0]++
			if attempts[0] < 3 {
				return sim.Result{Err: retryable}
			}
			return sim.Result{Cycles: 1}
		}},
		{Kernel: "nonretryable", System: "s", Run: func() sim.Result {
			attempts[1]++
			return sim.Result{Err: fatal}
		}},
		{Kernel: "exhausted", System: "s", Run: func() sim.Result {
			attempts[2]++
			return sim.Result{Err: retryable}
		}},
	}
	policy := RetryPolicy{
		Max:       3,
		Backoff:   time.Millisecond,
		Retryable: func(err error) bool { return errors.Is(err, retryable) },
	}
	got, err := ForEach(cells, Options{Workers: 1, Retry: policy})
	if err == nil {
		t.Fatal("sweep with failing cells returned nil error")
	}
	if attempts != [3]int{3, 1, 4} {
		t.Errorf("attempts = %v, want [3 1 4] (clear on 3rd, never retried, Max+1)", attempts)
	}
	if got[0].Err != nil {
		t.Errorf("transient cell still failed: %v", got[0].Err)
	}
	if !errors.Is(got[1].Err, fatal) || !errors.Is(got[2].Err, retryable) {
		t.Errorf("failed cells lost their errors: %v, %v", got[1].Err, got[2].Err)
	}
}

// TestRetryOnce: RetryOnce re-runs a failed cell exactly once. A transient
// failure clears on the retry; a deterministic failure burns its single
// retry and stays failed; a healthy cell never reruns.
func TestRetryOnce(t *testing.T) {
	var attempts [3]int
	result := func(err error) sim.Result {
		return sim.Result{Kernel: "k", System: "s", Cycles: 1, Err: err}
	}
	cells := []Cell{
		{Kernel: "transient", System: "s", Run: func() sim.Result {
			attempts[0]++
			if attempts[0] == 1 {
				return result(errors.New("flaky host"))
			}
			return result(nil)
		}},
		{Kernel: "deterministic", System: "s", Run: func() sim.Result {
			attempts[1]++
			return result(errors.New("always fails"))
		}},
		{Kernel: "healthy", System: "s", Run: func() sim.Result {
			attempts[2]++
			return result(nil)
		}},
	}
	got, err := ForEach(cells, Options{Workers: 1, RetryOnce: true})
	if err == nil {
		t.Fatal("sweep with a deterministic failure returned nil error")
	}
	if attempts != [3]int{2, 2, 1} {
		t.Errorf("attempts = %v, want [2 2 1]", attempts)
	}
	if got[0].Err != nil {
		t.Errorf("transient cell still failed after retry: %v", got[0].Err)
	}
	if got[1].Err == nil {
		t.Error("deterministic failure cleared without cause")
	}
	if got[2].Err != nil {
		t.Errorf("healthy cell failed: %v", got[2].Err)
	}

	// Without RetryOnce nothing reruns.
	attempts = [3]int{}
	if _, err := ForEach(cells, Options{Workers: 1}); err == nil {
		t.Fatal("expected the transient failure to surface without retries")
	}
	if attempts != [3]int{1, 1, 1} {
		t.Errorf("attempts without RetryOnce = %v, want [1 1 1]", attempts)
	}
}
