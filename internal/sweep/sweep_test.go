package sweep

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// determinismKernels is a reduced grid that still exercises every engine
// path — streaming loads/stores, strided k-means traffic, multiplies,
// predication, reductions — while keeping the serial-vs-parallel
// comparison fast enough to run under the race detector in CI.
func determinismKernels() []*workloads.Kernel {
	return []*workloads.Kernel{
		workloads.NewVVAdd(1 << 10),
		workloads.NewMMult(8, 8, 64),
		workloads.NewKMeans(256, 8, 3),
		workloads.NewSW(48),
	}
}

// TestParallelMatchesSerial is the determinism regression test: the
// parallel runner must reproduce the serial sim.Matrix exactly — cycles,
// instruction mixes, breakdowns, cache stats, everything in sim.Result —
// at every worker count. Run with -race, this doubles as the data-race
// audit of the whole simulation stack.
func TestParallelMatchesSerial(t *testing.T) {
	systems := sim.AllSystems()
	kernels := determinismKernels()
	want := sim.Matrix(systems, kernels)

	workerCounts := []int{1, 2, 4, 8}
	if testing.Short() {
		workerCounts = []int{4}
	}
	for _, workers := range workerCounts {
		got, err := Matrix(systems, kernels, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d kernel rows, want %d", workers, len(got), len(want))
		}
		for ki := range want {
			for si := range want[ki] {
				if !reflect.DeepEqual(got[ki][si], want[ki][si]) {
					t.Errorf("workers=%d: cell (%s, %s) diverges from serial:\n got  %+v\n want %+v",
						workers, kernels[ki].Name, systems[si].Name(), got[ki][si], want[ki][si])
				}
			}
		}
	}
}

// TestRepeatedParallelRunsIdentical re-runs the same parallel sweep and
// requires identical matrices — scheduling noise must never leak into
// results.
func TestRepeatedParallelRunsIdentical(t *testing.T) {
	systems := []sim.Config{{Kind: sim.SysIO}, {Kind: sim.SysO3EVE, N: 8}}
	kernels := []*workloads.Kernel{workloads.NewVVAdd(1 << 10), workloads.NewSW(48)}
	first, err := Matrix(systems, kernels, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	second, err := Matrix(systems, kernels, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("two identical parallel sweeps disagree:\n first  %+v\n second %+v", first, second)
	}
}

// panicKernel crashes midway through its simulation.
func panicKernel() *workloads.Kernel {
	return &workloads.Kernel{
		Name:  "panics",
		Suite: "test",
		Input: "n/a",
		Run: func(b *isa.Builder, vector bool) workloads.CheckFunc {
			panic("deliberate test crash")
		},
	}
}

// failKernel simulates fine but fails output validation.
func failKernel() *workloads.Kernel {
	return &workloads.Kernel{
		Name:  "fails",
		Suite: "test",
		Input: "n/a",
		Run: func(b *isa.Builder, vector bool) workloads.CheckFunc {
			b.ScalarOps(1)
			return func() error { return errors.New("validation mismatch") }
		},
	}
}

// TestPanicBecomesCellError: a crashing cell must not kill the sweep; it
// lands in that cell's Result.Err with the panic message, and healthy
// cells still complete.
func TestPanicBecomesCellError(t *testing.T) {
	systems := []sim.Config{{Kind: sim.SysIO}}
	kernels := []*workloads.Kernel{panicKernel(), workloads.NewVVAdd(256)}
	got, err := Matrix(systems, kernels, Options{Workers: 2})
	if err == nil {
		t.Fatal("sweep with a panicking cell returned nil error")
	}
	if !strings.Contains(got[0][0].Err.Error(), "deliberate test crash") {
		t.Errorf("panic cell error = %v, want the panic message", got[0][0].Err)
	}
	if got[0][0].System != "IO" || got[0][0].Kernel != "panics" {
		t.Errorf("panic cell lost its identity: %+v", got[0][0])
	}
	if got[1][0].Err != nil {
		t.Errorf("healthy cell failed after sibling panic: %v", got[1][0].Err)
	}
	if got[1][0].Cycles <= 0 {
		t.Errorf("healthy cell has nonpositive cycles: %+v", got[1][0])
	}
}

// TestAbortOnError: with one worker the grid runs in row-major order, so a
// first-cell failure must skip every later cell with ErrSkipped.
func TestAbortOnError(t *testing.T) {
	systems := []sim.Config{{Kind: sim.SysIO}}
	kernels := []*workloads.Kernel{failKernel(), workloads.NewVVAdd(256), workloads.NewSW(48)}
	got, err := Matrix(systems, kernels, Options{Workers: 1, AbortOnError: true})
	if err == nil {
		t.Fatal("aborting sweep returned nil error")
	}
	if got[0][0].Err == nil || !strings.Contains(got[0][0].Err.Error(), "validation mismatch") {
		t.Errorf("failing cell error = %v", got[0][0].Err)
	}
	for ki := 1; ki < len(kernels); ki++ {
		if !errors.Is(got[ki][0].Err, ErrSkipped) {
			t.Errorf("cell %d after failure: err = %v, want ErrSkipped", ki, got[ki][0].Err)
		}
		if got[ki][0].Kernel != kernels[ki].Name || got[ki][0].System != "IO" {
			t.Errorf("skipped cell %d lost its identity: %+v", ki, got[ki][0])
		}
	}
	// The reported error is the row-major first failure, not a skip marker.
	if errors.Is(err, ErrSkipped) {
		t.Errorf("sweep error should be the root failure, got %v", err)
	}
}

// countingObserver tallies events for the observer-plumbing test.
type countingObserver struct {
	mu     sync.Mutex
	starts int
	dones  int
	maxDon int
	total  int
	wall   time.Duration
}

func (c *countingObserver) CellStart(kernel, system string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.starts++
}

func (c *countingObserver) CellDone(done, total int, r sim.Result, wall time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dones++
	c.total = total
	if done > c.maxDon {
		c.maxDon = done
	}
	c.wall += wall
}

// TestObserverSeesEveryCell checks the progress plumbing: one start and one
// done per cell, the done counter reaching the grid size, and nonzero
// aggregate wall time.
func TestObserverSeesEveryCell(t *testing.T) {
	systems := []sim.Config{{Kind: sim.SysIO}, {Kind: sim.SysO3}}
	kernels := []*workloads.Kernel{workloads.NewVVAdd(256), workloads.NewSW(32)}
	obs := &countingObserver{}
	if _, err := Matrix(systems, kernels, Options{Workers: 3, Observer: obs}); err != nil {
		t.Fatal(err)
	}
	cells := len(systems) * len(kernels)
	if obs.starts != cells || obs.dones != cells {
		t.Errorf("observer saw %d starts / %d dones, want %d each", obs.starts, obs.dones, cells)
	}
	if obs.maxDon != cells || obs.total != cells {
		t.Errorf("observer progress peaked at %d/%d, want %d/%d", obs.maxDon, obs.total, cells, cells)
	}
	if obs.wall <= 0 {
		t.Errorf("observer aggregate wall time = %v, want > 0", obs.wall)
	}
}

// TestEmptyGrid: a degenerate sweep must return the right shape and no
// error rather than deadlocking on an empty job stream.
func TestEmptyGrid(t *testing.T) {
	got, err := Matrix(nil, nil, Options{Workers: 4})
	if err != nil || len(got) != 0 {
		t.Fatalf("empty sweep = (%v, %v), want ([], nil)", got, err)
	}
	got, err = Matrix(sim.AllSystems(), nil, Options{})
	if err != nil || len(got) != 0 {
		t.Fatalf("kernel-less sweep = (%v, %v), want ([], nil)", got, err)
	}
}

// TestRetryOnce: RetryOnce re-runs a failed cell exactly once. A transient
// failure clears on the retry; a deterministic failure burns its single
// retry and stays failed; a healthy cell never reruns.
func TestRetryOnce(t *testing.T) {
	var attempts [3]int
	result := func(err error) sim.Result {
		return sim.Result{Kernel: "k", System: "s", Cycles: 1, Err: err}
	}
	cells := []Cell{
		{Kernel: "transient", System: "s", Run: func() sim.Result {
			attempts[0]++
			if attempts[0] == 1 {
				return result(errors.New("flaky host"))
			}
			return result(nil)
		}},
		{Kernel: "deterministic", System: "s", Run: func() sim.Result {
			attempts[1]++
			return result(errors.New("always fails"))
		}},
		{Kernel: "healthy", System: "s", Run: func() sim.Result {
			attempts[2]++
			return result(nil)
		}},
	}
	got, err := ForEach(cells, Options{Workers: 1, RetryOnce: true})
	if err == nil {
		t.Fatal("sweep with a deterministic failure returned nil error")
	}
	if attempts != [3]int{2, 2, 1} {
		t.Errorf("attempts = %v, want [2 2 1]", attempts)
	}
	if got[0].Err != nil {
		t.Errorf("transient cell still failed after retry: %v", got[0].Err)
	}
	if got[1].Err == nil {
		t.Error("deterministic failure cleared without cause")
	}
	if got[2].Err != nil {
		t.Errorf("healthy cell failed: %v", got[2].Err)
	}

	// Without RetryOnce nothing reruns.
	attempts = [3]int{}
	if _, err := ForEach(cells, Options{Workers: 1}); err == nil {
		t.Fatal("expected the transient failure to surface without retries")
	}
	if attempts != [3]int{1, 1, 1} {
		t.Errorf("attempts without RetryOnce = %v, want [1 1 1]", attempts)
	}
}
