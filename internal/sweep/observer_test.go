package sweep

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestProgressCellLine pins the per-cell line format: aggregate progress,
// kernel, system, status, wall seconds.
func TestProgressCellLine(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf)
	p.CellDone(0, 1, 2, sim.Result{Kernel: "vvadd", System: "IO", Cycles: 42}, 1500*time.Millisecond)
	line := buf.String()
	for _, want := range []string{"[1/2]", "vvadd", "IO", "42 cycles", "(1.50s)"} {
		if !strings.Contains(line, want) {
			t.Errorf("cell line %q missing %q", line, want)
		}
	}
	if n := strings.Count(line, "\n"); n != 1 {
		t.Errorf("CellDone wrote %d lines, want 1: %q", n, line)
	}
}

// TestProgressFailedCell: a failed cell's line carries the error text
// instead of a cycle count.
func TestProgressFailedCell(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf)
	r := sim.Result{Kernel: "k", System: "s", Err: errors.New("checker mismatch")}
	p.CellDone(3, 4, 9, r, time.Millisecond)
	if !strings.Contains(buf.String(), "FAILED: checker mismatch") {
		t.Errorf("failed cell line = %q, want FAILED status", buf.String())
	}
	if strings.Contains(buf.String(), "cycles") {
		t.Errorf("failed cell line still reports cycles: %q", buf.String())
	}
}

// TestProgressSummaryOnCompletion: SweepDone after a full sweep emits the
// completed-form summary.
func TestProgressSummaryOnCompletion(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf)
	p.CellDone(0, 1, 2, sim.Result{Kernel: "a", System: "s", Cycles: 1}, time.Millisecond)
	p.CellDone(1, 2, 2, sim.Result{Kernel: "b", System: "s", Cycles: 1}, time.Millisecond)
	p.SweepDone(2, 2)
	sum := lastLine(buf.String())
	if !strings.HasPrefix(sum, "sweep: 2 cells in ") {
		t.Errorf("completion summary = %q", sum)
	}
	if strings.Contains(sum, "stopped") {
		t.Errorf("completed sweep rendered the interrupted form: %q", sum)
	}
}

// TestProgressSummaryOnAbort is the regression test for the summary-on-abort
// fix: a sweep that stops early must still emit its final line, in the
// stopped-after form.
func TestProgressSummaryOnAbort(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf)
	p.CellDone(0, 1, 5, sim.Result{Kernel: "a", System: "s", Cycles: 1}, time.Millisecond)
	p.SweepDone(1, 5)
	sum := lastLine(buf.String())
	if !strings.HasPrefix(sum, "sweep: stopped after 1/5 cells in ") {
		t.Errorf("abort summary = %q, want the stopped-after form", sum)
	}
}

// TestProgressSummarySurvivesAbortEndToEnd drives the fix through ForEach:
// an AbortOnError sweep that fails on its first cell must still end with a
// summary line on the progress stream.
func TestProgressSummarySurvivesAbortEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	cells := []Cell{
		{Kernel: "bad", System: "s", Run: func() sim.Result {
			return sim.Result{Kernel: "bad", System: "s", Err: errors.New("boom")}
		}},
		{Kernel: "never", System: "s", Run: func() sim.Result {
			return sim.Result{Kernel: "never", System: "s", Cycles: 1}
		}},
	}
	if _, err := ForEach(cells, Options{Workers: 1, AbortOnError: true, Observer: NewProgress(&buf)}); err == nil {
		t.Fatal("aborting sweep returned nil error")
	}
	sum := lastLine(buf.String())
	if !strings.HasPrefix(sum, "sweep: stopped after 1/2 cells") {
		t.Errorf("end-to-end abort summary = %q, want stopped-after form as the last line", sum)
	}
}

// TestProgressZeroElapsedOverlap: a summary for an instantaneous sweep must
// not render NaN/Inf overlap.
func TestProgressZeroElapsedOverlap(t *testing.T) {
	var buf bytes.Buffer
	p := &Progress{w: &buf, start: time.Now()}
	p.SweepDone(0, 0)
	if s := buf.String(); strings.Contains(s, "NaN") || strings.Contains(s, "Inf") {
		t.Errorf("degenerate summary rendered a non-finite overlap: %q", s)
	}
}

// TestProgressCellLineETA: an in-flight sweep's cell lines extrapolate an
// ETA from observed throughput; the final cell's line omits it.
func TestProgressCellLineETA(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf)
	p.start = time.Now().Add(-10 * time.Second) // 1 cell per 10s observed
	p.CellDone(0, 1, 3, sim.Result{Kernel: "a", System: "s", Cycles: 1}, time.Millisecond)
	line := lastLine(buf.String())
	if !strings.Contains(line, " eta ") {
		t.Errorf("mid-sweep cell line %q lacks an ETA", line)
	}
	// 2 cells remain at ~10s/cell.
	if !strings.Contains(line, "eta 20s") {
		t.Errorf("cell line %q, want ~20s ETA from the observed rate", line)
	}
	buf.Reset()
	p.CellDone(1, 3, 3, sim.Result{Kernel: "c", System: "s", Cycles: 1}, time.Millisecond)
	if line := lastLine(buf.String()); strings.Contains(line, "eta") {
		t.Errorf("final cell line %q still renders an ETA", line)
	}
}

// TestProgressSummaryRetryTimeoutCounts: the end-of-sweep summary reports
// retry and timeout counts when any occurred, and stays terse otherwise.
func TestProgressSummaryRetryTimeoutCounts(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf)
	p.CellRetry(0, "a", "s", 1, errors.New("transient"))
	p.CellRetry(0, "a", "s", 2, errors.New("transient"))
	te := &TimeoutError{Kernel: "b", System: "s", Budget: time.Second}
	p.CellDone(0, 1, 2, sim.Result{Kernel: "a", System: "s", Cycles: 1}, time.Millisecond)
	p.CellDone(1, 2, 2, sim.Result{Kernel: "b", System: "s", Err: te}, time.Second)
	p.SweepDone(2, 2)
	sum := lastLine(buf.String())
	if !strings.Contains(sum, "2 retried, 1 timed out") {
		t.Errorf("summary = %q, want retry/timeout counts", sum)
	}

	buf.Reset()
	q := NewProgress(&buf)
	q.CellDone(0, 1, 1, sim.Result{Kernel: "a", System: "s", Cycles: 1}, time.Millisecond)
	q.SweepDone(1, 1)
	if sum := lastLine(buf.String()); strings.Contains(sum, "retried") {
		t.Errorf("clean sweep summary %q mentions retries", sum)
	}
}

// TestForEachFiresCellRetry drives RetryObserver through the pool: a
// deterministic failure under RetryOnce must announce exactly one
// re-attempt per failing cell, with the provoking error.
func TestForEachFiresCellRetry(t *testing.T) {
	type retry struct {
		i       int
		attempt int
		err     string
	}
	var (
		mu      sync.Mutex
		retries []retry
	)
	obs := &retryRecorder{onRetry: func(i, attempt int, err error) {
		mu.Lock()
		retries = append(retries, retry{i, attempt, err.Error()})
		mu.Unlock()
	}}
	cells := []Cell{
		{Kernel: "ok", System: "s", Run: func() sim.Result {
			return sim.Result{Kernel: "ok", System: "s", Cycles: 1}
		}},
		{Kernel: "bad", System: "s", Run: func() sim.Result {
			return sim.Result{Kernel: "bad", System: "s", Err: errors.New("boom")}
		}},
	}
	if _, err := ForEach(cells, Options{Workers: 2, RetryOnce: true, Observer: obs}); err == nil {
		t.Fatal("sweep with a failing cell returned nil error")
	}
	if len(retries) != 1 {
		t.Fatalf("%d retries observed, want 1: %+v", len(retries), retries)
	}
	if retries[0].i != 1 || retries[0].attempt != 1 || retries[0].err != "boom" {
		t.Errorf("retry = %+v, want cell 1 attempt 1 err boom", retries[0])
	}
}

// retryRecorder is a minimal RetryObserver for pool-level tests.
type retryRecorder struct {
	onRetry func(i, attempt int, err error)
}

func (r *retryRecorder) CellStart(int, string, string)                     {}
func (r *retryRecorder) CellDone(int, int, int, sim.Result, time.Duration) {}
func (r *retryRecorder) SweepDone(int, int)                                {}
func (r *retryRecorder) CellRetry(i int, kernel, system string, attempt int, err error) {
	r.onRetry(i, attempt, err)
}

// lastLine returns the final non-empty line of s.
func lastLine(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return lines[len(lines)-1]
}
