// Package sweep runs grids of independent simulations concurrently on a
// bounded pool of worker goroutines.
//
// Every cell of a grid is one independent simulation: sim.Run builds all of
// its state — memory hierarchy, core model, vector engine, workload inputs —
// per call and shares nothing mutable across calls (the purity contract
// documented on sim.Run). Grids are therefore embarrassingly parallel, and
// ForEach exploits that while keeping the output *identical* to a serial
// loop: each worker writes its sim.Result into the cell's pre-assigned slot,
// so neither the worker count nor the completion order can influence the
// assembled results. The determinism regression test in sweep_test.go holds
// this invariant, under the race detector, across several worker counts.
//
// Two grid shapes ride on the pool: Matrix, the (kernel, system) sweep of
// Fig 6 / Table IV, and the fault-campaign grids of internal/faults, which
// schedule one cell per (kernel, fault site). Beyond the pool itself the
// package adds the sweep plumbing a serial loop lacks: a pluggable Observer
// reporting per-cell wall time and aggregate progress, early abort on the
// first validation failure (with partial results for the cells that did
// run), per-cell retry-once for campaigns that want to shrug off transient
// host trouble, and per-cell panic recovery that converts a crashed
// simulation into that cell's Result.Err instead of killing the whole sweep.
package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
	"repro/internal/workloads"
)

// ErrSkipped marks a cell that was never simulated because the sweep
// aborted on an earlier validation failure (Options.AbortOnError).
var ErrSkipped = errors.New("sweep: cell skipped after early abort")

// PanicError is a cell's recovered panic: the simulation crashed in a way
// sim.Run does not convert into a typed sim.SimError (a simulator bug
// rather than a modeled fault path). The first line of Error() is stable
// and machine-comparable; the stack is host-dependent diagnostics.
type PanicError struct {
	Value string // rendered panic value
	Stack []byte // stack captured at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("simulation panicked: %s\n%s", e.Value, e.Stack)
}

// Observer receives sweep progress events. CellDone is invoked from worker
// goroutines, possibly concurrently; implementations must be safe for
// concurrent use.
type Observer interface {
	// CellStart fires when a worker picks up the (kernel, system) cell.
	CellStart(kernel, system string)
	// CellDone fires when the cell's simulation returns (or its panic is
	// recovered). done counts completed cells so far — monotonic across
	// the sweep, ending at total when no abort occurs — and wall is the
	// cell's host wall-clock time.
	CellDone(done, total int, r sim.Result, wall time.Duration)
}

// Options configure a sweep.
type Options struct {
	// Workers bounds the pool; ≤0 selects runtime.GOMAXPROCS(0).
	Workers int
	// Observer receives progress events; nil disables reporting.
	Observer Observer
	// AbortOnError stops handing out new cells after the first cell whose
	// Result.Err is non-nil (validation failure or recovered panic). Cells
	// already running finish; cells never started carry ErrSkipped. Which
	// cells are skipped depends on scheduling — determinism holds only for
	// sweeps that run to completion.
	AbortOnError bool
	// RetryOnce re-runs a cell whose first attempt produced a non-nil
	// Result.Err; the second outcome stands. Deterministic failures fail
	// twice identically, so retries cannot perturb a deterministic grid —
	// the policy exists for long campaigns where a cell's failure may be
	// host trouble rather than simulated behaviour.
	RetryOnce bool
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Cell is one schedulable simulation of a grid: a closure plus the labels
// observers and error reports identify it by. Run must obey the sim.Run
// purity contract (no shared mutable state across cells).
type Cell struct {
	Kernel string
	System string
	Run    func() sim.Result
}

// ForEach runs every cell on the worker pool and returns the results in
// cell order, regardless of worker count or completion order. The returned
// error is the first root failure in cell order (nil if every cell
// validated; ErrSkipped cells are only a symptom of an abort and are
// reported only if no root failure exists). The full result slice is
// returned alongside any error so callers can report every failure.
func ForEach(cells []Cell, opts Options) ([]sim.Result, error) {
	out := make([]sim.Result, len(cells))
	total := len(cells)
	if total == 0 {
		return out, nil
	}

	jobs := make(chan int)
	var (
		wg      sync.WaitGroup
		done    atomic.Int64
		aborted atomic.Bool
	)
	workers := min(opts.workers(), total)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				c := cells[i]
				if opts.AbortOnError && aborted.Load() {
					out[i] = sim.Result{System: c.System, Kernel: c.Kernel, Err: ErrSkipped}
					continue
				}
				if opts.Observer != nil {
					opts.Observer.CellStart(c.Kernel, c.System)
				}
				// Wall time here is observer telemetry only — it never touches
				// a Result, so the determinism contract is unaffected.
				start := time.Now() //evelint:allow simpurity -- progress telemetry, not simulated state
				r := runCell(c)
				if r.Err != nil && opts.RetryOnce {
					r = runCell(c)
				}
				out[i] = r
				if r.Err != nil {
					aborted.Store(true)
				}
				if opts.Observer != nil {
					//evelint:allow simpurity -- per-cell wall time feeds the progress observer only
					opts.Observer.CellDone(int(done.Add(1)), total, r, time.Since(start))
				}
			}
		}()
	}
	for i := range cells {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	// Report the first *root* failure in cell order; a skipped cell is only
	// a symptom of an abort and never the headline error.
	var skipErr error
	for i := range cells {
		err := out[i].Err
		if err == nil {
			continue
		}
		wrapped := fmt.Errorf("sweep: %s on %s: %w", cells[i].Kernel, cells[i].System, err)
		if !errors.Is(err, ErrSkipped) {
			return out, wrapped
		}
		if skipErr == nil {
			skipErr = wrapped
		}
	}
	return out, skipErr
}

// Matrix simulates every kernel on every system and returns results indexed
// [kernel][system], exactly like the serial sim.Matrix. The returned error
// is the first cell error in row-major grid order (nil if every cell
// validated); the full matrix is returned alongside it so callers can
// report every failure, not just the first.
func Matrix(systems []sim.Config, kernels []*workloads.Kernel, opts Options) ([][]sim.Result, error) {
	cells := make([]Cell, 0, len(kernels)*len(systems))
	for _, k := range kernels {
		for _, s := range systems {
			k, s := k, s
			cells = append(cells, Cell{
				Kernel: k.Name,
				System: s.Name(),
				Run:    func() sim.Result { return sim.Run(s, k) },
			})
		}
	}
	flat, err := ForEach(cells, opts)
	out := make([][]sim.Result, len(kernels))
	for i := range out {
		out[i] = flat[i*len(systems) : (i+1)*len(systems)]
	}
	return out, err
}

// runCell runs one cell, converting a panicking simulation into a Result
// carrying the panic (and its stack) as the cell's error.
func runCell(c Cell) (r sim.Result) {
	defer func() {
		if p := recover(); p != nil {
			r = sim.Result{
				System: c.System,
				Kernel: c.Kernel,
				Err:    &PanicError{Value: fmt.Sprint(p), Stack: debug.Stack()},
			}
		}
	}()
	return c.Run()
}
