// Package sweep runs grids of independent simulations concurrently on a
// bounded pool of worker goroutines.
//
// Every cell of a grid is one independent simulation: sim.Run builds all of
// its state — memory hierarchy, core model, vector engine, workload inputs —
// per call and shares nothing mutable across calls (the purity contract
// documented on sim.Run). Grids are therefore embarrassingly parallel, and
// ForEach exploits that while keeping the output *identical* to a serial
// loop: each worker writes its sim.Result into the cell's pre-assigned slot,
// so neither the worker count nor the completion order can influence the
// assembled results. The determinism regression test in sweep_test.go holds
// this invariant, under the race detector, across several worker counts.
//
// Two grid shapes ride on the pool: Matrix, the (kernel, system) sweep of
// Fig 6 / Table IV, and the fault-campaign grids of internal/faults, which
// schedule one cell per (kernel, fault site). Beyond the pool itself the
// package adds the sweep plumbing a serial loop lacks: a pluggable Observer
// reporting per-cell wall time and aggregate progress, early abort on the
// first validation failure (with partial results for the cells that did
// run), per-cell retry-once for campaigns that want to shrug off transient
// host trouble, and per-cell panic recovery that converts a crashed
// simulation into that cell's Result.Err instead of killing the whole sweep.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
	"repro/internal/workloads"
)

// ErrSkipped marks a cell that was never simulated because the sweep
// stopped handing out work early: an abort on an earlier validation failure
// (Options.AbortOnError) or a cancelled Options.Context. Skipped cells are
// a symptom, never a root cause, and resumable campaigns treat them as
// simply not-yet-run.
var ErrSkipped = errors.New("sweep: cell skipped after early abort")

// PanicError is a cell's recovered panic: the simulation crashed in a way
// sim.Run does not convert into a typed sim.SimError (a simulator bug
// rather than a modeled fault path). The first line of Error() is stable
// and machine-comparable; the stack is host-dependent diagnostics.
type PanicError struct {
	Value string // rendered panic value
	Stack []byte // stack captured at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("simulation panicked: %s\n%s", e.Value, e.Stack)
}

// TimeoutError is a cell attempt abandoned by the per-cell wall-clock
// watchdog (Options.CellTimeout). It is host trouble by definition — a
// deterministic simulation either always finishes within any sane budget or
// trips the in-simulation uprog watchdog deterministically — so resumable
// campaigns treat it as retry-worthy rather than as a simulated outcome.
// The message is stable: the budget is configuration, not measurement.
type TimeoutError struct {
	Kernel, System string
	Budget         time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("sweep: %s on %s exceeded the %v per-cell wall-clock budget", e.Kernel, e.System, e.Budget)
}

// IsTimeout reports whether err is (or wraps) a watchdog *TimeoutError, so
// observers can classify a cell's final outcome without unwrapping by hand.
func IsTimeout(err error) bool {
	var te *TimeoutError
	return errors.As(err, &te)
}

// Observer receives sweep progress events. CellStart and CellDone are
// invoked from worker goroutines, possibly concurrently; implementations
// must be safe for concurrent use.
type Observer interface {
	// CellStart fires when a worker picks up cell i of the grid.
	CellStart(i int, kernel, system string)
	// CellDone fires once per cell — after retries resolve — when cell i's
	// simulation returns (or its panic is recovered, or the watchdog gives
	// up on it). done counts completed cells so far — monotonic across the
	// sweep, ending at total when no abort occurs — and wall is the cell's
	// host wall-clock time across all attempts. Skipped cells (abort,
	// cancellation) never fire CellDone.
	CellDone(i, done, total int, r sim.Result, wall time.Duration)
	// SweepDone fires exactly once, after the pool drains — on completion,
	// early abort, or cancellation alike — with the number of cells that
	// actually completed. It is the hook for final summaries that must not
	// vanish when a sweep stops early.
	SweepDone(done, total int)
}

// RetryObserver is the optional extension an Observer may implement to see
// per-attempt retries. CellRetry fires from the worker goroutine right
// before attempt (1-based count of re-attempts) is scheduled, carrying the
// error that provoked it; like the other observer hooks it may fire
// concurrently across cells and must be safe for concurrent use. Observers
// that don't implement it simply see the cell's final CellDone.
type RetryObserver interface {
	Observer
	CellRetry(i int, kernel, system string, attempt int, err error)
}

// RetryPolicy bounds re-running failed cell attempts. Deterministic
// failures fail identically on every attempt, so retries cannot perturb a
// deterministic grid — the policy exists for long campaigns where a cell's
// failure may be host trouble (an OOM kill, a watchdog timeout) rather than
// simulated behaviour.
type RetryPolicy struct {
	// Max is the number of additional attempts after the first; 0 disables
	// retries.
	Max int
	// Backoff is the host-side delay before retry k: Backoff << (k-1),
	// deterministic in the attempt number — no jitter — so retry schedules
	// are reproducible. Zero retries immediately.
	Backoff time.Duration
	// Retryable reports whether a failed attempt's error is worth another
	// attempt; nil retries every error.
	Retryable func(error) bool
}

// Options configure a sweep.
type Options struct {
	// Workers bounds the pool; ≤0 selects runtime.GOMAXPROCS(0).
	Workers int
	// Observer receives progress events; nil disables reporting.
	Observer Observer
	// AbortOnError stops handing out new cells after the first cell whose
	// Result.Err is non-nil (validation failure or recovered panic). Cells
	// already running finish; cells never started carry ErrSkipped. Which
	// cells are skipped depends on scheduling — determinism holds only for
	// sweeps that run to completion.
	AbortOnError bool
	// RetryOnce re-runs a cell whose first attempt produced a non-nil
	// Result.Err; the second outcome stands. Shorthand for Retry{Max: 1}
	// (ignored when Retry.Max is set), kept for existing campaign configs.
	RetryOnce bool
	// Retry bounds per-cell re-attempts; see RetryPolicy.
	Retry RetryPolicy
	// Context cancels the sweep: cells not yet started when the context is
	// cancelled are marked ErrSkipped (the early-abort path) instead of
	// running, so a SIGINT-wired caller checkpoints partial results and
	// exits cleanly instead of dropping work mid-write. Cells already
	// running finish — an attempt in flight still lands its result. Nil
	// means never cancelled.
	Context context.Context
	// CellTimeout bounds one attempt's host wall-clock time; ≤0 disables
	// the watchdog. A tripped attempt yields a *TimeoutError result. The
	// abandoned simulation goroutine runs on to completion in the
	// background — sim.Run's purity contract means it can no longer affect
	// anything — so the budget bounds progress, not process memory. This is
	// the host-side complement of sim.Config.MaxUProgCycles, which bounds
	// *simulated* micro-program cycles deterministically.
	CellTimeout time.Duration
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// retry normalizes the two retry knobs into one policy.
func (o Options) retry() RetryPolicy {
	if o.Retry.Max == 0 && o.RetryOnce {
		return RetryPolicy{Max: 1, Retryable: o.Retry.Retryable}
	}
	return o.Retry
}

// ctx returns the sweep's cancellation context, never nil.
func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// Cell is one schedulable simulation of a grid: a closure plus the labels
// observers and error reports identify it by. Run must obey the sim.Run
// purity contract (no shared mutable state across cells).
type Cell struct {
	Kernel string
	System string
	Run    func() sim.Result
}

// ForEach runs every cell on the worker pool and returns the results in
// cell order, regardless of worker count or completion order. The returned
// error is the first root failure in cell order (nil if every cell
// validated; ErrSkipped cells are only a symptom of an abort and are
// reported only if no root failure exists). The full result slice is
// returned alongside any error so callers can report every failure.
func ForEach(cells []Cell, opts Options) ([]sim.Result, error) {
	out := make([]sim.Result, len(cells))
	total := len(cells)
	if total == 0 {
		return out, nil
	}

	jobs := make(chan int)
	ctx := opts.ctx()
	var (
		wg      sync.WaitGroup
		done    atomic.Int64
		aborted atomic.Bool
	)
	workers := min(opts.workers(), total)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				c := cells[i]
				if (opts.AbortOnError && aborted.Load()) || ctx.Err() != nil {
					out[i] = sim.Result{System: c.System, Kernel: c.Kernel, Err: ErrSkipped}
					continue
				}
				if opts.Observer != nil {
					opts.Observer.CellStart(i, c.Kernel, c.System)
				}
				// Wall time here is observer telemetry only — it never touches
				// a Result, so the determinism contract is unaffected.
				start := time.Now() //evelint:allow simpurity -- progress telemetry, not simulated state
				r := runAttempts(ctx, i, c, opts)
				out[i] = r
				if r.Err != nil {
					aborted.Store(true)
				}
				if opts.Observer != nil {
					//evelint:allow simpurity -- per-cell wall time feeds the progress observer only
					opts.Observer.CellDone(i, int(done.Add(1)), total, r, time.Since(start))
				}
			}
		}()
	}
	for i := range cells {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if opts.Observer != nil {
		opts.Observer.SweepDone(int(done.Load()), total)
	}

	// Report the first *root* failure in cell order; a skipped cell is only
	// a symptom of an abort and never the headline error.
	var skipErr error
	for i := range cells {
		err := out[i].Err
		if err == nil {
			continue
		}
		wrapped := fmt.Errorf("sweep: %s on %s: %w", cells[i].Kernel, cells[i].System, err)
		if !errors.Is(err, ErrSkipped) {
			return out, wrapped
		}
		if skipErr == nil {
			skipErr = wrapped
		}
	}
	return out, skipErr
}

// Matrix simulates every kernel on every system and returns results indexed
// [kernel][system], exactly like the serial sim.Matrix. The returned error
// is the first cell error in row-major grid order (nil if every cell
// validated); the full matrix is returned alongside it so callers can
// report every failure, not just the first.
func Matrix(systems []sim.Config, kernels []*workloads.Kernel, opts Options) ([][]sim.Result, error) {
	cells := make([]Cell, 0, len(kernels)*len(systems))
	for _, k := range kernels {
		for _, s := range systems {
			k, s := k, s
			cells = append(cells, Cell{
				Kernel: k.Name,
				System: s.Name(),
				Run:    func() sim.Result { return sim.Run(s, k) },
			})
		}
	}
	flat, err := ForEach(cells, opts)
	out := make([][]sim.Result, len(kernels))
	for i := range out {
		out[i] = flat[i*len(systems) : (i+1)*len(systems)]
	}
	return out, err
}

// runAttempts runs cell i to its final outcome: the first attempt plus up
// to Retry.Max re-attempts with deterministic backoff, each attempt bounded
// by the wall-clock watchdog. The last attempt's result stands. Cancellation
// stops further retries but never abandons the attempt in flight. Each
// scheduled re-attempt is announced to the observer first, if it implements
// RetryObserver.
func runAttempts(ctx context.Context, i int, c Cell, opts Options) sim.Result {
	policy := opts.retry()
	retryObs, _ := opts.Observer.(RetryObserver)
	r := runCellBounded(c, opts.CellTimeout)
	for attempt := 1; r.Err != nil && attempt <= policy.Max && ctx.Err() == nil; attempt++ {
		if policy.Retryable != nil && !policy.Retryable(r.Err) {
			break
		}
		if retryObs != nil {
			retryObs.CellRetry(i, c.Kernel, c.System, attempt, r.Err)
		}
		if policy.Backoff > 0 {
			// Deterministic exponential backoff: Backoff << (attempt-1). The
			// delay is host-side pacing only and never reaches a Result.
			t := time.NewTimer(policy.Backoff << (attempt - 1)) //evelint:allow simpurity -- retry pacing, not simulated state
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return r
			}
		}
		r = runCellBounded(c, opts.CellTimeout)
	}
	return r
}

// runCellBounded runs one attempt under the wall-clock watchdog. A timed-out
// attempt keeps running in a background goroutine — goroutines cannot be
// killed, and sim.Run's purity contract guarantees the orphan shares nothing
// — while the cell's slot records a *TimeoutError; the buffered channel lets
// the orphan finish and exit without a receiver.
func runCellBounded(c Cell, timeout time.Duration) sim.Result {
	if timeout <= 0 {
		return runCell(c)
	}
	ch := make(chan sim.Result, 1)
	go func() { ch <- runCell(c) }()
	watchdog := time.NewTimer(timeout) //evelint:allow simpurity -- wall-clock watchdog over host progress, not simulated state
	defer watchdog.Stop()
	select {
	case r := <-ch:
		return r
	case <-watchdog.C:
		return sim.Result{
			System: c.System,
			Kernel: c.Kernel,
			Err:    &TimeoutError{Kernel: c.Kernel, System: c.System, Budget: timeout},
		}
	}
}

// runCell runs one cell, converting a panicking simulation into a Result
// carrying the panic (and its stack) as the cell's error.
func runCell(c Cell) (r sim.Result) {
	defer func() {
		if p := recover(); p != nil {
			r = sim.Result{
				System: c.System,
				Kernel: c.Kernel,
				Err:    &PanicError{Value: fmt.Sprint(p), Stack: debug.Stack()},
			}
		}
	}()
	return c.Run()
}
