// Package sweep runs the (kernel, system) simulation grid of Fig 6 /
// Table IV concurrently on a bounded pool of worker goroutines.
//
// Every cell of the grid is one independent simulation: sim.Run builds all
// of its state — memory hierarchy, core model, vector engine, workload
// inputs — per call and shares nothing mutable across calls (the purity
// contract documented on sim.Run). The grid is therefore embarrassingly
// parallel, and Matrix exploits that while keeping the output *identical*
// to the serial sim.Matrix: each worker writes its sim.Result into the
// cell's pre-assigned [kernel][system] slot, so neither the worker count
// nor the completion order can influence the assembled matrix. The
// determinism regression test in sweep_test.go holds this invariant, under
// the race detector, across several worker counts.
//
// Beyond the pool itself, Matrix adds the sweep plumbing the serial loop
// lacked: a pluggable Observer reporting per-cell wall time and aggregate
// progress, early abort on the first validation failure, and per-cell
// panic recovery that converts a crashed simulation into that cell's
// Result.Err instead of killing the whole sweep.
package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
	"repro/internal/workloads"
)

// ErrSkipped marks a cell that was never simulated because the sweep
// aborted on an earlier validation failure (Options.AbortOnError).
var ErrSkipped = errors.New("sweep: cell skipped after early abort")

// Observer receives sweep progress events. CellDone is invoked from worker
// goroutines, possibly concurrently; implementations must be safe for
// concurrent use.
type Observer interface {
	// CellStart fires when a worker picks up the (kernel, system) cell.
	CellStart(kernel, system string)
	// CellDone fires when the cell's simulation returns (or its panic is
	// recovered). done counts completed cells so far — monotonic across
	// the sweep, ending at total when no abort occurs — and wall is the
	// cell's host wall-clock time.
	CellDone(done, total int, r sim.Result, wall time.Duration)
}

// Options configure a sweep.
type Options struct {
	// Workers bounds the pool; ≤0 selects runtime.GOMAXPROCS(0).
	Workers int
	// Observer receives progress events; nil disables reporting.
	Observer Observer
	// AbortOnError stops handing out new cells after the first cell whose
	// Result.Err is non-nil (validation failure or recovered panic). Cells
	// already running finish; cells never started carry ErrSkipped. Which
	// cells are skipped depends on scheduling — determinism holds only for
	// sweeps that run to completion.
	AbortOnError bool
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Matrix simulates every kernel on every system and returns results indexed
// [kernel][system], exactly like the serial sim.Matrix. The returned error
// is the first cell error in row-major grid order (nil if every cell
// validated); the full matrix is returned alongside it so callers can
// report every failure, not just the first.
func Matrix(systems []sim.Config, kernels []*workloads.Kernel, opts Options) ([][]sim.Result, error) {
	out := make([][]sim.Result, len(kernels))
	for i := range out {
		out[i] = make([]sim.Result, len(systems))
	}
	total := len(kernels) * len(systems)
	if total == 0 {
		return out, nil
	}

	type cell struct{ ki, si int }
	jobs := make(chan cell)
	var (
		wg      sync.WaitGroup
		done    atomic.Int64
		aborted atomic.Bool
	)
	workers := min(opts.workers(), total)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for c := range jobs {
				k, s := kernels[c.ki], systems[c.si]
				if opts.AbortOnError && aborted.Load() {
					out[c.ki][c.si] = sim.Result{System: s.Name(), Kernel: k.Name, Err: ErrSkipped}
					continue
				}
				if opts.Observer != nil {
					opts.Observer.CellStart(k.Name, s.Name())
				}
				// Wall time here is observer telemetry only — it never touches
				// a Result, so the determinism contract is unaffected.
				start := time.Now() //evelint:allow simpurity -- progress telemetry, not simulated state
				r := runCell(s, k)
				out[c.ki][c.si] = r
				if r.Err != nil {
					aborted.Store(true)
				}
				if opts.Observer != nil {
					//evelint:allow simpurity -- per-cell wall time feeds the progress observer only
					opts.Observer.CellDone(int(done.Add(1)), total, r, time.Since(start))
				}
			}
		}()
	}
	for ki := range kernels {
		for si := range systems {
			jobs <- cell{ki, si}
		}
	}
	close(jobs)
	wg.Wait()

	// Report the first *root* failure in row-major order; a skipped cell is
	// only a symptom of an abort and never the headline error.
	var skipErr error
	for ki := range kernels {
		for si := range systems {
			err := out[ki][si].Err
			if err == nil {
				continue
			}
			wrapped := fmt.Errorf("sweep: %s on %s: %w", kernels[ki].Name, systems[si].Name(), err)
			if !errors.Is(err, ErrSkipped) {
				return out, wrapped
			}
			if skipErr == nil {
				skipErr = wrapped
			}
		}
	}
	return out, skipErr
}

// runCell simulates one cell, converting a panicking simulation into a
// Result carrying the panic (and its stack) as the cell's error.
func runCell(s sim.Config, k *workloads.Kernel) (r sim.Result) {
	defer func() {
		if p := recover(); p != nil {
			r = sim.Result{
				System: s.Name(),
				Kernel: k.Name,
				Err:    fmt.Errorf("simulation panicked: %v\n%s", p, debug.Stack()),
			}
		}
	}()
	return sim.Run(s, k)
}
