// Package circuits models EVE's peripheral circuit stacks (paper §III): the
// logic layers added around a bit-line-compute-capable SRAM that turn it into
// a vector execution unit. A Stack is configured at design time with a
// parallelization factor n (EVE-1 bit-serial, EVE-32 bit-parallel, EVE-n
// bit-hybrid): every n adjacent columns form a segment group processing one
// n-bit segment of a 32-bit element per cycle.
//
// The layers modeled, following Fig 3(c)-(e):
//
//   - bus logic: source selection for writebacks (the Src multiplexer)
//   - XOR/XNOR logic: derives xor/xnor from the sense amps' nand and or
//   - add logic: an n-bit Manchester carry chain per segment group, with the
//     inter-segment carry held in a latch (the XRegister in EVE-1, a spare
//     shifter flip-flop in EVE-n)
//   - XRegister: per-column flip-flops configured as a right-shift register
//     spanning the group (n>1), used by multiplication and mask extraction
//   - mask logic: a per-column latch gating writebacks and shifts
//   - constant shifter: a loadable register supporting conditional one-bit
//     shifts/rotates within the group (n>1)
//   - spare shifter: carries bits across segment groups during multi-segment
//     shifts, and holds the add carry (n>1)
//
// The stack executes one arithmetic μop (internal/uop) per cycle against its
// SRAM array. Sequencing (loops, counters) lives in internal/uprog.
package circuits

import (
	"fmt"

	"repro/internal/bitmat"
	"repro/internal/sram"
	"repro/internal/uop"
)

// Env supplies the data_in port contents and collects data_out traffic for a
// μop sequence. ExtRows are indexed by uop.ExtRef; Out accumulates every row
// streamed out through DstDataOut in order.
type Env struct {
	ExtRows []bitmat.Row
	Out     []bitmat.Row
}

// Ext returns external row i, panicking on out-of-range access (a μprogram
// bug, not a data condition).
func (e *Env) Ext(i int) bitmat.Row {
	if e == nil || i < 0 || i >= len(e.ExtRows) {
		panic(fmt.Sprintf("circuits: data_in row %d unavailable", i))
	}
	return e.ExtRows[i]
}

// Stack is the peripheral circuit stack of one EVE SRAM array.
type Stack struct {
	arr  *sram.Array
	n    int
	cols int

	// XOR/XNOR layer outputs, valid while the sense amps hold a blc result.
	xorV, xnorV bitmat.Row

	// Add logic outputs: sum is combinational from the current blc result and
	// the carry latch; pendingCout is the group carry-out awaiting commit by
	// a writeback with Src = add.
	sum         bitmat.Row
	pendingCout bitmat.Row // at group LSB positions

	// Latches.
	carry  bitmat.Row // inter-segment add carry, one bit per group at its LSB column
	xreg   bitmat.Row // XRegister contents
	maskL  bitmat.Row // mask latches, one bit per column
	cshift bitmat.Row // constant shifter contents
	spare  bitmat.Row // spare shifter inter-segment bit, per group at its LSB column

	// Precomputed geometry masks.
	lsbMask, msbMask bitmat.Row
	offMask          []bitmat.Row // offMask[j]: columns at offset j within each group

	// Scratch rows, reused across μops to avoid allocation.
	t0, t1, t2, t3 bitmat.Row

	cycles uint64 // arithmetic μops executed

	// Fault-injection state (internal/faults): bit-line computes whose
	// operand-B wordline activation is armed to fail, keyed by the stack's
	// 0-based blc sequence number.
	blcSeq  uint64
	wlDrops map[uint64]struct{}
}

// NewStack builds the circuit stack for the given array and parallelization
// factor n. n must divide both 32 and the array width.
func NewStack(arr *sram.Array, n int) *Stack {
	cols := arr.Cols()
	if n <= 0 || 32%n != 0 {
		panic(fmt.Sprintf("circuits: parallelization factor %d must divide 32", n))
	}
	if cols%n != 0 {
		panic(fmt.Sprintf("circuits: array width %d not a multiple of n=%d", cols, n))
	}
	s := &Stack{
		arr: arr, n: n, cols: cols,
		xorV: bitmat.NewRow(cols), xnorV: bitmat.NewRow(cols),
		sum: bitmat.NewRow(cols), pendingCout: bitmat.NewRow(cols),
		carry: bitmat.NewRow(cols), xreg: bitmat.NewRow(cols),
		maskL: bitmat.NewRow(cols), cshift: bitmat.NewRow(cols),
		spare:   bitmat.NewRow(cols),
		lsbMask: bitmat.LSBMask(cols, n), msbMask: bitmat.MSBMask(cols, n),
		t0: bitmat.NewRow(cols), t1: bitmat.NewRow(cols),
		t2: bitmat.NewRow(cols), t3: bitmat.NewRow(cols),
	}
	s.offMask = make([]bitmat.Row, n)
	for j := 0; j < n; j++ {
		m := bitmat.NewRow(cols)
		for c := j; c < cols; c += n {
			m.SetBit(c, true)
		}
		s.offMask[j] = m
	}
	// Mask latches power up enabled so unconditional operations need no setup.
	s.maskL.Fill()
	return s
}

// N reports the parallelization factor.
func (s *Stack) N() int { return s.n }

// Array returns the underlying SRAM array.
func (s *Stack) Array() *sram.Array { return s.arr }

// Cycles reports how many arithmetic μops the stack has executed.
func (s *Stack) Cycles() uint64 { return s.cycles }

// ArmWordlineDrop arms a dropped wordline activation: on the stack's seq-th
// bit-line compute (0-based, counted by BLCs since construction), operand
// B's wordline fails to activate, so the sense amplifiers observe row A
// alone (and = or = A, as in the self-compute idiom). Each armed drop fires
// at most once.
func (s *Stack) ArmWordlineDrop(seq uint64) {
	if s.wlDrops == nil {
		s.wlDrops = make(map[uint64]struct{})
	}
	s.wlDrops[seq] = struct{}{}
}

// BLCs reports the number of bit-line computes the stack has issued since
// construction — the sequence space ArmWordlineDrop addresses.
func (s *Stack) BLCs() uint64 { return s.blcSeq }

// ClearFaults disarms every pending wordline drop.
func (s *Stack) ClearFaults() { s.wlDrops = nil }

// Mask returns the current mask latch contents (live; do not mutate).
func (s *Stack) Mask() bitmat.Row { return s.maskL }

// XReg returns the current XRegister contents (live; do not mutate).
func (s *Stack) XReg() bitmat.Row { return s.xreg }

// CShift returns the current constant shifter contents (live; do not mutate).
func (s *Stack) CShift() bitmat.Row { return s.cshift }

// Reset clears every latch and restores the power-up mask state. The SRAM
// contents are untouched.
func (s *Stack) Reset() {
	for _, r := range []bitmat.Row{s.xorV, s.xnorV, s.sum, s.pendingCout,
		s.carry, s.xreg, s.cshift, s.spare} {
		r.Zero()
	}
	s.maskL.Fill()
}

// Exec executes one arithmetic μop with resolved row/ext indices. rowA, rowB
// and rowD are the resolved wordlines for op.A, op.B and op.DstR; extIdx is
// the resolved data_in index. The sequencer (internal/uprog) performs the
// resolution; tests may call Exec directly with literal rows.
func (s *Stack) Exec(op uop.Arith, rowA, rowB, rowD, extIdx int, env *Env) {
	s.cycles++
	switch op.Kind {
	case uop.ANone:
		// Idle slot.
	case uop.ARead:
		s.read(op, rowA, env)
	case uop.AWrite:
		val := s.selectSrc(op.Src, extIdx, env)
		if op.Masked {
			s.arr.WriteMasked(rowA, val, s.maskL)
		} else {
			s.arr.Write(rowA, val)
		}
	case uop.ABLC:
		s.blc(rowA, rowB)
	case uop.AWriteback:
		s.writeback(op, rowD, extIdx, env)
	case uop.ALShift:
		s.shiftLeft(op.Masked)
	case uop.ARShift:
		s.shiftRight(op.Masked)
	case uop.ALRotate:
		s.rotateLeft(op.Masked)
	case uop.ARRotate:
		s.rotateRight(op.Masked)
	case uop.AMaskShift:
		s.maskShift()
	default:
		panic(fmt.Sprintf("circuits: unknown arith μop kind %v", op.Kind))
	}
}

func (s *Stack) read(op uop.Arith, row int, env *Env) {
	v := s.arr.Read(row)
	switch op.Dst {
	case uop.DstCShift:
		s.cshift.CopyFrom(v)
	case uop.DstXReg:
		s.xreg.CopyFrom(v)
	case uop.DstMask:
		s.loadMask(v, op.Spread)
	case uop.DstDataOut:
		if env != nil {
			env.Out = append(env.Out, v)
		}
	default:
		panic(fmt.Sprintf("circuits: rd cannot target %v", op.Dst))
	}
}

// blc performs the bit-line compute and drives the XOR/XNOR and add layers
// combinationally from the sense outputs.
func (s *Stack) blc(ra, rb int) {
	if s.wlDrops != nil {
		if _, drop := s.wlDrops[s.blcSeq]; drop {
			delete(s.wlDrops, s.blcSeq)
			rb = ra
		}
	}
	s.blcSeq++
	s.arr.BitLineCompute(ra, rb)
	// xor = nand AND or; xnor = its complement (§III: "the XOR/XNOR logic
	// uses the nand and or values").
	s.xorV.And(s.arr.Nand(), s.arr.Or())
	s.xnorV.Not(s.xorV)
	s.computeAdd(s.xorV, s.arr.And())
}

// computeAdd evaluates the Manchester carry chain for every segment group:
// propagate p, generate g, carry-in from the inter-segment carry latch. The
// resulting carry-out is staged in pendingCout and only committed to the
// latch by a writeback with Src = add.
func (s *Stack) computeAdd(p, g bitmat.Row) {
	cin := s.t0
	cin.And(s.carry, s.lsbMask) // carries enter at each group's LSB column
	s.sum.Zero()
	for j := 0; j < s.n; j++ {
		// Sum bits for the columns at offset j.
		s.t1.Xor(p, cin)
		s.t1.And(s.t1, s.offMask[j])
		s.sum.Or(s.sum, s.t1)
		// Carry out of offset j: g | (p & cin).
		s.t1.And(p, cin)
		s.t1.Or(s.t1, g)
		s.t1.And(s.t1, s.offMask[j])
		if j == s.n-1 {
			// Group carry-out: park at the LSB position for the latch.
			s.pendingCout.ShiftRight(s.t1, s.n-1)
		} else {
			cin.ShiftLeft(s.t1, 1)
		}
	}
}

// selectSrc implements the bus logic: pick the value a writeback commits.
func (s *Stack) selectSrc(src uop.Src, extIdx int, env *Env) bitmat.Row {
	switch src {
	case uop.SrcAnd:
		return s.arr.And()
	case uop.SrcNand:
		return s.arr.Nand()
	case uop.SrcOr:
		return s.arr.Or()
	case uop.SrcNor:
		return s.arr.Nor()
	case uop.SrcXor:
		return s.xorV
	case uop.SrcXnor:
		return s.xnorV
	case uop.SrcAdd:
		return s.sum
	case uop.SrcCShift:
		return s.cshift
	case uop.SrcXReg:
		return s.xreg
	case uop.SrcMask:
		return s.maskL
	case uop.SrcZero:
		s.t3.Zero()
		return s.t3
	case uop.SrcOnes:
		s.t3.Fill()
		return s.t3
	case uop.SrcExt:
		return env.Ext(extIdx)
	default:
		panic(fmt.Sprintf("circuits: invalid writeback source %v", src))
	}
}

func (s *Stack) writeback(op uop.Arith, rowD, extIdx int, env *Env) {
	val := s.selectSrc(op.Src, extIdx, env)
	switch op.Dst {
	case uop.DstRow:
		if op.Masked {
			s.arr.WriteMasked(rowD, val, s.maskL)
		} else {
			s.arr.Write(rowD, val)
		}
	case uop.DstXReg:
		s.xreg.CopyFrom(val)
	case uop.DstMask:
		s.loadMask(val, op.Spread)
	case uop.DstCShift:
		s.cshift.CopyFrom(val)
	case uop.DstSpare:
		s.t2.And(val, s.lsbMask)
		s.spare.CopyFrom(s.t2)
	case uop.DstCarry:
		s.t2.And(val, s.lsbMask)
		s.carry.CopyFrom(s.t2)
	case uop.DstDataOut:
		if env != nil {
			env.Out = append(env.Out, val.Clone())
		}
	default:
		panic(fmt.Sprintf("circuits: invalid writeback destination %v", op.Dst))
	}
	// Committing an add result advances the inter-segment carry; predicated
	// groups keep their previous carry (their writes are suppressed anyway).
	if op.Src == uop.SrcAdd && op.Dst == uop.DstRow {
		if op.Masked {
			s.t2.SpreadLSB(s.maskL, s.n)
			s.t2.And(s.t2, s.lsbMask)
			s.carry.Mux(s.t2, s.pendingCout, s.carry)
		} else {
			s.carry.CopyFrom(s.pendingCout)
		}
	}
}

// loadMask loads the mask latches from val, optionally broadcasting each
// group's LSB or MSB column value to the whole group (§III-C: "the mask can
// be set to the XRegister value of either the most-significant column or the
// least-significant column of the segment").
func (s *Stack) loadMask(val bitmat.Row, sp uop.Spread) {
	switch sp {
	case uop.SpreadNone:
		s.maskL.CopyFrom(val)
	case uop.SpreadLSB:
		s.maskL.SpreadLSB(val, s.n)
	case uop.SpreadMSB:
		s.maskL.SpreadMSB(val, s.n)
	}
}

// groupCond derives the per-column shift condition: a group participates when
// its mask is enabled (conditional shifts, §III-B). Unmasked shifts apply to
// every group.
func (s *Stack) groupCond(masked bool) bitmat.Row {
	if !masked {
		s.t3.Fill()
		return s.t3
	}
	s.t3.SpreadLSB(s.maskL, s.n)
	return s.t3
}

// shiftLeft shifts the constant shifter left by one bit within each enabled
// group. The bit leaving the group's MSB column enters the spare shifter and
// the bit stored in the spare shifter enters at the LSB column, so repeated
// passes over consecutive segments implement a full-element shift (§III-C).
func (s *Stack) shiftLeft(masked bool) {
	cond := s.groupCond(masked)
	// Outgoing MSB per group, parked at the LSB position.
	out := s.t0
	out.And(s.cshift, s.msbMask)
	out.ShiftRight(out, s.n-1)
	// Shift within groups, clearing the bit that crossed a group boundary,
	// then insert the spare bit at the LSB.
	sh := s.t1
	sh.ShiftLeft(s.cshift, 1)
	sh.AndNot(sh, s.lsbMask)
	s.t2.And(s.spare, s.lsbMask)
	sh.Or(sh, s.t2)
	s.cshift.Mux(cond, sh, s.cshift)
	// Update the spare bit only for enabled groups.
	s.t2.And(cond, s.lsbMask)
	s.spare.Mux(s.t2, out, s.spare)
}

// shiftRight is the mirror of shiftLeft: the bit leaving the LSB column is
// captured by the spare shifter and the spare bit enters at the MSB column.
func (s *Stack) shiftRight(masked bool) {
	cond := s.groupCond(masked)
	out := s.t0
	out.And(s.cshift, s.lsbMask)
	sh := s.t1
	sh.ShiftRight(s.cshift, 1)
	sh.AndNot(sh, s.msbMask)
	s.t2.And(s.spare, s.lsbMask)
	s.t2.ShiftLeft(s.t2, s.n-1)
	sh.Or(sh, s.t2)
	s.cshift.Mux(cond, sh, s.cshift)
	s.t2.And(cond, s.lsbMask)
	s.spare.Mux(s.t2, out, s.spare)
}

// rotateLeft rotates the constant shifter left by one bit within each enabled
// group (the group MSB wraps to its own LSB).
func (s *Stack) rotateLeft(masked bool) {
	cond := s.groupCond(masked)
	wrap := s.t0
	wrap.And(s.cshift, s.msbMask)
	wrap.ShiftRight(wrap, s.n-1)
	sh := s.t1
	sh.ShiftLeft(s.cshift, 1)
	sh.AndNot(sh, s.lsbMask)
	sh.Or(sh, wrap)
	s.cshift.Mux(cond, sh, s.cshift)
}

// rotateRight rotates the constant shifter right by one bit within each
// enabled group.
func (s *Stack) rotateRight(masked bool) {
	cond := s.groupCond(masked)
	wrap := s.t0
	wrap.And(s.cshift, s.lsbMask)
	wrap.ShiftLeft(wrap, s.n-1)
	sh := s.t1
	sh.ShiftRight(s.cshift, 1)
	sh.AndNot(sh, s.msbMask)
	sh.Or(sh, wrap)
	s.cshift.Mux(cond, sh, s.cshift)
}

// maskShift shifts the XRegister right by one bit within each group, zero
// filling the MSB (Table II's m_shft). Multiplication walks the multiplier
// segment one bit at a time with this μop.
func (s *Stack) maskShift() {
	sh := s.t1
	sh.ShiftRight(s.xreg, 1)
	sh.AndNot(sh, s.msbMask)
	s.xreg.CopyFrom(sh)
}
