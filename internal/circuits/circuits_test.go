package circuits

import (
	"testing"

	"repro/internal/bitmat"
	"repro/internal/sram"
	"repro/internal/uop"
)

func newStack(t *testing.T, rows, cols, n int) *Stack {
	t.Helper()
	return NewStack(sram.New(rows, cols), n)
}

func writeRow(s *Stack, row int, bits ...int) {
	r := bitmat.NewRow(s.Array().Cols())
	for _, b := range bits {
		r.SetBit(b, true)
	}
	s.Array().Write(row, r)
}

func exec(s *Stack, op uop.Arith, rowA, rowB, rowD int, env *Env) {
	s.Exec(op, rowA, rowB, rowD, 0, env)
}

func TestBLCDerivesXorXnor(t *testing.T) {
	s := newStack(t, 4, 8, 4)
	writeRow(s, 0, 0, 1) // 0011....
	writeRow(s, 1, 1, 2) // 0110....
	exec(s, uop.Arith{Kind: uop.ABLC}, 0, 1, 0, nil)
	exec(s, uop.Arith{Kind: uop.AWriteback, Dst: uop.DstRow, DstR: uop.Row(2), Src: uop.SrcXor}, 0, 0, 2, nil)
	got := s.Array().Peek(2)
	want := []bool{true, false, true, false, false, false, false, false}
	for i, w := range want {
		if got.Bit(i) != w {
			t.Fatalf("xor bit %d = %v, want %v", i, got.Bit(i), w)
		}
	}
}

func TestAddLogicSingleSegment(t *testing.T) {
	// n=4: one segment group computes a 4-bit add with the carry latch.
	s := newStack(t, 8, 4, 4)
	writeRow(s, 0, 0, 1) // 3
	writeRow(s, 1, 0, 2) // 5
	// carry-in = 0 by default.
	exec(s, uop.Arith{Kind: uop.ABLC}, 0, 1, 0, nil)
	exec(s, uop.Arith{Kind: uop.AWriteback, Dst: uop.DstRow, DstR: uop.Row(2), Src: uop.SrcAdd}, 0, 0, 2, nil)
	got := s.Array().Peek(2)
	// 3 + 5 = 8 = 0b1000.
	want := []bool{false, false, false, true}
	for i, w := range want {
		if got.Bit(i) != w {
			t.Fatalf("sum bit %d = %v, want %v", i, got.Bit(i), w)
		}
	}
}

func TestCarryLatchChainsSegments(t *testing.T) {
	// Two sequential adds: the first overflows the 4-bit group, the second
	// consumes the carried bit (bit-hybrid inter-segment carry).
	s := newStack(t, 8, 4, 4)
	writeRow(s, 0, 3) // 8
	writeRow(s, 1, 3) // 8: 8+8 = 16 -> sum 0, carry out 1
	writeRow(s, 2)    // 0
	writeRow(s, 3)    // 0: 0+0+carry = 1
	exec(s, uop.Arith{Kind: uop.ABLC}, 0, 1, 0, nil)
	exec(s, uop.Arith{Kind: uop.AWriteback, Dst: uop.DstRow, DstR: uop.Row(4), Src: uop.SrcAdd}, 0, 0, 4, nil)
	if s.Array().Peek(4).Any() {
		t.Fatal("low segment sum should be zero")
	}
	exec(s, uop.Arith{Kind: uop.ABLC}, 2, 3, 0, nil)
	exec(s, uop.Arith{Kind: uop.AWriteback, Dst: uop.DstRow, DstR: uop.Row(5), Src: uop.SrcAdd}, 0, 0, 5, nil)
	if !s.Array().Peek(5).Bit(0) {
		t.Fatal("high segment should receive the inter-segment carry")
	}
}

func TestMaskLatchGatesWrites(t *testing.T) {
	s := newStack(t, 8, 8, 4)
	// Load mask from a row with group 0's LSB set, spread to the group.
	writeRow(s, 0, 0)
	exec(s, uop.Arith{Kind: uop.ABLC}, 0, 0, 0, nil)
	exec(s, uop.Arith{Kind: uop.AWriteback, Dst: uop.DstMask, Src: uop.SrcAnd, Spread: uop.SpreadLSB}, 0, 0, 0, nil)
	// Masked write of all-ones: only group 0 takes it.
	exec(s, uop.Arith{Kind: uop.AWrite, A: uop.Row(3), Src: uop.SrcOnes, Masked: true}, 3, 0, 0, nil)
	got := s.Array().Peek(3)
	for i := 0; i < 8; i++ {
		want := i < 4
		if got.Bit(i) != want {
			t.Fatalf("masked write bit %d = %v, want %v", i, got.Bit(i), want)
		}
	}
}

func TestConstantShifterWithSpare(t *testing.T) {
	// Shift a loaded segment left; the MSB leaves into the spare shifter
	// and re-enters the next group served.
	s := newStack(t, 8, 4, 4)
	writeRow(s, 0, 3) // MSB of the group set
	exec(s, uop.Arith{Kind: uop.ARead, A: uop.Row(0), Dst: uop.DstCShift}, 0, 0, 0, nil)
	exec(s, uop.Arith{Kind: uop.ALShift}, 0, 0, 0, nil)
	exec(s, uop.Arith{Kind: uop.AWriteback, Dst: uop.DstRow, DstR: uop.Row(1), Src: uop.SrcCShift}, 0, 0, 1, nil)
	if s.Array().Peek(1).Any() {
		t.Fatal("bit should have left the group into the spare shifter")
	}
	// A second pass over a zero segment brings the spare bit in at the LSB.
	exec(s, uop.Arith{Kind: uop.ARead, A: uop.Row(2), Dst: uop.DstCShift}, 2, 0, 0, nil)
	exec(s, uop.Arith{Kind: uop.ALShift}, 0, 0, 0, nil)
	exec(s, uop.Arith{Kind: uop.AWriteback, Dst: uop.DstRow, DstR: uop.Row(3), Src: uop.SrcCShift}, 0, 0, 3, nil)
	if !s.Array().Peek(3).Bit(0) {
		t.Fatal("spare shifter bit should enter the next segment's LSB")
	}
}

func TestRotateWithinGroup(t *testing.T) {
	s := newStack(t, 4, 4, 4)
	writeRow(s, 0, 3)
	exec(s, uop.Arith{Kind: uop.ARead, A: uop.Row(0), Dst: uop.DstCShift}, 0, 0, 0, nil)
	exec(s, uop.Arith{Kind: uop.ALRotate}, 0, 0, 0, nil)
	exec(s, uop.Arith{Kind: uop.AWriteback, Dst: uop.DstRow, DstR: uop.Row(1), Src: uop.SrcCShift}, 0, 0, 1, nil)
	if !s.Array().Peek(1).Bit(0) || s.Array().Peek(1).Bit(3) {
		t.Fatalf("rotate failed: %s", s.Array().Peek(1))
	}
}

func TestMaskShiftMovesXRegRight(t *testing.T) {
	s := newStack(t, 4, 4, 4)
	writeRow(s, 0, 1)
	exec(s, uop.Arith{Kind: uop.ARead, A: uop.Row(0), Dst: uop.DstXReg}, 0, 0, 0, nil)
	exec(s, uop.Arith{Kind: uop.AMaskShift}, 0, 0, 0, nil)
	if !s.XReg().Bit(0) || s.XReg().Bit(1) {
		t.Fatalf("m_shft failed: %s", s.XReg())
	}
}

func TestDataOutCollection(t *testing.T) {
	s := newStack(t, 4, 4, 4)
	writeRow(s, 0, 2)
	env := &Env{}
	exec(s, uop.Arith{Kind: uop.ARead, A: uop.Row(0), Dst: uop.DstDataOut}, 0, 0, 0, env)
	if len(env.Out) != 1 || !env.Out[0].Bit(2) {
		t.Fatal("data_out not collected")
	}
}

func TestEnvExtOutOfRangePanics(t *testing.T) {
	env := &Env{}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	env.Ext(0)
}

func TestInvalidFactorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=3")
		}
	}()
	NewStack(sram.New(4, 6), 3)
}

func TestCyclesCount(t *testing.T) {
	s := newStack(t, 4, 4, 4)
	before := s.Cycles()
	exec(s, uop.Arith{Kind: uop.ABLC}, 0, 1, 0, nil)
	exec(s, uop.Arith{Kind: uop.ANone}, 0, 0, 0, nil)
	if s.Cycles() != before+2 {
		t.Fatal("cycle counter wrong")
	}
}

func TestResetClearsLatches(t *testing.T) {
	s := newStack(t, 4, 4, 4)
	writeRow(s, 0, 0, 1, 2, 3)
	exec(s, uop.Arith{Kind: uop.ARead, A: uop.Row(0), Dst: uop.DstXReg}, 0, 0, 0, nil)
	s.Reset()
	if s.XReg().Any() {
		t.Fatal("XRegister survived reset")
	}
	if s.Mask().PopCount() != 4 {
		t.Fatal("mask latches should power up enabled")
	}
}

func TestRotateRightWrapsLSB(t *testing.T) {
	s := newStack(t, 4, 4, 4)
	writeRow(s, 0, 0) // LSB of the group
	exec(s, uop.Arith{Kind: uop.ARead, A: uop.Row(0), Dst: uop.DstCShift}, 0, 0, 0, nil)
	exec(s, uop.Arith{Kind: uop.ARRotate}, 0, 0, 0, nil)
	exec(s, uop.Arith{Kind: uop.AWriteback, Dst: uop.DstRow, DstR: uop.Row(1), Src: uop.SrcCShift}, 0, 0, 1, nil)
	if !s.Array().Peek(1).Bit(3) || s.Array().Peek(1).Bit(0) {
		t.Fatalf("rrot failed: %s", s.Array().Peek(1))
	}
}

func TestRightShiftSpareCarriesDownward(t *testing.T) {
	s := newStack(t, 8, 4, 4)
	writeRow(s, 0, 0) // LSB set: shifting right pushes it into the spare
	exec(s, uop.Arith{Kind: uop.ARead, A: uop.Row(0), Dst: uop.DstCShift}, 0, 0, 0, nil)
	exec(s, uop.Arith{Kind: uop.ARShift}, 0, 0, 0, nil)
	// Next (lower) segment receives it at the MSB.
	exec(s, uop.Arith{Kind: uop.ARead, A: uop.Row(1), Dst: uop.DstCShift}, 1, 0, 0, nil)
	exec(s, uop.Arith{Kind: uop.ARShift}, 0, 0, 0, nil)
	exec(s, uop.Arith{Kind: uop.AWriteback, Dst: uop.DstRow, DstR: uop.Row(2), Src: uop.SrcCShift}, 0, 0, 2, nil)
	if !s.Array().Peek(2).Bit(3) {
		t.Fatalf("spare bit did not enter the next segment's MSB: %s", s.Array().Peek(2))
	}
}

func TestWritebackToSpareAndDataOut(t *testing.T) {
	s := newStack(t, 4, 4, 4)
	writeRow(s, 0, 0, 1, 2, 3)
	exec(s, uop.Arith{Kind: uop.ABLC}, 0, 0, 0, nil)
	exec(s, uop.Arith{Kind: uop.AWriteback, Dst: uop.DstSpare, Src: uop.SrcOnes}, 0, 0, 0, nil)
	env := &Env{}
	exec(s, uop.Arith{Kind: uop.ABLC}, 0, 0, 0, nil)
	exec(s, uop.Arith{Kind: uop.AWriteback, Dst: uop.DstDataOut, Src: uop.SrcAnd}, 0, 0, 0, env)
	if len(env.Out) != 1 || env.Out[0].PopCount() != 4 {
		t.Fatal("wb to data_out failed")
	}
}

func TestMaskedReadIntoLatch(t *testing.T) {
	s := newStack(t, 4, 4, 1)
	writeRow(s, 0, 1, 3)
	exec(s, uop.Arith{Kind: uop.ARead, A: uop.Row(0), Dst: uop.DstMask}, 0, 0, 0, nil)
	if !s.Mask().Bit(1) || s.Mask().Bit(0) {
		t.Fatalf("mask load from read failed: %s", s.Mask())
	}
}
