package probe

// EventKind types a trace event. The kind selects how renderers treat the
// event (Perfetto track drawing, CSV filtering); the Name carries the
// human-readable detail ("miss", "vadd.vv v3,v1,v2", a Fig 7 category).
type EventKind uint8

// Event kinds.
const (
	KInstr     EventKind = iota // instruction (or instruction batch) commit
	KDispatch                   // dispatch slot (VCU queue entry)
	KPhase                      // attributed engine phase span (busy, stalls, spawn)
	KAccess                     // memory access span (cache hit/miss, DRAM burst)
	KWriteback                  // dirty-line writeback
	KStall                      // structural stall span (MSHR, bank)
	KReconfig                   // reconfiguration edge (spawn, way borrow/return, teardown)
	numEventKinds
)

var eventKindNames = [numEventKinds]string{
	"instr", "dispatch", "phase", "access", "writeback", "stall", "reconfig",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "?"
}

// Event is one cycle-stamped trace event. Begin and End are core-clock
// cycles; End == Begin marks an instant. The remaining fields are
// kind-specific payloads (zero when unused):
//
//   - KInstr: Seq is the per-component ordinal, Name the disassembly, VL
//     the active vector length, Aux the VCU dispatch slot and Aux2 the time
//     the core was blocked until (EVE); scalar batches carry the batch size
//     in Aux.
//   - KAccess/KWriteback: Addr is the line address.
type Event struct {
	Comp  string // dotted component path; one Perfetto track per Comp
	Kind  EventKind
	Name  string
	Begin int64
	End   int64
	Seq   uint64
	Addr  uint64
	VL    int
	Aux   int64
	Aux2  int64
}

// Tracer receives every event of a traced run, in deterministic emission
// order. Implementations are per-run objects (see the package comment); they
// must not be shared across concurrent runs.
type Tracer interface {
	Event(Event)
}

// Emitter binds a Tracer to a component path. The zero value is disabled:
// every method is a nil-check away from a no-op, which is the probe-free
// fast path. Components store an Emitter by value and guard any event
// construction work (disassembly, address math) behind On.
type Emitter struct {
	tr   Tracer
	comp string
}

// NewEmitter binds tr to the component path; a nil tr yields a disabled
// emitter.
func NewEmitter(tr Tracer, comp string) Emitter {
	if tr == nil {
		return Emitter{}
	}
	return Emitter{tr: tr, comp: comp}
}

// Child returns an emitter one path segment deeper ("eve" → "eve.vmu").
func (e Emitter) Child(name string) Emitter {
	if e.tr == nil {
		return Emitter{}
	}
	return Emitter{tr: e.tr, comp: e.comp + "." + name}
}

// On reports whether events will be delivered.
func (e Emitter) On() bool { return e.tr != nil }

// Emit stamps the event with the component path and delivers it.
func (e Emitter) Emit(ev Event) {
	if e.tr == nil {
		return
	}
	ev.Comp = e.comp
	e.tr.Event(ev)
}

// Span emits a [begin, end] span event.
func (e Emitter) Span(k EventKind, name string, begin, end int64) {
	if e.tr == nil {
		return
	}
	e.tr.Event(Event{Comp: e.comp, Kind: k, Name: name, Begin: begin, End: end})
}

// SpanAddr emits a span event carrying a memory address.
func (e Emitter) SpanAddr(k EventKind, name string, begin, end int64, addr uint64) {
	if e.tr == nil {
		return
	}
	e.tr.Event(Event{Comp: e.comp, Kind: k, Name: name, Begin: begin, End: end, Addr: addr})
}

// Instant emits a zero-duration event at cycle at.
func (e Emitter) Instant(k EventKind, name string, at int64) {
	if e.tr == nil {
		return
	}
	e.tr.Event(Event{Comp: e.comp, Kind: k, Name: name, Begin: at, End: at})
}

// Collect is a Tracer that accumulates events in memory, in emission order —
// the building block for cmd/eve-trace and the trace tests. A Collect is a
// per-run object like any other Tracer.
type Collect struct {
	Events []Event
}

// Event implements Tracer.
func (c *Collect) Event(ev Event) { c.Events = append(c.Events, ev) }
