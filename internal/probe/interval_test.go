package probe

import (
	"bytes"
	"strings"
	"testing"
)

// TestStatsDelta is the table for the window-diff kernel: counters subtract,
// floats pass through, distributions diff Count/Sum but keep cumulative
// Min/Max, and every monotonicity violation is an error, not a silent
// negative.
func TestStatsDelta(t *testing.T) {
	for _, tc := range []struct {
		name    string
		prev    Stats
		cur     Stats
		want    Stats
		wantErr string
	}{
		{
			name: "counters subtract",
			prev: Stats{{Name: "l2.misses", Kind: KindCounter, Int: 3}},
			cur:  Stats{{Name: "l2.misses", Kind: KindCounter, Int: 10}},
			want: Stats{{Name: "l2.misses", Kind: KindCounter, Int: 7}},
		},
		{
			name: "nil prev diffs against zero",
			cur:  Stats{{Name: "core.insts", Kind: KindCounter, Int: 5}},
			want: Stats{{Name: "core.insts", Kind: KindCounter, Int: 5}},
		},
		{
			name: "new stat mid-run diffs against zero",
			prev: Stats{{Name: "a", Kind: KindCounter, Int: 1}},
			cur: Stats{
				{Name: "a", Kind: KindCounter, Int: 1},
				{Name: "b", Kind: KindCounter, Int: 4},
			},
			want: Stats{
				{Name: "a", Kind: KindCounter, Int: 0},
				{Name: "b", Kind: KindCounter, Int: 4},
			},
		},
		{
			name: "float passes through at current value",
			prev: Stats{{Name: "l2.miss_rate", Kind: KindFloat, Float: 0.5}},
			cur:  Stats{{Name: "l2.miss_rate", Kind: KindFloat, Float: 0.25}},
			want: Stats{{Name: "l2.miss_rate", Kind: KindFloat, Float: 0.25}},
		},
		{
			name: "dist diffs count and sum, keeps cumulative min/max",
			prev: Stats{{Name: "d", Kind: KindDist, Dist: DistValue{Count: 2, Sum: 10, Min: 1, Max: 9}}},
			cur:  Stats{{Name: "d", Kind: KindDist, Dist: DistValue{Count: 5, Sum: 25, Min: 1, Max: 12}}},
			want: Stats{{Name: "d", Kind: KindDist, Dist: DistValue{Count: 3, Sum: 15, Min: 1, Max: 12}}},
		},
		{
			name:    "counter running backwards is an error",
			prev:    Stats{{Name: "l2.misses", Kind: KindCounter, Int: 10}},
			cur:     Stats{{Name: "l2.misses", Kind: KindCounter, Int: 7}},
			wantErr: `counter "l2.misses" ran backwards: 10 -> 7`,
		},
		{
			name:    "negative fresh counter is an error",
			cur:     Stats{{Name: "bad", Kind: KindCounter, Int: -2}},
			wantErr: `counter "bad" ran backwards: 0 -> -2`,
		},
		{
			name:    "dist count running backwards is an error",
			prev:    Stats{{Name: "d", Kind: KindDist, Dist: DistValue{Count: 4}}},
			cur:     Stats{{Name: "d", Kind: KindDist, Dist: DistValue{Count: 2}}},
			wantErr: `distribution "d" count ran backwards: 4 -> 2`,
		},
		{
			name:    "stat disappearing mid-list is an error",
			prev:    Stats{{Name: "a", Kind: KindCounter}, {Name: "b", Kind: KindCounter}},
			cur:     Stats{{Name: "b", Kind: KindCounter}},
			wantErr: `stat "a" disappeared`,
		},
		{
			name:    "stat disappearing at tail is an error",
			prev:    Stats{{Name: "a", Kind: KindCounter}, {Name: "z", Kind: KindCounter}},
			cur:     Stats{{Name: "a", Kind: KindCounter}},
			wantErr: `stat "z" disappeared`,
		},
		{
			name:    "kind change is an error",
			prev:    Stats{{Name: "x", Kind: KindCounter, Int: 1}},
			cur:     Stats{{Name: "x", Kind: KindFloat, Float: 1}},
			wantErr: `stat "x" changed kind`,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.cur.Delta(tc.prev)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("Delta error = %v, want containing %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("Delta = %+v, want %+v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("Delta[%d] = %+v, want %+v", i, got[i], tc.want[i])
				}
			}
		})
	}
}

// tickSource is a mutable component: counters advance between snapshots and
// it publishes one gauge, so one fake exercises both halves of the sampler.
type tickSource struct {
	accesses int64
	misses   int64
	depth    int64
}

func (s *tickSource) ProbeStats(sc *Scope) {
	sc.Counter("accesses", s.accesses)
	sc.Counter("misses", s.misses)
}

func (s *tickSource) ProbeGauges(sc *Scope, now int64) {
	sc.Counter("depth", s.depth)
}

func TestRegistryGauges(t *testing.T) {
	r := NewRegistry()
	src := &tickSource{depth: 3}
	r.Register("l2", src)
	r.Register("core", fakeSource{"insts": 1}) // no gauges: contributes nothing

	g := r.Gauges(100)
	if len(g) != 1 || g[0].Name != "l2.depth" || g[0].Int != 3 {
		t.Fatalf("Gauges = %+v, want the single l2.depth=3 entry", g)
	}
}

// TestSamplerWindows drives a sampler across three windows by hand and checks
// the geometry contract: samples tile [0, end], deltas are per-window, gauges
// are instantaneous, and SumCounters reconciles with the final snapshot.
func TestSamplerWindows(t *testing.T) {
	r := NewRegistry()
	src := &tickSource{}
	r.Register("l2", src)
	s := NewSampler(r, 100)

	// Window 1: 7 accesses by cycle 103 (first boundary at/after 100).
	src.accesses, src.misses, src.depth = 7, 2, 4
	s.Tick(50) // below the edge: no capture
	if len(s.series.Samples) != 0 {
		t.Fatal("Tick below the window edge captured a sample")
	}
	s.Tick(103)
	// Window 2: 5 more accesses; the clock jumps two windows at once.
	src.accesses, src.misses, src.depth = 12, 3, 1
	s.Tick(305)
	// Trailing partial window to 340.
	src.accesses = 15
	series := s.Finish(340)

	if series.Window != 100 {
		t.Errorf("Window = %d, want 100", series.Window)
	}
	if len(series.Samples) != 3 {
		t.Fatalf("got %d samples, want 3: %+v", len(series.Samples), series.Samples)
	}
	edges := [][2]int64{{0, 103}, {103, 305}, {305, 340}}
	for i, sm := range series.Samples {
		if sm.Start != edges[i][0] || sm.End != edges[i][1] {
			t.Errorf("sample %d spans [%d, %d], want [%d, %d]",
				i, sm.Start, sm.End, edges[i][0], edges[i][1])
		}
	}
	if v, ok := series.Samples[0].Deltas.Int("l2.accesses"); !ok || v != 7 {
		t.Errorf("window 0 accesses delta = %d, want 7", v)
	}
	if v, ok := series.Samples[1].Deltas.Int("l2.accesses"); !ok || v != 5 {
		t.Errorf("window 1 accesses delta = %d, want 5", v)
	}
	if v, ok := series.Samples[1].Gauges.Int("l2.depth"); !ok || v != 1 {
		t.Errorf("window 1 depth gauge = %d, want 1 (instantaneous, not a delta)", v)
	}

	// Reconciliation: per-window deltas sum to the end-of-run snapshot.
	sums := series.SumCounters()
	final := r.Snapshot()
	for name, total := range sums {
		if v, _ := final.Int(name); v != total {
			t.Errorf("window sum of %s = %d, final snapshot %d", name, total, v)
		}
	}
}

func TestSamplerFinishOnShortRun(t *testing.T) {
	r := NewRegistry()
	r.Register("l2", &tickSource{accesses: 3})
	s := NewSampler(r, 1_000_000)
	// The run ends before the first window edge: Finish must still produce
	// one sample covering the whole run.
	series := s.Finish(42)
	if len(series.Samples) != 1 {
		t.Fatalf("got %d samples, want 1", len(series.Samples))
	}
	if sm := series.Samples[0]; sm.Start != 0 || sm.End != 42 {
		t.Errorf("sample spans [%d, %d], want [0, 42]", sm.Start, sm.End)
	}
}

func TestNewSamplerRejectsNonPositiveWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSampler(reg, 0) did not panic")
		}
	}()
	NewSampler(NewRegistry(), 0)
}

func TestSamplerReconfigNilSafe(t *testing.T) {
	var s *Sampler
	s.Reconfig(ReconfigEvent{Comp: "eve", Event: "spawn"}) // must not panic

	r := NewRegistry()
	live := NewSampler(r, 10)
	live.Reconfig(ReconfigEvent{Comp: "eve", Cycle: 0, Event: "borrow", Ways: 4, Owned: 4})
	live.Reconfig(ReconfigEvent{Comp: "eve", Cycle: 90, Event: "return", Ways: 4, Owned: 0})
	series := live.Finish(90)
	if len(series.Reconfigs) != 2 {
		t.Fatalf("got %d reconfig events, want 2", len(series.Reconfigs))
	}
	if ev := series.Reconfigs[1]; ev.Event != "return" || ev.Ways != 4 || ev.Owned != 0 {
		t.Errorf("return event = %+v, want ways 4 owned 0", ev)
	}
}

func TestSeriesWriteJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	src := &tickSource{accesses: 9, misses: 4, depth: 2}
	r.Register("l2", src)
	s := NewSampler(r, 50)
	s.Reconfig(ReconfigEvent{Comp: "eve", Cycle: 0, Event: "spawn", Owned: 4, Cost: 500})
	series := s.Finish(60)

	var a, b bytes.Buffer
	if err := series.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := series.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two renderings of the same series differ")
	}
	for _, want := range []string{`"window": 50`, `"l2.accesses": 9`, `"l2.depth": 2`, `"event": "spawn"`, `"cost": 500`} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("dump missing %s:\n%s", want, a.String())
		}
	}
	// The "ways" field is omitempty: a spawn event carries none.
	if strings.Contains(a.String(), `"ways"`) {
		t.Errorf("spawn event rendered a ways field:\n%s", a.String())
	}
}

// TestWritePerfettoSeriesCounterTracks checks the counter-track export: a
// sampled series adds "C" events for derived miss rates, gauge curves and
// reconfiguration way counts alongside the ordinary event tracks.
func TestWritePerfettoSeriesCounterTracks(t *testing.T) {
	series := &Series{
		Window: 100,
		Samples: []Sample{{
			Start: 0, End: 100,
			Deltas: Stats{
				{Name: "l2.accesses", Kind: KindCounter, Int: 10},
				{Name: "l2.misses", Kind: KindCounter, Int: 3},
			},
			Gauges: Stats{{Name: "l2.ways_active", Kind: KindCounter, Int: 4}},
		}},
		Reconfigs: []ReconfigEvent{{Comp: "eve", Cycle: 0, Event: "borrow", Ways: 4, Owned: 4}},
	}
	var buf bytes.Buffer
	if err := WritePerfettoSeries(&buf, "run", perfettoEvents(), series); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"ph":"C"`, `l2.miss_rate`, `l2.ways_active`, `eve.ways_owned`} {
		if !strings.Contains(out, want) {
			t.Errorf("perfetto output missing %s", want)
		}
	}
	// Without a series the output must be byte-identical to WritePerfetto.
	var plain, nilSeries bytes.Buffer
	if err := WritePerfetto(&plain, "run", perfettoEvents()); err != nil {
		t.Fatal(err)
	}
	if err := WritePerfettoSeries(&nilSeries, "run", perfettoEvents(), nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), nilSeries.Bytes()) {
		t.Error("WritePerfettoSeries(nil series) differs from WritePerfetto")
	}
}
