// Package probe is the simulator's observability layer: a hierarchical
// stats registry and a cycle-stamped event tracer threaded through every
// timed component (scalar core, each cache level, DRAM, the vector
// engines).
//
// Both halves obey the sim.Run purity contract: a Registry and a Tracer are
// per-run objects built by the caller and injected at construction time —
// never package-level state (the probepurity analyzer in internal/lint
// enforces this). A nil Tracer is the fast path: components hold a zero
// Emitter and every emission site is a single predictable branch, so a
// probe-disabled run is indistinguishable from a build without the layer
// (bench_test.go's BenchmarkSimRun* pair guards the claim).
//
// # Stats registry
//
// Components implement Source and are registered under a dotted component
// path ("core", "l2", "eve", ...). Snapshot pulls every source's counters
// once — there is no per-cycle bookkeeping — and returns a Stats tree
// flattened to sorted dotted names, gem5-dump style:
//
//	core.insts            51234
//	l2.mshr.stall_cycles   8812
//	eve.vmu.issue_stall     130
//
// Snapshotting after the run keeps the hot loop untouched and makes the
// report deterministic: entries are sorted, duplicate paths panic.
package probe

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// StatKind discriminates the value a Stat carries.
type StatKind uint8

// Stat kinds.
const (
	KindCounter StatKind = iota // monotonic integer counter
	KindFloat                   // derived floating-point value
	KindDist                    // summary distribution
)

// DistValue is a summary distribution: count, sum and extrema of the
// observed values. Its zero value is an empty distribution; components
// embed one per tracked quantity and call Observe on the hot path (four
// integer operations, no allocation).
type DistValue struct {
	Count int64
	Sum   int64
	Min   int64
	Max   int64
}

// Observe folds one sample into the distribution.
func (d *DistValue) Observe(v int64) {
	if d.Count == 0 || v < d.Min {
		d.Min = v
	}
	if d.Count == 0 || v > d.Max {
		d.Max = v
	}
	d.Count++
	d.Sum += v
}

// Mean reports the distribution's mean (0 when empty).
func (d DistValue) Mean() float64 {
	if d.Count == 0 {
		return 0
	}
	return float64(d.Sum) / float64(d.Count)
}

// Stat is one named entry of a snapshot. Exactly one of Int, Float or Dist
// is meaningful, per Kind.
type Stat struct {
	Name  string
	Kind  StatKind
	Int   int64
	Float float64
	Dist  DistValue
}

// Stats is a registry snapshot: entries sorted by dotted name.
type Stats []Stat

// Get returns the entry with the given name.
func (s Stats) Get(name string) (Stat, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i].Name >= name })
	if i < len(s) && s[i].Name == name {
		return s[i], true
	}
	return Stat{}, false
}

// Filter returns the sub-snapshot of entries whose dotted name starts with
// prefix — one component subtree ("l2."), one stat family ("eve.breakdown."),
// or a single entry when the prefix is a full name. Entries are sorted, so
// the matching range is contiguous and the result shares the snapshot's
// backing array: filtering allocates nothing and the result supports every
// Stats query (Get, Int, Float, Flatten, WriteText, further Filters).
func (s Stats) Filter(prefix string) Stats {
	lo := sort.Search(len(s), func(i int) bool { return s[i].Name >= prefix })
	hi := lo
	for hi < len(s) && strings.HasPrefix(s[hi].Name, prefix) {
		hi++
	}
	return s[lo:hi]
}

// Int returns a counter's value by name.
func (s Stats) Int(name string) (int64, bool) {
	st, ok := s.Get(name)
	if !ok || st.Kind != KindCounter {
		return 0, false
	}
	return st.Int, true
}

// Float returns a float entry's value by name.
func (s Stats) Float(name string) (float64, bool) {
	st, ok := s.Get(name)
	if !ok || st.Kind != KindFloat {
		return 0, false
	}
	return st.Float, true
}

// Flatten renders the snapshot as a flat name→value map; distributions
// expand to .count/.sum/.min/.max/.mean sub-entries. Counters below 2^53
// convert exactly.
func (s Stats) Flatten() map[string]float64 {
	out := make(map[string]float64, len(s))
	for _, st := range s {
		switch st.Kind {
		case KindCounter:
			out[st.Name] = float64(st.Int)
		case KindFloat:
			out[st.Name] = st.Float
		case KindDist:
			out[st.Name+".count"] = float64(st.Dist.Count)
			out[st.Name+".sum"] = float64(st.Dist.Sum)
			out[st.Name+".min"] = float64(st.Dist.Min)
			out[st.Name+".max"] = float64(st.Dist.Max)
			out[st.Name+".mean"] = st.Dist.Mean()
		}
	}
	return out
}

// WriteText dumps the snapshot as a deterministic, aligned, gem5-style text
// report: one sorted line per scalar, distributions on one summary line.
func (s Stats) WriteText(w io.Writer) error {
	width := 0
	for _, st := range s {
		if len(st.Name) > width {
			width = len(st.Name)
		}
	}
	for _, st := range s {
		var err error
		switch st.Kind {
		case KindCounter:
			_, err = fmt.Fprintf(w, "%-*s  %d\n", width, st.Name, st.Int)
		case KindFloat:
			_, err = fmt.Fprintf(w, "%-*s  %s\n", width, st.Name, FormatFloat(st.Float))
		case KindDist:
			_, err = fmt.Fprintf(w, "%-*s  mean %s (count %d, min %d, max %d, sum %d)\n",
				width, st.Name, FormatFloat(st.Dist.Mean()),
				st.Dist.Count, st.Dist.Min, st.Dist.Max, st.Dist.Sum)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// FormatFloat renders a float for the text report: integral values print
// without a fraction, everything else with six significant decimals.
func FormatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.6f", v)
}

// Source is a component that publishes its counters into a Scope at
// snapshot time. Implementations read their own plain fields; they must not
// mutate simulation state.
type Source interface {
	ProbeStats(s *Scope)
}

// Scope prefixes stat names with a dotted component path and appends the
// published entries to the snapshot under construction.
type Scope struct {
	prefix string
	out    *[]Stat
}

// Child returns a sub-scope one path segment deeper.
func (s *Scope) Child(name string) *Scope {
	return &Scope{prefix: s.prefix + name + ".", out: s.out}
}

// Counter publishes an integer counter.
func (s *Scope) Counter(name string, v int64) {
	*s.out = append(*s.out, Stat{Name: s.prefix + name, Kind: KindCounter, Int: v})
}

// CounterU publishes a uint64 counter.
func (s *Scope) CounterU(name string, v uint64) {
	s.Counter(name, int64(v))
}

// Float publishes a derived floating-point value.
func (s *Scope) Float(name string, v float64) {
	*s.out = append(*s.out, Stat{Name: s.prefix + name, Kind: KindFloat, Float: v})
}

// Dist publishes a summary distribution.
func (s *Scope) Dist(name string, d DistValue) {
	*s.out = append(*s.out, Stat{Name: s.prefix + name, Kind: KindDist, Dist: d})
}

// Registry is the hierarchical stats registry for one run. Components
// register under dotted paths at construction; Snapshot pulls their
// counters. The registry holds no counters itself, so registration and the
// simulated hot path cost nothing.
type Registry struct {
	names []string
	srcs  []Source
}

// NewRegistry returns an empty per-run registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds a stats source under the given component path.
func (r *Registry) Register(path string, src Source) {
	r.names = append(r.names, path)
	r.srcs = append(r.srcs, src)
}

// Snapshot pulls every registered source and returns the sorted snapshot.
// Duplicate stat paths are a wiring bug and panic.
func (r *Registry) Snapshot() Stats {
	var out []Stat
	for i, src := range r.srcs {
		scope := &Scope{prefix: r.names[i] + ".", out: &out}
		src.ProbeStats(scope)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	for i := 1; i < len(out); i++ {
		if out[i].Name == out[i-1].Name {
			panic(fmt.Sprintf("probe: duplicate stat path %q", out[i].Name))
		}
	}
	return out
}

// Summary renders the snapshot via WriteText into a string.
func (s Stats) Summary() string {
	var b strings.Builder
	_ = s.WriteText(&b) //evelint:allow errdrop -- strings.Builder writes cannot fail
	return b.String()
}
