package probe

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePerfetto renders a traced run as Chrome trace-event JSON, the format
// ui.perfetto.dev (and chrome://tracing) loads directly. The whole run is
// one process; every component path becomes one named thread track, so the
// core, each cache level, DRAM and the engine sub-units (eve.vsu, eve.vmu,
// eve.dtu) line up as parallel timelines. Cycle stamps map 1:1 onto the
// format's microsecond field — read "1 µs" as "1 core cycle".
//
// Span events render as complete ("X") slices; instants and instruction
// commits render as thread-scoped instant ("i") marks, which keeps every
// track free of partially-overlapping slices Perfetto cannot nest.
//
// The output is deterministic: track ids come from the sorted component
// paths, events keep their emission order, and json.Marshal sorts the args
// maps — two identical runs produce byte-identical traces.
func WritePerfetto(w io.Writer, process string, events []Event) error {
	return WritePerfettoSeries(w, process, events, nil)
}

// WritePerfettoSeries renders the trace like WritePerfetto and, when an
// interval series is given, appends counter ("C") events so the window
// metrics draw as curves alongside the event tracks:
//
//   - a <comp>.miss_rate track per cache level, derived from each window's
//     misses/accesses deltas;
//   - one stacked eve.breakdown track carrying every Fig 7 category's
//     window cycles, so the stall shares read directly off the plot;
//   - one track per gauge (ways owned, MSHR occupancy, queue depth, ...);
//   - extra points on the ways-owned track at every reconfiguration edge,
//     so borrows and returns show as steps at their exact cycle.
//
// Counter values come from the deterministic series, so the extended trace
// is byte-deterministic too.
func WritePerfettoSeries(w io.Writer, process string, events []Event, series *Series) error {
	const pid = 1
	comps := make([]string, 0, 8)
	seen := make(map[string]bool, 8)
	for _, ev := range events {
		if !seen[ev.Comp] {
			seen[ev.Comp] = true
			comps = append(comps, ev.Comp)
		}
	}
	sort.Strings(comps)
	tid := make(map[string]int, len(comps))
	for i, c := range comps {
		tid[c] = i + 1
	}

	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if !first {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = w.Write(b)
		return err
	}

	type meta struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	}
	if err := emit(meta{Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": process}}); err != nil {
		return err
	}
	for _, c := range comps {
		if err := emit(meta{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid[c],
			Args: map[string]any{"name": c}}); err != nil {
			return err
		}
	}

	type slice struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   int64          `json:"ts"`
		Dur  int64          `json:"dur,omitempty"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		S    string         `json:"s,omitempty"`
		Args map[string]any `json:"args,omitempty"`
	}
	for _, ev := range events {
		s := slice{
			Name: ev.Name,
			Cat:  ev.Kind.String(),
			Ts:   ev.Begin,
			Pid:  pid,
			Tid:  tid[ev.Comp],
			Args: eventArgs(ev),
		}
		// Instruction and dispatch events overlap freely in a pipelined
		// machine; everything else on a track is sequential. Overlapping
		// shapes become instants so Perfetto's slice nesting stays valid.
		if ev.Kind == KInstr || ev.Kind == KDispatch || ev.End <= ev.Begin {
			s.Ph, s.S = "i", "t"
			if ev.End > ev.Begin {
				if s.Args == nil {
					s.Args = map[string]any{}
				}
				s.Args["end"] = ev.End
			}
		} else {
			s.Ph = "X"
			s.Dur = ev.End - ev.Begin
		}
		if err := emit(s); err != nil {
			return err
		}
	}

	if series != nil {
		type counter struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		}
		point := func(name string, ts int64, args map[string]any) error {
			return emit(counter{Name: name, Cat: "interval", Ph: "C", Ts: ts, Pid: pid, Args: args})
		}
		for _, sm := range series.Samples {
			// Windowed miss-rate per cache level: every component with both
			// an accesses and a misses counter in the window deltas.
			for _, st := range sm.Deltas {
				if st.Kind != KindCounter || !strings.HasSuffix(st.Name, ".accesses") {
					continue
				}
				comp := componentOf(st.Name)
				misses, ok := sm.Deltas.Int(comp + ".misses")
				if !ok {
					continue
				}
				rate := 0.0
				if st.Int > 0 {
					rate = float64(misses) / float64(st.Int)
				}
				if err := point(comp+".miss_rate", sm.End, map[string]any{"miss_rate": rate}); err != nil {
					return err
				}
			}
			// The Fig 7 attribution as one stacked counter track.
			if bd := sm.Deltas.Filter("eve.breakdown."); len(bd) > 0 {
				args := make(map[string]any, len(bd))
				for _, st := range bd {
					args[strings.TrimPrefix(st.Name, "eve.breakdown.")] = st.Int
				}
				if err := point("eve.breakdown", sm.End, args); err != nil {
					return err
				}
			}
			// Every gauge is its own track.
			for _, st := range sm.Gauges {
				var v any = st.Int
				if st.Kind == KindFloat {
					v = st.Float
				}
				if err := point(st.Name, sm.End, map[string]any{"value": v}); err != nil {
					return err
				}
			}
		}
		// Reconfiguration edges add points to the ways-owned track at their
		// exact cycles, so the borrow/return steps are sharp.
		for _, ev := range series.Reconfigs {
			err := point(ev.Comp+".ways_owned", ev.Cycle, map[string]any{"value": ev.Owned})
			if err != nil {
				return err
			}
		}
	}

	_, err := io.WriteString(w, "\n]}\n")
	return err
}

// eventArgs packs an event's non-zero payload fields for the trace viewer.
func eventArgs(ev Event) map[string]any {
	var args map[string]any
	set := func(k string, v any) {
		if args == nil {
			args = map[string]any{}
		}
		args[k] = v
	}
	if ev.Seq != 0 {
		set("seq", ev.Seq)
	}
	if ev.Addr != 0 {
		set("addr", fmt.Sprintf("%#x", ev.Addr))
	}
	if ev.VL != 0 {
		set("vl", ev.VL)
	}
	if ev.Aux != 0 {
		set("aux", ev.Aux)
	}
	if ev.Aux2 != 0 {
		set("aux2", ev.Aux2)
	}
	return args
}
