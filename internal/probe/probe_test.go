package probe

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"testing"
)

type fakeSource map[string]int64

func (f fakeSource) ProbeStats(s *Scope) {
	names := make([]string, 0, len(f))
	for n := range f {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s.Counter(n, f[n])
	}
}

func TestRegistrySnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Register("l2", fakeSource{"misses": 7, "accesses": 10})
	r.Register("core", fakeSource{"insts": 42})
	st := r.Snapshot()

	if len(st) != 3 {
		t.Fatalf("snapshot has %d entries, want 3", len(st))
	}
	if !sort.SliceIsSorted(st, func(i, j int) bool { return st[i].Name < st[j].Name }) {
		t.Errorf("snapshot not sorted: %v", st)
	}
	if v, ok := st.Int("core.insts"); !ok || v != 42 {
		t.Errorf("core.insts = %d, %v; want 42, true", v, ok)
	}
	if v, ok := st.Int("l2.accesses"); !ok || v != 10 {
		t.Errorf("l2.accesses = %d, %v; want 10, true", v, ok)
	}
	if _, ok := st.Get("l2.nonexistent"); ok {
		t.Error("Get on a missing name reported ok")
	}
}

func TestRegistryDuplicatePathPanics(t *testing.T) {
	r := NewRegistry()
	r.Register("core", fakeSource{"insts": 1})
	r.Register("core", fakeSource{"insts": 2})
	defer func() {
		if recover() == nil {
			t.Error("duplicate stat path did not panic")
		}
	}()
	r.Snapshot()
}

func TestScopeChild(t *testing.T) {
	var out []Stat
	s := &Scope{prefix: "eve.", out: &out}
	s.Child("vmu").Counter("lines", 3)
	if len(out) != 1 || out[0].Name != "eve.vmu.lines" {
		t.Fatalf("child scope produced %v, want eve.vmu.lines", out)
	}
}

func TestDistValue(t *testing.T) {
	var d DistValue
	if d.Mean() != 0 {
		t.Errorf("empty dist mean = %v, want 0", d.Mean())
	}
	for _, v := range []int64{5, -3, 10} {
		d.Observe(v)
	}
	if d.Count != 3 || d.Sum != 12 || d.Min != -3 || d.Max != 10 {
		t.Errorf("dist = %+v, want count 3 sum 12 min -3 max 10", d)
	}
	if d.Mean() != 4 {
		t.Errorf("mean = %v, want 4", d.Mean())
	}
}

func TestFlattenExpandsDists(t *testing.T) {
	st := Stats{
		{Name: "a.count", Kind: KindCounter, Int: 2},
		{Name: "b", Kind: KindDist, Dist: DistValue{Count: 2, Sum: 6, Min: 2, Max: 4}},
		{Name: "c", Kind: KindFloat, Float: 0.5},
	}
	flat := st.Flatten()
	want := map[string]float64{
		"a.count": 2, "b.count": 2, "b.sum": 6, "b.min": 2, "b.max": 4, "b.mean": 3, "c": 0.5,
	}
	for k, v := range want {
		if flat[k] != v {
			t.Errorf("flat[%q] = %v, want %v", k, flat[k], v)
		}
	}
	if len(flat) != len(want) {
		t.Errorf("flatten produced %d keys, want %d: %v", len(flat), len(want), flat)
	}
}

func TestWriteTextAlignedAndDeterministic(t *testing.T) {
	st := Stats{
		{Name: "core.insts", Kind: KindCounter, Int: 7},
		{Name: "l2.miss_rate", Kind: KindFloat, Float: 0.25},
	}
	var a, b bytes.Buffer
	if err := st.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two WriteText renderings differ")
	}
	lines := strings.Split(strings.TrimRight(a.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), a.String())
	}
	if !strings.Contains(lines[0], "core.insts") || !strings.HasSuffix(lines[0], "7") {
		t.Errorf("counter line = %q", lines[0])
	}
	if !strings.HasSuffix(lines[1], "0.250000") {
		t.Errorf("float line = %q", lines[1])
	}
}

func TestFormatFloat(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{
		{3, "3"}, {0, "0"}, {-12, "-12"}, {0.5, "0.500000"}, {2.25, "2.250000"},
	} {
		if got := FormatFloat(tc.v); got != tc.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

// TestZeroEmitterIsSafe: the zero Emitter is the fast path — every method
// must be a no-op, not a nil dereference.
func TestZeroEmitterIsSafe(t *testing.T) {
	var e Emitter
	if e.On() {
		t.Error("zero emitter reports On")
	}
	e.Emit(Event{Kind: KInstr, Name: "x"})
	e.Span(KPhase, "busy", 0, 4)
	e.SpanAddr(KAccess, "hit", 0, 2, 64)
	e.Instant(KPhase, "spawn", 1)
	if c := e.Child("vmu"); c.On() {
		t.Error("child of zero emitter reports On")
	}
	if ne := NewEmitter(nil, "core"); ne.On() {
		t.Error("NewEmitter(nil) reports On")
	}
}

func TestEmitterStampsComponent(t *testing.T) {
	col := &Collect{}
	e := NewEmitter(col, "eve")
	e.Emit(Event{Kind: KInstr, Name: "vadd"})
	e.Child("vmu").Span(KAccess, "load", 1, 5)
	if len(col.Events) != 2 {
		t.Fatalf("collected %d events, want 2", len(col.Events))
	}
	if col.Events[0].Comp != "eve" {
		t.Errorf("event 0 comp = %q, want eve", col.Events[0].Comp)
	}
	if col.Events[1].Comp != "eve.vmu" || col.Events[1].End != 5 {
		t.Errorf("event 1 = %+v, want comp eve.vmu end 5", col.Events[1])
	}
}

func perfettoEvents() []Event {
	return []Event{
		{Comp: "eve.vsu", Kind: KPhase, Name: "busy", Begin: 0, End: 10},
		{Comp: "l2", Kind: KAccess, Name: "miss", Begin: 2, End: 40, Addr: 0x1000},
		{Comp: "eve.vsu", Kind: KInstr, Name: "vadd.vv v3,v1,v2", Begin: 4, End: 12, Seq: 1, VL: 64},
		{Comp: "core", Kind: KInstr, Name: "ops", Begin: 0, End: 0, Aux: 3},
		{Comp: "l2", Kind: KWriteback, Name: "writeback", Begin: 40, End: 40, Addr: 0x2000},
	}
}

func TestWritePerfettoValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, "test run", perfettoEvents()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	// 1 process_name + 3 thread_name metadata + 5 events.
	if len(doc.TraceEvents) != 9 {
		t.Fatalf("got %d trace events, want 9", len(doc.TraceEvents))
	}
	for i, ev := range doc.TraceEvents {
		for _, key := range []string{"ph", "pid"} {
			if _, ok := ev[key]; !ok {
				t.Errorf("event %d missing %q: %v", i, key, ev)
			}
		}
		if ev["ph"] != "M" {
			if _, ok := ev["ts"]; !ok {
				t.Errorf("event %d missing ts: %v", i, ev)
			}
		}
	}
	// The phase span is a complete slice; the instruction is an instant.
	var sawSpan, sawInstant bool
	for _, ev := range doc.TraceEvents {
		switch ev["name"] {
		case "busy":
			sawSpan = ev["ph"] == "X" && ev["dur"] == float64(10)
		case "vadd.vv v3,v1,v2":
			sawInstant = ev["ph"] == "i"
		}
	}
	if !sawSpan {
		t.Error("phase span did not render as a complete slice with dur")
	}
	if !sawInstant {
		t.Error("instruction commit did not render as an instant")
	}
}

func TestWritePerfettoDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WritePerfetto(&a, "run", perfettoEvents()); err != nil {
		t.Fatal(err)
	}
	if err := WritePerfetto(&b, "run", perfettoEvents()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two renderings of the same events differ")
	}
}

func TestFilterSelectsPrefixSubtree(t *testing.T) {
	r := NewRegistry()
	r.Register("l2", fakeSource{"accesses": 10, "misses": 7})
	r.Register("l2x", fakeSource{"accesses": 3})
	r.Register("core", fakeSource{"insts": 42})
	st := r.Snapshot()

	sub := st.Filter("l2.")
	if len(sub) != 2 {
		t.Fatalf("Filter(\"l2.\") has %d entries, want 2: %v", len(sub), sub)
	}
	for _, s := range sub {
		if !strings.HasPrefix(s.Name, "l2.") {
			t.Errorf("entry %q escaped the l2. prefix", s.Name)
		}
	}
	if v, ok := sub.Int("l2.misses"); !ok || v != 7 {
		t.Errorf("filtered l2.misses = %d, %v; want 7, true", v, ok)
	}
	// The "l2." prefix must not capture the sibling component "l2x".
	if _, ok := sub.Get("l2x.accesses"); ok {
		t.Error("Filter(\"l2.\") captured the l2x component")
	}

	// A full stat name is a valid prefix selecting exactly that entry.
	one := st.Filter("core.insts")
	if len(one) != 1 || one[0].Name != "core.insts" {
		t.Errorf("Filter(full name) = %v, want the single core.insts entry", one)
	}

	// Filters compose: narrowing an already-filtered snapshot works.
	if again := sub.Filter("l2.misses"); len(again) != 1 {
		t.Errorf("Filter of a filtered snapshot = %v, want 1 entry", again)
	}

	if got := st.Filter("nosuch."); len(got) != 0 {
		t.Errorf("Filter on an absent prefix = %v, want empty", got)
	}
	if got := Stats(nil).Filter("l2."); len(got) != 0 {
		t.Errorf("Filter on an empty snapshot = %v, want empty", got)
	}
	// The empty prefix selects everything.
	if got := st.Filter(""); len(got) != len(st) {
		t.Errorf("Filter(\"\") kept %d of %d entries", len(got), len(st))
	}
}
