package probe

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file is the interval half of the probe layer: cycle-windowed
// sampling of the stats registry. Where Snapshot answers "what happened
// over the whole run", a Sampler answers "what happened in each window of
// N cycles" — the time axis that makes EVE's ephemeral borrow/compute/
// return lifecycle visible instead of averaged away.
//
// The same purity and zero-overhead contracts apply: a Sampler is a
// per-run object owned by the caller (sim.Config carries the window, never
// a global), and a nil sampler costs the simulation exactly one pointer
// branch per instruction boundary. Sampling is read-only — it pulls the
// registry exactly like an end-of-run Snapshot, so a sampled run's
// simulated bytes are identical to an unsampled run's.

// Delta returns the per-window difference of two snapshots taken from the
// same registry, cur − prev. Counters subtract and must not run backwards:
// a negative delta means a component's "monotonic" counter decreased, which
// is a bug in that component, and Delta reports it as an error so every
// sampled run doubles as an invariant tripwire. Distributions subtract
// Count and Sum (Count is monotonicity-checked) and keep the cumulative
// Min/Max, which windowed observers cannot recover. Float entries are
// derived values (rates, ratios) rather than accumulators, so they pass
// through at their current value.
//
// A nil or empty prev diffs against zero, so the first window's delta is
// the snapshot itself. A name present in prev but missing from cur means a
// source vanished mid-run and is reported as an error too.
func (s Stats) Delta(prev Stats) (Stats, error) {
	out := make(Stats, 0, len(s))
	j := 0
	for _, cur := range s {
		for j < len(prev) && prev[j].Name < cur.Name {
			return nil, fmt.Errorf("probe: stat %q disappeared between snapshots", prev[j].Name)
		}
		d := cur
		if j < len(prev) && prev[j].Name == cur.Name {
			p := prev[j]
			j++
			if p.Kind != cur.Kind {
				return nil, fmt.Errorf("probe: stat %q changed kind between snapshots", cur.Name)
			}
			switch cur.Kind {
			case KindCounter:
				d.Int = cur.Int - p.Int
				if d.Int < 0 {
					return nil, fmt.Errorf("probe: counter %q ran backwards: %d -> %d",
						cur.Name, p.Int, cur.Int)
				}
			case KindDist:
				d.Dist.Count = cur.Dist.Count - p.Dist.Count
				d.Dist.Sum = cur.Dist.Sum - p.Dist.Sum
				if d.Dist.Count < 0 {
					return nil, fmt.Errorf("probe: distribution %q count ran backwards: %d -> %d",
						cur.Name, p.Dist.Count, cur.Dist.Count)
				}
			}
		} else if cur.Kind == KindCounter && cur.Int < 0 {
			return nil, fmt.Errorf("probe: counter %q ran backwards: 0 -> %d", cur.Name, cur.Int)
		}
		out = append(out, d)
	}
	if j < len(prev) {
		return nil, fmt.Errorf("probe: stat %q disappeared between snapshots", prev[j].Name)
	}
	return out, nil
}

// GaugeSource is the optional second half of Source: a component that also
// has instantaneous state worth plotting over time — live L2 way ownership,
// MSHR occupancy, queue depth. ProbeGauges publishes the values as of cycle
// now into the scope; like ProbeStats it must read, never mutate.
type GaugeSource interface {
	ProbeGauges(s *Scope, now int64)
}

// Gauges pulls every registered source that also implements GaugeSource and
// returns the sorted instantaneous-value snapshot as of cycle now. Sources
// without gauges simply contribute nothing; duplicate paths panic exactly
// like Snapshot.
func (r *Registry) Gauges(now int64) Stats {
	var out []Stat
	for i, src := range r.srcs {
		g, ok := src.(GaugeSource)
		if !ok {
			continue
		}
		scope := &Scope{prefix: r.names[i] + ".", out: &out}
		g.ProbeGauges(scope, now)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	for i := 1; i < len(out); i++ {
		if out[i].Name == out[i-1].Name {
			panic(fmt.Sprintf("probe: duplicate gauge path %q", out[i].Name))
		}
	}
	return out
}

// ReconfigEvent is one explicit reconfiguration edge on the timeline: an
// ephemeral engine spawning, borrowing cache ways, returning them, or
// tearing down. Ways is the number of ways changing hands on this edge,
// Owned the engine's ownership after it; Cost carries the spawn cost in
// cycles where one applies.
type ReconfigEvent struct {
	Comp  string `json:"comp"`
	Cycle int64  `json:"cycle"`
	Event string `json:"event"` // "spawn", "borrow", "return", "teardown"
	Ways  int    `json:"ways,omitempty"`
	Owned int    `json:"owned"`
	Cost  int64  `json:"cost,omitempty"`
}

// Sample is one window of the time series: the counter deltas accumulated
// over [Start, End] and the gauge values observed at End. Windows tile the
// run — each Start is the previous End, the first Start is 0 and the last
// End is the run's final cycle — so summing any counter across all samples
// reproduces its end-of-run snapshot value exactly.
type Sample struct {
	Start  int64
	End    int64
	Deltas Stats
	Gauges Stats
}

// Series is a complete interval time series for one run: the window size
// that drove sampling, the window samples in time order, and every
// reconfiguration event, also in time order.
type Series struct {
	Window    int64
	Samples   []Sample
	Reconfigs []ReconfigEvent
}

// Sampler drives interval collection for one run. The caller ticks it at
// instruction boundaries with the current cycle; whenever the clock crosses
// the next window edge the sampler pulls the registry, diffs against the
// previous snapshot, and records one Sample. Because the simulation is
// event-driven, window edges land on the first instruction boundary at or
// after each multiple of the window — a deterministic function of the run,
// not of wall time.
type Sampler struct {
	reg     *Registry
	window  int64
	next    int64
	prev    Stats
	lastEnd int64
	series  Series
}

// NewSampler returns a sampler over reg with the given window in cycles.
func NewSampler(reg *Registry, window int64) *Sampler {
	if window <= 0 {
		panic("probe: sampler window must be positive")
	}
	return &Sampler{reg: reg, window: window, next: window, series: Series{Window: window}}
}

// Tick advances the sampler to cycle now, capturing a window if the clock
// crossed its edge. The common case — no edge crossed — is a single compare.
func (s *Sampler) Tick(now int64) {
	if now < s.next {
		return
	}
	s.capture(now)
}

// capture records one window ending at cycle now.
func (s *Sampler) capture(now int64) {
	snap := s.reg.Snapshot()
	delta, err := snap.Delta(s.prev)
	if err != nil {
		panic(err.Error())
	}
	s.series.Samples = append(s.series.Samples, Sample{
		Start:  s.lastEnd,
		End:    now,
		Deltas: delta,
		Gauges: s.reg.Gauges(now),
	})
	s.prev = snap
	s.lastEnd = now
	s.next = (now/s.window + 1) * s.window
}

// Reconfig records one reconfiguration edge on the timeline.
func (s *Sampler) Reconfig(ev ReconfigEvent) {
	if s == nil {
		return
	}
	s.series.Reconfigs = append(s.series.Reconfigs, ev)
}

// Finish closes the series at the run's final cycle, capturing the trailing
// partial window so the samples tile the whole run, and returns the series.
// Call it after the run has fully drained and torn down, immediately before
// the end-of-run Snapshot: the last sample then diffs against the same
// state the snapshot reports, which is what makes window sums reconcile
// with it exactly. Even when the last tick already landed on the final
// cycle, counters can still move after it — teardown bumps the engine's
// reconfiguration counters at that same cycle — so Finish also captures a
// zero-width trailing window whenever the registry advanced past the last
// recorded snapshot.
func (s *Sampler) Finish(end int64) *Series {
	if end > s.lastEnd || len(s.series.Samples) == 0 || !statsEqual(s.reg.Snapshot(), s.prev) {
		s.capture(end)
	}
	out := s.series
	return &out
}

// statsEqual reports whether two snapshots are element-wise identical.
func statsEqual(a, b Stats) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// jsonSample and jsonSeries are the wire shapes of the dump: stats flatten
// to name→value maps, which json.Marshal renders with sorted keys, so the
// dump is byte-deterministic like every other report in the tree.
type jsonSample struct {
	Start  int64              `json:"start"`
	End    int64              `json:"end"`
	Deltas map[string]float64 `json:"deltas"`
	Gauges map[string]float64 `json:"gauges,omitempty"`
}

type jsonSeries struct {
	Window    int64           `json:"window"`
	Samples   []jsonSample    `json:"samples"`
	Reconfigs []ReconfigEvent `json:"reconfigs,omitempty"`
}

// WriteJSON dumps the series as indented, byte-deterministic JSON.
func (s *Series) WriteJSON(w io.Writer) error {
	out := jsonSeries{Window: s.Window, Reconfigs: s.Reconfigs}
	out.Samples = make([]jsonSample, len(s.Samples))
	for i, sm := range s.Samples {
		out.Samples[i] = jsonSample{
			Start:  sm.Start,
			End:    sm.End,
			Deltas: sm.Deltas.Flatten(),
		}
		if len(sm.Gauges) > 0 {
			out.Samples[i].Gauges = sm.Gauges.Flatten()
		}
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// SumCounters folds every sample's counter deltas into one name→total map —
// the reconciliation view: for each counter path the total equals the
// end-of-run snapshot value.
func (s *Series) SumCounters() map[string]int64 {
	out := make(map[string]int64)
	for _, sm := range s.Samples {
		for _, st := range sm.Deltas {
			if st.Kind == KindCounter {
				out[st.Name] += st.Int
			}
		}
	}
	return out
}

// componentOf returns the dotted path minus its last segment.
func componentOf(name string) string {
	i := strings.LastIndexByte(name, '.')
	if i < 0 {
		return name
	}
	return name[:i]
}
