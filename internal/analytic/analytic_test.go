package analytic

import (
	"math"
	"testing"
)

func approx(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

// TestPaperAreaNumbers pins the §VI-B / §VII-B area figures.
func TestPaperAreaNumbers(t *testing.T) {
	if !approx(SRAMOverhead(1), 0.045, 1e-9) {
		t.Errorf("EVE-1 SRAM overhead = %.3f, want 0.045", SRAMOverhead(1))
	}
	if !approx(SRAMOverhead(8), 0.078, 1e-9) {
		t.Errorf("EVE-8 SRAM overhead = %.3f, want 0.078", SRAMOverhead(8))
	}
	if !approx(SRAMOverhead(32), 0.063, 1e-9) {
		t.Errorf("EVE-32 SRAM overhead = %.3f, want 0.063", SRAMOverhead(32))
	}
	if !approx(StructuralOverhead(), 0.078125, 1e-9) {
		t.Errorf("structural overhead = %.4f, want 5/64", StructuralOverhead())
	}
	// EVE-8 total: 7.8%/2 + 7.8% ≈ 11.7%.
	if got := TotalOverhead(8); !approx(got, 0.117, 0.001) {
		t.Errorf("EVE-8 total overhead = %.4f, want ≈0.117", got)
	}
}

func TestCycleTimes(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		if CycleTimeNS(n) != BaseCycleNS {
			t.Errorf("EVE-%d cycle time should be the base 1.025ns", n)
		}
	}
	if !approx(ClockPenalty(16), 1.175/1.025, 1e-9) {
		t.Errorf("EVE-16 clock penalty = %f", ClockPenalty(16))
	}
	if !approx(ClockPenalty(32), 1.55/1.025, 1e-9) {
		t.Errorf("EVE-32 clock penalty = %f", ClockPenalty(32))
	}
}

func TestSystemAreaFactors(t *testing.T) {
	cases := map[string]float64{
		"O3": 1.0, "O3+IV": 1.10, "O3+DV": 2.00,
		"O3+EVE-1": 1.10, "O3+EVE-8": 1.12, "O3+EVE-32": 1.11,
	}
	for sys, want := range cases {
		if got := SystemAreaFactor(sys); got != want {
			t.Errorf("area factor %s = %.2f, want %.2f", sys, got, want)
		}
	}
}

// TestFig2Shape checks the qualitative structure of Fig 2: latency strictly
// decreases with the parallelization factor while throughput peaks at the
// balanced-utilization point (PF=4) and falls on both sides.
func TestFig2Shape(t *testing.T) {
	rows := Fig2()
	if len(rows) != 6 {
		t.Fatalf("Fig2 has %d rows, want 6", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].AddLat >= rows[i-1].AddLat {
			t.Errorf("add latency not decreasing: N=%d %d >= N=%d %d",
				rows[i].N, rows[i].AddLat, rows[i-1].N, rows[i-1].AddLat)
		}
		if rows[i].MulLat >= rows[i-1].MulLat {
			t.Errorf("mul latency not decreasing at N=%d", rows[i].N)
		}
	}
	if got := PeakThroughputFactor(); got != 4 {
		t.Errorf("peak throughput at PF=%d, want 4 (balanced utilization)", got)
	}
	// Throughput at the extremes is below the peak (both under-utilization
	// regimes visible).
	var peak, at1, at32 float64
	for _, r := range rows {
		switch r.N {
		case 1:
			at1 = r.AddThpN
		case 4:
			peak = r.AddThpN
		case 32:
			at32 = r.AddThpN
		}
	}
	if peak <= at1 || peak <= at32 {
		t.Errorf("throughput peak %.2f not above extremes (%.2f, %.2f)", peak, at1, at32)
	}
	// ALU annotations match Fig 2's parenthesized counts.
	wantALUs := map[int]int{1: 64, 2: 64, 4: 64, 8: 32, 16: 16, 32: 8}
	for _, r := range rows {
		if r.ALUs != wantALUs[r.N] {
			t.Errorf("N=%d ALUs = %d, want %d", r.N, r.ALUs, wantALUs[r.N])
		}
	}
}

// TestBitSerialMulThousandsOfCycles pins the duality-cache critique (§I):
// bit-serial arithmetic takes thousands of cycles.
func TestBitSerialMulThousandsOfCycles(t *testing.T) {
	rows := Fig2()
	if rows[0].N != 1 || rows[0].MulLat < 1000 {
		t.Errorf("EVE-1 mul latency = %d, expected thousands of cycles", rows[0].MulLat)
	}
}
