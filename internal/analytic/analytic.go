// Package analytic holds EVE's closed-form models: the §II
// latency/throughput taxonomy of vector S-CIM (Fig 2), and the §VI circuit
// evaluation — area overheads, cycle times and energy ratios measured from
// the paper's OpenRAM 28nm layouts, encoded here as constants since layout
// measurement is an input to the architecture study, not something a
// functional simulator can derive.
package analytic

import (
	"fmt"

	"repro/internal/uprog"
	"repro/internal/vreg"
)

// Factors is the set of parallelization factors EVE supports.
var Factors = []int{1, 2, 4, 8, 16, 32}

// Cycle-time model (§VI-B): the vanilla 256×128 sub-array cycles at 1.025ns;
// bit-hybrid peripheries with n ≤ 8 fit in the same cycle, 16-bit-hybrid
// pays ~15% and 32-bit (bit-parallel) ~51%.
const (
	BaseCycleNS   = 1.025
	Cycle16NS     = 1.175
	Cycle32NS     = 1.55
	BLCEnergyMult = 1.20 // blc energy vs. a vanilla read (§VI-B)
)

// CycleTimeNS reports the EVE-n SRAM cycle time in nanoseconds.
func CycleTimeNS(n int) float64 {
	switch {
	case n <= 8:
		return BaseCycleNS
	case n == 16:
		return Cycle16NS
	default:
		return Cycle32NS
	}
}

// ClockPenalty reports the cycle-time ratio of EVE-n to the baseline clock,
// the factor by which μop counts inflate when expressed in core cycles.
func ClockPenalty(n int) float64 { return CycleTimeNS(n) / BaseCycleNS }

// Per-sub-array area overheads (§VI-B), as fractions of a vanilla sub-array.
const (
	SimplifiedOverhead = 0.082 // simplified EVE SRAM measured from layout
	Serial1Overhead    = 0.090 // EVE-1 full stack estimate
	HybridOverhead     = 0.156 // EVE-n (2..16) full stack estimate
	Parallel32Overhead = 0.126 // EVE-32 full stack estimate
)

// SRAMOverhead reports the per-EVE-SRAM area overhead: the stack overhead
// halves because an EVE SRAM banks two sub-arrays behind one periphery.
func SRAMOverhead(n int) float64 {
	switch {
	case n == 1:
		return Serial1Overhead / 2 // 4.5%
	case n == 32:
		return Parallel32Overhead / 2 // 6.3%
	default:
		return HybridOverhead / 2 // 7.8%
	}
}

// System-level composition (§VII-B): the L2 holds 64 sub-arrays, half of
// which become EVE SRAMs; EVE adds 8 DTUs of half a sub-array each plus one
// sub-array of micro-program ROM.
const (
	L2SubArrays     = 64
	DTUCount        = 8
	DTUSubArrayEq   = 0.5
	ROMSubArrayEq   = 1.0
	EVEWaysFraction = 0.5
)

// StructuralOverhead reports the added sub-array-equivalents as a fraction
// of the L2's sub-arrays: the paper's 7.8% "increase in the number of
// sub-arrays".
func StructuralOverhead() float64 {
	return (float64(DTUCount)*DTUSubArrayEq + ROMSubArrayEq) / float64(L2SubArrays)
}

// TotalOverhead reports EVE-n's total L2 area overhead: circuit overhead on
// the EVE half of the ways plus the structural additions. EVE-8 comes to
// 11.7% (§VII-B).
func TotalOverhead(n int) float64 {
	return SRAMOverhead(n)*EVEWaysFraction + StructuralOverhead()
}

// System-level area factors relative to the bare O3 core (§VII-B, "Area
// Efficiency Analysis").
func SystemAreaFactor(system string) float64 {
	switch system {
	case "O3", "IO":
		return 1.00
	case "O3+IV":
		return 1.10
	case "O3+DV":
		return 2.00
	case "O3+EVE-1":
		return 1.10
	case "O3+EVE-32":
		return 1.11
	case "O3+EVE-2", "O3+EVE-4", "O3+EVE-8", "O3+EVE-16":
		return 1.12
	default:
		panic(fmt.Sprintf("analytic: unknown system %q", system))
	}
}

// Fig2Row is one point of the Fig 2 sweep: latency and throughput of vector
// add and multiply at one parallelization factor, normalized to factor 1.
type Fig2Row struct {
	N       int
	ALUs    int // in-situ ALUs per array (Fig 2 x-axis annotation)
	AddLat  int // measured μprogram cycles
	MulLat  int
	AddLatN float64 // latency normalized to N=1
	MulLatN float64
	AddThpN float64 // throughput normalized to N=1
	MulThpN float64
}

// Fig2 computes the latency/throughput sweep of Fig 2 using the *measured*
// cycle counts of the actual micro-programs (internal/uprog) and the array
// geometry of internal/vreg — the analytical model grounded in the
// implemented circuits rather than abstract formulas.
func Fig2() []Fig2Row {
	type point struct{ add, mul, alus int }
	pts := make(map[int]point, len(Factors))
	for _, n := range Factors {
		m := uprog.NewMachine(n, 2)
		add := m.CountCycles(uprog.Add(m.Layout, 3, 1, 2, false))
		mul := m.CountCycles(uprog.Mul(m.Layout, 3, 1, 2, false, false))
		pts[n] = point{add: add, mul: mul, alus: vreg.Standard(n).InSituALUs()}
	}
	base := pts[1]
	rows := make([]Fig2Row, 0, len(Factors))
	for _, n := range Factors {
		p := pts[n]
		rows = append(rows, Fig2Row{
			N:       n,
			ALUs:    p.alus,
			AddLat:  p.add,
			MulLat:  p.mul,
			AddLatN: float64(p.add) / float64(base.add),
			MulLatN: float64(p.mul) / float64(base.mul),
			AddThpN: (float64(p.alus) / float64(p.add)) / (float64(base.alus) / float64(base.add)),
			MulThpN: (float64(p.alus) / float64(p.mul)) / (float64(base.alus) / float64(base.mul)),
		})
	}
	return rows
}

// PeakThroughputFactor reports the parallelization factor with the highest
// add throughput — the balanced-utilization point, PF=4 in the paper.
func PeakThroughputFactor() int {
	best, bestT := 1, 0.0
	for _, r := range Fig2() {
		if r.AddThpN > bestT {
			best, bestT = r.N, r.AddThpN
		}
	}
	return best
}
