package analytic

import "repro/internal/uop"

// Array-energy weights in read-equivalents (§VI-B): reads and writes match
// a vanilla SRAM access; bit-line compute costs ~20% more than a read;
// peripheral-only operations (shifts, latch loads) involve neither sense
// amplifiers nor bit-line precharge and cost a small fraction of a read.
var energyWeights = [uop.NumEnergyClasses]float64{
	uop.ECNone:   0,
	uop.ECRead:   1.0,
	uop.ECWrite:  1.0,
	uop.ECBLC:    BLCEnergyMult,
	uop.ECPeriph: 0.1,
}

// EnergyReadEq converts per-class μop counts into read-equivalent array
// energy.
func EnergyReadEq(counts [uop.NumEnergyClasses]uint64) float64 {
	var e float64
	for c, n := range counts {
		e += energyWeights[c] * float64(n)
	}
	return e
}
