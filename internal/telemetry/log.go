package telemetry

import (
	"encoding/json"
	"io"
	"os"
	"os/signal"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/sweep"
)

// Event is one structured run-log line: a lifecycle event of the host
// process, never of the simulated machine. Fields beyond Time/Event are
// populated per event kind and omitted otherwise.
type Event struct {
	Time    string `json:"time"` // RFC3339Nano, host wall clock
	Event   string `json:"event"`
	Cell    *int   `json:"cell,omitempty"`
	Kernel  string `json:"kernel,omitempty"`
	System  string `json:"system,omitempty"`
	Status  string `json:"status,omitempty"` // cell_done: ok, failed, timeout
	Cycles  int64  `json:"cycles,omitempty"`
	WallMS  int64  `json:"wall_ms,omitempty"`
	Done    int    `json:"done,omitempty"`
	Total   int    `json:"total,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Err     string `json:"err,omitempty"`
	Depth   int    `json:"depth,omitempty"`  // journal_checkpoint
	Signal  string `json:"signal,omitempty"` // signal
}

// Logger is the structured run log: a sweep.Observer (and RetryObserver)
// that emits one JSON line per lifecycle event, so campaign post-mortems
// are a jq query instead of stderr archaeology. It forwards every event to
// Inner (if set) and, like every telemetry hook, never touches a
// sim.Result.
type Logger struct {
	// Inner receives every observer event after Logger records it; nil
	// disables forwarding.
	Inner sweep.Observer

	// now is the clock; tests inject a fixed one for deterministic lines.
	now func() time.Time

	mu  sync.Mutex
	out io.Writer
	err error
}

// NewLogger returns a Logger writing JSON lines to out, forwarding events
// to inner (which may be nil).
func NewLogger(out io.Writer, inner sweep.Observer) *Logger {
	return &Logger{Inner: inner, now: time.Now, out: out}
}

// emit writes one event line; the first write error latches and suppresses
// further output (the log is telemetry — it must never abort a run).
func (l *Logger) emit(e Event) {
	e.Time = l.now().UTC().Format(time.RFC3339Nano)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	line, err := json.Marshal(e)
	if err != nil {
		l.err = err
		return
	}
	if _, err := l.out.Write(append(line, '\n')); err != nil {
		l.err = err
	}
}

// Err reports the first write or encode error, if any, so CLIs can warn
// once at exit instead of per-line.
func (l *Logger) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// CellStart implements sweep.Observer.
func (l *Logger) CellStart(i int, kernel, system string) {
	cell := i
	l.emit(Event{Event: "cell_start", Cell: &cell, Kernel: kernel, System: system})
	if l.Inner != nil {
		l.Inner.CellStart(i, kernel, system)
	}
}

// CellDone implements sweep.Observer.
func (l *Logger) CellDone(i, done, total int, r sim.Result, wall time.Duration) {
	status := "ok"
	errMsg := ""
	if r.Err != nil {
		errMsg = r.Err.Error()
		if sweep.IsTimeout(r.Err) {
			status = "timeout"
		} else {
			status = "failed"
		}
	}
	cell := i
	l.emit(Event{
		Event:  "cell_done",
		Cell:   &cell,
		Kernel: r.Kernel,
		System: r.System,
		Status: status,
		Cycles: r.Cycles,
		WallMS: wall.Milliseconds(),
		Done:   done,
		Total:  total,
		Err:    errMsg,
	})
	if l.Inner != nil {
		l.Inner.CellDone(i, done, total, r, wall)
	}
}

// CellRetry implements sweep.RetryObserver.
func (l *Logger) CellRetry(i int, kernel, system string, attempt int, err error) {
	errMsg := ""
	if err != nil {
		errMsg = err.Error()
	}
	cell := i
	l.emit(Event{Event: "cell_retry", Cell: &cell, Kernel: kernel, System: system, Attempt: attempt, Err: errMsg})
	if ro, ok := l.Inner.(sweep.RetryObserver); ok {
		ro.CellRetry(i, kernel, system, attempt, err)
	}
}

// SweepDone implements sweep.Observer.
func (l *Logger) SweepDone(done, total int) {
	l.emit(Event{Event: "sweep_done", Done: done, Total: total})
	if l.Inner != nil {
		l.Inner.SweepDone(done, total)
	}
}

// JournalCheckpoint logs a campaign journal append
// (campaign.RunConfig.OnJournal feeds it).
func (l *Logger) JournalCheckpoint(depth int) {
	l.emit(Event{Event: "journal_checkpoint", Depth: depth})
}

// SignalReceived logs a host signal (SIGINT/SIGTERM) delivery.
func (l *Logger) SignalReceived(sig string) {
	l.emit(Event{Event: "signal", Signal: sig})
}

// WatchSignals logs each delivery of sigs to l until the returned stop
// function is called. It registers its own notification channel, so it
// composes with signal.NotifyContext-based cancellation in the CLIs.
func WatchSignals(l *Logger, sigs ...os.Signal) (stop func()) {
	ch := make(chan os.Signal, 4)
	signal.Notify(ch, sigs...)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case sig := <-ch:
				l.SignalReceived(sig.String())
			case <-done:
				return
			}
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}
