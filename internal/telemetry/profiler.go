package telemetry

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync"
)

// Profiler is the uniform profile-capture wiring shared by every CLI.
// Register it on a FlagSet, Start it after flag parsing, and defer Stop —
// Stop is idempotent, so a signal-cancelled run that unwinds through both
// its defer and an explicit shutdown path still flushes valid pprof files
// exactly once.
type Profiler struct {
	cpuPath    *string
	memPath    *string
	profileDir *string

	mu      sync.Mutex
	started bool
	cpuFile *os.File
	memOut  string
	stop    sync.Once
	stopErr error
}

// NewProfiler registers -cpuprofile, -memprofile, and -profile-dir on fs
// and returns the Profiler that will honor them. -profile-dir is shorthand
// for capturing both profiles as <dir>/cpu.pprof and <dir>/mem.pprof;
// explicit -cpuprofile/-memprofile paths win over it.
func NewProfiler(fs *flag.FlagSet) *Profiler {
	p := &Profiler{}
	p.cpuPath = fs.String("cpuprofile", "", "write a CPU profile to this file")
	p.memPath = fs.String("memprofile", "", "write an allocation profile to this file on exit")
	p.profileDir = fs.String("profile-dir", "", "write cpu.pprof and mem.pprof into this directory (shorthand for both profile flags)")
	return p
}

// cpuOut and memOutPath resolve the effective output paths after flag
// parsing; empty means the corresponding capture is off.
func (p *Profiler) cpuOut() string {
	if *p.cpuPath != "" {
		return *p.cpuPath
	}
	if *p.profileDir != "" {
		return filepath.Join(*p.profileDir, "cpu.pprof")
	}
	return ""
}

func (p *Profiler) memOutPath() string {
	if *p.memPath != "" {
		return *p.memPath
	}
	if *p.profileDir != "" {
		return filepath.Join(*p.profileDir, "mem.pprof")
	}
	return ""
}

// Start begins the captures the parsed flags asked for. With no profile
// flags set it is a no-op, so CLIs call it unconditionally.
func (p *Profiler) Start() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		return nil
	}
	if dir := *p.profileDir; dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("telemetry: profile dir: %w", err)
		}
	}
	if out := p.cpuOut(); out != "" {
		f, err := os.Create(out)
		if err != nil {
			return fmt.Errorf("telemetry: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close()
			return fmt.Errorf("telemetry: cpu profile: %w", err)
		}
		p.cpuFile = f
	}
	p.memOut = p.memOutPath()
	p.started = true
	return nil
}

// Stop flushes every active capture: it stops the CPU profile and, if
// requested, writes an allocation profile after a forced GC so the numbers
// reflect live state. Safe to call multiple times and from deferred paths;
// only the first call does work.
func (p *Profiler) Stop() error {
	p.stop.Do(func() {
		p.mu.Lock()
		defer p.mu.Unlock()
		if !p.started {
			return
		}
		if p.cpuFile != nil {
			pprof.StopCPUProfile()
			if err := p.cpuFile.Close(); err != nil && p.stopErr == nil {
				p.stopErr = fmt.Errorf("telemetry: cpu profile: %w", err)
			}
			p.cpuFile = nil
		}
		if p.memOut != "" {
			if err := writeAllocProfile(p.memOut); err != nil && p.stopErr == nil {
				p.stopErr = err
			}
		}
	})
	return p.stopErr
}

// writeAllocProfile writes the allocs profile to path after a GC pass.
func writeAllocProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: mem profile: %w", err)
	}
	runtime.GC()
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		_ = f.Close()
		return fmt.Errorf("telemetry: mem profile: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("telemetry: mem profile: %w", err)
	}
	return nil
}
