package telemetry

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// pprofMagic checks the gzip magic bytes every runtime/pprof output file
// starts with; the CI telemetry-smoke job does the full
// `go tool pprof -top` parse.
func pprofMagic(t *testing.T, path string) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("profile missing: %v", err)
	}
	defer func() { _ = f.Close() }()
	var magic [2]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		t.Fatalf("profile %s unreadable: %v", path, err)
	}
	if magic[0] != 0x1f || magic[1] != 0x8b {
		t.Errorf("profile %s does not start with the gzip magic (got % x)", path, magic)
	}
}

func TestProfilerProfileDir(t *testing.T) {
	dir := t.TempDir()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	p := NewProfiler(fs)
	if err := fs.Parse([]string{"-profile-dir", filepath.Join(dir, "prof")}); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to encode.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	// Idempotent: the deferred second Stop of a signal-cancelled CLI.
	if err := p.Stop(); err != nil {
		t.Fatalf("second Stop: %v", err)
	}
	pprofMagic(t, filepath.Join(dir, "prof", "cpu.pprof"))
	pprofMagic(t, filepath.Join(dir, "prof", "mem.pprof"))
}

func TestProfilerExplicitPathsWinOverDir(t *testing.T) {
	dir := t.TempDir()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	p := NewProfiler(fs)
	cpu := filepath.Join(dir, "explicit-cpu.pprof")
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-profile-dir", dir}); err != nil {
		t.Fatal(err)
	}
	if got := p.cpuOut(); got != cpu {
		t.Errorf("cpuOut = %q, want the explicit path %q", got, cpu)
	}
	if got := p.memOutPath(); got != filepath.Join(dir, "mem.pprof") {
		t.Errorf("memOutPath = %q, want the -profile-dir fallback", got)
	}
}

func TestProfilerNoFlagsIsNoop(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	p := NewProfiler(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestProfilerStopBeforeStart(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	p := NewProfiler(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatalf("Stop before Start: %v", err)
	}
}
