package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// fixedClock returns a now func frozen at t.
func fixedClock(t time.Time) func() time.Time {
	return func() time.Time { return t }
}

// testCounters returns a Counters with a deterministic clock: constructed
// at epoch, observed 10s later.
func testCounters(inner sweep.Observer) *Counters {
	epoch := time.Unix(1700000000, 0).UTC()
	c := NewCounters(inner)
	c.start = epoch
	c.now = fixedClock(epoch.Add(10 * time.Second))
	return c
}

func TestCountersClassification(t *testing.T) {
	c := testCounters(nil)
	c.CellStart(0, "vvadd", "O3+EVE-8")
	c.CellStart(1, "mmult", "IO")
	c.CellStart(2, "sw", "O3")

	ok := sim.Result{Kernel: "vvadd", System: "O3+EVE-8", Cycles: 1234}
	c.CellDone(0, 1, 4, ok, 3*time.Millisecond)

	failed := sim.Result{Kernel: "mmult", System: "IO", Err: errors.New("checker mismatch")}
	c.CellDone(1, 2, 4, failed, 40*time.Millisecond)

	timeoutErr := fmt.Errorf("wrapped: %w", &sweep.TimeoutError{Kernel: "sw", System: "O3", Budget: time.Second})
	c.CellDone(2, 3, 4, sim.Result{Kernel: "sw", System: "O3", Err: timeoutErr}, 1500*time.Millisecond)

	c.CellRetry(3, "redux", "IO", 1, errors.New("transient"))
	c.SetJournalDepth(7)

	s := c.Status()
	if s.Schema != StatusSchema {
		t.Errorf("schema = %q, want %q", s.Schema, StatusSchema)
	}
	if s.Total != 4 || s.Done != 3 || s.Failed != 1 || s.Timeout != 1 || s.Retried != 1 {
		t.Errorf("counters = total %d done %d failed %d timeout %d retried %d, want 4/3/1/1/1",
			s.Total, s.Done, s.Failed, s.Timeout, s.Retried)
	}
	if s.Running != 0 {
		t.Errorf("running = %d, want 0 (3 started, 3 done)", s.Running)
	}
	if s.SweepDone {
		t.Error("sweep_done before SweepDone fired")
	}
	if s.JournalDepth != 7 {
		t.Errorf("journal_depth = %d, want 7", s.JournalDepth)
	}
	if s.ElapsedSec != 10 {
		t.Errorf("elapsed_sec = %v, want 10 under the fixed clock", s.ElapsedSec)
	}
	if s.CellsPerSec != 0.3 {
		t.Errorf("cells_per_sec = %v, want 0.3", s.CellsPerSec)
	}
	// 1 cell remaining at 0.3 cells/sec.
	if want := 1 / 0.3; s.ETASec < want-1e-9 || s.ETASec > want+1e-9 {
		t.Errorf("eta_sec = %v, want %v", s.ETASec, want)
	}
	if s.LastCell == nil || s.LastCell.Kernel != "sw" || s.LastCell.Status != "timeout" {
		t.Errorf("last_cell = %+v, want the sw timeout", s.LastCell)
	}

	// Histogram: 3ms → bucket le=4ms, 40ms → le=64ms, 1500ms → le=2048ms.
	counts := map[string]int64{}
	var histTotal int64
	for _, b := range s.WallHist {
		counts[b.Le] = b.Count
		histTotal += b.Count
	}
	if histTotal != 3 {
		t.Errorf("histogram holds %d cells, want 3", histTotal)
	}
	for _, le := range []string{"4ms", "64ms", "2048ms"} {
		if counts[le] != 1 {
			t.Errorf("bucket %s = %d, want 1", le, counts[le])
		}
	}

	c.SweepDone(3, 4)
	s = c.Status()
	if !s.SweepDone {
		t.Error("sweep_done not set after SweepDone")
	}
	if s.ETASec != 0 {
		t.Errorf("eta_sec = %v after SweepDone, want 0", s.ETASec)
	}
}

func TestCountersForwardsToInner(t *testing.T) {
	var buf bytes.Buffer
	inner := sweep.NewProgress(&buf)
	c := testCounters(inner)
	c.CellStart(0, "vvadd", "IO")
	c.CellDone(0, 1, 1, sim.Result{Kernel: "vvadd", System: "IO", Cycles: 10}, time.Millisecond)
	c.CellRetry(0, "vvadd", "IO", 1, errors.New("x")) // Progress implements RetryObserver
	c.SweepDone(1, 1)
	out := buf.String()
	if !strings.Contains(out, "vvadd") || !strings.Contains(out, "sweep: 1 cells") {
		t.Errorf("inner observer missed forwarded events:\n%s", out)
	}
	if !strings.Contains(out, "1 retried") {
		t.Errorf("forwarded retry missing from inner summary:\n%s", out)
	}
}

// TestCountersRace hammers one Counters from concurrent sweep workers while
// readers pull Status and metrics — the race detector is the assertion.
func TestCountersRace(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			c := NewCounters(nil)
			cells := make([]sweep.Cell, 64)
			for i := range cells {
				i := i
				cells[i] = sweep.Cell{
					Kernel: fmt.Sprintf("k%d", i),
					System: "sys",
					Run: func() sim.Result {
						r := sim.Result{Kernel: fmt.Sprintf("k%d", i), System: "sys", Cycles: int64(i)}
						if i%7 == 0 {
							r.Err = errors.New("synthetic failure")
						}
						if i%5 == 0 {
							r.Stats = probe.Stats{{Name: "core.insts", Kind: probe.KindCounter, Int: int64(i)}}
						}
						return r
					},
				}
			}
			stop := make(chan struct{})
			var rd sync.WaitGroup
			rd.Add(1)
			go func() {
				defer rd.Done()
				var buf bytes.Buffer
				for {
					select {
					case <-stop:
						return
					default:
						_ = c.Status()
						buf.Reset()
						c.WriteMetrics(&buf)
						c.SetJournalDepth(1)
					}
				}
			}()
			_, _ = sweep.ForEach(cells, sweep.Options{Workers: workers, Observer: c, RetryOnce: true})
			close(stop)
			rd.Wait()
			s := c.Status()
			if s.Done != 64 || !s.SweepDone {
				t.Errorf("done = %d sweep_done = %v, want 64/true", s.Done, s.SweepDone)
			}
			// Cells 0,7,14,...,63 fail deterministically on both attempts.
			if s.Failed != 10 || s.Retried != 10 {
				t.Errorf("failed = %d retried = %d, want 10/10", s.Failed, s.Retried)
			}
		})
	}
}

// TestStatusGoldenShape pins the /status document shape: an injected clock
// makes every field deterministic.
func TestStatusGoldenShape(t *testing.T) {
	c := testCounters(nil)
	c.CellStart(0, "vvadd", "O3+EVE-8")
	r := sim.Result{
		Kernel: "vvadd", System: "O3+EVE-8", Cycles: 4242,
		Stats: probe.Stats{{Name: "core.insts", Kind: probe.KindCounter, Int: 99}},
	}
	c.CellDone(0, 1, 2, r, 3*time.Millisecond)
	c.SetJournalDepth(1)

	body, err := json.MarshalIndent(c.Status(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	want := `{
  "schema": "eve-telemetry/v1",
  "total": 2,
  "done": 1,
  "failed": 0,
  "retried": 0,
  "timeout": 0,
  "running": 0,
  "sweep_done": false,
  "journal_depth": 1,
  "elapsed_sec": 10,
  "cells_per_sec": 0.1,
  "eta_sec": 10,
  "wall_hist": [
    {
      "le": "1ms",
      "count": 0
    },
    {
      "le": "2ms",
      "count": 0
    },
    {
      "le": "4ms",
      "count": 1
    },
    {
      "le": "8ms",
      "count": 0
    },
    {
      "le": "16ms",
      "count": 0
    },
    {
      "le": "32ms",
      "count": 0
    },
    {
      "le": "64ms",
      "count": 0
    },
    {
      "le": "128ms",
      "count": 0
    },
    {
      "le": "256ms",
      "count": 0
    },
    {
      "le": "512ms",
      "count": 0
    },
    {
      "le": "1024ms",
      "count": 0
    },
    {
      "le": "2048ms",
      "count": 0
    },
    {
      "le": "+Inf",
      "count": 0
    }
  ],
  "last_cell": {
    "kernel": "vvadd",
    "system": "O3+EVE-8",
    "status": "ok",
    "cycles": 4242
  }
}`
	if string(body) != want {
		t.Errorf("/status document diverged from the golden shape:\n got:\n%s\n want:\n%s", body, want)
	}
}

// TestMetricsGoldenShape pins the stable prefix of the /metrics exposition
// (everything above the volatile eve_host_ section).
func TestMetricsGoldenShape(t *testing.T) {
	c := testCounters(nil)
	c.CellStart(0, "vvadd", "O3+EVE-8")
	r := sim.Result{
		Kernel: "vvadd", System: "O3+EVE-8", Cycles: 4242,
		Stats: probe.Stats{
			{Name: "core.insts", Kind: probe.KindCounter, Int: 99},
			{Name: "l2.hits", Kind: probe.KindCounter, Int: 42},
		},
	}
	c.CellDone(0, 1, 2, r, 3*time.Millisecond)
	c.SetJournalDepth(1)

	var buf bytes.Buffer
	c.WriteMetrics(&buf)
	got := buf.String()
	// Truncate the host section: goroutine and heap numbers are volatile by
	// nature and explicitly out of the golden contract.
	if i := strings.Index(got, "# HELP eve_host_"); i >= 0 {
		got = got[:i]
	} else {
		t.Fatalf("metrics output lacks the eve_host_ section:\n%s", got)
	}
	want := `# HELP eve_sweep_cells_total Cells in the sweep or campaign.
# TYPE eve_sweep_cells_total gauge
eve_sweep_cells_total 2
# HELP eve_sweep_cells_done Cells completed so far.
# TYPE eve_sweep_cells_done gauge
eve_sweep_cells_done 1
# HELP eve_sweep_cells_failed Cells whose final outcome was a failure.
# TYPE eve_sweep_cells_failed gauge
eve_sweep_cells_failed 0
# HELP eve_sweep_cells_retried Cell attempts that were retried.
# TYPE eve_sweep_cells_retried gauge
eve_sweep_cells_retried 0
# HELP eve_sweep_cells_timeout Cells whose final outcome was a wall-clock timeout.
# TYPE eve_sweep_cells_timeout gauge
eve_sweep_cells_timeout 0
# HELP eve_sweep_cells_running Cells currently in flight.
# TYPE eve_sweep_cells_running gauge
eve_sweep_cells_running 0
# HELP eve_sweep_done 1 once the sweep has drained.
# TYPE eve_sweep_done gauge
eve_sweep_done 0
# HELP eve_sweep_journal_depth Campaign journal record count (0 without a journal).
# TYPE eve_sweep_journal_depth gauge
eve_sweep_journal_depth 1
# HELP eve_cell_wall_seconds Per-cell wall time.
# TYPE eve_cell_wall_seconds histogram
eve_cell_wall_seconds_bucket{le="0.001"} 0
eve_cell_wall_seconds_bucket{le="0.002"} 0
eve_cell_wall_seconds_bucket{le="0.004"} 1
eve_cell_wall_seconds_bucket{le="0.008"} 1
eve_cell_wall_seconds_bucket{le="0.016"} 1
eve_cell_wall_seconds_bucket{le="0.032"} 1
eve_cell_wall_seconds_bucket{le="0.064"} 1
eve_cell_wall_seconds_bucket{le="0.128"} 1
eve_cell_wall_seconds_bucket{le="0.256"} 1
eve_cell_wall_seconds_bucket{le="0.512"} 1
eve_cell_wall_seconds_bucket{le="1.024"} 1
eve_cell_wall_seconds_bucket{le="2.048"} 1
eve_cell_wall_seconds_bucket{le="+Inf"} 1
eve_cell_wall_seconds_sum 0.003
eve_cell_wall_seconds_count 1
# HELP eve_probe_stat Probe-registry snapshot of the last completed cell (kernel vvadd, system O3+EVE-8).
# TYPE eve_probe_stat gauge
eve_probe_stat{kernel="vvadd",system="O3+EVE-8",stat="core.insts"} 99
eve_probe_stat{kernel="vvadd",system="O3+EVE-8",stat="l2.hits"} 42
`
	if got != want {
		t.Errorf("/metrics stable section diverged from the golden shape:\n got:\n%s\n want:\n%s", got, want)
	}
}

func TestBucketGeometry(t *testing.T) {
	cases := []struct {
		wall time.Duration
		want int
	}{
		{0, 0},
		{999 * time.Microsecond, 0},
		{time.Millisecond, 1},
		{3 * time.Millisecond, 2},
		{2047 * time.Millisecond, histBuckets - 2},
		{2048 * time.Millisecond, histBuckets - 1},
		{time.Hour, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.wall); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.wall, got, c.want)
		}
	}
}

// The zero-overhead pair: a sweep cell with no observer (telemetry
// disabled — the default) vs the same cell behind Counters. The disabled
// case is the pinned contract: telemetry off must cost nothing because no
// telemetry code runs at all; the enabled case documents that the full
// counter path is a few locked additions per *cell* (not per cycle), noise
// against any real simulation.
func benchCell() sweep.Cell {
	return sweep.Cell{Kernel: "bench", System: "sys", Run: func() sim.Result {
		return sim.Result{Kernel: "bench", System: "sys", Cycles: 1}
	}}
}

func BenchmarkSweepCellTelemetryOff(b *testing.B) {
	cells := []sweep.Cell{benchCell()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = sweep.ForEach(cells, sweep.Options{Workers: 1})
	}
}

func BenchmarkSweepCellTelemetryCounters(b *testing.B) {
	cells := []sweep.Cell{benchCell()}
	c := NewCounters(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = sweep.ForEach(cells, sweep.Options{Workers: 1, Observer: c})
	}
}

// TestMetricsWindowSection covers the interval-sampled slice of /metrics: a
// cell that ran with sampling on publishes its window geometry, reconfig
// count and final-window deltas; cells without a series leave the section out
// but never erase the last sampled one.
func TestMetricsWindowSection(t *testing.T) {
	c := testCounters(nil)
	c.CellStart(0, "vvadd", "O3+EVE-8")
	r := sim.Result{
		Kernel: "vvadd", System: "O3+EVE-8", Cycles: 4242,
		Stats: probe.Stats{{Name: "core.insts", Kind: probe.KindCounter, Int: 99}},
		Intervals: &probe.Series{
			Window: 2000,
			Samples: []probe.Sample{
				{Start: 0, End: 2000, Deltas: probe.Stats{{Name: "l2.misses", Kind: probe.KindCounter, Int: 30}}},
				{Start: 2000, End: 4242, Deltas: probe.Stats{{Name: "l2.misses", Kind: probe.KindCounter, Int: 7}}},
			},
			Reconfigs: []probe.ReconfigEvent{
				{Comp: "eve", Cycle: 0, Event: "borrow", Ways: 4, Owned: 4},
				{Comp: "eve", Cycle: 4242, Event: "return", Ways: 4, Owned: 0},
			},
		},
	}
	c.CellDone(0, 1, 2, r, 3*time.Millisecond)

	var buf bytes.Buffer
	c.WriteMetrics(&buf)
	got := buf.String()
	for _, want := range []string{
		"eve_probe_window_size 2000",
		"eve_probe_window_samples 2",
		"eve_probe_window_reconfig_events 2",
		`eve_probe_window_delta{kernel="vvadd",system="O3+EVE-8",stat="l2.misses"} 7`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("/metrics missing %q:\n%s", want, got)
		}
	}

	// A later unsampled cell keeps the last sampled cell's window section —
	// including its labels, which must not be rewritten to the new cell.
	c.CellStart(1, "mmult", "IO")
	c.CellDone(1, 2, 2, sim.Result{Kernel: "mmult", System: "IO", Cycles: 10}, time.Millisecond)
	buf.Reset()
	c.WriteMetrics(&buf)
	got = buf.String()
	if !strings.Contains(got, "eve_probe_window_size 2000") {
		t.Error("unsampled cell erased the last sampled cell's window section")
	}
	if !strings.Contains(got, `eve_probe_window_delta{kernel="vvadd",system="O3+EVE-8",stat="l2.misses"} 7`) {
		t.Errorf("window deltas lost their originating cell's labels:\n%s", got)
	}
}
