package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strings"
)

// Server is the live status server: an opt-in loopback HTTP listener over
// one Counters. Endpoints:
//
//	/status        point-in-time progress JSON (see Status)
//	/metrics       Prometheus text format: sweep counters, the wall-time
//	               histogram, host runtime counters, and the flattened
//	               probe-registry snapshot of the last completed cell
//	/debug/pprof/  the standard pprof handlers (note: /debug/pprof/profile
//	               conflicts with an active -cpuprofile capture; the
//	               handler reports the conflict rather than corrupting it)
//
// The server observes and never participates: stopping it, curling it, or
// never starting it cannot change a simulated byte.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts a status server for c on addr (host:port; an empty host or
// an explicit loopback address keeps it private to the machine). The
// returned Server is already listening; Close shuts it down.
func Serve(addr string, c *Counters) (*Server, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		writeStatus(w, c)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeMetricsHTTP(w, c)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		//evelint:allow errdrop -- best-effort index page; the client sees any failure
		fmt.Fprint(w, "eve telemetry: /status /metrics /debug/pprof/\n")
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go func() {
		// Serve returns http.ErrServerClosed on Close; a listener torn down
		// at process exit is not a reportable condition either.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the listener's resolved address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down immediately.
func (s *Server) Close() error { return s.srv.Close() }

// writeStatus renders /status: the Counters document as indented JSON.
func writeStatus(w http.ResponseWriter, c *Counters) {
	body, err := json.MarshalIndent(c.Status(), "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(append(body, '\n'))
}

// writeMetricsHTTP renders /metrics.
func writeMetricsHTTP(w http.ResponseWriter, c *Counters) {
	var buf bytes.Buffer
	c.WriteMetrics(&buf)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(buf.Bytes())
}

// WriteMetrics renders the Prometheus text exposition: the sweep counters
// and wall-time histogram from the observer, host runtime counters
// (prefixed eve_host_, inherently volatile), and the flattened
// probe-registry snapshot of the last completed cell as an
// eve_probe_stat{stat="..."} family. Output is deterministic given a fixed
// counter state up to the eve_host_ section, which tests filter out.
func (c *Counters) WriteMetrics(w *bytes.Buffer) {
	c.mu.Lock()
	total, done, failed, retried, timeout, running := c.total, c.done, c.failed, c.retried, c.timeout, c.running
	journalDepth := c.journalDepth
	sweepDone := 0
	if c.sweepDone {
		sweepDone = 1
	}
	hist := c.hist
	wallSumNS := c.wallSumNS
	last := c.last
	lastStats := c.lastStats
	lastWindow := c.lastWindow
	c.mu.Unlock()

	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	gauge("eve_sweep_cells_total", "Cells in the sweep or campaign.", int64(total))
	gauge("eve_sweep_cells_done", "Cells completed so far.", int64(done))
	gauge("eve_sweep_cells_failed", "Cells whose final outcome was a failure.", int64(failed))
	gauge("eve_sweep_cells_retried", "Cell attempts that were retried.", int64(retried))
	gauge("eve_sweep_cells_timeout", "Cells whose final outcome was a wall-clock timeout.", int64(timeout))
	gauge("eve_sweep_cells_running", "Cells currently in flight.", int64(running))
	gauge("eve_sweep_done", "1 once the sweep has drained.", int64(sweepDone))
	gauge("eve_sweep_journal_depth", "Campaign journal record count (0 without a journal).", int64(journalDepth))

	// The wall-time histogram in Prometheus convention: cumulative buckets,
	// le in seconds.
	fmt.Fprintf(w, "# HELP eve_cell_wall_seconds Per-cell wall time.\n# TYPE eve_cell_wall_seconds histogram\n")
	cum := int64(0)
	for i := 0; i < histBuckets; i++ {
		cum += hist[i]
		le := "+Inf"
		if b := bucketBoundMS(i); b >= 0 {
			le = fmt.Sprintf("%g", float64(b)/1000)
		}
		fmt.Fprintf(w, "eve_cell_wall_seconds_bucket{le=%q} %d\n", le, cum)
	}
	fmt.Fprintf(w, "eve_cell_wall_seconds_sum %g\n", float64(wallSumNS)/1e9)
	fmt.Fprintf(w, "eve_cell_wall_seconds_count %d\n", cum)

	// The probe-registry snapshot of the last completed cell: the first
	// concrete slice of the eve-serve /metrics export. Dotted stat paths
	// ride in a label (Prometheus metric names cannot carry dots).
	if last != nil && len(lastStats) > 0 {
		fmt.Fprintf(w, "# HELP eve_probe_stat Probe-registry snapshot of the last completed cell (kernel %s, system %s).\n", last.Kernel, last.System)
		fmt.Fprintf(w, "# TYPE eve_probe_stat gauge\n")
		names := make([]string, 0, len(lastStats))
		for name := range lastStats {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(w, "eve_probe_stat{kernel=%q,system=%q,stat=%q} %g\n",
				labelEscape(last.Kernel), labelEscape(last.System), labelEscape(name), lastStats[name])
		}
	}

	// The interval-sampled phase profile of the last completed cell that ran
	// with sampling on (campaign -interval): window geometry plus the final
	// window's per-path counter deltas — a live view of how the cell ended,
	// not just what it totalled. The summary carries its own cell identity:
	// an unsampled cell finishing later takes over eve_probe_stat but not
	// this section.
	if lastWindow != nil {
		gauge("eve_probe_window_size", "Interval sampling window of the last sampled cell, in simulated cycles.", lastWindow.window)
		gauge("eve_probe_window_samples", "Windows recorded for the last sampled cell.", int64(lastWindow.samples))
		gauge("eve_probe_window_reconfig_events", "Reconfiguration events (spawn/borrow/return/teardown) on the last sampled cell's timeline.", int64(lastWindow.reconfigs))
		if len(lastWindow.lastDeltas) > 0 {
			fmt.Fprintf(w, "# HELP eve_probe_window_delta Final-window counter deltas of the last sampled cell (kernel %s, system %s).\n", lastWindow.kernel, lastWindow.system)
			fmt.Fprintf(w, "# TYPE eve_probe_window_delta gauge\n")
			names := make([]string, 0, len(lastWindow.lastDeltas))
			for name := range lastWindow.lastDeltas {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				fmt.Fprintf(w, "eve_probe_window_delta{kernel=%q,system=%q,stat=%q} %g\n",
					labelEscape(lastWindow.kernel), labelEscape(lastWindow.system), labelEscape(name), lastWindow.lastDeltas[name])
			}
		}
	}

	// Host runtime counters: volatile by nature, last so tests can truncate.
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	gauge("eve_host_goroutines", "Goroutines in the host process.", int64(runtime.NumGoroutine()))
	gauge("eve_host_heap_alloc_bytes", "Live heap bytes.", int64(m.HeapAlloc))
	gauge("eve_host_total_alloc_bytes", "Cumulative allocated bytes.", int64(m.TotalAlloc))
	gauge("eve_host_num_gc", "Completed GC cycles.", int64(m.NumGC))
	gauge("eve_host_gc_pause_total_ns", "Cumulative GC stop-the-world pause.", int64(m.PauseTotalNs))
}

// labelEscape escapes a Prometheus label value (backslash, quote, newline).
func labelEscape(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}
