package telemetry_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/campaign"
	"repro/internal/telemetry"
)

// e2eSpace is a small but real campaign space: every cell runs the actual
// simulator.
func e2eSpace() campaign.Space {
	return campaign.Space{
		Kernels: []string{"vvadd"},
		Scales:  []int{256},
		N:       []int{1, 8},
		L2Ways:  []int{4, 8},
	}
}

// runCampaign executes the space and returns the marshaled report plus the
// raw journal bytes.
func runCampaign(t *testing.T, cfg campaign.RunConfig) ([]byte, []byte) {
	t.Helper()
	rep, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	journal, err := os.ReadFile(cfg.Journal)
	if err != nil {
		t.Fatal(err)
	}
	return body, journal
}

// TestCampaignByteIdentityWithTelemetry is the determinism invariant end to
// end: a campaign observed by the full telemetry stack — counters, JSON run
// log, live status server, journal-depth hook — produces a byte-identical
// report and journal to an unobserved run. Workers=1 keeps the journal's
// completion order deterministic so it can be byte-compared too.
func TestCampaignByteIdentityWithTelemetry(t *testing.T) {
	dir := t.TempDir()

	bare := campaign.RunConfig{
		Space:   e2eSpace(),
		Journal: filepath.Join(dir, "bare.journal"),
		Workers: 1,
	}
	wantReport, wantJournal := runCampaign(t, bare)

	var logBuf bytes.Buffer
	logger := telemetry.NewLogger(&logBuf, nil)
	counters := telemetry.NewCounters(logger)
	srv, err := telemetry.Serve("127.0.0.1:0", counters)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	observed := campaign.RunConfig{
		Space:    e2eSpace(),
		Journal:  filepath.Join(dir, "observed.journal"),
		Workers:  1,
		Observer: counters,
		OnJournal: func(depth int) {
			counters.SetJournalDepth(depth)
			logger.JournalCheckpoint(depth)
		},
	}
	gotReport, gotJournal := runCampaign(t, observed)

	if !bytes.Equal(gotReport, wantReport) {
		t.Errorf("telemetry perturbed the campaign report:\n with:\n%s\n without:\n%s", gotReport, wantReport)
	}
	if !bytes.Equal(gotJournal, wantJournal) {
		t.Errorf("telemetry perturbed the journal verdict stream:\n with:\n%s\n without:\n%s", gotJournal, wantJournal)
	}

	// The telemetry side genuinely observed the run.
	resp, err := http.Get("http://" + srv.Addr() + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var st telemetry.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Done != 4 || st.Total != 4 || !st.SweepDone {
		t.Errorf("status = %+v, want a drained 4-cell campaign", st)
	}
	if st.JournalDepth != 4 {
		t.Errorf("journal_depth = %d, want 4", st.JournalDepth)
	}
	if err := logger.Err(); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Count(logBuf.Bytes(), []byte{'\n'})
	// 4 cell_start + 4 cell_done + 4 journal_checkpoint + 1 sweep_done.
	if lines != 13 {
		t.Errorf("%d run-log lines, want 13:\n%s", lines, logBuf.String())
	}
	var mresp *http.Response
	if mresp, err = http.Get("http://" + srv.Addr() + "/metrics"); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mresp.Body.Close() }()
	metrics, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(metrics, []byte(`eve_probe_stat{kernel="vvadd"`)) {
		t.Errorf("/metrics lacks the probe snapshot of the last cell:\n%s", metrics)
	}
}
