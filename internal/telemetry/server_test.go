package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

// startTestServer serves a populated testCounters on a loopback port and
// registers cleanup.
func startTestServer(t *testing.T) (*Server, *Counters) {
	t.Helper()
	c := testCounters(nil)
	c.CellStart(0, "vvadd", "O3+EVE-8")
	c.CellDone(0, 1, 2, sim.Result{Kernel: "vvadd", System: "O3+EVE-8", Cycles: 4242}, 3*time.Millisecond)
	s, err := Serve("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s, c
}

// get fetches one path from the test server.
func get(t *testing.T, s *Server, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get("http://" + s.Addr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

func TestServerStatusEndpoint(t *testing.T) {
	s, _ := startTestServer(t)
	code, ctype, body := get(t, s, "/status")
	if code != http.StatusOK {
		t.Fatalf("/status = %d, want 200", code)
	}
	if ctype != "application/json" {
		t.Errorf("/status content-type = %q, want application/json", ctype)
	}
	var st Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/status body is not JSON: %v\n%s", err, body)
	}
	if st.Schema != StatusSchema || st.Done != 1 || st.Total != 2 {
		t.Errorf("status = %+v, want schema %s with 1/2 done", st, StatusSchema)
	}
	if st.ElapsedSec != 10 {
		t.Errorf("elapsed_sec = %v, want 10 under the injected clock", st.ElapsedSec)
	}
}

func TestServerMetricsEndpoint(t *testing.T) {
	s, _ := startTestServer(t)
	code, ctype, body := get(t, s, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d, want 200", code)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content-type = %q, want text/plain", ctype)
	}
	for _, want := range []string{
		"eve_sweep_cells_done 1",
		"eve_sweep_cells_total 2",
		`eve_cell_wall_seconds_bucket{le="+Inf"} 1`,
		"eve_host_goroutines",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics lacks %q:\n%s", want, body)
		}
	}
}

func TestServerPprofEndpoint(t *testing.T) {
	s, _ := startTestServer(t)
	code, _, body := get(t, s, "/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ = %d, want 200", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index lacks profile links:\n%.200s", body)
	}
}

func TestServerUnknownPath(t *testing.T) {
	s, _ := startTestServer(t)
	if code, _, _ := get(t, s, "/nope"); code != http.StatusNotFound {
		t.Errorf("/nope = %d, want 404", code)
	}
	code, _, body := get(t, s, "/")
	if code != http.StatusOK || !strings.Contains(body, "/status") {
		t.Errorf("index = %d %q, want a 200 endpoint listing", code, body)
	}
}

func TestServeRejectsBadAddr(t *testing.T) {
	if _, err := Serve("256.0.0.1:bogus", NewCounters(nil)); err == nil {
		t.Fatal("Serve accepted an unusable address")
	}
}
