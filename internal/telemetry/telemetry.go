// Package telemetry is the host-side observability layer: it watches the
// machine *running* the simulator, never the machine being simulated.
//
// Three pillars, all stdlib-only and all opt-in:
//
//   - Profiler: uniform -cpuprofile/-memprofile/-profile-dir flag wiring for
//     every CLI, with an idempotent Stop so signal-cancelled runs still
//     flush valid pprof files.
//   - Counters + Server: a thread-safe counter-bearing sweep.Observer
//     feeding a live HTTP status server — /status (progress, throughput,
//     ETA, per-cell wall-time histogram), /metrics (Prometheus text: host
//     counters plus the probe-registry snapshot of the last completed
//     cell), and /debug/pprof/*.
//   - Logger: a structured JSON run log, one machine-parseable line per
//     lifecycle event (cell start/done/retry/timeout, journal checkpoint,
//     signal received), so campaign post-mortems stop being stderr
//     archaeology.
//
// # Import boundary
//
// The dependency arrow points one way: telemetry imports internal/sweep and
// internal/sim to observe them; simulator packages (sim, cpu, mem, vengine,
// uprog, sram, circuits, workloads) must never import telemetry. Everything
// here reads wall clocks, allocates freely, and talks to the network — any
// of it reachable from a simulated path would void the sim.Run purity
// contract. The evelint telemetryboundary analyzer enforces the direction
// statically.
//
// # Determinism invariant
//
// Telemetry observes; it never participates. All simulated output —
// reports, journals, goldens, bench comparisons — is byte-identical with
// telemetry enabled or disabled, because every hook hangs off the sweep
// observer chain (which by contract never touches a Result) or off
// host-side flag plumbing. The end-to-end test in e2e_test.go and the CI
// telemetry-smoke job both hold the invariant.
package telemetry

import (
	"errors"
	"strconv"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/sweep"
)

// histBuckets is the wall-time histogram geometry: log2 buckets at
// 1ms<<k for k in 0..histBuckets-2, plus a +Inf overflow bucket.
const histBuckets = 13

// bucketFloorMS returns the upper bound of bucket i in milliseconds, or -1
// for the +Inf bucket.
func bucketBoundMS(i int) int64 {
	if i >= histBuckets-1 {
		return -1
	}
	return 1 << i
}

// bucketOf maps one cell wall time to its histogram bucket.
func bucketOf(wall time.Duration) int {
	ms := wall.Milliseconds()
	for i := 0; i < histBuckets-1; i++ {
		if ms < bucketBoundMS(i) {
			return i
		}
	}
	return histBuckets - 1
}

// CellSummary identifies the last completed cell in a Status.
type CellSummary struct {
	Kernel string `json:"kernel"`
	System string `json:"system"`
	Status string `json:"status"` // ok, failed, timeout
	Cycles int64  `json:"cycles"`
}

// HistBucket is one wall-time histogram bucket of a Status: cells whose
// wall time fell under Le ("1ms", "2ms", ..., "+Inf"), non-cumulative.
type HistBucket struct {
	Le    string `json:"le"`
	Count int64  `json:"count"`
}

// Status is the /status endpoint's JSON document: a point-in-time view of
// the sweep or campaign in flight. Counter fields are exact; the derived
// rate fields (elapsed, cells/sec, ETA) are wall-clock telemetry and
// inherently volatile.
type Status struct {
	Schema       string       `json:"schema"`
	Total        int          `json:"total"`
	Done         int          `json:"done"`
	Failed       int          `json:"failed"`
	Retried      int          `json:"retried"`
	Timeout      int          `json:"timeout"`
	Running      int          `json:"running"`
	SweepDone    bool         `json:"sweep_done"`
	JournalDepth int          `json:"journal_depth"`
	ElapsedSec   float64      `json:"elapsed_sec"`
	CellsPerSec  float64      `json:"cells_per_sec"`
	ETASec       float64      `json:"eta_sec"`
	WallHist     []HistBucket `json:"wall_hist"`
	LastCell     *CellSummary `json:"last_cell,omitempty"`
}

// StatusSchema identifies the /status document format; bump on
// incompatible changes.
const StatusSchema = "eve-telemetry/v1"

// Counters is a thread-safe, counter-bearing sweep.Observer: the status
// server's data source. It forwards every event to Inner (if set), so it
// composes with the progress printer and the JSON run log, and it never
// touches a sim.Result — observing through Counters cannot perturb a
// simulated byte.
type Counters struct {
	// Inner receives every observer event after Counters accounts it; nil
	// disables forwarding.
	Inner sweep.Observer

	// now is the clock; tests inject a fixed one for deterministic Status
	// documents.
	now func() time.Time

	mu           sync.Mutex
	start        time.Time
	total        int
	done         int
	failed       int
	retried      int
	timeout      int
	running      int
	journalDepth int
	sweepDone    bool
	hist         [histBuckets]int64
	wallSumNS    int64
	last         *CellSummary
	lastStats    map[string]float64
	lastWindow   *windowSummary
}

// windowSummary captures the interval time series of the last completed
// cell that carried one, for the /metrics eve_probe_window_* section: the
// window geometry and the final window's counter deltas — the cell's
// closing phase profile. It carries its own cell identity because an
// unsampled cell can complete later and take over c.last while this
// summary stays current.
type windowSummary struct {
	kernel     string
	system     string
	window     int64
	samples    int
	reconfigs  int
	lastDeltas map[string]float64
}

// NewCounters returns a Counters forwarding to inner (which may be nil).
// The construction timestamp anchors throughput and ETA; it is display
// telemetry and never reaches a simulated result.
func NewCounters(inner sweep.Observer) *Counters {
	return &Counters{
		Inner: inner,
		now:   time.Now,
		start: time.Now(),
	}
}

// CellStart implements sweep.Observer.
func (c *Counters) CellStart(i int, kernel, system string) {
	c.mu.Lock()
	c.running++
	c.mu.Unlock()
	if c.Inner != nil {
		c.Inner.CellStart(i, kernel, system)
	}
}

// CellDone implements sweep.Observer: classify the cell (ok, failed,
// timed out), fold its wall time into the histogram, and keep the last
// completed cell's identity and flattened probe snapshot for /metrics.
func (c *Counters) CellDone(i, done, total int, r sim.Result, wall time.Duration) {
	status := "ok"
	var te *sweep.TimeoutError
	switch {
	case r.Err == nil:
	case errors.As(r.Err, &te):
		status = "timeout"
	default:
		status = "failed"
	}
	var flat map[string]float64
	if len(r.Stats) > 0 {
		flat = r.Stats.Flatten()
	}
	var win *windowSummary
	if iv := r.Intervals; iv != nil && len(iv.Samples) > 0 {
		win = &windowSummary{
			kernel:     r.Kernel,
			system:     r.System,
			window:     iv.Window,
			samples:    len(iv.Samples),
			reconfigs:  len(iv.Reconfigs),
			lastDeltas: iv.Samples[len(iv.Samples)-1].Deltas.Flatten(),
		}
	}

	c.mu.Lock()
	c.total = total
	c.done++
	c.running--
	switch status {
	case "failed":
		c.failed++
	case "timeout":
		c.timeout++
	}
	c.hist[bucketOf(wall)]++
	c.wallSumNS += wall.Nanoseconds()
	c.last = &CellSummary{Kernel: r.Kernel, System: r.System, Status: status, Cycles: r.Cycles}
	if flat != nil {
		c.lastStats = flat
	}
	if win != nil {
		c.lastWindow = win
	}
	c.mu.Unlock()

	if c.Inner != nil {
		c.Inner.CellDone(i, done, total, r, wall)
	}
}

// CellRetry implements sweep.RetryObserver.
func (c *Counters) CellRetry(i int, kernel, system string, attempt int, err error) {
	c.mu.Lock()
	c.retried++
	c.mu.Unlock()
	if ro, ok := c.Inner.(sweep.RetryObserver); ok {
		ro.CellRetry(i, kernel, system, attempt, err)
	}
}

// SweepDone implements sweep.Observer.
func (c *Counters) SweepDone(done, total int) {
	c.mu.Lock()
	c.total = total
	c.sweepDone = true
	c.mu.Unlock()
	if c.Inner != nil {
		c.Inner.SweepDone(done, total)
	}
}

// SetJournalDepth records the campaign journal's current record count
// (campaign.RunConfig.OnJournal feeds it).
func (c *Counters) SetJournalDepth(depth int) {
	c.mu.Lock()
	c.journalDepth = depth
	c.mu.Unlock()
}

// Status assembles the point-in-time /status document.
func (c *Counters) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	elapsed := c.now().Sub(c.start).Seconds()
	s := Status{
		Schema:       StatusSchema,
		Total:        c.total,
		Done:         c.done,
		Failed:       c.failed,
		Retried:      c.retried,
		Timeout:      c.timeout,
		Running:      c.running,
		SweepDone:    c.sweepDone,
		JournalDepth: c.journalDepth,
		ElapsedSec:   elapsed,
		LastCell:     c.last,
	}
	if elapsed > 0 && c.done > 0 {
		s.CellsPerSec = float64(c.done) / elapsed
	}
	if !c.sweepDone && s.CellsPerSec > 0 && c.total > c.done {
		s.ETASec = float64(c.total-c.done) / s.CellsPerSec
	}
	s.WallHist = make([]HistBucket, histBuckets)
	for i := range c.hist {
		le := "+Inf"
		if b := bucketBoundMS(i); b >= 0 {
			le = formatMS(b)
		}
		s.WallHist[i] = HistBucket{Le: le, Count: c.hist[i]}
	}
	return s
}

// formatMS renders a millisecond bucket bound as its Status label.
func formatMS(ms int64) string {
	return strconv.FormatInt(ms, 10) + "ms"
}
