package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/sweep"
)

func TestLoggerEventLines(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, nil)
	l.now = fixedClock(time.Unix(1700000000, 0).UTC())

	l.CellStart(3, "vvadd", "O3+EVE-8")
	l.CellDone(3, 1, 4, sim.Result{Kernel: "vvadd", System: "O3+EVE-8", Cycles: 4242}, 3*time.Millisecond)
	l.CellRetry(5, "sw", "O3", 1, errors.New("transient trouble"))
	te := &sweep.TimeoutError{Kernel: "sw", System: "O3", Budget: time.Second}
	l.CellDone(5, 2, 4, sim.Result{Kernel: "sw", System: "O3", Err: te}, 1100*time.Millisecond)
	l.JournalCheckpoint(2)
	l.SignalReceived("interrupt")
	l.SweepDone(2, 4)
	if err := l.Err(); err != nil {
		t.Fatal(err)
	}

	want := []string{
		`{"time":"2023-11-14T22:13:20Z","event":"cell_start","cell":3,"kernel":"vvadd","system":"O3+EVE-8"}`,
		`{"time":"2023-11-14T22:13:20Z","event":"cell_done","cell":3,"kernel":"vvadd","system":"O3+EVE-8","status":"ok","cycles":4242,"wall_ms":3,"done":1,"total":4}`,
		`{"time":"2023-11-14T22:13:20Z","event":"cell_retry","cell":5,"kernel":"sw","system":"O3","attempt":1,"err":"transient trouble"}`,
		`{"time":"2023-11-14T22:13:20Z","event":"cell_done","cell":5,"kernel":"sw","system":"O3","status":"timeout","wall_ms":1100,"done":2,"total":4,"err":"sweep: sw on O3 exceeded the 1s per-cell wall-clock budget"}`,
		`{"time":"2023-11-14T22:13:20Z","event":"journal_checkpoint","depth":2}`,
		`{"time":"2023-11-14T22:13:20Z","event":"signal","signal":"interrupt"}`,
		`{"time":"2023-11-14T22:13:20Z","event":"sweep_done","done":2,"total":4}`,
	}
	got := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(got) != len(want) {
		t.Fatalf("%d log lines, want %d:\n%s", len(got), len(want), buf.String())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d:\n got  %s\n want %s", i, got[i], want[i])
		}
	}
	// Every line must round-trip as standalone JSON.
	for i, line := range got {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Errorf("line %d is not valid JSON: %v", i, err)
		}
	}
}

func TestLoggerForwardsToInner(t *testing.T) {
	var progress bytes.Buffer
	inner := sweep.NewProgress(&progress)
	var buf bytes.Buffer
	l := NewLogger(&buf, inner)
	l.now = fixedClock(time.Unix(0, 0))
	l.CellDone(0, 1, 1, sim.Result{Kernel: "vvadd", System: "IO", Cycles: 7}, time.Millisecond)
	l.CellRetry(0, "vvadd", "IO", 1, errors.New("x"))
	l.SweepDone(1, 1)
	if !strings.Contains(progress.String(), "vvadd") {
		t.Errorf("inner observer missed forwarded events:\n%s", progress.String())
	}
	if !strings.Contains(progress.String(), "1 retried") {
		t.Errorf("inner summary missed the forwarded retry:\n%s", progress.String())
	}
}

// failWriter fails every write after the first n bytes worth of calls.
type failWriter struct{ writes, failAfter int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > w.failAfter {
		return 0, fmt.Errorf("synthetic write failure")
	}
	return len(p), nil
}

func TestLoggerLatchesFirstWriteError(t *testing.T) {
	w := &failWriter{failAfter: 1}
	l := NewLogger(w, nil)
	l.now = fixedClock(time.Unix(0, 0))
	l.SweepDone(1, 1) // succeeds
	if err := l.Err(); err != nil {
		t.Fatalf("unexpected early error: %v", err)
	}
	l.SweepDone(2, 2) // fails and latches
	l.SweepDone(3, 3) // suppressed
	if err := l.Err(); err == nil {
		t.Fatal("write failure was not latched")
	}
	if w.writes != 2 {
		t.Errorf("%d writes attempted, want 2 (latched after the failure)", w.writes)
	}
}
