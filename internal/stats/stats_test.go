package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("Geomean(2,8) = %f, want 4", g)
	}
	if g := Geomean([]float64{5}); math.Abs(g-5) > 1e-9 {
		t.Fatalf("Geomean(5) = %f", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Fatalf("Geomean(nil) = %f, want 0", g)
	}
	// Non-positive entries are ignored rather than poisoning the product.
	if g := Geomean([]float64{0, -3, 4}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("Geomean with non-positives = %f, want 4", g)
	}
}

// Property: the geomean of positive values lies between min and max.
func TestGeomeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.MaxFloat64, 0.0
		for i, r := range raw {
			xs[i] = float64(r) + 1
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		g := Geomean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedupAndNormalize(t *testing.T) {
	if Speedup(100, 25) != 4 {
		t.Fatal("Speedup wrong")
	}
	if Speedup(100, 0) != 0 {
		t.Fatal("Speedup by zero should be 0")
	}
	n := Normalize([]float64{2, 4, 8}, 2)
	if n[0] != 1 || n[2] != 4 {
		t.Fatalf("Normalize = %v", n)
	}
	if Pct(0.117) != "12%" {
		t.Fatalf("Pct = %s", Pct(0.117))
	}
}

// Zero-base normalization must not divide by zero: everything maps to 0.
func TestNormalizeZeroBase(t *testing.T) {
	n := Normalize([]float64{2, 4, 8}, 0)
	for i, v := range n {
		if v != 0 {
			t.Fatalf("Normalize(..., 0)[%d] = %f, want 0", i, v)
		}
	}
	if out := Normalize(nil, 5); len(out) != 0 {
		t.Fatalf("Normalize(nil) = %v, want empty", out)
	}
}

// Geomean works in log space, so products that would overflow a float64
// must still come out finite and exact.
func TestGeomeanLargeValues(t *testing.T) {
	big := 1e300
	xs := []float64{big, big, big, big}
	if g := Geomean(xs); math.IsInf(g, 0) || math.Abs(g/big-1) > 1e-9 {
		t.Fatalf("Geomean of huge values = %g, want %g", g, big)
	}
}

func TestPctEdges(t *testing.T) {
	if Pct(0) != "0%" {
		t.Fatalf("Pct(0) = %s", Pct(0))
	}
	if Pct(1) != "100%" {
		t.Fatalf("Pct(1) = %s", Pct(1))
	}
	if Pct(-0.25) != "-25%" {
		t.Fatalf("Pct(-0.25) = %s", Pct(-0.25))
	}
}
