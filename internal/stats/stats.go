// Package stats provides the small numeric helpers the evaluation uses:
// geometric means, normalization, and percentage formatting.
package stats

import (
	"fmt"
	"math"
)

// Geomean returns the geometric mean of xs, ignoring non-positive entries
// (which would otherwise poison the product); it returns 0 for an empty or
// all-non-positive input.
func Geomean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Speedup returns base/t, guarding division by zero.
func Speedup(base, t float64) float64 {
	if t == 0 {
		return 0
	}
	return base / t
}

// Normalize divides each element by base.
func Normalize(xs []float64, base float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		if base != 0 {
			out[i] = x / base
		}
	}
	return out
}

// Pct formats a fraction as a percentage string.
func Pct(f float64) string { return fmt.Sprintf("%.0f%%", f*100) }
