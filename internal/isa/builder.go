package isa

import (
	"fmt"

	"repro/internal/mem"
)

// Builder is the vectorized program: kernels call its intrinsic-style
// methods, which execute functionally against golden vector registers and
// flat memory while streaming the dynamic instruction trace to a Sink.
//
// Strip-mining works exactly as in RVV code: SetVL(remaining) returns
// min(remaining, HWVL), so the same kernel source adapts its dynamic
// instruction count to each machine's hardware vector length — short for an
// integrated unit (VL=4), long for EVE (VL up to 2048).
type Builder struct {
	Mem *mem.Flat

	hwvl   int
	vl     int
	regs   [32][]uint32
	sink   Sink
	mix    Mix
	masked bool
	dp     Datapath
}

// NewBuilder returns a builder for a machine with the given hardware vector
// length. sink may be nil for functional-only runs.
func NewBuilder(m *mem.Flat, hwvl int, sink Sink) *Builder {
	if hwvl <= 0 {
		panic(fmt.Sprintf("isa: invalid hardware vector length %d", hwvl))
	}
	b := &Builder{Mem: m, hwvl: hwvl, vl: hwvl, sink: sink}
	for i := range b.regs {
		b.regs[i] = make([]uint32, hwvl)
	}
	return b
}

// HWVL reports the machine's hardware vector length.
func (b *Builder) HWVL() int { return b.hwvl }

// VL reports the current active vector length.
func (b *Builder) VL() int { return b.vl }

// Mix returns the accumulated instruction characterization.
func (b *Builder) Mix() Mix { return b.mix }

// VReg returns the live golden contents of a vector register (verification).
func (b *Builder) VReg(r int) []uint32 { return b.regs[r] }

// SetMasked toggles predication (the .vm suffix) for subsequent vector
// operations; the predicate is v0's element LSBs, per RVV.
func (b *Builder) SetMasked(on bool) { b.masked = on }

// SetDatapath attaches an execution substrate. Registers must not hold live
// data when the substrate is attached — attach before the kernel runs.
func (b *Builder) SetDatapath(dp Datapath) { b.dp = dp }

func (b *Builder) emitV(in *Instr) {
	in.VL = b.vl
	in.Masked = in.Masked || b.masked
	b.mix.VectorInstrs++
	b.mix.VectorOps += uint64(b.vl)
	b.mix.ByClass[Classify(in.Op)]++
	if in.Masked && in.Op != OpSetVL && in.Op != OpFence {
		b.mix.Predicated++
	}
	if b.sink != nil {
		b.sink.Emit(Event{Kind: EvVector, V: in})
	}
	b.execDP(in)
}

// execDP replays a register-writing instruction on the attached datapath and
// adopts the substrate's destination contents as the architectural result.
// Instructions without a vector destination only leave data through the
// builder, which syncs their source registers before consuming them.
func (b *Builder) execDP(in *Instr) {
	if b.dp == nil {
		return
	}
	switch in.Op {
	case OpSetVL, OpFence, OpStore, OpStoreStride, OpStoreIdx, OpMvXS, OpNop:
		return
	}
	copy(b.regs[in.Vd], b.dp.Exec(in, b.regs[in.Vd]))
}

// syncDP refreshes the golden mirror of the given registers from the
// datapath, so values consumed outside the vector arrays — stores, scalar
// reads, gather/scatter addressing, VRU inputs — observe any fault state
// the substrate accumulated since the registers were written.
func (b *Builder) syncDP(rs ...int) {
	if b.dp == nil {
		return
	}
	for _, r := range rs {
		copy(b.regs[r], b.dp.Read(r))
	}
}

func (b *Builder) active(i int) bool {
	return !b.masked || b.regs[0][i]&1 == 1
}

// SetVL requests avl elements and returns the granted active vector length,
// min(avl, HWVL) — the vsetvli of a strip-mined loop.
func (b *Builder) SetVL(avl int) int {
	if avl < 0 {
		panic("isa: negative requested vector length")
	}
	b.vl = min(avl, b.hwvl)
	b.mix.VectorInstrs++
	b.mix.ByClass[ClassCtrl]++
	if b.sink != nil {
		b.sink.Emit(Event{Kind: EvVector, V: &Instr{Op: OpSetVL, VL: b.vl}})
	}
	return b.vl
}

// Fence emits a vector memory fence (vmfence, §V-A).
func (b *Builder) Fence() {
	b.mix.VectorInstrs++
	b.mix.ByClass[ClassCtrl]++
	if b.sink != nil {
		b.sink.Emit(Event{Kind: EvVector, V: &Instr{Op: OpFence, VL: b.vl}})
	}
}

// binVV executes and emits a vector-vector binary operation.
func (b *Builder) binVV(op Op, vd, vs1, vs2 int, f func(x, y uint32) uint32) {
	d, s1, s2 := b.regs[vd], b.regs[vs1], b.regs[vs2]
	for i := 0; i < b.vl; i++ {
		if b.active(i) {
			d[i] = f(s1[i], s2[i])
		}
	}
	b.emitV(&Instr{Op: op, Kind: KindVV, Vd: vd, Vs1: vs1, Vs2: vs2})
}

// binVX executes and emits a vector-scalar binary operation.
func (b *Builder) binVX(op Op, vd, vs1 int, x uint32, f func(a, y uint32) uint32) {
	d, s1 := b.regs[vd], b.regs[vs1]
	for i := 0; i < b.vl; i++ {
		if b.active(i) {
			d[i] = f(s1[i], x)
		}
	}
	b.emitV(&Instr{Op: op, Kind: KindVX, Vd: vd, Vs1: vs1, Scalar: x})
}

// Integer ALU operations.

func (b *Builder) Add(vd, vs1, vs2 int) {
	b.binVV(OpAdd, vd, vs1, vs2, func(x, y uint32) uint32 { return x + y })
}
func (b *Builder) Sub(vd, vs1, vs2 int) {
	b.binVV(OpSub, vd, vs1, vs2, func(x, y uint32) uint32 { return x - y })
}
func (b *Builder) And(vd, vs1, vs2 int) {
	b.binVV(OpAnd, vd, vs1, vs2, func(x, y uint32) uint32 { return x & y })
}
func (b *Builder) Or(vd, vs1, vs2 int) {
	b.binVV(OpOr, vd, vs1, vs2, func(x, y uint32) uint32 { return x | y })
}
func (b *Builder) Xor(vd, vs1, vs2 int) {
	b.binVV(OpXor, vd, vs1, vs2, func(x, y uint32) uint32 { return x ^ y })
}

func (b *Builder) AddVX(vd, vs1 int, x uint32) {
	b.binVX(OpAdd, vd, vs1, x, func(a, y uint32) uint32 { return a + y })
}
func (b *Builder) SubVX(vd, vs1 int, x uint32) {
	b.binVX(OpSub, vd, vs1, x, func(a, y uint32) uint32 { return a - y })
}
func (b *Builder) RSubVX(vd, vs1 int, x uint32) {
	b.binVX(OpRSub, vd, vs1, x, func(a, y uint32) uint32 { return y - a })
}
func (b *Builder) AndVX(vd, vs1 int, x uint32) {
	b.binVX(OpAnd, vd, vs1, x, func(a, y uint32) uint32 { return a & y })
}

func (b *Builder) Min(vd, vs1, vs2 int) {
	b.binVV(OpMin, vd, vs1, vs2, func(x, y uint32) uint32 { return uint32(min(int32(x), int32(y))) })
}
func (b *Builder) Max(vd, vs1, vs2 int) {
	b.binVV(OpMax, vd, vs1, vs2, func(x, y uint32) uint32 { return uint32(max(int32(x), int32(y))) })
}
func (b *Builder) MinU(vd, vs1, vs2 int) {
	b.binVV(OpMinU, vd, vs1, vs2, func(x, y uint32) uint32 { return min(x, y) })
}
func (b *Builder) MaxU(vd, vs1, vs2 int) {
	b.binVV(OpMaxU, vd, vs1, vs2, func(x, y uint32) uint32 { return max(x, y) })
}
func (b *Builder) MaxVX(vd, vs1 int, x uint32) {
	b.binVX(OpMax, vd, vs1, x, func(a, y uint32) uint32 { return uint32(max(int32(a), int32(y))) })
}

func (b *Builder) SllVX(vd, vs1 int, sh uint32) {
	b.binVX(OpSll, vd, vs1, sh, func(a, y uint32) uint32 { return a << (y & 31) })
}
func (b *Builder) SrlVX(vd, vs1 int, sh uint32) {
	b.binVX(OpSrl, vd, vs1, sh, func(a, y uint32) uint32 { return a >> (y & 31) })
}
func (b *Builder) SraVX(vd, vs1 int, sh uint32) {
	b.binVX(OpSra, vd, vs1, sh, func(a, y uint32) uint32 { return uint32(int32(a) >> (y & 31)) })
}
func (b *Builder) Sll(vd, vs1, vs2 int) {
	b.binVV(OpSll, vd, vs1, vs2, func(a, y uint32) uint32 { return a << (y & 31) })
}
func (b *Builder) Srl(vd, vs1, vs2 int) {
	b.binVV(OpSrl, vd, vs1, vs2, func(a, y uint32) uint32 { return a >> (y & 31) })
}
func (b *Builder) OrVX(vd, vs1 int, x uint32) {
	b.binVX(OpOr, vd, vs1, x, func(a, y uint32) uint32 { return a | y })
}
func (b *Builder) XorVX(vd, vs1 int, x uint32) {
	b.binVX(OpXor, vd, vs1, x, func(a, y uint32) uint32 { return a ^ y })
}
func (b *Builder) MSgtUVX(vd, vs1 int, x uint32) {
	b.binVX(OpMSgtU, vd, vs1, x, func(a, y uint32) uint32 { return b2u(a > y) })
}
func (b *Builder) MSltUVX(vd, vs1 int, x uint32) {
	b.binVX(OpMSltU, vd, vs1, x, func(a, y uint32) uint32 { return b2u(a < y) })
}
func (b *Builder) MSeqVX(vd, vs1 int, x uint32) {
	b.binVX(OpMSeq, vd, vs1, x, func(a, y uint32) uint32 { return b2u(a == y) })
}

// Multiply / divide.

func (b *Builder) Mul(vd, vs1, vs2 int) {
	b.binVV(OpMul, vd, vs1, vs2, func(x, y uint32) uint32 { return x * y })
}
func (b *Builder) MulVX(vd, vs1 int, x uint32) {
	b.binVX(OpMul, vd, vs1, x, func(a, y uint32) uint32 { return a * y })
}
func (b *Builder) MulH(vd, vs1, vs2 int) {
	b.binVV(OpMulH, vd, vs1, vs2, func(x, y uint32) uint32 { return uint32(uint64(x) * uint64(y) >> 32) })
}

// MaccVX performs vd[i] += x*vs1[i] (vmacc.vx).
func (b *Builder) MaccVX(vd, vs1 int, x uint32) {
	d, s1 := b.regs[vd], b.regs[vs1]
	for i := 0; i < b.vl; i++ {
		if b.active(i) {
			d[i] += x * s1[i]
		}
	}
	b.emitV(&Instr{Op: OpMacc, Kind: KindVX, Vd: vd, Vs1: vs1, Scalar: x})
}

// Macc performs vd[i] += vs1[i]*vs2[i] (vmacc.vv).
func (b *Builder) Macc(vd, vs1, vs2 int) {
	d, s1, s2 := b.regs[vd], b.regs[vs1], b.regs[vs2]
	for i := 0; i < b.vl; i++ {
		if b.active(i) {
			d[i] += s1[i] * s2[i]
		}
	}
	b.emitV(&Instr{Op: OpMacc, Kind: KindVV, Vd: vd, Vs1: vs1, Vs2: vs2})
}

func (b *Builder) DivU(vd, vs1, vs2 int) {
	b.binVV(OpDivU, vd, vs1, vs2, func(x, y uint32) uint32 {
		if y == 0 {
			return ^uint32(0)
		}
		return x / y
	})
}
func (b *Builder) Div(vd, vs1, vs2 int) {
	b.binVV(OpDiv, vd, vs1, vs2, func(x, y uint32) uint32 {
		sx, sy := int32(x), int32(y)
		switch {
		case sy == 0:
			return ^uint32(0)
		case sx == -1<<31 && sy == -1:
			return x
		default:
			return uint32(sx / sy)
		}
	})
}
func (b *Builder) DivVX(vd, vs1 int, x uint32) {
	b.binVX(OpDiv, vd, vs1, x, func(a, y uint32) uint32 {
		sa, sy := int32(a), int32(y)
		switch {
		case sy == 0:
			return ^uint32(0)
		case sa == -1<<31 && sy == -1:
			return a
		default:
			return uint32(sa / sy)
		}
	})
}

// Compares (mask-producing, stored as 0/1 values).

func (b *Builder) MSeq(vd, vs1, vs2 int) {
	b.binVV(OpMSeq, vd, vs1, vs2, func(x, y uint32) uint32 { return b2u(x == y) })
}
func (b *Builder) MSne(vd, vs1, vs2 int) {
	b.binVV(OpMSne, vd, vs1, vs2, func(x, y uint32) uint32 { return b2u(x != y) })
}
func (b *Builder) MSlt(vd, vs1, vs2 int) {
	b.binVV(OpMSlt, vd, vs1, vs2, func(x, y uint32) uint32 { return b2u(int32(x) < int32(y)) })
}
func (b *Builder) MSltU(vd, vs1, vs2 int) {
	b.binVV(OpMSltU, vd, vs1, vs2, func(x, y uint32) uint32 { return b2u(x < y) })
}
func (b *Builder) MSltVX(vd, vs1 int, x uint32) {
	b.binVX(OpMSlt, vd, vs1, x, func(a, y uint32) uint32 { return b2u(int32(a) < int32(y)) })
}
func (b *Builder) MSgtVX(vd, vs1 int, x uint32) {
	b.binVX(OpMSgt, vd, vs1, x, func(a, y uint32) uint32 { return b2u(int32(a) > int32(y)) })
}

// Merge performs vd[i] = v0[i] ? vs1[i] : vs2[i] (vmerge.vvm).
func (b *Builder) Merge(vd, vs1, vs2 int) {
	d, s1, s2, m := b.regs[vd], b.regs[vs1], b.regs[vs2], b.regs[0]
	for i := 0; i < b.vl; i++ {
		if m[i]&1 == 1 {
			d[i] = s1[i]
		} else {
			d[i] = s2[i]
		}
	}
	b.emitV(&Instr{Op: OpMerge, Kind: KindVV, Vd: vd, Vs1: vs1, Vs2: vs2, Masked: true})
}

// Mv copies a register (vmv.v.v).
func (b *Builder) Mv(vd, vs1 int) {
	b.binVV(OpMv, vd, vs1, vs1, func(x, _ uint32) uint32 { return x })
}

// MvVX broadcasts a scalar (vmv.v.x).
func (b *Builder) MvVX(vd int, x uint32) {
	b.binVX(OpMv, vd, vd, x, func(_, y uint32) uint32 { return y })
}

// VId writes element indices 0..vl-1 (vid.v).
func (b *Builder) VId(vd int) {
	d := b.regs[vd]
	for i := 0; i < b.vl; i++ {
		if b.active(i) {
			d[i] = uint32(i)
		}
	}
	b.emitV(&Instr{Op: OpVId, Kind: KindVV, Vd: vd})
}

// Memory operations. Loads and stores move 32-bit elements; indexed forms
// take byte offsets in the index register, per RVV.

func (b *Builder) Load(vd int, addr uint64) {
	d := b.regs[vd]
	for i := 0; i < b.vl; i++ {
		d[i] = b.Mem.LoadU32(addr + uint64(4*i))
	}
	b.emitV(&Instr{Op: OpLoad, Vd: vd, Addr: addr})
}

func (b *Builder) Store(vs int, addr uint64) {
	b.syncDP(vs)
	s := b.regs[vs]
	for i := 0; i < b.vl; i++ {
		b.Mem.StoreU32(addr+uint64(4*i), s[i])
	}
	b.emitV(&Instr{Op: OpStore, Vs1: vs, Addr: addr})
}

func (b *Builder) LoadStride(vd int, addr uint64, stride int64) {
	d := b.regs[vd]
	for i := 0; i < b.vl; i++ {
		d[i] = b.Mem.LoadU32(uint64(int64(addr) + int64(i)*stride))
	}
	b.emitV(&Instr{Op: OpLoadStride, Vd: vd, Addr: addr, Stride: stride})
}

func (b *Builder) StoreStride(vs int, addr uint64, stride int64) {
	b.syncDP(vs)
	s := b.regs[vs]
	for i := 0; i < b.vl; i++ {
		b.Mem.StoreU32(uint64(int64(addr)+int64(i)*stride), s[i])
	}
	b.emitV(&Instr{Op: OpStoreStride, Vs1: vs, Addr: addr, Stride: stride})
}

func (b *Builder) LoadIdx(vd int, base uint64, vidx int) {
	b.syncDP(vidx)
	d, ix := b.regs[vd], b.regs[vidx]
	addrs := make([]uint64, b.vl)
	for i := 0; i < b.vl; i++ {
		addrs[i] = base + uint64(ix[i])
		d[i] = b.Mem.LoadU32(addrs[i])
	}
	b.emitV(&Instr{Op: OpLoadIdx, Vd: vd, Vs2: vidx, Addr: base, Addrs: addrs})
}

func (b *Builder) StoreIdx(vs int, base uint64, vidx int) {
	b.syncDP(vs, vidx)
	s, ix := b.regs[vs], b.regs[vidx]
	addrs := make([]uint64, b.vl)
	for i := 0; i < b.vl; i++ {
		addrs[i] = base + uint64(ix[i])
		b.Mem.StoreU32(addrs[i], s[i])
	}
	b.emitV(&Instr{Op: OpStoreIdx, Vs1: vs, Vs2: vidx, Addr: base, Addrs: addrs})
}

// Reductions follow RVV: vd[0] = vs1[0] reduced with vs2[0..vl-1].

func (b *Builder) RedSum(vd, vs2, vs1 int) {
	b.syncDP(vs1, vs2)
	acc := b.regs[vs1][0]
	for i := 0; i < b.vl; i++ {
		acc += b.regs[vs2][i]
	}
	b.regs[vd][0] = acc
	b.emitV(&Instr{Op: OpRedSum, Vd: vd, Vs1: vs1, Vs2: vs2})
}

func (b *Builder) RedMin(vd, vs2, vs1 int) {
	b.syncDP(vs1, vs2)
	acc := int32(b.regs[vs1][0])
	for i := 0; i < b.vl; i++ {
		acc = min(acc, int32(b.regs[vs2][i]))
	}
	b.regs[vd][0] = uint32(acc)
	b.emitV(&Instr{Op: OpRedMin, Vd: vd, Vs1: vs1, Vs2: vs2})
}

func (b *Builder) RedMax(vd, vs2, vs1 int) {
	b.syncDP(vs1, vs2)
	acc := int32(b.regs[vs1][0])
	for i := 0; i < b.vl; i++ {
		acc = max(acc, int32(b.regs[vs2][i]))
	}
	b.regs[vd][0] = uint32(acc)
	b.emitV(&Instr{Op: OpRedMax, Vd: vd, Vs1: vs1, Vs2: vs2})
}

func (b *Builder) RedMinU(vd, vs2, vs1 int) {
	b.syncDP(vs1, vs2)
	acc := b.regs[vs1][0]
	for i := 0; i < b.vl; i++ {
		acc = min(acc, b.regs[vs2][i])
	}
	b.regs[vd][0] = acc
	b.emitV(&Instr{Op: OpRedMinU, Vd: vd, Vs1: vs1, Vs2: vs2})
}

// Cross-element operations.

func (b *Builder) Slide1Up(vd, vs int, x uint32) {
	b.syncDP(vs)
	s := b.regs[vs]
	out := make([]uint32, b.vl)
	out[0] = x
	copy(out[1:], s[:b.vl-1])
	copy(b.regs[vd], out)
	b.emitV(&Instr{Op: OpSlide1Up, Vd: vd, Vs1: vs, Scalar: x})
}

func (b *Builder) Slide1Down(vd, vs int, x uint32) {
	b.syncDP(vs)
	s := b.regs[vs]
	out := make([]uint32, b.vl)
	copy(out, s[1:b.vl])
	out[b.vl-1] = x
	copy(b.regs[vd], out)
	b.emitV(&Instr{Op: OpSlide1Down, Vd: vd, Vs1: vs, Scalar: x})
}

// RGather performs vd[i] = vs2[vs1[i]] with out-of-range indices yielding 0.
func (b *Builder) RGather(vd, vs2, vs1 int) {
	b.syncDP(vs1, vs2)
	src, ix := b.regs[vs2], b.regs[vs1]
	out := make([]uint32, b.vl)
	for i := 0; i < b.vl; i++ {
		if int(ix[i]) < b.vl {
			out[i] = src[ix[i]]
		}
	}
	copy(b.regs[vd], out)
	b.emitV(&Instr{Op: OpRGather, Vd: vd, Vs1: vs1, Vs2: vs2})
}

// Scalar interface.

// MvXS reads element 0 to the scalar core (vmv.x.s); the control processor
// stalls commit awaiting EVE's reply (§V-A).
func (b *Builder) MvXS(vs int) uint32 {
	b.syncDP(vs)
	v := b.regs[vs][0]
	b.emitV(&Instr{Op: OpMvXS, Vs1: vs})
	return v
}

// MvSX writes the scalar into element 0 (vmv.s.x).
func (b *Builder) MvSX(vd int, x uint32) {
	b.regs[vd][0] = x
	b.emitV(&Instr{Op: OpMvSX, Vd: vd, Scalar: x})
}

// Scalar-side trace emission: the loop control, address arithmetic and
// scalar memory traffic surrounding the vector code.

func (b *Builder) ScalarOps(n int) {
	if n <= 0 {
		return
	}
	b.mix.ScalarOps += uint64(n)
	if b.sink != nil {
		b.sink.Emit(Event{Kind: EvScalar, N: n})
	}
}

func (b *Builder) ScalarMuls(n int) {
	if n <= 0 {
		return
	}
	b.mix.ScalarMuls += uint64(n)
	if b.sink != nil {
		b.sink.Emit(Event{Kind: EvScalarMul, N: n})
	}
}

// ScalarLoad performs and traces one scalar 32-bit load.
func (b *Builder) ScalarLoad(addr uint64) uint32 {
	b.mix.ScalarLoads++
	if b.sink != nil {
		b.sink.Emit(Event{Kind: EvLoad, N: 1, Addr: addr})
	}
	return b.Mem.LoadU32(addr)
}

// ScalarStore performs and traces one scalar 32-bit store.
func (b *Builder) ScalarStore(addr uint64, v uint32) {
	b.mix.ScalarStore++
	if b.sink != nil {
		b.sink.Emit(Event{Kind: EvStore, N: 1, Addr: addr})
	}
	b.Mem.StoreU32(addr, v)
}

func b2u(v bool) uint32 {
	if v {
		return 1
	}
	return 0
}

// Saturating arithmetic (vsadd/vsaddu/vssub/vssubu).

func (b *Builder) SAddU(vd, vs1, vs2 int) {
	b.binVV(OpSAddU, vd, vs1, vs2, func(x, y uint32) uint32 {
		if s := uint64(x) + uint64(y); s > 0xFFFFFFFF {
			return 0xFFFFFFFF
		}
		return x + y
	})
}

func (b *Builder) SSubU(vd, vs1, vs2 int) {
	b.binVV(OpSSubU, vd, vs1, vs2, func(x, y uint32) uint32 {
		if y > x {
			return 0
		}
		return x - y
	})
}

func (b *Builder) SAdd(vd, vs1, vs2 int) {
	b.binVV(OpSAdd, vd, vs1, vs2, func(x, y uint32) uint32 { return sat32(int64(int32(x)) + int64(int32(y))) })
}

func (b *Builder) SSub(vd, vs1, vs2 int) {
	b.binVV(OpSSub, vd, vs1, vs2, func(x, y uint32) uint32 { return sat32(int64(int32(x)) - int64(int32(y))) })
}

func sat32(s int64) uint32 {
	if s > 0x7FFFFFFF {
		return 0x7FFFFFFF
	}
	if s < -0x80000000 {
		return 0x80000000
	}
	return uint32(s)
}
