package isa

import (
	"testing"

	"repro/internal/mem"
)

type collector struct{ evs []Event }

func (c *collector) Emit(ev Event) { c.evs = append(c.evs, ev) }

func newB(t *testing.T, hwvl int) (*Builder, *collector) {
	t.Helper()
	c := &collector{}
	return NewBuilder(mem.NewFlat(1<<20), hwvl, c), c
}

func TestSetVLStripMining(t *testing.T) {
	b, _ := newB(t, 8)
	if got := b.SetVL(100); got != 8 {
		t.Fatalf("SetVL(100) = %d, want 8 (HWVL)", got)
	}
	if got := b.SetVL(3); got != 3 {
		t.Fatalf("SetVL(3) = %d, want 3", got)
	}
}

func TestArithAndTrace(t *testing.T) {
	b, c := newB(t, 4)
	b.SetVL(4)
	b.MvVX(1, 10)
	b.MvVX(2, 32)
	b.Add(3, 1, 2)
	for i := 0; i < 4; i++ {
		if b.VReg(3)[i] != 42 {
			t.Fatalf("elem %d = %d, want 42", i, b.VReg(3)[i])
		}
	}
	// Events: setvl + 2 moves + add.
	if len(c.evs) != 4 {
		t.Fatalf("trace has %d events, want 4", len(c.evs))
	}
	last := c.evs[3]
	if last.Kind != EvVector || last.V.Op != OpAdd || last.V.VL != 4 {
		t.Fatalf("last event = %+v", last)
	}
}

func TestMaskedExecution(t *testing.T) {
	b, _ := newB(t, 4)
	b.SetVL(4)
	// v0 mask = 0,1,0,1.
	for i := 0; i < 4; i++ {
		b.VReg(0)[i] = uint32(i % 2)
	}
	b.MvVX(1, 5)
	b.MvVX(2, 7)
	b.MvVX(3, 99)
	b.SetMasked(true)
	b.Add(3, 1, 2)
	b.SetMasked(false)
	for i := 0; i < 4; i++ {
		want := uint32(99)
		if i%2 == 1 {
			want = 12
		}
		if b.VReg(3)[i] != want {
			t.Fatalf("elem %d = %d, want %d", i, b.VReg(3)[i], want)
		}
	}
	if b.Mix().Predicated != 1 {
		t.Fatalf("predicated count = %d, want 1", b.Mix().Predicated)
	}
}

func TestMemoryOps(t *testing.T) {
	b, _ := newB(t, 4)
	base := b.Mem.AllocU32(16)
	for i := 0; i < 16; i++ {
		b.Mem.StoreU32(base+uint64(4*i), uint32(i*i))
	}
	b.SetVL(4)
	b.Load(1, base)
	if b.VReg(1)[3] != 9 {
		t.Fatalf("unit load elem 3 = %d", b.VReg(1)[3])
	}
	b.LoadStride(2, base, 8) // every other element
	if b.VReg(2)[3] != 36 {
		t.Fatalf("strided load elem 3 = %d", b.VReg(2)[3])
	}
	// Indexed: byte offsets 0,4,8,12 reversed.
	for i := 0; i < 4; i++ {
		b.VReg(3)[i] = uint32((3 - i) * 4)
	}
	b.LoadIdx(4, base, 3)
	if b.VReg(4)[0] != 9 || b.VReg(4)[3] != 0 {
		t.Fatalf("indexed load = %v", b.VReg(4)[:4])
	}
	// Store back doubled.
	b.Add(5, 1, 1)
	out := b.Mem.AllocU32(4)
	b.Store(5, out)
	if b.Mem.LoadU32(out+8) != 8 {
		t.Fatalf("store failed: %d", b.Mem.LoadU32(out+8))
	}
}

func TestReductionsAndSlides(t *testing.T) {
	b, _ := newB(t, 8)
	b.SetVL(8)
	b.VId(1)
	b.MvVX(2, 0)
	b.RedSum(3, 1, 2)
	if b.VReg(3)[0] != 28 {
		t.Fatalf("redsum = %d, want 28", b.VReg(3)[0])
	}
	b.Slide1Down(4, 1, 1000)
	if b.VReg(4)[0] != 1 || b.VReg(4)[7] != 1000 {
		t.Fatalf("slide1down = %v", b.VReg(4)[:8])
	}
	b.Slide1Up(5, 1, 2000)
	if b.VReg(5)[0] != 2000 || b.VReg(5)[7] != 6 {
		t.Fatalf("slide1up = %v", b.VReg(5)[:8])
	}
	// Gather reversal.
	for i := 0; i < 8; i++ {
		b.VReg(6)[i] = uint32(7 - i)
	}
	b.RGather(7, 1, 6)
	if b.VReg(7)[0] != 7 || b.VReg(7)[7] != 0 {
		t.Fatalf("rgather = %v", b.VReg(7)[:8])
	}
}

func TestMixCharacterization(t *testing.T) {
	b, _ := newB(t, 16)
	b.SetVL(16)
	b.MvVX(1, 3)
	b.Mul(2, 1, 1)
	base := b.Mem.AllocU32(16)
	b.Store(2, base)
	b.ScalarOps(10)
	b.ScalarLoad(base)
	m := b.Mix()
	if m.VectorInstrs != 4 { // setvl, mv, mul, store
		t.Fatalf("vector instrs = %d, want 4", m.VectorInstrs)
	}
	if m.ByClass[ClassIMul] != 1 || m.ByClass[ClassUS] != 1 || m.ByClass[ClassCtrl] != 1 {
		t.Fatalf("class counts wrong: %+v", m.ByClass)
	}
	if m.ScalarOps != 10 || m.ScalarLoads != 1 {
		t.Fatalf("scalar counts wrong: %+v", m)
	}
	// DOp = 10 scalar + 1 load + 3*16 vector element ops (setvl contributes
	// VL too in our accounting? SetVL adds no VectorOps).
	wantOps := uint64(10 + 1 + 3*16)
	if m.TotalOps() != wantOps {
		t.Fatalf("TotalOps = %d, want %d", m.TotalOps(), wantOps)
	}
	if m.VectorPct() <= 0 || m.VectorOpPct() < 0.7 {
		t.Fatalf("percentages implausible: VI%%=%.2f VO%%=%.2f", m.VectorPct(), m.VectorOpPct())
	}
}

func TestClassify(t *testing.T) {
	cases := map[Op]Class{
		OpAdd: ClassIALU, OpMul: ClassIMul, OpDiv: ClassIMul,
		OpRedSum: ClassXE, OpRGather: ClassXE,
		OpLoad: ClassUS, OpLoadStride: ClassST, OpLoadIdx: ClassIdx,
		OpSetVL: ClassCtrl, OpFence: ClassCtrl, OpMvXS: ClassCtrl,
	}
	for op, want := range cases {
		if got := Classify(op); got != want {
			t.Errorf("Classify(%v) = %v, want %v", op, got, want)
		}
	}
	if !IsMemory(OpStoreIdx) || IsMemory(OpAdd) {
		t.Error("IsMemory misclassifies")
	}
	if !IsStore(OpStore) || IsStore(OpLoad) {
		t.Error("IsStore misclassifies")
	}
}
