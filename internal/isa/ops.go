// Package isa defines the RVV-subset vector instruction set EVE executes
// (32-bit integer instructions of the RISC-V vector extension, §I) and a
// builder that plays the role of the vectorized binary: workload kernels
// call intrinsic-style methods, which execute functionally against golden
// register and memory state and simultaneously emit the dynamic instruction
// trace that the timing models consume. This realizes the paper's separation
// of execution and timing (§VII-A).
package isa

import "fmt"

// Op enumerates the vector operations.
type Op int

// Vector operations.
const (
	OpNop Op = iota

	// Integer ALU.
	OpAdd
	OpSub
	OpRSub
	OpAnd
	OpOr
	OpXor
	OpMin
	OpMax
	OpMinU
	OpMaxU
	OpSll
	OpSrl
	OpSra
	OpSAdd
	OpSAddU
	OpSSub
	OpSSubU
	OpMerge
	OpMv
	OpVId // vid.v: element indices

	// Multiply / divide (the paper's "imul" class).
	OpMul
	OpMulH
	OpMacc
	OpDiv
	OpDivU
	OpRem
	OpRemU

	// Compares producing mask values.
	OpMSeq
	OpMSne
	OpMSlt
	OpMSltU
	OpMSle
	OpMSleU
	OpMSgt
	OpMSgtU

	// Memory.
	OpLoad
	OpStore
	OpLoadStride
	OpStoreStride
	OpLoadIdx
	OpStoreIdx

	// Reductions and cross-element (VRU class).
	OpRedSum
	OpRedMin
	OpRedMax
	OpRedMinU
	OpRedMaxU
	OpSlide1Up
	OpSlide1Down
	OpRGather

	// Scalar interface and control.
	OpMvXS // vmv.x.s: element 0 to the core (core stalls for the reply)
	OpMvSX // vmv.s.x: scalar into element 0
	OpSetVL
	OpFence // vmfence (§V-A)
)

var opNames = map[Op]string{
	OpNop: "nop", OpAdd: "vadd", OpSub: "vsub", OpRSub: "vrsub", OpAnd: "vand",
	OpOr: "vor", OpXor: "vxor", OpMin: "vmin", OpMax: "vmax", OpMinU: "vminu",
	OpMaxU: "vmaxu", OpSll: "vsll", OpSrl: "vsrl", OpSra: "vsra",
	OpMerge: "vmerge", OpMv: "vmv", OpVId: "vid",
	OpSAdd: "vsadd", OpSAddU: "vsaddu", OpSSub: "vssub", OpSSubU: "vssubu",
	OpMul: "vmul", OpMulH: "vmulhu", OpMacc: "vmacc", OpDiv: "vdiv",
	OpDivU: "vdivu", OpRem: "vrem", OpRemU: "vremu",
	OpMSeq: "vmseq", OpMSne: "vmsne", OpMSlt: "vmslt", OpMSltU: "vmsltu",
	OpMSle: "vmsle", OpMSleU: "vmsleu", OpMSgt: "vmsgt", OpMSgtU: "vmsgtu",
	OpLoad: "vle32", OpStore: "vse32", OpLoadStride: "vlse32",
	OpStoreStride: "vsse32", OpLoadIdx: "vluxei32", OpStoreIdx: "vsuxei32",
	OpRedSum: "vredsum", OpRedMin: "vredmin", OpRedMax: "vredmax",
	OpRedMinU: "vredminu", OpRedMaxU: "vredmaxu",
	OpSlide1Up: "vslide1up", OpSlide1Down: "vslide1down", OpRGather: "vrgather",
	OpMvXS: "vmv.x.s", OpMvSX: "vmv.s.x", OpSetVL: "vsetvl", OpFence: "vmfence",
}

// mnemonicOps inverts opNames for the assembler's base-mnemonic lookup — a
// keyed map instead of a first-match scan over randomized map order. The
// init check keeps the inversion well-defined if opNames ever grows a
// duplicate mnemonic.
var mnemonicOps = make(map[string]Op, len(opNames))

func init() {
	for op, name := range opNames {
		if prev, dup := mnemonicOps[name]; dup {
			panic(fmt.Sprintf("isa: mnemonic %q maps to both %d and %d", name, prev, op))
		}
		mnemonicOps[name] = op
	}
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Class buckets operations per Table IV's characterization columns.
type Class int

// Instruction classes.
const (
	ClassCtrl Class = iota // vsetvl, fences, scalar moves
	ClassIALU              // integer ALU
	ClassIMul              // multiply and divide
	ClassXE                // cross-element and reductions
	ClassUS                // unit-stride memory
	ClassST                // constant-stride memory
	ClassIdx               // indexed memory
)

func (c Class) String() string {
	return [...]string{"ctrl", "ialu", "imul", "xe", "us", "st", "idx"}[c]
}

// Classify reports the Table IV class of an operation.
func Classify(o Op) Class {
	switch o {
	case OpSetVL, OpFence, OpMvXS, OpMvSX:
		return ClassCtrl
	case OpMul, OpMulH, OpMacc, OpDiv, OpDivU, OpRem, OpRemU:
		return ClassIMul
	case OpRedSum, OpRedMin, OpRedMax, OpRedMinU, OpRedMaxU,
		OpSlide1Up, OpSlide1Down, OpRGather:
		return ClassXE
	case OpLoad, OpStore:
		return ClassUS
	case OpLoadStride, OpStoreStride:
		return ClassST
	case OpLoadIdx, OpStoreIdx:
		return ClassIdx
	default:
		return ClassIALU
	}
}

// IsMemory reports whether the operation touches memory.
func IsMemory(o Op) bool {
	switch o {
	case OpLoad, OpStore, OpLoadStride, OpStoreStride, OpLoadIdx, OpStoreIdx:
		return true
	}
	return false
}

// IsStore reports whether the memory operation writes memory.
func IsStore(o Op) bool {
	switch o {
	case OpStore, OpStoreStride, OpStoreIdx:
		return true
	}
	return false
}

// OperandKind distinguishes vector-vector from vector-scalar encodings.
type OperandKind int

// Operand kinds.
const (
	KindVV OperandKind = iota
	KindVX
)
