package isa

import (
	"testing"
)

// staticEq compares the static (encodable) part of two instructions: the
// opcode, operand kind, registers and mask bit. Runtime payload (scalar
// values, addresses, VL) never round-trips through an encoding.
func staticEq(a, b *Instr) bool {
	return a.Op == b.Op && a.Kind == b.Kind &&
		a.Vd == b.Vd && a.Vs1 == b.Vs1 && a.Vs2 == b.Vs2 &&
		a.Masked == b.Masked
}

// FuzzDecode throws arbitrary 32-bit words at the decoder. Whatever Decode
// accepts must re-encode, and the re-encoded word must decode back to the
// same static instruction — the decoder defines the canonical form, so the
// round-trip has to be a fixed point. Decode must never panic, whatever
// the word.
func FuzzDecode(f *testing.F) {
	// Seed with every encodable operation in a few register/mask shapes,
	// plus near-miss words (wrong funct6, wrong opcode, scalar opcodes).
	for _, op := range encodableOps() {
		in := &Instr{Op: op, Vd: 1, Vs1: 2, Vs2: 3}
		if op == OpVId {
			in.Vs1 = 0
		}
		if op == OpMvSX {
			in.Kind = KindVX
		}
		if word, err := Encode(in); err == nil {
			f.Add(word)
		}
		in.Masked = true
		if word, err := Encode(in); err == nil {
			f.Add(word)
		}
	}
	f.Add(uint32(0))
	f.Add(uint32(0x57))         // OP-V with funct6=0, OPIVV
	f.Add(uint32(0xFFFFFFFF))   // all-ones
	f.Add(uint32(0x0B | 1<<12)) // vmfence
	f.Add(uint32(0x13))         // scalar addi — not a vector instruction

	f.Fuzz(func(t *testing.T, word uint32) {
		in, err := Decode(word)
		if err != nil {
			return // rejecting a word is fine; panicking is not
		}
		word2, err := Encode(in)
		if err != nil {
			t.Fatalf("Decode(%#x) = %+v, but Encode rejects it: %v", word, in, err)
		}
		in2, err := Decode(word2)
		if err != nil {
			t.Fatalf("Decode(Encode(Decode(%#x)) = %#x) failed: %v", word, word2, err)
		}
		if !staticEq(in, in2) {
			t.Errorf("decode/encode round-trip not a fixed point for %#x:\n first  %+v\n second %+v",
				word, in, in2)
		}
	})
}

// FuzzAssemble throws arbitrary strings at the assembler. Whatever
// Assemble accepts must disassemble to text that re-assembles to the same
// static instruction, and Assemble must never panic on malformed input.
func FuzzAssemble(f *testing.F) {
	// Seed with the disassembly of every encodable operation, masked and
	// unmasked, plus malformed near-misses.
	for _, op := range encodableOps() {
		in := &Instr{Op: op, Vd: 1, Vs1: 2, Vs2: 3}
		if op == OpVId {
			in.Vs1 = 0
		}
		if op == OpMvSX {
			in.Kind = KindVX
		}
		f.Add(Disassemble(in))
		in.Masked = true
		f.Add(Disassemble(in))
		in.Kind = KindVX
		f.Add(Disassemble(in))
	}
	f.Add("")
	f.Add("vadd.vv v1, v2")        // missing operand
	f.Add("vadd.vv v1, v2, v99")   // bad register
	f.Add("vadd v1, v2, v3")       // no suffix
	f.Add("nonsense.vv v1, v2, v3")
	f.Add("vmv.x.s x_, v7")
	f.Add("vsetvli x0, x0, e32")
	f.Add("vmfence")

	f.Fuzz(func(t *testing.T, s string) {
		in, err := Assemble(s)
		if err != nil {
			return // rejecting a line is fine; panicking is not
		}
		text := Disassemble(in)
		in2, err := Assemble(text)
		if err != nil {
			t.Fatalf("Assemble(%q) = %+v, but its disassembly %q does not re-assemble: %v",
				s, in, text, err)
		}
		if !staticEq(in, in2) {
			t.Errorf("assemble/disassemble round-trip diverges for %q (via %q):\n first  %+v\n second %+v",
				s, text, in, in2)
		}
	})
}
