package isa

import "fmt"

// Binary encoding and decoding of the vector instruction subset, following
// the RISC-V "V" extension 0.7.1 layout the paper targets: OP-V instructions
// carry funct6 | vm | vs2 | vs1 | funct3 | vd | opcode, with the funct3
// field selecting the operand category (OPIVV, OPIVX, OPMVV, ...), and
// vector memory operations live on the LOAD-FP/STORE-FP opcodes with the
// mop field distinguishing unit-stride, strided and indexed forms.
//
// The encoder covers the register-register view of the ISA; scalar operand
// *values* (the x-register contents baked into a dynamic Instr) and memory
// addresses are runtime state and round-trip through the register numbers
// only. Decode(Encode(i)) therefore reproduces opcode, operand kind,
// registers and mask bit — the static instruction — which is what an
// assembler or disassembler works with.

// RISC-V major opcodes used by the vector extension.
const (
	opcodeVec     = 0x57 // OP-V
	opcodeLoadFP  = 0x07
	opcodeStoreFP = 0x27
)

// funct3 operand categories.
const (
	f3OPIVV = 0
	f3OPIVX = 4
	f3OPMVV = 2
	f3OPMVX = 6
	f3OPCFG = 7
)

// arithEnc maps an arithmetic Op to its funct6 and category family.
type arithEnc struct {
	funct6 uint32
	opm    bool // OPM (integer multiply/divide/reduction) family
}

var arithEncodings = map[Op]arithEnc{
	OpAdd:        {0x00, false},
	OpSub:        {0x02, false},
	OpRSub:       {0x03, false},
	OpMinU:       {0x04, false},
	OpMin:        {0x05, false},
	OpMaxU:       {0x06, false},
	OpMax:        {0x07, false},
	OpAnd:        {0x09, false},
	OpOr:         {0x0A, false},
	OpXor:        {0x0B, false},
	OpRGather:    {0x0C, false},
	OpSlide1Up:   {0x0E, false},
	OpSlide1Down: {0x0F, false},
	OpMerge:      {0x17, false},
	OpMSeq:       {0x18, false},
	OpMSne:       {0x19, false},
	OpMSltU:      {0x1A, false},
	OpMSlt:       {0x1B, false},
	OpMSleU:      {0x1C, false},
	OpMSle:       {0x1D, false},
	OpMSgtU:      {0x1E, false},
	OpMSgt:       {0x1F, false},
	OpSAddU:      {0x20, false},
	OpSAdd:       {0x21, false},
	OpSSubU:      {0x22, false},
	OpSSub:       {0x23, false},
	OpSll:        {0x25, false},
	OpSrl:        {0x28, false},
	OpSra:        {0x29, false},
	OpMv:         {0x27, false}, // vmv.v.v / vmv.v.x (vs2 = 0)

	OpRedSum:  {0x00, true},
	OpRedMinU: {0x04, true},
	OpRedMin:  {0x05, true},
	OpRedMaxU: {0x06, true},
	OpRedMax:  {0x07, true},
	OpMvXS:    {0x10, true}, // VWXUNARY0
	OpMvSX:    {0x10, true}, // VRXUNARY0 (distinguished by category)
	OpDivU:    {0x20, true},
	OpDiv:     {0x21, true},
	OpRemU:    {0x22, true},
	OpRem:     {0x23, true},
	OpMulHU:   {0x24, true},
	OpMul:     {0x25, true},
	OpMacc:    {0x2D, true},
	OpVId:     {0x14, true}, // VMUNARY0, vs1 = 17
}

// OpMulHU aliases OpMulH for the encoding table's naming.
const OpMulHU = OpMulH

// memEnc describes a vector memory encoding: mop field and store flag.
type memEnc struct {
	mop   uint32
	store bool
}

var memEncodings = map[Op]memEnc{
	OpLoad:        {0, false},
	OpLoadStride:  {2, false},
	OpLoadIdx:     {3, false},
	OpStore:       {0, true},
	OpStoreStride: {2, true},
	OpStoreIdx:    {3, true},
}

// Reverse decode indexes, built once at init: keyed lookups instead of
// first-match scans over the encoding maps, whose iteration order Go
// randomizes per run.
var (
	arithDecode = make(map[arithEnc]Op, len(arithEncodings))
	memDecode   = make(map[memEnc]Op, len(memEncodings))
)

func init() {
	for op, ae := range arithEncodings {
		if prev, dup := arithDecode[ae]; dup {
			// The VWXUNARY0/VRXUNARY0 slot {0x10, opm} is legitimately shared
			// by OpMvXS and OpMvSX; Decode disambiguates by operand category,
			// so the stored op is irrelevant there — keep the smaller one so
			// the index itself is still deterministic.
			if prev < op {
				op = prev
			}
		}
		arithDecode[ae] = op
	}
	for op, me := range memEncodings {
		if prev, dup := memDecode[me]; dup {
			panic(fmt.Sprintf("isa: mem encoding %+v maps to both %d and %d", me, prev, op))
		}
		memDecode[me] = op
	}
}

// Encode renders the static part of a dynamic instruction as a 32-bit
// RISC-V instruction word. Runtime-only payload (scalar values, resolved
// addresses, the active VL) is not representable in the encoding and is
// ignored. OpNop and unknown operations return an error.
func Encode(in *Instr) (uint32, error) {
	vm := uint32(1) // vm=1 means unmasked in RVV
	if in.Masked {
		vm = 0
	}
	field := func(v int) uint32 { return uint32(v) & 0x1F }

	if me, ok := memEncodings[in.Op]; ok {
		// nf=0, mew=0, width=110 (32-bit elements per V0.7 SEW encoding).
		const width = 6
		data := field(in.Vd)
		if me.store {
			data = field(in.Vs1) // store data register lives in the vd slot
		}
		word := me.mop<<26 | vm<<25 | field(in.Vs2)<<20 | 0<<15 |
			uint32(width)<<12 | data<<7
		if me.store {
			return word | opcodeStoreFP, nil
		}
		return word | opcodeLoadFP, nil
	}

	switch in.Op {
	case OpSetVL:
		// vsetvli vd, rs1, e32 — the immediate vtype field encodes SEW=32.
		const vtypeE32 = 0x10
		return uint32(vtypeE32)<<20 | 0<<15 | uint32(f3OPCFG)<<12 | 0<<7 | opcodeVec, nil
	case OpFence:
		// vmfence is the paper's new instruction (§V-A); we assign it the
		// custom-0 opcode with a distinguishing funct3.
		return 0x0B | 1<<12, nil
	case OpNop:
		return 0, fmt.Errorf("isa: cannot encode a nop")
	}

	ae, ok := arithEncodings[in.Op]
	if !ok {
		return 0, fmt.Errorf("isa: no encoding for %v", in.Op)
	}
	var f3 uint32
	switch {
	case ae.opm && in.Kind == KindVX:
		f3 = f3OPMVX
	case ae.opm:
		f3 = f3OPMVV
	case in.Kind == KindVX:
		f3 = f3OPIVX
	default:
		f3 = f3OPIVV
	}
	if in.Op == OpMvSX {
		f3 = f3OPMVX // scalar-to-vector moves are OPMVX by construction
	}
	vs1 := field(in.Vs1)
	if in.Op == OpVId {
		vs1 = 17 // vid.v's VMUNARY0 selector
	}
	word := ae.funct6<<26 | vm<<25 | field(in.Vs2)<<20 | vs1<<15 |
		f3<<12 | field(in.Vd)<<7 | opcodeVec
	return word, nil
}

// Decode parses an instruction word produced by Encode back into its static
// instruction form.
func Decode(word uint32) (*Instr, error) {
	opc := word & 0x7F
	vm := word >> 25 & 1
	vd := int(word >> 7 & 0x1F)
	f3 := word >> 12 & 7
	vs1 := int(word >> 15 & 0x1F)
	vs2 := int(word >> 20 & 0x1F)

	switch opc {
	case opcodeLoadFP, opcodeStoreFP:
		mop := word >> 26 & 3
		store := opc == opcodeStoreFP
		op, ok := memDecode[memEnc{mop: mop, store: store}]
		if !ok {
			return nil, fmt.Errorf("isa: unknown vector memory mop %d", mop)
		}
		in := &Instr{Op: op, Masked: vm == 0}
		if store {
			in.Vs1 = vd
		} else {
			in.Vd = vd
		}
		in.Vs2 = vs2
		return in, nil
	case 0x0B:
		if word>>12&7 == 1 {
			return &Instr{Op: OpFence}, nil
		}
		return nil, fmt.Errorf("isa: unknown custom-0 instruction %#x", word)
	case opcodeVec:
		// fall through below
	default:
		return nil, fmt.Errorf("isa: opcode %#x is not a vector instruction", opc)
	}

	if f3 == f3OPCFG {
		return &Instr{Op: OpSetVL}, nil
	}
	opm := f3 == f3OPMVV || f3 == f3OPMVX
	vx := f3 == f3OPIVX || f3 == f3OPMVX
	funct6 := word >> 26 & 0x3F
	op, ok := arithDecode[arithEnc{funct6: funct6, opm: opm}]
	if !ok {
		return nil, fmt.Errorf("isa: unknown funct6 %#x (opm=%v)", funct6, opm)
	}
	// Disambiguate the shared VWXUNARY0/VRXUNARY0 slot by category.
	if funct6 == 0x10 && opm {
		if vx {
			op = OpMvSX
		} else {
			op = OpMvXS
		}
	}
	if funct6 == 0x14 && opm && vs1 != 17 {
		// Only vid.v (vs1 = VMUNARY0 selector 17) lives on this slot.
		return nil, fmt.Errorf("isa: unknown funct6 %#x (opm=%v)", funct6, opm)
	}
	kind := KindVV
	if vx {
		kind = KindVX
	}
	in := &Instr{Op: op, Kind: kind, Vd: vd, Vs1: vs1, Vs2: vs2, Masked: vm == 0}
	if op == OpVId {
		in.Vs1 = 0
	}
	return in, nil
}

// Disassemble renders a static instruction in assembler-like syntax.
func Disassemble(in *Instr) string {
	suffix := ""
	if in.Masked {
		suffix = ", v0.t"
	}
	switch {
	case in.Op == OpSetVL:
		return "vsetvli x0, x0, e32"
	case in.Op == OpFence:
		return "vmfence"
	case in.Op == OpMvXS:
		return fmt.Sprintf("vmv.x.s x_, v%d", in.Vs1)
	case in.Op == OpMvSX:
		return fmt.Sprintf("vmv.s.x v%d, x_", in.Vd)
	case isStoreOp(in.Op):
		return fmt.Sprintf("%s.v v%d, (x_)%s", in.Op, in.Vs1, suffix)
	case IsMemory(in.Op):
		return fmt.Sprintf("%s.v v%d, (x_)%s", in.Op, in.Vd, suffix)
	case in.Kind == KindVX:
		return fmt.Sprintf("%s.vx v%d, v%d, x_%s", in.Op, in.Vd, in.Vs1, suffix)
	default:
		return fmt.Sprintf("%s.vv v%d, v%d, v%d%s", in.Op, in.Vd, in.Vs1, in.Vs2, suffix)
	}
}

func isStoreOp(o Op) bool { return IsStore(o) }
