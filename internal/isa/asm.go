package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses one instruction in the syntax Disassemble emits,
// producing its static form. Scalar operands and addresses render as the
// placeholder "x_" and assemble to zero values — like Encode/Decode, this
// covers the register-register view of the instruction.
func Assemble(s string) (*Instr, error) {
	fields := strings.Fields(strings.ReplaceAll(s, ",", " "))
	if len(fields) == 0 {
		return nil, fmt.Errorf("isa: empty assembly line")
	}
	mnemonic := fields[0]
	operands := fields[1:]

	masked := false
	if n := len(operands); n > 0 && operands[n-1] == "v0.t" {
		masked = true
		operands = operands[:n-1]
	}

	vreg := func(tok string) (int, error) {
		if !strings.HasPrefix(tok, "v") {
			return 0, fmt.Errorf("isa: %q is not a vector register", tok)
		}
		r, err := strconv.Atoi(tok[1:])
		if err != nil || r < 0 || r > 31 {
			return 0, fmt.Errorf("isa: bad vector register %q", tok)
		}
		return r, nil
	}

	switch mnemonic {
	case "vmfence":
		return &Instr{Op: OpFence}, nil
	case "vsetvli":
		return &Instr{Op: OpSetVL}, nil
	case "vmv.x.s":
		if len(operands) != 2 {
			return nil, fmt.Errorf("isa: vmv.x.s needs 2 operands")
		}
		vs, err := vreg(operands[1])
		if err != nil {
			return nil, err
		}
		return &Instr{Op: OpMvXS, Vs1: vs}, nil
	case "vmv.s.x":
		if len(operands) != 2 {
			return nil, fmt.Errorf("isa: vmv.s.x needs 2 operands")
		}
		vd, err := vreg(operands[0])
		if err != nil {
			return nil, err
		}
		return &Instr{Op: OpMvSX, Vd: vd, Kind: KindVX}, nil
	}

	dot := strings.LastIndex(mnemonic, ".")
	if dot < 0 {
		return nil, fmt.Errorf("isa: mnemonic %q has no operand-kind suffix", mnemonic)
	}
	base, suffix := mnemonic[:dot], mnemonic[dot+1:]
	op, ok := mnemonicOps[base]
	if !ok || op == OpNop {
		return nil, fmt.Errorf("isa: unknown mnemonic %q", base)
	}

	in := &Instr{Op: op, Masked: masked}
	switch {
	case IsMemory(op):
		if suffix != "v" || len(operands) != 2 {
			return nil, fmt.Errorf("isa: malformed memory instruction %q", s)
		}
		r, err := vreg(operands[0])
		if err != nil {
			return nil, err
		}
		if IsStore(op) {
			in.Vs1 = r
		} else {
			in.Vd = r
		}
		return in, nil
	case suffix == "vv":
		if len(operands) != 3 {
			return nil, fmt.Errorf("isa: %q needs 3 register operands", mnemonic)
		}
		var err error
		if in.Vd, err = vreg(operands[0]); err != nil {
			return nil, err
		}
		if in.Vs1, err = vreg(operands[1]); err != nil {
			return nil, err
		}
		if in.Vs2, err = vreg(operands[2]); err != nil {
			return nil, err
		}
		if op == OpMerge {
			in.Masked = true
		}
		return in, nil
	case suffix == "vx":
		if len(operands) != 3 {
			return nil, fmt.Errorf("isa: %q needs vd, vs1, x_", mnemonic)
		}
		in.Kind = KindVX
		var err error
		if in.Vd, err = vreg(operands[0]); err != nil {
			return nil, err
		}
		if in.Vs1, err = vreg(operands[1]); err != nil {
			return nil, err
		}
		return in, nil
	case suffix == "v" && op == OpVId:
		if len(operands) != 1 {
			return nil, fmt.Errorf("isa: vid.v needs 1 register operand")
		}
		var err error
		if in.Vd, err = vreg(operands[0]); err != nil {
			return nil, err
		}
		return in, nil
	}
	return nil, fmt.Errorf("isa: unsupported suffix %q in %q", suffix, mnemonic)
}
