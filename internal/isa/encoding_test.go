package isa

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// encodableOps is every operation Encode supports, in numeric order so the
// round-trip trials below draw the same register sequence every run.
func encodableOps() []Op {
	ops := []Op{OpSetVL, OpFence}
	for op := range arithEncodings {
		ops = append(ops, op)
	}
	for op := range memEncodings {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	return ops
}

// TestEncodeDecodeRoundTrip checks that every encodable instruction's
// static form survives Encode → Decode, across random register choices and
// mask bits.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, op := range encodableOps() {
		op := op
		for trial := 0; trial < 8; trial++ {
			in := &Instr{
				Op:     op,
				Vd:     rng.Intn(32),
				Vs1:    rng.Intn(32),
				Vs2:    rng.Intn(32),
				Masked: rng.Intn(2) == 1,
			}
			if op == OpVId {
				in.Vs1 = 0
			}
			// Pick a legal operand kind for the family.
			switch op {
			case OpMvSX:
				in.Kind = KindVX
			case OpMvXS, OpRedSum, OpRedMin, OpRedMax, OpRedMinU, OpRedMaxU,
				OpMerge, OpRGather, OpVId:
				in.Kind = KindVV
			default:
				in.Kind = OperandKind(rng.Intn(2))
			}
			if IsMemory(op) || op == OpSetVL || op == OpFence {
				in.Kind = KindVV
				in.Masked = in.Masked && IsMemory(op)
			}

			word, err := Encode(in)
			if err != nil {
				t.Fatalf("Encode(%v): %v", op, err)
			}
			got, err := Decode(word)
			if err != nil {
				t.Fatalf("Decode(Encode(%v)) = %#x: %v", op, word, err)
			}
			if got.Op != in.Op {
				t.Fatalf("%v round-tripped to %v (word %#x)", in.Op, got.Op, word)
			}
			switch {
			case op == OpSetVL || op == OpFence:
				// Only the opcode is static.
			case IsStore(op):
				if got.Vs1 != in.Vs1 || got.Masked != in.Masked {
					t.Fatalf("%v: got %+v, want %+v", op, got, in)
				}
			case IsMemory(op):
				if got.Vd != in.Vd || got.Masked != in.Masked {
					t.Fatalf("%v: got %+v, want %+v", op, got, in)
				}
			case op == OpMvXS:
				if got.Vs1 != in.Vs1 {
					t.Fatalf("%v: vs1 %d != %d", op, got.Vs1, in.Vs1)
				}
			case op == OpMvSX:
				if got.Vd != in.Vd {
					t.Fatalf("%v: vd %d != %d", op, got.Vd, in.Vd)
				}
			default:
				if got.Vd != in.Vd || got.Vs1 != in.Vs1 || got.Kind != in.Kind || got.Masked != in.Masked {
					t.Fatalf("%v: got %+v, want %+v", op, got, in)
				}
				if in.Kind == KindVV && got.Vs2 != in.Vs2 && op != OpVId {
					t.Fatalf("%v: vs2 %d != %d", op, got.Vs2, in.Vs2)
				}
			}
		}
	}
}

func TestEncodeRejectsNop(t *testing.T) {
	if _, err := Encode(&Instr{Op: OpNop}); err == nil {
		t.Fatal("expected error")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, w := range []uint32{0x00000033 /* scalar add */, 0xFFFFFFFF, 0} {
		if _, err := Decode(w); err == nil {
			t.Fatalf("Decode(%#x) should fail", w)
		}
	}
}

func TestDisassemble(t *testing.T) {
	cases := []struct {
		in   *Instr
		want string
	}{
		{&Instr{Op: OpAdd, Kind: KindVV, Vd: 3, Vs1: 1, Vs2: 2}, "vadd.vv v3, v1, v2"},
		{&Instr{Op: OpMul, Kind: KindVX, Vd: 4, Vs1: 5}, "vmul.vx v4, v5, x_"},
		{&Instr{Op: OpAdd, Kind: KindVV, Vd: 3, Vs1: 1, Vs2: 2, Masked: true}, "vadd.vv v3, v1, v2, v0.t"},
		{&Instr{Op: OpLoad, Vd: 7}, "vle32.v v7, (x_)"},
		{&Instr{Op: OpStore, Vs1: 9}, "vse32.v v9, (x_)"},
		{&Instr{Op: OpFence}, "vmfence"},
		{&Instr{Op: OpMvXS, Vs1: 6}, "vmv.x.s x_, v6"},
	}
	for _, c := range cases {
		if got := Disassemble(c.in); got != c.want {
			t.Errorf("Disassemble = %q, want %q", got, c.want)
		}
	}
}

// TestDisassembleCoversAllEncodable smoke-checks the disassembler over the
// whole encodable set.
func TestDisassembleCoversAllEncodable(t *testing.T) {
	for _, op := range encodableOps() {
		in := &Instr{Op: op, Vd: 1, Vs1: 2, Vs2: 3}
		s := Disassemble(in)
		if s == "" || strings.Contains(s, "op(") {
			t.Errorf("Disassemble(%v) = %q", op, s)
		}
	}
}

// TestAssembleDisassembleRoundTrip: the assembler inverts Disassemble for
// the register-register view.
func TestAssembleDisassembleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, op := range encodableOps() {
		in := &Instr{Op: op, Vd: rng.Intn(32), Vs1: rng.Intn(32), Vs2: rng.Intn(32)}
		switch op {
		case OpMvSX:
			in.Kind = KindVX
		case OpMerge:
			in.Masked = true
		}
		asm := Disassemble(in)
		got, err := Assemble(asm)
		if err != nil {
			t.Fatalf("Assemble(%q): %v", asm, err)
		}
		if got.Op != in.Op {
			t.Fatalf("%q assembled to %v, want %v", asm, got.Op, in.Op)
		}
		if Disassemble(got) != asm {
			t.Fatalf("round trip changed text: %q -> %q", asm, Disassemble(got))
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	for _, s := range []string{
		"", "vadd", "vadd.vv v1, v2", "vadd.vv v1, v2, v99",
		"vbogus.vv v1, v2, v3", "vadd.zz v1, v2, v3", "vle32.v",
	} {
		if _, err := Assemble(s); err == nil {
			t.Errorf("Assemble(%q) should fail", s)
		}
	}
}

func TestAssembleMasked(t *testing.T) {
	in, err := Assemble("vadd.vv v3, v1, v2, v0.t")
	if err != nil {
		t.Fatal(err)
	}
	if !in.Masked || in.Vd != 3 {
		t.Fatalf("masked assembly wrong: %+v", in)
	}
}
