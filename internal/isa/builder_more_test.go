package isa

import (
	"testing"

	"repro/internal/mem"
)

// TestBuilderFullSurface exercises every intrinsic against its expected
// semantics on a small vector.
func TestBuilderFullSurface(t *testing.T) {
	b := NewBuilder(mem.NewFlat(1<<20), 8, nil)
	b.SetVL(8)

	set := func(r int, vals ...uint32) {
		copy(b.VReg(r), vals)
	}
	wantv := func(r int, vals ...uint32) {
		t.Helper()
		for i, w := range vals {
			if got := b.VReg(r)[i]; got != w {
				t.Fatalf("v%d[%d] = %#x, want %#x", r, i, got, w)
			}
		}
	}

	set(1, 10, 20, 0x80000000, 0xFFFFFFFF, 5, 6, 7, 8)
	set(2, 3, 2, 1, 2, 5, 9, 2, 1)

	b.Sub(3, 1, 2)
	wantv(3, 7, 18)
	b.SubVX(3, 1, 1)
	wantv(3, 9, 19)
	b.RSubVX(3, 1, 100)
	wantv(3, 90, 80)
	b.AndVX(3, 1, 0xF)
	wantv(3, 10&0xF, 20&0xF)
	b.OrVX(3, 1, 0x100)
	wantv(3, 10|0x100)
	b.XorVX(3, 1, 0xFF)
	wantv(3, 10^0xFF)
	b.Or(3, 1, 2)
	wantv(3, 11, 22)
	b.Xor(3, 1, 2)
	wantv(3, 9, 22)

	b.Min(3, 1, 2)
	wantv(3, 3, 2, 0x80000000) // signed: -2^31 < 1
	b.Max(3, 1, 2)
	wantv(3, 10, 20, 1)
	b.MinU(3, 1, 2)
	wantv(3, 3, 2, 1)
	b.MaxU(3, 1, 2)
	wantv(3, 10, 20, 0x80000000)
	b.MaxVX(3, 1, 7)
	wantv(3, 10, 20, 7, 7)

	b.SllVX(3, 1, 2)
	wantv(3, 40, 80)
	b.SrlVX(3, 1, 1)
	wantv(3, 5, 10, 0x40000000)
	b.SraVX(3, 1, 1)
	wantv(3, 5, 10, 0xC0000000)
	b.Sll(3, 1, 2)
	wantv(3, 10<<3, 20<<2)
	b.Srl(3, 1, 2)
	wantv(3, 10>>3, 20>>2)

	b.MulVX(3, 1, 3)
	wantv(3, 30, 60)
	b.MulH(3, 1, 2)
	wantv(3, 0, 0)
	b.MaccVX(3, 2, 2) // 0 + 2*3, 0 + 2*2 on top of previous zeros... v3 currently {0,0,...}
	wantv(3, 6, 4)
	b.DivU(3, 1, 2)
	wantv(3, 3, 10)
	b.Div(3, 1, 2)
	wantv(3, 3, 10)
	b.DivVX(3, 1, 2)
	wantv(3, 5, 10)

	b.MSeq(3, 1, 2)
	wantv(3, 0, 0)
	b.MSne(3, 1, 2)
	wantv(3, 1, 1)
	b.MSlt(3, 1, 2)
	wantv(3, 0, 0, 1) // signed
	b.MSltU(3, 1, 2)
	wantv(3, 0, 0, 0)
	b.MSltVX(3, 1, 15)
	wantv(3, 1, 0, 1)
	b.MSgtVX(3, 1, 15)
	wantv(3, 0, 1, 0)
	b.MSltUVX(3, 1, 15)
	wantv(3, 1, 0, 0)
	b.MSgtUVX(3, 1, 15)
	wantv(3, 0, 1, 1)
	b.MSeqVX(3, 1, 20)
	wantv(3, 0, 1, 0)

	b.MvVX(3, 42)
	wantv(3, 42, 42)
	b.Mv(4, 3)
	wantv(4, 42, 42)
	b.MvSX(4, 7)
	wantv(4, 7, 42)
	if got := b.MvXS(4); got != 7 {
		t.Fatalf("MvXS = %d", got)
	}

	// Reductions.
	b.VId(5)
	b.MvSX(6, 100)
	b.RedMax(7, 5, 6)
	wantv(7, 100)
	b.MvSX(6, 3)
	b.RedMax(7, 5, 6)
	wantv(7, 7)
	b.RedMin(7, 5, 6)
	wantv(7, 0)
	b.RedMinU(7, 5, 6)
	wantv(7, 0)

	// Strided/indexed stores.
	base := b.Mem.AllocU32(64)
	b.VId(5)
	b.StoreStride(5, base, 8)
	if b.Mem.LoadU32(base+16) != 2 {
		t.Fatal("StoreStride wrong")
	}
	b.SllVX(6, 5, 2) // byte offsets 0,4,8,...
	b.StoreIdx(5, base+128, 6)
	if b.Mem.LoadU32(base+128+12) != 3 {
		t.Fatal("StoreIdx wrong")
	}
	b.Fence()
}

// TestVLBoundaryZeroElements: SetVL(0) leaves operations as no-ops.
func TestVLBoundaryZeroElements(t *testing.T) {
	b := NewBuilder(mem.NewFlat(1<<20), 8, nil)
	copy(b.VReg(3), []uint32{9, 9})
	b.SetVL(0)
	b.MvVX(3, 1)
	if b.VReg(3)[0] != 9 {
		t.Fatal("VL=0 operation touched elements")
	}
}
