package isa

// Instr is one dynamic vector instruction as seen by a timing model.
type Instr struct {
	Op     Op
	Kind   OperandKind
	Vd     int
	Vs1    int
	Vs2    int
	Scalar uint32 // scalar operand or immediate for KindVX
	Masked bool
	VL     int // active vector length at issue

	// Memory operands.
	Addr   uint64   // base address (unit-stride and strided)
	Stride int64    // byte stride (strided)
	Addrs  []uint64 // resolved element addresses (indexed only)
}

// EventKind distinguishes trace events.
type EventKind int

// Trace event kinds. Scalar events are batched: N consecutive simple ops
// collapse into one event with a count, which keeps traces compact without
// losing timing information for width-limited core models.
const (
	EvScalar    EventKind = iota // N simple integer/branch ops
	EvScalarMul                  // N multiply/divide ops
	EvLoad                       // one scalar load at Addr
	EvStore                      // one scalar store at Addr
	EvVector                     // one vector instruction
)

// Event is one entry of the dynamic trace.
type Event struct {
	Kind EventKind
	N    int
	Addr uint64
	V    *Instr
}

// Sink consumes the dynamic trace as it is generated. Timing models
// implement Sink; a nil sink runs the workload functionally only.
type Sink interface {
	Emit(ev Event)
}

// Mix accumulates the instruction characterization of Table IV.
type Mix struct {
	ScalarOps   uint64 // dynamic scalar instructions
	ScalarMuls  uint64
	ScalarLoads uint64
	ScalarStore uint64

	VectorInstrs uint64               // dynamic vector instructions
	VectorOps    uint64               // Σ active VL over vector instructions
	Predicated   uint64               // masked vector instructions
	ByClass      [ClassIdx + 1]uint64 // dynamic count per class
}

// DynamicInstrs reports total dynamic instructions (scalar + vector).
func (m Mix) DynamicInstrs() uint64 {
	return m.ScalarOps + m.ScalarMuls + m.ScalarLoads + m.ScalarStore + m.VectorInstrs
}

// TotalOps reports Table IV's DOp: scalar instructions plus vector
// instructions weighted by their active vector length.
func (m Mix) TotalOps() uint64 {
	return m.ScalarOps + m.ScalarMuls + m.ScalarLoads + m.ScalarStore + m.VectorOps
}

// VectorPct reports VI%: the share of dynamic instructions that are vector.
func (m Mix) VectorPct() float64 {
	d := m.DynamicInstrs()
	if d == 0 {
		return 0
	}
	return float64(m.VectorInstrs) / float64(d)
}

// VectorOpPct reports VO%: the share of operations performed by the vector
// unit.
func (m Mix) VectorOpPct() float64 {
	t := m.TotalOps()
	if t == 0 {
		return 0
	}
	return float64(m.VectorOps) / float64(t)
}

// LogicalParallelism reports VPar: total ops per dynamic instruction.
func (m Mix) LogicalParallelism() float64 {
	d := m.DynamicInstrs()
	if d == 0 {
		return 0
	}
	return float64(m.TotalOps()) / float64(d)
}
