package isa

// Datapath mirrors the builder's vector register file on an alternate
// functional substrate — in practice the bit-level EVE machine
// (internal/uprog over internal/circuits over internal/sram), optionally
// with faults armed (internal/faults).
//
// The builder remains the reference semantics: it computes every result in
// its golden registers first, then hands the instruction to the datapath
// and adopts the substrate's destination contents as the architectural
// result. A fault-free substrate must reproduce the golden values exactly
// (the micro-program correctness tests in internal/uprog hold that
// equivalence per operation); a faulty substrate makes its corruption
// architecturally visible to the kernel and its checker.
//
// Values leave the vector unit only through the builder — stores, scalar
// moves, gather/scatter addressing and VRU inputs — and the builder
// refreshes its mirror from the datapath at each of those points, so fault
// state that accumulated in a register since it was written is observed,
// not the stale mirror.
type Datapath interface {
	// Exec executes in on the substrate and returns the destination
	// register's live contents (HWVL elements). golden is the
	// builder-computed destination state; substrates install it directly
	// for operations the vector arrays do not execute natively (loads
	// arriving through the DTUs, VRU results, element-index streams).
	Exec(in *Instr, golden []uint32) []uint32
	// Read returns the live contents of vector register r (HWVL elements).
	Read(r int) []uint32
}
