// Package cpu provides trace-driven timing models of the scalar cores of
// Table III: the single-issue in-order core (IO) and the 8-wide out-of-order
// core (O3). Both are instances of one windowed limit model: instructions
// issue at up to Width per cycle, in-flight instructions are bounded by a
// reorder window, and memory operations resolve through the timed cache
// hierarchy — so an O3 core overlaps misses up to the window and MSHR
// limits, while the in-order core (window of 1) exposes every load's full
// latency, the behavioral difference the paper's baselines hinge on.
package cpu

import (
	"repro/internal/mem"
	"repro/internal/probe"
)

// Config parameterizes a core model.
type Config struct {
	Name       string
	Width      int   // issue width (instructions per cycle)
	Window     int   // in-flight instruction window (ROB)
	MemPorts   int   // memory operations issued per cycle (LSU ports)
	MulLatency int64 // integer multiply/divide latency
	// ClockScale stretches the core's own cycle time relative to the
	// base-clock time unit the memory system uses. EVE-16/32 slow the whole
	// chip's SRAM-limited clock (§VI-B, §VII-B: the cycle-time penalty
	// "affects its scalar performance"); memory latencies are absolute and
	// unaffected. Zero means 1.0.
	ClockScale float64
}

func (c Config) scale() float64 {
	if c.ClockScale <= 0 {
		return 1
	}
	return c.ClockScale
}

// Table III core configurations. The in-order core is single-issue but its
// L1D has 16 MSHRs (Table III), so a small window lets independent hits
// pipeline and adjacent misses overlap slightly, as a real stall-on-use
// in-order pipeline does; the O3 core overlaps misses across its full
// reorder window.
var (
	IOConfig = Config{Name: "IO", Width: 1, Window: 4, MemPorts: 1, MulLatency: 3}
	O3Config = Config{Name: "O3", Width: 8, Window: 192, MemPorts: 2, MulLatency: 3}
)

// windowEntry compresses consecutive completions: count instructions whose
// completion time is ≤ done.
type windowEntry struct {
	count int
	done  int64
}

// Core is the trace-driven core model.
type Core struct {
	cfg Config
	mh  *mem.Hierarchy

	issue    float64 // sub-cycle issue clock
	memIssue float64 // sub-cycle LSU-port clock
	maxDone  int64   // latest completion so far
	window   []windowEntry
	head     int // index of the oldest live window entry
	inFlight int

	Insts  uint64
	Loads  uint64
	Stores uint64

	loadLat probe.DistValue // load-to-use latency through the hierarchy
	tr      probe.Emitter
}

// SetTracer attaches a per-run event tracer; the core traces under the
// "core" component path. A nil tracer disables emission entirely.
func (c *Core) SetTracer(tr probe.Tracer) { c.tr = probe.NewEmitter(tr, "core") }

// ProbeStats implements probe.Source.
func (c *Core) ProbeStats(s *probe.Scope) {
	s.CounterU("insts", c.Insts)
	s.CounterU("loads", c.Loads)
	s.CounterU("stores", c.Stores)
	s.Counter("cycles", c.Now())
	s.Dist("load_latency", c.loadLat)
}

// ProbeGauges implements probe.GaugeSource: how many operations the
// reorder window holds in flight at cycle now.
func (c *Core) ProbeGauges(s *probe.Scope, now int64) {
	s.Counter("inflight", int64(c.inFlight))
}

// New returns a core over the given memory hierarchy.
func New(cfg Config, mh *mem.Hierarchy) *Core {
	return &Core{cfg: cfg, mh: mh}
}

// Config returns the core's configuration.
func (c *Core) Config() Config { return c.cfg }

// Now reports the core's current time: the cycle by which everything issued
// so far has both issued and completed.
func (c *Core) Now() int64 {
	t := int64(c.issue)
	if c.maxDone > t {
		t = c.maxDone
	}
	return t
}

// IssueTime reports the raw issue clock, before completion draining — the
// time the next instruction could enter the pipeline.
func (c *Core) IssueTime() int64 { return int64(c.issue) }

// AdvanceTo stalls the core until at least time t (used when the commit
// stage blocks on a vector-engine response, §V-A).
func (c *Core) AdvanceTo(t int64) {
	if float64(t) > c.issue {
		c.issue = float64(t)
	}
	if t > c.maxDone {
		c.maxDone = t
	}
}

// reserve admits n instructions into the window, stalling the issue clock
// while the window is full of incomplete instructions, and returns the issue
// time of the batch's first instruction.
func (c *Core) reserve(n int) int64 {
	// Drain completed entries as of the current issue clock.
	for c.head < len(c.window) && c.window[c.head].done <= int64(c.issue) {
		c.inFlight -= c.window[c.head].count
		c.head++
	}
	// If admitting n would exceed the window, wait for the oldest entries.
	for c.inFlight+n > c.cfg.Window && c.head < len(c.window) {
		e := c.window[c.head]
		if float64(e.done) > c.issue {
			c.issue = float64(e.done)
		}
		c.inFlight -= e.count
		c.head++
	}
	// Compact the drained prefix so the backing array can be reused.
	if c.head > 1024 && c.head*2 > len(c.window) {
		//evelint:allow hotalloc -- copies into the existing backing array; never grows
		c.window = append(c.window[:0], c.window[c.head:]...)
		c.head = 0
	}
	return int64(c.issue)
}

// retire records a batch's completion in the window.
func (c *Core) retire(n int, done int64) {
	//evelint:allow hotalloc -- amortized: reserve's compaction reuses the array, so growth converges
	c.window = append(c.window, windowEntry{count: n, done: done})
	c.inFlight += n
	if done > c.maxDone {
		c.maxDone = done
	}
}

// Ops executes n simple single-cycle instructions.
func (c *Core) Ops(n int) {
	if n <= 0 {
		return
	}
	c.Insts += uint64(n)
	at := c.reserve(n)
	c.issue += float64(n) * c.cfg.scale() / float64(c.cfg.Width)
	c.retire(n, int64(c.issue)+1)
	if c.tr.On() {
		c.tr.Emit(probe.Event{Kind: probe.KInstr, Name: "ops", Begin: at, End: int64(c.issue), Aux: int64(n)})
	}
}

// Muls executes n multiply/divide instructions.
func (c *Core) Muls(n int) {
	if n <= 0 {
		return
	}
	c.Insts += uint64(n)
	at := c.reserve(n)
	c.issue += float64(n) * c.cfg.scale() / float64(c.cfg.Width)
	c.retire(n, int64(float64(c.cfg.MulLatency)*c.cfg.scale())+int64(c.issue))
	if c.tr.On() {
		c.tr.Emit(probe.Event{Kind: probe.KInstr, Name: "muls", Begin: at, End: int64(c.issue), Aux: int64(n)})
	}
}

// memReserve rates memory operations through the LSU ports on top of the
// normal issue reservation, returning the access time.
func (c *Core) memReserve() int64 {
	at := c.reserve(1)
	c.issue += c.cfg.scale() / float64(c.cfg.Width)
	ports := c.cfg.MemPorts
	if ports <= 0 {
		ports = 1
	}
	if c.memIssue < c.issue {
		c.memIssue = c.issue
	}
	c.memIssue += c.cfg.scale() / float64(ports)
	// Port pressure delays the access (and, through the window, eventually
	// the front end) without stalling independent non-memory work.
	if t := int64(c.memIssue); t > at {
		return t
	}
	return at
}

// Load executes one scalar load through the hierarchy.
func (c *Core) Load(addr uint64) {
	c.Insts++
	c.Loads++
	at := c.memReserve()
	r := c.mh.CoreAccess(addr, false, at)
	c.loadLat.Observe(r.Done - at)
	c.retire(1, r.Done)
	c.tr.SpanAddr(probe.KInstr, "load", at, r.Done, addr)
}

// Store executes one scalar store; stores retire from a write buffer without
// stalling, but still occupy cache bandwidth.
func (c *Core) Store(addr uint64) {
	c.Insts++
	c.Stores++
	at := c.memReserve()
	c.mh.CoreAccess(addr, true, at)
	c.retire(1, at+1)
	c.tr.SpanAddr(probe.KInstr, "store", at, at+1, addr)
}
