package cpu

import (
	"testing"

	"repro/internal/mem"
)

func TestInOrderOverlapBoundedByWindow(t *testing.T) {
	// The IO core's small window allows a little memory-level parallelism
	// (its L1D has 16 MSHRs, Table III) but a burst of cold misses must
	// still serialize in groups: 16 misses take several times one miss.
	one := func() int64 {
		mh := mem.NewHierarchy()
		c := New(IOConfig, mh)
		c.Load(0x10000)
		return c.Now()
	}()
	many := func() int64 {
		mh := mem.NewHierarchy()
		c := New(IOConfig, mh)
		for i := 0; i < 16; i++ {
			c.Load(uint64(0x10000 + i*4096))
		}
		return c.Now()
	}()
	if many < 3*one {
		t.Fatalf("16 cold misses on IO took %d cycles vs %d for one; window should bound overlap", many, one)
	}
}

func TestOutOfOrderOverlapsLoads(t *testing.T) {
	run := func(cfg Config) int64 {
		mh := mem.NewHierarchy()
		c := New(cfg, mh)
		for i := 0; i < 16; i++ {
			c.Load(uint64(0x10000 + i*4096))
		}
		return c.Now()
	}
	io, o3 := run(IOConfig), run(O3Config)
	if o3*2 > io {
		t.Fatalf("O3 should overlap misses far more than IO: IO=%d cycles, O3=%d cycles", io, o3)
	}
}

func TestIssueWidth(t *testing.T) {
	mh := mem.NewHierarchy()
	io := New(IOConfig, mh)
	o3 := New(O3Config, mh)
	io.Ops(800)
	o3.Ops(800)
	if got := io.Now(); got < 800 {
		t.Fatalf("IO 800 ops in %d cycles; must be ≥ 800", got)
	}
	if got := o3.Now(); got > 110 {
		t.Fatalf("O3 800 ops in %d cycles; 8-wide should take ~100", got)
	}
}

func TestWindowLimitsOverlap(t *testing.T) {
	// A tiny window forces even a wide core to expose load latency.
	narrow := Config{Name: "narrow", Width: 8, Window: 2, MulLatency: 3}
	run := func(cfg Config) int64 {
		mh := mem.NewHierarchy()
		c := New(cfg, mh)
		for i := 0; i < 8; i++ {
			c.Load(uint64(0x40000 + i*4096))
		}
		return c.Now()
	}
	if narrowT, wide := run(narrow), run(O3Config); narrowT <= wide {
		t.Fatalf("window=2 (%d cycles) should be slower than window=192 (%d)", narrowT, wide)
	}
}

func TestMulLatency(t *testing.T) {
	mh := mem.NewHierarchy()
	c := New(IOConfig, mh)
	c.Muls(10)
	if got := c.Now(); got < 10+IOConfig.MulLatency {
		t.Fatalf("10 muls in %d cycles", got)
	}
	if c.Insts != 10 {
		t.Fatalf("inst count = %d", c.Insts)
	}
}

func TestStoresDoNotStall(t *testing.T) {
	mh := mem.NewHierarchy()
	c := New(IOConfig, mh)
	for i := 0; i < 8; i++ {
		c.Store(uint64(0x50000 + i*4096))
	}
	// Stores retire from the write buffer: roughly one cycle each even for
	// cold lines.
	if got := c.Now(); got > 40 {
		t.Fatalf("8 stores took %d cycles; write buffer should hide misses", got)
	}
}

func TestCachedReloadFast(t *testing.T) {
	mh := mem.NewHierarchy()
	c := New(IOConfig, mh)
	c.Load(0x1234)
	cold := c.Now()
	c.Load(0x1234)
	if warm := c.Now() - cold; warm > 5 {
		t.Fatalf("warm reload took %d cycles; should be an L1 hit", warm)
	}
}

func TestAdvanceTo(t *testing.T) {
	c := New(IOConfig, mem.NewHierarchy())
	c.Ops(5)
	c.AdvanceTo(1000)
	if c.Now() != 1000 {
		t.Fatalf("Now = %d after AdvanceTo(1000)", c.Now())
	}
	c.AdvanceTo(500) // never goes backward
	if c.Now() != 1000 {
		t.Fatal("AdvanceTo moved time backward")
	}
}
