package vengine

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
)

func TestIVExpandsStridedToScalarAccesses(t *testing.T) {
	mh := mem.NewHierarchy()
	core := cpu.New(cpu.O3Config, mh)
	iv := NewIV(core)
	if iv.HWVL() != 4 {
		t.Fatal("IV HWVL must be 4")
	}
	iv.Handle(&isa.Instr{Op: isa.OpLoadStride, Vd: 1, Addr: 0x1000, Stride: 4096, VL: 4}, 0)
	if core.Loads != 4 {
		t.Fatalf("strided load through LSQ issued %d scalar loads, want 4", core.Loads)
	}
	iv.Handle(&isa.Instr{Op: isa.OpLoad, Vd: 1, Addr: 0x2000, VL: 4}, 0)
	if core.Loads != 5 {
		t.Fatalf("aligned unit-stride VL=4 should be one LSQ access, got %d", core.Loads-4)
	}
}

func TestDVOverlapsComputeAndMemory(t *testing.T) {
	mk := func(withLoad, withMul bool) int64 {
		mh := mem.NewHierarchy()
		d := NewDV(DefaultDVConfig(), mh.L2)
		if withLoad {
			d.Handle(&isa.Instr{Op: isa.OpLoad, Vd: 1, Addr: 0x40000, VL: 64}, 0)
		}
		if withMul {
			d.Handle(&isa.Instr{Op: isa.OpMul, Kind: isa.KindVV, Vd: 4, Vs1: 5, Vs2: 6, VL: 64}, 0)
		}
		return d.Drain()
	}
	loadOnly, mulOnly, both := mk(true, false), mk(false, true), mk(true, true)
	if both >= loadOnly+mulOnly {
		t.Errorf("DV failed to overlap: both=%d load=%d mul=%d", both, loadOnly, mulOnly)
	}
}

func TestDVDependencySerializes(t *testing.T) {
	mh := mem.NewHierarchy()
	d := NewDV(DefaultDVConfig(), mh.L2)
	d.Handle(&isa.Instr{Op: isa.OpLoad, Vd: 1, Addr: 0x40000, VL: 64}, 0)
	d.Handle(&isa.Instr{Op: isa.OpAdd, Kind: isa.KindVV, Vd: 2, Vs1: 1, Vs2: 1, VL: 64}, 0)
	dep := d.Drain()

	mh2 := mem.NewHierarchy()
	d2 := NewDV(DefaultDVConfig(), mh2.L2)
	d2.Handle(&isa.Instr{Op: isa.OpLoad, Vd: 1, Addr: 0x40000, VL: 64}, 0)
	d2.Handle(&isa.Instr{Op: isa.OpAdd, Kind: isa.KindVV, Vd: 2, Vs1: 3, Vs2: 3, VL: 64}, 0)
	indep := d2.Drain()
	if dep <= indep {
		t.Errorf("dependent add (%d) should finish no earlier than independent (%d)", dep, indep)
	}
}

func TestDVPipesRunInParallel(t *testing.T) {
	mh := mem.NewHierarchy()
	d := NewDV(DefaultDVConfig(), mh.L2)
	// Independent simple and complex ops use different pipes.
	d.Handle(&isa.Instr{Op: isa.OpAdd, Kind: isa.KindVV, Vd: 1, Vs1: 2, Vs2: 3, VL: 64}, 0)
	d.Handle(&isa.Instr{Op: isa.OpMul, Kind: isa.KindVV, Vd: 4, Vs1: 5, Vs2: 6, VL: 64}, 0)
	par := d.Drain()
	// Two adds contend for the simple pipe.
	mh2 := mem.NewHierarchy()
	d2 := NewDV(DefaultDVConfig(), mh2.L2)
	d2.Handle(&isa.Instr{Op: isa.OpAdd, Kind: isa.KindVV, Vd: 1, Vs1: 2, Vs2: 3, VL: 64}, 0)
	d2.Handle(&isa.Instr{Op: isa.OpAdd, Kind: isa.KindVV, Vd: 4, Vs1: 5, Vs2: 6, VL: 64}, 0)
	same := d2.Drain()
	if par > same {
		t.Errorf("different pipes (%d) should be no slower than same pipe (%d)", par, same)
	}
}

func TestDVFenceAndQueue(t *testing.T) {
	mh := mem.NewHierarchy()
	d := NewDV(DefaultDVConfig(), mh.L2)
	d.Handle(&isa.Instr{Op: isa.OpStore, Vs1: 1, Addr: 0x50000, VL: 64}, 0)
	block := d.Handle(&isa.Instr{Op: isa.OpFence, VL: 64}, 0)
	if block == 0 {
		t.Error("fence should block the core until drain")
	}
	blocked := false
	for i := 0; i < 64; i++ {
		if d.Handle(&isa.Instr{Op: isa.OpDiv, Kind: isa.KindVV, Vd: 3, Vs1: 1, Vs2: 2, VL: 64}, 0) > 0 {
			blocked = true
		}
	}
	if !blocked {
		t.Error("queue back-pressure never engaged")
	}
}

// TestIVFullInstructionSurface drives the remaining IV translation paths.
func TestIVFullInstructionSurface(t *testing.T) {
	mh := mem.NewHierarchy()
	core := cpu.New(cpu.O3Config, mh)
	iv := NewIV(core)
	addrs := []uint64{0x1000, 0x2000, 0x3000, 0x4000}
	instrs := []*isa.Instr{
		{Op: isa.OpSetVL, VL: 4},
		{Op: isa.OpStoreStride, Vs1: 1, Addr: 0x9000, Stride: 256, VL: 4},
		{Op: isa.OpLoadIdx, Vd: 2, Addrs: addrs, VL: 4},
		{Op: isa.OpStoreIdx, Vs1: 2, Addrs: addrs, VL: 4},
		{Op: isa.OpDiv, Kind: isa.KindVV, Vd: 3, Vs1: 1, Vs2: 2, VL: 4},
		{Op: isa.OpRedSum, Vd: 4, Vs1: 3, Vs2: 3, VL: 4},
		{Op: isa.OpMvXS, Vs1: 4, VL: 4},
		{Op: isa.OpFence, VL: 4},
		{Op: isa.OpLoad, Vd: 5, Addr: 0x5001, VL: 4}, // line-crossing unit load
	}
	before := core.Insts
	for _, in := range instrs {
		if got := iv.Handle(in, 0); got != 0 {
			t.Fatalf("IV should never block the core, got %d", got)
		}
	}
	if core.Insts <= before {
		t.Fatal("IV issued no core work")
	}
	if iv.Drain() != 0 {
		t.Fatal("IV has no private clock")
	}
}

// TestDVCrossElementAndControl covers DV's remaining instruction classes.
func TestDVCrossElementAndControl(t *testing.T) {
	mh := mem.NewHierarchy()
	d := NewDV(DefaultDVConfig(), mh.L2)
	d.Handle(&isa.Instr{Op: isa.OpSetVL, VL: 64}, 0)
	d.Handle(&isa.Instr{Op: isa.OpRGather, Vd: 1, Vs1: 2, Vs2: 3, VL: 64}, 0)
	d.Handle(&isa.Instr{Op: isa.OpRedSum, Vd: 4, Vs1: 1, Vs2: 1, VL: 64}, 0)
	d.Handle(&isa.Instr{Op: isa.OpMvSX, Vd: 5, VL: 64}, 0)
	block := d.Handle(&isa.Instr{Op: isa.OpMvXS, Vs1: 4, VL: 64}, 0)
	if block <= 0 {
		t.Fatal("vmv.x.s must block on DV")
	}
	d.Handle(&isa.Instr{Op: isa.OpLoadIdx, Vd: 6, Vs2: 3,
		Addrs: []uint64{0x100, 0x2100, 0x4100}, VL: 3}, 0)
	d.Handle(&isa.Instr{Op: isa.OpStoreIdx, Vs1: 6, Vs2: 3,
		Addrs: []uint64{0x100, 0x2100, 0x4100}, VL: 3}, 0)
	d.Handle(&isa.Instr{Op: isa.OpAdd, Kind: isa.KindVV, Vd: 7, Vs1: 6, Vs2: 6, Masked: true, VL: 64}, 0)
	if got := d.Drain(); got <= 0 {
		t.Fatal("DV produced no time")
	}
	if d.Instrs != 8 {
		t.Fatalf("DV saw %d instructions", d.Instrs)
	}
}
