// Package vengine provides the two baseline vector units of Table III: the
// integrated vector unit (IV — short vectors executed inside the O3
// pipeline, loosely modeled after mobile-class SVE implementations) and the
// decoupled vector engine (DV — long vectors on dedicated pipes with its own
// VMU, loosely modeled after Tarantula, Fig 5).
package vengine

import (
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/probe"
)

// Engine is the interface the system simulator drives: committed vector
// instructions arrive with the core's current time; Handle returns when the
// core must wait until (0 for none); Drain completes outstanding work and
// returns the engine's finish time (0 for engines with no private clock).
type Engine interface {
	HWVL() int
	Handle(in *isa.Instr, arrival int64) int64
	Drain() int64
}

// IV models the integrated vector unit: 4-element vectors, out-of-order
// issue sharing the control core's pipes and load-store queue (Table III).
// Its timing is entirely the host core's: each vector instruction becomes
// core μops, and constant-stride/indexed memory operations decompose into
// scalar accesses through the LSQ (§VII-A).
type IV struct {
	core *cpu.Core

	Instrs uint64
}

// ProbeStats implements probe.Source. The IV's timing lives entirely in the
// host core, so only the vector instruction count is its own.
func (v *IV) ProbeStats(s *probe.Scope) { s.CounterU("instrs", v.Instrs) }

// IVHWVL is the integrated unit's hardware vector length.
const IVHWVL = 4

// NewIV wraps the control core.
func NewIV(core *cpu.Core) *IV { return &IV{core: core} }

// HWVL implements Engine.
func (v *IV) HWVL() int { return IVHWVL }

// Drain implements Engine; the IV has no private clock.
func (v *IV) Drain() int64 { return 0 }

// Handle implements Engine by expanding the vector instruction into core
// operations.
func (v *IV) Handle(in *isa.Instr, _ int64) int64 {
	v.Instrs++
	switch {
	case in.Op == isa.OpSetVL || in.Op == isa.OpFence ||
		in.Op == isa.OpMvXS || in.Op == isa.OpMvSX:
		v.core.Ops(1)
	case in.Op == isa.OpLoad:
		// A 4-element unit-stride access spans at most two lines through
		// the shared LSQ.
		v.core.Load(in.Addr)
		if in.Addr/mem.LineBytes != (in.Addr+uint64(4*in.VL)-1)/mem.LineBytes {
			v.core.Load(in.Addr + uint64(4*in.VL) - 1)
		}
	case in.Op == isa.OpStore:
		v.core.Store(in.Addr)
	case in.Op == isa.OpLoadStride:
		// "Constant strides and indexed memory operations are decomposed to
		// micro-operations and handled as scalar loads/stores by the
		// load-store queue" (§VII-A): one decomposition μop plus one LSQ
		// access per element.
		v.core.Ops(1)
		for i := 0; i < in.VL; i++ {
			v.core.Load(uint64(int64(in.Addr) + int64(i)*in.Stride))
		}
	case in.Op == isa.OpStoreStride:
		v.core.Ops(1)
		for i := 0; i < in.VL; i++ {
			v.core.Store(uint64(int64(in.Addr) + int64(i)*in.Stride))
		}
	case in.Op == isa.OpLoadIdx:
		v.core.Ops(1)
		for _, a := range in.Addrs {
			v.core.Load(a)
		}
	case in.Op == isa.OpStoreIdx:
		v.core.Ops(1)
		for _, a := range in.Addrs {
			v.core.Store(a)
		}
	case isa.Classify(in.Op) == isa.ClassIMul:
		v.core.Muls(1)
	case isa.Classify(in.Op) == isa.ClassXE:
		// Reductions and permutes serialize across the short vector.
		v.core.Ops(1 + in.VL/2)
	default:
		v.core.Ops(1)
	}
	return 0
}

// DV pipe indices (Table III: simple integer, pipelined complex integer,
// iterative complex/cross-element, memory).
const (
	pipeSimple = iota
	pipeComplex
	pipeIter
	pipeMem
	numPipes
)

// DVConfig parameterizes the decoupled engine.
type DVConfig struct {
	HWVL       int
	Lanes      int // parallel lanes per execution pipe
	QueueDepth int
	PipeDepth  int64 // pipeline fill latency
}

// DefaultDVConfig is Table III's DV: 64-element vectors, in-order issue,
// four execution pipes. The engine is "loosely based on Tarantula" (§VII-A),
// which drove 16 lanes per pipe.
func DefaultDVConfig() DVConfig {
	return DVConfig{HWVL: 64, Lanes: 16, QueueDepth: 16, PipeDepth: 4}
}

// DV models the decoupled vector engine: private clock, in-order issue onto
// four pipes with per-register scoreboarding, and a VMU issuing
// cacheline-aligned requests into the L2 (§VII-A: one cycle per request
// generation with TLB hits assumed).
type DV struct {
	cfg DVConfig
	l2  mem.Level

	clock    int64 // in-order issue clock (stalls on operand scoreboard)
	dclock   int64 // dispatch clock: one instruction per cycle into the unit queues
	stFree   int64 // store-buffer drain port
	pipeFree [numPipes]int64
	ready    [32]int64
	storeT   [32]int64
	lastLoad int64
	lastStW  int64

	queue []int64
	qHead int

	// lineBuf is the reusable scratch for lines(): each expansion overwrites
	// the previous one, so the backing array grows to the longest request
	// stream once and is then allocation-free.
	lineBuf []uint64

	Instrs uint64

	tr  probe.Emitter // "dv": per-instruction commit events
	vmu probe.Emitter // "dv.vmu": load/store request streams
}

// NewDV builds a decoupled engine issuing into the given L2-side port.
func NewDV(cfg DVConfig, l2 mem.Level) *DV {
	return &DV{cfg: cfg, l2: l2}
}

// SetTracer attaches a per-run event tracer (nil to disable); the engine
// emits instruction commits under "dv" and memory traffic under "dv.vmu".
func (d *DV) SetTracer(tr probe.Tracer) {
	d.tr = probe.NewEmitter(tr, "dv")
	d.vmu = probe.NewEmitter(tr, "dv.vmu")
}

// ProbeStats implements probe.Source.
func (d *DV) ProbeStats(s *probe.Scope) {
	s.CounterU("instrs", d.Instrs)
	s.Counter("cycles", d.clock)
}

// ProbeGauges implements probe.GaugeSource: how full the decoupled unit's
// dispatch queue is at cycle now.
func (d *DV) ProbeGauges(s *probe.Scope, now int64) {
	occ := len(d.queue) - d.qHead
	if occ > d.cfg.QueueDepth {
		occ = d.cfg.QueueDepth
	}
	s.Counter("queue.occupancy", int64(occ))
}

// HWVL implements Engine.
func (d *DV) HWVL() int { return d.cfg.HWVL }

func (d *DV) enqueue(dispatched int64) int64 {
	//evelint:allow hotalloc -- amortized: the compaction below bounds the queue, so growth converges
	d.queue = append(d.queue, dispatched)
	if len(d.queue)-d.qHead > d.cfg.QueueDepth {
		block := d.queue[d.qHead]
		d.qHead++
		if d.qHead > 4096 && d.qHead*2 > len(d.queue) {
			//evelint:allow hotalloc -- copies into the existing backing array; never grows
			d.queue = append(d.queue[:0], d.queue[d.qHead:]...)
			d.qHead = 0
		}
		return block
	}
	return 0
}

func (d *DV) wait(t int64) {
	if t > d.clock {
		d.clock = t
	}
}

// occupancy reports pipe cycles for an instruction class.
func (d *DV) occupancy(in *isa.Instr) (pipe int, occ int64) {
	vl := int64(in.VL)
	lanes := int64(d.cfg.Lanes)
	chime := (vl + lanes - 1) / lanes
	switch isa.Classify(in.Op) {
	case isa.ClassIMul:
		if in.Op == isa.OpDiv || in.Op == isa.OpDivU || in.Op == isa.OpRem || in.Op == isa.OpRemU {
			return pipeIter, vl * 2 // iterative divide: ~2 cycles/element
		}
		return pipeComplex, chime
	case isa.ClassXE:
		return pipeIter, 2 * chime
	default:
		return pipeSimple, chime
	}
}

// Handle implements Engine. Memory instructions dispatch into the VMU at
// the dispatch clock so the access side runs ahead of compute — the
// decoupling that defines DV-class engines; compute instructions issue in
// order against the register scoreboard.
func (d *DV) Handle(in *isa.Instr, arrival int64) int64 {
	d.Instrs++
	d.dclock++
	if arrival > d.dclock {
		d.dclock = arrival
	}
	d.wait(arrival)
	var reply int64

	switch {
	case in.Op == isa.OpSetVL:
		d.clock++
	case in.Op == isa.OpFence:
		d.wait(d.lastLoad)
		d.wait(d.lastStW)
		d.clock++
		reply = d.clock
	case in.Op == isa.OpMvXS:
		d.wait(d.ready[in.Vs1])
		d.clock++
		reply = d.clock
	case in.Op == isa.OpMvSX:
		d.clock++
		d.ready[in.Vd] = d.clock
	case isa.IsMemory(in.Op):
		done := d.memory(in)
		block := d.enqueue(done)
		if reply > block {
			block = reply
		}
		return d.commit(in, arrival, block)
	default:
		d.wait(d.ready[in.Vs1])
		if in.Kind == isa.KindVV {
			d.wait(d.ready[in.Vs2])
		}
		if in.Masked {
			d.wait(d.ready[0])
		}
		d.wait(d.storeT[in.Vd])
		pipe, occ := d.occupancy(in)
		start := d.clock
		if d.pipeFree[pipe] > start {
			start = d.pipeFree[pipe]
		}
		d.pipeFree[pipe] = start + occ
		d.ready[in.Vd] = start + occ + d.cfg.PipeDepth
		d.clock++ // in-order issue slot
	}

	block := d.enqueue(d.clock)
	if reply > block {
		block = reply
	}
	return d.commit(in, arrival, block)
}

// commit emits the instruction's KInstr trace event and passes the core
// block time through.
func (d *DV) commit(in *isa.Instr, arrival, block int64) int64 {
	if d.tr.On() {
		d.tr.Emit(probe.Event{
			Kind:  probe.KInstr,
			Name:  isa.Disassemble(in),
			Begin: arrival,
			End:   d.clock,
			Seq:   d.Instrs,
			VL:    in.VL,
			Aux:   d.dclock,
			Aux2:  block,
		})
	}
	return block
}

// lines expands a DV memory instruction; same coalescing rules as EVE's VMU.
// The returned slice aliases d.lineBuf and is only valid until the next call.
func (d *DV) lines(in *isa.Instr) []uint64 {
	out := d.lineBuf[:0]
	switch in.Op {
	case isa.OpLoad, isa.OpStore:
		first := in.Addr / mem.LineBytes
		last := (in.Addr + uint64(4*in.VL) - 1) / mem.LineBytes
		for l := first; l <= last; l++ {
			//evelint:allow hotalloc -- amortized: lineBuf grows to the longest expansion once, then reuses
			out = append(out, l*mem.LineBytes)
		}
	case isa.OpLoadStride, isa.OpStoreStride:
		prev := uint64(1) << 63
		for i := 0; i < in.VL; i++ {
			a := uint64(int64(in.Addr)+int64(i)*in.Stride) / mem.LineBytes
			if a != prev {
				//evelint:allow hotalloc -- amortized: lineBuf grows to the longest expansion once, then reuses
				out = append(out, a*mem.LineBytes)
				prev = a
			}
		}
	default:
		for _, a := range in.Addrs {
			//evelint:allow hotalloc -- amortized: lineBuf grows to the longest expansion once, then reuses
			out = append(out, a/mem.LineBytes*mem.LineBytes)
		}
	}
	d.lineBuf = out
	return out
}

// memory returns the time the VMU finished issuing the requests, which is
// when the instruction vacates its queue slot.
func (d *DV) memory(in *isa.Instr) int64 {
	write := isa.IsStore(in.Op)
	start := d.dclock
	if in.Op == isa.OpLoadIdx || in.Op == isa.OpStoreIdx {
		if t := d.ready[in.Vs2]; t > start {
			start = t
		}
	}
	if !write && d.storeT[in.Vd] > start {
		start = d.storeT[in.Vd] // WAR against a draining store
	}
	if d.pipeFree[pipeMem] > start {
		start = d.pipeFree[pipeMem]
	}
	lines := d.lines(in)

	if write {
		// Request generation occupies the memory pipe in order; the data
		// drains through the store buffer once the source register is
		// ready, so later loads are not held behind it.
		gen := start + int64(len(lines))
		d.pipeFree[pipeMem] = gen
		issueAt := gen
		if d.ready[in.Vs1] > issueAt {
			issueAt = d.ready[in.Vs1]
		}
		if d.stFree > issueAt {
			issueAt = d.stFree
		}
		t := issueAt
		var done int64
		for _, la := range lines {
			r := d.l2.Access(la, true, t+1)
			t = r.Accepted + 1
			if r.Done > done {
				done = r.Done
			}
		}
		d.stFree = t
		d.storeT[in.Vs1] = t
		if done > d.lastStW {
			d.lastStW = done
		}
		if d.vmu.On() {
			d.vmu.Emit(probe.Event{Kind: probe.KAccess, Name: "store",
				Begin: issueAt, End: done, Addr: in.Addr, VL: in.VL, Aux: int64(len(lines))})
		}
		return gen
	}

	t := start
	var done int64
	for _, la := range lines {
		// One cycle of request generation and address translation per
		// request (§VII-A), then the L2 access.
		r := d.l2.Access(la, false, t+1)
		t = r.Accepted + 1
		if r.Done > done {
			done = r.Done
		}
	}
	d.pipeFree[pipeMem] = t
	d.ready[in.Vd] = done
	if done > d.lastLoad {
		d.lastLoad = done
	}
	if d.vmu.On() {
		d.vmu.Emit(probe.Event{Kind: probe.KAccess, Name: "load",
			Begin: start, End: done, Addr: in.Addr, VL: in.VL, Aux: int64(len(lines))})
	}
	return t
}

// Drain implements Engine.
func (d *DV) Drain() int64 {
	d.wait(d.lastLoad)
	d.wait(d.lastStW)
	for _, p := range d.pipeFree {
		d.wait(p + d.cfg.PipeDepth)
	}
	return d.clock
}
