// Package repro reproduces "EVE: Ephemeral Vector Engines" (Al-Hawaj et
// al., HPCA 2023) as a Go library: a bit-level functional model of the
// SRAM compute-in-memory circuits and micro-programs, cycle-approximate
// models of the EVE micro-architecture and its scalar/vector baselines, the
// ten-kernel benchmark suite, and a harness regenerating every table and
// figure of the paper's evaluation.
//
// The public API lives in repro/eve; see README.md for the layout and
// EXPERIMENTS.md for paper-vs-measured results. The benchmarks in this
// package (bench_test.go) regenerate each experiment:
//
//	go test -bench=Fig6 -benchtime=1x .
package repro
