// Genomics: Smith-Waterman local alignment vectorized along anti-diagonals,
// comparing the ephemeral engine against the dedicated decoupled vector
// engine — the paper's headline trade: comparable speed at a fraction of the
// silicon.
//
//	go run ./examples/genomics
package main

import (
	"fmt"

	"repro/eve"
)

const (
	seqLen   = 512
	match    = 2
	mismatch = ^uint32(0) // -1
	gap      = 1
)

// align runs the DP and returns the best local-alignment score plus timing.
func align(sys eve.System, a, b []uint32) (uint32, eve.Result) {
	n := len(a) - 1
	m := eve.NewMachine(sys, 64<<20)
	seqA := m.AllocWords(n + 1)
	seqB := m.AllocWords(n + 1)
	buf := [3]uint64{m.AllocWords(n + 2), m.AllocWords(n + 2), m.AllocWords(n + 2)}
	for i := 1; i <= n; i++ {
		m.WriteWord(seqA+uint64(4*i), a[i])
		m.WriteWord(seqB+uint64(4*i), b[i])
	}
	m.SetVL(1)
	m.MvVX(14, 0) // running maximum
	for d := 2; d <= 2*n; d++ {
		prev2, prev1, cur := buf[d%3], buf[(d+1)%3], buf[(d+2)%3]
		lo, hi := max(1, d-n), min(n, d-1)
		for i0 := lo; i0 <= hi; {
			vl := m.SetVL(hi - i0 + 1)
			m.Load(1, seqA+uint64(4*i0))
			m.LoadStride(2, seqB+uint64(4*(d-i0)), -4)
			m.MSeq(0, 1, 2)
			m.MvVX(3, match)
			m.MvVX(4, mismatch)
			m.Merge(5, 3, 4)
			m.Load(6, prev2+uint64(4*(i0-1)))
			m.Add(7, 6, 5)
			m.Load(8, prev1+uint64(4*(i0-1)))
			m.SubVX(9, 8, gap)
			m.Load(10, prev1+uint64(4*i0))
			m.SubVX(11, 10, gap)
			m.Max(12, 7, 9)
			m.Max(12, 12, 11)
			m.MaxVX(12, 12, 0)
			m.Store(12, cur+uint64(4*i0))
			m.RedMax(14, 12, 14)
			m.ScalarOps(8)
			i0 += vl
		}
		m.ScalarOps(4)
	}
	best := m.MvXS(14)
	m.Fence()
	return best, m.Finish()
}

func main() {
	// Two synthetic DNA-like sequences over a 4-letter alphabet with a
	// planted common region.
	a := make([]uint32, seqLen+1)
	b := make([]uint32, seqLen+1)
	state := uint64(42)
	next := func() uint32 {
		state = state*6364136223846793005 + 1442695040888963407
		return uint32(state>>33) % 4
	}
	for i := 1; i <= seqLen; i++ {
		a[i], b[i] = next(), next()
	}
	copy(b[100:160], a[200:260]) // 60-base shared region

	fmt.Printf("Smith-Waterman, %d x %d, match=+%d mismatch=-1 gap=-%d\n\n", seqLen, seqLen, match, gap)
	var ref uint32
	for _, sys := range []eve.System{eve.O3DV, eve.EVE(8), eve.EVE(16)} {
		score, res := align(sys, a, b)
		if ref == 0 {
			ref = score
		} else if score != ref {
			panic("systems disagree on the alignment score")
		}
		fmt.Printf("%-9s score=%-5d cycles=%-10d area=%.2fx of O3\n",
			sys.Name(), score, res.Cycles, sys.AreaFactor())
	}
	fmt.Printf("\nthe planted 60-base region guarantees a score ≥ %d\n", 60*match-0)
}
