// Stencil: a 2-D integer heat-diffusion sweep (five-point stencil) across
// every EVE design point, showing the bit-hybrid trade-off of §II on a real
// kernel: low parallelization factors pay long micro-programs, EVE-32 pays
// its slower clock, and the balanced middle wins.
//
//	go run ./examples/stencil
package main

import (
	"fmt"

	"repro/eve"
)

const (
	n     = 512 // interior size; the grid is padded with a halo
	iters = 2
)

func run(sys eve.System) (eve.Result, uint32) {
	stride := n + 2
	m := eve.NewMachine(sys, 64<<20)
	a := m.AllocWords(stride * stride)
	b := m.AllocWords(stride * stride)
	at := func(base uint64, i, j int) uint64 { return base + uint64(4*(i*stride+j)) }
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			m.WriteWord(at(a, i, j), uint32((i*37+j*101)%4096))
		}
	}
	cur, nxt := a, b
	for t := 0; t < iters; t++ {
		for i := 1; i <= n; i++ {
			for j0 := 1; j0 <= n; {
				vl := m.SetVL(n - j0 + 1)
				m.Load(1, at(cur, i, j0))
				m.Load(2, at(cur, i-1, j0))
				m.Load(3, at(cur, i+1, j0))
				m.Load(4, at(cur, i, j0+1))
				m.Load(5, at(cur, i, j0-1))
				m.Add(6, 2, 3)
				m.Add(6, 6, 4)
				m.Add(6, 6, 5)
				m.SllVX(7, 1, 2)
				m.Add(6, 6, 7)
				m.SraVX(6, 6, 3)
				m.Store(6, at(nxt, i, j0))
				m.ScalarOps(7)
				j0 += vl
			}
		}
		cur, nxt = nxt, cur
	}
	m.Fence()
	res := m.Finish()
	return res, m.ReadWord(at(cur, n/2, n/2))
}

func main() {
	fmt.Printf("heat diffusion, %dx%d grid, %d sweeps\n\n", n, n, iters)
	fmt.Printf("%-10s %-12s %-8s %-14s %s\n", "system", "cycles", "HWVL", "center value", "busy share")
	var check uint32
	for _, f := range []int{1, 2, 4, 8, 16, 32} {
		sys := eve.EVE(f)
		res, v := run(sys)
		if check == 0 {
			check = v
		} else if v != check {
			panic(fmt.Sprintf("%s computed %d, others %d", sys.Name(), v, check))
		}
		busy := float64(res.Breakdown["busy"]) / float64(res.Cycles)
		fmt.Printf("%-10s %-12d %-8d %-14d %.0f%%\n",
			sys.Name(), res.Cycles, eve.HardwareVL(f), v, 100*busy)
	}
	fmt.Println("\nevery design point computes identical results; only the clock differs")
}
