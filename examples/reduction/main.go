// Reduction: dot products through the vector reduction unit (VRU) across
// all systems, plus a demonstration of EVE's ephemerality — spawning costs a
// linear pass over the partitioned ways' resident lines, tearing down is
// free (§V-E).
//
//	go run ./examples/reduction
package main

import (
	"fmt"

	"repro/eve"
)

const n = 1 << 17

func dot(sys eve.System, warm bool) (uint32, eve.Result) {
	m := eve.NewMachine(sys, 32<<20)
	x := m.AllocWords(n)
	y := m.AllocWords(n)
	for i := 0; i < n; i++ {
		m.WriteWord(x+uint64(4*i), uint32(i%97))
		m.WriteWord(y+uint64(4*i), uint32(i%89))
	}
	// Warm the caches with a scalar pass when requested, to surface the
	// spawn-cost difference.
	if warm {
		for i := 0; i < n; i += 16 {
			m.ScalarLoad(x + uint64(4*i))
		}
	}
	m.SetVL(1)
	m.MvVX(10, 0) // accumulator element
	for i := 0; i < n; {
		vl := m.SetVL(n - i)
		off := uint64(4 * i)
		m.Load(1, x+off)
		m.Load(2, y+off)
		m.Mul(3, 1, 2)
		m.RedSum(10, 3, 10)
		m.ScalarOps(5)
		i += vl
	}
	sum := m.MvXS(10)
	m.Fence()
	return sum, m.Finish()
}

func main() {
	// Reference result.
	var want uint32
	for i := 0; i < n; i++ {
		want += uint32(i%97) * uint32(i%89)
	}
	fmt.Printf("dot product of %d elements (expect %d)\n\n", n, want)
	fmt.Printf("%-10s %-12s %-10s %s\n", "system", "cycles", "sum ok", "notes")
	for _, sys := range []eve.System{eve.O3IV, eve.O3DV, eve.EVE(4), eve.EVE(8), eve.EVE(32)} {
		sum, res := dot(sys, false)
		note := ""
		if sys.IsEVE() {
			note = fmt.Sprintf("vru busy %.0f%%, spawn %d cycles",
				100*float64(res.Breakdown["vru_stall"])/float64(res.Cycles), res.SpawnCost)
		}
		fmt.Printf("%-10s %-12d %-10v %s\n", sys.Name(), res.Cycles, sum == want, note)
	}

	// Ephemerality: spawning over a warm (dirty) L2 pays for the
	// invalidations; over a cold L2 it is free.
	_, cold := dot(eve.EVE(8), false)
	_, warm := dot(eve.EVE(8), true)
	fmt.Printf("\nspawn cost, cold L2: %d cycles; after warming the cache: %d cycles\n",
		cold.SpawnCost, warm.SpawnCost)
	fmt.Println("teardown is always free: the ways return to the cache invalid (§V-E)")
}
