// Quickstart: spawn an ephemeral vector engine (EVE-8) out of the L2 cache,
// run a SAXPY over a million elements with RVV-style intrinsics, and compare
// against the same loop on the out-of-order core alone.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/eve"
)

const (
	n = 1 << 20
	a = 7
)

func main() {
	// --- EVE-8: the paper's best design point ------------------------------
	m := eve.NewMachine(eve.EVE(8), 32<<20)
	fmt.Printf("EVE-8 spawned: hardware vector length %d elements, %.1f%% L2 area overhead\n",
		m.HWVL(), 100*eve.AreaOverhead(8))

	x := m.AllocWords(n)
	y := m.AllocWords(n)
	for i := 0; i < n; i++ {
		m.WriteWord(x+uint64(4*i), uint32(i))
		m.WriteWord(y+uint64(4*i), uint32(i/2))
	}

	// The strip-mined SAXPY: y[i] += a*x[i]. The same source runs unchanged
	// on any vector length — vsetvl grants min(remaining, HWVL).
	for i := 0; i < n; {
		vl := m.SetVL(n - i)
		off := uint64(4 * i)
		m.Load(1, x+off)
		m.Load(2, y+off)
		m.MaccVX(2, 1, a)
		m.Store(2, y+off)
		m.ScalarOps(5) // pointer bumps and the loop branch
		i += vl
	}
	m.Fence()
	res := m.Finish()

	// Verify a few elements.
	for _, i := range []int{0, 1, n / 2, n - 1} {
		want := uint32(i/2 + a*i)
		if got := m.ReadWord(y + uint64(4*i)); got != want {
			panic(fmt.Sprintf("y[%d] = %d, want %d", i, got, want))
		}
	}
	fmt.Printf("EVE-8:  %12d cycles  (%d dynamic instructions, %d total ops)\n",
		res.Cycles, res.DynamicInstrs, res.TotalOps)
	fmt.Printf("        busy %d / ld_mem %d / vmu %d cycles\n",
		res.Breakdown["busy"], res.Breakdown["ld_mem_stall"], res.Breakdown["vmu_stall"])

	// --- The same loop, scalar, on the O3 core -----------------------------
	s := eve.NewMachine(eve.O3, 32<<20)
	xs := s.AllocWords(n)
	ys := s.AllocWords(n)
	for i := 0; i < n; i++ {
		s.WriteWord(xs+uint64(4*i), uint32(i))
		s.WriteWord(ys+uint64(4*i), uint32(i/2))
	}
	for i := 0; i < n; i++ {
		off := uint64(4 * i)
		xv := s.ScalarLoad(xs + off)
		yv := s.ScalarLoad(ys + off)
		s.ScalarMuls(1)
		s.ScalarOps(3)
		s.ScalarStore(ys+off, yv+a*xv)
	}
	scalar := s.Finish()
	fmt.Printf("O3:     %12d cycles\n", scalar.Cycles)
	fmt.Printf("speedup %.1fx — from half the L2's SRAM arrays, no vector unit silicon\n",
		res.Speedup(scalar))
}
