// Benchmarks regenerating each table and figure of the paper's evaluation
// plus ablations over the design knobs DESIGN.md calls out. Reduced-size
// workloads keep a full `go test -bench=. -benchmem` run in minutes; the
// paper-scale sweep is `go run ./cmd/eve-figures`.
//
// Custom metrics: `cycles` is the simulated run time, `speedup-vs-IO` and
// `speedup-vs-IV` are the figures' y-axes, `vmu-stall-%` is Fig 8's metric.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/analytic"
	"repro/internal/eve"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/uprog"
	"repro/internal/vreg"
	"repro/internal/workloads"
)

// benchKernels returns reduced-size kernels that still show each kernel's
// memory character.
func benchKernels() []*workloads.Kernel {
	return []*workloads.Kernel{
		workloads.NewVVAdd(1 << 13),
		workloads.NewMMult(16, 16, 512),
		workloads.NewKMeans(1024, 16, 4),
		workloads.NewPathfinder(6, 1<<12),
		workloads.NewJacobi2D(96, 2),
		workloads.NewBackprop(4096, 16),
		workloads.NewSW(160),
	}
}

func reportResult(b *testing.B, r sim.Result, ioCycles int64) {
	b.Helper()
	if r.Err != nil {
		b.Fatalf("validation: %v", r.Err)
	}
	b.ReportMetric(float64(r.Cycles), "cycles")
	if ioCycles > 0 {
		b.ReportMetric(float64(ioCycles)/float64(r.Cycles), "speedup-vs-IO")
	}
}

// BenchmarkFig1Layout regenerates Fig 1's geometry: element capacity and
// in-situ ALU counts per parallelization factor.
func BenchmarkFig1Layout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, n := range analytic.Factors {
			g := vreg.Standard(n)
			_ = g.ElementsPerArray()
			_ = g.InSituALUs()
			_ = g.Placement()
		}
	}
	b.ReportMetric(float64(vreg.Standard(4).InSituALUs()), "alus-at-pf4")
}

// BenchmarkFig2 regenerates Fig 2: the latency/throughput sweep measured
// from the real micro-programs.
func BenchmarkFig2(b *testing.B) {
	var rows []analytic.Fig2Row
	for i := 0; i < b.N; i++ {
		rows = analytic.Fig2()
	}
	for _, r := range rows {
		if r.N == 4 {
			b.ReportMetric(r.AddThpN, "peak-add-throughput")
		}
		if r.N == 1 {
			b.ReportMetric(float64(r.MulLat), "bit-serial-mul-cycles")
		}
	}
}

// BenchmarkTableII_MicroPrograms measures the micro-program ROM: cycles per
// macro-operation per parallelization factor, executed on the bit-level
// circuit model.
func BenchmarkTableII_MicroPrograms(b *testing.B) {
	for _, n := range analytic.Factors {
		n := n
		b.Run(fmt.Sprintf("EVE-%d", n), func(b *testing.B) {
			m := uprog.NewMachine(n, 4)
			add := uprog.Add(m.Layout, 3, 1, 2, false)
			mul := uprog.Mul(m.Layout, 3, 1, 2, false, false)
			m.StoreElement(1, 0, 12345)
			m.StoreElement(2, 0, 678)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Run(add, nil)
				m.Run(mul, nil)
			}
			b.ReportMetric(float64(m.CountCycles(add)), "add-uop-cycles")
			b.ReportMetric(float64(m.CountCycles(mul)), "mul-uop-cycles")
		})
	}
}

// BenchmarkAreaModel regenerates the §VI circuits evaluation.
func BenchmarkAreaModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, n := range analytic.Factors {
			_ = analytic.TotalOverhead(n)
			_ = analytic.CycleTimeNS(n)
		}
	}
	b.ReportMetric(100*analytic.TotalOverhead(8), "eve8-area-overhead-%")
}

// BenchmarkFig6 regenerates the speedup figure: every kernel on every
// system (reduced inputs).
func BenchmarkFig6(b *testing.B) {
	for _, k := range benchKernels() {
		k := k
		io := sim.Run(sim.Config{Kind: sim.SysIO}, k)
		for _, s := range sim.AllSystems()[1:] {
			s := s
			b.Run(k.Name+"/"+s.Name(), func(b *testing.B) {
				var r sim.Result
				for i := 0; i < b.N; i++ {
					r = sim.Run(s, k)
				}
				reportResult(b, r, io.Cycles)
			})
		}
	}
}

// BenchmarkSweepWorkers measures the parallel sweep engine end to end on
// the full reduced-size (kernel, system) matrix at several pool widths.
// workers-1 is the serial baseline; the wall-clock ratio against it is the
// sweep speedup EXPERIMENTS.md records (≈ min(workers, cores) on multicore
// hosts, since every cell is independent CPU-bound work).
func BenchmarkSweepWorkers(b *testing.B) {
	kernels := benchKernels()
	systems := sim.AllSystems()
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sweep.Matrix(systems, kernels, sweep.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(kernels)*len(systems)), "cells/op")
		})
	}
}

// BenchmarkTable4 regenerates the characterization columns: speedups over
// O3+IV for DV and the EVE designs (geomean kernels).
func BenchmarkTable4(b *testing.B) {
	for _, k := range benchKernels() {
		k := k
		if !k.InGeomean() {
			continue
		}
		iv := sim.Run(sim.Config{Kind: sim.SysO3IV}, k)
		for _, n := range []int{1, 8, 32} {
			n := n
			b.Run(fmt.Sprintf("%s/E-%d-vs-IV", k.Name, n), func(b *testing.B) {
				var r sim.Result
				for i := 0; i < b.N; i++ {
					r = sim.Run(sim.Config{Kind: sim.SysO3EVE, N: n}, k)
				}
				if r.Err != nil {
					b.Fatal(r.Err)
				}
				b.ReportMetric(float64(r.Cycles), "cycles")
				b.ReportMetric(float64(iv.Cycles)/float64(r.Cycles), "speedup-vs-IV")
			})
		}
	}
}

// BenchmarkFig7 regenerates the execution breakdown: busy share per EVE
// design on the compute-bound kernel (the §VII-B utilization curve).
func BenchmarkFig7(b *testing.B) {
	k := workloads.NewMMult(16, 16, 512)
	for _, n := range analytic.Factors {
		n := n
		b.Run(fmt.Sprintf("mmult/EVE-%d", n), func(b *testing.B) {
			var r sim.Result
			for i := 0; i < b.N; i++ {
				r = sim.Run(sim.Config{Kind: sim.SysO3EVE, N: n}, k)
			}
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			b.ReportMetric(float64(r.Cycles), "cycles")
			b.ReportMetric(100*float64(r.Breakdown[eve.Busy])/float64(r.Breakdown.Total()), "busy-%")
		})
	}
}

// BenchmarkFig8 regenerates the VMU cache-induced stall metric on the
// MSHR-bound kernel.
func BenchmarkFig8(b *testing.B) {
	k := workloads.NewBackprop(1<<15, 16)
	for _, n := range []int{1, 4, 8, 32} {
		n := n
		b.Run(fmt.Sprintf("backprop/EVE-%d", n), func(b *testing.B) {
			var r sim.Result
			for i := 0; i < b.N; i++ {
				r = sim.Run(sim.Config{Kind: sim.SysO3EVE, N: n}, k)
			}
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			b.ReportMetric(float64(r.Cycles), "cycles")
			b.ReportMetric(100*r.VMUStall, "vmu-stall-%")
		})
	}
}

// BenchmarkAblationDTU sweeps the transpose-unit count on the
// transpose-sensitive kernel (pathfinder, §VII-B).
func BenchmarkAblationDTU(b *testing.B) {
	k := workloads.NewPathfinder(6, 1<<12)
	for _, dtus := range []int{1, 2, 4, 8, 16} {
		dtus := dtus
		b.Run(fmt.Sprintf("pathfinder/EVE-4/dtus-%d", dtus), func(b *testing.B) {
			cfg := eve.DefaultConfig(4)
			cfg.DTUs = dtus
			var r sim.Result
			for i := 0; i < b.N; i++ {
				r = sim.RunEVE(cfg, nil, k)
			}
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			b.ReportMetric(float64(r.Cycles), "cycles")
		})
	}
}

// BenchmarkAblationMSHR sweeps the LLC MSHR count on the giant-stride kernel
// — the paper's "future work" knob for very long vector machines (§IX).
func BenchmarkAblationMSHR(b *testing.B) {
	k := workloads.NewBackprop(1<<15, 16)
	for _, mshrs := range []int{8, 16, 32, 64, 128} {
		mshrs := mshrs
		b.Run(fmt.Sprintf("backprop/EVE-8/llc-mshrs-%d", mshrs), func(b *testing.B) {
			llc := mem.LLCConfig
			llc.MSHRs = mshrs
			var r sim.Result
			for i := 0; i < b.N; i++ {
				h := mem.NewHierarchyCfg(mem.L1DConfig, mem.L2Config, llc)
				r = sim.RunEVE(eve.DefaultConfig(8), h, k)
			}
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			b.ReportMetric(float64(r.Cycles), "cycles")
			b.ReportMetric(100*r.VMUStall, "vmu-stall-%")
		})
	}
}

// BenchmarkAblationVL sweeps the number of EVE SRAM arrays (hardware vector
// length) at a fixed parallelization factor.
func BenchmarkAblationVL(b *testing.B) {
	k := workloads.NewVVAdd(1 << 13)
	for _, arrays := range []int{8, 16, 32} {
		arrays := arrays
		b.Run(fmt.Sprintf("vvadd/EVE-8/arrays-%d", arrays), func(b *testing.B) {
			cfg := eve.DefaultConfig(8)
			cfg.Arrays = arrays
			var r sim.Result
			for i := 0; i < b.N; i++ {
				r = sim.RunEVE(cfg, nil, k)
			}
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			b.ReportMetric(float64(r.Cycles), "cycles")
		})
	}
}

// BenchmarkAblationSpawn measures the §V-E reconfiguration cost as a
// function of how much dirty data the released ways hold.
func BenchmarkAblationSpawn(b *testing.B) {
	for _, dirtyPct := range []int{0, 25, 50, 100} {
		dirtyPct := dirtyPct
		b.Run(fmt.Sprintf("dirty-%d%%", dirtyPct), func(b *testing.B) {
			var cost int64
			for i := 0; i < b.N; i++ {
				h := mem.NewHierarchy()
				nsets := uint64(mem.L2Config.SizeBytes / (mem.LineBytes * mem.L2Config.Ways))
				for s := uint64(0); s < nsets; s++ {
					for w := 0; w < mem.L2Config.Ways; w++ {
						dirty := int(s*uint64(mem.L2Config.Ways)+uint64(w))%100 < dirtyPct
						h.L2.Access((s+uint64(w)*nsets)*mem.LineBytes, dirty, int64(s))
					}
				}
				cost = h.SpawnEVE()
			}
			b.ReportMetric(float64(cost), "spawn-cycles")
		})
	}
}

// BenchmarkSimRunProbeOff is the probe layer's zero-overhead baseline: the
// plain sim.Run fast path with no tracer and no registry snapshot consumers.
// BenchmarkSimRunTracedNil must match it — RunTraced(nil) walks the same
// nil-emitter branches — so any regression here means probe checks leaked
// into the hot loop (simulator engineering, not paper data).
func BenchmarkSimRunProbeOff(b *testing.B) {
	k := workloads.NewVVAdd(1 << 13)
	cfg := sim.Config{Kind: sim.SysO3EVE, N: 8}
	var r sim.Result
	for i := 0; i < b.N; i++ {
		r = sim.Run(cfg, k)
	}
	if r.Err != nil {
		b.Fatal(r.Err)
	}
	b.ReportMetric(float64(r.Cycles), "cycles")
}

// BenchmarkSimRunTracedNil measures RunTraced with a nil tracer: the
// disabled-emitter path plus the end-of-run checksum. Compare against
// BenchmarkSimRunProbeOff to bound the cost of having probes compiled in.
func BenchmarkSimRunTracedNil(b *testing.B) {
	k := workloads.NewVVAdd(1 << 13)
	cfg := sim.Config{Kind: sim.SysO3EVE, N: 8}
	var r sim.Result
	for i := 0; i < b.N; i++ {
		r = sim.RunTraced(cfg, k, nil)
	}
	if r.Err != nil {
		b.Fatal(r.Err)
	}
	b.ReportMetric(float64(r.Cycles), "cycles")
}

// BenchmarkSimRunIntervals measures sim.Run with interval sampling on (a
// window that captures a handful of samples per run). The delta against
// BenchmarkSimRunProbeOff is the whole price of the time axis — the nil-
// sampler fast path itself must not move, which is the probe-off/interval
// pair CI and the identity tests pin.
func BenchmarkSimRunIntervals(b *testing.B) {
	k := workloads.NewVVAdd(1 << 13)
	cfg := sim.Config{Kind: sim.SysO3EVE, N: 8, Interval: 512}
	var r sim.Result
	for i := 0; i < b.N; i++ {
		r = sim.Run(cfg, k)
	}
	if r.Err != nil {
		b.Fatal(r.Err)
	}
	b.ReportMetric(float64(r.Cycles), "cycles")
	b.ReportMetric(float64(len(r.Intervals.Samples)), "windows")
}

// BenchmarkMemoryHierarchy measures the raw simulator throughput of the
// timed cache model (simulator engineering, not paper data).
func BenchmarkMemoryHierarchy(b *testing.B) {
	h := mem.NewHierarchy()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.CoreAccess(uint64(i*64%(1<<22)), i%7 == 0, int64(i))
	}
}

// BenchmarkBitLevelExecution measures the raw simulator throughput of the
// circuit-accurate micro-program executor.
func BenchmarkBitLevelExecution(b *testing.B) {
	m := uprog.NewMachine(8, 64)
	p := uprog.Add(m.Layout, 3, 1, 2, false)
	for e := 0; e < 64; e++ {
		m.StoreElement(1, e, uint32(e*3))
		m.StoreElement(2, e, uint32(e*5))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Run(p, nil)
	}
}

// BenchmarkFutureWorkFP32 explores the paper's §IX closing question: does
// bit-hybrid execution balance latency and throughput for floating point?
// Binary32 SAXPY runs as softfloat sequences of integer vector instructions
// across every EVE design point.
func BenchmarkFutureWorkFP32(b *testing.B) {
	k := workloads.NewFPSaxpy(1 << 12)
	io := sim.Run(sim.Config{Kind: sim.SysIO}, k)
	for _, n := range analytic.Factors {
		n := n
		b.Run(fmt.Sprintf("fp-saxpy/EVE-%d", n), func(b *testing.B) {
			var r sim.Result
			for i := 0; i < b.N; i++ {
				r = sim.Run(sim.Config{Kind: sim.SysO3EVE, N: n}, k)
			}
			reportResult(b, r, io.Cycles)
		})
	}
}

// BenchmarkCMPContention runs the streaming kernel on EVE-8 with 0-3
// co-running cores' worth of synthetic DRAM traffic — the shared-LLC CMP
// setting the paper frames EVE in (§I).
func BenchmarkCMPContention(b *testing.B) {
	k := workloads.NewVVAdd(1 << 13)
	for _, co := range []int{0, 1, 2, 3} {
		co := co
		b.Run(fmt.Sprintf("vvadd/EVE-8/co-runners-%d", co), func(b *testing.B) {
			var r sim.Result
			for i := 0; i < b.N; i++ {
				h := mem.NewContendedHierarchy(co, 300)
				r = sim.RunEVE(eve.DefaultConfig(8), h, k)
			}
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			b.ReportMetric(float64(r.Cycles), "cycles")
		})
	}
}
