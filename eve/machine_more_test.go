package eve

import "testing"

// TestMachineFullSurface drives every facade intrinsic once on a DV machine
// (fast) and verifies the functional results flow through.
func TestMachineFullSurface(t *testing.T) {
	m := NewMachine(O3DV, 0)
	n := m.SetVL(8)
	if n != 8 {
		t.Fatalf("SetVL granted %d", n)
	}
	base := m.AllocWords(64)
	for i := 0; i < 16; i++ {
		m.WriteWord(base+uint64(4*i), uint32(i+1))
	}
	m.Load(1, base)
	m.LoadStride(2, base, 8)
	m.VId(3)
	m.SllVX(3, 3, 2)
	m.LoadIdx(4, base, 3)
	m.Add(5, 1, 2)
	m.Sub(5, 5, 1)
	m.And(5, 5, 5)
	m.Or(5, 5, 5)
	m.Xor(6, 5, 5)
	m.Mul(6, 1, 2)
	m.MulH(6, 1, 2)
	m.Macc(6, 1, 2)
	m.Div(6, 2, 1)
	m.Min(7, 1, 2)
	m.Max(7, 1, 2)
	m.Sll(7, 1, 3)
	m.Srl(7, 1, 3)
	m.AddVX(8, 1, 5)
	m.SubVX(8, 8, 1)
	m.RSubVX(8, 8, 100)
	m.AndVX(8, 8, 0xFF)
	m.OrVX(8, 8, 1)
	m.XorVX(8, 8, 2)
	m.MulVX(8, 1, 3)
	m.MaccVX(8, 1, 2)
	m.MaxVX(8, 8, 3)
	m.SrlVX(8, 8, 1)
	m.SraVX(8, 8, 1)
	m.MSeq(0, 1, 2)
	m.MSne(0, 1, 2)
	m.MSlt(0, 1, 2)
	m.MSltU(0, 1, 2)
	m.MSltVX(0, 1, 3)
	m.MSgtVX(0, 1, 3)
	m.MSltUVX(0, 1, 3)
	m.MSgtUVX(0, 1, 3)
	m.MSeqVX(0, 1, 3)
	m.Merge(9, 1, 2)
	m.SetMasked(true)
	m.Add(9, 1, 2)
	m.SetMasked(false)
	m.Mv(10, 9)
	m.MvVX(11, 5)
	m.MvSX(11, 9)
	_ = m.MvXS(11)
	m.RedSum(12, 1, 11)
	m.RedMax(12, 1, 11)
	m.RedMin(12, 1, 11)
	m.Slide1Up(13, 1, 0)
	m.Slide1Down(13, 1, 0)
	m.RGather(14, 1, 3)
	m.ScalarOps(3)
	m.ScalarMuls(1)
	_ = m.ScalarLoad(base)
	m.ScalarStore(base, 1)
	m.Store(5, base)
	m.StoreStride(5, base, 8)
	m.StoreIdx(5, base, 3)
	m.Fence()
	if m.System() != O3DV || m.HWVL() != 64 {
		t.Fatal("machine metadata wrong")
	}
	res := m.Finish()
	if res.Cycles <= 0 || res.DynamicInstrs == 0 {
		t.Fatalf("implausible result %+v", res)
	}
	if len(m.VReg(5)) != 64 {
		t.Fatal("VReg length wrong")
	}
}

func TestMachineIVAndScalar(t *testing.T) {
	// IV machine end-to-end.
	m := NewMachine(O3IV, 0)
	base := m.AllocWords(16)
	m.SetVL(16)
	m.Load(1, base)
	m.AddVX(1, 1, 1)
	m.Store(1, base)
	if r := m.Finish(); r.Cycles <= 0 {
		t.Fatal("IV machine produced no time")
	}
	// Scalar-only machine accepts scalar traffic.
	s := NewMachine(IO, 0)
	a := s.AllocWords(4)
	s.ScalarStore(a, 9)
	if s.ScalarLoad(a) != 9 {
		t.Fatal("scalar round trip failed")
	}
	s.ScalarOps(10)
	s.ScalarMuls(2)
	if r := s.Finish(); r.Cycles <= 0 {
		t.Fatal("scalar machine produced no time")
	}
}
