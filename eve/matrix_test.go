package eve_test

import (
	"reflect"
	"testing"

	"repro/eve"
)

// TestSimulateMatrixMatchesSimulate: the concurrent public-API sweep must
// return exactly what serial Simulate calls return, cell for cell.
func TestSimulateMatrixMatchesSimulate(t *testing.T) {
	systems := []eve.System{eve.IO, eve.EVE(8)}
	vvadd, err := eve.BenchmarkByName("vvadd")
	if err != nil {
		t.Fatal(err)
	}
	sw, err := eve.BenchmarkByName("sw")
	if err != nil {
		t.Fatal(err)
	}
	benches := []eve.Benchmark{vvadd, sw}

	matrix, err := eve.SimulateMatrix(systems, benches, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(matrix) != len(benches) || len(matrix[0]) != len(systems) {
		t.Fatalf("matrix shape = %dx%d, want %dx%d", len(matrix), len(matrix[0]), len(benches), len(systems))
	}
	for bi, b := range benches {
		for si, s := range systems {
			want, err := eve.Simulate(s, b)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(matrix[bi][si], want) {
				t.Errorf("cell (%s, %s) diverges from serial Simulate:\n got  %+v\n want %+v",
					b.Name(), s.Name(), matrix[bi][si], want)
			}
		}
	}
}
