package eve_test

import (
	"fmt"

	"repro/eve"
)

// Simulate one of the paper's benchmarks on the headline design point and
// compare against the in-order baseline.
func ExampleSimulate() {
	b, _ := eve.BenchmarkByName("vvadd")
	io, _ := eve.Simulate(eve.IO, b)
	e8, _ := eve.Simulate(eve.EVE(8), b)
	fmt.Printf("EVE-8 runs %s %.0fx faster than the in-order core\n",
		b.Name(), e8.Speedup(io))
	// Output: EVE-8 runs vvadd 31x faster than the in-order core
}

// Program an ephemeral engine directly with RVV-style intrinsics.
func ExampleNewMachine() {
	m := eve.NewMachine(eve.EVE(4), 1<<20)
	x := m.AllocWords(100)
	for i := 0; i < 100; i++ {
		m.WriteWord(x+uint64(4*i), uint32(i))
	}
	m.SetVL(100)
	m.Load(1, x)
	m.AddVX(2, 1, 1000) // v2 = v1 + 1000
	m.Store(2, x)
	m.Fence()
	res := m.Finish()
	fmt.Printf("x[99] = %d after %t simulation\n", m.ReadWord(x+99*4), res.Cycles > 0)
	// Output: x[99] = 1099 after true simulation
}

// The circuit-evaluation models are available without running workloads.
func ExampleAreaOverhead() {
	fmt.Printf("EVE-8 costs %.1f%% of the L2 and cycles at %.3fns\n",
		100*eve.AreaOverhead(8), eve.CycleTimeNS(8))
	// Output: EVE-8 costs 11.7% of the L2 and cycles at 1.025ns
}
