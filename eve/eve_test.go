package eve

import "testing"

func TestSystemsSweep(t *testing.T) {
	ss := Systems()
	if len(ss) != 10 {
		t.Fatalf("Systems() = %d entries, want 10", len(ss))
	}
	if ss[0].Name() != "IO" || ss[4].Name() != "O3+EVE-1" {
		t.Fatalf("unexpected ordering: %s, %s", ss[0].Name(), ss[4].Name())
	}
	if !EVE(8).IsEVE() || O3DV.IsEVE() {
		t.Fatal("IsEVE misreports")
	}
}

func TestInvalidEVEFactorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EVE(3) should panic")
		}
	}()
	EVE(3)
}

func TestHardwareVL(t *testing.T) {
	want := map[int]int{1: 2048, 8: 1024, 32: 256}
	for n, vl := range want {
		if got := HardwareVL(n); got != vl {
			t.Errorf("HardwareVL(%d) = %d, want %d", n, got, vl)
		}
	}
}

func TestAreaAndCycleTime(t *testing.T) {
	if a := AreaOverhead(8); a < 0.116 || a > 0.118 {
		t.Errorf("AreaOverhead(8) = %.4f, want ≈ 0.117", a)
	}
	if CycleTimeNS(4) != 1.025 || CycleTimeNS(32) != 1.55 {
		t.Error("cycle times off")
	}
}

func TestFig2SweepShape(t *testing.T) {
	pts := Fig2Sweep()
	if len(pts) != 6 {
		t.Fatalf("%d points", len(pts))
	}
	best, bestT := 0, 0.0
	for _, p := range pts {
		if p.AddThroughputNorm > bestT {
			best, bestT = p.N, p.AddThroughputNorm
		}
	}
	if best != 4 {
		t.Errorf("throughput peak at PF=%d, want 4", best)
	}
}

func TestSimulateBenchmark(t *testing.T) {
	b, err := BenchmarkByName("vvadd")
	if err != nil {
		t.Fatal(err)
	}
	io, err := Simulate(IO, b)
	if err != nil {
		t.Fatal(err)
	}
	e8, err := Simulate(EVE(8), b)
	if err != nil {
		t.Fatal(err)
	}
	if sp := e8.Speedup(io); sp < 2 {
		t.Errorf("EVE-8 speedup on vvadd = %.2f; expected well above 2", sp)
	}
	if e8.Breakdown == nil || e8.Breakdown["busy"] == 0 {
		t.Error("EVE result missing breakdown")
	}
	if io.Breakdown != nil {
		t.Error("scalar result should have no breakdown")
	}
}

func TestBenchmarkRegistry(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 10 {
		t.Fatalf("%d benchmarks, want 10", len(bs))
	}
	geo := 0
	for _, b := range bs {
		if b.InGeomean() {
			geo++
		}
	}
	if geo != 5 {
		t.Fatalf("%d kernels in geomean set, want 5", geo)
	}
	if _, err := BenchmarkByName("bogus"); err == nil {
		t.Fatal("expected error")
	}
}

// TestMachineCustomProgram runs a SAXPY-style custom program on EVE-8 and
// validates results and timing plumbing end to end through the public API.
func TestMachineCustomProgram(t *testing.T) {
	const n = 5000
	m := NewMachine(EVE(8), 1<<22)
	x := m.AllocWords(n)
	y := m.AllocWords(n)
	for i := 0; i < n; i++ {
		m.WriteWord(x+uint64(4*i), uint32(i))
		m.WriteWord(y+uint64(4*i), uint32(2*i))
	}
	const a = 3
	for i := 0; i < n; {
		vl := m.SetVL(n - i)
		off := uint64(4 * i)
		m.Load(1, x+off)
		m.Load(2, y+off)
		m.MaccVX(2, 1, a) // y += a*x
		m.Store(2, y+off)
		m.ScalarOps(5)
		i += vl
	}
	m.Fence()
	res := m.Finish()
	for i := 0; i < n; i++ {
		want := uint32(2*i + a*i)
		if got := m.ReadWord(y + uint64(4*i)); got != want {
			t.Fatalf("y[%d] = %d, want %d", i, got, want)
		}
	}
	if res.Cycles <= 0 || res.Breakdown["busy"] == 0 {
		t.Fatalf("implausible result: %+v", res)
	}
	if res.SpawnCost != 0 {
		t.Errorf("cold-cache spawn should be free, got %d", res.SpawnCost)
	}
}

func TestMachineScalarOnlyRejectsVector(t *testing.T) {
	m := NewMachine(O3, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("vector op on scalar machine should panic")
		}
	}()
	m.SetVL(4)
}

func TestMachineUseAfterFinishPanics(t *testing.T) {
	m := NewMachine(EVE(4), 0)
	m.SetVL(4)
	m.Finish()
	defer func() {
		if recover() == nil {
			t.Fatal("use after Finish should panic")
		}
	}()
	m.MvVX(1, 1)
}
