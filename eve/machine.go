package eve

import (
	"fmt"

	"repro/internal/cpu"
	ieve "repro/internal/eve"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/vengine"
)

// Machine is a directly programmable simulated system: allocate and fill
// memory, issue RVV-style vector intrinsics strip-mined against HWVL, and
// call Finish for the cycle count. Each intrinsic executes functionally
// right away (reads of memory or registers observe program order), while
// timing accumulates in the background models.
type Machine struct {
	sys      System
	flat     *mem.Flat
	hier     *mem.Hierarchy
	core     *cpu.Core
	engine   vengine.Engine
	eveEng   *ieve.Engine
	b        *isa.Builder
	spawned  bool
	finished bool
}

// NewMachine builds a machine with the given memory capacity in bytes
// (minimum 1 MiB).
func NewMachine(s System, memBytes int) *Machine {
	if memBytes < 1<<20 {
		memBytes = 1 << 20
	}
	m := &Machine{sys: s, flat: mem.NewFlat(memBytes), hier: mem.NewHierarchy()}
	coreCfg := cpu.O3Config
	if s.kind == IO.kind {
		coreCfg = cpu.IOConfig
	}
	m.core = cpu.New(coreCfg, m.hier)
	hwvl := 1
	switch {
	case s.kind == IO.kind || s.kind == O3.kind:
		// Scalar-only machine; vector intrinsics are rejected.
	case s.kind == O3IV.kind:
		m.engine = vengine.NewIV(m.core)
		hwvl = vengine.IVHWVL
	case s.kind == O3DV.kind:
		m.engine = vengine.NewDV(vengine.DefaultDVConfig(), m.hier.L2)
		hwvl = m.engine.HWVL()
	default:
		m.eveEng = ieve.New(ieve.DefaultConfig(s.n), m.hier.LLC)
		m.engine = m.eveEng
		hwvl = m.eveEng.HWVL()
	}
	m.b = isa.NewBuilder(m.flat, hwvl, machineSink{m})
	return m
}

// spawnIfNeeded realizes EVE's ephemerality: the engine materializes out of
// the L2's ways when the first vector instruction arrives, paying the
// way-partition invalidation cost of whatever the scalar code left resident
// (§V-E).
func (m *Machine) spawnIfNeeded() {
	if m.eveEng != nil && !m.spawned {
		m.spawned = true
		cost := m.hier.SpawnEVE()
		m.eveEng.Spawn(cost, m.core.Now(), m.hier.L2.Ways()-m.hier.L2.ActiveWays())
	}
}

type machineSink struct{ m *Machine }

func (s machineSink) Emit(ev isa.Event) {
	m := s.m
	if m.finished {
		panic("eve: machine used after Finish")
	}
	switch ev.Kind {
	case isa.EvScalar:
		m.core.Ops(ev.N)
	case isa.EvScalarMul:
		m.core.Muls(ev.N)
	case isa.EvLoad:
		m.core.Load(ev.Addr)
	case isa.EvStore:
		m.core.Store(ev.Addr)
	case isa.EvVector:
		if m.engine == nil {
			panic(fmt.Sprintf("eve: vector instruction %v on scalar system %s", ev.V.Op, m.sys.Name()))
		}
		m.spawnIfNeeded()
		if block := m.engine.Handle(ev.V, m.core.Now()); block > 0 {
			m.core.AdvanceTo(block)
		}
	}
}

// System reports the machine's configuration.
func (m *Machine) System() System { return m.sys }

// HWVL reports the hardware vector length vector intrinsics strip against.
func (m *Machine) HWVL() int { return m.b.HWVL() }

// Finish drains all in-flight work and returns the result. The machine must
// not be used afterwards.
func (m *Machine) Finish() Result {
	cycles := m.core.Now()
	if m.engine != nil {
		if d := m.engine.Drain(); d > cycles {
			cycles = d
		}
	}
	// Lifecycle symmetry with sim.run: a spawned engine hands its borrowed
	// ways back once everything has drained.
	if m.eveEng != nil && m.spawned {
		m.hier.TeardownEVE()
		m.eveEng.Teardown(cycles)
	}
	m.finished = true
	r := Result{
		System:        m.sys.Name(),
		Kernel:        "custom",
		Cycles:        cycles,
		DynamicInstrs: m.b.Mix().DynamicInstrs(),
		TotalOps:      m.b.Mix().TotalOps(),
		VectorPct:     m.b.Mix().VectorPct(),
	}
	if m.eveEng != nil {
		r.Breakdown = Breakdown{}
		bd := m.eveEng.Breakdown()
		for c := ieve.Category(0); c < ieve.NumCategories; c++ {
			r.Breakdown[c.String()] = bd[c]
		}
		r.VMUStallFraction = m.eveEng.VMUIssueStallFraction()
		r.SpawnCost = m.eveEng.SpawnCost()
	}
	return r
}

// Memory management. Addresses are byte addresses into the machine's flat
// memory; words are 32-bit little-endian.

// AllocWords reserves n 32-bit words and returns the base address.
func (m *Machine) AllocWords(n int) uint64 { return m.flat.AllocU32(n) }

// WriteWord initializes memory without simulating an access (input setup).
func (m *Machine) WriteWord(addr uint64, v uint32) { m.flat.StoreU32(addr, v) }

// ReadWord inspects memory without simulating an access (output readback).
func (m *Machine) ReadWord(addr uint64) uint32 { return m.flat.LoadU32(addr) }

// Scalar-side program events: the loop control and scalar memory traffic
// around the vector code.

// ScalarOps accounts n simple scalar instructions.
func (m *Machine) ScalarOps(n int) { m.b.ScalarOps(n) }

// ScalarMuls accounts n scalar multiply/divide instructions.
func (m *Machine) ScalarMuls(n int) { m.b.ScalarMuls(n) }

// ScalarLoad performs a timed scalar load and returns the value.
func (m *Machine) ScalarLoad(addr uint64) uint32 { return m.b.ScalarLoad(addr) }

// ScalarStore performs a timed scalar store.
func (m *Machine) ScalarStore(addr uint64, v uint32) { m.b.ScalarStore(addr, v) }

// Vector intrinsics (RVV subset). Registers are v0-v31; v0 doubles as the
// predicate register for masked execution.

// SetVL requests avl elements, returning min(avl, HWVL).
func (m *Machine) SetVL(avl int) int { return m.b.SetVL(avl) }

// SetMasked toggles predication by v0 for subsequent operations.
func (m *Machine) SetMasked(on bool) { m.b.SetMasked(on) }

// Fence orders vector memory operations against the scalar core (vmfence).
func (m *Machine) Fence() { m.b.Fence() }

// Load performs a unit-stride load of VL words into vd.
func (m *Machine) Load(vd int, addr uint64) { m.b.Load(vd, addr) }

// Store performs a unit-stride store of VL words from vs.
func (m *Machine) Store(vs int, addr uint64) { m.b.Store(vs, addr) }

// LoadStride performs a constant-stride load (stride in bytes).
func (m *Machine) LoadStride(vd int, addr uint64, stride int64) {
	m.b.LoadStride(vd, addr, stride)
}

// StoreStride performs a constant-stride store.
func (m *Machine) StoreStride(vs int, addr uint64, stride int64) {
	m.b.StoreStride(vs, addr, stride)
}

// LoadIdx gathers: vd[i] = mem[base + vidx[i]] (byte offsets).
func (m *Machine) LoadIdx(vd int, base uint64, vidx int) { m.b.LoadIdx(vd, base, vidx) }

// StoreIdx scatters: mem[base + vidx[i]] = vs[i].
func (m *Machine) StoreIdx(vs int, base uint64, vidx int) { m.b.StoreIdx(vs, base, vidx) }

// Arithmetic (vector-vector).

func (m *Machine) Add(vd, vs1, vs2 int)  { m.b.Add(vd, vs1, vs2) }
func (m *Machine) Sub(vd, vs1, vs2 int)  { m.b.Sub(vd, vs1, vs2) }
func (m *Machine) And(vd, vs1, vs2 int)  { m.b.And(vd, vs1, vs2) }
func (m *Machine) Or(vd, vs1, vs2 int)   { m.b.Or(vd, vs1, vs2) }
func (m *Machine) Xor(vd, vs1, vs2 int)  { m.b.Xor(vd, vs1, vs2) }
func (m *Machine) Mul(vd, vs1, vs2 int)  { m.b.Mul(vd, vs1, vs2) }
func (m *Machine) MulH(vd, vs1, vs2 int) { m.b.MulH(vd, vs1, vs2) }
func (m *Machine) Macc(vd, vs1, vs2 int) { m.b.Macc(vd, vs1, vs2) }
func (m *Machine) Div(vd, vs1, vs2 int)  { m.b.Div(vd, vs1, vs2) }
func (m *Machine) Min(vd, vs1, vs2 int)  { m.b.Min(vd, vs1, vs2) }
func (m *Machine) Max(vd, vs1, vs2 int)  { m.b.Max(vd, vs1, vs2) }
func (m *Machine) Sll(vd, vs1, vs2 int)  { m.b.Sll(vd, vs1, vs2) }
func (m *Machine) Srl(vd, vs1, vs2 int)  { m.b.Srl(vd, vs1, vs2) }

// Arithmetic (vector-scalar / immediate).

func (m *Machine) AddVX(vd, vs1 int, x uint32)  { m.b.AddVX(vd, vs1, x) }
func (m *Machine) SubVX(vd, vs1 int, x uint32)  { m.b.SubVX(vd, vs1, x) }
func (m *Machine) RSubVX(vd, vs1 int, x uint32) { m.b.RSubVX(vd, vs1, x) }
func (m *Machine) AndVX(vd, vs1 int, x uint32)  { m.b.AndVX(vd, vs1, x) }
func (m *Machine) OrVX(vd, vs1 int, x uint32)   { m.b.OrVX(vd, vs1, x) }
func (m *Machine) XorVX(vd, vs1 int, x uint32)  { m.b.XorVX(vd, vs1, x) }
func (m *Machine) MulVX(vd, vs1 int, x uint32)  { m.b.MulVX(vd, vs1, x) }
func (m *Machine) MaccVX(vd, vs1 int, x uint32) { m.b.MaccVX(vd, vs1, x) }
func (m *Machine) MaxVX(vd, vs1 int, x uint32)  { m.b.MaxVX(vd, vs1, x) }
func (m *Machine) SllVX(vd, vs1 int, sh uint32) { m.b.SllVX(vd, vs1, sh) }
func (m *Machine) SrlVX(vd, vs1 int, sh uint32) { m.b.SrlVX(vd, vs1, sh) }
func (m *Machine) SraVX(vd, vs1 int, sh uint32) { m.b.SraVX(vd, vs1, sh) }

// Moves and broadcast.

func (m *Machine) Mv(vd, vs1 int)        { m.b.Mv(vd, vs1) }
func (m *Machine) MvVX(vd int, x uint32) { m.b.MvVX(vd, x) }
func (m *Machine) MvSX(vd int, x uint32) { m.b.MvSX(vd, x) }
func (m *Machine) VId(vd int)            { m.b.VId(vd) }

// MvXS reads element 0 of vs back to the scalar core (blocking).
func (m *Machine) MvXS(vs int) uint32 { return m.b.MvXS(vs) }

// Compares (write 0/1 per element; use vd = 0 to set the predicate).

func (m *Machine) MSeq(vd, vs1, vs2 int)         { m.b.MSeq(vd, vs1, vs2) }
func (m *Machine) MSne(vd, vs1, vs2 int)         { m.b.MSne(vd, vs1, vs2) }
func (m *Machine) MSlt(vd, vs1, vs2 int)         { m.b.MSlt(vd, vs1, vs2) }
func (m *Machine) MSltU(vd, vs1, vs2 int)        { m.b.MSltU(vd, vs1, vs2) }
func (m *Machine) MSltVX(vd, vs1 int, x uint32)  { m.b.MSltVX(vd, vs1, x) }
func (m *Machine) MSgtVX(vd, vs1 int, x uint32)  { m.b.MSgtVX(vd, vs1, x) }
func (m *Machine) MSltUVX(vd, vs1 int, x uint32) { m.b.MSltUVX(vd, vs1, x) }
func (m *Machine) MSgtUVX(vd, vs1 int, x uint32) { m.b.MSgtUVX(vd, vs1, x) }
func (m *Machine) MSeqVX(vd, vs1 int, x uint32)  { m.b.MSeqVX(vd, vs1, x) }
func (m *Machine) Merge(vd, vs1, vs2 int)        { m.b.Merge(vd, vs1, vs2) }

// Reductions and cross-element operations.

func (m *Machine) RedSum(vd, vs2, vs1 int)         { m.b.RedSum(vd, vs2, vs1) }
func (m *Machine) RedMax(vd, vs2, vs1 int)         { m.b.RedMax(vd, vs2, vs1) }
func (m *Machine) RedMin(vd, vs2, vs1 int)         { m.b.RedMin(vd, vs2, vs1) }
func (m *Machine) Slide1Up(vd, vs int, x uint32)   { m.b.Slide1Up(vd, vs, x) }
func (m *Machine) Slide1Down(vd, vs int, x uint32) { m.b.Slide1Down(vd, vs, x) }
func (m *Machine) RGather(vd, vs2, vs1 int)        { m.b.RGather(vd, vs2, vs1) }

// VReg exposes the golden contents of a vector register for inspection.
func (m *Machine) VReg(r int) []uint32 { return m.b.VReg(r) }
