// Package eve is the public API of the EVE (Ephemeral Vector Engines)
// reproduction: cycle-approximate simulation of SRAM compute-in-memory
// vector engines carved out of a private L2 cache, alongside the scalar and
// vector baselines of the HPCA 2023 paper.
//
// Three entry points cover most uses:
//
//   - Simulate runs one of the paper's benchmarks on a chosen system and
//     returns cycles, speedups and EVE's execution-time breakdown.
//   - NewMachine builds a machine you can program directly with RVV-style
//     vector intrinsics (strip-mined against the machine's hardware vector
//     length) and then Finish to obtain the timing.
//   - The analytical entry points (AreaOverhead, CycleTimeNS, Fig2Sweep)
//     expose the paper's circuit-evaluation models.
//
// See examples/ for runnable programs.
package eve

import (
	"fmt"

	"repro/internal/analytic"
	ieve "repro/internal/eve"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/workloads"
)

// System identifies a simulated system configuration (Table III).
type System struct {
	kind     sim.Kind
	n        int
	interval int64
}

// The simulated systems.
var (
	IO   = System{kind: sim.SysIO}
	O3   = System{kind: sim.SysO3}
	O3IV = System{kind: sim.SysO3IV}
	O3DV = System{kind: sim.SysO3DV}
)

// EVE returns the O3+EVE-n system for a parallelization factor n in
// {1, 2, 4, 8, 16, 32}.
func EVE(n int) System {
	switch n {
	case 1, 2, 4, 8, 16, 32:
		return System{kind: sim.SysO3EVE, n: n}
	}
	panic(fmt.Sprintf("eve: invalid parallelization factor %d", n))
}

// Systems returns the full Fig 6 sweep: IO, O3, O3+IV, O3+DV and every
// EVE-n design point.
func Systems() []System {
	out := []System{IO, O3, O3IV, O3DV}
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		out = append(out, EVE(n))
	}
	return out
}

// Name reports the paper's label for the system.
func (s System) Name() string { return s.config().Name() }

// IsEVE reports whether the system is an EVE design point.
func (s System) IsEVE() bool { return s.kind == sim.SysO3EVE }

func (s System) config() sim.Config {
	return sim.Config{Kind: s.kind, N: s.n, Interval: s.interval}
}

// WithIntervals returns the same system with interval sampling enabled:
// every window simulated cycles the run records per-component counter
// deltas, gauge values and EVE reconfiguration events into
// Result.Intervals. Sampling observes without perturbing — the simulated
// outcome is byte-identical with or without it. A window ≤ 0 disables
// sampling (the default).
func (s System) WithIntervals(window int64) System {
	if window < 0 {
		window = 0
	}
	s.interval = window
	return s
}

// AreaFactor reports the system's area relative to the bare O3 core
// (§VII-B).
func (s System) AreaFactor() float64 {
	return analytic.SystemAreaFactor(s.Name())
}

// Benchmark is one of the suite's kernels: the paper's Table IV seven plus
// the RiVEC-breadth extensions (spmv, streamcluster-dist, redux).
type Benchmark struct{ k *workloads.Kernel }

// Benchmarks returns the ten-kernel suite at the standard scaled sizes.
func Benchmarks() []Benchmark {
	ks := workloads.Default()
	out := make([]Benchmark, len(ks))
	for i, k := range ks {
		out[i] = Benchmark{k: k}
	}
	return out
}

// BenchmarkByName finds a suite kernel: vvadd, mmult, k-means, pathfinder,
// jacobi-2d, backprop, sw, spmv, streamcluster-dist or redux.
func BenchmarkByName(name string) (Benchmark, error) {
	k, err := workloads.ByName(workloads.Default(), name)
	if err != nil {
		return Benchmark{}, err
	}
	return Benchmark{k: k}, nil
}

// Name reports the kernel name.
func (b Benchmark) Name() string { return b.k.Name }

// Input describes the kernel's input size.
func (b Benchmark) Input() string { return b.k.Input }

// InGeomean reports membership in the paper's geomean set.
func (b Benchmark) InGeomean() bool { return b.k.InGeomean() }

// Breakdown is EVE's execution-time split by Fig 7 category, in cycles.
type Breakdown map[string]int64

// Result summarizes one simulation.
type Result struct {
	System string
	Kernel string
	Cycles int64
	// DynamicInstrs counts scalar plus vector instructions; TotalOps weights
	// vector instructions by their active vector length (Table IV's DOp).
	DynamicInstrs uint64
	TotalOps      uint64
	VectorPct     float64
	// Breakdown is non-nil for EVE systems (Fig 7 categories).
	Breakdown Breakdown
	// VMUStallFraction is Fig 8's metric (EVE systems).
	VMUStallFraction float64
	// SpawnCost is the L2 reconfiguration cost charged at EVE spawn (§V-E).
	SpawnCost int64
	// Stats is the flattened hierarchical counter snapshot of every simulated
	// component, keyed by dotted path (core.insts, l2.miss_rate,
	// eve.breakdown.busy, ...); distributions expand to .count/.sum/.min/
	// .max/.mean keys. See internal/probe for the naming scheme.
	Stats map[string]float64
	// Snapshot is the same end-of-run registry snapshot in structured form:
	// sorted entries supporting prefix queries (Snapshot.Filter("l2.")),
	// typed lookups and the gem5-style text report. Stats is its Flatten.
	Snapshot probe.Stats
	// Intervals is the cycle-windowed time series — per-window counter
	// deltas, gauges, and EVE's reconfiguration timeline — when the system
	// was built with WithIntervals. Nil otherwise.
	Intervals *probe.Series
}

// Derived computes the interpreted metric set for this result — per-level
// miss rates, MPKI, AMAT, stall fractions, DRAM bandwidth utilization and
// Fig 7 category shares — via the internal/metrics derivation layer.
// Underivable ratios (a crashed or access-free run) come back as 0 with the
// Degenerate flags set; see metrics.Derived.
func (r Result) Derived() metrics.Derived {
	return metrics.Derive(r.Snapshot, r.Cycles)
}

// Simulate runs the benchmark on the system, validating the computation's
// output against the kernel's reference; a validation failure is returned
// as an error.
func Simulate(s System, b Benchmark) (Result, error) {
	r := sim.Run(s.config(), b.k)
	if r.Err != nil {
		return Result{}, fmt.Errorf("eve: %s on %s produced wrong results: %w",
			b.Name(), s.Name(), r.Err)
	}
	return fromSimResult(r), nil
}

func fromSimResult(r sim.Result) Result {
	out := Result{
		System:           r.System,
		Kernel:           r.Kernel,
		Cycles:           r.Cycles,
		DynamicInstrs:    r.Mix.DynamicInstrs(),
		TotalOps:         r.Mix.TotalOps(),
		VectorPct:        r.Mix.VectorPct(),
		VMUStallFraction: r.VMUStall,
		SpawnCost:        r.SpawnCost,
		Stats:            r.Stats.Flatten(),
		Snapshot:         r.Stats,
		Intervals:        r.Intervals,
	}
	if r.Breakdown.Total() > 0 {
		out.Breakdown = Breakdown{}
		for c := ieve.Category(0); c < ieve.NumCategories; c++ {
			out.Breakdown[c.String()] = r.Breakdown[c]
		}
	}
	return out
}

// SimulateMatrix runs every benchmark on every system concurrently on a
// bounded pool of workers goroutines (≤ 0 selects GOMAXPROCS) and returns
// results indexed [benchmark][system]. Each cell is an independent
// simulation, so the matrix is deterministic: it equals cell-for-cell what
// serial Simulate calls would produce, at any worker count. The first
// validation failure aborts the sweep and is returned as the error.
func SimulateMatrix(systems []System, benches []Benchmark, workers int) ([][]Result, error) {
	cfgs := make([]sim.Config, len(systems))
	for i, s := range systems {
		cfgs[i] = s.config()
	}
	ks := make([]*workloads.Kernel, len(benches))
	for i, b := range benches {
		ks[i] = b.k
	}
	raw, err := sweep.Matrix(cfgs, ks, sweep.Options{Workers: workers, AbortOnError: true})
	if err != nil {
		return nil, fmt.Errorf("eve: %w", err)
	}
	out := make([][]Result, len(raw))
	for i, row := range raw {
		out[i] = make([]Result, len(row))
		for j, r := range row {
			out[i][j] = fromSimResult(r)
		}
	}
	return out, nil
}

// Speedup reports how much faster r is than base.
func (r Result) Speedup(base Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(r.Cycles)
}

// Circuit-evaluation entry points (§VI).

// AreaOverhead reports EVE-n's total L2 area overhead (EVE-8: 11.7%).
func AreaOverhead(n int) float64 { return analytic.TotalOverhead(n) }

// CycleTimeNS reports the EVE-n SRAM cycle time (1.025ns for n ≤ 8).
func CycleTimeNS(n int) float64 { return analytic.CycleTimeNS(n) }

// Fig2Point is one point of the §II taxonomy sweep.
type Fig2Point struct {
	N                 int
	InSituALUs        int
	AddCycles         int
	MulCycles         int
	AddThroughputNorm float64
	MulThroughputNorm float64
}

// Fig2Sweep returns the measured latency/throughput sweep of Fig 2.
func Fig2Sweep() []Fig2Point {
	rows := analytic.Fig2()
	out := make([]Fig2Point, len(rows))
	for i, r := range rows {
		out[i] = Fig2Point{
			N: r.N, InSituALUs: r.ALUs,
			AddCycles: r.AddLat, MulCycles: r.MulLat,
			AddThroughputNorm: r.AddThpN, MulThroughputNorm: r.MulThpN,
		}
	}
	return out
}

// HardwareVL reports the hardware vector length of an EVE-n built from half
// a 512 KB L2 (Table III).
func HardwareVL(n int) int {
	m := ieve.New(ieve.DefaultConfig(n), nullLevel{})
	return m.HWVL()
}

// nullLevel satisfies the memory interface for capacity queries only.
type nullLevel struct{}

func (nullLevel) Access(addr uint64, write bool, t int64) mem.Result {
	panic("eve: capacity-only engine accessed memory")
}
func (nullLevel) Name() string { return "null" }
