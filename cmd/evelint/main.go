// Command evelint is the project's static-analysis gate: it runs the
// internal/lint analyzer suite (simpurity, probepurity, maporder, paramlit,
// errdrop, hotalloc, telemetryboundary) over type-checked packages and fails
// on any finding that is not annotated with an //evelint:allow directive.
//
// It speaks the `go vet -vettool` protocol, so the canonical invocation is
//
//	go build -o bin/evelint ./cmd/evelint
//	go vet -vettool=bin/evelint ./...
//
// As a convenience, running it with package patterns re-execs go vet with
// itself as the vettool:
//
//	bin/evelint ./...
//
// The protocol (see $GOROOT/src/cmd/go/internal/work/exec.go, vetConfig):
// cmd/go first probes `evelint -V=full` for a cache-busting tool ID, then
// invokes `evelint <objdir>/vet.cfg` once per package. The config carries
// the package's source files plus export-data paths for every import, so
// type-checking works offline with no network or module downloads.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			printVersion()
			return 0
		case args[0] == "-flags" || args[0] == "--flags":
			// cmd/go queries supported analyzer flags; evelint has none.
			fmt.Println("[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return runUnitchecker(args[0])
		}
	}
	return reexecGoVet(args)
}

// printVersion satisfies cmd/go's tool-ID handshake: the output must have
// at least three fields with f[1] == "version" (see b.toolID in
// $GOROOT/src/cmd/go/internal/work/buildid.go). The whole line becomes the
// vet cache key, so it embeds a hash of this executable — rebuilding
// evelint with changed analyzers invalidates stale vet results.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil)[:16])
			}
			_ = f.Close() // read-only handle; the hash is already computed
		}
	}
	fmt.Printf("evelint version %s\n", id)
}

// vetConfig mirrors the JSON written by cmd/go next to each package
// (struct vetConfig in $GOROOT/src/cmd/go/internal/work/exec.go).
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// runUnitchecker analyzes the single package described by a vet.cfg file.
func runUnitchecker(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "evelint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "evelint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// evelint exports no facts, but cmd/go expects the vetx output file to
	// exist so it can cache the (empty) result of this run.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "evelint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "evelint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	// Imports resolve through the export-data files cmd/go already built:
	// canonicalize the source path via ImportMap, then open PackageFile.
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	tconf := types.Config{
		Importer: importer.ForCompiler(fset, compiler, lookup),
		Sizes:    types.SizesFor(compiler, runtime.GOARCH),
	}
	info := lint.NewTypesInfo()
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "evelint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	count := 0
	err = lint.RunAll(fset, files, pkg, info, func(a *lint.Analyzer, d lint.Diagnostic) {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), a.Name, d.Message)
		count++
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "evelint: %v\n", err)
		return 1
	}
	if count > 0 {
		return 2
	}
	return 0
}

// reexecGoVet makes `evelint ./...` work standalone by re-running
// `go vet -vettool=<this binary>` with the given arguments.
func reexecGoVet(args []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "evelint: %v\n", err)
		return 1
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, args...)...)
	cmd.Stdin, cmd.Stdout, cmd.Stderr = os.Stdin, os.Stdout, os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "evelint: %v\n", err)
		return 1
	}
	return 0
}
