package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildEvelint compiles the vettool binary into a temp dir once per test
// process and returns its path.
func buildEvelint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "evelint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building evelint: %v\n%s", err, out)
	}
	return bin
}

// writeModule lays out a throwaway module named "repro" (the analyzer
// scopes key off that module path) with the given files.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module repro\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// goVet runs `go vet -vettool=<bin> ./...` in dir.
func goVet(t *testing.T, bin, dir string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestVettoolHandshake(t *testing.T) {
	bin := buildEvelint(t)
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	f := strings.Fields(string(out))
	// cmd/go requires >= 3 fields with f[1] == "version" (b.toolID in
	// GOROOT/src/cmd/go/internal/work/buildid.go).
	if len(f) < 3 || f[1] != "version" {
		t.Fatalf("-V=full output %q does not satisfy the toolID handshake", out)
	}
}

func TestGoVetFailsOnImpureSimPackage(t *testing.T) {
	bin := buildEvelint(t)
	dir := writeModule(t, map[string]string{
		"internal/sim/sim.go": `package sim

import "time"

// Tick leaks wall-clock time into a simulation package.
func Tick() int64 { return time.Now().UnixNano() }
`,
	})
	out, err := goVet(t, bin, dir)
	if err == nil {
		t.Fatalf("go vet succeeded on an impure sim package; output:\n%s", out)
	}
	if !strings.Contains(out, "wall-clock read") || !strings.Contains(out, "simpurity") {
		t.Fatalf("missing simpurity diagnostic in go vet output:\n%s", out)
	}
}

func TestGoVetPassesOnCleanAndAllowedPackages(t *testing.T) {
	bin := buildEvelint(t)
	dir := writeModule(t, map[string]string{
		// Clean sim package: deterministic, config-driven.
		"internal/sim/sim.go": `package sim

// Step advances a counter; no host state involved.
func Step(n int64) int64 { return n + 1 }
`,
		// Intentional wall-clock use behind the escape hatch.
		"internal/sweep/observe.go": `package sweep

import "time"

// Stamp is progress telemetry, outside the determinism contract.
func Stamp() int64 {
	//evelint:allow simpurity -- progress telemetry, not a simulated result
	return time.Now().UnixNano()
}
`,
	})
	out, err := goVet(t, bin, dir)
	if err != nil {
		t.Fatalf("go vet failed on a clean module: %v\n%s", err, out)
	}
}
