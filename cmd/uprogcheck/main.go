// Command uprogcheck statically verifies the micro-program ROM: it runs the
// internal/uprog/check analyzer over every generator × operand shape ×
// parallelization factor × masked/unmasked case and reports any violation of
// the row-bounds, liveness, mask, structural or cycle-budget disciplines.
//
//	uprogcheck            # sweep the whole ROM, exit 1 on any violation
//	uprogcheck -n 8,32    # restrict the sweep to EVE-8 and EVE-32
//	uprogcheck -v         # also print each clean program's static cycle bound
//
// Output is deterministic (cases sorted by name, violations in discovery
// order), so CI diffs are stable.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/uprog"
	"repro/internal/uprog/check"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "uprogcheck:", err)
		os.Exit(1)
	}
}

// run is the command body, parameterized for tests.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("uprogcheck", flag.ContinueOnError)
	factors := fs.String("n", "", "comma-separated parallelization factors to sweep (default: all of 1,2,4,8,16,32)")
	verbose := fs.Bool("v", false, "print each clean program's static cycle bound")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}

	ns := check.Factors
	if *factors != "" {
		ns = nil
		for _, f := range strings.Split(*factors, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 || 32%n != 0 {
				return fmt.Errorf("-n: %q is not a valid factor (need a divisor of 32)", f)
			}
			ns = append(ns, n)
		}
	}

	var cases []check.Case
	for _, n := range ns {
		cases = append(cases, check.Cases(uprog.NewLayout(n))...)
	}
	sort.Slice(cases, func(i, j int) bool { return cases[i].Name < cases[j].Name })

	w := bufio.NewWriter(stdout)
	bad := 0
	total := 0
	for _, c := range cases {
		rep := check.Program(c.Prog, c.Spec)
		total++
		if rep.OK() {
			if *verbose {
				fmt.Fprintf(w, "ok   %-28s %d cycles\n", c.Name, rep.Cycles)
			}
			continue
		}
		bad++
		for _, v := range rep.Violations {
			fmt.Fprintf(w, "FAIL %s: %s\n", c.Name, v)
		}
	}
	fmt.Fprintf(w, "uprogcheck: %d programs, %d with violations\n", total, bad)
	if err := w.Flush(); err != nil {
		return err
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d micro-programs violate the ROM discipline", bad, total)
	}
	return nil
}
