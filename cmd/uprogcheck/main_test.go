package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestCleanSweep is the CLI face of the ROM gate: the full sweep reports
// zero violations and the output is byte-deterministic across runs.
func TestCleanSweep(t *testing.T) {
	var first bytes.Buffer
	if err := run(nil, &first); err != nil {
		t.Fatalf("clean sweep failed: %v\n%s", err, first.String())
	}
	if strings.Contains(first.String(), "FAIL") {
		t.Fatalf("clean sweep printed FAIL lines:\n%s", first.String())
	}
	if !strings.Contains(first.String(), " 0 with violations\n") {
		t.Fatalf("summary line missing:\n%s", first.String())
	}
	var second bytes.Buffer
	if err := run(nil, &second); err != nil {
		t.Fatalf("second sweep failed: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("output is not deterministic across runs")
	}
}

func TestFactorRestriction(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "8,32", "-v"}, &out); err != nil {
		t.Fatalf("restricted sweep failed: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "vmv/n=8") || !strings.Contains(s, "vmv/n=32") {
		t.Errorf("-v output missing expected cases:\n%s", s)
	}
	if strings.Contains(s, "n=16") {
		t.Errorf("-n 8,32 sweep leaked n=16 cases:\n%s", s)
	}
	// -v lines carry the static cycle bound; vmv at EVE-8 measures 10.
	if !strings.Contains(s, "vmv/n=8                      10 cycles") {
		t.Errorf("verbose cycle bound line missing:\n%s", s)
	}
}

func TestBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "64"}, &out); err == nil {
		t.Error("invalid factor 64 accepted (32%64 != 0)")
	}
	if err := run([]string{"-n", "bogus"}, &out); err == nil {
		t.Error("non-numeric factor accepted")
	}
	if err := run([]string{"extra"}, &out); err == nil {
		t.Error("positional argument accepted")
	}
}
