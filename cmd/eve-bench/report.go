package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/workloads"
)

// Schema identifies the report format; bump on incompatible changes so a
// -compare against an old trajectory file fails loudly instead of weirdly.
const Schema = "eve-bench/v1"

// Report is one BENCH_<label>.json: the repo's performance trajectory entry
// for one commit. The simulated section is bit-stable — identical across
// runs, worker counts and machines — while the host section measures this
// machine's wall-clock and allocation behaviour and is only comparable
// against baselines from comparable hardware (hence the percentage band).
type Report struct {
	Schema string `json:"schema"`
	Label  string `json:"label"`
	// Suite is "small" or "default" (workload input scaling).
	Suite     string    `json:"suite"`
	Simulated Simulated `json:"simulated"`
	// Host is omitted in -sim-only mode, making the whole file byte-stable.
	Host *Host `json:"host,omitempty"`
}

// Simulated is the deterministic section: every metric in it must be
// bit-identical for the same (suite, kernels, systems) at any worker count.
type Simulated struct {
	Kernels []string  `json:"kernels"`
	Systems []string  `json:"systems"`
	Cells   []SimCell `json:"cells"`
}

// SimCell is one (kernel, system) measurement.
type SimCell struct {
	Kernel        string `json:"kernel"`
	System        string `json:"system"`
	Cycles        int64  `json:"cycles"`
	DynamicInstrs uint64 `json:"dynamic_instrs"`
	TotalOps      uint64 `json:"total_ops"`
	// MemChecksum is the FNV-1a hash of the flat backing store after the
	// run, rendered as a hex string (a raw uint64 would lose bits to JSON's
	// float64 numbers).
	MemChecksum string `json:"mem_checksum"`
	// Breakdown is the Fig 7 cycle attribution (EVE systems only).
	Breakdown map[string]int64 `json:"breakdown,omitempty"`
	// Derived is the full interpreted metric set from internal/metrics.
	Derived metrics.Derived `json:"derived"`
}

// Host is the host-performance section: how expensive the simulator itself
// was on this machine. Wall time is min-of-k over Repeats full-matrix runs;
// allocation counts are runtime.MemStats deltas around each run, also
// min-of-k (GC scheduling adds noise in both directions).
type Host struct {
	GoVersion     string  `json:"go_version"`
	GOOS          string  `json:"goos"`
	GOARCH        string  `json:"goarch"`
	NumCPU        int     `json:"num_cpu"`
	Workers       int     `json:"workers"`
	Repeats       int     `json:"repeats"`
	WallNS        []int64 `json:"wall_ns"`
	WallNSMin     int64   `json:"wall_ns_min"`
	AllocsMin     uint64  `json:"allocs_min"`
	AllocBytesMin uint64  `json:"alloc_bytes_min"`
	// NumGCMin and GCPauseNSMin are GC-cycle and stop-the-world-pause
	// deltas around a repetition, min-of-k like the allocation deltas: how
	// hard the collector worked to run the matrix once.
	NumGCMin     uint32 `json:"num_gc_min"`
	GCPauseNSMin uint64 `json:"gc_pause_ns_min"`
}

// benchConfig parameterizes one harness run.
type benchConfig struct {
	label   string
	suite   string
	kernels []*workloads.Kernel
	systems []sim.Config
	workers int
	repeats int
	host    bool // emit the host section
}

// buildReport runs the kernel×system matrix `repeats` times on the sweep
// pool, records the simulated metrics from the first repetition, verifies
// the later repetitions reproduced them bit-for-bit (a free end-to-end
// determinism tripwire), and measures host wall time and allocations around
// each repetition.
func buildReport(cfg benchConfig) (*Report, error) {
	if cfg.repeats < 1 {
		cfg.repeats = 1
	}
	cells := make([]sweep.Cell, 0, len(cfg.kernels)*len(cfg.systems))
	for _, k := range cfg.kernels {
		for _, s := range cfg.systems {
			k, s := k, s
			cells = append(cells, sweep.Cell{
				Kernel: k.Name,
				System: s.Name(),
				// RunTraced with a nil tracer: same timing as sim.Run, plus
				// the flat-memory checksum the trajectory records.
				Run: func() sim.Result { return sim.RunTraced(s, k, nil) },
			})
		}
	}

	rep := &Report{Schema: Schema, Label: cfg.label, Suite: cfg.suite}
	for _, k := range cfg.kernels {
		rep.Simulated.Kernels = append(rep.Simulated.Kernels, k.Name)
	}
	for _, s := range cfg.systems {
		rep.Simulated.Systems = append(rep.Simulated.Systems, s.Name())
	}

	host := &Host{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Workers:   cfg.workers,
		Repeats:   cfg.repeats,
	}

	var first []sim.Result
	for repIdx := 0; repIdx < cfg.repeats; repIdx++ {
		// Quiesce the heap so MemStats deltas attribute to the sweep, not to
		// garbage carried over from the previous repetition.
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now() //evelint:allow simpurity -- host-performance measurement is eve-bench's purpose; simulated metrics never see it
		results, err := sweep.ForEach(cells, sweep.Options{Workers: cfg.workers})
		wall := time.Since(start) //evelint:allow simpurity -- host-performance measurement, see above
		runtime.ReadMemStats(&m1)
		if err != nil {
			return nil, fmt.Errorf("eve-bench: %w", err)
		}

		host.WallNS = append(host.WallNS, wall.Nanoseconds())
		allocs := m1.Mallocs - m0.Mallocs
		allocBytes := m1.TotalAlloc - m0.TotalAlloc
		numGC := m1.NumGC - m0.NumGC
		gcPause := m1.PauseTotalNs - m0.PauseTotalNs
		if repIdx == 0 || wall.Nanoseconds() < host.WallNSMin {
			host.WallNSMin = wall.Nanoseconds()
		}
		if repIdx == 0 || allocs < host.AllocsMin {
			host.AllocsMin = allocs
		}
		if repIdx == 0 || allocBytes < host.AllocBytesMin {
			host.AllocBytesMin = allocBytes
		}
		if repIdx == 0 || numGC < host.NumGCMin {
			host.NumGCMin = numGC
		}
		if repIdx == 0 || gcPause < host.GCPauseNSMin {
			host.GCPauseNSMin = gcPause
		}

		if repIdx == 0 {
			first = results
			continue
		}
		for i := range results {
			if results[i].Cycles != first[i].Cycles || results[i].MemChecksum != first[i].MemChecksum {
				return nil, fmt.Errorf("eve-bench: repetition %d diverged from repetition 0 on %s/%s "+
					"(cycles %d vs %d, checksum %#x vs %#x) — the simulator is nondeterministic",
					repIdx, cells[i].Kernel, cells[i].System,
					results[i].Cycles, first[i].Cycles,
					results[i].MemChecksum, first[i].MemChecksum)
			}
		}
	}

	for _, r := range first {
		rep.Simulated.Cells = append(rep.Simulated.Cells, toCell(r))
	}
	if cfg.host {
		rep.Host = host
	}
	return rep, nil
}

// toCell converts one sweep result into its trajectory record.
func toCell(r sim.Result) SimCell {
	c := SimCell{
		Kernel:        r.Kernel,
		System:        r.System,
		Cycles:        r.Cycles,
		DynamicInstrs: r.Mix.DynamicInstrs(),
		TotalOps:      r.Mix.TotalOps(),
		MemChecksum:   fmt.Sprintf("0x%016x", r.MemChecksum),
		Derived:       metrics.Derive(r.Stats, r.Cycles),
	}
	if r.Breakdown.Total() > 0 {
		c.Breakdown = breakdownMap(r)
	}
	return c
}

// breakdownMap renders the Fig 7 breakdown as category-name → cycles.
func breakdownMap(r sim.Result) map[string]int64 {
	out := make(map[string]int64)
	for _, s := range r.Stats.Filter("eve.breakdown.") {
		out[s.Name[len("eve.breakdown."):]] = s.Int
	}
	return out
}

// canonicalJSON renders v as canonical, key-sorted, indented JSON with a
// trailing newline. The value is round-tripped through json.Number so
// numeric literals survive verbatim (no float re-parsing), and re-marshaled
// as maps, which encoding/json emits with sorted keys.
func canonicalJSON(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var tree any
	if err := dec.Decode(&tree); err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(tree, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
