// Command eve-bench is the repo's performance-trajectory harness: it runs
// the kernel×system matrix on the parallel sweep engine, records both the
// simulated performance of every cell (cycles, Fig 7 breakdowns, the full
// derived-metric set from internal/metrics, flat-memory checksum) and the
// host performance of the simulator itself (min-of-k wall time, allocation
// deltas), and emits a canonical key-sorted BENCH_<label>.json.
//
//	eve-bench -small                          # quick suite, writes BENCH_dev.json
//	eve-bench -small -compare bench/baseline.json
//	eve-bench -small -sim-only -o sim.json    # byte-stable across machines
//
// The simulated section is deterministic by contract: -compare fails (exit
// 1, readable diff table) when *any* simulated metric differs from the
// baseline, and when host wall time regresses beyond -band percent. CI runs
// the comparison on every PR, so a timing-model change must either be
// intentional — refresh bench/baseline.json — or it is a regression.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is the command body, parameterized for tests. Exit codes: 0 on
// success, 1 on a comparison failure or regression, 2 on usage/run errors.
// Diagnostics go through a bufio.Writer so per-line write errors latch; if
// stderr itself is broken there is nowhere left to report that, so the final
// Flush is best-effort. The named return keeps every exit on the return
// path, so the deferred profiler flush always runs.
func realMain(args []string, stdout, stderr io.Writer) (code int) {
	w := bufio.NewWriter(stderr)
	defer func() { _ = w.Flush() }()
	fs := flag.NewFlagSet("eve-bench", flag.ContinueOnError)
	fs.SetOutput(w)
	small := fs.Bool("small", false, "use reduced workload sizes (the CI suite)")
	kernelCSV := fs.String("kernels", "", "comma-separated kernel subset (default: the whole suite)")
	systemCSV := fs.String("systems", "", "comma-separated system subset (default: all Table III systems)")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "sweep worker goroutines (simulated results are identical at any count)")
	repeat := fs.Int("repeat", 3, "full-matrix repetitions; host wall time is the min over them")
	label := fs.String("label", "dev", "report label; default output file is BENCH_<label>.json")
	out := fs.String("o", "", "output path (default BENCH_<label>.json; - for stdout)")
	simOnly := fs.Bool("sim-only", false, "omit the host section, making the whole file byte-stable")
	compare := fs.String("compare", "", "baseline BENCH_*.json to diff against; any simulated difference or a host wall-time regression beyond -band fails")
	band := fs.Float64("band", 25, "allowed host wall-time regression in percent (negative disables the host check)")
	prof := telemetry.NewProfiler(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := prof.Start(); err != nil {
		fmt.Fprintln(w, "eve-bench:", err)
		return 2
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(w, "eve-bench:", err)
			if code == 0 {
				code = 2
			}
		}
	}()

	cfg := benchConfig{
		label:   *label,
		suite:   "default",
		workers: *parallel,
		repeats: *repeat,
		host:    !*simOnly,
	}
	suite := workloads.Default()
	if *small {
		cfg.suite = "small"
		suite = workloads.Small()
	}
	var err error
	if cfg.kernels, err = selectKernels(suite, *kernelCSV); err != nil {
		fmt.Fprintln(w, "eve-bench:", err)
		return 2
	}
	if cfg.systems, err = selectSystems(*systemCSV); err != nil {
		fmt.Fprintln(w, "eve-bench:", err)
		return 2
	}

	fmt.Fprintf(w, "eve-bench: %d kernels x %d systems (%s suite), %d workers, %d repetition(s)\n",
		len(cfg.kernels), len(cfg.systems), cfg.suite, cfg.workers, cfg.repeats)
	rep, err := buildReport(cfg)
	if err != nil {
		fmt.Fprintln(w, err)
		return 2
	}

	blob, err := canonicalJSON(rep)
	if err != nil {
		fmt.Fprintln(w, "eve-bench:", err)
		return 2
	}
	path := *out
	if path == "" {
		path = "BENCH_" + *label + ".json"
	}
	if path == "-" {
		if _, err := stdout.Write(blob); err != nil {
			fmt.Fprintln(w, "eve-bench:", err)
			return 2
		}
	} else {
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			fmt.Fprintln(w, "eve-bench:", err)
			return 2
		}
		fmt.Fprintf(w, "eve-bench: wrote %s (%d cells)\n", path, len(rep.Simulated.Cells))
	}
	if rep.Host != nil {
		fmt.Fprintf(w, "eve-bench: host wall min %.3fs over %d run(s), %d allocs (%d bytes), %d GC(s) (%.2fms pause)\n",
			float64(rep.Host.WallNSMin)/1e9, rep.Host.Repeats, rep.Host.AllocsMin, rep.Host.AllocBytesMin,
			rep.Host.NumGCMin, float64(rep.Host.GCPauseNSMin)/1e6)
	}

	if *compare == "" {
		return 0
	}
	base, err := loadReport(*compare)
	if err != nil {
		fmt.Fprintln(w, "eve-bench:", err)
		return 2
	}
	diffs, err := compareReports(base, rep, *band)
	if err != nil {
		fmt.Fprintln(w, "eve-bench:", err)
		return 2
	}
	if len(diffs) > 0 {
		fmt.Fprintf(w, "eve-bench: %d metric(s) diverge from %s:\n", len(diffs), *compare)
		if err := renderDiffs(w, diffs); err != nil {
			fmt.Fprintln(w, "eve-bench:", err)
		}
		fmt.Fprintln(w, "eve-bench: FAIL — if the change is intentional, refresh the baseline with:")
		fmt.Fprintf(w, "  go run ./cmd/eve-bench %s -label=baseline -o=%s\n",
			suiteFlag(cfg.suite), *compare)
		return 1
	}
	fmt.Fprintf(w, "eve-bench: OK — simulated section matches %s", *compare)
	if *band >= 0 && base.Host != nil && rep.Host != nil {
		fmt.Fprintf(w, "; host wall within +%g%%", *band)
	}
	fmt.Fprintln(w)
	return 0
}

func suiteFlag(suite string) string {
	if suite == "small" {
		return "-small"
	}
	return ""
}

// loadReport reads and validates a trajectory file.
func loadReport(path string) (*Report, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema == "" {
		return nil, fmt.Errorf("%s: not an eve-bench report (no schema field)", path)
	}
	return &rep, nil
}

// selectKernels resolves a comma-separated subset against the suite, or the
// whole suite for an empty selector.
func selectKernels(suite []*workloads.Kernel, csv string) ([]*workloads.Kernel, error) {
	if csv == "" {
		return suite, nil
	}
	var out []*workloads.Kernel
	for _, name := range strings.Split(csv, ",") {
		k, err := workloads.ByName(suite, strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

// selectSystems resolves a comma-separated subset of Table III system names,
// or the full sweep for an empty selector.
func selectSystems(csv string) ([]sim.Config, error) {
	all := sim.AllSystems()
	if csv == "" {
		return all, nil
	}
	var out []sim.Config
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, s := range all {
			if strings.EqualFold(s.Name(), name) {
				out = append(out, s)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown system %q", name)
		}
	}
	return out, nil
}
