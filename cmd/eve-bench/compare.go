package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Diff is one comparison finding: a metric whose value differs between the
// baseline and the current report.
type Diff struct {
	Cell   string // "kernel/system", or "(report)" for report-level fields
	Metric string // dotted path inside the cell ("cycles", "derived.l2.mpki")
	Base   string
	Cur    string
}

// compareReports diffs cur against base. Simulated metrics are deterministic
// by contract, so *any* difference — a cycle count, a checksum, the tenth
// decimal of a derived float — is a finding: the literal JSON tokens are
// compared, making the check exactly as strict as the byte-identity the CI
// trajectory demands. Host wall time is compared only when bandPct >= 0 and
// both reports carry a host section: a regression is WallNSMin exceeding the
// baseline's by more than bandPct percent. Faster-than-baseline is never a
// finding. Other host fields (allocations, CPU counts) are informational and
// not compared — they vary legitimately across Go versions and machines.
func compareReports(base, cur *Report, bandPct float64) ([]Diff, error) {
	var diffs []Diff
	for _, hdr := range []struct{ name, b, c string }{
		{"schema", base.Schema, cur.Schema},
		{"suite", base.Suite, cur.Suite},
	} {
		if hdr.b != hdr.c {
			diffs = append(diffs, Diff{Cell: "(report)", Metric: hdr.name, Base: hdr.b, Cur: hdr.c})
		}
	}
	if len(diffs) > 0 {
		// Different schema or workload scaling: cell-level numbers are not
		// comparable, so stop at the header findings.
		return diffs, nil
	}

	baseCells, err := indexCells(base.Simulated.Cells)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	curCells, err := indexCells(cur.Simulated.Cells)
	if err != nil {
		return nil, fmt.Errorf("current: %w", err)
	}
	keys := make([]string, 0, len(baseCells))
	for k := range baseCells {
		keys = append(keys, k)
	}
	for k := range curCells {
		if _, ok := baseCells[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	for _, key := range keys {
		b, inBase := baseCells[key]
		c, inCur := curCells[key]
		switch {
		case !inCur:
			diffs = append(diffs, Diff{Cell: key, Metric: "(cell)", Base: "present", Cur: "missing"})
		case !inBase:
			diffs = append(diffs, Diff{Cell: key, Metric: "(cell)", Base: "missing", Cur: "present"})
		default:
			cellDiffs, err := diffCell(key, b, c)
			if err != nil {
				return nil, err
			}
			diffs = append(diffs, cellDiffs...)
		}
	}

	if bandPct >= 0 && base.Host != nil && cur.Host != nil {
		limit := float64(base.Host.WallNSMin) * (1 + bandPct/100)
		if float64(cur.Host.WallNSMin) > limit {
			diffs = append(diffs, Diff{
				Cell:   "(host)",
				Metric: fmt.Sprintf("wall_ns_min (band +%g%%)", bandPct),
				Base:   fmt.Sprintf("%d", base.Host.WallNSMin),
				Cur:    fmt.Sprintf("%d", cur.Host.WallNSMin),
			})
		}
	}
	return diffs, nil
}

// indexCells keys cells by kernel/system, rejecting duplicates.
func indexCells(cells []SimCell) (map[string]SimCell, error) {
	out := make(map[string]SimCell, len(cells))
	for _, c := range cells {
		key := c.Kernel + "/" + c.System
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("duplicate cell %s", key)
		}
		out[key] = c
	}
	return out, nil
}

// diffCell compares every leaf of two cells' JSON trees. Numbers compare by
// their literal JSON tokens (json.Number), so a derived float differing in
// the last bit is still a finding — exactly the bit-stability the simulated
// section promises.
func diffCell(key string, base, cur SimCell) ([]Diff, error) {
	b, err := flattenJSON(base)
	if err != nil {
		return nil, err
	}
	c, err := flattenJSON(cur)
	if err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(b))
	for p := range b {
		paths = append(paths, p)
	}
	for p := range c {
		if _, ok := b[p]; !ok {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)
	var diffs []Diff
	for _, p := range paths {
		bv, inB := b[p]
		cv, inC := c[p]
		if !inB {
			bv = "(absent)"
		}
		if !inC {
			cv = "(absent)"
		}
		if bv != cv {
			diffs = append(diffs, Diff{Cell: key, Metric: p, Base: bv, Cur: cv})
		}
	}
	return diffs, nil
}

// flattenJSON renders v's JSON tree as dotted-leaf-path → literal token.
func flattenJSON(v any) (map[string]string, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var tree any
	if err := dec.Decode(&tree); err != nil {
		return nil, err
	}
	out := make(map[string]string)
	flattenInto(out, "", tree)
	return out, nil
}

func flattenInto(out map[string]string, prefix string, node any) {
	switch x := node.(type) {
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flattenInto(out, p, x[k])
		}
	case []any:
		for i, e := range x {
			flattenInto(out, fmt.Sprintf("%s[%d]", prefix, i), e)
		}
	case json.Number:
		out[prefix] = x.String()
	case string:
		out[prefix] = x
	case bool:
		out[prefix] = fmt.Sprintf("%t", x)
	case nil:
		out[prefix] = "null"
	}
}

// renderDiffs writes the findings as an aligned, readable table.
func renderDiffs(w io.Writer, diffs []Diff) error {
	cellW, metricW, baseW := len("cell"), len("metric"), len("baseline")
	for _, d := range diffs {
		cellW = max(cellW, len(d.Cell))
		metricW = max(metricW, len(d.Metric))
		baseW = max(baseW, len(d.Base))
	}
	if _, err := fmt.Fprintf(w, "%-*s  %-*s  %-*s  %s\n",
		cellW, "cell", metricW, "metric", baseW, "baseline", "current"); err != nil {
		return err
	}
	for _, d := range diffs {
		if _, err := fmt.Fprintf(w, "%-*s  %-*s  %-*s  %s\n",
			cellW, d.Cell, metricW, d.Metric, baseW, d.Base, d.Cur); err != nil {
			return err
		}
	}
	return nil
}
