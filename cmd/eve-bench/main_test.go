package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/workloads"
)

// quickConfig is a three-system, two-kernel matrix small enough for unit
// tests but covering a scalar system, an OoO system and an EVE design point.
func quickConfig(workers int) benchConfig {
	suite := workloads.Small()
	vvadd, err := workloads.ByName(suite, "vvadd")
	if err != nil {
		panic(err)
	}
	mmult, err := workloads.ByName(suite, "mmult")
	if err != nil {
		panic(err)
	}
	return benchConfig{
		label:   "test",
		suite:   "small",
		kernels: []*workloads.Kernel{vvadd, mmult},
		systems: []sim.Config{
			{Kind: sim.SysIO},
			{Kind: sim.SysO3},
			{Kind: sim.SysO3EVE, N: 8},
		},
		workers: workers,
		repeats: 1,
	}
}

// TestSimulatedSectionByteIdenticalAcrossWorkers pins the trajectory's core
// guarantee: the canonical JSON of a host-free report is byte-identical at
// any worker count.
func TestSimulatedSectionByteIdenticalAcrossWorkers(t *testing.T) {
	var blobs [][]byte
	for _, workers := range []int{1, 4} {
		rep, err := buildReport(quickConfig(workers))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Host != nil {
			t.Fatal("host:false config produced a host section")
		}
		blob, err := canonicalJSON(rep)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, blob)
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Error("sim-only reports differ between 1 and 4 workers")
	}
}

// TestRepeatedRunsVerifyDeterminism checks the repetition tripwire runs (and
// stays silent) on a healthy simulator, and that the host section carries
// one wall sample per repetition with the min of them.
func TestRepeatedRunsVerifyDeterminism(t *testing.T) {
	cfg := quickConfig(2)
	cfg.repeats = 2
	cfg.host = true
	rep, err := buildReport(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := rep.Host
	if h == nil || len(h.WallNS) != 2 {
		t.Fatalf("host section = %+v, want 2 wall samples", h)
	}
	if h.WallNSMin != min(h.WallNS[0], h.WallNS[1]) {
		t.Errorf("wall_ns_min = %d, want min of %v", h.WallNSMin, h.WallNS)
	}
	if h.WallNSMin <= 0 || h.AllocsMin == 0 {
		t.Errorf("implausible host measurements: %+v", h)
	}
}

func TestCompareSelfIsClean(t *testing.T) {
	rep, err := buildReport(quickConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	diffs, err := compareReports(rep, rep, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Errorf("self-comparison found %d diffs: %v", len(diffs), diffs)
	}
}

// roundTrip deep-copies a report through its JSON form, mimicking a baseline
// loaded from disk.
func roundTrip(t *testing.T, rep *Report) *Report {
	t.Helper()
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var out Report
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatal(err)
	}
	return &out
}

// TestCompareDetectsPerturbations perturbs one simulated metric at a time
// and checks each perturbation is a finding with the right metric path.
func TestCompareDetectsPerturbations(t *testing.T) {
	rep, err := buildReport(quickConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	perturb := []struct {
		name   string
		mutate func(*SimCell)
		metric string
	}{
		{"cycles", func(c *SimCell) { c.Cycles++ }, "cycles"},
		{"checksum", func(c *SimCell) { c.MemChecksum = "0xdeadbeefdeadbeef" }, "mem_checksum"},
		{"derived float", func(c *SimCell) { c.Derived.L2.MissRate += 1e-15 }, "derived.l2.miss_rate"},
		{"derived flag", func(c *SimCell) { c.Derived.Degenerate = !c.Derived.Degenerate }, "derived.degenerate"},
	}
	for _, p := range perturb {
		t.Run(p.name, func(t *testing.T) {
			cur := roundTrip(t, rep)
			p.mutate(&cur.Simulated.Cells[0])
			diffs, err := compareReports(rep, cur, -1)
			if err != nil {
				t.Fatal(err)
			}
			if len(diffs) == 0 {
				t.Fatalf("perturbing %s produced no findings", p.name)
			}
			found := false
			for _, d := range diffs {
				if strings.Contains(d.Metric, p.metric) {
					found = true
				}
			}
			if !found {
				t.Errorf("no finding names %q: %v", p.metric, diffs)
			}
			var tbl strings.Builder
			if err := renderDiffs(&tbl, diffs); err != nil {
				t.Fatal(err)
			}
			for _, col := range []string{"cell", "metric", "baseline", "current", p.metric} {
				if !strings.Contains(tbl.String(), col) {
					t.Errorf("diff table lacks %q:\n%s", col, tbl.String())
				}
			}
		})
	}

	t.Run("missing cell", func(t *testing.T) {
		cur := roundTrip(t, rep)
		cur.Simulated.Cells = cur.Simulated.Cells[1:]
		diffs, err := compareReports(rep, cur, -1)
		if err != nil {
			t.Fatal(err)
		}
		if len(diffs) != 1 || diffs[0].Cur != "missing" {
			t.Errorf("dropped cell diffs = %v, want one 'missing' finding", diffs)
		}
	})
}

// TestCompareHostBand checks the wall-time band: regressions beyond the band
// fail, regressions inside it and speedups pass, and a negative band
// disables the check entirely.
func TestCompareHostBand(t *testing.T) {
	mk := func(wall int64) *Report {
		return &Report{Schema: Schema, Suite: "small", Host: &Host{WallNSMin: wall}}
	}
	cases := []struct {
		name      string
		base, cur int64
		band      float64
		wantDiffs int
	}{
		{"inside band", 1000, 1200, 25, 0},
		{"beyond band", 1000, 1300, 25, 1},
		{"faster is never a finding", 1000, 100, 25, 0},
		{"negative band disables", 1000, 100000, -1, 0},
		{"zero band is exact", 1000, 1001, 0, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			diffs, err := compareReports(mk(c.base), mk(c.cur), c.band)
			if err != nil {
				t.Fatal(err)
			}
			if len(diffs) != c.wantDiffs {
				t.Errorf("diffs = %v, want %d finding(s)", diffs, c.wantDiffs)
			}
		})
	}
}

// TestCompareExitCodeEndToEnd drives realMain: a tampered baseline must fail
// with exit code 1 and a readable diff on stderr; the untampered baseline
// must pass with exit code 0.
func TestCompareExitCodeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	outPath := filepath.Join(dir, "out.json")
	args := []string{"-small", "-kernels=vvadd", "-systems=IO,O3", "-repeat=1",
		"-sim-only", "-label=test", "-o=" + basePath}
	var stdout, stderr bytes.Buffer
	if code := realMain(args, &stdout, &stderr); code != 0 {
		t.Fatalf("baseline run exited %d:\n%s", code, stderr.String())
	}

	compareArgs := []string{"-small", "-kernels=vvadd", "-systems=IO,O3", "-repeat=1",
		"-sim-only", "-label=test", "-o=" + outPath, "-compare=" + basePath}
	stderr.Reset()
	if code := realMain(compareArgs, &stdout, &stderr); code != 0 {
		t.Fatalf("self-comparison exited %d:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "OK") {
		t.Errorf("clean comparison did not report OK:\n%s", stderr.String())
	}

	// Tamper one cycles value in the baseline file.
	blob, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	var tree map[string]any
	if err := json.Unmarshal(blob, &tree); err != nil {
		t.Fatal(err)
	}
	cells := tree["simulated"].(map[string]any)["cells"].([]any)
	cell := cells[0].(map[string]any)
	cell["cycles"] = cell["cycles"].(float64) + 1
	tampered, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(basePath, tampered, 0o644); err != nil {
		t.Fatal(err)
	}

	stderr.Reset()
	code := realMain(compareArgs, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("comparison against a perturbed baseline exited %d, want 1:\n%s", code, stderr.String())
	}
	for _, want := range []string{"cycles", "FAIL", "baseline", "current"} {
		if !strings.Contains(stderr.String(), want) {
			t.Errorf("diff output lacks %q:\n%s", want, stderr.String())
		}
	}
}

// TestCheckedInBaselineIsCurrent is the PR gate: the full small-suite
// simulated section must match bench/baseline.json bit for bit. If a timing
// model change is intentional, refresh with:
//
//	go run ./cmd/eve-bench -small -label=baseline -repeat=3 -o=bench/baseline.json
func TestCheckedInBaselineIsCurrent(t *testing.T) {
	base, err := loadReport(filepath.Join("..", "..", "bench", "baseline.json"))
	if err != nil {
		t.Fatalf("%v (generate it with the command on this test's doc comment)", err)
	}
	cfg := benchConfig{
		label:   base.Label,
		suite:   "small",
		kernels: workloads.Small(),
		systems: sim.AllSystems(),
		workers: runtime.GOMAXPROCS(0),
		repeats: 1,
	}
	rep, err := buildReport(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Host performance is machine-specific: band -1 compares only the
	// deterministic simulated section.
	diffs, err := compareReports(base, rep, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) > 0 {
		var tbl strings.Builder
		if err := renderDiffs(&tbl, diffs); err != nil {
			t.Fatal(err)
		}
		t.Errorf("simulated section diverges from bench/baseline.json (%d findings).\n"+
			"If the timing-model change is intentional, refresh the baseline.\n%s",
			len(diffs), tbl.String())
	}
}
