package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// TestReportBytesDeterministic drives the CLI's campaign + emit path twice
// with the same seed at different worker counts and requires byte-identical
// JSON — the acceptance criterion the CI smoke job checks end to end.
func TestReportBytesDeterministic(t *testing.T) {
	run := func(workers int) []byte {
		rep, err := faults.Run(faults.Config{
			System:         sim.Config{Kind: sim.SysO3EVE, N: 32},
			Kernels:        []*workloads.Kernel{workloads.NewVVAdd(512)},
			SitesPerKernel: 8,
			Seed:           7,
			Workers:        workers,
			VerifyBaseline: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := emitReport(&buf, rep); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(1), run(4)
	if !bytes.Equal(a, b) {
		t.Fatal("report JSON differs between worker counts")
	}
	if !strings.Contains(string(a), `"summary"`) {
		t.Error("report JSON is missing the summary block")
	}
}

// TestSelectKernels resolves names against the suite and rejects unknowns.
func TestSelectKernels(t *testing.T) {
	suite := workloads.Small()
	all, err := selectKernels(suite, "")
	if err != nil || len(all) != len(suite) {
		t.Fatalf("empty selection = %d kernels, %v; want whole suite", len(all), err)
	}
	two, err := selectKernels(suite, "vvadd, k-means")
	if err != nil || len(two) != 2 || two[0].Name != "vvadd" || two[1].Name != "k-means" {
		t.Fatalf("selectKernels(vvadd, k-means) = %v, %v", two, err)
	}
	if _, err := selectKernels(suite, "no-such-kernel"); err == nil {
		t.Fatal("unknown kernel name accepted")
	}
}
