// Command eve-faults runs a deterministic fault-injection campaign over the
// EVE SRAM compute substrate and emits the classified results as JSON.
//
//	eve-faults -seed=42 -sites=16                  # full small suite, all fault kinds
//	eve-faults -kernels=vvadd,k-means -sites=32    # selected kernels
//	eve-faults -kinds=bitflip,stuck-sa -parallel=8 # restrict kinds, fan out
//	eve-faults -seed=42 -o=campaign.json           # write the report to a file
//
// Each (kernel, fault site) cell re-executes the kernel's vector instructions
// on a bit-level circuit stack with one fault armed, and is classified
// against a fault-free baseline as masked, detected, sdc, or crash. The
// report is a pure function of (seed, kernel set, sites, kinds, -n): the
// same invocation produces byte-identical JSON across runs and across
// -parallel values.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// selectKernels resolves the -kernels flag against the chosen suite; empty
// selects the whole suite.
func selectKernels(suite []*workloads.Kernel, names string) ([]*workloads.Kernel, error) {
	if names == "" {
		return suite, nil
	}
	var out []*workloads.Kernel
	for _, name := range strings.Split(names, ",") {
		k, err := workloads.ByName(suite, strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

// emitReport writes the campaign report as indented JSON.
func emitReport(w io.Writer, rep *faults.Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// summarize renders the one-line outcome tally printed to stderr.
func summarize(rep *faults.Report) string {
	s := rep.Summary
	return fmt.Sprintf("%d cells: %d masked, %d detected, %d sdc, %d crash",
		s.Total, s.Masked, s.Detected, s.SDC, s.Crash)
}

func main() {
	os.Exit(run())
}

// run is the command body. The named return keeps every exit on the return
// path, so deferred telemetry flushes (profiler, status server, run log)
// always happen — including on the SIGINT partial-report exit.
func run() (code int) {
	seed := flag.Int64("seed", 1, "campaign seed; same seed, same report")
	n := flag.Int("n", 32, "EVE parallelization factor (1,2,4,8,16,32)")
	kernels := flag.String("kernels", "", "comma-separated kernel names (default: whole suite)")
	full := flag.Bool("full", false, "use full-size workloads instead of the reduced suite")
	sites := flag.Int("sites", 16, "fault sites sampled per kernel")
	kinds := flag.String("kinds", "all", "fault kinds: all, or a comma list of bitflip,stuck-sa,wordline-drop")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "sweep worker goroutines (results are identical at any count)")
	retry := flag.Bool("retry", false, "retry each failed cell once, recording the retry count")
	progress := flag.Bool("progress", false, "report per-cell progress and wall time on stderr")
	maxCycles := flag.Int("max-uprog-cycles", 0, "per-micro-program watchdog budget (0: default)")
	verify := flag.Bool("verify-baseline", true, "require the fault-free baseline to reproduce the golden run")
	out := flag.String("o", "", "write the JSON report to this file instead of stdout")
	statusAddr := flag.String("status", "", "serve live /status, /metrics and /debug/pprof/ on this address (e.g. 127.0.0.1:8321; default off)")
	logJSON := flag.String("log-json", "", "append one JSON line per lifecycle event to this file (\"-\" for stderr)")
	prof := telemetry.NewProfiler(flag.CommandLine)
	flag.Parse()

	if err := prof.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "eve-faults:", err)
		return 2
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "eve-faults:", err)
			if code == 0 {
				code = 1
			}
		}
	}()

	suite := workloads.Small()
	if *full {
		suite = workloads.Default()
	}
	ks, err := selectKernels(suite, *kernels)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eve-faults:", err)
		return 2
	}
	kindList, err := faults.ParseKinds(*kinds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eve-faults:", err)
		return 2
	}

	// ^C / SIGTERM cancels the campaign through the sweep context: finished
	// cells are kept and the partial report is still flushed as valid JSON.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	cfg := faults.Config{
		System:         sim.Config{Kind: sim.SysO3EVE, N: *n, MaxUProgCycles: *maxCycles},
		Kernels:        ks,
		SitesPerKernel: *sites,
		Kinds:          kindList,
		Seed:           *seed,
		Workers:        *parallel,
		RetryOnce:      *retry,
		VerifyBaseline: *verify,
		Context:        ctx,
	}
	if *progress {
		cfg.Observer = sweep.NewProgress(os.Stderr)
	}
	// The telemetry chain wraps the progress printer; observers by contract
	// never touch a Result, so enabling them cannot change a report byte.
	var logger *telemetry.Logger
	if *logJSON != "" {
		logOut := io.Writer(os.Stderr)
		if *logJSON != "-" {
			lf, err := os.OpenFile(*logJSON, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fmt.Fprintln(os.Stderr, "eve-faults:", err)
				return 2
			}
			defer func() { _ = lf.Close() }()
			logOut = lf
		}
		logger = telemetry.NewLogger(logOut, cfg.Observer)
		cfg.Observer = logger
		stopWatch := telemetry.WatchSignals(logger, os.Interrupt, syscall.SIGTERM)
		defer stopWatch()
		defer func() {
			if err := logger.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "eve-faults: run log:", err)
			}
		}()
	}
	if *statusAddr != "" {
		counters := telemetry.NewCounters(cfg.Observer)
		cfg.Observer = counters
		srv, err := telemetry.Serve(*statusAddr, counters)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eve-faults:", err)
			return 2
		}
		defer func() { _ = srv.Close() }()
		fmt.Fprintf(os.Stderr, "telemetry: serving http://%s/status\n", srv.Addr())
	}
	fmt.Fprintf(os.Stderr, "injecting %d sites x %d kernels on %s (seed %d, %d workers)...\n",
		*sites, len(ks), cfg.System.Name(), *seed, *parallel)

	rep, err := faults.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eve-faults:", err)
		return 1
	}

	w := io.Writer(os.Stdout)
	var f *os.File
	if *out != "" {
		f, err = os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eve-faults:", err)
			return 1
		}
		w = f
	}
	if err := emitReport(w, rep); err != nil {
		fmt.Fprintln(os.Stderr, "eve-faults:", err)
		return 1
	}
	if f != nil {
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "eve-faults:", err)
			return 1
		}
	}
	fmt.Fprintln(os.Stderr, summarize(rep))
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "eve-faults: interrupted; the report above covers only the cells that finished")
		return 130
	}
	return 0
}
