package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current simulator output")

// TestSmallJSONGolden pins the exact JSON matrix of `eve-figures -small
// -json` under testdata/. Any change to the timing model — cycle counts,
// instruction mixes, breakdowns, energy — shows up as a diff against the
// golden file, so regressions are caught by `go test` instead of by
// eyeballing figures. Refresh intentionally with:
//
//	go test ./cmd/eve-figures -run TestSmallJSONGolden -update
func TestSmallJSONGolden(t *testing.T) {
	results, err := sweep.Matrix(sim.AllSystems(), workloads.Small(),
		sweep.Options{Workers: runtime.GOMAXPROCS(0), AbortOnError: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := emitJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	golden := filepath.Join("testdata", "small.golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("JSON result matrix diverges from %s.\n"+
			"If the timing-model change is intentional, refresh with -update.\n"+
			"got %d bytes, want %d bytes; first divergence at byte %d",
			golden, len(got), len(want), firstDiff(got, want))
	}
}

func firstDiff(a, b []byte) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestBuildJSONRequiresIOColumn locks in the emitJSON fix: the IO baseline
// is looked up by name, and a matrix without an IO column is an error
// instead of a silently wrong speedup against whatever sits at index 0.
func TestBuildJSONRequiresIOColumn(t *testing.T) {
	k := workloads.NewVVAdd(256)
	withIO, err := sweep.Matrix(
		[]sim.Config{{Kind: sim.SysO3}, {Kind: sim.SysIO}}, // IO deliberately not first
		[]*workloads.Kernel{k}, sweep.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := buildJSON(withIO)
	if err != nil {
		t.Fatalf("buildJSON with an IO column: %v", err)
	}
	ioCycles := float64(withIO[0][1].Cycles)
	for _, r := range rows {
		want := ioCycles / float64(r.Cycles)
		if r.SpeedupVsIO != want {
			t.Errorf("%s speedup_vs_io = %v, want %v (IO looked up by name)", r.System, r.SpeedupVsIO, want)
		}
	}

	withoutIO := sim.Matrix([]sim.Config{{Kind: sim.SysO3}, {Kind: sim.SysO3IV}}, []*workloads.Kernel{k})
	if _, err := buildJSON(withoutIO); err == nil {
		t.Error("buildJSON without an IO column returned nil error")
	}
}
